package guard_test

import (
	"testing"
	"unsafe"

	"prcu"
	"prcu/guard"
)

type tnode struct {
	key  uint64
	val  uint64
	next guard.Cell[tnode]
}

func newGuard(t *testing.T) (*guard.R, prcu.RCU) {
	t.Helper()
	r := prcu.NewPacked(prcu.Options{})
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	return guard.Wrap(rd), r
}

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	f()
}

func TestScopeLifecycle(t *testing.T) {
	g, _ := newGuard(t)
	defer g.Unregister()

	s := g.Enter(7)
	if got := s.Value(); got != 7 {
		t.Fatalf("Scope.Value = %d, want 7", got)
	}
	cell := guard.NewGuarded(&tnode{key: 1})
	if n := cell.Load(s); n == nil || n.key != 1 {
		t.Fatalf("Load inside scope = %+v", n)
	}
	g.Exit(s)

	expectPanic(t, "load through dead scope", func() { cell.Load(s) })
	expectPanic(t, "Value on dead scope", func() { s.Value() })
	expectPanic(t, "double Exit", func() { g.Exit(s) })

	// The reader itself stays usable after a clean exit.
	s2 := g.Enter(8)
	g.Exit(s2)
}

func TestNestedEnterPanics(t *testing.T) {
	g, _ := newGuard(t)
	defer g.Unregister()
	s := g.Enter(1)
	defer g.Exit(s)
	expectPanic(t, "nested Enter", func() { g.Enter(2) }) //prcuvet:ignore — Enter must panic, no section opens
}

func TestExitForeignScopePanics(t *testing.T) {
	g1, _ := newGuard(t)
	defer g1.Unregister()
	g2, _ := newGuard(t)
	defer g2.Unregister()

	s1 := g1.Enter(1)
	defer g1.Exit(s1)
	s2 := g2.Enter(1)
	defer g2.Exit(s2)
	expectPanic(t, "cross-reader Exit", func() { g1.Exit(s2) })
}

func TestReadPanicSafety(t *testing.T) {
	g, r := newGuard(t)
	defer g.Unregister()

	var leaked *guard.Scope
	func() {
		defer func() { recover() }()
		g.Read(3, func(s *guard.Scope) {
			leaked = s
			panic("reader explodes")
		})
	}()
	// The section must have been closed despite the panic: a covering
	// wait completes, and the leaked scope is dead.
	r.WaitForReaders(prcu.All())
	expectPanic(t, "leaked scope", func() { leaked.Value() })

	// And the reader is reusable.
	g.Read(4, func(s *guard.Scope) {})
}

func TestGuardedCellOps(t *testing.T) {
	g, _ := newGuard(t)
	defer g.Unregister()

	a, b := &tnode{key: 1}, &tnode{key: 2}
	cell := guard.NewGuarded(a)
	if cell.LoadLocked() != a {
		t.Fatal("LoadLocked after NewGuarded")
	}
	cell.Publish(b)
	if cell.LoadLocked() != b {
		t.Fatal("LoadLocked after Publish")
	}
	if old := cell.Swap(a); old != b {
		t.Fatal("Swap returned wrong old value")
	}
	if cell.CompareAndSwap(b, a) {
		t.Fatal("CompareAndSwap succeeded with stale old")
	}
	if !cell.CompareAndSwap(a, b) {
		t.Fatal("CompareAndSwap failed with current old")
	}
	if replaced := cell.Update(func(old *tnode) *tnode { return a }); replaced != b {
		t.Fatal("Update returned wrong replaced value")
	}

	var seen uint64
	cell.Read(g, 9, func(n *tnode) { seen = n.key })
	if seen != a.key {
		t.Fatalf("Guarded.Read saw key %d, want %d", seen, a.key)
	}
}

func TestListOps(t *testing.T) {
	g, _ := newGuard(t)
	defer g.Unregister()

	l := guard.NewList(func(n *tnode) *guard.Cell[tnode] { return &n.next })
	for k := uint64(3); k > 0; k-- {
		l.PushHead(&tnode{key: k, val: k * 10})
	}

	g.Read(0, func(s *guard.Scope) {
		var keys []uint64
		l.Each(s, func(n *tnode) bool {
			keys = append(keys, n.key)
			return true
		})
		if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
			t.Errorf("Each order = %v, want [1 2 3]", keys)
		}
		if n := l.Find(s, func(n *tnode) bool { return n.key == 2 }); n == nil || n.val != 20 {
			t.Errorf("Find(2) = %+v", n)
		}
		if h := l.Head(s); h == nil || h.key != 1 {
			t.Errorf("Head = %+v", h)
		}
	})

	// Unlink the middle node, then the head.
	h := l.HeadLocked()
	mid := l.NextLocked(h)
	l.Unlink(h, mid)
	l.Unlink(nil, h)
	if got := l.HeadLocked(); got == nil || got.key != 3 {
		t.Fatalf("after unlinks HeadLocked = %+v, want key 3", got)
	}
	// The unlinked node's own link is left intact for pre-existing
	// readers standing on it.
	if mid.next.LoadLocked() == nil {
		t.Fatal("Unlink cleared the victim's own link")
	}

	expectPanic(t, "NewList(nil)", func() { guard.NewList[tnode](nil) })
}

func TestEscape(t *testing.T) {
	g, _ := newGuard(t)
	defer g.Unregister()

	cell := guard.NewGuarded(&tnode{key: 5})
	s := g.Enter(1)
	n := guard.Escape(s, cell.Load(s))
	g.Exit(s)
	if n.key != 5 { // deliberately unguarded: validated by construction here
		t.Fatalf("escaped key = %d", n.key)
	}
	expectPanic(t, "Escape on dead scope", func() { guard.Escape(s, n) })
}

func TestRetirerAccounting(t *testing.T) {
	r := prcu.NewPacked(prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{})
	defer rec.Close()

	ret := prcu.NewRetirer[tnode](rec, 64, nil)
	want := int(unsafe.Sizeof(tnode{})) + 64
	if got := ret.NodeBytes(); got != want {
		t.Fatalf("NodeBytes = %d, want %d", got, want)
	}
}

func TestRetireRunsFreeAfterGrace(t *testing.T) {
	r := prcu.NewPacked(prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{})
	defer rec.Close()

	head := guard.NewGuarded(&tnode{key: 1})
	freed := make(chan *tnode, 2)

	old := head.Swap(&tnode{key: 2})
	guard.Retire(rec, prcu.All(), old, func(n *tnode) { freed <- n })
	rec.Barrier()
	select {
	case n := <-freed:
		if n != old {
			t.Fatal("freed a different node than retired")
		}
	default:
		t.Fatal("free did not run after Barrier")
	}

	// The Retirer fast path frees through its bound callback too.
	ret := guard.NewRetirer(rec, 0, func(n *tnode) { freed <- n })
	old = head.Swap(&tnode{key: 3})
	ret.Retire(prcu.All(), old)
	rec.Barrier()
	select {
	case n := <-freed:
		if n != old {
			t.Fatal("Retirer freed a different node than retired")
		}
	default:
		t.Fatal("Retirer free did not run after Barrier")
	}
}

func TestWrapInterop(t *testing.T) {
	r := prcu.NewPacked(prcu.Options{})
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	g := guard.Wrap(rd)
	if g.Reader() != rd {
		t.Fatal("Reader() does not return the wrapped reader")
	}
	g.Unregister()
}
