package guard

// List[T] composes a Guarded head and per-node Cell links into the
// canonical RCU singly linked list: lock-free guarded traversal on the
// read side, head pushes and unlinks on the updater side under the
// caller's exclusion. The node type stays the caller's own struct; the
// list reaches its link through the next accessor, so one node type
// can participate in several lists.
//
// The zero List is not usable; construct with NewList.
type List[T any] struct {
	head Cell[T]
	next func(*T) *Cell[T]
}

// NewList returns an empty list whose per-node link is reached by next
// (typically func(n *node) *guard.Cell[node] { return &n.next }).
func NewList[T any](next func(*T) *Cell[T]) *List[T] {
	if next == nil {
		panic("guard: NewList with nil link accessor")
	}
	return &List[T]{next: next}
}

// Head returns the first node inside the open section s witnesses.
func (l *List[T]) Head(s *Scope) *T { return l.head.Load(s) }

// Next returns the node linked after n inside the open section.
func (l *List[T]) Next(s *Scope, n *T) *T { return l.next(n).Load(s) }

// Find returns the first node for which match reports true, or nil.
// match runs inside the section and must treat its argument as guarded:
// copy values out, do not keep the pointer.
func (l *List[T]) Find(s *Scope, match func(*T) bool) *T {
	for n := l.head.Load(s); n != nil; n = l.next(n).Load(s) {
		if match(n) {
			return n
		}
	}
	return nil
}

// Each invokes f on every node in order until f returns false. f runs
// inside the section under the same guarded-argument rules as Find.
func (l *List[T]) Each(s *Scope, f func(*T) bool) {
	for n := l.head.Load(s); n != nil; n = l.next(n).Load(s) {
		if !f(n) {
			return
		}
	}
}

// HeadLocked returns the first node on the updater side; the caller
// must hold the list's update exclusion.
func (l *List[T]) HeadLocked() *T { return l.head.LoadLocked() }

// NextLocked returns the node after n on the updater side.
func (l *List[T]) NextLocked(n *T) *T { return l.next(n).LoadLocked() }

// PushHead links n at the head. Updater-side: n must be fully
// initialized (its link included) before the call publishes it, so the
// list writes n's link itself and then publishes — readers observe the
// insert atomically.
func (l *List[T]) PushHead(n *T) {
	l.next(n).Store(l.head.LoadLocked())
	l.head.Store(n)
}

// Unlink removes n, which must currently follow prev (nil prev means n
// is the head). n's own link is left intact so pre-existing readers
// standing on n keep a valid path; the caller must Retire n before its
// memory is reused.
func (l *List[T]) Unlink(prev, n *T) {
	succ := l.next(n).LoadLocked()
	if prev == nil {
		l.head.Store(succ)
		return
	}
	l.next(prev).Store(succ)
}
