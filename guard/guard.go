// Package guard is the typed, misuse-resistant surface over the raw
// PRCU reader API. The raw discipline — Enter, traverse atomic
// pointers, Exit, and never let a traversed pointer outlive the
// critical section — is entirely a matter of programmer care. This
// package turns most of that care into types, in the spirit of "Safe
// Deferred Memory Reclamation with Types" adapted to Go generics:
//
//   - A read-side critical section is witnessed by a *Scope capability
//     that only Read/Enter can mint. Guarded pointers are reachable
//     only through methods that demand the Scope, so a load outside a
//     section does not compile.
//   - Guarded[T] is an atomic cell (a list head, a table pointer, a
//     config block) whose value is reachable inside scopes; Cell[T] is
//     the intrusive link for nodes of RCU data structures; List[T]
//     composes Cells into the canonical RCU linked list.
//   - Retire[T] and Retirer[T] feed the reclaim subsystem with the
//     retained byte size computed from the type itself
//     (unsafe.Sizeof + declared extras), so backlog accounting cannot
//     drift from the node type it describes.
//
// What the types cannot express in Go — a guarded pointer assigned to
// a captured variable, sent on a channel, or returned out of the scope
// closure still compiles — is caught two ways: dynamically, because a
// Scope is invalidated on exit and every load through a dead Scope
// panics; and statically, by cmd/prcuvet, whose escape analysis flags
// exactly those three leaks plus Enter-without-Exit and
// retire-before-unlink. Algorithms that intentionally carry a pointer
// out for post-section validation (the CITRUS optimistic traversal)
// must say so with Escape, which is both the audit marker and the
// analyzer's suppression point.
package guard

import (
	"sync/atomic"
	"unsafe"

	"prcu/internal/core"
	"prcu/internal/reclaim"
)

// Value is the PRCU domain value a scope is entered on; see prcu.Value.
type Value = core.Value

// Predicate selects readers a wait or retirement must cover; see
// prcu.Predicate.
type Predicate = core.Predicate

// Reader is the raw reader handle guard wraps; see prcu.Reader.
type Reader = core.Reader

// Scope witnesses an open read-side critical section. Only R.Enter and
// R.Read mint one; every guarded load demands one; it is invalidated
// the moment the section exits, after which any use panics. A Scope is
// owned by its reader's goroutine and must not be stored, sent, or
// returned — cmd/prcuvet flags those escapes at build time.
type Scope struct {
	v Value
	// g points back at the owning reader, which holds the section's
	// liveness bit. Keeping the bit on R (not here) is what lets Enter
	// set v and liveness in one tuple assignment and stay within the
	// compiler's inlining budget — see Exit's comment. g is fixed at
	// Wrap time; only Enter/Exit ever mint or kill a Scope, so a Scope
	// never outlives its R.
	g *R
}

// check panics unless the scope's critical section is still open. It is
// the dynamic backstop behind every typed load: a leaked scope cannot
// silently read memory whose grace period may already have passed.
func (s *Scope) check() {
	if s == nil || !s.g.live {
		panic("guard: use of Scope outside its read-side critical section")
	}
}

// Value returns the domain value the open section was entered on.
func (s *Scope) Value() Value {
	s.check()
	return s.v
}

// R is a typed reader: one registered Reader plus the reusable Scope
// storage that keeps Enter/Exit allocation-free. Like the Reader it
// wraps, an R serves one goroutine at a time and sections must not
// nest. Construct with Wrap.
type R struct {
	rd core.Reader
	// live is the one-bit section state: true between Enter and Exit.
	// It lives here rather than on Scope so the hot paths stay
	// inlinable; Scope reaches it through its back-pointer.
	live bool
	s    Scope
}

// Wrap returns the typed reader over rd. The same rd must not also be
// driven raw while wrapped — the scope's liveness tracking assumes it
// sees every Enter/Exit.
func Wrap(rd core.Reader) *R {
	g := &R{rd: rd}
	g.s.g = g
	return g
}

// Reader returns the wrapped raw reader, for interoperating with
// not-yet-migrated call sites.
func (g *R) Reader() core.Reader { return g.rd }

// Unregister releases the wrapped reader's slot; see Reader.Unregister.
func (g *R) Unregister() { g.rd.Unregister() }

// Enter opens a read-side critical section on v and returns its Scope.
// The caller must guarantee Exit on every path; prefer Read, which is
// panic-safe, unless the section is a measured hot path whose body
// cannot panic. cmd/prcuvet verifies the pairing either way.
func (g *R) Enter(v Value) *Scope {
	if g.live {
		panic("guard: nested read-side critical sections on one reader")
	}
	g.live, g.s.v = true, v
	g.rd.Enter(v)
	return &g.s
}

// Exit closes the section s witnesses and invalidates s. Enter and Exit
// sit on measured hot loops (BenchmarkGuardedRead holds the typed layer
// to ≤1ns over a raw section), so both must stay within the compiler's
// inlining budget: the happy path is one predicted branch around the
// engine call, the misuse branch is a single constant panic rather than
// a call that diagnoses which misuse (foreign scope, double Exit, dead
// scope) occurred, and Enter writes its two words of bookkeeping in one
// tuple assignment. The budget is exact — measure before adding even
// one node to these bodies (BenchmarkGuardedRead in prcu/hashtable).
func (g *R) Exit(s *Scope) {
	if s != &g.s || !g.live {
		panic("guard: Exit with a foreign, dead, or already-exited Scope")
	}
	g.live = false
	g.rd.Exit(s.v)
}

// Read runs f inside a read-side critical section on v. The section is
// closed even if f panics (the panic is re-raised), so a panicking
// reader can never wedge future covering grace periods. The *Scope
// handed to f is dead as soon as f returns.
func (g *R) Read(v Value, f func(*Scope)) {
	s := g.Enter(v)
	defer exitIfLive(g, s)
	f(s)
}

// exitIfLive is Read's deferred epilogue — a named function, not a
// closure, so the defer stays allocation-free.
func exitIfLive(g *R, s *Scope) {
	if g.live {
		g.Exit(s)
	}
}

// Escape deliberately carries a guarded pointer out of its read scope
// and returns it unchanged. It exists for validated-optimistic
// algorithms (CITRUS locks and re-validates nodes after the traversal
// section closes) where post-section use is proven safe by other
// means. Every call is an auditable assertion of that proof:
// cmd/prcuvet's escape analysis treats Escape results as unguarded and
// flags any other way a guarded pointer leaves its scope.
func Escape[T any](s *Scope, p *T) *T {
	s.check()
	return p
}

// Guarded[T] is an atomic cell — a list head, a current-table pointer,
// a config block — whose value readers may reach only inside a Scope.
// Updater-side methods (Publish, Swap, CompareAndSwap, Update,
// LoadLocked) are named for the exclusion discipline they assume; they
// do not require a Scope because updaters synchronize among themselves
// and manage old values' lifetimes through Retire.
//
// The zero Guarded is empty and ready to use.
type Guarded[T any] struct {
	p atomic.Pointer[T]
}

// NewGuarded returns a cell holding v.
func NewGuarded[T any](v *T) *Guarded[T] {
	g := &Guarded[T]{}
	g.p.Store(v)
	return g
}

// Load returns the current value; it may only be called inside the
// open section s witnesses.
func (g *Guarded[T]) Load(s *Scope) *T {
	s.check()
	return g.p.Load()
}

// Read runs f on the cell's current value inside a panic-safe critical
// section on v — the one-call form for point reads of a single cell.
// The pointer handed to f is guarded: it must not outlive f.
func (g *Guarded[T]) Read(r *R, v Value, f func(*T)) {
	r.Read(v, func(s *Scope) { f(g.p.Load()) })
}

// Publish installs v as the current value. Updater-side: the caller
// must hold whatever exclusion the structure uses for writes, and owns
// retiring the previous value.
func (g *Guarded[T]) Publish(v *T) { g.p.Store(v) }

// Swap installs v and returns the previous value, which the caller now
// owns and must Retire (or leak to the GC) once unlinked everywhere.
func (g *Guarded[T]) Swap(v *T) *T { return g.p.Swap(v) }

// CompareAndSwap installs new iff the cell still holds old.
func (g *Guarded[T]) CompareAndSwap(old, new *T) bool {
	return g.p.CompareAndSwap(old, new)
}

// Update retries f(current) with CompareAndSwap until it installs, and
// returns the replaced value for retirement. f may run several times
// and must be side-effect free; the old value it receives is updater
// state, not a guarded read, and must not be republished after Update
// returns.
func (g *Guarded[T]) Update(f func(old *T) *T) (replaced *T) {
	for {
		old := g.p.Load()
		if g.p.CompareAndSwap(old, f(old)) {
			return old
		}
	}
}

// LoadLocked returns the current value on the updater side. The caller
// must hold the structure's update exclusion (a bucket lock, a resize
// mutex); under that exclusion the value cannot be retired out from
// underneath it.
func (g *Guarded[T]) LoadLocked() *T { return g.p.Load() }

// Cell[T] is the intrusive atomic link of an RCU data structure: the
// next pointer of a list node, the child edge of a tree. Readers load
// it only through a Scope; updaters store through it under their own
// exclusion. The zero Cell is nil and ready to use.
type Cell[T any] struct {
	p atomic.Pointer[T]
}

// Load returns the linked node; it may only be called inside the open
// section s witnesses.
func (c *Cell[T]) Load(s *Scope) *T {
	s.check()
	return c.p.Load()
}

// LoadLocked returns the linked node on the updater side; the caller
// must hold the structure's update exclusion for this link.
func (c *Cell[T]) LoadLocked() *T { return c.p.Load() }

// Store publishes v through the link. Updater-side: any node v makes
// newly reachable must be fully initialized before the call, and any
// node the store unlinks stays valid for pre-existing readers until a
// covering grace period (Retire handles that).
func (c *Cell[T]) Store(v *T) { c.p.Store(v) }

// CompareAndSwap publishes new iff the link still holds old.
func (c *Cell[T]) CompareAndSwap(old, new *T) bool {
	return c.p.CompareAndSwap(old, new)
}

// Retire schedules free(v) (or just the grace period, when free is
// nil) behind a wait covering p, declaring unsafe.Sizeof(*v) retained
// bytes. v must already be unlinked from every guarded cell —
// cmd/prcuvet flags retirements it cannot see an unlink before. For a
// hot retire path, bind a Retirer once instead: this convenience form
// allocates a small adapter per call.
func Retire[T any](rec *reclaim.Reclaimer, p Predicate, v *T, free func(*T)) {
	RetireBytes(rec, p, v, 0, free)
}

// RetireBytes is Retire with extra retained bytes declared on top of
// unsafe.Sizeof(*v) — for nodes that own out-of-line memory (string
// bodies, slices) the type's footprint does not show.
func RetireBytes[T any](rec *reclaim.Reclaimer, p Predicate, v *T, extra int, free func(*T)) {
	bytes := int(unsafe.Sizeof(*v)) + extra
	if free == nil {
		rec.Retire(v, p, bytes, nil)
		return
	}
	rec.Retire(v, p, bytes, func(x any) { free(x.(*T)) })
}

// Retirer[T] binds a reclaimer, a per-node byte declaration and a typed
// free callback once, so the per-retirement path is allocation-free and
// fully typed: no per-call adapter closure, one type assertion that can
// never be wrong because only *T enters.
type Retirer[T any] struct {
	rec     *reclaim.Reclaimer
	bytes   int
	freeAny func(any)
}

// NewRetirer returns a Retirer declaring unsafe.Sizeof(T)+extra bytes
// per retirement and running free (which may be nil) after each node's
// covering grace period.
func NewRetirer[T any](rec *reclaim.Reclaimer, extra int, free func(*T)) *Retirer[T] {
	r := &Retirer[T]{
		rec:   rec,
		bytes: int(unsafe.Sizeof(*(*T)(nil))) + extra,
	}
	if free != nil {
		r.freeAny = func(x any) { free(x.(*T)) }
	}
	return r
}

// Retire schedules the bound free for v behind a wait covering p. v
// must already be unlinked; see Retire.
func (r *Retirer[T]) Retire(p Predicate, v *T) {
	r.rec.Retire(v, p, r.bytes, r.freeAny)
}

// NodeBytes reports the bytes a Retirer[T] declares per node with the
// given extra — exposed so structures can surface their accounting
// unit in docs and tests.
func (r *Retirer[T]) NodeBytes() int { return r.bytes }
