package guard_test

import (
	"testing"
	"time"
	"unsafe"

	"prcu"
	"prcu/guard"
)

// TestRetirerNoBoxingAllocs is the regression guard for the typed retire
// path: Retirer binds its free-callback adapter once at construction and
// converts only the node pointer to any (which never allocates), so a
// typed Retire must cost no more allocations than handing the reclaimer
// a raw any-typed callback directly. Before the Retirer existed, the
// hashtable's recycle path built a fresh `func(any)` closure around a
// type assertion per call site — this test keeps that from coming back.
//
// Both sides share the reclaimer's shard-queue append (amortized, and
// identical for both), so the comparison isolates exactly the typed
// wrapper. A long FlushDelay keeps the shard worker asleep during the
// measured runs so its own batch processing does not pollute the global
// malloc counters AllocsPerRun reads.
func TestRetirerNoBoxingAllocs(t *testing.T) {
	r := prcu.NewPacked(prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{Shards: 1, FlushDelay: time.Second})
	defer rec.Close()

	const runs = 2000
	nodes := make([]*tnode, runs+1)
	for i := range nodes {
		nodes[i] = &tnode{}
	}
	pred := prcu.Singleton(1) // value predicate: no per-call allocation
	bytes := int(unsafe.Sizeof(tnode{}))
	freeAny := func(x any) { _ = x.(*tnode) }

	i := 0
	raw := testing.AllocsPerRun(runs, func() {
		rec.Retire(nodes[i%len(nodes)], pred, bytes, freeAny)
		i++
	})
	rec.Barrier()

	ret := guard.NewRetirer(rec, 0, func(n *tnode) {})
	i = 0
	typed := testing.AllocsPerRun(runs, func() {
		ret.Retire(pred, nodes[i%len(nodes)])
		i++
	})
	rec.Barrier()

	if typed > raw+0.5 {
		t.Fatalf("typed Retire = %.3f allocs/op vs raw %.3f allocs/op: the typed path is boxing again", typed, raw)
	}
	t.Logf("allocs/op: raw=%.3f typed=%.3f", raw, typed)
}
