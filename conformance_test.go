// Engine conformance suite: one table-driven contract, run over every
// flavor Flavors() lists, so a new engine is held to the full RCU
// contract by adding a single constructor case — and cannot ship as a
// prototype that only passes its own hand-picked tests. The properties
// here are the public-API restatement of the PRCU safety property (§3.1)
// and the library's hardening guarantees:
//
//   - grace periods: WaitForReaders never returns while an overlapping
//     covered critical section entered before the call is open, and does
//     return once it exits — so reclamation behind a wait is safe;
//   - predicate selectivity: on the predicate-aware engines, a reader on
//     a value outside an interval predicate never blocks the wait;
//   - reader lifecycle: slots are reusable after Unregister, pooled
//     handles borrow/return correctly, and a recycled slot never haunts
//     a later wait;
//   - WaitForReadersCtx honors cancellation and deadlines, failing the
//     wait rather than the process;
//   - Reader.Do closes the critical section even when the callback
//     panics, so a panicking reader cannot wedge future grace periods.
//
// Per-engine ad-hoc copies of these checks are intentionally replaced by
// this suite; internal protocol details (phase flips, counter drains,
// packed words) stay in internal/core's white-box tests.
package prcu_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"prcu"
)

// selectiveFlavors are the engines that implement predicate-targeted
// waiting; the rest are plain RCUs whose waits conservatively cover all
// readers (§3.1 "RCU fallback" run in reverse).
var selectiveFlavors = map[prcu.Flavor]bool{
	prcu.FlavorEER:  true,
	prcu.FlavorD:    true,
	prcu.FlavorDEER: true,
}

// conformWaitTimeout bounds every "this wait must complete" assertion.
const conformWaitTimeout = 10 * time.Second

func TestConformance(t *testing.T) {
	props := []struct {
		name string
		run  func(t *testing.T, f prcu.Flavor, r prcu.RCU)
	}{
		{"GracePeriod", conformGracePeriod},
		{"DeferredReclaim", conformDeferredReclaim},
		{"Selectivity", conformSelectivity},
		{"ReaderReuse", conformReaderReuse},
		{"PooledReaders", conformPooledReaders},
		{"CtxCancellation", conformCtxCancellation},
		{"PanicSafeDo", conformPanicSafeDo},
	}
	for _, f := range prcu.Flavors() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			for _, p := range props {
				p := p
				t.Run(p.name, func(t *testing.T) {
					p.run(t, f, prcu.MustNew(f, prcu.Options{}))
				})
			}
		})
	}
}

// mustComplete fails the test unless done closes within the conformance
// deadline.
func mustComplete(t *testing.T, done <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(conformWaitTimeout):
		t.Fatal(what)
	}
}

// conformGracePeriod is the core contract: a wait covering an open
// pre-existing critical section blocks until that section exits, for
// both the wildcard and a covering singleton predicate.
func conformGracePeriod(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	for _, pred := range []prcu.Predicate{prcu.All(), prcu.Singleton(5)} {
		rd, err := r.Register()
		if err != nil {
			t.Fatal(err)
		}
		entered := make(chan struct{})
		release := make(chan struct{})
		go func() {
			rd.Enter(5)
			close(entered)
			<-release
			rd.Exit(5)
			rd.Unregister()
		}()
		<-entered
		returned := make(chan struct{})
		go func() {
			r.WaitForReaders(pred)
			close(returned)
		}()
		select {
		case <-returned:
			t.Fatalf("WaitForReaders(%s) returned while a covered section was open", pred)
		case <-time.After(50 * time.Millisecond):
		}
		close(release)
		mustComplete(t, returned, "WaitForReaders did not return after the reader exited")
	}
}

// conformDeferredReclaim runs the same property through the reclamation
// subsystem: a retirement's free callback must not run while an
// overlapping reader is in-section, and must run once it has exited.
func conformDeferredReclaim(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{Shards: 1, FlushDelay: -1})
	defer rec.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	freed := make(chan struct{})
	rec.Retire(uint64(7), prcu.Singleton(7), 8, func(any) { close(freed) })
	select {
	case <-freed:
		t.Fatal("retirement freed while an overlapping reader was in-section")
	case <-time.After(50 * time.Millisecond):
	}
	rd.Exit(7)
	done := make(chan struct{})
	go func() {
		rec.Barrier()
		close(done)
	}()
	mustComplete(t, done, "Reclaimer.Barrier did not drain after the reader exited")
	select {
	case <-freed:
	default:
		t.Fatal("retirement not freed by Barrier after the reader exited")
	}
	rd.Unregister()
}

// conformSelectivity: an open section on a value outside the wait's
// interval predicate must not block a predicate-aware engine. Plain-RCU
// flavors legitimately wait for all readers and are exempt.
func conformSelectivity(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	if !selectiveFlavors[f] {
		t.Skipf("%s is a plain RCU: waits conservatively cover every reader", f)
	}
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	// Far outside [10, 20] and, for D-PRCU, not hash-colliding with it
	// under the default 1024-node table (values 10..20 and 100000 map to
	// distinct nodes).
	rd.Enter(100000)
	returned := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.Interval(10, 20))
		r.WaitForReaders(prcu.Singleton(15))
		close(returned)
	}()
	mustComplete(t, returned, "wait blocked on a non-overlapping reader")
	rd.Exit(100000)
	rd.Unregister()
}

// conformReaderReuse cycles registration so released slots are re-issued,
// and checks a recycled slot's previous occupancy never blocks a wait.
func conformReaderReuse(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	for cycle := 0; cycle < 3; cycle++ {
		rds := make([]prcu.Reader, 8)
		for i := range rds {
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rds[i] = rd
			rd.Enter(prcu.Value(i))
			rd.Exit(prcu.Value(i))
		}
		// Release every other reader mid-set, then re-register into the
		// freed slots while the rest stay live.
		for i := 0; i < len(rds); i += 2 {
			rds[i].Unregister()
		}
		for i := 0; i < len(rds); i += 2 {
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rds[i] = rd
		}
		// All readers quiescent: a full wait must complete promptly even
		// though every slot has history.
		done := make(chan struct{})
		go func() {
			r.WaitForReaders(prcu.All())
			close(done)
		}()
		mustComplete(t, done, "wait blocked on quiescent recycled slots")
		for _, rd := range rds {
			rd.Unregister()
		}
	}
}

// conformPooledReaders exercises the ReaderPool lifecycle over the
// engine: borrowed handles enter/exit, Critical is panic-safe, and Close
// releases the cached slots.
func conformPooledReaders(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	pool := prcu.NewReaderPool(r)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pool.Critical(prcu.Value(g*100+i), func() {})
			}
		}(g)
	}
	wg.Wait()
	// Explicit borrow/return, including reuse of a returned handle.
	rd := pool.Get()
	rd.Enter(3)
	rd.Exit(3)
	pool.Put(rd)
	rd = pool.Get()
	rd.Enter(4)
	rd.Exit(4)
	pool.Put(rd)
	// Parked pooled readers are quiescent: they must not delay a wait.
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.All())
		close(done)
	}()
	mustComplete(t, done, "wait blocked on parked pooled readers")
	pool.Close()
}

// conformCtxCancellation: an uncontended bounded wait succeeds; a wait
// wedged on an open section returns the deadline error instead of
// blocking, and the engine remains usable afterwards.
func conformCtxCancellation(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	if err := r.WaitForReadersCtx(context.Background(), prcu.All()); err != nil {
		t.Fatalf("uncontended ctx wait returned %v", err)
	}
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(3)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if err := r.WaitForReadersCtx(ctx, prcu.All()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged ctx wait returned %v, want DeadlineExceeded", err)
	}
	cancel()
	// Pre-cancelled context: fail fast without scanning.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := r.WaitForReadersCtx(ctx2, prcu.All()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx wait returned %v, want Canceled", err)
	}
	rd.Exit(3)
	// The abandoned wait must not have corrupted the protocol: a fresh
	// unbounded wait completes.
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.All())
		close(done)
	}()
	mustComplete(t, done, "wait after an abandoned ctx wait did not complete")
	rd.Unregister()
}

// conformPanicSafeDo: a panicking Do callback re-raises but closes the
// section, so a subsequent covering wait completes and the reader stays
// usable.
func conformPanicSafeDo(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Do swallowed the callback's panic")
			}
		}()
		rd.Do(9, func() { panic("reader callback failure") })
	}()
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.Singleton(9))
		close(done)
	}()
	mustComplete(t, done, "wait blocked on a section Do should have closed")
	ran := false
	rd.Do(9, func() { ran = true })
	if !ran {
		t.Fatal("reader unusable after a panicking Do")
	}
	rd.Unregister()
}
