package prcu_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"prcu"
)

// liveReaders reports the engine's registered-reader count; every engine
// in this module exposes it outside the RCU interface.
func liveReaders(t *testing.T, r prcu.RCU) int {
	t.Helper()
	lr, ok := r.(interface{ LiveReaders() int })
	if !ok {
		t.Fatalf("%s does not expose LiveReaders", r.Name())
	}
	return lr.LiveReaders()
}

func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, want) {
			t.Fatalf("panic = %v, want containing %q", r, want)
		}
	}()
	fn()
}

func TestReaderPoolReusesReaders(t *testing.T) {
	r := prcu.NewD(prcu.Options{})
	pool := prcu.NewReaderPool(r)
	for i := 0; i < 200; i++ {
		rd := pool.Get()
		rd.Enter(prcu.Value(i))
		rd.Exit(prcu.Value(i))
		pool.Put(rd)
	}
	// Sequential borrow/return must amortize to a handful of underlying
	// registrations, not one per cycle. Under -race the runtime
	// intentionally drops a fraction of sync.Pool items, so the tight
	// bound only holds without it.
	if n := liveReaders(t, r); n < 1 || (!raceEnabled && n > 4) {
		t.Fatalf("LiveReaders = %d after 200 sequential borrows, want a small constant", n)
	}
}

func TestReaderPoolUnregisterReturnsToPool(t *testing.T) {
	r := prcu.NewEER(prcu.Options{})
	pool := prcu.NewReaderPool(r)
	rd := pool.Get()
	rd.Enter(1)
	rd.Exit(1)
	// Code written against the plain Reader contract calls Unregister; on
	// a pooled handle that must mean "return to pool", keeping the
	// underlying reader registered and warm.
	rd.Unregister()
	if n := liveReaders(t, r); n != 1 {
		t.Fatalf("LiveReaders = %d after pooled Unregister, want 1 (still registered)", n)
	}
	expectPanic(t, "use of pooled Reader after Put", func() { rd.Enter(2) }) //prcuvet:ignore — Enter must panic before the section opens
}

func TestReaderPoolMisusePanics(t *testing.T) {
	r := prcu.NewD(prcu.Options{})
	pool := prcu.NewReaderPool(r)

	rd := pool.Get()
	pool.Put(rd)
	expectPanic(t, "Put called twice", func() { pool.Put(rd) })
	expectPanic(t, "use of pooled Reader after Put", func() { rd.Enter(1) }) //prcuvet:ignore — Enter must panic before the section opens
	expectPanic(t, "use of pooled Reader after Put", func() { rd.Exit(1) })

	other := prcu.NewReaderPool(prcu.NewD(prcu.Options{}))
	foreign := other.Get()
	expectPanic(t, "not obtained from this pool", func() { pool.Put(foreign) })
	other.Put(foreign)

	pinned, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "not obtained from this pool", func() { pool.Put(pinned) })
	pinned.Unregister()
}

func TestReaderPoolCriticalPanicSafety(t *testing.T) {
	r := prcu.NewDEER(prcu.Options{})
	pool := prcu.NewReaderPool(r)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the user panic to propagate")
			}
		}()
		pool.Critical(5, func() { panic("user bug") })
	}()

	// The panicking section must have been exited and its handle returned:
	// a full wait completes, and the next borrow finds a quiescent reader.
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.All())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitForReaders stuck: Critical leaked an open critical section")
	}
	pool.Critical(5, func() {})
	// Under -race the runtime intentionally drops a fraction of sync.Pool
	// items at Put, so the second Critical may have registered a fresh
	// reader while the first awaits its finalizer; the tight bound only
	// holds without it.
	if n := liveReaders(t, r); n < 1 || (!raceEnabled && n != 1) {
		t.Fatalf("LiveReaders = %d, want 1", n)
	}
}

// TestReaderPoolGCReclaimsSlots checks the finalizer safety net: when the
// GC purges the sync.Pool cache (or a borrower leaks a handle), the
// underlying registry slots are released rather than leaked, and the pool
// keeps working afterwards.
func TestReaderPoolGCReclaimsSlots(t *testing.T) {
	r := prcu.NewTimeRCU(prcu.Options{})
	pool := prcu.NewReaderPool(r)

	const n = 32
	handles := make([]prcu.Reader, n)
	var wg sync.WaitGroup
	for i := range handles {
		// Borrow from separate goroutines so the handles land in more than
		// one per-P cache and genuinely coexist.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rd := pool.Get()
			rd.Enter(prcu.Value(i))
			rd.Exit(prcu.Value(i))
			handles[i] = rd
		}(i)
	}
	wg.Wait()
	if got := liveReaders(t, r); got != n {
		t.Fatalf("LiveReaders = %d with %d handles out, want %d", got, n, n)
	}
	for _, rd := range handles {
		pool.Put(rd)
	}
	clear(handles)

	// sync.Pool victim caches survive one collection; finalizers run on a
	// background goroutine after the object is collected. Keep collecting
	// until the reclamation is visible or we time out.
	deadline := time.Now().Add(20 * time.Second)
	for liveReaders(t, r) >= n {
		if time.Now().After(deadline) {
			t.Fatalf("LiveReaders still %d after repeated GC, finalizers never released pooled slots", liveReaders(t, r))
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}

	// The pool must still be fully functional after a purge.
	pool.Critical(1, func() {})
	r.WaitForReaders(prcu.All())
}

// TestUncappedRegisterNeverFails is the tentpole's acceptance test: with
// no cap, Register must never return ErrTooManyReaders no matter how many
// readers are live, and a grace period over the grown population must
// still complete. Over 10k concurrently registered readers per engine.
func TestUncappedRegisterNeverFails(t *testing.T) {
	const goroutines = 16
	per := 640 // 10240 concurrent readers
	if testing.Short() {
		per = 80
	}
	for _, f := range prcu.Flavors() {
		t.Run(string(f), func(t *testing.T) {
			r := prcu.MustNew(f, prcu.Options{})
			readers := make([][]prcu.Reader, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					own := make([]prcu.Reader, 0, per)
					for i := 0; i < per; i++ {
						rd, err := r.Register()
						if err != nil {
							t.Errorf("uncapped Register failed at reader %d: %v", i, err)
							break
						}
						v := prcu.Value(g*per + i)
						rd.Enter(v)
						rd.Exit(v)
						own = append(own, rd)
					}
					readers[g] = own
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			want := goroutines * per
			if got := liveReaders(t, r); got != want {
				t.Fatalf("LiveReaders = %d, want %d", got, want)
			}
			// A wait across the fully grown registry must terminate.
			r.WaitForReaders(prcu.All())

			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for _, rd := range readers[g] {
						rd.Unregister()
					}
				}(g)
			}
			wg.Wait()
			if got := liveReaders(t, r); got != 0 {
				t.Fatalf("LiveReaders = %d after release, want 0", got)
			}
		})
	}
}

// BenchmarkReaderLifecycle isolates the per-goroutine lifecycle overhead
// the ReaderPool exists to remove: acquiring and releasing a usable
// reader, with no critical section in between. This is the cost an
// ephemeral goroutine pays before doing any work.
func BenchmarkReaderLifecycle(b *testing.B) {
	// The scenario is a server with many short-lived goroutines, so run
	// well more workers than processors regardless of -cpu.
	b.Run("register-unregister", func(b *testing.B) {
		r := prcu.NewTreeRCU(prcu.Options{})
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rd, err := r.Register()
				if err != nil {
					b.Fatal(err)
				}
				rd.Unregister()
			}
		})
	})
	b.Run("pool-get-put", func(b *testing.B) {
		pool := prcu.NewReaderPool(prcu.NewTreeRCU(prcu.Options{}))
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				pool.Put(pool.Get())
			}
		})
	})
}

// BenchmarkEphemeralReaders compares the two ways an ephemeral goroutine
// can run a read-side critical section: registering a fresh reader per
// section versus borrowing from a ReaderPool. Tree RCU has the cheapest
// read side, so its numbers isolate the lifecycle overhead itself; D-PRCU
// shows the same comparison with a costlier Enter/Exit mixed in.
func BenchmarkEphemeralReaders(b *testing.B) {
	for _, f := range []prcu.Flavor{prcu.FlavorTree, prcu.FlavorD} {
		b.Run(string(f)+"/register-per-section", func(b *testing.B) {
			r := prcu.MustNew(f, prcu.Options{})
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					rd, err := r.Register()
					if err != nil {
						b.Fatal(err)
					}
					rd.Enter(1)
					rd.Exit(1)
					rd.Unregister()
				}
			})
		})
		b.Run(string(f)+"/pool", func(b *testing.B) {
			r := prcu.MustNew(f, prcu.Options{})
			pool := prcu.NewReaderPool(r)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					rd := pool.Get()
					rd.Enter(1)
					rd.Exit(1)
					pool.Put(rd)
				}
			})
		})
	}
}

// TestReaderPoolCloseReleasesSlots checks the deterministic shutdown
// path: Close drains the cache and unregisters every cached reader
// synchronously, without waiting for the GC finalizer safety net.
func TestReaderPoolCloseReleasesSlots(t *testing.T) {
	r := prcu.NewD(prcu.Options{})
	pool := prcu.NewReaderPool(r)
	for i := 0; i < 8; i++ {
		rd := pool.Get()
		rd.Enter(prcu.Value(i))
		rd.Exit(prcu.Value(i))
		pool.Put(rd)
	}
	pool.Close()
	// Under -race the runtime intentionally drops a fraction of sync.Pool
	// items at Put, so Close cannot reach them synchronously; they fall to
	// the finalizer safety net. Keep collecting until it has run.
	deadline := time.Now().Add(20 * time.Second)
	for liveReaders(t, r) != 0 {
		if !raceEnabled {
			t.Fatalf("LiveReaders = %d after Close, want 0", liveReaders(t, r))
		}
		if time.Now().After(deadline) {
			t.Fatalf("LiveReaders still %d after Close + repeated GC", liveReaders(t, r))
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	expectPanic(t, "Get after Close", func() { pool.Get() })
	// Idempotent.
	pool.Close()
}

// TestReaderPoolPutAfterCloseReleases checks a handle still out when
// Close runs: its Put must release the slot immediately rather than
// repopulate a closed pool.
func TestReaderPoolPutAfterCloseReleases(t *testing.T) {
	r := prcu.NewEER(prcu.Options{})
	pool := prcu.NewReaderPool(r)
	rd := pool.Get()
	pool.Close()
	if n := liveReaders(t, r); n != 1 {
		t.Fatalf("LiveReaders = %d with one handle out, want 1", n)
	}
	pool.Put(rd)
	if n := liveReaders(t, r); n != 0 {
		t.Fatalf("LiveReaders = %d after Put on a closed pool, want 0", n)
	}
}

// TestReaderPoolDoPanicSafety checks the pooled handle's Do: a panic in
// the callback exits the critical section (so grace periods cannot
// wedge) and leaves the handle usable.
func TestReaderPoolDoPanicSafety(t *testing.T) {
	r := prcu.NewDEER(prcu.Options{})
	pool := prcu.NewReaderPool(r)
	rd := pool.Get()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the user panic to propagate")
			}
		}()
		rd.Do(5, func() { panic("user bug") })
	}()
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.All())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitForReaders stuck: pooled Do leaked an open critical section")
	}
	ran := false
	rd.Do(6, func() { ran = true })
	if !ran {
		t.Fatal("Do did not run after a prior panic")
	}
	pool.Put(rd)
}
