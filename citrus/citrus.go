// Package citrus implements the CITRUS concurrent binary search tree of
// Arbel and Attiya (PODC 2014), the first showcase application of the PRCU
// paper (§5.2).
//
// CITRUS is an internal (keys in every node) unbalanced search tree with a
// wait-free Contains and fine-grained-locked Insert/Delete. RCU protects
// every traversal: Contains entirely, and the optimistic search prefix of
// Insert and Delete. The one structurally hard case — deleting a node k
// with two children — replaces k with a *copy* of its successor k′ and may
// unlink the original k′ only after a wait-for-readers, so that every
// pre-existing traversal still finds k′ somewhere.
//
// That wait is where PRCU pays off: the deletion only affects searches for
// keys in (k, k′] (CITRUS's correctness proof shows this formally), so with
// a PRCU engine the tree waits just for those readers, expressed through a
// Domain mapping keys to PRCU values and (k, k′] to a predicate.
package citrus

import (
	"math"
	"sync"
	"sync/atomic"

	"prcu"
)

// sentinelKey is the reserved key of the root sentinel; user keys must be
// smaller, so every real node lives in the sentinel's left subtree and the
// sentinel itself can never be deleted.
const sentinelKey = math.MaxUint64

// node is a tree node. key is immutable; the child pointers are guarded
// cells — readers traverse them only through an open *prcu.Scope, updaters
// through the LoadLocked/Store side under the fine-grained locks; the tags
// version nil-child slots so an optimistic traversal that observed nil can
// detect an intervening insert+delete when it validates; marked flags a
// node that has been spliced out or replaced, and is guarded by mu.
type node struct {
	key    uint64
	value  atomic.Uint64
	child  [2]prcu.Cell[node]
	tag    [2]atomic.Uint64
	mu     sync.Mutex
	marked bool
}

// Domain tells the tree how to present searches to PRCU: MapKey converts a
// search key into the value passed to Enter/Exit, and WaitPredicate builds
// the predicate covering every search on a key in (low, high] — the
// sections a two-child deletion must wait for. A Domain must be consistent:
// for every key x in (low, high], WaitPredicate(low, high) must hold for
// MapKey(x). Over-covering is always safe; under-covering is not.
type Domain struct {
	MapKey        func(key uint64) prcu.Value
	WaitPredicate func(low, high uint64) prcu.Predicate
}

func identity(k uint64) prcu.Value { return k }

// WildcardDomain waits for all readers on every deletion — plain RCU
// semantics. Use it with the baseline engines, whose waits ignore
// predicates anyway.
func WildcardDomain() Domain {
	return Domain{
		MapKey:        identity,
		WaitPredicate: func(_, _ uint64) prcu.Predicate { return prcu.All() },
	}
}

// FuncDomain passes search keys through unchanged and expresses (low,
// high] as a general function predicate — the natural fit for EER-PRCU,
// whose waits evaluate the predicate once per reader (§5.2's
// P(x) = x > k ∧ x ≤ k′).
func FuncDomain() Domain {
	return Domain{
		MapKey: identity,
		WaitPredicate: func(low, high uint64) prcu.Predicate {
			return prcu.Func(func(x prcu.Value) bool { return x > low && x <= high })
		},
	}
}

// CompressedDomain divides the key space into intervals of size s, mapping
// every key in an interval to the same value, so deletion predicates become
// short iterable intervals — the compression §5.2 prescribes for D-PRCU
// (and DEER-PRCU), with s typically the counter-table size.
func CompressedDomain(s uint64) Domain {
	if s == 0 {
		panic("citrus: compression factor must be positive")
	}
	return Domain{
		MapKey: func(k uint64) prcu.Value { return k / s },
		WaitPredicate: func(low, high uint64) prcu.Predicate {
			// Every key in (low, high] compresses into
			// [(low+1)/s, high/s]; covering the whole range is safe even
			// when low and low+1 share a bucket.
			return prcu.Interval((low+1)/s, high/s)
		},
	}
}

// DefaultDomain picks a sensible Domain for an engine constructed by the
// prcu package: exact function predicates for EER, compression by the
// paper's S = |C| = 1024 for D and DEER, and the wildcard for the plain
// RCU baselines.
func DefaultDomain(flavor prcu.Flavor) Domain {
	switch flavor {
	case prcu.FlavorEER:
		return FuncDomain()
	case prcu.FlavorD, prcu.FlavorDEER:
		return CompressedDomain(1024)
	default:
		return WildcardDomain()
	}
}

// enginePair is the tree's engine binding, swapped wholesale behind an
// atomic pointer. Outside a live migration old is nil; during one, old
// holds the engine being drained and the synchronous two-child-delete
// wait covers both (readers may exist on either engine until the
// migrator settles the pair — over-covering is always safe).
type enginePair struct {
	cur prcu.RCU
	old prcu.RCU
}

// Tree is a CITRUS tree. Construct with New; obtain a Handle per goroutine.
type Tree struct {
	eng    atomic.Pointer[enginePair]
	pool   *prcu.ReaderPool
	domain Domain
	root   *node
	size   atomic.Int64

	// rec, when set, moves two-child deletions' grace-period waits off
	// the deleting goroutine; see SetReclaimer.
	rec      *prcu.Reclaimer
	deferred atomic.Uint64
}

// nodeApproxBytes is the backlog byte declaration for one deferred
// unlink: the successor node itself plus its share of bookkeeping. An
// estimate is all the reclaimer needs — the watermark bounds memory in
// these units.
const nodeApproxBytes = 96

// SetReclaimer switches two-child deletions to asynchronous
// reclamation: instead of blocking the deleting goroutine on
// WaitForReaders, Delete publishes the successor's replacement and
// hands the post-grace-period work — marking and unlinking the original
// successor, then releasing the held locks — to rec as an error-aware
// callback. The deleter returns immediately; the affected nodes stay
// locked until the covering grace period completes (the same exclusion
// the synchronous wait provides, moved to the reclaimer's worker), and
// the reclaimer batches many deletions' predicates into few waits.
//
// If rec is shut down with the callback unresolved (bounded CloseCtx on
// a wedged engine), the callback receives the abandonment error: it
// releases the locks WITHOUT unlinking — the tree stays exactly in its
// published intermediate state, which is safe for every reader — but
// the original successor node leaks and updates into its key range may
// retry indefinitely. That trade is intended for process shutdown.
//
// Call before the tree is shared; do not close rec while updaters are
// active (Defer on a closed reclaimer panics). The synchronous path is
// the default when no reclaimer is set.
func (t *Tree) SetReclaimer(rec *prcu.Reclaimer) { t.rec = rec }

// DeferredUnlinks returns how many two-child deletions handed their
// unlink to the reclaimer instead of waiting synchronously.
func (t *Tree) DeferredUnlinks() uint64 { return t.deferred.Load() }

// New returns an empty tree synchronized by r, presenting searches to r
// through domain.
func New(r prcu.RCU, domain Domain) *Tree {
	if domain.MapKey == nil || domain.WaitPredicate == nil {
		panic("citrus: Domain with nil functions")
	}
	t := &Tree{
		pool:   prcu.NewReaderPool(r),
		domain: domain,
		root:   &node{key: sentinelKey},
	}
	t.eng.Store(&enginePair{cur: r})
	return t
}

// Engine returns the engine new readers currently register on.
func (t *Tree) Engine() prcu.RCU { return t.eng.Load().cur }

// waitForReaders runs one grace period covering pred on every engine in
// the pair — during a live migration window readers may exist on both.
func (t *Tree) waitForReaders(pred prcu.Predicate) {
	ep := t.eng.Load()
	ep.cur.WaitForReaders(pred)
	if ep.old != nil {
		ep.old.WaitForReaders(pred)
	}
}

// SwapEngine implements the live-migration front contract: new handles
// register on target, and until SettleEngine the tree's synchronous
// deletion waits cover both target and the previous engine. Returns the
// previous engine. Normally called only by a prcu.Migrator, which also
// drains the previous engine's readers before settling.
func (t *Tree) SwapEngine(target prcu.RCU) prcu.RCU {
	for {
		ep := t.eng.Load()
		if t.eng.CompareAndSwap(ep, &enginePair{cur: target, old: ep.cur}) {
			t.pool.SwapEngine(target)
			return ep.cur
		}
	}
}

// SettleEngine drops the drained engine from the pair once the migrator
// has verified it is quiescent.
func (t *Tree) SettleEngine() {
	for {
		ep := t.eng.Load()
		if ep.old == nil {
			return
		}
		if t.eng.CompareAndSwap(ep, &enginePair{cur: ep.cur}) {
			return
		}
	}
}

// DrainStale releases pool-cached readers stranded on a pre-swap
// engine; the migrator calls it between registry-drain re-checks.
func (t *Tree) DrainStale() { t.pool.DrainStale() }

// Handle is one goroutine's access to the tree, wrapping its reader slot
// in a typed guard: every traversal happens inside a *prcu.Scope obtained
// from the guard, and the child cells refuse loads without one. A Handle
// must not be used concurrently.
type Handle struct {
	t *Tree
	g *prcu.GuardedReader
}

// NewHandle registers a pinned reader slot and returns a handle. Call
// Close when the goroutine is done with the tree. Registration only fails
// when the engine was built with a reader cap; prefer Handle for ephemeral
// goroutines.
func (t *Tree) NewHandle() (*Handle, error) {
	for {
		eng := t.Engine()
		rd, err := eng.Register()
		if err != nil {
			return nil, err
		}
		// Re-check the engine indirection after Register: a live
		// migration flipping the tree between the load and the Register
		// could otherwise strand this reader on a source engine whose
		// drain already read an empty registry (DESIGN.md "Handover
		// safety"). Passing the re-check means the registration was
		// visible before the swap, so the drain's poll observes it.
		if t.Engine() == eng {
			return &Handle{t: t, g: prcu.WrapReader(rd)}, nil
		}
		rd.Unregister()
	}
}

// Handle borrows a pooled reader and returns a handle around it — the
// infallible choice for goroutines that come and go. Close returns the
// reader to the pool for the next borrower.
func (t *Tree) Handle() *Handle {
	return &Handle{t: t, g: prcu.WrapReader(t.pool.Get())}
}

// Close releases the handle's reader: a pinned reader's slot is freed, a
// pooled reader goes back to the pool.
func (h *Handle) Close() {
	h.g.Unregister()
	h.g = nil
}

// Size returns the number of keys in the tree. It is exact when the tree
// is quiescent and approximate under concurrent updates.
func (t *Tree) Size() int { return int(t.size.Load()) }

func checkKey(k uint64) {
	if k == sentinelKey {
		panic("citrus: key MaxUint64 is reserved")
	}
}

func dirFor(k uint64, n *node) int {
	if k > n.key {
		return 1
	}
	return 0
}

// traverse walks from the root toward k, returning the last edge followed:
// prev, the direction taken from prev, the tag of that edge observed
// *before* reading the child, and curr (nil, or the node holding k).
// The scope s witnesses the read-side critical section the walk requires.
func (t *Tree) traverse(s *prcu.Scope, k uint64) (prev *node, dir int, tag uint64, curr *node) {
	prev, dir = t.root, 0
	tag = prev.tag[0].Load()
	curr = prev.child[0].Load(s)
	for curr != nil && curr.key != k {
		prev = curr
		dir = dirFor(k, curr)
		tag = prev.tag[dir].Load()
		curr = prev.child[dir].Load(s)
	}
	return prev, dir, tag, curr
}

// Contains reports whether k is in the tree. It is wait-free: one RCU
// traversal, no locks, no retries.
func (h *Handle) Contains(k uint64) bool {
	_, ok := h.Get(k)
	return ok
}

// lookup walks to the node holding k, reading its value in place. The
// scope s witnesses the read-side critical section on MapKey(k).
func (t *Tree) lookup(s *prcu.Scope, k uint64) (uint64, bool) {
	curr := t.root.child[0].Load(s)
	for curr != nil && curr.key != k {
		curr = curr.child[dirFor(k, curr)].Load(s)
	}
	if curr == nil {
		return 0, false
	}
	return curr.value.Load(), true
}

// Get returns the value stored under k. The traversal runs under
// GuardedReader.Read, so a panicking lookup re-raises with the critical
// section closed instead of wedging every future covering grace period.
func (h *Handle) Get(k uint64) (val uint64, ok bool) {
	checkKey(k)
	h.g.Read(h.t.domain.MapKey(k), func(s *prcu.Scope) {
		val, ok = h.t.lookup(s, k)
	})
	return val, ok
}

// Get is the one-shot form: it borrows a pooled reader for a single
// lookup. Hot loops should hold a Handle instead and amortize the borrow.
func (t *Tree) Get(k uint64) (uint64, bool) {
	h := t.Handle()
	defer h.Close()
	return h.Get(k)
}

// Contains is the one-shot membership test; see Get.
func (t *Tree) Contains(k uint64) bool {
	_, ok := t.Get(k)
	return ok
}

// Insert adds k with value val. It returns false if k is already present
// (the value is left unchanged, as in the paper's set semantics).
func (h *Handle) Insert(k, val uint64) bool {
	checkKey(k)
	t := h.t
	dv := t.domain.MapKey(k)
	for {
		// Validated-optimistic pattern: the traversal runs inside a scope,
		// and the nodes it found deliberately outlive it — GuardEscape is
		// the audited hatch. Safe because the pointers are only acted on
		// after lock + tag/marked revalidation below.
		s := h.g.Enter(dv)
		p, dir, tag, c := t.traverse(s, k)
		prev := prcu.GuardEscape(s, p)
		curr := prcu.GuardEscape(s, c)
		h.g.Exit(s)
		if curr != nil {
			return false
		}
		prev.mu.Lock()
		if !prev.marked && prev.child[dir].LoadLocked() == nil && prev.tag[dir].Load() == tag {
			n := &node{key: k}
			n.value.Store(val)
			prev.child[dir].Store(n)
			prev.mu.Unlock()
			t.size.Add(1)
			return true
		}
		prev.mu.Unlock()
	}
}

// Delete removes k, returning whether it was present.
//
// A node with at most one child is spliced out under the locks of itself
// and its parent. A node with two children is replaced by a copy of its
// successor; the original successor may be unlinked only after
// WaitForReaders covering searches on (k, successor] — otherwise a
// pre-existing traversal headed for the successor could miss it in both
// places (§5.2 and Figure 4).
func (h *Handle) Delete(k uint64) bool {
	checkKey(k)
	t := h.t
	dv := t.domain.MapKey(k)
	for {
		// Same escape-then-revalidate pattern as Insert.
		s := h.g.Enter(dv)
		p, dir, _, c := t.traverse(s, k)
		prev := prcu.GuardEscape(s, p)
		curr := prcu.GuardEscape(s, c)
		h.g.Exit(s)
		if curr == nil {
			return false
		}
		prev.mu.Lock()
		curr.mu.Lock()
		if prev.marked || curr.marked || prev.child[dir].LoadLocked() != curr {
			curr.mu.Unlock()
			prev.mu.Unlock()
			continue
		}
		left, right := curr.child[0].LoadLocked(), curr.child[1].LoadLocked()
		if left == nil || right == nil {
			// At most one child: splice curr out.
			repl := left
			if repl == nil {
				repl = right
			}
			curr.marked = true
			prev.child[dir].Store(repl)
			if repl == nil {
				prev.tag[dir].Add(1)
			}
			curr.mu.Unlock()
			prev.mu.Unlock()
			t.size.Add(-1)
			return true
		}
		if t.deleteInternal(prev, dir, curr, right) {
			t.size.Add(-1)
			return true
		}
		// Validation deeper down failed; locks already released.
	}
}

// deleteInternal handles the two-children case. Caller holds prev and curr
// locks and has validated them; deleteInternal releases all locks before
// returning. It returns false if the successor validation failed and the
// whole operation must retry.
func (t *Tree) deleteInternal(prev *node, dir int, curr, right *node) bool {
	// Find the successor: the leftmost node of curr's right subtree. Read
	// each nil-candidate edge's tag before the child pointer so the
	// validation below can detect churn. The walk runs on the updater-side
	// (LoadLocked) cells: it is optimistic — the nodes are not yet locked —
	// but every observation is revalidated under locks before acting, and
	// Go's GC rules out use-after-free for the pointers themselves.
	prevSucc, succ := curr, right
	var succTag uint64
	for {
		tag := succ.tag[0].Load()
		next := succ.child[0].LoadLocked()
		if next == nil {
			succTag = tag
			break
		}
		prevSucc, succ = succ, next
	}
	if prevSucc != curr {
		prevSucc.mu.Lock()
	}
	succ.mu.Lock()

	dirPS := 0
	if prevSucc == curr {
		dirPS = 1
	}
	ok := !prevSucc.marked && prevSucc.child[dirPS].LoadLocked() == succ &&
		!succ.marked && succ.child[0].LoadLocked() == nil && succ.tag[0].Load() == succTag
	if !ok {
		succ.mu.Unlock()
		if prevSucc != curr {
			prevSucc.mu.Unlock()
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		return false
	}

	// Replace curr with a copy of the successor. New operations find the
	// successor's key at its new location immediately; the original stays
	// reachable for pre-existing traversals until the grace period ends.
	curr.marked = true
	n := &node{key: succ.key}
	n.value.Store(succ.value.Load())
	n.child[0].Store(curr.child[0].LoadLocked())
	n.child[1].Store(curr.child[1].LoadLocked())
	// Lock the copy before publishing so no concurrent update can touch it
	// while we are still rewiring its right edge below.
	n.mu.Lock()
	prev.child[dir].Store(n)

	// finish is everything that must wait for the grace period: mark the
	// original successor so pre-existing inserts cannot attach children
	// to it, unlink it, and release every held lock. On an abandoned
	// grace period (bounded shutdown) it releases the locks only — the
	// published intermediate state with both copies reachable is safe for
	// readers, whereas unlinking early is not. succ is still marked so a
	// validation can never splice children onto the leaked node.
	finish := func(err error) {
		succ.marked = true
		if err == nil {
			succRight := succ.child[1].LoadLocked()
			if prevSucc == curr {
				n.child[1].Store(succRight)
				if succRight == nil {
					n.tag[1].Add(1)
				}
			} else {
				prevSucc.child[0].Store(succRight)
				if succRight == nil {
					prevSucc.tag[0].Add(1)
				}
			}
		}
		n.mu.Unlock()
		succ.mu.Unlock()
		if prevSucc != curr {
			prevSucc.mu.Unlock()
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
	}

	// The heart of §5.2: wait only for searches on keys in (k, k′] —
	// synchronously here, or batched on the reclaimer's worker, which
	// coalesces many deletions' predicates into few grace periods. The
	// locks travel with the callback either way (releasing a Mutex from
	// another goroutine is legal in Go), so the exclusion window is
	// identical to the synchronous wait's.
	pred := t.domain.WaitPredicate(curr.key, succ.key)
	if rec := t.rec; rec != nil {
		t.deferred.Add(1)
		rec.Defer(pred, nodeApproxBytes, finish)
		return true
	}
	t.waitForReaders(pred)
	finish(nil)
	return true
}

// Compile-time check of the live-migration front contract.
var _ prcu.EngineFront = (*Tree)(nil)
