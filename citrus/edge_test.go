package citrus

import (
	"testing"

	"prcu"
)

// TestExtremeKeys exercises the domain boundaries: key 0 (left edge of
// every interval check) and MaxUint64-1 (just below the sentinel).
func TestExtremeKeys(t *testing.T) {
	tr := New(prcu.NewEER(prcu.Options{MaxReaders: 4}), FuncDomain())
	h := mustHandle(t, tr)
	defer h.Close()
	lo, hi := uint64(0), ^uint64(0)-1
	if !h.Insert(lo, 1) || !h.Insert(hi, 2) {
		t.Fatal("boundary inserts failed")
	}
	if !h.Contains(lo) || !h.Contains(hi) {
		t.Fatal("boundary keys missing")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.Delete(lo) || !h.Delete(hi) {
		t.Fatal("boundary deletes failed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRootWithTwoChildren forces the copy-successor path on the
// tree's topmost real node repeatedly.
func TestDeleteRootWithTwoChildren(t *testing.T) {
	tr := New(prcu.NewD(prcu.Options{MaxReaders: 4}), CompressedDomain(8))
	h := mustHandle(t, tr)
	defer h.Close()
	// Chain of roots: each deletion of the current root (always given two
	// children) must promote a successor copy.
	keys := []uint64{50, 25, 75, 60, 80, 55, 65}
	for _, k := range keys {
		h.Insert(k, k)
	}
	for _, root := range []uint64{50, 55, 60} {
		if !h.Delete(root) {
			t.Fatalf("delete root %d failed", root)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after deleting %d: %v", root, err)
		}
	}
	for _, k := range []uint64{25, 75, 65, 80} {
		if !h.Contains(k) {
			t.Fatalf("key %d lost across root deletions", k)
		}
	}
}

// TestSuccessorIsImmediateRightChild pins the prevSucc == curr branch of
// deleteInternal (successor with no left subtree).
func TestSuccessorIsImmediateRightChild(t *testing.T) {
	tr := New(prcu.NewTimeRCU(prcu.Options{MaxReaders: 4}), WildcardDomain())
	h := mustHandle(t, tr)
	defer h.Close()
	h.Insert(10, 1)
	h.Insert(5, 2)
	h.Insert(20, 3) // 20 = successor of 10, immediate right child
	h.Insert(30, 4)
	if !h.Delete(10) {
		t.Fatal("delete failed")
	}
	for _, k := range []uint64{5, 20, 30} {
		if !h.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGetValueStability: Get must return the value stored by the insert
// that created the key, across unrelated churn.
func TestGetValueStability(t *testing.T) {
	tr := New(prcu.NewDEER(prcu.Options{MaxReaders: 4}), CompressedDomain(16))
	h := mustHandle(t, tr)
	defer h.Close()
	h.Insert(7, 777)
	for i := uint64(0); i < 500; i++ {
		h.Insert(100+i%50, i)
		h.Delete(100 + (i+25)%50)
		if v, ok := h.Get(7); !ok || v != 777 {
			t.Fatalf("Get(7) = %d,%v after churn step %d", v, ok, i)
		}
	}
}

// TestReinsertAfterInternalDelete: after the copy-successor dance, the
// deleted key must be insertable again and land correctly.
func TestReinsertAfterInternalDelete(t *testing.T) {
	tr := New(prcu.NewD(prcu.Options{MaxReaders: 4}), CompressedDomain(8))
	h := mustHandle(t, tr)
	defer h.Close()
	for _, k := range []uint64{50, 25, 75, 60, 90} {
		h.Insert(k, k)
	}
	if !h.Delete(50) {
		t.Fatal("delete")
	}
	if !h.Insert(50, 500) {
		t.Fatal("re-insert")
	}
	if v, ok := h.Get(50); !ok || v != 500 {
		t.Fatalf("Get(50) = %d,%v", v, ok)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
