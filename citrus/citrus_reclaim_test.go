package citrus

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu"
)

// TestReclaimDeferredUnlink: with a reclaimer attached, two-child
// deletions return without waiting; after a Barrier the tree must be
// exactly the set the operations describe.
func TestReclaimDeferredUnlink(t *testing.T) {
	r := prcu.MustNew(prcu.FlavorEER, prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{Shards: 1})
	tree := New(r, FuncDomain())
	tree.SetReclaimer(rec)
	h, err := tree.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// A chain of inserts that guarantees internal (two-child) nodes:
	// parent 500 with subtrees on both sides, then delete the internal
	// keys.
	keys := []uint64{500, 250, 750, 125, 375, 625, 875, 60, 190, 310, 440}
	for _, k := range keys {
		if !h.Insert(k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for _, k := range []uint64{250, 500} { // both have two children
		if !h.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	rec.Barrier()
	if got := tree.DeferredUnlinks(); got == 0 {
		t.Fatal("no deletion took the deferred path; the test exercised nothing")
	}
	for _, k := range keys {
		want := k != 250 && k != 500
		if got := h.Contains(k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
	if err := rec.CloseCtx(context.Background()); err != nil {
		t.Fatalf("clean CloseCtx returned %v", err)
	}
}

// TestReclaimChurnUnderReaders hammers deferred deletions against
// concurrent readers and inserters; the race detector plus the final
// membership audit are the assertions.
func TestReclaimChurnUnderReaders(t *testing.T) {
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{
		Shards:     2,
		MaxPending: 256,
		FlushDelay: 200 * time.Microsecond,
	})
	tree := New(r, DefaultDomain(prcu.FlavorD))
	tree.SetReclaimer(rec)

	const keys = 512
	h, err := tree.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	h.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rh := tree.Handle()
			defer rh.Close()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rh.Contains((i*7 + uint64(g)) % keys)
			}
		}(g)
	}
	var flips atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wh := tree.Handle()
			defer wh.Close()
			for i := 0; i < 300; i++ {
				k := uint64((i*13 + g*7) % keys)
				if wh.Delete(k) {
					flips.Add(1)
					wh.Insert(k, k)
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	rec.Barrier()

	ah := tree.Handle()
	defer ah.Close()
	for k := uint64(0); k < keys; k++ {
		if !ah.Contains(k) {
			t.Fatalf("key %d lost in churn (every delete was reinserted)", k)
		}
	}
	if flips.Load() == 0 {
		t.Fatal("no delete/reinsert cycles ran")
	}
	rec.Close()
	t.Logf("deferred unlinks %d, grace periods %d", tree.DeferredUnlinks(), rec.Graces())
}
