package citrus_test

import (
	"fmt"

	"prcu"
	"prcu/citrus"
)

// Build a CITRUS tree over D-PRCU with the paper's compressed key domain,
// and run the basic operations through a handle.
func Example() {
	engine := prcu.NewD(prcu.Options{MaxReaders: 8})
	tree := citrus.New(engine, citrus.CompressedDomain(1024))

	h, err := tree.NewHandle()
	if err != nil {
		panic(err)
	}
	defer h.Close()

	h.Insert(10, 100)
	h.Insert(20, 200)
	h.Insert(30, 300)
	h.Delete(20) // internal node: copy-successor + targeted WaitForReaders

	fmt.Println(h.Contains(10), h.Contains(20), h.Contains(30))
	v, ok := h.Get(30)
	fmt.Println(v, ok)
	fmt.Println(tree.Size())
	// Output:
	// true false true
	// 300 true
	// 2
}

// DefaultDomain picks the right key-to-value mapping for each engine
// flavor, so generic code can stay engine agnostic.
func ExampleDefaultDomain() {
	for _, f := range []prcu.Flavor{prcu.FlavorEER, prcu.FlavorD, prcu.FlavorTime} {
		engine := prcu.MustNew(f, prcu.Options{MaxReaders: 4})
		tree := citrus.New(engine, citrus.DefaultDomain(f))
		h, err := tree.NewHandle()
		if err != nil {
			panic(err)
		}
		h.Insert(1, 1)
		fmt.Println(engine.Name(), h.Contains(1))
		h.Close()
	}
	// Output:
	// EER-PRCU true
	// D-PRCU true
	// Time RCU true
}
