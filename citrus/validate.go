package citrus

import "fmt"

// Validate checks the structural invariants of a quiescent tree: the BST
// ordering property, no reachable marked nodes, no reachable sentinel
// duplicates, and agreement between the reachable key count and Size. It
// must only be called while no operations are in flight (it takes no locks
// and is intended for tests and integrity checks at rest).
func (t *Tree) Validate() error {
	count := 0
	if err := validateNode(t.root.child[0].LoadLocked(), 0, sentinelKey, &count); err != nil {
		return err
	}
	if r := t.root.child[1].LoadLocked(); r != nil {
		return fmt.Errorf("citrus: sentinel grew a right child (key %d)", r.key)
	}
	if got := t.Size(); got != count {
		return fmt.Errorf("citrus: Size() = %d but %d keys reachable", got, count)
	}
	return nil
}

// validateNode checks the subtree at n against the open key interval
// [low, high), accumulating the reachable key count.
func validateNode(n *node, low, high uint64, count *int) error {
	if n == nil {
		return nil
	}
	if n.key < low || n.key >= high {
		return fmt.Errorf("citrus: key %d outside interval [%d, %d)", n.key, low, high)
	}
	n.mu.Lock()
	marked := n.marked
	n.mu.Unlock()
	if marked {
		return fmt.Errorf("citrus: marked node %d reachable in quiescent tree", n.key)
	}
	*count++
	if err := validateNode(n.child[0].LoadLocked(), low, n.key, count); err != nil {
		return err
	}
	return validateNode(n.child[1].LoadLocked(), n.key+1, high, count)
}

// Keys returns the tree's keys in ascending order. Like Validate it is a
// quiescent-only helper: it takes no locks and must not race with updates.
func (t *Tree) Keys() []uint64 {
	keys := make([]uint64, 0, t.Size())
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.child[0].LoadLocked())
		keys = append(keys, n.key)
		walk(n.child[1].LoadLocked())
	}
	walk(t.root.child[0].LoadLocked())
	return keys
}
