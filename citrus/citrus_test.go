package citrus

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"prcu"
)

// treeVariants builds a fresh tree for every engine/domain pairing the
// paper evaluates.
func treeVariants(maxReaders int) map[string]func() *Tree {
	return map[string]func() *Tree{
		"EER":  func() *Tree { return New(prcu.NewEER(prcu.Options{MaxReaders: maxReaders}), FuncDomain()) },
		"D":    func() *Tree { return New(prcu.NewD(prcu.Options{MaxReaders: maxReaders}), CompressedDomain(64)) },
		"DEER": func() *Tree { return New(prcu.NewDEER(prcu.Options{MaxReaders: maxReaders}), CompressedDomain(64)) },
		"Time": func() *Tree { return New(prcu.NewTimeRCU(prcu.Options{MaxReaders: maxReaders}), WildcardDomain()) },
		"URCU": func() *Tree { return New(prcu.NewURCU(prcu.Options{MaxReaders: maxReaders}), WildcardDomain()) },
		"Tree": func() *Tree { return New(prcu.NewTreeRCU(prcu.Options{MaxReaders: maxReaders}), WildcardDomain()) },
		"Dist": func() *Tree { return New(prcu.NewDistRCU(prcu.Options{MaxReaders: maxReaders}), WildcardDomain()) },
	}
}

func mustHandle(t *testing.T, tr *Tree) *Handle {
	t.Helper()
	h, err := tr.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEmptyTree(t *testing.T) {
	tr := New(prcu.NewEER(prcu.Options{MaxReaders: 4}), FuncDomain())
	h := mustHandle(t, tr)
	defer h.Close()
	if h.Contains(5) {
		t.Fatal("empty tree contains 5")
	}
	if h.Delete(5) {
		t.Fatal("delete from empty tree succeeded")
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	for name, mk := range treeVariants(4) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			h := mustHandle(t, tr)
			defer h.Close()
			if !h.Insert(10, 100) {
				t.Fatal("first insert failed")
			}
			if h.Insert(10, 200) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := h.Get(10); !ok || v != 100 {
				t.Fatalf("Get(10) = %d,%v want 100,true", v, ok)
			}
			if !h.Delete(10) {
				t.Fatal("delete failed")
			}
			if h.Contains(10) {
				t.Fatal("deleted key still present")
			}
			if h.Delete(10) {
				t.Fatal("double delete succeeded")
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSentinelKeyPanics(t *testing.T) {
	tr := New(prcu.NewEER(prcu.Options{MaxReaders: 4}), FuncDomain())
	h := mustHandle(t, tr)
	defer h.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("inserting the reserved key must panic")
		}
	}()
	h.Insert(^uint64(0), 0)
}

// TestDeleteShapes exercises every structural deletion case: leaf, single
// left child, single right child, two children with adjacent successor
// (prevSucc == curr), and two children with a deep successor.
func TestDeleteShapes(t *testing.T) {
	for name, mk := range treeVariants(4) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			h := mustHandle(t, tr)
			defer h.Close()

			// Build:        50
			//            /      \
			//          30        70
			//         /  \      /  \
			//       20    40  60    90
			//                        \
			//                  ...    95 (deep successor shapes below)
			for _, k := range []uint64{50, 30, 70, 20, 40, 60, 90, 95} {
				h.Insert(k, k*10)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}

			// Leaf.
			if !h.Delete(20) {
				t.Fatal("delete leaf")
			}
			// Single right child (90 -> 95).
			if !h.Delete(90) {
				t.Fatal("delete one-right-child node")
			}
			// Re-add to get a single left child case.
			h.Insert(35, 0)
			if !h.Delete(40) { // 40 has left child 35? no: 35 < 40, child of 40? 35>30, <40: 30's right is 40, 35 goes left of 40.
				t.Fatal("delete one-left-child node")
			}
			// Two children, adjacent successor: 50's successor is 60 (child
			// of 70): deep-ish. Delete 30 first: children 20(gone) => 35
			// left, nothing right? After deletions: 30 has left 35, no
			// right -> single child. Delete 70: children 60 and 95;
			// successor of 70 is 95 (prevSucc == curr since 95 is 70's
			// right child with no left subtree).
			if !h.Delete(70) {
				t.Fatal("delete two-children node with adjacent successor")
			}
			if h.Contains(70) || !h.Contains(95) || !h.Contains(60) {
				t.Fatal("tree contents wrong after adjacent-successor delete")
			}
			// Two children, deep successor: 50 has left 30-subtree and
			// right subtree now rooted at 95 with left child 60; successor
			// of 50 is 60, two hops down.
			if !h.Delete(50) {
				t.Fatal("delete two-children node with deep successor")
			}
			if h.Contains(50) || !h.Contains(60) || !h.Contains(95) {
				t.Fatal("tree contents wrong after deep-successor delete")
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			want := []uint64{30, 35, 60, 95}
			got := tr.Keys()
			if len(got) != len(want) {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Keys = %v, want %v", got, want)
				}
			}
		})
	}
}

// TestSequentialAgainstModel drives one variant through a long random
// schedule, mirroring every operation into a map and comparing outcomes.
func TestSequentialAgainstModel(t *testing.T) {
	for name, mk := range treeVariants(4) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			h := mustHandle(t, tr)
			defer h.Close()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					_, inModel := model[k]
					if got := h.Insert(k, k+1); got == inModel {
						t.Fatalf("op %d: Insert(%d) = %v, model has key: %v", i, k, got, inModel)
					}
					if !inModel {
						model[k] = k + 1
					}
				case 1:
					_, inModel := model[k]
					if got := h.Delete(k); got != inModel {
						t.Fatalf("op %d: Delete(%d) = %v, model has key: %v", i, k, got, inModel)
					}
					delete(model, k)
				default:
					v, inModel := model[k]
					gv, got := h.Get(k)
					if got != inModel || (got && gv != v) {
						t.Fatalf("op %d: Get(%d) = %d,%v, model %d,%v", i, k, gv, got, v, inModel)
					}
				}
			}
			if tr.Size() != len(model) {
				t.Fatalf("Size = %d, model %d", tr.Size(), len(model))
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			keys := tr.Keys()
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
				t.Fatal("Keys not sorted")
			}
		})
	}
}

// TestQuickInsertDeleteSet is a property test: any sequence of inserts and
// deletes leaves the tree holding exactly the set a reference map holds.
func TestQuickInsertDeleteSet(t *testing.T) {
	tr := New(prcu.NewD(prcu.Options{MaxReaders: 4}), CompressedDomain(16))
	h, err := tr.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	f := func(ops []uint16) bool {
		model := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 97)
			if op&0x8000 != 0 {
				h.Delete(k)
				delete(model, k)
			} else {
				h.Insert(k, k)
				model[k] = true
			}
		}
		for k := uint64(0); k < 97; k++ {
			if h.Contains(k) != model[k] {
				return false
			}
		}
		if tr.Validate() != nil {
			return false
		}
		// Drain the tree so the next quick iteration starts clean.
		for k := uint64(0); k < 97; k++ {
			h.Delete(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointKeys has goroutines updating disjoint key ranges —
// every operation must succeed exactly as in isolation.
func TestConcurrentDisjointKeys(t *testing.T) {
	for name, mk := range treeVariants(16) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			const gs, perG = 8, 300
			var wg sync.WaitGroup
			errs := make(chan error, gs)
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := tr.NewHandle()
					if err != nil {
						errs <- err
						return
					}
					defer h.Close()
					base := uint64(g * 10000)
					for i := uint64(0); i < perG; i++ {
						if !h.Insert(base+i, i) {
							t.Errorf("goroutine %d: insert %d failed", g, base+i)
							return
						}
					}
					for i := uint64(0); i < perG; i++ {
						if !h.Contains(base + i) {
							t.Errorf("goroutine %d: key %d missing", g, base+i)
							return
						}
					}
					for i := uint64(0); i < perG; i += 2 {
						if !h.Delete(base + i) {
							t.Errorf("goroutine %d: delete %d failed", g, base+i)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if want := gs * perG / 2; tr.Size() != want {
				t.Fatalf("Size = %d, want %d", tr.Size(), want)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentMixedStress hammers a small hot key range from many
// goroutines and validates the final structure. Small ranges maximize
// two-children deletions and successor races.
func TestConcurrentMixedStress(t *testing.T) {
	for name, mk := range treeVariants(16) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			const gs = 8
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := tr.NewHandle()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					rng := rand.New(rand.NewSource(int64(g)))
					for !stop.Load() {
						k := uint64(rng.Intn(64))
						switch rng.Intn(3) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Contains(k)
						}
					}
				}(g)
			}
			time.Sleep(300 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPermanentKeysAlwaysVisible pins down the consistency property the
// wait-for-readers exists for: while deleters churn neighbors, a reader
// must never miss a key that is permanently in the tree. Missing one would
// be exactly the Figure 4 anomaly (successor moved up while a traversal was
// inside the old subtree).
func TestPermanentKeysAlwaysVisible(t *testing.T) {
	for name, mk := range treeVariants(16) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			setup, err := tr.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			permanent := []uint64{10, 25, 40, 55, 70, 85}
			for _, k := range permanent {
				setup.Insert(k, k)
			}
			setup.Close()

			var stop atomic.Bool
			var wg sync.WaitGroup
			// Churners insert/delete everything except the permanent keys.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := tr.NewHandle()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					rng := rand.New(rand.NewSource(int64(100 + g)))
					for !stop.Load() {
						k := uint64(rng.Intn(100))
						skip := false
						for _, p := range permanent {
							if k == p {
								skip = true
								break
							}
						}
						if skip {
							continue
						}
						if rng.Intn(2) == 0 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					}
				}(g)
			}
			// Readers assert the permanent keys never vanish.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h, err := tr.NewHandle()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					for !stop.Load() {
						for _, p := range permanent {
							if !h.Contains(p) {
								t.Errorf("permanent key %d missing from a read", p)
								stop.Store(true)
								return
							}
						}
					}
				}()
			}
			time.Sleep(400 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDefaultDomain(t *testing.T) {
	for _, f := range prcu.Flavors() {
		d := DefaultDomain(f)
		if d.MapKey == nil || d.WaitPredicate == nil {
			t.Fatalf("DefaultDomain(%s) incomplete", f)
		}
		// Consistency: for keys in (low, high], the predicate must hold
		// for the mapped value.
		for low := uint64(0); low < 50; low += 7 {
			high := low + 1 + low%13
			p := d.WaitPredicate(low, high)
			for k := low + 1; k <= high; k++ {
				if !p.Holds(d.MapKey(k)) {
					t.Fatalf("DefaultDomain(%s): predicate for (%d,%d] misses key %d", f, low, high, k)
				}
			}
		}
	}
}

func TestCompressedDomainConsistency(t *testing.T) {
	f := func(low16, span8, s8 uint8) bool {
		s := uint64(s8%32) + 1
		d := CompressedDomain(s)
		low := uint64(low16)
		high := low + 1 + uint64(span8%64)
		p := d.WaitPredicate(low, high)
		for k := low + 1; k <= high; k++ {
			if !p.Holds(d.MapKey(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedDomainZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CompressedDomain(0) must panic")
		}
	}()
	CompressedDomain(0)
}

func TestHandleExhaustion(t *testing.T) {
	tr := New(prcu.NewEER(prcu.Options{MaxReaders: 1}), FuncDomain())
	h := mustHandle(t, tr)
	if _, err := tr.NewHandle(); err == nil {
		t.Fatal("expected handle exhaustion error")
	}
	h.Close()
	h2, err := tr.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	h2.Close()
}
