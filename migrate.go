package prcu

import (
	"context"
	"sync"
	"time"

	"prcu/internal/migrate"
	"prcu/internal/obs"
)

// EngineFront is one reader entry point a live migration flips:
// anything holding its engine behind an atomic indirection.
// *ReaderPool, *hashtable.Map and *citrus.Tree implement it.
type EngineFront = migrate.Front

// MigrationState is a migrator's export-plane self-report (also served
// under the /debug/prcu/health "migrations" section and the
// prcu_migrate_* metric families).
type MigrationState = obs.MigrationState

// MigratorConfig wires a Migrator to a live workload.
type MigratorConfig struct {
	// Name keys the migrator in the export plane. Empty skips export
	// registration.
	Name string
	// Engine is the engine currently serving the workload; Flavor is
	// its flavor token. Both are required.
	Engine RCU
	Flavor Flavor
	// Fronts are the reader entry points the migration flips. They must
	// cover every path that registers readers on Engine: a reader
	// registered outside them never drains, and migration (safely)
	// rolls back on the phase deadline.
	Fronts []EngineFront
	// Reclaimer, when non-nil, is carried across the handover: its
	// grace periods cover both engines for the migration window and its
	// pre-flip backlog is flushed before the source is decommissioned.
	Reclaimer *Reclaimer
	// Options construct the target engine on each To call. Metrics and
	// StallTimeout set here apply to the target exactly as New applies
	// them.
	Options Options

	// Protocol timings; see internal/migrate.Config. Zero values take
	// the defaults (10s phases, 50µs..5ms backoff, no escalation).
	PhaseTimeout time.Duration
	Backoff      time.Duration
	MaxBackoff   time.Duration
	// StallTimeout, when positive, escalates the source's stall
	// watchdog for the migration window: a stall during a drain phase
	// triggers rollback immediately. The source's own watchdog
	// configuration is restored exactly afterwards.
	StallTimeout time.Duration
	OnStall      func(StallReport)
	// Metrics, when non-nil, records protocol transitions (EvMigrate
	// trace events + the migrate-event counter).
	Metrics *Metrics
}

// Migrator moves a live workload between engine flavors with the
// two-phase drain-and-handover protocol (package internal/migrate;
// safety argument in DESIGN.md "Handover safety"). It is safe for
// concurrent use; migrations serialize.
type Migrator struct {
	inner *migrate.Migrator
	opt   Options

	mu     sync.Mutex
	cur    RCU
	flavor Flavor
	fronts []EngineFront
	rec    *Reclaimer
}

// NewMigrator returns a Migrator for the workload described by cfg.
// Call Close when done to unregister it from the export plane.
func NewMigrator(cfg MigratorConfig) *Migrator {
	if cfg.Engine == nil {
		panic("prcu: NewMigrator with nil Engine")
	}
	m := &Migrator{
		opt:    cfg.Options,
		cur:    cfg.Engine,
		flavor: cfg.Flavor,
		fronts: cfg.Fronts,
		rec:    cfg.Reclaimer,
	}
	m.inner = migrate.New(migrate.Config{
		Name:         cfg.Name,
		PhaseTimeout: cfg.PhaseTimeout,
		Backoff:      cfg.Backoff,
		MaxBackoff:   cfg.MaxBackoff,
		StallTimeout: cfg.StallTimeout,
		OnStall:      cfg.OnStall,
		Metrics:      cfg.Metrics,
	})
	return m
}

// To migrates the workload to flavor: it constructs a fresh target
// engine with the configured Options and runs the drain-and-handover
// protocol against it. On success the Migrator tracks the new engine;
// on failure the source wiring is already restored exactly and the
// phase's error is returned. Migrating to the current flavor is a
// no-op.
func (m *Migrator) To(ctx context.Context, flavor Flavor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if flavor == m.flavor {
		return nil
	}
	target, err := New(flavor, m.opt)
	if err != nil {
		return err
	}
	if err := m.inner.Migrate(ctx, m.cur, target, m.fronts, m.rec); err != nil {
		// The abandoned target's export binding (installed by
		// Options.attach under the target's name) would otherwise linger
		// as a stale /metrics series for an engine nothing runs on.
		m.dropObsBinding(target)
		return err
	}
	source := m.cur
	m.cur, m.flavor = target, flavor
	// Same for the decommissioned source after a successful handover.
	m.dropObsBinding(source)
	return nil
}

// dropObsBinding removes the export-plane binding Options.attach
// installed for an engine that no longer serves the workload — the
// abandoned target of a rolled-back migration, or the decommissioned
// source of a completed one. Guarded so it can only undo a binding this
// migrator's own Options made: the name must be bound to our Metrics and
// must not be the live engine's name (same-flavor rebinds share both).
// Callers hold m.mu.
func (m *Migrator) dropObsBinding(eng RCU) {
	if m.opt.Metrics == nil || eng == nil {
		return
	}
	name := eng.Name()
	if name == m.cur.Name() || obs.Registered(name) != m.opt.Metrics {
		return
	}
	obs.Register(name, nil)
}

// Engine returns the engine currently serving the workload.
func (m *Migrator) Engine() RCU {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Flavor returns the flavor currently serving the workload.
func (m *Migrator) Flavor() Flavor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flavor
}

// State returns the migrator's export-plane state.
func (m *Migrator) State() MigrationState { return m.inner.State() }

// Close unregisters the migrator from the export plane. It does not
// interrupt a migration in flight.
func (m *Migrator) Close() { m.inner.Close() }

// AutotuneHook adapts the Migrator into the autotuner's degraded-state
// escape hatch: assign the result to AutotuneConfig.Migrate together
// with AutotuneConfig.MigrateTo naming the target flavor.
func (m *Migrator) AutotuneHook() func(context.Context, string) error {
	return func(ctx context.Context, to string) error {
		return m.To(ctx, Flavor(to))
	}
}

// Compile-time checks that the reader pool satisfies the migration
// front contracts (the structures assert their own in their packages).
var (
	_ EngineFront          = (*ReaderPool)(nil)
	_ migrate.StaleDrainer = (*ReaderPool)(nil)
)
