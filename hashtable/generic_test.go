package hashtable

import (
	"fmt"
	"testing"

	"prcu"
)

// TestGenericStringKeys drives the default maphash.Comparable hash with
// a non-uint64 key type through the full lifecycle: insert, lookup via
// handle, expansion (which re-buckets by the same hash), delete, and the
// structural audit. Bucket placement is seed-dependent, so nothing here
// may assume which bucket a key lands in.
func TestGenericStringKeys(t *testing.T) {
	r := prcu.NewPacked(prcu.Options{})
	m := New[string, int](r, 8)
	key := func(i int) string { return fmt.Sprintf("key-%04d", i) }

	const n = 512
	for i := 0; i < n; i++ {
		if !m.Insert(key(i), i) {
			t.Fatalf("Insert(%q) failed", key(i))
		}
	}
	if m.Insert(key(0), 999) {
		t.Fatal("duplicate Insert succeeded")
	}
	if m.Size() != n {
		t.Fatalf("Size = %d, want %d", m.Size(), n)
	}

	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < n; i++ {
		if v, ok := h.Get(key(i)); !ok || v != i {
			t.Fatalf("Get(%q) = %d,%v, want %d,true", key(i), v, ok, i)
		}
	}
	if _, ok := h.Get("absent"); ok {
		t.Fatal("Get of absent key succeeded")
	}

	// Expansion re-buckets under the same hash; every key must survive.
	m.Expand()
	m.Expand()
	if got := m.Buckets(); got != 32 {
		t.Fatalf("Buckets after two expansions = %d, want 32", got)
	}
	for i := 0; i < n; i++ {
		if v, ok := h.Get(key(i)); !ok || v != i {
			t.Fatalf("post-expand Get(%q) = %d,%v, want %d,true", key(i), v, ok, i)
		}
	}

	for i := 0; i < n; i += 2 {
		if !m.Delete(key(i)) {
			t.Fatalf("Delete(%q) failed", key(i))
		}
	}
	for i := 0; i < n; i++ {
		_, ok := h.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after deletes Contains(%q) = %v, want %v", key(i), ok, want)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGenericStructKeys: composite comparable keys hash through
// maphash.Comparable too — the table never requires an integer key.
func TestGenericStructKeys(t *testing.T) {
	type point struct {
		X, Y int32
		Tag  string
	}
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{})
	m := New[point, float64](r, 4)

	const n = 128
	for i := 0; i < n; i++ {
		p := point{X: int32(i), Y: int32(-i), Tag: fmt.Sprint(i % 7)}
		if !m.Insert(p, float64(i)) {
			t.Fatalf("Insert(%+v) failed", p)
		}
	}
	m.Expand()
	for i := 0; i < n; i++ {
		p := point{X: int32(i), Y: int32(-i), Tag: fmt.Sprint(i % 7)}
		if v, ok := m.Get(p); !ok || v != float64(i) {
			t.Fatalf("Get(%+v) = %v,%v, want %v,true", p, v, ok, float64(i))
		}
		// A near-miss key (same X,Y, different Tag) must not match.
		if _, ok := m.Get(point{X: p.X, Y: p.Y, Tag: "other"}); ok {
			t.Fatalf("near-miss key matched %+v", p)
		}
	}
	for i := 0; i < n; i++ {
		p := point{X: int32(i), Y: int32(-i), Tag: fmt.Sprint(i % 7)}
		if !m.Delete(p) {
			t.Fatalf("Delete(%+v) failed", p)
		}
	}
	if m.Size() != 0 {
		t.Fatalf("Size after full delete = %d", m.Size())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
