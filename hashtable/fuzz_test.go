package hashtable

import (
	"testing"

	"prcu"
)

// FuzzHashtableResize model-checks the resizable table against a plain
// map under a fuzzed operation stream that interleaves expansions with
// updates and lookups. Expansion is the delicate path — bucket aliasing
// followed by chain unzipping, with a WaitForReaders before every
// pointer change — so the fuzzer hunts for op orders that corrupt
// chains or lose keys across a split.
func FuzzHashtableResize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0x40, 0x00, 0x41, 0x01, 0xC0, 0x80, 0x00, 0xC1})
	f.Add([]byte{
		0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, // inserts
		0xC0,                   // expand
		0x80, 0x81, 0x42, 0x43, // gets, deletes
		0xC1,       // expand
		0x00, 0x44, // reinsert, delete
	})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		m := NewModulo(prcu.NewEER(prcu.Options{MaxReaders: 4}), 2)
		h, err := m.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		model := map[uint64]uint64{}

		expands := 0
		for i, op := range ops {
			// Top two bits select the operation, the rest the key, so a
			// byte stream explores dense key collisions across splits.
			k := uint64(op & 0x3f)
			switch op >> 6 {
			case 0: // insert
				v := uint64(i)
				_, existed := model[k]
				if got := m.Insert(k, v); got == existed {
					t.Fatalf("op %d: Insert(%d) = %v, model says existed=%v", i, k, got, existed)
				}
				if !existed {
					model[k] = v
				}
			case 1: // delete
				_, existed := model[k]
				if got := m.Delete(k); got != existed {
					t.Fatalf("op %d: Delete(%d) = %v, model says %v", i, k, got, existed)
				}
				delete(model, k)
			case 2: // get
				want, existed := model[k]
				got, ok := h.Get(k)
				if ok != existed || (ok && got != want) {
					t.Fatalf("op %d: Get(%d) = %d,%v, model says %d,%v", i, k, got, ok, want, existed)
				}
			default: // expand (bounded so tables stay small)
				if expands < 6 {
					before := m.Buckets()
					m.Expand()
					if m.Buckets() != before*2 {
						t.Fatalf("op %d: Expand %d -> %d buckets, want doubling", i, before, m.Buckets())
					}
					expands++
				}
			}
		}

		// Post-conditions: every model key resolves, size agrees, and no
		// phantom keys survive in the table.
		for k, want := range model {
			if got, ok := h.Get(k); !ok || got != want {
				t.Fatalf("final: Get(%d) = %d,%v, model says %d,true", k, got, ok, want)
			}
		}
		if m.Size() != len(model) {
			t.Fatalf("final: Size() = %d, model has %d keys", m.Size(), len(model))
		}
		for k := uint64(0); k < 64; k++ {
			if _, existed := model[k]; !existed {
				if _, ok := h.Get(k); ok {
					t.Fatalf("final: phantom key %d present after ops", k)
				}
			}
		}
	})
}
