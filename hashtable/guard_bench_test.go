package hashtable

import (
	"sync/atomic"
	"testing"

	"prcu"
	"prcu/guard"
)

// rawNode mirrors hnode with bare atomics and no scope discipline — the
// baseline BenchmarkGuardedRead measures the typed layer against.
type rawNode struct {
	key  uint64
	val  uint64
	next atomic.Pointer[rawNode]
}

// BenchmarkGuardedRead prices the typed guard layer on the read side
// against raw Enter/Get/Exit, on the packed and URCU engines. The
// headline pair is the canonical guarded read — Enter, one load through
// the head cell, Exit — typed (guard.R/Scope/Cell) vs raw (bare reader,
// atomic.Pointer); the acceptance budget for this PR is ≤1 ns/op of
// typed overhead there. The walk8 pair scales the section to an 8-node
// chain walk, showing how the Scope liveness branch prices per guarded
// load, and tableGet runs the full generic Map lookup (hash, hint
// validation, handle) for end-to-end context.
func BenchmarkGuardedRead(b *testing.B) {
	const chain = 8
	const lastKey = chain - 1

	for _, f := range []prcu.Flavor{prcu.FlavorPacked, prcu.FlavorURCU} {
		r := prcu.MustNew(f, prcu.Options{})

		// Typed chain: hnode links are guard.Cells, loads demand a Scope.
		var theadCell guard.Cell[hnode[uint64, uint64]]
		for k := uint64(chain); k > 0; k-- {
			n := &hnode[uint64, uint64]{key: k - 1, val: (k - 1) * 10}
			n.next.Store(theadCell.LoadLocked())
			theadCell.Store(n)
		}
		// Raw chain: same shape, bare atomics.
		var rhead atomic.Pointer[rawNode]
		for k := uint64(chain); k > 0; k-- {
			n := &rawNode{key: k - 1, val: (k - 1) * 10}
			n.next.Store(rhead.Load())
			rhead.Store(n)
		}

		b.Run(string(f)+"/typed", func(b *testing.B) {
			rd, err := r.Register()
			if err != nil {
				b.Fatal(err)
			}
			g := guard.Wrap(rd)
			defer g.Unregister()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := g.Enter(0)
				n := theadCell.Load(s)
				if n == nil {
					b.Fatal("typed head load lost the chain")
				}
				g.Exit(s)
			}
		})

		b.Run(string(f)+"/raw", func(b *testing.B) {
			rd, err := r.Register()
			if err != nil {
				b.Fatal(err)
			}
			defer rd.Unregister()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rd.Enter(0)
				n := rhead.Load()
				if n == nil {
					b.Fatal("raw head load lost the chain")
				}
				rd.Exit(0)
			}
		})

		b.Run(string(f)+"/typedWalk8", func(b *testing.B) {
			rd, err := r.Register()
			if err != nil {
				b.Fatal(err)
			}
			g := guard.Wrap(rd)
			defer g.Unregister()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := g.Enter(lastKey)
				n := theadCell.Load(s)
				for n != nil && n.key != lastKey {
					n = n.next.Load(s)
				}
				if n == nil {
					b.Fatal("typed walk lost the tail key")
				}
				g.Exit(s)
			}
		})

		b.Run(string(f)+"/rawWalk8", func(b *testing.B) {
			rd, err := r.Register()
			if err != nil {
				b.Fatal(err)
			}
			defer rd.Unregister()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rd.Enter(lastKey)
				n := rhead.Load()
				for n != nil && n.key != lastKey {
					n = n.next.Load()
				}
				if n == nil {
					b.Fatal("raw walk lost the tail key")
				}
				rd.Exit(lastKey)
			}
		})

		b.Run(string(f)+"/tableGet", func(b *testing.B) {
			m := NewModulo(r, chain)
			for k := uint64(0); k < chain; k++ {
				m.Insert(k, k*10)
			}
			h, err := m.NewHandle()
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := h.Get(lastKey); !ok {
					b.Fatal("table lookup missed")
				}
			}
		})
	}
}

// BenchmarkRecycleChurn is the update-side allocation profile with the
// reclaimer attached: steady-state Delete+Insert of the same key, nodes
// recycling through the typed Retirer into the insert pool. The retire
// call itself adds no boxing allocations (see the guard package's
// TestRetirerNoBoxingAllocs); what remains per op is the Delete's
// predicate closure and the reclaimer's amortized queue bookkeeping.
func BenchmarkRecycleChurn(b *testing.B) {
	r := prcu.NewPacked(prcu.Options{})
	m := NewModulo(r, 64)
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{Shards: 2, MaxPending: 8192})
	m.SetReclaimer(rec)
	for k := uint64(0); k < 64; k++ {
		m.Insert(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 64)
		m.Delete(k)
		m.Insert(k, k)
	}
	b.StopTimer()
	rec.Barrier()
	b.ReportMetric(float64(m.Recycled())/float64(b.N), "recycled/op")
	rec.Close()
}
