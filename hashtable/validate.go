package hashtable

import "fmt"

// Validate checks the structural invariants of a quiescent table: every
// node lives in the bucket its key hashes to, no key appears twice, every
// chain terminates, and the reachable count matches Size. Like the citrus
// validator it takes no locks and must not race with operations.
func (m *Map[K, V]) Validate() error {
	t := m.tbl.LoadLocked()
	seen := make(map[K]bool, m.Size())
	count := 0
	for b := range t.heads {
		steps := 0
		for n := t.heads[b].LoadLocked(); n != nil; n = n.next.LoadLocked() {
			if m.hash(n.key)&t.mask != uint64(b) {
				return fmt.Errorf("hashtable: key %v found in bucket %d, belongs in %d",
					n.key, b, m.hash(n.key)&t.mask)
			}
			if seen[n.key] {
				return fmt.Errorf("hashtable: key %v reachable twice", n.key)
			}
			seen[n.key] = true
			count++
			if steps++; steps > count+m.Size()+1 {
				return fmt.Errorf("hashtable: bucket %d chain appears cyclic", b)
			}
		}
	}
	if got := m.Size(); got != count {
		return fmt.Errorf("hashtable: Size() = %d but %d nodes reachable", got, count)
	}
	return nil
}
