package hashtable_test

import (
	"fmt"

	"prcu"
	"prcu/hashtable"
)

// Build the resizable hash table over D-PRCU, expand it, and observe that
// contents and bucket structure survive.
func Example() {
	engine := prcu.NewD(prcu.Options{MaxReaders: 8})
	m := hashtable.NewModulo(engine, 4)

	for k := uint64(0); k < 16; k++ {
		m.Insert(k, k*k)
	}
	fmt.Println("buckets:", m.Buckets(), "load:", m.LoadFactor())

	m.Expand() // doubles the table; waits cover only split bucket pairs

	h, err := m.NewHandle()
	if err != nil {
		panic(err)
	}
	defer h.Close()
	v, ok := h.Get(9)
	fmt.Println("buckets:", m.Buckets(), "Get(9):", v, ok)
	// Output:
	// buckets: 4 load: 4
	// buckets: 8 Get(9): 81 true
}
