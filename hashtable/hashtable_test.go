package hashtable

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"prcu"
)

func mapVariants(maxReaders, buckets int) map[string]func() *Map[uint64, uint64] {
	return map[string]func() *Map[uint64, uint64]{
		"EER":  func() *Map[uint64, uint64] { return NewModulo(prcu.NewEER(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"D":    func() *Map[uint64, uint64] { return NewModulo(prcu.NewD(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"DEER": func() *Map[uint64, uint64] { return NewModulo(prcu.NewDEER(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"Time": func() *Map[uint64, uint64] { return NewModulo(prcu.NewTimeRCU(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"URCU": func() *Map[uint64, uint64] { return NewModulo(prcu.NewURCU(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"Tree": func() *Map[uint64, uint64] { return NewModulo(prcu.NewTreeRCU(prcu.Options{MaxReaders: maxReaders}), buckets) },
		"Dist": func() *Map[uint64, uint64] { return NewModulo(prcu.NewDistRCU(prcu.Options{MaxReaders: maxReaders}), buckets) },
	}
}

func mustHandle(t *testing.T, m *Map[uint64, uint64]) *Handle[uint64, uint64] {
	t.Helper()
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBucketCountValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two bucket count must panic")
		}
	}()
	NewModulo(prcu.NewEER(prcu.Options{MaxReaders: 2}), 12)
}

func TestBasicOperations(t *testing.T) {
	for name, mk := range mapVariants(4, 8) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			h := mustHandle(t, m)
			defer h.Close()
			if h.Contains(1) {
				t.Fatal("empty map contains 1")
			}
			if !m.Insert(1, 11) || !m.Insert(2, 22) || !m.Insert(9, 99) {
				t.Fatal("insert failed")
			}
			if m.Insert(1, 111) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := h.Get(1); !ok || v != 11 {
				t.Fatalf("Get(1) = %d,%v, want 11,true", v, ok)
			}
			// 1 and 9 collide in an 8-bucket table (modulo hash).
			if v, ok := h.Get(9); !ok || v != 99 {
				t.Fatalf("Get(9) = %d,%v, want 99,true", v, ok)
			}
			if !m.Delete(1) || m.Delete(1) {
				t.Fatal("delete semantics wrong")
			}
			if h.Contains(1) || !h.Contains(9) {
				t.Fatal("contents wrong after delete")
			}
			if m.Size() != 2 {
				t.Fatalf("Size = %d, want 2", m.Size())
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExpandPreservesContents(t *testing.T) {
	for name, mk := range mapVariants(4, 4) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			h := mustHandle(t, m)
			defer h.Close()
			const n = 200
			for k := uint64(0); k < n; k++ {
				m.Insert(k, k*3)
			}
			for i := 0; i < 4; i++ {
				before := m.Buckets()
				m.Expand()
				if got := m.Buckets(); got != before*2 {
					t.Fatalf("Buckets after expand = %d, want %d", got, before*2)
				}
				for k := uint64(0); k < n; k++ {
					if v, ok := h.Get(k); !ok || v != k*3 {
						t.Fatalf("after expand %d: Get(%d) = %d,%v", i, k, v, ok)
					}
				}
				if err := m.Validate(); err != nil {
					t.Fatalf("after expand %d: %v", i, err)
				}
			}
			if m.ExpansionWaits() == 0 {
				t.Fatal("expansion issued no WaitForReaders calls")
			}
		})
	}
}

func TestLoadFactor(t *testing.T) {
	m := NewModulo(prcu.NewEER(prcu.Options{MaxReaders: 2}), 8)
	for k := uint64(0); k < 16; k++ {
		m.Insert(k, k)
	}
	if lf := m.LoadFactor(); lf != 2.0 {
		t.Fatalf("LoadFactor = %v, want 2.0", lf)
	}
	m.Expand()
	if lf := m.LoadFactor(); lf != 1.0 {
		t.Fatalf("LoadFactor after expand = %v, want 1.0", lf)
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	m := NewModulo(prcu.NewD(prcu.Options{MaxReaders: 4}), 8)
	h := mustHandle(t, m)
	defer h.Close()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500))
		switch rng.Intn(4) {
		case 0:
			_, inModel := model[k]
			if got := m.Insert(k, k+1); got == inModel {
				t.Fatalf("op %d: Insert(%d) = %v, model: %v", i, k, got, inModel)
			}
			if !inModel {
				model[k] = k + 1
			}
		case 1:
			_, inModel := model[k]
			if got := m.Delete(k); got != inModel {
				t.Fatalf("op %d: Delete(%d) = %v, model: %v", i, k, got, inModel)
			}
			delete(model, k)
		case 2:
			v, inModel := model[k]
			gv, got := h.Get(k)
			if got != inModel || (got && gv != v) {
				t.Fatalf("op %d: Get(%d) = %d,%v, model %d,%v", i, k, gv, got, v, inModel)
			}
		default:
			if i%1000 == 999 && m.Buckets() < 256 {
				m.Expand()
			}
		}
	}
	if m.Size() != len(model) {
		t.Fatalf("Size = %d, model %d", m.Size(), len(model))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertDeleteSet(t *testing.T) {
	m := NewModulo(prcu.NewDEER(prcu.Options{MaxReaders: 4}), 16)
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	f := func(ops []uint16) bool {
		model := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 127)
			if op&0x8000 != 0 {
				m.Delete(k)
				delete(model, k)
			} else {
				m.Insert(k, k)
				model[k] = true
			}
		}
		for k := uint64(0); k < 127; k++ {
			if h.Contains(k) != model[k] {
				return false
			}
		}
		if m.Validate() != nil {
			return false
		}
		for k := uint64(0); k < 127; k++ {
			m.Delete(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupsDuringExpansion is the Figure 3 anomaly test: while the table
// expands, concurrent lookups must never miss a key that is permanently
// present. A missing wait before any unzip pointer change makes this fail.
func TestLookupsDuringExpansion(t *testing.T) {
	for name, mk := range mapVariants(16, 4) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			const n = 400 // load factor 100 on 4 buckets: long chains, many unzip steps
			for k := uint64(0); k < n; k++ {
				m.Insert(k, k)
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := m.NewHandle()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					rng := rand.New(rand.NewSource(int64(g)))
					for !stop.Load() {
						k := uint64(rng.Intn(n))
						if v, ok := h.Get(k); !ok || v != k {
							t.Errorf("Get(%d) = %d,%v during expansion", k, v, ok)
							stop.Store(true)
							return
						}
					}
				}(g)
			}
			for i := 0; i < 5 && !stop.Load(); i++ {
				m.Expand()
			}
			stop.Store(true)
			wg.Wait()
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.Buckets() != 4*32 && !t.Failed() {
				t.Fatalf("Buckets = %d, want %d", m.Buckets(), 4*32)
			}
		})
	}
}

// TestUpdatesBlockedDuringExpansion verifies updates wait out an expansion
// and then land correctly.
func TestUpdatesBlockedDuringExpansion(t *testing.T) {
	m := NewModulo(prcu.NewTimeRCU(prcu.Options{MaxReaders: 8}), 4)
	for k := uint64(0); k < 200; k++ {
		m.Insert(k, k)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			base := uint64(1000 * (g + 1))
			for i := uint64(0); i < 50; i++ {
				if !m.Insert(base+i, i) {
					t.Errorf("insert %d failed", base+i)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		m.Expand()
		m.Expand()
	}()
	close(start)
	wg.Wait()
	if want := 200 + 4*50; m.Size() != want {
		t.Fatalf("Size = %d, want %d", m.Size(), want)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	h := mustHandle(t, m)
	defer h.Close()
	for g := 0; g < 4; g++ {
		base := uint64(1000 * (g + 1))
		for i := uint64(0); i < 50; i++ {
			if !h.Contains(base + i) {
				t.Fatalf("key %d missing after expansion", base+i)
			}
		}
	}
}

// TestConcurrentUpdatesAndLookups stresses the non-expanding fast path.
func TestConcurrentUpdatesAndLookups(t *testing.T) {
	for name, mk := range mapVariants(16, 64) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for !stop.Load() {
						k := uint64(rng.Intn(256))
						if rng.Intn(2) == 0 {
							m.Insert(k, k)
						} else {
							m.Delete(k)
						}
					}
				}(g)
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := m.NewHandle()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					rng := rand.New(rand.NewSource(int64(100 + g)))
					for !stop.Load() {
						k := uint64(rng.Intn(256))
						if v, ok := h.Get(k); ok && v != k {
							t.Errorf("Get(%d) returned foreign value %d", k, v)
							stop.Store(true)
							return
						}
					}
				}(g)
			}
			time.Sleep(250 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHandleExhaustion(t *testing.T) {
	m := NewModulo(prcu.NewEER(prcu.Options{MaxReaders: 1}), 4)
	h := mustHandle(t, m)
	if _, err := m.NewHandle(); err == nil {
		t.Fatal("expected handle exhaustion")
	}
	h.Close()
}
