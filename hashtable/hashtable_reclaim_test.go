package hashtable

import (
	"sync"
	"testing"
	"time"

	"prcu"
)

// TestReclaimRecyclesNodes: deleted nodes must come back through the
// insert pool once their grace period completes.
func TestReclaimRecyclesNodes(t *testing.T) {
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{})
	m := NewModulo(r, 64)
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{Shards: 1})
	m.SetReclaimer(rec)

	const n = 200
	for k := uint64(0); k < n; k++ {
		m.Insert(k, k)
	}
	for k := uint64(0); k < n; k++ {
		if !m.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	rec.Barrier()
	if got := m.Recycled(); got != n {
		t.Fatalf("Recycled = %d, want %d after Barrier", got, n)
	}
	// Reinsert: pool nodes are drawn back in; the map must behave as new.
	for k := uint64(0); k < n; k++ {
		if !m.Insert(k, k+1) {
			t.Fatalf("reinsert %d failed", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := m.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) = %d,%v after recycle, want %d,true", k, v, ok, k+1)
		}
	}
	rec.Close()
}

// TestReclaimChurnWithReadersAndExpansion is the safety test for
// recycling: node reuse mutates keys in place, so any under-covered
// reader would trip the race detector or the membership audit. The
// churn crosses an expansion to exercise the multi-generation predicate.
func TestReclaimChurnWithReadersAndExpansion(t *testing.T) {
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{})
	m := NewModulo(r, 16)
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{
		Shards:     2,
		MaxPending: 128,
		FlushDelay: 100 * time.Microsecond,
	})
	m.SetReclaimer(rec)

	const keys = 256
	for k := uint64(0); k < keys; k++ {
		m.Insert(k, k)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.Handle()
			defer h.Close()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i*11 + uint64(g)) % keys
				if v, ok := h.Get(k); ok && v != k && v != k+1 {
					t.Errorf("Get(%d) observed foreign value %d", k, v)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := uint64((i*17 + g*5) % keys)
				if m.Delete(k) {
					m.Insert(k, k+1)
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	m.Expand()
	m.Expand()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	rec.Barrier()

	for k := uint64(0); k < keys; k++ {
		if !m.Contains(k) {
			t.Fatalf("key %d lost in churn (every delete was reinserted)", k)
		}
	}
	if m.Recycled() == 0 {
		t.Fatal("no node was ever recycled; the test exercised nothing")
	}
	rec.Close()
	t.Logf("recycled %d nodes across %d grace periods", m.Recycled(), rec.Graces())
}
