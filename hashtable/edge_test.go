package hashtable

import (
	"testing"

	"prcu"
)

// TestSingleBucketExpansion starts from one bucket, the degenerate case
// where the whole table is one chain and every expansion unzips it.
func TestSingleBucketExpansion(t *testing.T) {
	m := NewModulo(prcu.NewD(prcu.Options{MaxReaders: 4}), 1)
	h := mustHandle(t, m)
	defer h.Close()
	const n = 64
	for k := uint64(0); k < n; k++ {
		m.Insert(k, k+1)
	}
	for i := 0; i < 6; i++ { // 1 -> 64 buckets
		m.Expand()
		for k := uint64(0); k < n; k++ {
			if v, ok := h.Get(k); !ok || v != k+1 {
				t.Fatalf("expansion %d: Get(%d) = %d,%v", i, k, v, ok)
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("expansion %d: %v", i, err)
		}
	}
	if m.Buckets() != 64 {
		t.Fatalf("Buckets = %d, want 64", m.Buckets())
	}
}

// TestExpandEmptyTable must be a no-op beyond doubling the array.
func TestExpandEmptyTable(t *testing.T) {
	m := NewModulo(prcu.NewTimeRCU(prcu.Options{MaxReaders: 2}), 4)
	m.Expand()
	if m.Buckets() != 8 || m.Size() != 0 {
		t.Fatalf("Buckets=%d Size=%d", m.Buckets(), m.Size())
	}
	if m.ExpansionWaits() != 0 {
		t.Fatalf("empty expansion issued %d waits, want 0", m.ExpansionWaits())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAlternatingRunsUnzip builds a chain that strictly alternates
// destinations — the worst case for unzip (one wait per node).
func TestAlternatingRunsUnzip(t *testing.T) {
	m := NewModulo(prcu.NewEER(prcu.Options{MaxReaders: 2}), 2)
	h := mustHandle(t, m)
	defer h.Close()
	// All keys in bucket 0 of a 2-bucket table (even keys), alternating
	// destination parity for a 4-bucket table: keys 0,2 mod 4 alternate.
	keys := []uint64{0, 2, 4, 6, 8, 10, 12, 14}
	for _, k := range keys {
		m.Insert(k, k)
	}
	waitsBefore := m.ExpansionWaits()
	m.Expand()
	if m.ExpansionWaits() == waitsBefore {
		t.Fatal("alternating chain expansion issued no waits")
	}
	for _, k := range keys {
		if !h.Contains(k) {
			t.Fatalf("key %d lost in worst-case unzip", k)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValueUpdateVisibility: Delete+Insert of the same key must expose
// the new value to handles.
func TestValueUpdateVisibility(t *testing.T) {
	m := NewModulo(prcu.NewDEER(prcu.Options{MaxReaders: 2}), 8)
	h := mustHandle(t, m)
	defer h.Close()
	m.Insert(5, 1)
	m.Delete(5)
	m.Insert(5, 2)
	if v, ok := h.Get(5); !ok || v != 2 {
		t.Fatalf("Get(5) = %d,%v, want 2,true", v, ok)
	}
}

// TestManyExpansionsKeepWaitPredicatesPaired: every expansion wait covers
// exactly a bucket pair; after many expansions over all engines the
// table must still satisfy all invariants.
func TestManyExpansionsAllEngines(t *testing.T) {
	for name, mk := range mapVariants(4, 2) {
		t.Run(name, func(t *testing.T) {
			m := mk()
			for k := uint64(0); k < 100; k++ {
				m.Insert(k*3, k)
			}
			for i := 0; i < 7; i++ {
				m.Expand()
			}
			if m.Buckets() != 256 {
				t.Fatalf("Buckets = %d", m.Buckets())
			}
			h := mustHandle(t, m)
			defer h.Close()
			for k := uint64(0); k < 100; k++ {
				if v, ok := h.Get(k * 3); !ok || v != k {
					t.Fatalf("Get(%d) = %d,%v", k*3, v, ok)
				}
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
