// Package hashtable implements the resizable closed-addressing hash table
// of the PRCU paper (§5.1), after Triplett et al.'s relativistic hash
// table: buckets are RCU-protected linked lists that lookups traverse
// without locks, updates synchronize with per-bucket locks, and expansion
// doubles the bucket array in place while lookups keep running.
//
// The table uses a modulo-table-size hash, so an expansion splits each old
// bucket into exactly two new ones. Expand first points every new bucket at
// the first node of the old chain that belongs to it (new buckets alias
// into old chains, which is why lookups always compare keys), publishes the
// new array, and then "unzips" each old chain — and it calls
// WaitForReaders before every pointer change, since each change disconnects
// the path some pre-existing traversal may still be relying on (the
// paper's Figure 3 anomalies). With PRCU, each of those waits covers only
// readers of the two affected buckets: P(x) = (x = b_old or x = b_new).
//
// As in Triplett et al., updates are prevented during expansion; they spin
// until it completes.
package hashtable

import (
	"fmt"
	"sync"
	"sync/atomic"

	"prcu"
	"prcu/internal/spin"
)

// hnode is a chain node; key is immutable, next is traversed by lock-free
// readers and so is atomic.
type hnode struct {
	key   uint64
	value atomic.Uint64
	next  atomic.Pointer[hnode]
}

// table is one immutable-size generation of the bucket array.
type table struct {
	heads []atomic.Pointer[hnode]
	locks []sync.Mutex
	mask  uint64
}

func newTable(buckets int) *table {
	return &table{
		heads: make([]atomic.Pointer[hnode], buckets),
		locks: make([]sync.Mutex, buckets),
		mask:  uint64(buckets - 1),
	}
}

// Map is the resizable hash table. Lookups go through per-goroutine
// Handles; Insert, Delete and Expand may be called from any goroutine.
type Map struct {
	rcu  prcu.RCU
	pool *prcu.ReaderPool
	tbl  atomic.Pointer[table]
	// resizeMu serializes expansions; expanding blocks updates while one
	// is in flight.
	resizeMu  sync.Mutex
	expanding atomic.Bool
	size      atomic.Int64
	// waits counts WaitForReaders calls issued by expansions (exposed for
	// the benchmark harness and tests).
	waits atomic.Int64

	// rec, when set, recycles deleted nodes through nodePool after a
	// covering grace period; see SetReclaimer.
	rec      *prcu.Reclaimer
	nodePool sync.Pool
	recycled atomic.Uint64
}

// hnodeBytes is the backlog byte declaration for one retired chain node.
const hnodeBytes = 48

// SetReclaimer enables deferred node recycling. Without it, Delete
// simply unlinks and lets Go's GC reclaim the node once readers quiesce
// — correct, but every delete allocates garbage and a later insert
// allocates afresh. With a reclaimer, Delete retires the node and, after
// a grace period covering every reader that could still be traversing
// it, the node returns to an internal pool that Insert draws from.
// Recycling mutates the node's key in place, which is exactly what must
// never happen while a reader can still reach it — the grace period is
// what licenses it.
//
// Call before the map is shared; do not close rec while updaters are
// active (Retire on a closed reclaimer panics). If rec shuts down with
// retirements unresolved, those nodes are simply not recycled — the GC
// takes them, nothing leaks and no reader is harmed.
func (m *Map) SetReclaimer(rec *prcu.Reclaimer) { m.rec = rec }

// Recycled returns how many deleted nodes completed their grace period
// and re-entered the insert pool.
func (m *Map) Recycled() uint64 { return m.recycled.Load() }

// recycleNode runs after the retirement's grace period: no reader can
// reach n anymore, so scrubbing and pooling it is safe.
func (m *Map) recycleNode(v any) {
	n := v.(*hnode)
	n.key = 0
	n.value.Store(0)
	n.next.Store(nil)
	m.recycled.Add(1)
	m.nodePool.Put(n)
}

// retirePredicate covers every PRCU value a reader still able to reach a
// node with key k may have annotated its section with. Readers annotate
// with a bucket index of the table generation they entered under, and
// generations only ever double, so across generations k's bucket is
// k & m for the nested masks m, mask ≥ m ≥ 0. Readers of *other*
// buckets can transiently traverse k's node mid-expansion (chains alias
// until unzipped), but every unzip cut is preceded by a wait covering
// both affected buckets and updates are excluded while expansion runs,
// so by the time a Delete can retire the node those readers are done.
// Over-covering the handful of nested reductions is the cheap, safe
// remainder.
func retirePredicate(k, mask uint64) prcu.Predicate {
	return prcu.Func(func(v prcu.Value) bool {
		for m := mask; ; m >>= 1 {
			if v == k&m {
				return true
			}
			if m == 0 {
				return false
			}
		}
	})
}

// New returns a table with the given initial bucket count (a power of
// two), synchronized by r.
func New(r prcu.RCU, initialBuckets int) *Map {
	if initialBuckets < 1 || initialBuckets&(initialBuckets-1) != 0 {
		panic(fmt.Sprintf("hashtable: bucket count must be a power of two, got %d", initialBuckets))
	}
	m := &Map{rcu: r, pool: prcu.NewReaderPool(r)}
	m.tbl.Store(newTable(initialBuckets))
	return m
}

// Buckets returns the current bucket count.
func (m *Map) Buckets() int { return len(m.tbl.Load().heads) }

// Size returns the number of keys (exact at rest, approximate under
// concurrent updates).
func (m *Map) Size() int { return int(m.size.Load()) }

// LoadFactor returns Size divided by Buckets.
func (m *Map) LoadFactor() float64 { return float64(m.Size()) / float64(m.Buckets()) }

// ExpansionWaits returns the cumulative number of WaitForReaders calls
// issued by Expand — the quantity Figure 9's latency is made of.
func (m *Map) ExpansionWaits() int64 { return m.waits.Load() }

// Handle is one goroutine's lookup context, wrapping its reader slot.
// A Handle must not be used concurrently.
type Handle struct {
	m  *Map
	rd prcu.Reader
}

// NewHandle registers a pinned reader slot for lookups. Registration only
// fails when the engine was built with a reader cap; prefer Handle for
// ephemeral goroutines.
func (m *Map) NewHandle() (*Handle, error) {
	rd, err := m.rcu.Register()
	if err != nil {
		return nil, err
	}
	return &Handle{m: m, rd: rd}, nil
}

// Handle borrows a pooled reader and returns a handle around it — the
// infallible choice for goroutines that come and go. Close returns the
// reader to the pool for the next borrower.
func (m *Map) Handle() *Handle {
	return &Handle{m: m, rd: m.pool.Get()}
}

// Close releases the handle's reader: a pinned reader's slot is freed, a
// pooled reader goes back to the pool.
func (h *Handle) Close() {
	h.rd.Unregister()
	h.rd = nil
}

// Get returns the value stored under k. The read-side critical section's
// PRCU value is the bucket index in the table generation being traversed;
// if the table is swapped between computing the value and entering the
// section, the lookup re-enters under the new generation, so an expansion
// that published a new table always covers us through one of its bucket
// predicates.
// The traversal runs under Reader.Do, so a panic (a corrupted chain, a
// bug in node state) re-raises with the critical section closed instead
// of wedging every future covering grace period.
func (h *Handle) Get(k uint64) (val uint64, ok bool) {
	m := h.m
	for {
		t := m.tbl.Load()
		v := prcu.Value(k & t.mask)
		retry := false
		h.rd.Do(v, func() {
			if m.tbl.Load() != t {
				retry = true
				return
			}
			// Chains may alias other buckets' nodes mid-expansion, so match
			// on the key, never on position.
			n := t.heads[k&t.mask].Load()
			for n != nil && n.key != k {
				n = n.next.Load()
			}
			if n != nil {
				val, ok = n.value.Load(), true
			}
		})
		if !retry {
			return val, ok
		}
	}
}

// Contains reports whether k is present.
func (h *Handle) Contains(k uint64) bool {
	_, ok := h.Get(k)
	return ok
}

// Get is the one-shot form: it borrows a pooled reader for a single
// lookup. Hot loops should hold a Handle instead and amortize the borrow.
// The borrow is returned even if the lookup panics, so a failed lookup
// never leaks a pooled reader slot.
func (m *Map) Get(k uint64) (uint64, bool) {
	h := Handle{m: m, rd: m.pool.Get()}
	defer m.pool.Put(h.rd)
	return h.Get(k)
}

// Contains is the one-shot membership test; see Get.
func (m *Map) Contains(k uint64) bool {
	_, ok := m.Get(k)
	return ok
}

// lockBucket acquires the bucket lock for k in the current table, retrying
// across expansions; it returns with the lock held, expansion quiescent,
// and the table current.
func (m *Map) lockBucket(k uint64) (*table, uint64) {
	var w spin.Waiter
	for {
		if m.expanding.Load() {
			w.Wait()
			continue
		}
		t := m.tbl.Load()
		b := k & t.mask
		t.locks[b].Lock()
		if !m.expanding.Load() && m.tbl.Load() == t {
			return t, b
		}
		t.locks[b].Unlock()
		w.Wait()
	}
}

// Insert adds k with value val, returning false if k is already present.
// Inserts push at the chain head, so lock-free readers observe them
// atomically.
func (m *Map) Insert(k, val uint64) bool {
	t, b := m.lockBucket(k)
	defer t.locks[b].Unlock()
	head := t.heads[b].Load()
	for n := head; n != nil; n = n.next.Load() {
		if n.key == k {
			return false
		}
	}
	n, _ := m.nodePool.Get().(*hnode)
	if n == nil {
		n = &hnode{}
	}
	n.key = k
	n.value.Store(val)
	n.next.Store(head)
	t.heads[b].Store(n)
	m.size.Add(1)
	return true
}

// Delete removes k, returning whether it was present. The node is unlinked
// while readers may still be traversing it; its next pointer is left
// intact so they continue unharmed (the RCU discipline — in C this is
// where reclamation would be deferred to a grace period; Go's GC plays
// that role by default, or the attached Reclaimer recycles the node
// after its grace period when SetReclaimer was called).
func (m *Map) Delete(k uint64) bool {
	t, b := m.lockBucket(k)
	defer t.locks[b].Unlock()
	var prev *hnode
	n := t.heads[b].Load()
	for n != nil && n.key != k {
		prev, n = n, n.next.Load()
	}
	if n == nil {
		return false
	}
	if prev == nil {
		t.heads[b].Store(n.next.Load())
	} else {
		prev.next.Store(n.next.Load())
	}
	m.size.Add(-1)
	// The node's next pointer is left intact for readers still on it; with
	// a reclaimer attached it re-enters the insert pool once a grace
	// period covering every such reader completes.
	if rec := m.rec; rec != nil {
		rec.Retire(n, retirePredicate(k, t.mask), hnodeBytes, m.recycleNode)
	}
	return true
}

// splitPredicate covers readers of the two buckets an old bucket splits
// into: values b and b+oldSize (an iterable predicate with two values, the
// form D-PRCU drains in O(1)).
func splitPredicate(b, oldSize uint64) prcu.Predicate {
	return prcu.Iterable(b, b+oldSize, func(v prcu.Value) prcu.Value { return v + oldSize })
}

// Expand doubles the bucket array while lookups proceed concurrently.
// Updates are blocked for its duration. Safe to call from one goroutine at
// a time per table; concurrent calls serialize.
func (m *Map) Expand() {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()

	old := m.tbl.Load()
	oldSize := uint64(len(old.heads))

	// Stop updates: raise the flag, then drain in-flight holders of every
	// old bucket lock.
	m.expanding.Store(true)
	defer m.expanding.Store(false)
	for i := range old.locks {
		old.locks[i].Lock()
		//lint:ignore SA2001 empty critical section intentionally drains in-flight updates
		old.locks[i].Unlock()
	}

	// Build the new array: each new bucket points at the first node of its
	// old chain that belongs to it (Figure 3a).
	nt := newTable(int(oldSize * 2))
	for b := uint64(0); b < oldSize; b++ {
		for n := old.heads[b].Load(); n != nil; n = n.next.Load() {
			d := n.key & nt.mask
			if nt.heads[d].Load() == nil {
				nt.heads[d].Store(n)
			}
		}
	}
	m.tbl.Store(nt)

	// Unzip every old chain (Figure 3b–3d).
	for b := uint64(0); b < oldSize; b++ {
		m.unzip(old, nt, b, oldSize)
	}
}

// unzip separates old bucket b's chain into the two new chains, calling
// WaitForReaders before every pointer change so no traversal that might
// still rely on the old link can be stranded.
func (m *Map) unzip(old, nt *table, b, oldSize uint64) {
	pred := splitPredicate(b, oldSize)
	cur := old.heads[b].Load()
	for cur != nil {
		d := cur.key & nt.mask
		// Advance to the end of the current run of destination d.
		next := cur.next.Load()
		for next != nil && next.key&nt.mask == d {
			cur = next
			next = cur.next.Load()
		}
		if next == nil {
			return // fully split
		}
		// next begins a run of the other destination; find the first
		// node after it that belongs to d again.
		q := next
		for q != nil && q.key&nt.mask != d {
			q = q.next.Load()
		}
		// Pre-existing readers of bucket d may be traversing the foreign
		// run to reach their nodes beyond it; let them finish before
		// cutting the link.
		m.waits.Add(1)
		m.rcu.WaitForReaders(pred)
		cur.next.Store(q)
		cur = next
	}
}
