// Package hashtable implements the resizable closed-addressing hash table
// of the PRCU paper (§5.1), after Triplett et al.'s relativistic hash
// table: buckets are RCU-protected linked lists that lookups traverse
// without locks, updates synchronize with per-bucket locks, and expansion
// doubles the bucket array in place while lookups keep running.
//
// The table is generic over its key and value types. Keys hash to a
// fixed 64-bit value per map (hash/maphash.Comparable under a per-map
// seed by default, any caller-supplied hash via NewWithHash, or the
// paper's modulo-table-size identity hash for uint64 keys via
// NewModulo), and a bucket is the hash masked to the table size — so an
// expansion still splits each old bucket into exactly two new ones.
// Expand first points every new bucket at the first node of the old
// chain that belongs to it (new buckets alias into old chains, which is
// why lookups always compare keys), publishes the new array, and then
// "unzips" each old chain — and it calls WaitForReaders before every
// pointer change, since each change disconnects the path some
// pre-existing traversal may still be relying on (the paper's Figure 3
// anomalies). With PRCU, each of those waits covers only readers of the
// two affected buckets: P(x) = (x = b_old or x = b_new).
//
// All traversal runs on the typed guard layer: chain links are
// guard.Cell, the current table generation is a guard.Guarded, and
// read-side loads demand the lookup's open guard.Scope — so a lookup
// that leaks a node pointer out of its critical section no longer
// type-checks against the raw atomics, and cmd/prcuvet flags the
// escapes Go's types cannot rule out.
//
// As in Triplett et al., updates are prevented during expansion; they spin
// until it completes.
package hashtable

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"prcu"
	"prcu/guard"
	"prcu/internal/spin"
)

// hnode is a chain node; key and val are immutable while the node is
// reachable, and next is a guarded link traversed by lock-free readers.
type hnode[K comparable, V any] struct {
	key  K
	val  V
	next guard.Cell[hnode[K, V]]
}

// table is one immutable-size generation of the bucket array.
type table[K comparable, V any] struct {
	heads []guard.Cell[hnode[K, V]]
	locks []sync.Mutex
	mask  uint64
}

func newTable[K comparable, V any](buckets int) *table[K, V] {
	return &table[K, V]{
		heads: make([]guard.Cell[hnode[K, V]], buckets),
		locks: make([]sync.Mutex, buckets),
		mask:  uint64(buckets - 1),
	}
}

// enginePair is the map's engine binding, swapped wholesale behind an
// atomic pointer. Outside a live migration old is nil; during one, old
// holds the engine being drained and every updater-side wait covers
// both (readers may exist on either engine until the migrator settles
// the pair — over-covering is always safe).
type enginePair struct {
	cur prcu.RCU
	old prcu.RCU
}

// Map is the resizable hash table. Lookups go through per-goroutine
// Handles; Insert, Delete and Expand may be called from any goroutine.
type Map[K comparable, V any] struct {
	eng  atomic.Pointer[enginePair]
	pool *prcu.ReaderPool
	hash func(K) uint64
	// tbl is the current generation, RCU-published: readers reach it only
	// inside their lookup scope. maskHint mirrors the current mask so a
	// lookup can pick its PRCU domain value before entering the section;
	// a stale hint is detected inside the section and retried.
	tbl      guard.Guarded[table[K, V]]
	maskHint atomic.Uint64
	// resizeMu serializes expansions; expanding blocks updates while one
	// is in flight.
	resizeMu  sync.Mutex
	expanding atomic.Bool
	size      atomic.Int64
	// waits counts WaitForReaders calls issued by expansions (exposed for
	// the benchmark harness and tests).
	waits atomic.Int64

	// ret, when set, recycles deleted nodes through nodePool after a
	// covering grace period; see SetReclaimer.
	ret      *guard.Retirer[hnode[K, V]]
	nodePool sync.Pool
	recycled atomic.Uint64
}

// SetReclaimer enables deferred node recycling. Without it, Delete
// simply unlinks and lets Go's GC reclaim the node once readers quiesce
// — correct, but every delete allocates garbage and a later insert
// allocates afresh. With a reclaimer, Delete retires the node and, after
// a grace period covering every reader that could still be traversing
// it, the node returns to an internal pool that Insert draws from.
// Recycling mutates the node's key in place, which is exactly what must
// never happen while a reader can still reach it — the grace period is
// what licenses it.
//
// The retire path is typed end-to-end: a guard.Retirer[hnode[K,V]]
// binds the recycle callback once, declares the node's byte footprint
// from unsafe.Sizeof, and never round-trips the node through a
// hand-written any assertion. (Out-of-line memory owned by K or V —
// string bodies, slices — is invisible to Sizeof and is not declared.)
//
// Call before the map is shared; do not close rec while updaters are
// active (Retire on a closed reclaimer panics). If rec shuts down with
// retirements unresolved, those nodes are simply not recycled — the GC
// takes them, nothing leaks and no reader is harmed.
func (m *Map[K, V]) SetReclaimer(rec *prcu.Reclaimer) {
	if rec == nil {
		m.ret = nil
		return
	}
	m.ret = guard.NewRetirer(rec, 0, m.recycleNode)
}

// Recycled returns how many deleted nodes completed their grace period
// and re-entered the insert pool.
func (m *Map[K, V]) Recycled() uint64 { return m.recycled.Load() }

// recycleNode runs after the retirement's grace period: no reader can
// reach n anymore, so scrubbing and pooling it is safe.
func (m *Map[K, V]) recycleNode(n *hnode[K, V]) {
	var zk K
	var zv V
	n.key = zk
	n.val = zv
	n.next.Store(nil)
	m.recycled.Add(1)
	m.nodePool.Put(n)
}

// retirePredicate covers every PRCU value a reader still able to reach a
// node hashing to hk may have annotated its section with. Readers
// annotate with a bucket index of the table generation they entered
// under, and generations only ever double, so across generations the
// node's bucket is hk & m for the nested masks m, mask ≥ m ≥ 0. Readers
// of *other* buckets can transiently traverse the node mid-expansion
// (chains alias until unzipped), but every unzip cut is preceded by a
// wait covering both affected buckets and updates are excluded while
// expansion runs, so by the time a Delete can retire the node those
// readers are done. Over-covering the handful of nested reductions is
// the cheap, safe remainder.
func retirePredicate(hk, mask uint64) prcu.Predicate {
	return prcu.Func(func(v prcu.Value) bool {
		for m := mask; ; m >>= 1 {
			if v == hk&m {
				return true
			}
			if m == 0 {
				return false
			}
		}
	})
}

func checkBuckets(initialBuckets int) {
	if initialBuckets < 1 || initialBuckets&(initialBuckets-1) != 0 {
		panic(fmt.Sprintf("hashtable: bucket count must be a power of two, got %d", initialBuckets))
	}
}

// New returns a table with the given initial bucket count (a power of
// two), synchronized by r. Keys are hashed with hash/maphash.Comparable
// under a seed drawn per map, so bucket placement is collision-resistant
// but not reproducible across runs; use NewModulo for the paper's
// deterministic uint64 table or NewWithHash to supply your own hash.
func New[K comparable, V any](r prcu.RCU, initialBuckets int) *Map[K, V] {
	seed := maphash.MakeSeed()
	return NewWithHash[K, V](r, initialBuckets, func(k K) uint64 {
		return maphash.Comparable(seed, k)
	})
}

// NewWithHash is New with a caller-supplied key hash. The hash must be
// fixed per key for the lifetime of the map; quality only affects chain
// balance, never correctness.
func NewWithHash[K comparable, V any](r prcu.RCU, initialBuckets int, hash func(K) uint64) *Map[K, V] {
	checkBuckets(initialBuckets)
	if hash == nil {
		panic("hashtable: NewWithHash with nil hash")
	}
	m := &Map[K, V]{pool: prcu.NewReaderPool(r), hash: hash}
	m.eng.Store(&enginePair{cur: r})
	t := newTable[K, V](initialBuckets)
	m.tbl.Publish(t)
	m.maskHint.Store(t.mask)
	return m
}

// NewModulo returns the paper's evaluation table: uint64 keys placed by
// the modulo-table-size identity hash, so key k lives in bucket
// k mod buckets and expansion behavior is exactly §5.1's.
func NewModulo(r prcu.RCU, initialBuckets int) *Map[uint64, uint64] {
	return NewWithHash[uint64, uint64](r, initialBuckets, func(k uint64) uint64 { return k })
}

// Engine returns the engine new readers currently register on.
func (m *Map[K, V]) Engine() prcu.RCU { return m.eng.Load().cur }

// waitForReaders runs one grace period covering pred on every engine in
// the pair — during a live migration window readers may exist on both.
func (m *Map[K, V]) waitForReaders(pred prcu.Predicate) {
	ep := m.eng.Load()
	ep.cur.WaitForReaders(pred)
	if ep.old != nil {
		ep.old.WaitForReaders(pred)
	}
}

// SwapEngine implements the live-migration front contract: new handles
// register on target, and until SettleEngine the map's updater-side
// waits cover both target and the previous engine. Returns the previous
// engine. Normally called only by a prcu.Migrator, which also drains
// the previous engine's readers before settling.
func (m *Map[K, V]) SwapEngine(target prcu.RCU) prcu.RCU {
	for {
		ep := m.eng.Load()
		if m.eng.CompareAndSwap(ep, &enginePair{cur: target, old: ep.cur}) {
			m.pool.SwapEngine(target)
			return ep.cur
		}
	}
}

// SettleEngine drops the drained engine from the pair once the migrator
// has verified it is quiescent; updater-side waits return to covering
// the current engine alone.
func (m *Map[K, V]) SettleEngine() {
	for {
		ep := m.eng.Load()
		if ep.old == nil {
			return
		}
		if m.eng.CompareAndSwap(ep, &enginePair{cur: ep.cur}) {
			return
		}
	}
}

// DrainStale releases pool-cached readers stranded on a pre-swap
// engine; the migrator calls it between registry-drain re-checks.
func (m *Map[K, V]) DrainStale() { m.pool.DrainStale() }

// Buckets returns the current bucket count.
func (m *Map[K, V]) Buckets() int { return len(m.tbl.LoadLocked().heads) }

// Size returns the number of keys (exact at rest, approximate under
// concurrent updates).
func (m *Map[K, V]) Size() int { return int(m.size.Load()) }

// LoadFactor returns Size divided by Buckets.
func (m *Map[K, V]) LoadFactor() float64 { return float64(m.Size()) / float64(m.Buckets()) }

// ExpansionWaits returns the cumulative number of WaitForReaders calls
// issued by Expand — the quantity Figure 9's latency is made of.
func (m *Map[K, V]) ExpansionWaits() int64 { return m.waits.Load() }

// Handle is one goroutine's lookup context, wrapping its typed reader.
// A Handle must not be used concurrently.
type Handle[K comparable, V any] struct {
	m *Map[K, V]
	g *guard.R
}

// NewHandle registers a pinned reader slot for lookups. Registration only
// fails when the engine was built with a reader cap; prefer Handle for
// ephemeral goroutines.
func (m *Map[K, V]) NewHandle() (*Handle[K, V], error) {
	for {
		eng := m.Engine()
		rd, err := eng.Register()
		if err != nil {
			return nil, err
		}
		// Re-check the engine indirection after Register: a live
		// migration flipping the map between the load and the Register
		// could otherwise strand this reader on a source engine whose
		// drain already read an empty registry (DESIGN.md "Handover
		// safety"). Passing the re-check means the registration was
		// visible before the swap, so the drain's poll observes it.
		if m.Engine() == eng {
			return &Handle[K, V]{m: m, g: guard.Wrap(rd)}, nil
		}
		rd.Unregister()
	}
}

// Handle borrows a pooled reader and returns a handle around it — the
// infallible choice for goroutines that come and go. Close returns the
// reader to the pool for the next borrower.
func (m *Map[K, V]) Handle() *Handle[K, V] {
	return &Handle[K, V]{m: m, g: guard.Wrap(m.pool.Get())}
}

// Close releases the handle's reader: a pinned reader's slot is freed, a
// pooled reader goes back to the pool.
func (h *Handle[K, V]) Close() {
	h.g.Unregister()
	h.g = nil
}

// Get returns the value stored under k. The read-side critical section's
// PRCU value is the key's bucket index in the table generation being
// traversed; the bucket is picked from the mask hint before entering
// and re-validated against the generation loaded inside the section, so
// an expansion that published a new table always covers the lookup
// through one of its bucket predicates. Every chain load demands the
// section's Scope, and the section is closed even if the traversal
// panics (an incomparable dynamic key type, a corrupted chain), so a
// failing lookup can never wedge future covering grace periods.
func (h *Handle[K, V]) Get(k K) (val V, ok bool) {
	m := h.m
	hk := m.hash(k)
	for {
		var retry bool
		val, ok, retry = m.lookup(h.g, hk, k)
		if !retry {
			return val, ok
		}
	}
}

// lookup is one guarded traversal attempt: it enters on the hinted
// bucket, validates the hint against the generation read inside the
// section, and walks the chain. retry means the hint was stale and the
// attempt saw a newer generation.
func (m *Map[K, V]) lookup(g *guard.R, hk uint64, k K) (val V, ok, retry bool) {
	v := prcu.Value(hk & m.maskHint.Load())
	s := g.Enter(v)
	defer g.Exit(s)
	t := m.tbl.Load(s)
	if hk&t.mask != uint64(v) {
		// The table was swapped after the hint was read; re-enter under
		// the new generation's bucket so its split predicates cover us.
		m.maskHint.Store(t.mask)
		return val, false, true
	}
	// Chains may alias other buckets' nodes mid-expansion, so match
	// on the key, never on position.
	n := t.heads[uint64(v)].Load(s)
	for n != nil && n.key != k {
		n = n.next.Load(s)
	}
	if n != nil {
		val, ok = n.val, true
	}
	return val, ok, false
}

// Contains reports whether k is present.
func (h *Handle[K, V]) Contains(k K) bool {
	_, ok := h.Get(k)
	return ok
}

// Get is the one-shot form: it borrows a pooled reader for a single
// lookup. Hot loops should hold a Handle instead and amortize the borrow.
// The borrow is returned even if the lookup panics, so a failed lookup
// never leaks a pooled reader slot.
func (m *Map[K, V]) Get(k K) (V, bool) {
	rd := m.pool.Get()
	defer m.pool.Put(rd)
	h := Handle[K, V]{m: m, g: guard.Wrap(rd)}
	return h.Get(k)
}

// Contains is the one-shot membership test; see Get.
func (m *Map[K, V]) Contains(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// lockBucket acquires the bucket lock for hash hk in the current table,
// retrying across expansions; it returns with the lock held, expansion
// quiescent, and the table current.
func (m *Map[K, V]) lockBucket(hk uint64) (*table[K, V], uint64) {
	var w spin.Waiter
	for {
		if m.expanding.Load() {
			w.Wait()
			continue
		}
		t := m.tbl.LoadLocked()
		b := hk & t.mask
		t.locks[b].Lock()
		if !m.expanding.Load() && m.tbl.LoadLocked() == t {
			return t, b
		}
		t.locks[b].Unlock()
		w.Wait()
	}
}

// Insert adds k with value val, returning false if k is already present.
// Inserts push at the chain head, so lock-free readers observe them
// atomically.
func (m *Map[K, V]) Insert(k K, val V) bool {
	hk := m.hash(k)
	t, b := m.lockBucket(hk)
	defer t.locks[b].Unlock()
	head := t.heads[b].LoadLocked()
	for n := head; n != nil; n = n.next.LoadLocked() {
		if n.key == k {
			return false
		}
	}
	n, _ := m.nodePool.Get().(*hnode[K, V])
	if n == nil {
		n = &hnode[K, V]{}
	}
	n.key = k
	n.val = val
	n.next.Store(head)
	t.heads[b].Store(n)
	m.size.Add(1)
	return true
}

// Delete removes k, returning whether it was present. The node is unlinked
// while readers may still be traversing it; its next pointer is left
// intact so they continue unharmed (the RCU discipline — in C this is
// where reclamation would be deferred to a grace period; Go's GC plays
// that role by default, or the attached Reclaimer recycles the node
// after its grace period when SetReclaimer was called).
func (m *Map[K, V]) Delete(k K) bool {
	hk := m.hash(k)
	t, b := m.lockBucket(hk)
	defer t.locks[b].Unlock()
	var prev *hnode[K, V]
	n := t.heads[b].LoadLocked()
	for n != nil && n.key != k {
		prev, n = n, n.next.LoadLocked()
	}
	if n == nil {
		return false
	}
	if prev == nil {
		t.heads[b].Store(n.next.LoadLocked())
	} else {
		prev.next.Store(n.next.LoadLocked())
	}
	m.size.Add(-1)
	// The node's next pointer is left intact for readers still on it; with
	// a reclaimer attached it re-enters the insert pool once a grace
	// period covering every such reader completes.
	if ret := m.ret; ret != nil {
		ret.Retire(retirePredicate(hk, t.mask), n)
	}
	return true
}

// splitPredicate covers readers of the two buckets an old bucket splits
// into: values b and b+oldSize (an iterable predicate with two values, the
// form D-PRCU drains in O(1)).
func splitPredicate(b, oldSize uint64) prcu.Predicate {
	return prcu.Iterable(b, b+oldSize, func(v prcu.Value) prcu.Value { return v + oldSize })
}

// Expand doubles the bucket array while lookups proceed concurrently.
// Updates are blocked for its duration. Safe to call from one goroutine at
// a time per table; concurrent calls serialize.
func (m *Map[K, V]) Expand() {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()

	old := m.tbl.LoadLocked()
	oldSize := uint64(len(old.heads))

	// Stop updates: raise the flag, then drain in-flight holders of every
	// old bucket lock.
	m.expanding.Store(true)
	defer m.expanding.Store(false)
	for i := range old.locks {
		old.locks[i].Lock()
		//lint:ignore SA2001 empty critical section intentionally drains in-flight updates
		old.locks[i].Unlock()
	}

	// Build the new array: each new bucket points at the first node of its
	// old chain that belongs to it (Figure 3a).
	nt := newTable[K, V](int(oldSize * 2))
	for b := uint64(0); b < oldSize; b++ {
		for n := old.heads[b].LoadLocked(); n != nil; n = n.next.LoadLocked() {
			d := m.hash(n.key) & nt.mask
			if nt.heads[d].LoadLocked() == nil {
				nt.heads[d].Store(n)
			}
		}
	}
	m.tbl.Publish(nt)
	m.maskHint.Store(nt.mask)

	// Unzip every old chain (Figure 3b–3d).
	for b := uint64(0); b < oldSize; b++ {
		m.unzip(old, nt, b, oldSize)
	}
}

// unzip separates old bucket b's chain into the two new chains, calling
// WaitForReaders before every pointer change so no traversal that might
// still rely on the old link can be stranded.
func (m *Map[K, V]) unzip(old, nt *table[K, V], b, oldSize uint64) {
	pred := splitPredicate(b, oldSize)
	cur := old.heads[b].LoadLocked()
	for cur != nil {
		d := m.hash(cur.key) & nt.mask
		// Advance to the end of the current run of destination d.
		next := cur.next.LoadLocked()
		for next != nil && m.hash(next.key)&nt.mask == d {
			cur = next
			next = cur.next.LoadLocked()
		}
		if next == nil {
			return // fully split
		}
		// next begins a run of the other destination; find the first
		// node after it that belongs to d again.
		q := next
		for q != nil && m.hash(q.key)&nt.mask != d {
			q = q.next.LoadLocked()
		}
		// Pre-existing readers of bucket d may be traversing the foreign
		// run to reach their nodes beyond it; let them finish before
		// cutting the link.
		m.waits.Add(1)
		m.waitForReaders(pred)
		cur.next.Store(q)
		cur = next
	}
}

// Compile-time check of the live-migration front contract.
var (
	_ prcu.EngineFront = (*Map[int, int])(nil)
)
