#!/bin/sh
# CI gate: everything must build, vet clean, and pass the full test
# suite plus a race-enabled short pass over the concurrent packages.
# Designed to finish in a couple of minutes on a laptop-class host.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== prcuvet (typed-guard misuse analysis over the whole repo) =="
go build -o /tmp/prcuvet.ci ./cmd/prcuvet
go vet -vettool=/tmp/prcuvet.ci ./...
rm -f /tmp/prcuvet.ci

echo "== go test (full) =="
go test -timeout 300s ./...

echo "== go test -shuffle=on (order-independence pass) =="
go test -short -shuffle=on -timeout 300s ./...

echo "== go test -race -short (API + engines + structures + typed guard layer) =="
go test -race -short -timeout 300s . ./internal/core ./citrus ./hashtable ./guard

echo "== go test -race (reclaimer backlog/backpressure stress) =="
go test -race -timeout 300s ./internal/reclaim

echo "== go test -race (export plane: exposition format, trace ring, health) =="
go test -race -timeout 300s ./internal/obshttp

echo "== go test -race (reader churn stress) =="
go test -race -run 'TestReaderChurnConcurrentWaits|TestUncappedRegisterNeverFails' \
    -timeout 300s ./internal/core .

echo "== go test -race (chaos torture: fault injection over every engine) =="
go test -race -short -timeout 300s ./internal/chaos

echo "== go test -race (chaos storm suite: self-tuning controller on/off envelope, seeded) =="
go test -race -short -timeout 300s ./internal/adapt

echo "== go test -race (packed engine: litmus + conformance over all flavors) =="
go test -race -run 'TestPacked|TestConformance' -timeout 300s ./internal/core .

echo "== fuzz seed corpora replay =="
go test -run 'Fuzz' -timeout 120s ./internal/core ./hashtable ./internal/reclaim

echo "== prcubench -quick -json smoke =="
out=$(go run ./cmd/prcubench -quick -json fig1 2>/dev/null)
case "$out" in
'{'*) ;;
*)
    echo "prcubench -json did not emit JSON on stdout:" >&2
    echo "$out" >&2
    exit 1
    ;;
esac

echo "== prcubench -quick -json reclaim smoke =="
out=$(go run ./cmd/prcubench -quick -json reclaim 2>/dev/null)
case "$out" in
'{'*) ;;
*)
    echo "prcubench -json reclaim did not emit JSON on stdout:" >&2
    echo "$out" >&2
    exit 1
    ;;
esac

echo "== export plane HTTP smoke (loopback /metrics, health+blame, tracez) =="
go run ./cmd/obssmoke

echo "== recorder-off read fast-path benches (flight recorder must not tax disabled hot paths) =="
go test -run '^$' -bench 'BenchmarkEnterExit' -benchtime 100x -timeout 120s .
go test -run '^$' -bench 'BenchmarkGuardedRead' -benchtime 100x -timeout 120s ./hashtable

echo "CI PASS"
