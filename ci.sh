#!/bin/sh
# CI gate: everything must build, vet clean, and pass the full test
# suite plus a race-enabled short pass over the concurrent packages.
# Designed to finish in a couple of minutes on a laptop-class host.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test (full) =="
go test -timeout 300s ./...

echo "== go test -race -short (engines + structures) =="
go test -race -short -timeout 300s ./internal/core ./citrus ./hashtable

echo "== fuzz seed corpora replay =="
go test -run 'Fuzz' -timeout 120s ./internal/core ./hashtable

echo "CI PASS"
