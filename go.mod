module prcu

go 1.22
