module prcu

go 1.24
