// Guard conformance suite: the typed scope layer's contract, run over
// every engine flavor, mirroring conformance_test.go's structure. The
// guard package adds no synchronization of its own — these properties
// check that its bookkeeping (scope liveness, panic-safe Read, typed
// retirement through the reclaimer) composes correctly with each engine's
// Enter/Exit/WaitForReaders protocol:
//
//   - scope reads observe published values and scopes die on exit, on
//     every flavor;
//   - a panic inside Read closes the section: a covering wait completes
//     instead of blocking on the wedged reader, and the reader and its
//     reusable scope storage survive for the next section;
//   - typed retirement under churn: concurrent guarded readers traverse
//     a list while an updater unlinks and retires nodes through a
//     Retirer; every free runs after its covering grace period, and no
//     reader ever observes a node that was freed before its section
//     ended (asserted by poisoning nodes in the free callback).
package prcu_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"prcu"
)

const poisonedKey = ^uint64(0)

type gnode struct {
	key  uint64
	val  uint64
	next prcu.Cell[gnode]
}

func TestGuardConformance(t *testing.T) {
	props := []struct {
		name string
		run  func(t *testing.T, f prcu.Flavor, r prcu.RCU)
	}{
		{"ScopedReads", guardScopedReads},
		{"PanicInsideRead", guardPanicInsideRead},
		{"RetireUnderChurn", guardRetireUnderChurn},
	}
	for _, f := range prcu.Flavors() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			for _, p := range props {
				p := p
				t.Run(p.name, func(t *testing.T) {
					p.run(t, f, prcu.MustNew(f, prcu.Options{}))
				})
			}
		})
	}
}

// guardScopedReads: loads demand a live scope and see published values.
func guardScopedReads(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	g := prcu.WrapReader(rd)
	defer g.Unregister()

	cell := prcu.NewGuarded(&gnode{key: 1, val: 10})
	s := g.Enter(1)
	if n := cell.Load(s); n.val != 10 {
		t.Fatalf("Load = %+v", n)
	}
	g.Exit(s)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Load through dead scope did not panic")
			}
		}()
		cell.Load(s)
	}()

	cell.Publish(&gnode{key: 2, val: 20})
	g.Read(2, func(s *prcu.Scope) {
		if n := cell.Load(s); n.val != 20 {
			t.Errorf("Load after Publish = %+v", n)
		}
	})
}

// guardPanicInsideRead: the section closes despite the panic, so a
// covering wait completes and the reader remains usable.
func guardPanicInsideRead(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	g := prcu.WrapReader(rd)
	defer g.Unregister()

	var leaked *prcu.Scope
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic inside Read was swallowed")
			}
		}()
		g.Read(3, func(s *prcu.Scope) {
			leaked = s
			panic("reader panics mid-section")
		})
	}()

	// Must not block: the panicking section was exited on the way out.
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(prcu.All())
		close(done)
	}()
	mustComplete(t, done, "wait covering a panicked-but-closed section")

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("leaked scope from panicked Read is still live")
			}
		}()
		leaked.Value()
	}()

	g.Read(4, func(s *prcu.Scope) {}) // reader is reusable
}

// guardRetireUnderChurn: typed retirement with concurrent guarded
// traversals. Freed nodes are poisoned; a reader observing the poison
// inside a section would mean a free ran before its covering grace
// period.
func guardRetireUnderChurn(t *testing.T, f prcu.Flavor, r prcu.RCU) {
	const (
		keys    = 64
		readers = 3
		cycles  = 400
	)
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{})

	list := prcu.NewList(func(n *gnode) *prcu.Cell[gnode] { return &n.next })
	var retiredCount, freedCount atomic.Int64
	ret := prcu.NewRetirer(rec, 0, func(n *gnode) {
		n.key = poisonedKey
		freedCount.Add(1)
	})
	for k := uint64(keys); k > 0; k-- {
		list.PushHead(&gnode{key: k - 1, val: (k - 1) * 100})
	}

	var stop atomic.Bool
	var sawPoison atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rd, err := r.Register()
			if err != nil {
				t.Error(err)
				return
			}
			g := prcu.WrapReader(rd)
			defer g.Unregister()
			state := seed
			for !stop.Load() {
				state = state*6364136223846793005 + 1442695040888963407
				key := (state >> 33) % keys
				g.Read(key, func(s *prcu.Scope) {
					for n := list.Head(s); n != nil; n = n.next.Load(s) {
						if n.key == poisonedKey {
							sawPoison.Add(1)
							return
						}
						if n.key == key {
							return
						}
					}
				})
			}
		}(uint64(i + 1))
	}

	// The updater repeatedly unlinks the second node, retires it covered
	// by a predicate on its key, and pushes a replacement.
	for c := 0; c < cycles; c++ {
		h := list.HeadLocked()
		victim := list.NextLocked(h)
		if victim == nil {
			break
		}
		vkey, vval := victim.key, victim.val
		list.Unlink(h, victim)
		ret.Retire(prcu.Singleton(vkey), victim)
		retiredCount.Add(1)
		list.PushHead(&gnode{key: vkey, val: vval + 1})
	}
	stop.Store(true)
	wg.Wait()
	rec.Barrier()
	rec.Close()

	if got := sawPoison.Load(); got != 0 {
		t.Fatalf("readers observed %d poisoned (freed) nodes inside open sections", got)
	}
	if retiredCount.Load() != freedCount.Load() {
		t.Fatalf("retired %d nodes but %d frees ran", retiredCount.Load(), freedCount.Load())
	}
	if retiredCount.Load() == 0 {
		t.Fatal("churn loop retired nothing")
	}
}
