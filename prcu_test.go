package prcu_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prcu"
)

func TestNewAllFlavors(t *testing.T) {
	for _, f := range prcu.Flavors() {
		r, err := prcu.New(f, prcu.Options{})
		if err != nil {
			t.Fatalf("New(%s): %v", f, err)
		}
		if r.MaxReaders() != 0 {
			t.Fatalf("%s default MaxReaders = %d, want 0 (uncapped)", f, r.MaxReaders())
		}
		rd, err := r.Register()
		if err != nil {
			t.Fatal(err)
		}
		rd.Enter(1)
		rd.Exit(1)
		r.WaitForReaders(prcu.All())
		r.WaitForReaders(prcu.Singleton(1))
		r.WaitForReaders(prcu.Interval(1, 5))
		r.WaitForReaders(prcu.Func(func(v prcu.Value) bool { return v == 1 }))
		r.WaitForReaders(prcu.Iterable(0, 8, func(v prcu.Value) prcu.Value { return v + 2 }))
		rd.Unregister()
	}
}

func TestNewUnknownFlavor(t *testing.T) {
	if _, err := prcu.New("bogus", prcu.Options{}); err == nil {
		t.Fatal("unknown flavor must error")
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on unknown flavor")
		}
	}()
	prcu.MustNew("bogus", prcu.Options{})
}

func TestOptionsPropagate(t *testing.T) {
	r, err := prcu.New(prcu.FlavorEER, prcu.Options{MaxReaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rds []prcu.Reader
	for i := 0; i < 3; i++ {
		rd, err := r.Register()
		if err != nil {
			t.Fatal(err)
		}
		rds = append(rds, rd)
	}
	if _, err := r.Register(); !errors.Is(err, prcu.ErrTooManyReaders) {
		t.Fatalf("err = %v, want ErrTooManyReaders", err)
	}
	for _, rd := range rds {
		rd.Unregister()
	}
}

func TestNamedConstructors(t *testing.T) {
	cases := []struct {
		mk   func(prcu.Options) prcu.RCU
		name string
	}{
		{prcu.NewEER, "EER-PRCU"},
		{prcu.NewD, "D-PRCU"},
		{prcu.NewDEER, "DEER-PRCU"},
		{prcu.NewTimeRCU, "Time RCU"},
		{prcu.NewURCU, "URCU"},
		{prcu.NewTreeRCU, "Tree RCU"},
		{prcu.NewDistRCU, "Dist RCU"},
		{prcu.NewSRCU, "SRCU"},
		{prcu.NewPacked, "Packed RCU"},
	}
	for _, c := range cases {
		if got := c.mk(prcu.Options{MaxReaders: 2}).Name(); got != c.name {
			t.Errorf("Name = %q, want %q", got, c.name)
		}
	}
}

func TestSimulatedAndNopWrappers(t *testing.T) {
	s := prcu.NewSimulated(prcu.NewTimeRCU(prcu.Options{MaxReaders: 2}), 1000)
	s.WaitForReaders(prcu.All())
	n := prcu.NewNop(2)
	n.WaitForReaders(prcu.All())
	rd, err := n.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(0)
	rd.Exit(0)
	rd.Unregister()
}

func TestAsyncViaPublicAPI(t *testing.T) {
	r := prcu.NewDistRCU(prcu.Options{MaxReaders: 2})
	a := prcu.NewAsync(r)
	done := make(chan struct{})
	a.Call(prcu.All(), func() { close(done) })
	a.Barrier()
	select {
	case <-done:
	default:
		t.Fatal("callback did not run by Barrier")
	}
	a.Close()
}

// TestReclaimerViaPublicAPI checks the public wiring of the bounded
// reclamation subsystem: Retire frees after a covering grace period,
// stats surface through the obs snapshot, and Close drains.
func TestReclaimerViaPublicAPI(t *testing.T) {
	r := prcu.NewEER(prcu.Options{})
	rec := prcu.NewReclaimer(r, prcu.ReclaimConfig{
		MaxPending: 8,
		Policy:     prcu.PolicyBlock,
	})
	freed := make(chan uint64, 4)
	for k := uint64(0); k < 4; k++ {
		rec.Retire(k, prcu.Singleton(k), 16, func(v any) { freed <- v.(uint64) })
	}
	rec.Barrier()
	if len(freed) != 4 {
		t.Fatalf("freed %d of 4 retirements by Barrier", len(freed))
	}
	if s := rec.Stats(); s.ReclaimFreed != 4 || s.ReclaimPending != 0 {
		t.Fatalf("stats: freed=%d pending=%d, want 4/0", s.ReclaimFreed, s.ReclaimPending)
	}
	if rec.Graces() == 0 || rec.Dropped() != 0 {
		t.Fatalf("graces=%d dropped=%d, want >0 and 0", rec.Graces(), rec.Dropped())
	}
	rec.Close()
}

// TestStallWatchdogViaOptions checks the public wiring: StallTimeout
// arms the watchdog at construction and OnStall receives the report
// while a wait is wedged on a parked reader.
func TestStallWatchdogViaOptions(t *testing.T) {
	reports := make(chan prcu.StallReport, 4)
	r := prcu.NewEER(prcu.Options{
		StallTimeout:   5 * time.Millisecond,
		StallRateLimit: time.Hour,
		OnStall:        func(rep prcu.StallReport) { reports <- rep },
	})
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(9)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := r.WaitForReadersCtx(ctx, prcu.Singleton(9)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait returned %v, want DeadlineExceeded", err)
	}
	select {
	case rep := <-reports:
		if rep.Engine != r.Name() {
			t.Errorf("report engine %q, want %q", rep.Engine, r.Name())
		}
		if len(rep.Readers) != 1 || !rep.Readers[0].HasValue || rep.Readers[0].Value != 9 {
			t.Errorf("report readers = %+v, want the one open section on 9", rep.Readers)
		}
	default:
		t.Fatal("OnStall never fired although the wait blocked past StallTimeout")
	}
	rd.Exit(9)
	rd.Unregister()
}

// The per-flavor contract tests (grace-period blocking, selectivity,
// reader reuse, context cancellation, panic-safe Do) live in the
// conformance suite, conformance_test.go, which runs over Flavors().

// TestRegisterMetricsRebinds mirrors the PublishMetrics rebind test:
// binding a live name must swap the backing collector, not panic, so
// sweeps that rebuild engines per data point keep one series name.
func TestRegisterMetricsRebinds(t *testing.T) {
	m1, m2 := prcu.NewMetrics(), prcu.NewMetrics()
	prcu.RegisterMetrics("prcu-test-rebind", m1)
	prcu.RegisterMetrics("prcu-test-rebind", m2)
	defer prcu.RegisterMetrics("prcu-test-rebind", nil)
}

// TestObsHandlerServesEngine checks the wiring end to end through the
// public API: Options.Metrics auto-registers under the engine name and
// ObsHandler serves its series and snapshot.
func TestObsHandlerServesEngine(t *testing.T) {
	m := prcu.NewMetrics()
	r := prcu.MustNew(prcu.FlavorEER, prcu.Options{Metrics: m})
	defer prcu.RegisterMetrics(r.Name(), nil)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1)
	rd.Exit(1)
	rd.Unregister()
	r.WaitForReaders(prcu.All())

	h := prcu.ObsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	want := `prcu_waits_total{engine="` + r.Name() + `"} 1`
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("metrics body missing %q", want)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prcu/stats", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"`+r.Name()+`"`) {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDeltaStatsPublic exercises the windowed-rates helper through the
// public alias.
func TestDeltaStatsPublic(t *testing.T) {
	m := prcu.NewMetrics()
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{Metrics: m})
	defer prcu.RegisterMetrics(r.Name(), nil)
	prev := m.Snapshot()
	r.WaitForReaders(prcu.All())
	r.WaitForReaders(prcu.All())
	rt := prcu.DeltaStats(prev, m.Snapshot(), time.Second)
	if rt.Waits != 2 || rt.WaitsPerSec != 2 {
		t.Fatalf("DeltaStats waits = %d (%v/s), want 2", rt.Waits, rt.WaitsPerSec)
	}
}

// TestRuntimeAttributionOption checks the opt-in path works end to end
// (regions and labels are applied and cleared around waits) and that
// the default stays off.
func TestRuntimeAttributionOption(t *testing.T) {
	m := prcu.NewMetrics()
	r := prcu.MustNew(prcu.FlavorDEER, prcu.Options{Metrics: m, RuntimeAttribution: true})
	defer prcu.RegisterMetrics(r.Name(), nil)
	defer m.DisableRuntimeAttribution()
	if !m.AttributionEnabled() {
		t.Fatal("RuntimeAttribution option did not enable attribution")
	}
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.WaitForReaders(prcu.Singleton(8)) // uncovered: returns fast
		r.WaitForReaders(prcu.All())
	}()
	time.Sleep(10 * time.Millisecond)
	rd.Exit(7)
	<-done
	rd.Unregister()
	if s := m.Snapshot(); s.Waits != 2 {
		t.Fatalf("Waits = %d with attribution on, want 2", s.Waits)
	}

	m2 := prcu.NewMetrics()
	r2 := prcu.MustNew(prcu.FlavorDEER, prcu.Options{Metrics: m2})
	defer prcu.RegisterMetrics(r2.Name(), nil)
	if m2.AttributionEnabled() {
		t.Fatal("attribution enabled without the option")
	}
}
