package prcu_test

import (
	"errors"
	"testing"

	"prcu"
)

func TestNewAllFlavors(t *testing.T) {
	for _, f := range prcu.Flavors() {
		r, err := prcu.New(f, prcu.Options{})
		if err != nil {
			t.Fatalf("New(%s): %v", f, err)
		}
		if r.MaxReaders() != 0 {
			t.Fatalf("%s default MaxReaders = %d, want 0 (uncapped)", f, r.MaxReaders())
		}
		rd, err := r.Register()
		if err != nil {
			t.Fatal(err)
		}
		rd.Enter(1)
		rd.Exit(1)
		r.WaitForReaders(prcu.All())
		r.WaitForReaders(prcu.Singleton(1))
		r.WaitForReaders(prcu.Interval(1, 5))
		r.WaitForReaders(prcu.Func(func(v prcu.Value) bool { return v == 1 }))
		r.WaitForReaders(prcu.Iterable(0, 8, func(v prcu.Value) prcu.Value { return v + 2 }))
		rd.Unregister()
	}
}

func TestNewUnknownFlavor(t *testing.T) {
	if _, err := prcu.New("bogus", prcu.Options{}); err == nil {
		t.Fatal("unknown flavor must error")
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on unknown flavor")
		}
	}()
	prcu.MustNew("bogus", prcu.Options{})
}

func TestOptionsPropagate(t *testing.T) {
	r, err := prcu.New(prcu.FlavorEER, prcu.Options{MaxReaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rds []prcu.Reader
	for i := 0; i < 3; i++ {
		rd, err := r.Register()
		if err != nil {
			t.Fatal(err)
		}
		rds = append(rds, rd)
	}
	if _, err := r.Register(); !errors.Is(err, prcu.ErrTooManyReaders) {
		t.Fatalf("err = %v, want ErrTooManyReaders", err)
	}
	for _, rd := range rds {
		rd.Unregister()
	}
}

func TestNamedConstructors(t *testing.T) {
	cases := []struct {
		mk   func(prcu.Options) prcu.RCU
		name string
	}{
		{prcu.NewEER, "EER-PRCU"},
		{prcu.NewD, "D-PRCU"},
		{prcu.NewDEER, "DEER-PRCU"},
		{prcu.NewTimeRCU, "Time RCU"},
		{prcu.NewURCU, "URCU"},
		{prcu.NewTreeRCU, "Tree RCU"},
		{prcu.NewDistRCU, "Dist RCU"},
		{prcu.NewSRCU, "SRCU"},
	}
	for _, c := range cases {
		if got := c.mk(prcu.Options{MaxReaders: 2}).Name(); got != c.name {
			t.Errorf("Name = %q, want %q", got, c.name)
		}
	}
}

func TestSimulatedAndNopWrappers(t *testing.T) {
	s := prcu.NewSimulated(prcu.NewTimeRCU(prcu.Options{MaxReaders: 2}), 1000)
	s.WaitForReaders(prcu.All())
	n := prcu.NewNop(2)
	n.WaitForReaders(prcu.All())
	rd, err := n.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(0)
	rd.Exit(0)
	rd.Unregister()
}

func TestAsyncViaPublicAPI(t *testing.T) {
	r := prcu.NewDistRCU(prcu.Options{MaxReaders: 2})
	a := prcu.NewAsync(r)
	done := make(chan struct{})
	a.Call(prcu.All(), func() { close(done) })
	a.Barrier()
	select {
	case <-done:
	default:
		t.Fatal("callback did not run by Barrier")
	}
	a.Close()
}
