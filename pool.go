package prcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ReaderPool caches registered readers for ephemeral goroutines.
//
// Register is cheap but not free — it claims a registry slot and, on some
// engines, a block of per-reader state — so a goroutine that lives for one
// request should not pay it per request. A ReaderPool keeps warm readers in
// a sync.Pool: Get hands out an already-registered handle (registering a
// fresh one only when the pool is empty), Put parks it for the next
// borrower, and Critical wraps the whole borrow/Enter/Exit/return cycle
// around one function call.
//
// A parked reader stays registered but quiescent, so it never delays
// WaitForReaders. Close drains the pool and unregisters cached readers
// synchronously — the contract for tests and clean shutdowns. When the
// garbage collector purges the pool's cache (or a borrowed handle is
// leaked), a finalizer unregisters the underlying reader as a fallback,
// so pooled slots are reclaimed rather than leaked either way.
//
// The pool's engine sits behind an atomic indirection: SwapEngine
// redirects all future Gets onto a new engine while handles registered on
// the old engine drain off it naturally as they are returned (a returned
// handle whose engine no longer matches is unregistered, not re-cached).
// That indirection is what live migration (Migrator) flips; it costs the
// unswapped fast path one atomic load that the pool lookup already paid.
//
// Long-lived, pinned goroutines should still call RCU.Register directly
// and keep their Reader for life — that is one pointer dereference cheaper
// per section and gives stable per-reader observability lanes. The pool is
// for everything that comes and goes.
//
// A ReaderPool must not be copied after first use.
type ReaderPool struct {
	eng    atomic.Pointer[poolEngine]
	pool   sync.Pool
	closed atomic.Bool
	// drainMu serializes the cache drains (SwapEngine, DrainStale, Close)
	// against each other; Get/Put/Critical stay lock-free.
	drainMu sync.Mutex
}

// poolEngine is the indirection cell: one immutable engine binding,
// swapped wholesale so Get reads a consistent engine with a single load.
type poolEngine struct {
	r RCU
}

// NewReaderPool returns a pool of registered readers of r. Use it with an
// uncapped engine (Options.MaxReaders == 0, the default): Get panics if
// the engine refuses to register a reader.
func NewReaderPool(r RCU) *ReaderPool {
	p := &ReaderPool{}
	p.eng.Store(&poolEngine{r: r})
	return p
}

// Engine returns the engine new readers currently register on.
func (p *ReaderPool) Engine() RCU {
	return p.eng.Load().r
}

// SwapEngine atomically redirects all future Gets onto target and returns
// the previous engine. Cached idle readers registered on the previous
// engine are unregistered immediately; handles currently checked out keep
// reading on their original engine and release its slot when returned
// (Put detects the mismatch). The caller — normally the Migrator — is
// responsible for waiting out the drained engine's readers before
// reclaiming anything only its grace periods covered.
func (p *ReaderPool) SwapEngine(target RCU) RCU {
	if target == nil {
		panic("prcu: ReaderPool.SwapEngine with nil engine")
	}
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	prev := p.eng.Swap(&poolEngine{r: target}).r
	if p.closed.Load() {
		p.drainCache(nil)
	} else {
		p.drainCache(target)
	}
	return prev
}

// DrainStale unregisters cached idle readers that are still registered on
// a pre-swap engine (sync.Pool's per-P caches can hide entries from the
// drain SwapEngine already did). Migration's registry-drain loop calls it
// between backoff re-checks; it is a no-op when every cached reader is on
// the current engine.
func (p *ReaderPool) DrainStale() {
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	if p.closed.Load() {
		p.drainCache(nil)
		return
	}
	p.drainCache(p.eng.Load().r)
}

// drainCache empties the sync.Pool cache, unregistering every cached
// handle except those registered on keep, which are re-cached. Callers
// hold drainMu.
func (p *ReaderPool) drainCache(keep RCU) {
	var kept []*pooledReader
	for {
		h, _ := p.pool.Get().(*pooledReader)
		if h == nil {
			break
		}
		if keep != nil && h.r == keep {
			kept = append(kept, h)
			continue
		}
		h.retire()
	}
	for _, h := range kept {
		p.pool.Put(h)
	}
}

// pooledReader is the handle Get lends out. Its Unregister returns the
// handle to the pool instead of releasing the underlying reader, so code
// written against the plain Reader contract (register, use, unregister)
// works unchanged on a pooled handle.
type pooledReader struct {
	rd Reader
	// r is the engine rd is registered on — compared against the pool's
	// current engine on Get/Put to drain handles stranded by SwapEngine.
	r    RCU
	pool *ReaderPool
	// out is true while the handle is checked out. Like the rest of the
	// Reader contract it is single-goroutine state: it exists to turn
	// use-after-Put bugs into immediate panics, not to synchronize.
	out bool
}

// retire releases the handle's registry slot and drops its finalizer.
func (h *pooledReader) retire() {
	runtime.SetFinalizer(h, nil)
	h.rd.Unregister()
}

// Get borrows a registered reader, registering a fresh one if the pool is
// empty. The handle is for the calling goroutine only; return it with Put
// (or its own Unregister) when done. Panics if the underlying engine is
// capped and full.
func (p *ReaderPool) Get() Reader {
	if p.closed.Load() {
		panic("prcu: ReaderPool.Get after Close")
	}
	eng := p.eng.Load().r
	for {
		h, _ := p.pool.Get().(*pooledReader)
		if h == nil {
			break
		}
		if h.r == eng {
			h.out = true
			return h
		}
		// Stranded by an engine swap: release the old engine's slot and
		// keep looking for a current handle.
		h.retire()
	}
	for {
		rd, err := eng.Register()
		if err != nil {
			panic("prcu: ReaderPool.Get: " + err.Error())
		}
		// Re-check the indirection after Register: SwapEngine may have
		// flipped between the load above and the Register, and a
		// registration landing on a drained source after the migrator's
		// registry poll read zero would open critical sections no grace
		// period covers. Passing the re-check means the registration was
		// in the registry before the swap's store, so a post-swap
		// LiveReaders poll observes it (atomics are seqcst); failing it
		// means the slot may be on a draining engine — release and retry
		// on the current one.
		if cur := p.eng.Load().r; cur != eng {
			rd.Unregister()
			eng = cur
			continue
		}
		h := &pooledReader{rd: rd, r: eng, pool: p, out: true}
		// If the handle becomes unreachable — leaked by a borrower, or
		// parked in the pool when the GC purges the pool's cache — release
		// its registry slot instead of leaking it.
		runtime.SetFinalizer(h, finalizePooledReader)
		return h
	}
}

// Put returns a handle obtained from Get to the pool. The handle must be
// quiescent (outside any critical section) and must not be used again
// until re-borrowed. Put panics on a handle from another pool or on a
// second Put of the same handle. A Put that arrives after (or concurrent
// with) Close is a defined no-op beyond releasing the handle's slot —
// never a panic — so shutdown does not have to order Close against
// in-flight borrowers.
func (p *ReaderPool) Put(rd Reader) {
	h, ok := rd.(*pooledReader)
	if !ok || h.pool != p {
		panic("prcu: ReaderPool.Put of a Reader not obtained from this pool")
	}
	if !h.out {
		panic("prcu: ReaderPool.Put called twice")
	}
	h.out = false
	if p.closed.Load() || h.r != p.eng.Load().r {
		// The pool is shut down, or the handle was stranded by an engine
		// swap: release the slot now instead of parking a reader no Get
		// will hand out again.
		h.retire()
		return
	}
	p.pool.Put(h)
	if p.closed.Load() {
		// Close ran between the check above and the cache insert and may
		// have finished its drain already; re-drain so the handle cannot
		// linger registered in a cache nobody will empty.
		p.drainMu.Lock()
		p.drainCache(nil)
		p.drainMu.Unlock()
	} else if h.r != p.eng.Load().r {
		// Likewise SwapEngine: its drain may have run between the
		// mismatch check above and the cache insert, re-caching a handle
		// still registered on the drained engine. Retire it
		// deterministically instead of leaving it to a GC finalizer — a
		// direct SwapEngine caller gets no migrator re-nudges.
		p.drainMu.Lock()
		if p.closed.Load() {
			p.drainCache(nil)
		} else {
			p.drainCache(p.eng.Load().r)
		}
		p.drainMu.Unlock()
	}
}

// Close drains the pool and unregisters every cached reader synchronously,
// releasing their registry slots. After Close, Get panics and Put releases
// the returned handle's slot immediately. Close is idempotent and safe to
// race against concurrent Get/Put/Critical: borrowers that lose the race
// release their slots on Put.
//
// Handles still checked out are not touched — they release on their Put —
// and any cache entries sync.Pool keeps out of reach of a drain fall back
// to the finalizer, as unpooled leaks always have.
func (p *ReaderPool) Close() {
	p.closed.Store(true)
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	p.drainCache(nil)
}

// Critical runs fn inside a read-side critical section on v, borrowing a
// pooled reader for the duration. The reader is exited and returned even
// if fn panics.
func (p *ReaderPool) Critical(v Value, fn func()) {
	rd := p.Get()
	rd.Enter(v)
	defer criticalExit(p, rd, v)
	fn()
}

// criticalExit is deferred by Critical as a plain call (no closure, no
// allocation) so the borrow cycle stays cheap enough for hot paths.
func criticalExit(p *ReaderPool, rd Reader, v Value) {
	rd.Exit(v)
	p.Put(rd)
}

// Enter implements Reader.
func (h *pooledReader) Enter(v Value) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Enter(v)
}

// Exit implements Reader.
func (h *pooledReader) Exit(v Value) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Exit(v)
}

// Do implements Reader: runs fn inside a panic-safe critical section on
// the borrowed reader (see Reader.Do).
func (h *pooledReader) Do(v Value, fn func()) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Do(v, fn)
}

// Unregister implements Reader by returning the handle to its pool — the
// underlying reader stays registered and warm (or, after Close or an
// engine swap, releasing its slot). This keeps Close/teardown code
// portable between pinned and pooled readers.
func (h *pooledReader) Unregister() {
	h.pool.Put(h)
}

// finalizePooledReader releases the underlying registry slot of an
// unreachable handle. A handle leaked inside a critical section cannot be
// unregistered (the engine rejects that, and the section can never exit);
// the recover keeps the finalizer goroutine alive and lets the slot leak,
// which is the best available outcome for that bug.
func finalizePooledReader(h *pooledReader) {
	defer func() { _ = recover() }()
	h.rd.Unregister()
}
