package prcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ReaderPool caches registered readers for ephemeral goroutines.
//
// Register is cheap but not free — it claims a registry slot and, on some
// engines, a block of per-reader state — so a goroutine that lives for one
// request should not pay it per request. A ReaderPool keeps warm readers in
// a sync.Pool: Get hands out an already-registered handle (registering a
// fresh one only when the pool is empty), Put parks it for the next
// borrower, and Critical wraps the whole borrow/Enter/Exit/return cycle
// around one function call.
//
// A parked reader stays registered but quiescent, so it never delays
// WaitForReaders. Close drains the pool and unregisters cached readers
// synchronously — the contract for tests and clean shutdowns. When the
// garbage collector purges the pool's cache (or a borrowed handle is
// leaked), a finalizer unregisters the underlying reader as a fallback,
// so pooled slots are reclaimed rather than leaked either way.
//
// Long-lived, pinned goroutines should still call RCU.Register directly
// and keep their Reader for life — that is one pointer dereference cheaper
// per section and gives stable per-reader observability lanes. The pool is
// for everything that comes and goes.
//
// A ReaderPool must not be copied after first use.
type ReaderPool struct {
	r      RCU
	pool   sync.Pool
	closed atomic.Bool
}

// NewReaderPool returns a pool of registered readers of r. Use it with an
// uncapped engine (Options.MaxReaders == 0, the default): Get panics if
// the engine refuses to register a reader.
func NewReaderPool(r RCU) *ReaderPool {
	return &ReaderPool{r: r}
}

// pooledReader is the handle Get lends out. Its Unregister returns the
// handle to the pool instead of releasing the underlying reader, so code
// written against the plain Reader contract (register, use, unregister)
// works unchanged on a pooled handle.
type pooledReader struct {
	rd   Reader
	pool *ReaderPool
	// out is true while the handle is checked out. Like the rest of the
	// Reader contract it is single-goroutine state: it exists to turn
	// use-after-Put bugs into immediate panics, not to synchronize.
	out bool
}

// Get borrows a registered reader, registering a fresh one if the pool is
// empty. The handle is for the calling goroutine only; return it with Put
// (or its own Unregister) when done. Panics if the underlying engine is
// capped and full.
func (p *ReaderPool) Get() Reader {
	if p.closed.Load() {
		panic("prcu: ReaderPool.Get after Close")
	}
	if h, _ := p.pool.Get().(*pooledReader); h != nil {
		h.out = true
		return h
	}
	rd, err := p.r.Register()
	if err != nil {
		panic("prcu: ReaderPool.Get: " + err.Error())
	}
	h := &pooledReader{rd: rd, pool: p, out: true}
	// If the handle becomes unreachable — leaked by a borrower, or parked
	// in the pool when the GC purges the pool's cache — release its
	// registry slot instead of leaking it.
	runtime.SetFinalizer(h, finalizePooledReader)
	return h
}

// Put returns a handle obtained from Get to the pool. The handle must be
// quiescent (outside any critical section) and must not be used again
// until re-borrowed. Put panics on a handle from another pool or on a
// second Put of the same handle.
func (p *ReaderPool) Put(rd Reader) {
	h, ok := rd.(*pooledReader)
	if !ok || h.pool != p {
		panic("prcu: ReaderPool.Put of a Reader not obtained from this pool")
	}
	if !h.out {
		panic("prcu: ReaderPool.Put called twice")
	}
	h.out = false
	if p.closed.Load() {
		// The pool is shut down: release the slot now instead of parking
		// the reader in a cache no one will drain again.
		runtime.SetFinalizer(h, nil)
		h.rd.Unregister()
		return
	}
	p.pool.Put(h)
}

// Close drains the pool and unregisters every cached reader synchronously,
// releasing their registry slots. After Close, Get panics and Put releases
// the returned handle's slot immediately. Close is idempotent.
//
// Handles still checked out are not touched — they release on their Put —
// and any cache entries sync.Pool keeps out of reach of a drain fall back
// to the finalizer, as unpooled leaks always have.
func (p *ReaderPool) Close() {
	p.closed.Store(true)
	for {
		h, _ := p.pool.Get().(*pooledReader)
		if h == nil {
			return
		}
		runtime.SetFinalizer(h, nil)
		h.rd.Unregister()
	}
}

// Critical runs fn inside a read-side critical section on v, borrowing a
// pooled reader for the duration. The reader is exited and returned even
// if fn panics.
func (p *ReaderPool) Critical(v Value, fn func()) {
	rd := p.Get()
	rd.Enter(v)
	defer criticalExit(p, rd, v)
	fn()
}

// criticalExit is deferred by Critical as a plain call (no closure, no
// allocation) so the borrow cycle stays cheap enough for hot paths.
func criticalExit(p *ReaderPool, rd Reader, v Value) {
	rd.Exit(v)
	p.Put(rd)
}

// Enter implements Reader.
func (h *pooledReader) Enter(v Value) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Enter(v)
}

// Exit implements Reader.
func (h *pooledReader) Exit(v Value) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Exit(v)
}

// Do implements Reader: runs fn inside a panic-safe critical section on
// the borrowed reader (see Reader.Do).
func (h *pooledReader) Do(v Value, fn func()) {
	if !h.out {
		panic("prcu: use of pooled Reader after Put")
	}
	h.rd.Do(v, fn)
}

// Unregister implements Reader by returning the handle to its pool — the
// underlying reader stays registered and warm (or, after Close, releasing
// its slot). This keeps Close/teardown code portable between pinned and
// pooled readers.
func (h *pooledReader) Unregister() {
	h.pool.Put(h)
}

// finalizePooledReader releases the underlying registry slot of an
// unreachable handle. A handle leaked inside a critical section cannot be
// unregistered (the engine rejects that, and the section can never exit);
// the recover keeps the finalizer goroutine alive and lets the slot leak,
// which is the best available outcome for that bug.
func finalizePooledReader(h *pooledReader) {
	defer func() { _ = recover() }()
	h.rd.Unregister()
}
