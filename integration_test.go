// Cross-module integration tests: the engines, the containers and the
// async machinery working together the way a real application would use
// them.
package prcu_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu"
	"prcu/citrus"
	"prcu/hashtable"
	"prcu/internal/workload"
)

// TestSharedEngineAcrossStructures runs a CITRUS tree and a hash table on
// one engine simultaneously: reader slots, values and predicates from the
// two structures must coexist (values are opaque to PRCU, §3.1).
func TestSharedEngineAcrossStructures(t *testing.T) {
	r := prcu.NewD(prcu.Options{MaxReaders: 32})
	tree := citrus.New(r, citrus.CompressedDomain(64))
	table := hashtable.NewModulo(r, 16)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := tree.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			rng := workload.NewRNG(uint64(g) + 1)
			for !stop.Load() {
				k := rng.Intn(256)
				switch rng.Intn(3) {
				case 0:
					th.Insert(k, k)
				case 1:
					th.Delete(k)
				default:
					th.Contains(k)
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hh, err := table.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer hh.Close()
			rng := workload.NewRNG(uint64(g) + 100)
			for !stop.Load() {
				k := rng.Intn(512)
				switch rng.Intn(3) {
				case 0:
					table.Insert(k, k)
				case 1:
					table.Delete(k)
				default:
					hh.Contains(k)
				}
			}
		}(g)
	}
	// Expand the table twice while the tree churns on the same engine.
	time.Sleep(50 * time.Millisecond)
	table.Expand()
	table.Expand()
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncReclamationPattern mirrors the quickstart's pooled-reclamation
// idiom through prcu.Async: a retired object may only be recycled after a
// grace period covering its key, and no reader must ever observe a
// recycled object.
func TestAsyncReclamationPattern(t *testing.T) {
	r := prcu.NewEER(prcu.Options{MaxReaders: 8})
	async := prcu.NewAsync(r)
	defer async.Close()

	type obj struct {
		key     prcu.Value
		retired atomic.Bool
	}
	var current atomic.Pointer[obj]
	current.Store(&obj{key: 1})

	var stop atomic.Bool
	var anomalies atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd, err := r.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer rd.Unregister()
			for !stop.Load() {
				o := current.Load()
				rd.Enter(o.key)
				// Re-check identity inside the critical section: if the
				// object was swapped before our Enter, reload.
				if o2 := current.Load(); o2 == o {
					if o.retired.Load() {
						anomalies.Add(1)
					}
				}
				rd.Exit(o.key)
			}
		}()
	}
	for i := prcu.Value(2); i < 300; i++ {
		old := current.Load()
		current.Store(&obj{key: i})
		async.Call(prcu.Singleton(old.key), func() { old.retired.Store(true) })
	}
	async.Barrier()
	stop.Store(true)
	wg.Wait()
	if n := anomalies.Load(); n != 0 {
		t.Fatalf("%d readers observed a retired object inside a covered critical section", n)
	}
}

// TestCitrusOverSimulatedEngineStaysStructurallySound: the Figure 8
// measurement wraps engines so waits do nothing; readers may then observe
// anomalies, but updates must still leave the tree structurally valid
// (locks and validation, not grace periods, protect the structure).
func TestCitrusOverSimulatedEngineStaysStructurallySound(t *testing.T) {
	inner := prcu.NewTimeRCU(prcu.Options{MaxReaders: 16})
	r := prcu.NewSimulated(inner, 0)
	tree := citrus.New(r, citrus.WildcardDomain())
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := tree.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			rng := workload.NewRNG(uint64(g) + 1)
			for !stop.Load() {
				k := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEveryEngineDrivesBothApplications is the top-level compatibility
// matrix: every engine must run both paper applications correctly.
func TestEveryEngineDrivesBothApplications(t *testing.T) {
	for _, f := range prcu.Flavors() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			r := prcu.MustNew(f, prcu.Options{MaxReaders: 8})
			tree := citrus.New(r, citrus.DefaultDomain(f))
			th, err := tree.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 200; k++ {
				th.Insert(k, k)
			}
			for k := uint64(0); k < 200; k += 3 {
				th.Delete(k)
			}
			for k := uint64(0); k < 200; k++ {
				want := k%3 != 0
				if th.Contains(k) != want {
					t.Fatalf("tree Contains(%d) = %v, want %v", k, !want, want)
				}
			}
			th.Close()
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}

			table := hashtable.NewModulo(r, 8)
			hh, err := table.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 200; k++ {
				table.Insert(k, k*2)
			}
			table.Expand()
			table.Expand()
			for k := uint64(0); k < 200; k++ {
				if v, ok := hh.Get(k); !ok || v != k*2 {
					t.Fatalf("table Get(%d) = %d,%v", k, v, ok)
				}
			}
			hh.Close()
			if err := table.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
