GO ?= go

# Per-package test timeout. The suites size themselves down under
# -short; the full run stays well inside this on a laptop-class host.
TEST_TIMEOUT ?= 300s

.PHONY: all build vet test race short fuzz bench monitor chaos adapt migrate blame ci clean

all: ci

build:
	$(GO) build ./...

# Where `make vet` drops the freshly built prcuvet binary.
PRCUVET ?= /tmp/prcuvet

# go vet plus prcuvet, the repo's own analyzer for typed-guard misuse
# (Enter without Exit, guarded-pointer escapes, retire-before-unlink).
vet:
	$(GO) vet ./...
	$(GO) build -o $(PRCUVET) ./cmd/prcuvet
	$(GO) vet -vettool=$(PRCUVET) ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

short:
	$(GO) test -short -timeout $(TEST_TIMEOUT) ./...

# Race-enabled pass over the packages with real concurrency: the public
# API (reader pool + churn), the engine core (including the torture
# suite), and the two RCU-backed structures.
race:
	$(GO) test -race -short -timeout $(TEST_TIMEOUT) . ./internal/core ./internal/reclaim ./citrus ./hashtable ./guard

# Chaos storm suite: seeded deterministic fault injection (torture over
# every engine, live-reconfig storm schedules) plus the self-tuning
# controller's envelope proof — the same storm campaign runs with the
# controller off (must violate the age envelope) and on (must hold it),
# per flavor, under the race detector.
chaos:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/chaos ./internal/adapt

# Brief coverage-guided fuzzing on top of the checked-in seed corpora.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPredicate -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzHashtableResize -fuzztime $(FUZZTIME) ./hashtable

bench:
	$(GO) run ./cmd/prcubench -duration 150ms -runs 1 stats

# Live rate table over every engine under the mixed workload; pair with
# -serve in a second terminal to scrape /metrics while it runs.
MONITOR_FOR ?= 10s
monitor:
	$(GO) run ./cmd/prcubench -monitor-for $(MONITOR_FOR) monitor

# Live self-tuning demo: the chaos storm campaign against a
# misconfigured reclaimer, controller off vs on, envelope verdict table.
adapt:
	$(GO) run ./cmd/prcubench -monitor-for $(MONITOR_FOR) adapt

# Live migration demo: held grace periods on the source engine, the
# autotuner's escape hatch off vs on, handover verdict table.
migrate:
	$(GO) run ./cmd/prcubench -monitor-for $(MONITOR_FOR) migrate

# Reader-blame demo: flight recorder armed, one deterministically slow
# reader planted via chaos injection, verdict names the guilty slot.
blame:
	$(GO) run ./cmd/prcubench -monitor-for $(MONITOR_FOR) blame

ci:
	./ci.sh

clean:
	$(GO) clean -testcache
