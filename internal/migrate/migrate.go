// Package migrate implements live engine migration: a two-phase
// drain-and-handover protocol that moves a running workload from one
// RCU engine to another with zero lost reads and zero double or
// dropped reclamations, rolling back to the exact source wiring when a
// phase cannot complete in time.
//
// The protocol (full safety argument in DESIGN.md "Handover safety"):
//
//  0. Reclaimer.BeginHandover(target) — BEFORE anything flips, every
//     grace period the reclaimer runs starts covering both engines.
//     From here until step 4 (or rollback) the process is in the
//     dual-coverage window: read-side critical sections may exist on
//     either engine, and every wait over-covers, which PRCU §3.1
//     guarantees is always safe.
//  1. Flip the reader fronts (ReaderPool, hashtable, citrus handles)
//     onto the target behind their atomic indirections: new readers
//     enter the target, existing readers finish on the source.
//  2. Phase 1 — drain the source: one full source grace period, then
//     poll the source's reader registry down to zero with exponential
//     backoff (draining pool-cached stale readers between re-checks),
//     all bounded by a per-phase deadline and watched by an escalated
//     stall watchdog on the source.
//  3. Phase 2 — drain the retirement backlog submitted before the
//     flip (flush + backoff-poll on submission stamps), so no wait
//     that could have been wired to the source alone is left running.
//  4. Reclaimer.CompleteHandover() — the source is decommissioned;
//     future grace periods run on the target alone.
//
// Rollback (a phase deadline expiring, the escalated watchdog firing,
// or the caller's Context dying) restores the source wiring exactly:
// fronts flip back, the TARGET is drained the same way the source was
// being drained (grace period + registry poll — mandatory, because the
// moment AbortHandover returns, waits stop covering the target), and
// the reclaimer and watchdog return to their pre-migration
// configuration bit for bit — the same baseline-restore discipline as
// the autotuner's.
package migrate

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

// Front is one reader entry point the migration flips: anything that
// holds its engine behind an atomic indirection and can swap it in one
// step. ReaderPool, hashtable.Map and citrus.Tree implement it.
type Front interface {
	// SwapEngine redirects the front's new readers onto target and
	// returns the engine previously in place. Readers already obtained
	// keep running on their original engine and drain off it naturally.
	SwapEngine(target core.RCU) (prev core.RCU)
}

// Settler is implemented by fronts whose updater side runs its own
// grace-period waits (hashtable, citrus): after SwapEngine those waits
// cover both engines, and SettleEngine drops the old engine once the
// migrator has drained it.
type Settler interface {
	SettleEngine()
}

// StaleDrainer is implemented by fronts that cache registered readers
// (the ReaderPool): DrainStale releases cached readers stranded on a
// pre-swap engine. The registry-drain loop calls it between backoff
// re-checks so parked pool entries cannot hold the source open.
type StaleDrainer interface {
	DrainStale()
}

// Default protocol timings.
const (
	DefaultPhaseTimeout = 10 * time.Second
	DefaultBackoff      = 50 * time.Microsecond
	DefaultMaxBackoff   = 5 * time.Millisecond
)

// Config parameterizes a Migrator.
type Config struct {
	// Name keys the migrator in the export plane (obs.Migrations,
	// /debug/prcu/health, prcu_migrate_* metrics). Empty skips export
	// registration.
	Name string
	// PhaseTimeout bounds each protocol phase (source grain drain,
	// registry drain, backlog drain) separately. Defaults to
	// DefaultPhaseTimeout.
	PhaseTimeout time.Duration
	// Backoff/MaxBackoff shape the exponential backoff between drain
	// re-checks. Default to DefaultBackoff/DefaultMaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// StallTimeout, when positive, escalates the source engine's stall
	// watchdog for the duration of the migration: a stall report during
	// a drain phase aborts the phase immediately (triggering rollback)
	// instead of waiting out the phase deadline. The source's original
	// watchdog configuration is restored exactly on completion or
	// rollback.
	StallTimeout time.Duration
	// OnStall, when non-nil, additionally receives escalated reports.
	OnStall func(core.StallReport)
	// Metrics, when non-nil, records protocol transitions (MigrateEvent
	// counters + EvMigrate trace events).
	Metrics *obs.Metrics
}

// Packed phase words recorded via Metrics.MigrateEvent and carried by
// EvMigrate trace events.
const (
	EventBegin uint64 = iota + 1
	EventDrained
	EventHandover
	EventComplete
	EventRollback
	// EventStuck marks a rollback whose mandatory target drain has
	// failed stuckRollbackAttempts times in a row; the migrator is
	// parked retrying it in the visible "stuck-rollback" phase.
	EventStuck
)

// stuckRollbackAttempts is how many consecutive target-drain failures a
// rollback tolerates before parking in the "stuck-rollback" phase
// (PhaseCode 4, degraded on /debug/prcu/health). The drain itself never
// gives up — dual coverage stays in force while it loops, so the system
// is slow, never unsafe — but past this point the condition is an
// operator-visible incident (a reader registered outside the configured
// fronts, or a leaked handle) rather than a transient.
const stuckRollbackAttempts = 3

// Migrator runs live migrations. One migration runs at a time; a
// second Migrate call blocks until the first finishes.
type Migrator struct {
	cfg Config

	mu sync.Mutex // serializes migrations

	// phaseCancel holds the in-flight phase's cancel func so the
	// escalated watchdog can abort the phase from the stalled waiter's
	// goroutine.
	phaseCancel atomic.Pointer[context.CancelFunc]

	stMu sync.Mutex
	st   obs.MigrationState
}

// New returns a Migrator and, when cfg.Name is set, registers its state
// probe in the export plane. Call Close to unregister.
func New(cfg Config) *Migrator {
	if cfg.PhaseTimeout <= 0 {
		cfg.PhaseTimeout = DefaultPhaseTimeout
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.MaxBackoff < cfg.Backoff {
		cfg.MaxBackoff = DefaultMaxBackoff
		if cfg.MaxBackoff < cfg.Backoff {
			cfg.MaxBackoff = cfg.Backoff
		}
	}
	m := &Migrator{cfg: cfg}
	m.st.Phase = "idle"
	if cfg.Name != "" {
		obs.RegisterMigration(cfg.Name, m.State)
	}
	return m
}

// Close unregisters the migrator from the export plane. It does not
// interrupt a migration in flight.
func (m *Migrator) Close() {
	if m.cfg.Name != "" {
		obs.RegisterMigration(m.cfg.Name, nil)
	}
}

// State returns the migrator's current export-plane state.
func (m *Migrator) State() obs.MigrationState {
	m.stMu.Lock()
	defer m.stMu.Unlock()
	return m.st
}

// update applies fn to the export state under its lock and recomputes
// the phase code.
func (m *Migrator) update(fn func(*obs.MigrationState)) {
	m.stMu.Lock()
	defer m.stMu.Unlock()
	fn(&m.st)
	switch m.st.Phase {
	case "drain":
		m.st.PhaseCode = 1
	case "handover":
		m.st.PhaseCode = 2
	case "rollback":
		m.st.PhaseCode = 3
	case "stuck-rollback":
		m.st.PhaseCode = 4
	default:
		m.st.PhaseCode = 0
	}
}

// event records a protocol transition in the metrics plane.
func (m *Migrator) event(code uint64) { m.cfg.Metrics.MigrateEvent(code) }

// Migrate moves the live workload from source to target: rec (optional)
// is switched into dual-coverage mode, every front is flipped onto
// target, the source is drained (phase 1) and the pre-flip retirement
// backlog flushed (phase 2) before the source is decommissioned. On any
// phase failure the source wiring — fronts, reclaimer, watchdog — is
// restored exactly and the phase's error returned.
//
// The fronts passed must cover every path that registers readers on
// source; a reader registered outside them never drains and phase 1
// times out (safely — rollback restores the source).
func (m *Migrator) Migrate(ctx context.Context, source, target core.RCU, fronts []Front, rec *reclaim.Reclaimer) error {
	if source == nil || target == nil {
		return fmt.Errorf("prcu/migrate: nil engine (source=%v target=%v)", source != nil, target != nil)
	}
	if source == target {
		return fmt.Errorf("prcu/migrate: source and target are the same engine")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	begin := time.Now()
	m.update(func(st *obs.MigrationState) {
		st.Active = true
		st.From = source.Name()
		st.To = target.Name()
		st.Phase = "drain"
		st.Started++
		st.LastError = ""
	})
	m.event(EventBegin)

	finish := func(err error) error {
		m.update(func(st *obs.MigrationState) {
			st.Active = false
			st.Phase = "idle"
			st.LastDurationNs = time.Since(begin).Nanoseconds()
			if err != nil {
				st.LastError = err.Error()
			}
		})
		return err
	}

	// Step 0: dual coverage before anything flips, so no grace period
	// can miss a reader on either engine.
	var mark int64
	if rec != nil {
		mark = rec.NowNs()
		if err := rec.BeginHandover(target); err != nil {
			m.update(func(st *obs.MigrationState) { st.Failed++ })
			return finish(err)
		}
	}

	// Escalate the source watchdog for the drain, capturing its exact
	// baseline for restore.
	restoreStall := m.escalateStall(source)

	// Step 1: flip the fronts. Record what each front was on, not what
	// we assume it was on, so rollback restores exactly.
	prevs := make([]core.RCU, len(fronts))
	for i, f := range fronts {
		prevs[i] = f.SwapEngine(target)
	}

	rollback := func(cause error) error {
		m.update(func(st *obs.MigrationState) { st.Phase = "rollback" })
		m.event(EventRollback)
		for i, f := range fronts {
			f.SwapEngine(prevs[i])
		}
		// The target must be fully drained before AbortHandover: the
		// moment the reclaimer drops dual coverage, a reader still on
		// the target would be invisible to every future grace period.
		// This drain is therefore not abandonable — it retries past its
		// deadline (each attempt bounded by PhaseTimeout), which is safe
		// to do indefinitely because dual coverage stays in force while
		// it loops. It is never invisible, though: every failed attempt
		// bumps RollbackRetries and records its error in the export
		// state, and after stuckRollbackAttempts consecutive failures
		// the migrator parks in the "stuck-rollback" phase (EventStuck,
		// PhaseCode 4, degraded on /debug/prcu/health) while it keeps
		// retrying — that plateau means a reader outside the configured
		// fronts or a leaked handle, an incident, not a transient.
		for attempt := 1; ; attempt++ {
			dctx, cancel := context.WithTimeout(context.Background(), m.cfg.PhaseTimeout)
			err := m.drainEngine(dctx, target, fronts)
			cancel()
			if err == nil {
				break
			}
			retryErr := err
			m.update(func(st *obs.MigrationState) {
				st.RollbackRetries++
				st.LastError = retryErr.Error()
				if attempt >= stuckRollbackAttempts {
					st.Phase = "stuck-rollback"
				}
			})
			if attempt == stuckRollbackAttempts {
				m.event(EventStuck)
			}
		}
		m.update(func(st *obs.MigrationState) { st.Phase = "rollback" })
		m.settleFronts(fronts)
		if rec != nil {
			rec.AbortHandover()
		}
		restoreStall()
		// A rollback is also a failure of the migration it reversed:
		// Failed counts every run that did not land on the target, with
		// RolledBack the subset that flipped and came back.
		m.update(func(st *obs.MigrationState) { st.RolledBack++; st.Failed++ })
		return finish(fmt.Errorf("prcu/migrate: %s -> %s rolled back: %w", source.Name(), target.Name(), cause))
	}

	// Phase 1: drain the source. One full source grace period (every
	// section that straddled the flip has exited), then the registry
	// itself down to zero.
	ctx1, cancel1 := m.phaseCtx(ctx)
	err := m.drainEngine(ctx1, source, fronts)
	cancel1()
	if err != nil {
		return rollback(fmt.Errorf("phase 1 (source drain): %w", err))
	}
	m.settleFronts(fronts)
	m.event(EventDrained)

	// Phase 2: flush the retirement backlog submitted before the flip
	// under the dual-coverage window, so the source can be
	// decommissioned with no wait left that was wired to it alone.
	if rec != nil {
		m.update(func(st *obs.MigrationState) { st.Phase = "handover" })
		ctx2, cancel2 := m.phaseCtx(ctx)
		err = m.drainBacklog(ctx2, rec, mark)
		cancel2()
		if err != nil {
			return rollback(fmt.Errorf("phase 2 (backlog drain): %w", err))
		}
		rec.CompleteHandover()
	}
	m.event(EventHandover)

	restoreStall()
	m.update(func(st *obs.MigrationState) { st.Completed++ })
	m.event(EventComplete)
	return finish(nil)
}

// phaseCtx derives one phase's deadline context and publishes its
// cancel func for the escalated watchdog.
func (m *Migrator) phaseCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	pctx, cancel := context.WithTimeout(ctx, m.cfg.PhaseTimeout)
	m.phaseCancel.Store(&cancel)
	return pctx, func() {
		m.phaseCancel.Store(nil)
		cancel()
	}
}

// escalateStall arms the migration watchdog on eng (when configured and
// supported) and returns the restore func that reinstates the exact
// prior configuration. A report during a phase cancels that phase.
func (m *Migrator) escalateStall(eng core.RCU) func() {
	if m.cfg.StallTimeout <= 0 {
		return func() {}
	}
	sc, ok := eng.(core.StallCarrier)
	if !ok {
		return func() {}
	}
	var prior core.StallConfig
	hadPrior := false
	if si, ok := eng.(core.StallInspector); ok {
		prior, hadPrior = si.StallConfigInForce()
	}
	sc.SetStallConfig(core.StallConfig{
		Timeout:   m.cfg.StallTimeout,
		RateLimit: m.cfg.StallTimeout, // re-report (and re-abort) every window
		OnStall: func(rep core.StallReport) {
			if m.cfg.OnStall != nil {
				m.cfg.OnStall(rep)
			}
			if c := m.phaseCancel.Load(); c != nil {
				(*c)()
			}
		},
	})
	return func() {
		if hadPrior {
			sc.SetStallConfig(prior)
		} else {
			sc.SetStallConfig(core.StallConfig{})
		}
	}
}

// drainEngine waits one full grace period on eng, then polls its reader
// registry down to zero with exponential backoff, draining stale
// pool-cached readers between re-checks.
//
// With the flight recorder armed, the drain gets its own GP ID, threaded
// into the engine wait's Context so the wait span joins the drain's
// chain, plus a SpanMigrateDrain covering the handover grace period.
func (m *Migrator) drainEngine(ctx context.Context, eng core.RCU, fronts []Front) error {
	met := m.cfg.Metrics
	if met.FlightEnabled() {
		gp := obs.NextGP()
		ctx = obs.WithGP(ctx, gp)
		startNs := met.FlightNow()
		err := eng.WaitForReadersCtx(ctx, core.All())
		met.FlightRecord(obs.FlightSpan{
			GP: gp, Kind: obs.SpanMigrateDrain, Track: "migrate",
			StartNs: startNs, EndNs: met.FlightNow(), Label: eng.Name(),
		})
		if err != nil {
			return fmt.Errorf("grace drain on %s: %w", eng.Name(), err)
		}
	} else if err := eng.WaitForReadersCtx(ctx, core.All()); err != nil {
		return fmt.Errorf("grace drain on %s: %w", eng.Name(), err)
	}
	rc, ok := eng.(core.ReaderCounter)
	if !ok {
		return nil
	}
	d := m.cfg.Backoff
	for i := 0; ; i++ {
		for _, f := range fronts {
			if sd, ok := f.(StaleDrainer); ok {
				sd.DrainStale()
			}
		}
		n := rc.LiveReaders()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("registry drain on %s: %d readers still live: %w", eng.Name(), n, ctx.Err())
		default:
		}
		// A pool handle parked in a sync.Pool slot no drain can reach
		// (another P's private cache, or an entry the runtime dropped)
		// is released by its finalizer — which needs a collection to
		// run. Nudge the GC periodically so such a handle cannot hold
		// the drain open until the phase deadline.
		if i%64 == 63 {
			runtime.GC()
		}
		d = m.backoff(d)
	}
}

// drainBacklog flushes rec and backoff-polls until no unresolved
// callback submitted at or before mark remains.
func (m *Migrator) drainBacklog(ctx context.Context, rec *reclaim.Reclaimer, mark int64) error {
	d := m.cfg.Backoff
	for {
		rec.Flush()
		if o := rec.OldestSubmittedNs(); o == 0 || o > mark {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("backlog drain: pre-flip retirements still pending: %w", ctx.Err())
		default:
		}
		d = m.backoff(d)
	}
}

// settleFronts drops dual coverage on the fronts that run their own
// updater-side waits, once the drained engine is quiescent.
func (m *Migrator) settleFronts(fronts []Front) {
	for _, f := range fronts {
		if s, ok := f.(Settler); ok {
			s.SettleEngine()
		}
	}
}

// backoff sleeps d and returns the next (doubled, capped) delay.
func (m *Migrator) backoff(d time.Duration) time.Duration {
	time.Sleep(d)
	d *= 2
	if d > m.cfg.MaxBackoff {
		d = m.cfg.MaxBackoff
	}
	return d
}
