package migrate

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

// testFront is the minimal Front: an atomic engine cell plus counters
// for the settle/drain hooks the protocol is expected to call.
type testFront struct {
	mu       sync.Mutex
	eng      core.RCU
	settles  int
	drains   int
	settleOK bool
}

func newTestFront(r core.RCU) *testFront { return &testFront{eng: r, settleOK: true} }

func (f *testFront) SwapEngine(target core.RCU) core.RCU {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.eng
	f.eng = target
	return prev
}

func (f *testFront) Engine() core.RCU {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng
}

func (f *testFront) SettleEngine() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.settles++
}

func (f *testFront) DrainStale() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drains++
}

func TestMigrateSuccess(t *testing.T) {
	source := core.NewEER(8, nil)
	target := core.NewPacked(8)
	met := obs.New()
	rec := reclaim.New(source, reclaim.Config{Shards: 1, FlushDelay: -1})
	defer rec.Close()

	var freed atomic.Int64
	for i := 0; i < 32; i++ {
		rec.Retire(i, core.All(), 0, func(any) { freed.Add(1) })
	}

	front := newTestFront(source)
	m := New(Config{Name: "test-success", Metrics: met})
	defer m.Close()

	if err := m.Migrate(context.Background(), source, target, []Front{front}, rec); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if front.Engine() != target {
		t.Fatalf("front not on target after migration")
	}
	if rec.Engine() != target {
		t.Fatalf("reclaimer not on target after migration")
	}
	if rec.HandoverTarget() != nil {
		t.Fatalf("dual coverage still in force after completion")
	}
	if got := freed.Load(); got != 32 {
		t.Fatalf("pre-flip backlog not drained: %d of 32 freed", got)
	}
	if front.settles == 0 {
		t.Fatalf("SettleEngine never called on the front")
	}

	st := m.State()
	if st.Active || st.Phase != "idle" || st.Completed != 1 || st.RolledBack != 0 || st.LastError != "" {
		t.Fatalf("bad terminal state: %+v", st)
	}
	if st.From != source.Name() || st.To != target.Name() {
		t.Fatalf("state names %q -> %q", st.From, st.To)
	}
	if met.Snapshot().MigrateEvents == 0 {
		t.Fatalf("no migrate events recorded")
	}
}

func TestMigrateRollbackOnTimeout(t *testing.T) {
	source := core.NewEER(8, nil)
	target := core.NewPacked(8)
	rec := reclaim.New(source, reclaim.Config{Shards: 1, FlushDelay: -1})
	defer rec.Close()

	// A reader parked on the source for the whole test: phase 1 can
	// never drain it, so the migration must roll back on its deadline.
	rd, err := source.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Unregister()
	rd.Enter(1)
	defer rd.Exit(1)

	front := newTestFront(source)
	m := New(Config{Name: "test-rollback", PhaseTimeout: 30 * time.Millisecond})
	defer m.Close()

	err = m.Migrate(context.Background(), source, target, []Front{front}, rec)
	if err == nil {
		t.Fatalf("Migrate succeeded with a parked source reader")
	}
	if !strings.Contains(err.Error(), "rolled back") || !strings.Contains(err.Error(), "phase 1") {
		t.Fatalf("unexpected error: %v", err)
	}
	if front.Engine() != source {
		t.Fatalf("front not restored to source after rollback")
	}
	if rec.Engine() != source {
		t.Fatalf("reclaimer not restored to source after rollback")
	}
	if rec.HandoverTarget() != nil {
		t.Fatalf("dual coverage still in force after rollback")
	}

	st := m.State()
	if st.Active || st.Phase != "idle" || st.RolledBack != 1 || st.Completed != 0 {
		t.Fatalf("bad terminal state: %+v", st)
	}
	if st.LastError == "" {
		t.Fatalf("rollback left no LastError")
	}

	// The parked reader still drains grace periods correctly on the
	// restored wiring: a post-rollback retirement resolves once the
	// reader leaves.
	var freed atomic.Bool
	rec.Retire(1, core.All(), 0, func(any) { freed.Store(true) })
	rd.Exit(1)
	rec.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for !freed.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("post-rollback retirement never freed")
		}
		time.Sleep(time.Millisecond)
	}
	rd.Enter(1) // rebalance the deferred Exit
}

func TestMigrateRestoresStallConfig(t *testing.T) {
	source := core.NewEER(8, nil)
	target := core.NewPacked(8)

	prior := core.StallConfig{Timeout: 123 * time.Millisecond, RateLimit: 456 * time.Millisecond}
	source.SetStallConfig(prior)

	front := newTestFront(source)
	m := New(Config{StallTimeout: 50 * time.Millisecond})
	if err := m.Migrate(context.Background(), source, target, []Front{front}, nil); err != nil {
		t.Fatalf("Migrate: %v", err)
	}

	got, ok := source.StallConfigInForce()
	if !ok {
		t.Fatalf("stall watchdog disarmed after migration")
	}
	if got.Timeout != prior.Timeout || got.RateLimit != prior.RateLimit {
		t.Fatalf("stall config not restored: got %+v want %+v", got, prior)
	}
}

func TestMigrateValidation(t *testing.T) {
	eng := core.NewEER(8, nil)
	m := New(Config{})
	if err := m.Migrate(context.Background(), eng, eng, nil, nil); err == nil {
		t.Fatalf("same-engine migration accepted")
	}
	if err := m.Migrate(context.Background(), nil, eng, nil, nil); err == nil {
		t.Fatalf("nil source accepted")
	}
	if err := m.Migrate(context.Background(), eng, nil, nil, nil); err == nil {
		t.Fatalf("nil target accepted")
	}
	st := m.State()
	if st.Started != 0 {
		t.Fatalf("validation failures counted as started migrations: %+v", st)
	}
}

// TestMigrateWatchdogEscalation proves the escalated watchdog turns a
// source stall into an immediate rollback (well before the phase
// deadline) and that the exported state records it.
func TestMigrateWatchdogEscalation(t *testing.T) {
	source := core.NewEER(8, nil)
	target := core.NewPacked(8)

	rd, err := source.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Unregister()
	rd.Enter(1)
	defer rd.Exit(1)

	var reports atomic.Int64
	front := newTestFront(source)
	m := New(Config{
		PhaseTimeout: 10 * time.Second, // far beyond the test; the watchdog must fire first
		StallTimeout: 20 * time.Millisecond,
		OnStall:      func(core.StallReport) { reports.Add(1) },
	})

	start := time.Now()
	err = m.Migrate(context.Background(), source, target, []Front{front}, nil)
	if err == nil {
		t.Fatalf("Migrate succeeded with a parked source reader")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog escalation did not short-circuit the phase deadline (%v)", elapsed)
	}
	if reports.Load() == 0 {
		t.Fatalf("escalated OnStall never fired")
	}
	if front.Engine() != source {
		t.Fatalf("front not restored after watchdog rollback")
	}
	if _, armed := source.StallConfigInForce(); armed {
		t.Fatalf("watchdog left armed after migration (source had none before)")
	}
}

// TestMigrateStuckRollbackSurfaced forces a rollback whose mandatory
// target drain cannot complete (a reader registered on the target
// outside every front) and asserts the condition is visible rather than
// a silent spin: retries and the drain error surface in the export
// state, the migrator parks in the "stuck-rollback" phase (PhaseCode
// 4), and once the foreign reader leaves, the rollback completes and
// the run counts as failed.
func TestMigrateStuckRollbackSurfaced(t *testing.T) {
	source := core.NewEER(8, nil)
	target := core.NewPacked(8)

	// Phase 1 can never drain this source reader: rollback is forced.
	srd, err := source.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer srd.Unregister()
	srd.Enter(1)
	defer srd.Exit(1)

	// And the rollback's target drain cannot finish while this foreign
	// reader stays registered.
	trd, err := target.Register()
	if err != nil {
		t.Fatal(err)
	}

	front := newTestFront(source)
	m := New(Config{PhaseTimeout: 20 * time.Millisecond})

	done := make(chan error, 1)
	go func() { done <- m.Migrate(context.Background(), source, target, []Front{front}, nil) }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := m.State()
		if st.Phase == "stuck-rollback" {
			if st.PhaseCode != 4 {
				t.Fatalf("stuck-rollback PhaseCode = %d, want 4", st.PhaseCode)
			}
			if st.RollbackRetries < stuckRollbackAttempts {
				t.Fatalf("RollbackRetries = %d in stuck-rollback, want >= %d", st.RollbackRetries, stuckRollbackAttempts)
			}
			if !strings.Contains(st.LastError, "registry drain") {
				t.Fatalf("stuck-rollback LastError = %q, want the drain attempt's error", st.LastError)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migrator never surfaced stuck-rollback; state %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Free the target: the mandatory drain lands and rollback completes.
	trd.Unregister()
	err = <-done
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("Migrate = %v, want rollback error", err)
	}
	if front.Engine() != source {
		t.Fatalf("front not restored after stuck rollback")
	}
	st := m.State()
	if st.Active || st.Phase != "idle" || st.RolledBack != 1 || st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("bad terminal state: %+v", st)
	}
}
