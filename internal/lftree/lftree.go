// Package lftree implements the lock-free external binary search tree of
// Natarajan and Mittal ("Fast Concurrent Lock-free Binary Search Trees",
// PPoPP 2014) — the second non-RCU baseline of the PRCU paper's
// evaluation (§6.1, reported there as usually outperforming Opt-Tree and
// CITRUS by about 2x but omitted from the plots for legibility).
//
// The tree is external: internal nodes only route, leaves carry the keys.
// A deletion first *injects* by flagging the edge to its target leaf, then
// *cleans up* by tagging the sibling edge (freezing it) and splicing the
// grandparent edge over the dying parent; any operation that encounters a
// flagged or tagged edge helps the stalled deletion before retrying. The
// original marks flag and tag as low-order bits inside child pointers;
// since Go pointers cannot carry tag bits, every child slot holds an
// immutable edge record (target, flag, tag) replaced wholesale by CAS —
// semantically identical, at the cost of an allocation per link change.
package lftree

import "sync/atomic"

// Sentinel keys: every user key must be smaller than inf0.
const (
	inf2 = ^uint64(0)
	inf1 = ^uint64(0) - 1
	inf0 = ^uint64(0) - 2
)

// MaxKey is the largest user key the tree accepts.
const MaxKey = inf0 - 1

// edge is an immutable snapshot of one child link: the target node plus
// the deletion-protocol bits that the C original packs into the pointer.
type edge struct {
	node    *node
	flagged bool // target leaf is under deletion (injection done)
	tagged  bool // edge is frozen as the survivor of a deletion
}

type node struct {
	key   uint64
	value uint64
	leaf  bool
	left  atomic.Pointer[edge]
	right atomic.Pointer[edge]
}

func newLeaf(key, value uint64) *node {
	return &node{key: key, value: value, leaf: true}
}

func newInternal(key uint64, l, r *node) *node {
	n := &node{key: key}
	n.left.Store(&edge{node: l})
	n.right.Store(&edge{node: r})
	return n
}

// childPtr returns the child slot the search for key follows: left for
// key < n.key, right otherwise.
func (n *node) childPtr(key uint64) *atomic.Pointer[edge] {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

// siblingPtr returns the other child slot.
func (n *node) siblingPtr(key uint64) *atomic.Pointer[edge] {
	if key < n.key {
		return &n.right
	}
	return &n.left
}

// Tree is the lock-free external BST. The sentinel structure (root R over
// S over the inf0 leaf) guarantees R and S are never a deletion target's
// parent, so their edges are never flagged or tagged and seeks may anchor
// on them unconditionally.
type Tree struct {
	r    *node
	s    *node
	size atomic.Int64
}

// New returns an empty tree.
func New() *Tree {
	s := newInternal(inf1, newLeaf(inf0, 0), newLeaf(inf1, 0))
	r := newInternal(inf2, s, newLeaf(inf2, 0))
	return &Tree{r: r, s: s}
}

// Size returns the number of user keys (exact at rest).
func (t *Tree) Size() int { return int(t.size.Load()) }

// seekRec captures one descent: leaf is where the search ended, parent its
// parent, and ancestor→successor is the deepest untagged edge on the path
// — the edge a cleanup splices.
type seekRec struct {
	ancestor  *node
	successor *node
	parent    *node
	leaf      *node
}

func (t *Tree) seek(key uint64) seekRec {
	s := seekRec{ancestor: t.r, successor: t.s, parent: t.s}
	pe := t.s.left.Load()
	current := pe.node
	for !current.leaf {
		ce := current.childPtr(key).Load()
		if !pe.tagged {
			s.ancestor = s.parent
			s.successor = current
		}
		s.parent = current
		pe = ce
		current = ce.node
	}
	s.leaf = current
	return s
}

// Get returns the value stored under key.
func (t *Tree) Get(key uint64) (uint64, bool) {
	if key > MaxKey {
		panic("lftree: key exceeds MaxKey")
	}
	s := t.seek(key)
	if s.leaf.key == key {
		return s.leaf.value, true
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// Insert adds key with value, returning false if already present.
func (t *Tree) Insert(key, value uint64) bool {
	if key > MaxKey {
		panic("lftree: key exceeds MaxKey")
	}
	for {
		s := t.seek(key)
		if s.leaf.key == key {
			return false
		}
		cptr := s.parent.childPtr(key)
		old := cptr.Load()
		if old.node != s.leaf {
			continue // path moved; re-seek
		}
		if old.flagged || old.tagged {
			// The edge is part of a stalled deletion; help finish it.
			t.cleanup(key, s)
			continue
		}
		// Replace the leaf with internal{leaf, newLeaf}: the internal key
		// is the larger of the two, smaller key on the left.
		nl := newLeaf(key, value)
		var internal *node
		if key < s.leaf.key {
			internal = newInternal(s.leaf.key, nl, s.leaf)
		} else {
			internal = newInternal(key, s.leaf, nl)
		}
		if cptr.CompareAndSwap(old, &edge{node: internal}) {
			t.size.Add(1)
			return true
		}
	}
}

// Delete removes key, returning whether it was present. It first injects
// (flags the target leaf's edge, the deletion's linearization point) and
// then cleans up, helping or being helped as needed.
func (t *Tree) Delete(key uint64) bool {
	if key > MaxKey {
		panic("lftree: key exceeds MaxKey")
	}
	injected := false
	var target *node
	for {
		s := t.seek(key)
		if !injected {
			if s.leaf.key != key {
				return false
			}
			cptr := s.parent.childPtr(key)
			old := cptr.Load()
			if old.node != s.leaf {
				continue
			}
			if old.flagged || old.tagged {
				// Another deletion owns this region; help it and re-seek.
				// If it was deleting our key, the next seek won't find it.
				t.cleanup(key, s)
				continue
			}
			if !cptr.CompareAndSwap(old, &edge{node: s.leaf, flagged: true}) {
				continue
			}
			injected = true
			target = s.leaf
			t.size.Add(-1)
			if t.cleanup(key, s) {
				return true
			}
			continue
		}
		// Cleanup mode: our flag is planted; retry until the leaf is
		// detached (possibly by a helper).
		if s.leaf != target {
			return true
		}
		if t.cleanup(key, s) {
			return true
		}
	}
}

// cleanup completes the deletion active around the search path in s: it
// tags the survivor edge under the dying parent, then splices the
// ancestor→successor edge directly to the survivor. Reports whether the
// splice succeeded (false means the seek record is stale; retry).
func (t *Tree) cleanup(key uint64, s seekRec) bool {
	keySide := s.parent.childPtr(key)
	survivorPtr := s.parent.siblingPtr(key)
	if !keySide.Load().flagged {
		// The flag is on the other side: the key-side subtree survives.
		survivorPtr = keySide
	}
	// Freeze the survivor edge so no insert or deeper delete changes it
	// while it is being moved up.
	var se *edge
	for {
		e := survivorPtr.Load()
		if e.tagged {
			se = e
			break
		}
		if survivorPtr.CompareAndSwap(e, &edge{node: e.node, flagged: e.flagged, tagged: true}) {
			se = &edge{node: e.node, flagged: e.flagged, tagged: true}
			break
		}
	}
	// Splice: ancestor's edge to successor now points at the survivor,
	// carrying over the survivor's flag (it may itself be a dying leaf).
	aPtr := s.ancestor.childPtr(key)
	aOld := aPtr.Load()
	if aOld.node != s.successor || aOld.flagged || aOld.tagged {
		return false
	}
	return aPtr.CompareAndSwap(aOld, &edge{node: se.node, flagged: se.flagged})
}
