package lftree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Contains(5) || tr.Delete(5) || tr.Size() != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBasic(t *testing.T) {
	tr := New()
	if !tr.Insert(10, 100) || tr.Insert(10, 1) {
		t.Fatal("insert semantics wrong")
	}
	if v, ok := tr.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if !tr.Insert(5, 50) || !tr.Insert(15, 150) {
		t.Fatal("insert failed")
	}
	if !tr.Delete(10) || tr.Delete(10) || tr.Contains(10) {
		t.Fatal("delete semantics wrong")
	}
	if !tr.Contains(5) || !tr.Contains(15) {
		t.Fatal("siblings lost in deletion splice")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyLimit(t *testing.T) {
	tr := New()
	if !tr.Insert(MaxKey, 1) || !tr.Contains(MaxKey) || !tr.Delete(MaxKey) {
		t.Fatal("MaxKey must be usable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("key above MaxKey must panic")
		}
	}()
	tr.Insert(MaxKey+1, 0)
}

func TestSequentialAgainstModel(t *testing.T) {
	tr := New()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			_, in := model[k]
			if got := tr.Insert(k, k*7); got == in {
				t.Fatalf("op %d: Insert(%d) = %v, model: %v", i, k, got, in)
			}
			if !in {
				model[k] = k * 7
			}
		case 1:
			_, in := model[k]
			if got := tr.Delete(k); got != in {
				t.Fatalf("op %d: Delete(%d) = %v, model: %v", i, k, got, in)
			}
			delete(model, k)
		default:
			v, in := model[k]
			gv, got := tr.Get(k)
			if got != in || (got && gv != v) {
				t.Fatalf("op %d: Get(%d) = %d,%v, model %d,%v", i, k, gv, got, v, in)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, model %d", tr.Size(), len(model))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSemantics(t *testing.T) {
	tr := New()
	f := func(ops []uint16) bool {
		model := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 83)
			if op&0x8000 != 0 {
				tr.Delete(k)
				delete(model, k)
			} else {
				tr.Insert(k, k)
				model[k] = true
			}
		}
		for k := uint64(0); k < 83; k++ {
			if tr.Contains(k) != model[k] {
				return false
			}
		}
		if tr.Validate() != nil {
			return false
		}
		for k := uint64(0); k < 83; k++ {
			tr.Delete(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New()
	const gs, perG = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 100000)
			for i := uint64(0); i < perG; i++ {
				if !tr.Insert(base+i, i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
			for i := uint64(0); i < perG; i += 2 {
				if !tr.Delete(base + i) {
					t.Errorf("delete %d failed", base+i)
					return
				}
			}
			for i := uint64(1); i < perG; i += 2 {
				if !tr.Contains(base + i) {
					t.Errorf("key %d missing", base+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if want := gs * perG / 2; tr.Size() != want {
		t.Fatalf("Size = %d, want %d", tr.Size(), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDeleteContention aims deletions at the same small key set
// so injection/cleanup helping paths get exercised.
func TestConcurrentDeleteContention(t *testing.T) {
	tr := New()
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 32; k++ {
			tr.Insert(k, k)
		}
		var wg sync.WaitGroup
		var deleted atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := uint64(0); k < 32; k++ {
					if tr.Delete(k) {
						deleted.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		if got := deleted.Load(); got != 32 {
			t.Fatalf("round %d: %d successful deletes of 32 keys", round, got)
		}
		if tr.Size() != 0 {
			t.Fatalf("round %d: Size = %d after deleting everything", round, tr.Size())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	tr := New()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					tr.Insert(k, k)
				case 1:
					tr.Delete(k)
				default:
					if v, ok := tr.Get(k); ok && v != k {
						t.Errorf("Get(%d) returned foreign value %d", k, v)
						stop.Store(true)
						return
					}
				}
			}
		}(g)
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentKeysAlwaysVisible(t *testing.T) {
	tr := New()
	permanent := []uint64{13, 29, 53, 67, 97}
	for _, k := range permanent {
		tr.Insert(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := uint64(rng.Intn(110))
				skip := false
				for _, p := range permanent {
					if k == p {
						skip = true
						break
					}
				}
				if skip {
					continue
				}
				if rng.Intn(2) == 0 {
					tr.Insert(k, k)
				} else {
					tr.Delete(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, p := range permanent {
					if !tr.Contains(p) {
						t.Errorf("permanent key %d invisible", p)
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
