package lftree

import "fmt"

// Validate checks the invariants of a quiescent tree: the sentinel frame
// is intact, internal nodes have exactly two children with correct key
// ranges, user keys appear only in leaves, no reachable edge is still
// flagged or tagged, and the user-leaf count matches Size. Quiescent-only.
func (t *Tree) Validate() error {
	if e := t.r.left.Load(); e.node != t.s || e.flagged || e.tagged {
		return fmt.Errorf("lftree: R->S edge damaged")
	}
	count := 0
	if err := validateNode(t.s, 0, inf1, &count); err != nil {
		return err
	}
	if got := t.Size(); got != count {
		return fmt.Errorf("lftree: Size() = %d but %d user leaves reachable", got, count)
	}
	return nil
}

// validateNode checks the subtree at n, whose keys must lie in [low, high].
func validateNode(n *node, low, high uint64, count *int) error {
	if n.key < low || n.key > high {
		return fmt.Errorf("lftree: key %d outside [%d, %d]", n.key, low, high)
	}
	if n.leaf {
		if n.key <= MaxKey {
			*count++
		}
		return nil
	}
	le, re := n.left.Load(), n.right.Load()
	if le == nil || re == nil || le.node == nil || re.node == nil {
		return fmt.Errorf("lftree: internal node %d missing a child", n.key)
	}
	if le.flagged || le.tagged || re.flagged || re.tagged {
		return fmt.Errorf("lftree: node %d has a flagged/tagged edge at rest", n.key)
	}
	// Left subtree holds keys < n.key; right subtree keys >= n.key.
	if n.key == 0 {
		return fmt.Errorf("lftree: internal node with key 0 cannot have a left subtree")
	}
	if err := validateNode(le.node, low, n.key-1, count); err != nil {
		return err
	}
	return validateNode(re.node, n.key, high, count)
}
