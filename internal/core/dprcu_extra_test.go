package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainCoveredBitmapSpill drives WaitForReaders with an interval wide
// enough to overflow the small dedup buffer into the bitmap path, and
// verifies dedup by counting drains on a 1-node table (every value
// collides, so the node must be drained exactly once).
func TestDrainCoveredBitmapSpill(t *testing.T) {
	d := NewD(4, 1)
	tbl := d.tbl.Load()
	before := tbl.nodes[0].drains.Load()
	// Disable optimistic waiting so every drain goes through the gate
	// protocol and bumps the drain counter.
	d.SetOptimisticBudget(0)
	d.WaitForReaders(Interval(0, 63)) // 64 values, all hash to node 0
	after := tbl.nodes[0].drains.Load()
	if got := after - before; got != 1 {
		t.Fatalf("node drained %d times for 64 colliding values, want exactly 1", got)
	}
}

// TestDrainCoveredBitmapSpillWideTable exercises the spill path on a
// larger table where the interval genuinely covers many distinct nodes.
func TestDrainCoveredBitmapSpillWideTable(t *testing.T) {
	d := NewD(4, 256)
	d.SetOptimisticBudget(0)
	tbl := d.tbl.Load()
	sum := func() (s uint64) {
		for i := range tbl.nodes {
			s += tbl.nodes[i].drains.Load()
		}
		return
	}
	before := sum()
	d.WaitForReaders(Interval(0, 99)) // 100 values
	drains := sum() - before
	// Distinct covered nodes, computed the same way the engine does.
	distinct := map[uint64]bool{}
	for v := Value(0); v < 100; v++ {
		distinct[tbl.index(v)] = true
	}
	if int(drains) != len(distinct) {
		t.Fatalf("drained %d nodes, want %d distinct covered nodes", drains, len(distinct))
	}
}

// TestBatchingPiggyback: a drain that finds the node lock held must
// complete once two full drains finish, without acquiring the lock.
func TestBatchingPiggyback(t *testing.T) {
	d := NewD(8, 1)
	d.SetOptimisticBudget(0)
	tbl := d.tbl.Load()
	n := &tbl.nodes[0]

	// Hold the node lock to force piggybacking.
	n.mu.Lock()
	done := make(chan struct{})
	go func() {
		d.WaitForReaders(Singleton(1))
		close(done)
	}()
	// The waiter must not return while the lock is held and no drains
	// complete.
	select {
	case <-done:
		t.Fatal("wait returned while the drain lock was held and no drains completed")
	case <-time.After(30 * time.Millisecond):
	}
	// Simulate two completed drains by the lock holder.
	n.drains.Add(1)
	select {
	case <-done:
		t.Fatal("one completed drain must not release a piggybacking waiter")
	case <-time.After(30 * time.Millisecond):
	}
	n.drains.Add(1)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter did not piggyback after two completed drains")
	}
	n.mu.Unlock()
}

// TestConcurrentDrainsSameNode floods one node with concurrent waits
// under reader churn: all must terminate and the counters return to zero.
func TestConcurrentDrainsSameNode(t *testing.T) {
	d := NewD(16, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd, err := d.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer rd.Unregister()
			// Yield periodically: a reader that never blocks would own a
			// whole scheduler time slice on GOMAXPROCS=1 hosts, starving
			// the waiters this test is about.
			for i := 0; !stop.Load(); i++ {
				rd.Enter(5)
				rd.Exit(5)
				if i%32 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	var waiters sync.WaitGroup
	for g := 0; g < 6; g++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			iters := scale(40, 12)
			for i := 0; i < iters; i++ {
				d.WaitForReaders(Singleton(5))
			}
		}()
	}
	finished := make(chan struct{})
	go func() { waiters.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent drains of one node did not terminate")
	}
	stop.Store(true)
	wg.Wait()
	tbl := d.tbl.Load()
	if c0, c1 := tbl.nodes[0].readers[0].Load(), tbl.nodes[0].readers[1].Load(); c0 != 0 || c1 != 0 {
		t.Fatalf("counters %d,%d after quiescence, want 0,0", c0, c1)
	}
}

// TestResizeWhileWaitersRun interleaves resizes with singleton waits —
// waits that load the old generation must drain it and stay safe.
func TestResizeConcurrentWithWaits(t *testing.T) {
	d := NewD(16, 16)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd, err := d.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer rd.Unregister()
			for i := 0; !stop.Load(); i++ {
				v := Value(g*100 + i%7)
				rd.Enter(v)
				rd.Exit(v)
				if i%32 == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200 && !stop.Load(); i++ {
			d.WaitForReaders(Singleton(Value(i % 9)))
		}
	}()
	for _, s := range []int{32, 16, 64, 16} {
		d.Resize(s)
	}
	stop.Store(true)
	wg.Wait()
	if d.TableSize() != 16 {
		t.Fatalf("TableSize = %d, want 16", d.TableSize())
	}
}
