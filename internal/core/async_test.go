package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAsyncRunsCallbacks(t *testing.T) {
	a := NewAsync(NewTimeRCU(8, nil))
	defer a.Close()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		a.Call(All(), func() { ran.Add(1) })
	}
	a.Barrier()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d callbacks after Barrier, want 100", got)
	}
	if a.Pending() != 0 {
		t.Fatalf("Pending = %d after Barrier, want 0", a.Pending())
	}
}

func TestAsyncCallbackWaitsForGracePeriod(t *testing.T) {
	r := NewEER(8, nil)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	var ran atomic.Bool
	a.Call(Singleton(7), func() { ran.Store(true) })
	// The callback must not run while the covered critical section is open.
	time.Sleep(30 * time.Millisecond)
	if ran.Load() {
		rd.Exit(7)
		t.Fatal("callback ran before the covered reader exited")
	}
	rd.Exit(7)
	a.Barrier()
	if !ran.Load() {
		t.Fatal("callback did not run after the grace period")
	}
	rd.Unregister()
}

func TestAsyncUncoveredReaderDoesNotBlockCallback(t *testing.T) {
	r := NewD(8, 1024)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1000)
	defer func() {
		rd.Exit(1000)
		rd.Unregister()
	}()
	done := make(chan struct{})
	a.Call(Singleton(5), func() { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callback blocked behind an uncovered critical section")
	}
}

func TestAsyncCloseDrains(t *testing.T) {
	a := NewAsync(NewDistRCU(4))
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		a.Call(All(), func() { ran.Add(1) })
	}
	a.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("Close ran %d callbacks, want 50", got)
	}
	// Idempotent.
	a.Close()
}

func TestAsyncCallAfterClosePanics(t *testing.T) {
	a := NewAsync(NewDistRCU(4))
	a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Call after Close must panic")
		}
	}()
	a.Call(All(), func() {})
}

func TestAsyncConcurrentCallers(t *testing.T) {
	a := NewAsync(NewTimeRCU(16, nil))
	defer a.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Call(All(), func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	a.Barrier()
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d callbacks, want 400", got)
	}
}
