package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAsyncRunsCallbacks(t *testing.T) {
	a := NewAsync(NewTimeRCU(8, nil))
	defer a.Close()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		a.Call(All(), func() { ran.Add(1) })
	}
	a.Barrier()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d callbacks after Barrier, want 100", got)
	}
	if a.Pending() != 0 {
		t.Fatalf("Pending = %d after Barrier, want 0", a.Pending())
	}
}

func TestAsyncCallbackWaitsForGracePeriod(t *testing.T) {
	r := NewEER(8, nil)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	var ran atomic.Bool
	a.Call(Singleton(7), func() { ran.Store(true) })
	// The callback must not run while the covered critical section is open.
	time.Sleep(30 * time.Millisecond)
	if ran.Load() {
		rd.Exit(7)
		t.Fatal("callback ran before the covered reader exited")
	}
	rd.Exit(7)
	a.Barrier()
	if !ran.Load() {
		t.Fatal("callback did not run after the grace period")
	}
	rd.Unregister()
}

func TestAsyncUncoveredReaderDoesNotBlockCallback(t *testing.T) {
	r := NewD(8, 1024)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1000)
	defer func() {
		rd.Exit(1000)
		rd.Unregister()
	}()
	done := make(chan struct{})
	a.Call(Singleton(5), func() { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callback blocked behind an uncovered critical section")
	}
}

func TestAsyncCloseDrains(t *testing.T) {
	a := NewAsync(NewDistRCU(4))
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		a.Call(All(), func() { ran.Add(1) })
	}
	a.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("Close ran %d callbacks, want 50", got)
	}
	// Idempotent.
	a.Close()
}

func TestAsyncCallAfterClosePanics(t *testing.T) {
	a := NewAsync(NewDistRCU(4))
	a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Call after Close must panic")
		}
	}()
	a.Call(All(), func() {})
}

func TestAsyncConcurrentCallers(t *testing.T) {
	a := NewAsync(NewTimeRCU(16, nil))
	defer a.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Call(All(), func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	a.Barrier()
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d callbacks, want 400", got)
	}
}

func TestAsyncCallCtxDeliversCompletion(t *testing.T) {
	a := NewAsync(NewTimeRCU(8, nil))
	defer a.Close()
	errs := make(chan error, 1)
	a.CallCtx(context.Background(), All(), func(err error) { errs <- err })
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("CallCtx callback got %v, want nil after a clean grace period", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CallCtx callback never ran")
	}
}

func TestAsyncCallCtxDeliversDeadline(t *testing.T) {
	r := NewEER(8, nil)
	a := NewAsync(r)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7) // wedge every covering grace period
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	errs := make(chan error, 1)
	a.CallCtx(ctx, Singleton(7), func(err error) { errs <- err })
	select {
	case err := <-errs:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("CallCtx callback got %v, want DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CallCtx callback never ran on a wedged engine")
	}
	if got := a.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d; CallCtx callbacks take delivery, they are never dropped", got)
	}
	rd.Exit(7)
	rd.Unregister()
	a.Close()
}

// TestAsyncCloseCtxBoundedOnWedgedEngine is the shutdown-hardening
// acceptance: a reader parked in a covered critical section would make a
// plain Close hang forever; CloseCtx must give up at its deadline,
// cancel the in-flight wait, drop the plain callback (it must not run
// after an incomplete grace period), and stop the worker.
func TestAsyncCloseCtxBoundedOnWedgedEngine(t *testing.T) {
	r := NewEER(8, nil)
	a := NewAsync(r)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	var ran atomic.Bool
	a.Call(Singleton(7), func() { ran.Store(true) })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := a.CloseCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx on a wedged engine returned %v, want DeadlineExceeded", err)
	}
	if ran.Load() {
		t.Fatal("plain callback ran although its grace period never completed")
	}
	if got := a.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	// Idempotent after a bounded shutdown too: the worker is gone, the
	// call returns immediately.
	if err := a.CloseCtx(context.Background()); err != nil {
		t.Fatalf("second CloseCtx returned %v, want nil", err)
	}
	a.Close()
	rd.Exit(7)
	rd.Unregister()
}

func TestAsyncConcurrentClose(t *testing.T) {
	a := NewAsync(NewDistRCU(4))
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		a.Call(All(), func() { ran.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); a.Close() }()
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Fatalf("concurrent Close ran %d callbacks, want 20", got)
	}
}
