package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/spin"
	"prcu/internal/tsc"
)

// Simulated wraps an engine so that WaitForReaders performs no memory
// accesses and only burns the same average time the real engine's waits
// take. It reproduces the paper's methodology for isolating cache-coherency
// costs (§6.1 "Read overhead"): readers keep paying the engine's full
// Enter/Exit costs, but no wait-for-readers traffic ever invalidates their
// bookkeeping lines, so any throughput difference between an engine and its
// Simulated twin is the coherence cost of reader/waiter communication.
//
// Simulated deliberately breaks the safety property — it is a measurement
// instrument, usable only in benchmarks whose correctness does not depend
// on grace periods (the paper's throughput runs tolerate this because the
// benchmark never frees memory and Go's GC keeps stale pointers valid).
type Simulated struct {
	inner    RCU
	waitNs   int64
	clock    Clock
	spinStep int
}

// NewSimulated wraps inner so every WaitForReaders spins for waitNs
// nanoseconds (the measured mean wait latency of the real engine) without
// touching shared state.
func NewSimulated(inner RCU, waitNs int64) *Simulated {
	return &Simulated{
		inner:  inner,
		waitNs: waitNs,
		clock:  tsc.NewMonotonic(),
	}
}

// Name implements RCU.
func (s *Simulated) Name() string { return s.inner.Name() + " (simulated wait)" }

// MaxReaders implements RCU.
func (s *Simulated) MaxReaders() int { return s.inner.MaxReaders() }

// Register implements RCU: readers are real, with the full per-engine
// Enter/Exit cost.
func (s *Simulated) Register() (Reader, error) { return s.inner.Register() }

// Stats implements RCU, delegating to the wrapped engine — reader-side
// metrics are real even though waits are simulated.
func (s *Simulated) Stats() obs.Snapshot { return s.inner.Stats() }

// WaitForReaders implements RCU by spinning for the configured duration.
// Only the local clock is read; no shared memory is accessed.
func (s *Simulated) WaitForReaders(Predicate) {
	if s.waitNs <= 0 {
		return
	}
	deadline := s.clock.Now() + s.waitNs
	var w spin.Waiter
	for s.clock.Now() < deadline {
		w.Wait()
	}
}

// WaitForReadersCtx implements RCU: the simulated spin, cut short by ctx.
// As in the real engines, cancellation is polled only once the waiter has
// crossed into its yielding phase.
func (s *Simulated) WaitForReadersCtx(ctx context.Context, _ Predicate) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	if s.waitNs <= 0 {
		return nil
	}
	deadline := s.clock.Now() + s.waitNs
	var w spin.Waiter
	for s.clock.Now() < deadline {
		w.Wait()
		if done != nil && w.Yielded() {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
	}
	return nil
}

// Nop is an RCU whose every operation is free: Enter, Exit and
// WaitForReaders do nothing. It is unsafe by construction and exists only
// to measure the ceiling a data structure could reach with zero
// synchronization overhead (used by the read-overhead ablation).
type Nop struct {
	metered
	reg *registry
}

// NewNop returns a no-op engine capped at maxReaders readers (0 = grow on
// demand).
func NewNop(maxReaders int) *Nop { return &Nop{reg: newRegistry(maxReaders, nil)} }

// Name implements RCU.
func (n *Nop) Name() string { return "No-op (unsafe)" }

// MaxReaders implements RCU.
func (n *Nop) MaxReaders() int { return n.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (n *Nop) LiveReaders() int { return n.reg.liveReaders() }

type nopReader struct {
	readerGuard
	n    *Nop
	slot int
}

// Register implements RCU.
func (n *Nop) Register() (Reader, error) {
	slot, _, err := n.reg.acquire()
	if err != nil {
		return nil, err
	}
	return &nopReader{n: n, slot: slot}, nil
}

// WaitForReaders implements RCU: returns immediately, waiting for no one.
func (n *Nop) WaitForReaders(Predicate) {}

// WaitForReadersCtx implements RCU: the no-op "grace period" completes
// instantly, so it never observes cancellation.
func (n *Nop) WaitForReadersCtx(context.Context, Predicate) error { return nil }

// Enter implements Reader: does nothing. Deliberately unguarded — Nop
// measures the zero-synchronization ceiling, so its read side must stay
// empty; Unregister misuse is still caught below.
func (r *nopReader) Enter(Value) {}

// Exit implements Reader: does nothing.
func (r *nopReader) Exit(Value) {}

// Do implements Reader: runs fn with the same zero-cost read side.
func (r *nopReader) Do(_ Value, fn func()) { fn() }

// Unregister implements Reader.
func (r *nopReader) Unregister() {
	r.closing()
	r.markClosed()
	r.n.reg.release(r.slot)
}
