package core

import "fmt"

// Value is the opaque, algorithm-specific domain value a reader presents to
// prcu_enter/prcu_exit and a predicate is evaluated over. The paper (§3.1)
// envisions "a generic encoding of values (say, 64-bit integers)"; we use
// exactly that.
type Value = uint64

// Clock is a monotonically increasing, cross-thread-consistent time source
// used by the time-based quiescence engines (EER, DEER, Time RCU). It is
// structurally identical to tsc.Clock so any clock from internal/tsc — or a
// caller-supplied source — can be plugged in.
type Clock interface {
	Now() int64
}

// PredicateKind discriminates the encodings a Predicate can carry (§3.1
// "Encoding predicates" and "Specialized predicates").
type PredicateKind uint8

const (
	// KindAll is the wildcard predicate: holds for every value. It is the
	// "RCU fallback" of §3.1 — a wait with KindAll waits for all readers.
	KindAll PredicateKind = iota
	// KindFunc is a general predicate encoded as a function.
	KindFunc
	// KindSingleton holds for exactly one value, encoded as that value.
	KindSingleton
	// KindIterable holds over {v1, next(v1), ..., vk}, encoded as
	// (v1, vk, next). A singleton is an iterable predicate with k = 1; we
	// distinguish them as the paper does, for clarity and fast paths.
	KindIterable
)

// maxEnum bounds predicate enumeration so a buggy iterator that never
// reaches vk panics instead of hanging a wait-for-readers forever.
const maxEnum = 1 << 22

// Predicate identifies which read-side critical sections a
// wait-for-readers(P) must wait for: those on values v with P(v) = 1.
//
// The zero value is the wildcard predicate (plain RCU semantics).
type Predicate struct {
	kind        PredicateKind
	fn          func(Value) bool
	first, last Value
	next        func(Value) Value
	// unitStep marks the canonical +1 iterator produced by Interval, which
	// lets Holds answer range membership in O(1) on wait-loop hot paths.
	unitStep bool
}

// All returns the wildcard predicate, which holds for every value.
func All() Predicate { return Predicate{kind: KindAll} }

// Func returns a general predicate encoded as fn. fn must be side-effect
// free; a wait-for-readers may invoke it any number of times (§3.1).
func Func(fn func(Value) bool) Predicate {
	if fn == nil {
		panic("core: Func predicate with nil function")
	}
	return Predicate{kind: KindFunc, fn: fn}
}

// Singleton returns the specialized predicate that holds only for v.
func Singleton(v Value) Predicate {
	return Predicate{kind: KindSingleton, first: v, last: v}
}

// Iterable returns the specialized predicate holding over
// {v1, next(v1), ..., vk}. next must eventually reach vk from v1.
func Iterable(v1, vk Value, next func(Value) Value) Predicate {
	if next == nil {
		panic("core: Iterable predicate with nil iterator")
	}
	return Predicate{kind: KindIterable, first: v1, last: vk, next: next}
}

// Interval returns an iterable predicate over the inclusive integer range
// [lo, hi]. It is the common case for key-space predicates such as CITRUS's
// P(x) = k < x <= k' (§5.2).
func Interval(lo, hi Value) Predicate {
	if lo > hi {
		panic("core: Interval predicate with lo > hi")
	}
	if lo == hi {
		return Singleton(lo)
	}
	return Predicate{kind: KindIterable, first: lo, last: hi, next: incValue, unitStep: true}
}

func incValue(v Value) Value { return v + 1 }

// Kind reports the predicate's encoding.
func (p Predicate) Kind() PredicateKind { return p.kind }

// String describes the predicate for diagnostics (stall reports, traces).
// General predicates are opaque functions, so their description carries
// no value information.
func (p Predicate) String() string {
	switch p.kind {
	case KindAll:
		return "all"
	case KindFunc:
		return "func"
	case KindSingleton:
		return fmt.Sprintf("singleton(%d)", p.first)
	case KindIterable:
		if p.unitStep {
			return fmt.Sprintf("interval[%d,%d]", p.first, p.last)
		}
		return fmt.Sprintf("iterable(%d..%d)", p.first, p.last)
	default:
		return "invalid"
	}
}

// Enumerable reports whether the engine can iterate the values the
// predicate holds for (singleton or iterable). D-PRCU exploits enumerable
// predicates for O(|P⁻¹|) waits and falls back to a full-table drain for
// general ones (§4.2).
func (p Predicate) Enumerable() bool {
	return p.kind == KindSingleton || p.kind == KindIterable
}

// Holds reports whether P(v) = 1. For an iterable predicate without an
// attached membership function this enumerates the set, so engines on hot
// paths should prefer ForEach or interval bounds when applicable.
func (p Predicate) Holds(v Value) bool {
	switch p.kind {
	case KindAll:
		return true
	case KindFunc:
		return p.fn(v)
	case KindSingleton:
		return v == p.first
	case KindIterable:
		if p.unitStep {
			return p.first <= v && v <= p.last
		}
		holds := false
		p.ForEach(func(u Value) bool {
			if u == v {
				holds = true
				return false
			}
			return true
		})
		return holds
	default:
		panic("core: invalid predicate kind")
	}
}

// Span reports the inclusive contiguous value range [lo, hi] the
// predicate covers: ok is true exactly for Singleton and Interval
// predicates, whose covered set is a dense integer range. Iterables with
// custom step functions, Func and All report ok = false — their covered
// set is not (knowably) one contiguous range. Batching layers use Span to
// merge adjacent predicates into a single covering wait.
func (p Predicate) Span() (lo, hi Value, ok bool) {
	if p.kind == KindSingleton {
		return p.first, p.first, true
	}
	if p.kind == KindIterable && p.unitStep {
		return p.first, p.last, true
	}
	return 0, 0, false
}

// ForEach enumerates the values the predicate holds for, in iteration
// order, calling yield for each. Enumeration stops early if yield returns
// false. It reports whether the predicate was enumerable.
//
// ForEach panics if the iterator fails to reach vk within a large bound —
// a buggy iterator must not silently hang wait-for-readers.
func (p Predicate) ForEach(yield func(Value) bool) bool {
	switch p.kind {
	case KindSingleton:
		yield(p.first)
		return true
	case KindIterable:
		v := p.first
		for i := 0; ; i++ {
			if i > maxEnum {
				panic("core: iterable predicate did not reach vk (bad iterator?)")
			}
			if !yield(v) {
				return true
			}
			if v == p.last {
				return true
			}
			v = p.next(v)
		}
	default:
		return false
	}
}

// Count returns the number of values an enumerable predicate holds for,
// and ok = false for non-enumerable predicates.
func (p Predicate) Count() (n int, ok bool) {
	if p.kind == KindSingleton {
		return 1, true
	}
	if p.kind != KindIterable {
		return 0, false
	}
	if p.unitStep {
		return int(p.last-p.first) + 1, true
	}
	p.ForEach(func(Value) bool { n++; return true })
	return n, true
}
