package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"prcu/internal/obs"
	"prcu/internal/spin"
	"prcu/internal/tsc"
)

// This file is the grace-period resilience layer shared by every engine:
// deadline/cancellation-aware waiting (WaitForReadersCtx) and the stall
// watchdog (StallConfig/StallReport). Both piggyback on the waiting
// discipline the engines already use — checks run only once a
// spin.Waiter has crossed from pure spinning into scheduler yields, so
// the common fast path (wait resolves within the spin budget, or no
// covered readers at all) executes exactly the pre-resilience code: for
// a wait with no Context and no watchdog configured, the only addition
// is one atomic pointer load at wait start.

// DefaultStallRateLimit is the minimum interval between repeat stall
// reports for one engine, in the spirit of the kernel's RCU CPU stall
// warnings: a wedged grace period keeps re-reporting, but at a bounded
// rate however many waiters are stuck on it.
const DefaultStallRateLimit = 10 * time.Second

// StallConfig arms an engine's grace-period stall watchdog.
type StallConfig struct {
	// Timeout is how long a single WaitForReaders may block before the
	// watchdog fires. Zero or negative disarms the watchdog.
	Timeout time.Duration
	// OnStall, when non-nil, receives the report. It is invoked from the
	// stalled waiter's goroutine and must not call back into the engine's
	// wait paths.
	OnStall func(StallReport)
	// RateLimit bounds repeat reports engine-wide; at most one report
	// fires per window, shared by all concurrent waiters. Defaults to
	// DefaultStallRateLimit.
	RateLimit time.Duration
	// Clock is the time source for stall detection. Defaults to the
	// monotonic clock; tests inject a tsc.Manual for determinism.
	Clock Clock
}

// StalledReader describes one reader (or, for the counter-table
// engines, one counter node) a stalled wait is blocked on.
type StalledReader struct {
	// Slot is the reader's registry slot — except for D-PRCU and SRCU,
	// whose waits block on counter nodes, not readers; there it is the
	// counter-node index.
	Slot int
	// Value is the domain value the open critical section is on, when
	// the engine records one (HasValue). For D-PRCU it is the covered
	// predicate value that hashes to the stalled node.
	Value    Value
	HasValue bool
	// OpenFor is how long the section has been open, for the
	// timestamp-based engines (zero when the engine does not track it).
	OpenFor time.Duration
}

// StallReport is the watchdog's diagnostic snapshot of a wedged grace
// period, assembled when a wait exceeds StallConfig.Timeout.
type StallReport struct {
	// Engine is the engine's Name().
	Engine string
	// Flavor is the flavor token the engine was constructed under
	// ("eer", "packed", ...), empty when the engine was built outside
	// the flavor registry. In a multi-engine process — and especially in
	// a mid-migration window, where two engines are live at once — it is
	// what attributes a stall to the right engine instance.
	Flavor string
	// Predicate describes the wait's predicate (Predicate.String).
	Predicate string
	// Elapsed is how long the reporting wait had been blocked.
	Elapsed time.Duration
	// Readers are the offending open critical sections, scanned from the
	// engine's per-slot state at report time.
	Readers []StalledReader
}

// String renders the report as a single kernel-style watchdog log line:
//
//	prcu: stall on EER-PRCU [flavor eer] pred=all elapsed=1.5s readers=2 [slot 3 (value 7, open 1.2s); slot 9]
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prcu: stall on %s", r.Engine)
	if r.Flavor != "" {
		fmt.Fprintf(&b, " [flavor %s]", r.Flavor)
	}
	fmt.Fprintf(&b, " pred=%s elapsed=%v readers=%d", r.Predicate, r.Elapsed, len(r.Readers))
	if len(r.Readers) > 0 {
		b.WriteString(" [")
		for i, rd := range r.Readers {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "slot %d", rd.Slot)
			switch {
			case rd.HasValue && rd.OpenFor > 0:
				fmt.Fprintf(&b, " (value %d, open %v)", rd.Value, rd.OpenFor)
			case rd.HasValue:
				fmt.Fprintf(&b, " (value %d)", rd.Value)
			case rd.OpenFor > 0:
				fmt.Fprintf(&b, " (open %v)", rd.OpenFor)
			}
		}
		b.WriteString("]")
	}
	return b.String()
}

// stallState is the armed watchdog: the normalized config plus the
// engine-wide rate-limit clock.
type stallState struct {
	cfg       StallConfig
	timeoutNs int64
	windowNs  int64
	// last is the clock reading of the most recent report. Fires CAS it
	// forward, so concurrent stalled waiters elect one reporter per
	// window.
	last atomic.Int64
}

// resilient is the resilience hook point embedded by every engine,
// alongside metered. The zero value is an unarmed watchdog with no
// flavor token.
type resilient struct {
	stallCfg atomic.Pointer[stallState]
	flavor   atomic.Pointer[string]
}

// StallCarrier is implemented by every engine in this package: arming a
// StallConfig turns on the grace-period stall watchdog. It may be armed,
// re-armed or disarmed at any time.
type StallCarrier interface {
	SetStallConfig(StallConfig)
}

// FlavorCarrier is implemented by every engine via the resilient embed:
// the flavor registry stamps each engine it constructs with its flavor
// token so stall reports (and migration state) can attribute activity to
// the right engine instance when several are live.
type FlavorCarrier interface {
	SetFlavor(string)
	FlavorToken() string
}

// SetFlavor implements FlavorCarrier.
func (r *resilient) SetFlavor(f string) { r.flavor.Store(&f) }

// FlavorToken implements FlavorCarrier; empty until SetFlavor.
func (r *resilient) FlavorToken() string {
	if p := r.flavor.Load(); p != nil {
		return *p
	}
	return ""
}

// StallInspector exposes the watchdog configuration currently in force.
// The migrator uses it to capture the source engine's baseline before
// escalating the watchdog for a drain phase, and to restore that exact
// baseline on completion or rollback.
type StallInspector interface {
	StallConfigInForce() (StallConfig, bool)
}

// StallConfigInForce implements StallInspector: it returns the armed
// configuration (as normalized by SetStallConfig) and true, or the zero
// config and false when the watchdog is disarmed.
func (r *resilient) StallConfigInForce() (StallConfig, bool) {
	st := r.stallCfg.Load()
	if st == nil {
		return StallConfig{}, false
	}
	return st.cfg, true
}

// SetStallConfig implements StallCarrier.
func (r *resilient) SetStallConfig(cfg StallConfig) {
	if cfg.Timeout <= 0 {
		r.stallCfg.Store(nil)
		return
	}
	if cfg.Clock == nil {
		cfg.Clock = tsc.NewMonotonic()
	}
	if cfg.RateLimit <= 0 {
		cfg.RateLimit = DefaultStallRateLimit
	}
	st := &stallState{
		cfg:       cfg,
		timeoutNs: cfg.Timeout.Nanoseconds(),
		windowNs:  cfg.RateLimit.Nanoseconds(),
	}
	// Far enough in the past that the first report is never rate-limited,
	// without now-last underflowing for any clock epoch.
	st.last.Store(math.MinInt64 / 4)
	r.stallCfg.Store(st)
}

// stallProber is what a waitControl needs from its engine to assemble a
// StallReport: the engine's name and flavor token, its metrics (for the
// stall counters; every engine provides it via the embedded metered),
// and a read-only scan of the open critical sections a predicate's wait
// is blocked on.
type stallProber interface {
	Name() string
	FlavorToken() string
	Metrics() *obs.Metrics
	stalledReaders(p Predicate) []StalledReader
}

// waitControl carries one wait's cancellation and stall-detection state.
// A nil *waitControl is the fast path: no Context, no watchdog — step
// degenerates to spin.Waiter.Wait.
type waitControl struct {
	ctx    context.Context // nil for background waits
	done   <-chan struct{}
	st     *stallState
	prober stallProber
	met    *obs.Metrics
	pred   Predicate
	// startNs is the stall clock's reading at wait start (set only when
	// the watchdog is armed).
	startNs int64
}

// control builds the wait's control block, or nil when neither a
// cancelable Context nor a watchdog is in play. It backs the
// WaitForReadersCtx entry points; the plain WaitForReaders paths check
// the armed watchdog inline instead (one atomic load and a branch) and
// run their pre-resilience loop verbatim when it is unarmed.
func (r *resilient) control(ctx context.Context, p Predicate, prober stallProber) *waitControl {
	st := r.stallCfg.Load()
	if st == nil && ctx == nil {
		return nil
	}
	return newControl(ctx, st, p, prober)
}

// newControl is control's slow path: an armed watchdog or a Context is
// in play (though a Context that can never be cancelled still yields a
// nil control).
func newControl(ctx context.Context, st *stallState, p Predicate, prober stallProber) *waitControl {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if st == nil && done == nil {
		return nil
	}
	wc := &waitControl{ctx: ctx, done: done, st: st, prober: prober, met: prober.Metrics(), pred: p}
	if st != nil {
		wc.startNs = st.cfg.Clock.Now()
	}
	return wc
}

// Ctx returns the Context the wait runs under, nil for background waits
// (or on the nil fast-path control). The flight recorder reads it to
// pick up a grace-period ID threaded down from the reclaimer or
// migrator.
func (wc *waitControl) Ctx() context.Context {
	if wc == nil {
		return nil
	}
	return wc.ctx
}

// pre reports an already-expired Context before any waiting starts, so
// WaitForReadersCtx with a dead Context fails fast instead of scanning.
func (wc *waitControl) pre() error {
	if wc == nil || wc.done == nil {
		return nil
	}
	select {
	case <-wc.done:
		return wc.ctx.Err()
	default:
		return nil
	}
}

// step performs one back-off step of w, checking cancellation and the
// stall watchdog only after w has crossed from its spin phase into
// scheduler yields. On the nil receiver it is exactly w.Wait(): the
// deadline checks ride the park/backoff transition, never the spin
// iterations, preserving the engines' wait-side cost model.
func (wc *waitControl) step(w *spin.Waiter) error {
	w.Wait()
	if wc == nil || !w.Yielded() {
		return nil
	}
	return wc.check()
}

// check polls the Context and the watchdog. It is called only from the
// yielding phase of a wait loop, i.e. at scheduler-boundary frequency.
func (wc *waitControl) check() error {
	if wc.done != nil {
		select {
		case <-wc.done:
			return wc.ctx.Err()
		default:
		}
	}
	if wc.st != nil {
		wc.checkStall()
	}
	return nil
}

// checkStall fires the watchdog when this wait has exceeded the stall
// timeout and the engine-wide rate limiter admits a report.
func (wc *waitControl) checkStall() {
	st := wc.st
	now := st.cfg.Clock.Now()
	if now-wc.startNs < st.timeoutNs {
		return
	}
	last := st.last.Load()
	if now-last < st.windowNs {
		return
	}
	if !st.last.CompareAndSwap(last, now) {
		return // a concurrent stalled waiter won the window
	}
	rep := StallReport{
		Engine:    wc.prober.Name(),
		Flavor:    wc.prober.FlavorToken(),
		Predicate: wc.pred.String(),
		Elapsed:   time.Duration(now - wc.startNs),
		Readers:   wc.prober.stalledReaders(wc.pred),
	}
	if wc.met != nil {
		wc.met.StallDetected(uint64(len(rep.Readers)))
	}
	if st.cfg.OnStall != nil {
		st.cfg.OnStall(rep)
	}
}

// DoCritical runs fn inside a read-side critical section on v,
// guaranteeing Exit even if fn panics (the panic is re-raised after the
// section closes). It backs every Reader's Do method: a panicking reader
// callback must never leave a critical section open, because an open
// section wedges every future covering grace period.
func DoCritical(rd Reader, v Value, fn func()) {
	rd.Enter(v)
	defer rd.Exit(v)
	fn()
}

// clampDur converts a nanosecond difference to a non-negative Duration
// (a racing exit can post Infinity between the occupancy check and the
// time read, or a clock shared across goroutines can read slightly
// behind the enter timestamp).
func clampDur(ns int64) time.Duration {
	if ns < 0 {
		return 0
	}
	return time.Duration(ns)
}
