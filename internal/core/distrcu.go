package core

import (
	"prcu/internal/obs"
	"prcu/internal/pad"
	"prcu/internal/spin"
)

// DistRCU implements the distributed-counters RCU of Arbel and Attiya
// (§2.2): no global grace-period counter, just a per-reader critical
// section counter. A waiter snapshots each reader's counter and waits for
// the reader either to advance it or to be outside a critical section.
// Waits are read-only, so — like the PRCU engines — concurrent waits scale
// without synchronizing with each other.
//
// A single generation counter encodes both pieces of state: even means
// quiescent, odd means inside a critical section. This is the RCU the
// original CITRUS tree used (the paper's Time RCU is its TSC-optimized
// successor).
type DistRCU struct {
	metered
	reg *registry
}

// NewDistRCU returns a distributed-counters RCU engine capped at
// maxReaders concurrent readers (0 = grow on demand).
func NewDistRCU(maxReaders int) *DistRCU {
	d := &DistRCU{}
	d.reg = newRegistry(maxReaders, func(base, size int) any {
		return make([]pad.Uint64, size)
	})
	return d
}

// Name implements RCU.
func (d *DistRCU) Name() string { return "Dist RCU" }

// MaxReaders implements RCU.
func (d *DistRCU) MaxReaders() int { return d.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (d *DistRCU) LiveReaders() int { return d.reg.liveReaders() }

type distReader struct {
	readerGuard
	d    *DistRCU
	gen  *pad.Uint64
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (d *DistRCU) Register() (Reader, error) {
	slot, sg, err := d.reg.acquire()
	if err != nil {
		return nil, err
	}
	g := &sg.state.([]pad.Uint64)[slot-sg.base]
	if g.Load()&1 == 1 {
		panic("prcu: reader slot reused while marked in-CS")
	}
	return &distReader{d: d, gen: g, lane: d.lane(slot), slot: slot}, nil
}

// Enter implements Reader. The value is ignored — Dist RCU is a plain RCU.
func (r *distReader) Enter(v Value) {
	r.check()
	r.gen.Add(1)
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader.
func (r *distReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.gen.Add(1)
}

// Unregister implements Reader.
func (r *distReader) Unregister() {
	r.closing()
	if r.gen.Load()&1 == 1 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.d.reg.release(r.slot)
	r.gen = nil
}

// WaitForReaders implements RCU. The predicate is ignored.
func (d *DistRCU) WaitForReaders(Predicate) {
	m := d.met
	var start int64
	if m != nil {
		start = m.WaitBegin()
	}
	var w spin.Waiter
	var scanned, waited, parked uint64
	d.reg.forEachActive(func(sg *segment, i int) {
		scanned++
		g := &sg.state.([]pad.Uint64)[i]
		s := g.Load()
		if s&1 == 0 {
			return
		}
		waited++
		w.Reset()
		for g.Load() == s {
			w.Wait()
		}
		if w.Yielded() {
			parked++
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}
