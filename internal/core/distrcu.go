package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// DistRCU implements the distributed-counters RCU of Arbel and Attiya
// (§2.2): no global grace-period counter, just a per-reader critical
// section counter. A waiter snapshots each reader's counter and waits for
// the reader either to advance it or to be outside a critical section.
// Waits are read-only, so — like the PRCU engines — concurrent waits scale
// without synchronizing with each other.
//
// A single generation counter encodes both pieces of state: even means
// quiescent, odd means inside a critical section. This is the RCU the
// original CITRUS tree used (the paper's Time RCU is its TSC-optimized
// successor).
type DistRCU struct {
	metered
	resilient
	tunable
	reg *registry
}

// NewDistRCU returns a distributed-counters RCU engine capped at
// maxReaders concurrent readers (0 = grow on demand).
func NewDistRCU(maxReaders int) *DistRCU {
	d := &DistRCU{}
	d.reg = newRegistry(maxReaders, func(base, size int) any {
		return make([]pad.Uint64, size)
	})
	return d
}

// Name implements RCU.
func (d *DistRCU) Name() string { return "Dist RCU" }

// MaxReaders implements RCU.
func (d *DistRCU) MaxReaders() int { return d.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (d *DistRCU) LiveReaders() int { return d.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (d *DistRCU) SlotCapacity() int { return d.reg.capacity() }

type distReader struct {
	readerGuard
	d    *DistRCU
	gen  *pad.Uint64
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (d *DistRCU) Register() (Reader, error) {
	slot, sg, err := d.reg.acquire()
	if err != nil {
		return nil, err
	}
	g := &sg.state.([]pad.Uint64)[slot-sg.base]
	if g.Load()&1 == 1 {
		panic("prcu: reader slot reused while marked in-CS")
	}
	return &distReader{d: d, gen: g, lane: d.lane(slot), slot: slot}, nil
}

// Enter implements Reader. The value is ignored — Dist RCU is a plain RCU.
func (r *distReader) Enter(v Value) {
	r.check()
	r.gen.Add(1)
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader.
func (r *distReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.gen.Add(1)
}

// Do implements Reader.
func (r *distReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *distReader) Unregister() {
	r.closing()
	if r.gen.Load()&1 == 1 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.d.reg.release(r.slot)
	r.gen = nil
}

// WaitForReaders implements RCU. The predicate is ignored.
func (d *DistRCU) WaitForReaders(p Predicate) {
	if st := d.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		d.waitReaders(p, newControl(nil, st, p, d))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	w := d.waiter()
	var scanned, waited, parked uint64
	d.reg.forEachActive(func(sg *segment, i int) {
		scanned++
		g := &sg.state.([]pad.Uint64)[i]
		s := g.Load()
		if s&1 == 0 {
			return
		}
		waited++
		bs := m.BlameStart(&start)
		w.Reset()
		for g.Load() == s {
			w.Wait()
		}
		m.BlameSample(&start, sg.base+i, bs)
		if w.Yielded() {
			parked++
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
func (d *DistRCU) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := d.control(ctx, p, d)
	if err := wc.pre(); err != nil {
		return err
	}
	return d.waitReaders(p, wc)
}

func (d *DistRCU) waitReaders(_ Predicate, wc *waitControl) error {
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	w := d.waiter()
	var scanned, waited, parked uint64
	var werr error
	d.reg.forEachActive(func(sg *segment, i int) {
		if werr != nil {
			return
		}
		scanned++
		g := &sg.state.([]pad.Uint64)[i]
		s := g.Load()
		if s&1 == 0 {
			return
		}
		waited++
		bs := m.BlameStart(&start)
		w.Reset()
		for g.Load() == s {
			if err := wc.step(&w); err != nil {
				werr = err
				break
			}
		}
		m.BlameSample(&start, sg.base+i, bs)
		if w.Yielded() {
			parked++
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// stalledReaders implements stallProber: readers whose generation counter
// is odd (inside a critical section). No value or timestamp is tracked.
func (d *DistRCU) stalledReaders(Predicate) []StalledReader {
	var out []StalledReader
	d.reg.forEachActive(func(sg *segment, i int) {
		g := &sg.state.([]pad.Uint64)[i]
		if g.Load()&1 == 1 {
			out = append(out, StalledReader{Slot: sg.base + i})
		}
	})
	return out
}
