package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"prcu/internal/obs"
	"prcu/internal/pad"
	"prcu/internal/spin"
)

// DefaultCounterTableSize is the C-table size used in the paper's
// evaluation ("The D-PRCU implementation uses a 1024-counter table", §6).
const DefaultCounterTableSize = 1024

// optimisticBudget is the number of back-off steps a wait spends hoping a
// node's readers drain naturally before acquiring the node lock and running
// the gate-toggle protocol (§4.2 "Optimistic waiting").
const optimisticBudget = 128

// dNode is one slot of D-PRCU's shared counter table C (Algorithm 2).
// It uses the SRCU-style two-counter waiting protocol: the gate bit selects
// which counter arriving readers increment, so a waiter can drain one phase
// while the other keeps absorbing new readers, guaranteeing the wait
// terminates even under a continuous stream of arrivals.
//
// Every field gets its own cache line: the counters are the reader fast
// path, the gate is read by every Enter and written only by slow-path
// drains, and the lock serializes concurrent drains of the same node.
type dNode struct {
	gate    pad.Uint64
	readers [2]pad.Int64
	mu      sync.Mutex
	// drains counts completed gate-protocol drains of this node; it backs
	// the batching optimization of §4.2 ("Further optimizations"): a
	// waiter that finds the lock taken piggybacks by waiting until two
	// drains complete after its arrival — the second one necessarily
	// started after the waiter arrived and therefore covers it.
	drains pad.Uint64
	_      [pad.CacheLineSize - 8]byte
}

// dTable is one generation of the counter table. Resize (§4.2 "Further
// optimizations") swaps in a larger generation; the table is therefore
// reached through an atomic pointer and readers re-validate it after
// incrementing, exactly like the resizable hash table's lookups.
type dTable struct {
	nodes []dNode
	mask  uint64
}

func newDTable(size int) *dTable {
	if size < 1 || size&(size-1) != 0 {
		panic(fmt.Sprintf("prcu: D-PRCU table size must be a power of two, got %d", size))
	}
	return &dTable{nodes: make([]dNode, size), mask: uint64(size - 1)}
}

func (t *dTable) index(v Value) uint64 { return hashValue(v) & t.mask }

// D implements D-PRCU (Algorithm 2). Readers hash their value into the
// counter table; wait-for-readers drains only the nodes covered by an
// enumerable predicate, making its cost O(|P⁻¹|) — independent of the
// number of threads. General (non-enumerable) predicates fall back to
// draining the whole table, as described in §4.2.
type D struct {
	metered
	resilient
	tunable
	reg *registry
	tbl atomic.Pointer[dTable]
	// old holds the previous table generation while a Resize drains it;
	// concurrent waits drain it conservatively until it clears.
	old      atomic.Pointer[dTable]
	resizeMu sync.Mutex
	// optBudget is the optimistic-waiting budget; <= 0 goes straight to
	// the gate protocol. Tunable (before use) for the ablation study.
	optBudget int
}

// NewD returns a D-PRCU engine capped at maxReaders concurrent readers
// (0 = grow on demand). tableSize is the counter-table size |C| and must
// be a power of two; 0 selects the paper's default of 1024.
func NewD(maxReaders, tableSize int) *D {
	if tableSize == 0 {
		tableSize = DefaultCounterTableSize
	}
	d := &D{
		reg:       newRegistry(maxReaders, nil),
		optBudget: optimisticBudget,
	}
	d.tbl.Store(newDTable(tableSize))
	return d
}

// SetOptimisticBudget tunes the optimistic-waiting spin budget (§4.2);
// zero or negative disables optimistic waiting entirely, sending every
// drain straight to the gate protocol. Call before the engine is in use —
// the field is read without synchronization on the wait path.
func (d *D) SetOptimisticBudget(budget int) { d.optBudget = budget }

// Name implements RCU.
func (d *D) Name() string { return "D-PRCU" }

// MaxReaders implements RCU.
func (d *D) MaxReaders() int { return d.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (d *D) LiveReaders() int { return d.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (d *D) SlotCapacity() int { return d.reg.capacity() }

// TableSize returns |C|, the current counter table size.
func (d *D) TableSize() int { return len(d.tbl.Load().nodes) }

// hashValue is h_rcu: D → [|C|]. The domain is opaque and possibly huge
// (§4.2), so a strong mixer (splitmix64 finalizer) spreads adjacent values
// across the table, keeping counter contention low for disjoint readers.
func hashValue(v Value) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

type dReader struct {
	readerGuard
	d    *D
	lane *obs.ReaderLane
	slot int
	// node and b record the counter cell and gate bit chosen at Enter, so
	// Exit decrements exactly the counter Enter incremented (Algorithm
	// 2's thread-local b). tbl pins the table generation for the
	// Exit-value consistency check. inCS guards the no-nesting contract.
	node *dNode
	tbl  *dTable
	b    uint64
	inCS bool
}

// Register implements RCU. D-PRCU readers carry no scanned per-slot state —
// the counter table is the shared state — but slots still bound and account
// for the reader population.
func (d *D) Register() (Reader, error) {
	slot, _, err := d.reg.acquire()
	if err != nil {
		return nil, err
	}
	return &dReader{d: d, lane: d.lane(slot), slot: slot}, nil
}

// Enter implements Reader (Algorithm 2 lines 4–7). The fetch-and-add is an
// SC atomic RMW, which supplies the fence the paper notes TSO gets for free
// from the atomic operation. The table pointer is re-validated after the
// increment so an Enter racing a Resize can never count itself in a
// generation that has already been drained and abandoned.
func (r *dReader) Enter(v Value) {
	r.check()
	if r.inCS {
		panic("prcu: nested read-side critical sections are not supported")
	}
	for {
		t := r.d.tbl.Load()
		n := &t.nodes[t.index(v)]
		b := n.gate.Load() & 1
		n.readers[b].Add(1)
		if r.d.tbl.Load() == t {
			r.node, r.tbl, r.b, r.inCS = n, t, b, true
			if r.lane != nil {
				r.lane.OnEnter(v)
			}
			return
		}
		n.readers[b].Add(-1)
	}
}

// Exit implements Reader (Algorithm 2 lines 8–9).
func (r *dReader) Exit(v Value) {
	r.check()
	if !r.inCS {
		panic("prcu: Exit without matching Enter")
	}
	if n := &r.tbl.nodes[r.tbl.index(v)]; n != r.node {
		panic("prcu: Exit value does not match Enter value")
	}
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.node.readers[r.b].Add(-1)
	r.node, r.tbl, r.inCS = nil, nil, false
}

// Do implements Reader.
func (r *dReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *dReader) Unregister() {
	r.closing()
	if r.inCS {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.d.reg.release(r.slot)
	r.d = nil
}

// WaitForReaders implements RCU (Algorithm 2 lines 10–13). For enumerable
// predicates it drains only the covered nodes, deduplicating indices so
// hash collisions within P⁻¹ never drain a node twice (§4.2 footnote 2).
// For general predicates it applies the protocol at every node, the
// fallback §4.2 describes. If a table resize is in flight, the previous
// generation is drained in full — readers counted there may hold any
// value, so only a global drain of that generation is conservative enough.
func (d *D) WaitForReaders(p Predicate) {
	if st := d.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		d.waitReaders(p, newControl(nil, st, p, d))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	var agg drainAgg
	// The updater's prior writes are ordered before the counter loads in
	// drain by SC atomics (the paper's line 11 fence). A nil wc never
	// errors, so the error returns are discarded here.
	t := d.tbl.Load()
	if !p.Enumerable() {
		for j := range t.nodes {
			info, _ := d.drainNodeBlamed(&t.nodes[j], j, &start, nil)
			agg.add(info)
		}
	} else {
		d.drainCoveredFast(t, p, &agg, &start)
	}
	if o := d.old.Load(); o != nil && o != t {
		for j := range o.nodes {
			info, _ := d.drainNodeBlamed(&o.nodes[j], j, &start, nil)
			agg.add(info)
		}
	}
	if m != nil {
		m.DrainCounts(agg.opt, agg.gate, agg.piggy)
		m.WaitEnd(start, agg.scanned, agg.waited, agg.parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
// Cancellation is checked in the piggyback and gate-protocol wait loops
// (the optimistic phase is already budget-bounded); aborting mid-gate
// releases the node lock without advancing the drains counter, leaving
// the protocol restartable by the next wait.
func (d *D) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := d.control(ctx, p, d)
	if err := wc.pre(); err != nil {
		return err
	}
	return d.waitReaders(p, wc)
}

func (d *D) waitReaders(p Predicate, wc *waitControl) error {
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	var agg drainAgg
	var werr error
	// The updater's prior writes are ordered before the counter loads in
	// drain by SC atomics (the paper's line 11 fence).
	t := d.tbl.Load()
	if !p.Enumerable() {
		for j := range t.nodes {
			info, err := d.drainNodeBlamed(&t.nodes[j], j, &start, wc)
			agg.add(info)
			if err != nil {
				werr = err
				break
			}
		}
	} else {
		werr = d.drainCovered(t, p, &agg, &start, wc)
	}
	if werr == nil {
		if o := d.old.Load(); o != nil && o != t {
			for j := range o.nodes {
				info, err := d.drainNodeBlamed(&o.nodes[j], j, &start, wc)
				agg.add(info)
				if err != nil {
					werr = err
					break
				}
			}
		}
	}
	if m != nil {
		m.DrainCounts(agg.opt, agg.gate, agg.piggy)
		m.WaitEnd(start, agg.scanned, agg.waited, agg.parked)
	}
	return werr
}

// drainInfo reports how one node drain resolved: its outcome class,
// whether readers were present at all (the node had to be waited on),
// and whether any wait loop crossed from spinning into yielding.
type drainInfo struct {
	outcome obs.DrainOutcome
	waited  bool
	parked  bool
}

// drainAgg accumulates per-wait drain statistics. For D-PRCU the
// "readers scanned / waited for" selectivity is counted over counter
// nodes — the unit its waits actually visit.
type drainAgg struct {
	scanned, waited, parked uint64
	opt, gate, piggy        uint64
}

func (a *drainAgg) add(i drainInfo) {
	a.scanned++
	if i.waited {
		a.waited++
	}
	if i.parked {
		a.parked++
	}
	switch i.outcome {
	case obs.DrainOptimistic:
		a.opt++
	case obs.DrainGate:
		a.gate++
	case obs.DrainPiggyback:
		a.piggy++
	}
}

// drainCovered drains the nodes of t that p's values hash to, each once,
// stopping early on cancellation.
// drainCoveredFast is the uncontrolled twin of drainCovered, used by the
// unarmed WaitForReaders fast path (a nil wait control never errors, so
// the error plumbing and its closure are dropped entirely). Keep the
// dedup logic in sync with drainCovered.
func (d *D) drainCoveredFast(t *dTable, p Predicate, agg *drainAgg, sp *obs.WaitSpan) {
	var small [16]uint64
	seen := small[:0]
	var bitmap []uint64
	p.ForEach(func(v Value) bool {
		idx := t.index(v)
		if bitmap == nil {
			for _, s := range seen {
				if s == idx {
					return true
				}
			}
			if len(seen) < cap(seen) {
				seen = append(seen, idx)
				info, _ := d.drainNodeBlamed(&t.nodes[idx], int(idx), sp, nil)
				agg.add(info)
				return true
			}
			// Spill: promote to bitmap.
			bitmap = make([]uint64, (len(t.nodes)+63)/64)
			for _, s := range seen {
				bitmap[s/64] |= 1 << (s % 64)
			}
		}
		if bitmap[idx/64]&(1<<(idx%64)) != 0 {
			return true
		}
		bitmap[idx/64] |= 1 << (idx % 64)
		info, _ := d.drainNodeBlamed(&t.nodes[idx], int(idx), sp, nil)
		agg.add(info)
		return true
	})
}

func (d *D) drainCovered(t *dTable, p Predicate, agg *drainAgg, sp *obs.WaitSpan, wc *waitControl) error {
	// Dedup covered indices. Predicates in practice cover very few values
	// (a bucket pair, a small key interval), so a small linear buffer
	// avoids allocation; large predicates spill into a bitmap.
	var small [16]uint64
	seen := small[:0]
	var bitmap []uint64
	var werr error
	drain := func(idx uint64) bool {
		info, err := d.drainNodeBlamed(&t.nodes[idx], int(idx), sp, wc)
		agg.add(info)
		if err != nil {
			werr = err
			return false
		}
		return true
	}
	p.ForEach(func(v Value) bool {
		idx := t.index(v)
		if bitmap == nil {
			for _, s := range seen {
				if s == idx {
					return true
				}
			}
			if len(seen) < cap(seen) {
				seen = append(seen, idx)
				return drain(idx)
			}
			// Spill: promote to bitmap.
			bitmap = make([]uint64, (len(t.nodes)+63)/64)
			for _, s := range seen {
				bitmap[s/64] |= 1 << (s % 64)
			}
		}
		if bitmap[idx/64]&(1<<(idx%64)) != 0 {
			return true
		}
		bitmap[idx/64] |= 1 << (idx % 64)
		return drain(idx)
	})
	return werr
}

// drainNodeBlamed wraps drainNode with a flight-recorder blame sample.
// D-PRCU waits block on counter nodes, not readers, so blame slots are
// counter-node indices — the same unit stalledReaders reports.
func (d *D) drainNodeBlamed(n *dNode, idx int, sp *obs.WaitSpan, wc *waitControl) (drainInfo, error) {
	bs := d.met.BlameStart(sp)
	info, err := d.drainNode(n, wc)
	if info.waited {
		d.met.BlameSample(sp, idx, bs)
	}
	return info, err
}

// drainNode waits until node n has been observed with zero readers in each
// counter (Lemma 1), first optimistically and then via the gate protocol
// (Algorithm 2 lines 14–20), piggybacking on a concurrent drain when the
// node lock is contended.
func (d *D) drainNode(n *dNode, wc *waitControl) (drainInfo, error) {
	// Optimistic waiting (§4.2): hope readers drain naturally, avoiding the
	// lock and the gate toggle. Lemma 1 needs each counter observed at zero
	// at some point during the wait — not simultaneously — so the two
	// observations are tracked independently. The phase is budget-bounded,
	// so no cancellation check is needed inside it.
	info := drainInfo{outcome: obs.DrainOptimistic}
	if d.optBudget > 0 {
		seen0 := n.readers[0].Load() == 0
		seen1 := n.readers[1].Load() == 0
		if seen0 && seen1 {
			return info, nil // clean: no readers present on first look
		}
		info.waited = true
		if spin.UntilBudgetTuned(func() bool {
			seen0 = seen0 || n.readers[0].Load() == 0
			seen1 = seen1 || n.readers[1].Load() == 0
			return seen0 && seen1
		}, d.optBudget, d.tuning()) {
			return info, nil
		}
	}
	info.waited = true

	// Batching (§4.2, implemented here although the paper defers it): if
	// another drain holds the lock, piggyback instead of queueing — wait
	// until the completed-drain counter advances by two past our arrival.
	// Drain s0+1 may already have been mid-protocol when we arrived, but
	// drain s0+2 started after s0+1 finished, i.e. after we arrived, so
	// its two-phase sweep covers every reader we are obliged to wait for.
	s0 := n.drains.Load()
	w := d.waiter()
	for !n.mu.TryLock() {
		if n.drains.Load() >= s0+2 {
			info.outcome = obs.DrainPiggyback
			info.parked = w.Yielded()
			return info, nil
		}
		if err := wc.step(&w); err != nil {
			info.parked = w.Yielded()
			return info, err
		}
	}

	// Full protocol: drain the inactive phase, toggle the gate so new
	// arrivals use the drained phase, then drain the previously active
	// phase. Termination needs only that readers keep taking steps. On
	// cancellation the lock is released without advancing drains — the
	// protocol is restartable, and a mid-protocol gate toggle only means
	// the next drain starts from the other phase.
	info.outcome = obs.DrainGate
	g := n.gate.Load() & 1
	w.Reset()
	for n.readers[1-g].Load() != 0 {
		if err := wc.step(&w); err != nil {
			info.parked = w.Yielded()
			n.mu.Unlock()
			return info, err
		}
	}
	n.gate.Store(1 - g)
	for n.readers[g].Load() != 0 {
		if err := wc.step(&w); err != nil {
			info.parked = w.Yielded()
			n.mu.Unlock()
			return info, err
		}
	}
	info.parked = w.Yielded()
	n.drains.Add(1)
	n.mu.Unlock()
	return info, nil
}

// stalledReaders implements stallProber. D-PRCU waits block on counter
// nodes, not readers, so Slot is the counter-node index in the current
// table; for an enumerable predicate Value records one covered value that
// hashes to the node (the diagnostic the hash obscures otherwise).
func (d *D) stalledReaders(p Predicate) []StalledReader {
	t := d.tbl.Load()
	occupied := func(n *dNode) bool {
		return n.readers[0].Load() != 0 || n.readers[1].Load() != 0
	}
	var out []StalledReader
	if !p.Enumerable() {
		for j := range t.nodes {
			if occupied(&t.nodes[j]) {
				out = append(out, StalledReader{Slot: j})
			}
		}
		return out
	}
	seen := make(map[uint64]bool)
	p.ForEach(func(v Value) bool {
		idx := t.index(v)
		if seen[idx] {
			return true
		}
		seen[idx] = true
		if occupied(&t.nodes[idx]) {
			out = append(out, StalledReader{Slot: int(idx), Value: v, HasValue: true})
		}
		return true
	})
	return out
}

// Resize installs a counter table of newSize (a power of two) — the table
// expansion §4.2 lists as future work, used to relieve hash-collision
// contention as reader populations grow. As the paper prescribes, the old
// generation is drained globally: new readers immediately use the new
// table (re-validating across the swap), and concurrent waits keep
// draining the old generation until it empties.
func (d *D) Resize(newSize int) {
	nt := newDTable(newSize)
	d.resizeMu.Lock()
	defer d.resizeMu.Unlock()
	ot := d.tbl.Load()
	if len(ot.nodes) == newSize {
		return
	}
	d.old.Store(ot)
	d.tbl.Store(nt)
	for j := range ot.nodes {
		d.drainNode(&ot.nodes[j], nil)
	}
	d.old.Store(nil)
}
