package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// Packed implements the packed-state epoch RCU: the yanet2-style variant
// of the classic epoch scheme in which each reader's entire wait-visible
// state — the in-critical-section flag and the grace-period epoch it
// entered under — lives in one 32-bit atomic word. Enter is one load of
// the global epoch and one store of the packed word; Exit is a single
// store of zero (no global access at all); neither performs a
// read-modify-write. Wait-for-readers advances the epoch with a
// fetch-and-add — the flip and the seq-cst fence the protocol needs are
// the same instruction — and then scans reader words, skipping any slot
// whose word it observes inactive with a single load.
//
// Word layout (bit 0 is the cheap bit to test):
//
//	bit 0      active: the reader is inside a critical section
//	bits 1..31 epoch: the global epoch observed at Enter, pre-shifted
//
// The global epoch gp is kept pre-shifted (always even, advancing by
// packedEpochInc), so Enter composes the word with a single OR and the
// wait-side comparison needs no shifting.
//
// Differences from URCU, the closest sibling:
//
//   - URCU's phase is one bit, so a waiter must serialize behind a global
//     writer mutex and flip/drain twice to disambiguate stale snapshots.
//     Packed's epoch is a 31-bit monotone counter compared with
//     wraparound-safe signed arithmetic (packedOngoing), so concurrent
//     waiters need no mutex: each fetch-and-adds its own flip and drains
//     everything older. This removes the wait-side scalability bottleneck
//     the paper measures in URCU.
//   - A quiescent reader costs the scan one load of its packed word
//     (bit 0 clear ⇒ skip); URCU's scan must also decode the phase.
//
// The wait still performs a two-phase flip (two fetch-and-adds, each
// followed by a drain). With a monotone epoch the first drain alone
// already covers every pre-existing reader; the second phase is retained
// deliberately: it mirrors the yanet2/URCU protocol shape, and it means a
// reader's stale epoch must survive 2^30 grace periods *within one
// critical section* before signed comparison could alias — twice the
// single-phase margin. See DESIGN.md, "Packed reader word", for the full
// happens-before argument (why acquire/release pairing suffices for the
// reader word in the C11 model, where the seq-cst fence at the flip is
// still mandatory, and why Go's all-seq-cst sync/atomic discharges both
// obligations).
type Packed struct {
	metered
	resilient
	tunable
	reg *registry
	// gp is the global epoch, pre-shifted into bits 1..31 (always even).
	// It only ever advances, via Add — the RMW doubles as the seq-cst
	// fence between a waiter's prior stores and its reader-word scan.
	gp pad.Uint32
}

const (
	// packedActive is the in-critical-section flag, bit 0 of the word.
	packedActive uint32 = 1
	// packedEpochInc advances the pre-shifted epoch by one.
	packedEpochInc uint32 = 2
)

// NewPacked returns a packed-state epoch engine capped at maxReaders
// concurrent readers (0 = grow on demand).
func NewPacked(maxReaders int) *Packed {
	p := &Packed{}
	p.reg = newRegistry(maxReaders, func(base, size int) any {
		return make([]pad.Uint32, size)
	})
	return p
}

// Name implements RCU.
func (p *Packed) Name() string { return "Packed RCU" }

// MaxReaders implements RCU.
func (p *Packed) MaxReaders() int { return p.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (p *Packed) LiveReaders() int { return p.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (p *Packed) SlotCapacity() int { return p.reg.capacity() }

type packedReader struct {
	readerGuard
	p    *Packed
	word *pad.Uint32
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (p *Packed) Register() (Reader, error) {
	slot, sg, err := p.reg.acquire()
	if err != nil {
		return nil, err
	}
	w := &sg.state.([]pad.Uint32)[slot-sg.base]
	w.Store(0)
	return &packedReader{p: p, word: w, lane: p.lane(slot), slot: slot}, nil
}

// Enter implements Reader: publish active-with-current-epoch in one
// store. The value is ignored — Packed is a plain RCU. Because the flag
// and the epoch travel in the same word, a scan can never observe the
// active bit without the epoch it belongs to (no torn state); because
// the store is a Go atomic (seq-cst), it cannot sink below the reads
// inside the critical section, and a waiter that flipped the epoch
// before this store is guaranteed to observe it during its drain.
func (r *packedReader) Enter(v Value) {
	r.check()
	r.word.Store(r.p.gp.Load() | packedActive)
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader: one store of zero, touching no shared global
// state — the release publication that lets a blocked drain pass.
func (r *packedReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.word.Store(0)
}

// Do implements Reader.
func (r *packedReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *packedReader) Unregister() {
	r.closing()
	if r.word.Load()&packedActive != 0 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.p.reg.release(r.slot)
	r.word = nil
}

// packedOngoing reports whether reader word c belongs to a critical
// section the flip to epoch gp must wait for: active, and entered under
// an epoch strictly older than gp. The subtraction is compared signed so
// the 31-bit epoch wraps safely: "older" means "within the trailing half
// of the epoch circle", which only misclassifies a section that stayed
// open across 2^30 consecutive grace periods.
func packedOngoing(c, gp uint32) bool {
	return c&packedActive != 0 && int32((c&^packedActive)-gp) < 0
}

// WaitForReaders implements RCU. The predicate is ignored. Each phase
// advances the epoch with one fetch-and-add (no writer mutex — see the
// type comment) and drains every active reader older than the new epoch;
// readers entering during the drain adopt the new epoch and are skipped.
func (p *Packed) WaitForReaders(pred Predicate) {
	if st := p.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		p.waitReaders(pred, newControl(nil, st, pred, p))
		return
	}
	// Unarmed fast path: keep in sync with waitReaders, its
	// wc.step-controlled twin.
	m := p.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	var scanned, waited, parked uint64
	for phase := 0; phase < 2; phase++ {
		g := p.gp.Add(packedEpochInc)
		w := p.waiter()
		p.reg.forEachActive(func(sg *segment, i int) {
			scanned++
			c := &sg.state.([]pad.Uint32)[i]
			// One load decides quiescent slots; only an ongoing covered
			// section pays the spin loop.
			if !packedOngoing(c.Load(), g) {
				return
			}
			waited++
			bs := m.BlameStart(&start)
			w.Reset()
			for packedOngoing(c.Load(), g) {
				w.Wait()
			}
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		})
	}
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
// Cancellation mid-protocol is safe: an abandoned flip just leaves the
// monotone epoch advanced, and the next wait fetch-and-adds past it and
// drains everything older, so it still covers every pre-existing reader.
func (p *Packed) WaitForReadersCtx(ctx context.Context, pred Predicate) error {
	wc := p.control(ctx, pred, p)
	if err := wc.pre(); err != nil {
		return err
	}
	return p.waitReaders(pred, wc)
}

func (p *Packed) waitReaders(_ Predicate, wc *waitControl) error {
	m := p.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	var scanned, waited, parked uint64
	var werr error
	for phase := 0; phase < 2 && werr == nil; phase++ {
		g := p.gp.Add(packedEpochInc)
		w := p.waiter()
		p.reg.forEachActive(func(sg *segment, i int) {
			if werr != nil {
				return
			}
			scanned++
			c := &sg.state.([]pad.Uint32)[i]
			if !packedOngoing(c.Load(), g) {
				return
			}
			waited++
			bs := m.BlameStart(&start)
			w.Reset()
			for packedOngoing(c.Load(), g) {
				if err := wc.step(&w); err != nil {
					werr = err
					break
				}
			}
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		})
	}
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// stalledReaders implements stallProber: active readers whose epoch is
// older than the current global epoch — the sections a wait in progress
// is (or would be) blocked on.
func (p *Packed) stalledReaders(Predicate) []StalledReader {
	g := p.gp.Load()
	var out []StalledReader
	p.reg.forEachActive(func(sg *segment, i int) {
		if packedOngoing(sg.state.([]pad.Uint32)[i].Load(), g) {
			out = append(out, StalledReader{Slot: sg.base + i})
		}
	})
	return out
}
