package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/pad"
	"prcu/internal/tsc"
)

// timeNode is the per-reader record of Algorithm 1 (and, replicated per
// value bucket, of Algorithm 3): the value the reader is currently reading
// and the timestamp of its prcu_enter, or tsc.Infinity while quiescent.
// Both fields are padded to their own cache lines: the reader writes them
// on every Enter/Exit while wait-for-readers scans read them, and unrelated
// readers must not false-share.
type timeNode struct {
	value pad.Uint64
	time  pad.Int64
}

// newTimeNodeSeg allocates per-segment timeNode state (n nodes, all
// quiescent); it is the registry newSeg hook shared by the timestamp
// engines.
func newTimeNodeSeg(n int) []timeNode {
	nodes := make([]timeNode, n)
	for i := range nodes {
		nodes[i].time.Store(tsc.Infinity)
	}
	return nodes
}

// EER implements EER-PRCU (Algorithm 1): wait-for-readers Evaluates the
// predicate for Each Reader and waits — using time-based quiescence
// detection — only for readers it holds for.
//
// Correctness (Proposition 1) transfers as follows: all node accesses are
// sequentially consistent atomics, which subsumes the paper's TSO fences,
// and the clock satisfies the two properties the proof needs, monotonicity
// and cross-thread consistency (see internal/tsc).
type EER struct {
	metered
	resilient
	tunable
	reg   *registry
	clock Clock
}

// NewEER returns an EER-PRCU engine capped at maxReaders concurrent
// readers (0 = grow on demand). If clock is nil the monotonic clock is
// used.
func NewEER(maxReaders int, clock Clock) *EER {
	if clock == nil {
		clock = tsc.NewMonotonic()
	}
	e := &EER{clock: clock}
	e.reg = newRegistry(maxReaders, func(base, size int) any {
		return newTimeNodeSeg(size)
	})
	return e
}

// Name implements RCU.
func (e *EER) Name() string { return "EER-PRCU" }

// MaxReaders implements RCU.
func (e *EER) MaxReaders() int { return e.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (e *EER) LiveReaders() int { return e.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (e *EER) SlotCapacity() int { return e.reg.capacity() }

// eerReader is one registered EER reader (one slot of the Nodes array).
type eerReader struct {
	readerGuard
	e    *EER
	node *timeNode
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (e *EER) Register() (Reader, error) {
	slot, sg, err := e.reg.acquire()
	if err != nil {
		return nil, err
	}
	n := &sg.state.([]timeNode)[slot-sg.base]
	n.time.Store(tsc.Infinity)
	return &eerReader{e: e, node: n, lane: e.lane(slot), slot: slot}, nil
}

// Enter implements Reader. The value store precedes the time store, as in
// Algorithm 1: a waiter that observes the new time is then guaranteed to
// observe the new value (single-writer node, SC atomics).
func (r *eerReader) Enter(v Value) {
	r.check()
	r.node.value.Store(v)
	r.node.time.Store(r.e.clock.Now())
	// Algorithm 1 line 6's TSO fence — ordering the time store before the
	// critical section's reads — is implied by the SC atomic store above.
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader.
func (r *eerReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.node.time.Store(tsc.Infinity)
}

// Do implements Reader.
func (r *eerReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *eerReader) Unregister() {
	r.closing()
	if r.node.time.Load() != tsc.Infinity {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.e.reg.release(r.slot)
	r.node = nil
}

// WaitForReaders implements RCU (Algorithm 1 lines 9–16). The scan is
// read-only, so concurrent waits proceed without synchronizing with each
// other — the property that makes EER-PRCU waits scale with update threads.
//
// Scanning the calling goroutine's own slot is harmless: a correct caller
// is quiescent while waiting, so its own node reads Infinity and is skipped
// immediately. This removes the paper's "for each thread Tj != Ti"
// bookkeeping without changing behavior.
func (e *EER) WaitForReaders(p Predicate) {
	if st := e.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		e.waitReaders(p, newControl(nil, st, p, e))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := e.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	// Algorithm 1 line 10's fence (make the updater's prior writes visible
	// before reading the clock) is implied by SC ordering of the atomic
	// node loads below against the caller's preceding atomic stores.
	t0 := e.clock.Now()
	w := e.waiter()
	var scanned, waited, parked uint64
	e.reg.forEachActive(func(sg *segment, i int) {
		scanned++
		n := &sg.state.([]timeNode)[i]
		w.Reset()
		looped := false
		var bs int64
		for {
			// Re-evaluating the predicate each iteration (rather than once,
			// as the pseudo code shows) only relaxes waiting: if the reader
			// re-entered on a value P does not hold for, its pre-existing
			// critical section has necessarily exited.
			t := n.time.Load()
			if t > t0 {
				break
			}
			if !p.Holds(n.value.Load()) {
				// The value current at this instant is not covered. Any
				// covered critical section this reader held was entered
				// with an earlier value and has since exited (single
				// writer, no nesting).
				break
			}
			if !looped {
				looped = true
				bs = m.BlameStart(&start)
			}
			w.Wait()
		}
		if looped {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
func (e *EER) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := e.control(ctx, p, e)
	if err := wc.pre(); err != nil {
		return err
	}
	return e.waitReaders(p, wc)
}

func (e *EER) waitReaders(p Predicate, wc *waitControl) error {
	m := e.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	// Algorithm 1 line 10's fence (make the updater's prior writes visible
	// before reading the clock) is implied by SC ordering of the atomic
	// node loads below against the caller's preceding atomic stores.
	t0 := e.clock.Now()
	w := e.waiter()
	var scanned, waited, parked uint64
	var werr error
	e.reg.forEachActive(func(sg *segment, i int) {
		if werr != nil {
			return
		}
		scanned++
		n := &sg.state.([]timeNode)[i]
		w.Reset()
		looped := false
		var bs int64
		for {
			// Re-evaluating the predicate each iteration (rather than once,
			// as the pseudo code shows) only relaxes waiting: if the reader
			// re-entered on a value P does not hold for, its pre-existing
			// critical section has necessarily exited.
			t := n.time.Load()
			if t > t0 {
				break
			}
			if !p.Holds(n.value.Load()) {
				// The value current at this instant is not covered. Any
				// covered critical section this reader held was entered
				// with an earlier value and has since exited (single
				// writer, no nesting).
				break
			}
			if !looped {
				looped = true
				bs = m.BlameStart(&start)
			}
			if err := wc.step(&w); err != nil {
				werr = err
				break
			}
		}
		if looped {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// stalledReaders implements stallProber: the covered open critical
// sections a wait on p is blocked on, read from the same per-slot nodes
// the wait scans.
func (e *EER) stalledReaders(p Predicate) []StalledReader {
	now := e.clock.Now()
	var out []StalledReader
	e.reg.forEachActive(func(sg *segment, i int) {
		n := &sg.state.([]timeNode)[i]
		t := n.time.Load()
		if t == tsc.Infinity {
			return
		}
		v := n.value.Load()
		if !p.Holds(v) {
			return
		}
		out = append(out, StalledReader{
			Slot: sg.base + i, Value: v, HasValue: true, OpenFor: clampDur(now - t),
		})
	})
	return out
}
