package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/spin"
)

// SRCU implements McKenney's Sleepable RCU (§7 related work), the origin
// of D-PRCU's two-counter waiting protocol. SRCU restricts waiting *by
// subsystem*: each SRCU instance is an isolated domain, so a wait in one
// instance never waits for readers of another — whereas PRCU subdivides
// waiting *within* one data structure by value. Structurally, SRCU is
// D-PRCU with a single counter node and no predicate: readers flip-flop
// between two counters selected by a gate bit, and a wait drains both
// phases under a per-instance lock.
//
// It is included for completeness of the related-work comparison; in the
// harness it behaves like a plain RCU whose readers pay one atomic RMW.
type SRCU struct {
	metered
	resilient
	tunable
	reg  *registry
	node dNode
}

// NewSRCU returns an SRCU instance ("subsystem") capped at maxReaders
// concurrent readers (0 = grow on demand).
func NewSRCU(maxReaders int) *SRCU {
	return &SRCU{reg: newRegistry(maxReaders, nil)}
}

// Name implements RCU.
func (s *SRCU) Name() string { return "SRCU" }

// MaxReaders implements RCU.
func (s *SRCU) MaxReaders() int { return s.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (s *SRCU) LiveReaders() int { return s.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (s *SRCU) SlotCapacity() int { return s.reg.capacity() }

type srcuReader struct {
	readerGuard
	s    *SRCU
	lane *obs.ReaderLane
	slot int
	b    uint64
	inCS bool
}

// Register implements RCU. SRCU readers carry no scanned per-slot state —
// the shared counter node is the state — but slots still bound and account
// for the reader population.
func (s *SRCU) Register() (Reader, error) {
	slot, _, err := s.reg.acquire()
	if err != nil {
		return nil, err
	}
	return &srcuReader{s: s, lane: s.lane(slot), slot: slot}, nil
}

// Enter implements Reader (srcu_read_lock). The value is ignored: the
// subsystem is the granularity, not the value.
func (r *srcuReader) Enter(v Value) {
	r.check()
	if r.inCS {
		panic("prcu: nested read-side critical sections are not supported")
	}
	n := &r.s.node
	b := n.gate.Load() & 1
	n.readers[b].Add(1)
	r.b, r.inCS = b, true
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader (srcu_read_unlock).
func (r *srcuReader) Exit(v Value) {
	r.check()
	if !r.inCS {
		panic("prcu: Exit without matching Enter")
	}
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.s.node.readers[r.b].Add(-1)
	r.inCS = false
}

// Do implements Reader.
func (r *srcuReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *srcuReader) Unregister() {
	r.closing()
	if r.inCS {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.s.reg.release(r.slot)
	r.s = nil
}

// WaitForReaders implements RCU (synchronize_srcu). The predicate is
// ignored; the whole subsystem is drained through the gate protocol,
// with the same lock-holder piggybacking D-PRCU uses. SRCU has one
// counter node, so each wait scans one node and records one drain
// outcome.
func (s *SRCU) WaitForReaders(p Predicate) {
	if st := s.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		s.waitReaders(p, newControl(nil, st, p, s))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := s.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	n := &s.node
	if n.readers[0].Load() == 0 && n.readers[1].Load() == 0 {
		if m != nil {
			m.DrainCounts(1, 0, 0)
			m.WaitEnd(start, 1, 0, 0)
		}
		return
	}
	// Readers are present, so the wait will block; SRCU has one counter
	// node, so all blame lands on slot 0.
	bs := m.BlameStart(&start)
	seen0, seen1 := false, false
	if spin.UntilBudgetTuned(func() bool {
		seen0 = seen0 || n.readers[0].Load() == 0
		seen1 = seen1 || n.readers[1].Load() == 0
		return seen0 && seen1
	}, optimisticBudget, s.tuning()) {
		if m != nil {
			m.BlameSample(&start, 0, bs)
			m.DrainCounts(1, 0, 0)
			m.WaitEnd(start, 1, 1, 0)
		}
		return
	}
	s0 := n.drains.Load()
	w := s.waiter()
	for !n.mu.TryLock() {
		if n.drains.Load() >= s0+2 {
			if m != nil {
				var parked uint64
				if w.Yielded() {
					parked = 1
				}
				m.BlameSample(&start, 0, bs)
				m.DrainCounts(0, 0, 1)
				m.WaitEnd(start, 1, 1, parked)
			}
			return
		}
		w.Wait()
	}
	g := n.gate.Load() & 1
	w.Reset()
	for n.readers[1-g].Load() != 0 {
		w.Wait()
	}
	n.gate.Store(1 - g)
	for n.readers[g].Load() != 0 {
		w.Wait()
	}
	n.drains.Add(1)
	n.mu.Unlock()
	if m != nil {
		var parked uint64
		if w.Yielded() {
			parked = 1
		}
		m.BlameSample(&start, 0, bs)
		m.DrainCounts(0, 1, 0)
		m.WaitEnd(start, 1, 1, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx. As
// with D-PRCU, aborting mid-gate releases the lock without advancing the
// drains counter, leaving the protocol restartable.
func (s *SRCU) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := s.control(ctx, p, s)
	if err := wc.pre(); err != nil {
		return err
	}
	return s.waitReaders(p, wc)
}

func (s *SRCU) waitReaders(_ Predicate, wc *waitControl) error {
	m := s.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	n := &s.node
	if n.readers[0].Load() == 0 && n.readers[1].Load() == 0 {
		if m != nil {
			m.DrainCounts(1, 0, 0)
			m.WaitEnd(start, 1, 0, 0)
		}
		return nil
	}
	// See the fast path: blocked SRCU waits blame their single node, slot 0.
	bs := m.BlameStart(&start)
	seen0, seen1 := false, false
	if spin.UntilBudgetTuned(func() bool {
		seen0 = seen0 || n.readers[0].Load() == 0
		seen1 = seen1 || n.readers[1].Load() == 0
		return seen0 && seen1
	}, optimisticBudget, s.tuning()) {
		if m != nil {
			m.BlameSample(&start, 0, bs)
			m.DrainCounts(1, 0, 0)
			m.WaitEnd(start, 1, 1, 0)
		}
		return nil
	}
	s0 := n.drains.Load()
	w := s.waiter()
	for !n.mu.TryLock() {
		if n.drains.Load() >= s0+2 {
			if m != nil {
				var parked uint64
				if w.Yielded() {
					parked = 1
				}
				m.BlameSample(&start, 0, bs)
				m.DrainCounts(0, 0, 1)
				m.WaitEnd(start, 1, 1, parked)
			}
			return nil
		}
		if err := wc.step(&w); err != nil {
			m.BlameSample(&start, 0, bs)
			s.waitAborted(m, start, &w)
			return err
		}
	}
	g := n.gate.Load() & 1
	w.Reset()
	for n.readers[1-g].Load() != 0 {
		if err := wc.step(&w); err != nil {
			n.mu.Unlock()
			m.BlameSample(&start, 0, bs)
			s.waitAborted(m, start, &w)
			return err
		}
	}
	n.gate.Store(1 - g)
	for n.readers[g].Load() != 0 {
		if err := wc.step(&w); err != nil {
			n.mu.Unlock()
			m.BlameSample(&start, 0, bs)
			s.waitAborted(m, start, &w)
			return err
		}
	}
	n.drains.Add(1)
	n.mu.Unlock()
	if m != nil {
		var parked uint64
		if w.Yielded() {
			parked = 1
		}
		m.BlameSample(&start, 0, bs)
		m.DrainCounts(0, 1, 0)
		m.WaitEnd(start, 1, 1, parked)
	}
	return nil
}

// waitAborted records wait metrics for a cancelled SRCU wait.
func (s *SRCU) waitAborted(m *obs.Metrics, start obs.WaitSpan, w *spin.Waiter) {
	if m == nil {
		return
	}
	var parked uint64
	if w.Yielded() {
		parked = 1
	}
	m.WaitEnd(start, 1, 1, parked)
}

// stalledReaders implements stallProber: SRCU has a single counter node
// (Slot 0), reported when either phase counter is non-zero.
func (s *SRCU) stalledReaders(Predicate) []StalledReader {
	n := &s.node
	if n.readers[0].Load() != 0 || n.readers[1].Load() != 0 {
		return []StalledReader{{Slot: 0}}
	}
	return nil
}

// Compile-time interface checks for every engine in the package.
var (
	_ RCU = (*EER)(nil)
	_ RCU = (*D)(nil)
	_ RCU = (*DEER)(nil)
	_ RCU = (*TimeRCU)(nil)
	_ RCU = (*TreeRCU)(nil)
	_ RCU = (*URCU)(nil)
	_ RCU = (*DistRCU)(nil)
	_ RCU = (*SRCU)(nil)
	_ RCU = (*Simulated)(nil)
	_ RCU = (*Nop)(nil)
)
