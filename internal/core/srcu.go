package core

import "prcu/internal/spin"

// SRCU implements McKenney's Sleepable RCU (§7 related work), the origin
// of D-PRCU's two-counter waiting protocol. SRCU restricts waiting *by
// subsystem*: each SRCU instance is an isolated domain, so a wait in one
// instance never waits for readers of another — whereas PRCU subdivides
// waiting *within* one data structure by value. Structurally, SRCU is
// D-PRCU with a single counter node and no predicate: readers flip-flop
// between two counters selected by a gate bit, and a wait drains both
// phases under a per-instance lock.
//
// It is included for completeness of the related-work comparison; in the
// harness it behaves like a plain RCU whose readers pay one atomic RMW.
type SRCU struct {
	reg  *registry
	node dNode
}

// NewSRCU returns an SRCU instance ("subsystem") with capacity for
// maxReaders concurrent readers.
func NewSRCU(maxReaders int) *SRCU {
	return &SRCU{reg: newRegistry(maxReaders)}
}

// Name implements RCU.
func (s *SRCU) Name() string { return "SRCU" }

// MaxReaders implements RCU.
func (s *SRCU) MaxReaders() int { return s.reg.maxReaders() }

type srcuReader struct {
	s    *SRCU
	slot int
	b    uint64
	inCS bool
}

// Register implements RCU.
func (s *SRCU) Register() (Reader, error) {
	slot, err := s.reg.acquire()
	if err != nil {
		return nil, err
	}
	return &srcuReader{s: s, slot: slot}, nil
}

// Enter implements Reader (srcu_read_lock). The value is ignored: the
// subsystem is the granularity, not the value.
func (r *srcuReader) Enter(Value) {
	if r.inCS {
		panic("prcu: nested read-side critical sections are not supported")
	}
	n := &r.s.node
	b := n.gate.Load() & 1
	n.readers[b].Add(1)
	r.b, r.inCS = b, true
}

// Exit implements Reader (srcu_read_unlock).
func (r *srcuReader) Exit(Value) {
	if !r.inCS {
		panic("prcu: Exit without matching Enter")
	}
	r.s.node.readers[r.b].Add(-1)
	r.inCS = false
}

// Unregister implements Reader.
func (r *srcuReader) Unregister() {
	if r.inCS {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.s.reg.release(r.slot)
	r.s = nil
}

// WaitForReaders implements RCU (synchronize_srcu). The predicate is
// ignored; the whole subsystem is drained through the gate protocol,
// with the same lock-holder piggybacking D-PRCU uses.
func (s *SRCU) WaitForReaders(Predicate) {
	n := &s.node
	seen0, seen1 := false, false
	if spin.UntilBudget(func() bool {
		seen0 = seen0 || n.readers[0].Load() == 0
		seen1 = seen1 || n.readers[1].Load() == 0
		return seen0 && seen1
	}, optimisticBudget) {
		return
	}
	s0 := n.drains.Load()
	var w spin.Waiter
	for !n.mu.TryLock() {
		if n.drains.Load() >= s0+2 {
			return
		}
		w.Wait()
	}
	g := n.gate.Load() & 1
	spin.Until(func() bool { return n.readers[1-g].Load() == 0 })
	n.gate.Store(1 - g)
	spin.Until(func() bool { return n.readers[g].Load() == 0 })
	n.drains.Add(1)
	n.mu.Unlock()
}

// Compile-time interface checks for every engine in the package.
var (
	_ RCU = (*EER)(nil)
	_ RCU = (*D)(nil)
	_ RCU = (*DEER)(nil)
	_ RCU = (*TimeRCU)(nil)
	_ RCU = (*TreeRCU)(nil)
	_ RCU = (*URCU)(nil)
	_ RCU = (*DistRCU)(nil)
	_ RCU = (*SRCU)(nil)
	_ RCU = (*Simulated)(nil)
	_ RCU = (*Nop)(nil)
)
