package core

import (
	"testing"
	"time"
)

func TestWaitTuningRoundTrip(t *testing.T) {
	for name, mk := range engines(8) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			wt, ok := r.(WaitTuner)
			if !ok {
				t.Fatalf("%s does not implement WaitTuner", name)
			}
			if got := wt.WaitTuning(); got != (WaitTuning{}) {
				t.Fatalf("fresh engine tuning = %+v, want zero", got)
			}
			wt.SetWaitTuning(WaitTuningPark)
			if got := wt.WaitTuning(); got != WaitTuningPark {
				t.Fatalf("tuning = %+v, want %+v", got, WaitTuningPark)
			}
			// Clearing back to the zero tuning restores the default (and the
			// nil fast path inside waiter()).
			wt.SetWaitTuning(WaitTuning{})
			if got := wt.WaitTuning(); got != (WaitTuning{}) {
				t.Fatalf("cleared tuning = %+v, want zero", got)
			}
		})
	}
}

// TestWaitTuningLiveness runs every flavor's wait under each preset
// tuning against a reader that exits while the wait is in flight: a
// tuned wait must still observe the exit and return. This is the
// liveness property a bad park/spin configuration would break first.
func TestWaitTuningLiveness(t *testing.T) {
	presets := map[string]WaitTuning{
		"spin":  WaitTuningSpin,
		"yield": WaitTuningYield,
		"park":  WaitTuningPark,
	}
	for name, mk := range engines(8) {
		for pname, preset := range presets {
			t.Run(name+"/"+pname, func(t *testing.T) {
				r := mk()
				r.(WaitTuner).SetWaitTuning(preset)
				rd, err := r.Register()
				if err != nil {
					t.Fatal(err)
				}
				entered := make(chan struct{})
				release := make(chan struct{})
				go func() {
					rd.Enter(5)
					close(entered)
					<-release
					rd.Exit(5)
					rd.Unregister()
				}()
				<-entered
				returned := make(chan struct{})
				go func() {
					r.WaitForReaders(Singleton(5))
					close(returned)
				}()
				select {
				case <-returned:
					t.Fatal("WaitForReaders returned while a covered critical section was open")
				case <-time.After(20 * time.Millisecond):
				}
				close(release)
				select {
				case <-returned:
				case <-time.After(10 * time.Second):
					t.Fatalf("tuned (%s) WaitForReaders did not return after the reader exited", pname)
				}
			})
		}
	}
}
