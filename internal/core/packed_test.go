package core

import (
	"sync"
	"testing"
	"time"

	"prcu/internal/obs"
)

func TestPackedOngoing(t *testing.T) {
	cases := []struct {
		name  string
		c, gp uint32
		want  bool
	}{
		{"offline", 0, 4, false},
		{"offline stale epoch", 2, 4, false},
		{"active old epoch", 2 | packedActive, 4, true},
		{"active current epoch", 4 | packedActive, 4, false},
		{"active future epoch", 6 | packedActive, 4, false},
		// Wraparound: a reader that entered just before the epoch wrapped
		// is still "older" under signed comparison.
		{"active across wrap", (^uint32(1) - 2) | packedActive, 2, true},
		{"fresh across wrap", 2 | packedActive, ^uint32(1), false},
	}
	for _, c := range cases {
		if got := packedOngoing(c.c, c.gp); got != c.want {
			t.Errorf("%s: packedOngoing(%#x, %#x) = %v, want %v", c.name, c.c, c.gp, got, c.want)
		}
	}
}

func TestPackedEnterPublishesEpoch(t *testing.T) {
	p := NewPacked(4)
	rd, err := p.Register()
	if err != nil {
		t.Fatal(err)
	}
	g := p.gp.Load()
	if g&packedActive != 0 {
		t.Fatalf("global epoch %#x carries the active bit", g)
	}
	rd.Enter(9)
	if w := rd.(*packedReader).word.Load(); w != g|packedActive {
		t.Fatalf("word after Enter = %#x, want %#x", w, g|packedActive)
	}
	rd.Exit(9)
	if w := rd.(*packedReader).word.Load(); w != 0 {
		t.Fatalf("word after Exit = %#x, want 0", w)
	}
	rd.Unregister()
}

func TestPackedWaitAdvancesEpochTwice(t *testing.T) {
	p := NewPacked(4)
	g0 := p.gp.Load()
	p.WaitForReaders(All())
	if g1 := p.gp.Load(); g1 != g0+2*packedEpochInc {
		t.Fatalf("epoch after wait = %#x, want %#x (two flips)", g1, g0+2*packedEpochInc)
	}
}

// TestPackedWaitSkipsQuiescentSlots checks the active-flag gating via the
// wait metrics: registered-but-quiescent readers are scanned (one load
// each, both phases) but never waited on.
func TestPackedWaitSkipsQuiescentSlots(t *testing.T) {
	p := NewPacked(8)
	p.SetMetrics(obs.New())
	var rds []Reader
	for i := 0; i < 3; i++ {
		rd, err := p.Register()
		if err != nil {
			t.Fatal(err)
		}
		rd.Enter(Value(i))
		rd.Exit(Value(i))
		rds = append(rds, rd)
	}
	p.WaitForReaders(All())
	s := p.Stats()
	if s.Waits != 1 || s.ReadersScanned != 6 || s.ReadersWaited != 0 {
		t.Fatalf("waits=%d scanned=%d waited=%d, want 1/6/0", s.Waits, s.ReadersScanned, s.ReadersWaited)
	}
	for _, rd := range rds {
		rd.Unregister()
	}
}

// TestPackedConcurrentWaitersNoMutex drives many concurrent waiters with
// reader churn: unlike URCU there is no writer lock, so every waiter
// flips and drains independently — the test asserts they all terminate
// and the safety property holds throughout (the harness checks exits).
func TestPackedConcurrentWaitersNoMutex(t *testing.T) {
	p := NewPacked(16)
	h := newSafetyHarness(p, 6)
	for i := 0; i < 6; i++ {
		id := i
		h.runReader(t, id, func(i int) Value { return Value((id*13 + i) % 16) })
	}
	for i := 0; i < 6; i++ {
		h.runWaiter(t, All(), scale(150, 50))
	}
	h.finish(t, scaleDur(200*time.Millisecond, 60*time.Millisecond))
}

// TestPackedEpochWraparound pre-positions the global epoch just below
// the 32-bit wrap and verifies grace periods stay correct across it: a
// pre-wrap reader blocks a post-wrap wait, and post-wrap quiescent
// readers do not.
func TestPackedEpochWraparound(t *testing.T) {
	p := NewPacked(8)
	p.gp.Store(^uint32(1) - 4*packedEpochInc) // even, 4 flips below wrap
	rd, err := p.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1)
	for i := 0; i < 3; i++ { // push the epoch across the wrap
		returned := make(chan struct{})
		go func() {
			p.WaitForReaders(All())
			close(returned)
		}()
		select {
		case <-returned:
			t.Fatalf("wait %d returned while a pre-wrap section was open", i)
		case <-time.After(20 * time.Millisecond):
		}
		rd.Exit(1)
		select {
		case <-returned:
		case <-time.After(10 * time.Second):
			t.Fatalf("wait %d did not return after the reader exited", i)
		}
		rd.Enter(1)
	}
	rd.Exit(1)
	p.WaitForReaders(All())
	rd.Unregister()
}

// TestPackedStalledReaders checks the watchdog probe names exactly the
// slots a wedged wait is blocked on.
func TestPackedStalledReaders(t *testing.T) {
	p := NewPacked(8)
	blocker, err := p.Register()
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := p.Register()
	if err != nil {
		t.Fatal(err)
	}
	blocker.Enter(5)
	var wg sync.WaitGroup
	wg.Add(1)
	released := make(chan struct{})
	go func() {
		defer wg.Done()
		p.WaitForReaders(All())
		close(released)
	}()
	// Give the wait time to flip; the blocker's epoch is then stale.
	deadline := time.After(5 * time.Second)
	for {
		if st := p.stalledReaders(All()); len(st) == 1 && st[0].Slot == blocker.(*packedReader).slot {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stalledReaders = %+v, want exactly the blocker's slot", p.stalledReaders(All()))
		default:
			time.Sleep(time.Millisecond)
		}
	}
	blocker.Exit(5)
	wg.Wait()
	<-released
	blocker.Unregister()
	bystander.Unregister()
}
