// Package core implements Predicate RCU (PRCU) and the baseline RCU
// algorithms it is evaluated against in
//
//	Maya Arbel and Adam Morrison.
//	"Predicate RCU: An RCU for Scalable Concurrent Updates." PPoPP 2015.
//
// The package provides seven interchangeable engines behind one interface:
//
//   - EER-PRCU (§4.1): wait-for-readers evaluates the predicate for each
//     reader and waits only for readers it holds for.
//   - D-PRCU (§4.2): readers hash their value into a shared counter table;
//     wait-for-readers drains only the counters the predicate covers.
//   - DEER-PRCU (§4.3): per-reader counter tables; linear scan like EER but
//     without coherence ping-pong between non-conflicting readers/waiters.
//   - Time RCU (§6): time-based quiescence detection for all readers —
//     EER-PRCU without the predicate, the paper's strongest RCU baseline.
//   - URCU (§2.2): Desnoyers et al.'s userspace RCU with a global grace
//     period counter and a global writer lock.
//   - Tree RCU (§2.2): the Linux hierarchical bitmap algorithm, restricted
//     as in the paper's evaluation to treat the states between data
//     structure operations as quiescent.
//   - Dist RCU (§2.2): Arbel–Attiya distributed per-reader counters.
//
// All engines accept the full PRCU interface; the plain-RCU baselines ignore
// the value and predicate arguments, which makes them drop-in comparators.
//
// Memory model. The paper's pseudo code targets x86-TSO plus explicit
// fences. This implementation uses sync/atomic for every shared access,
// which in Go provides sequential consistency — strictly stronger than the
// fence discipline in Algorithms 1–3, so the paper's safety proofs carry
// over directly (see the comments on each engine).
package core
