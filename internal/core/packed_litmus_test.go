package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Memory-ordering litmus tests for the packed reader word. Each test
// realizes one of the classic two-thread shapes whose forbidden outcome
// would appear if Enter/Exit were weakened from Go atomics (seq-cst) to
// plain loads and stores — the exact weakening the C11 original guards
// against with acquire/release plus a seq-cst fence at the epoch flip
// (DESIGN.md, "Packed reader word"). The tests run the shapes many
// thousands of times and are -race clean: every cross-goroutine access
// goes through sync/atomic or the engine itself.

// TestPackedLitmusStoreBuffering is the store-buffering shape, the one
// that makes the seq-cst fence at the flip mandatory:
//
//	reader: word.Store(active)   ; read protected state
//	waiter: gp.Add(flip)         ; word.Load() in the drain scan
//
// The forbidden outcome is both sides missing each other — the waiter's
// scan loading the pre-Enter word while the reader's section is still
// open, which would let a grace period complete around a live reader.
// The reader publishes each section through a seqlock record (odd =
// open, set only after Enter returns; even = closed, set before Exit is
// invoked), and the waiter asserts every covered odd sequence it
// snapshotted before the wait has advanced when the wait returns. The
// critical sections are empty, maximizing the density of Enter/Exit
// stores racing the flip+scan.
func TestPackedLitmusStoreBuffering(t *testing.T) {
	p := NewPacked(4)
	var rec csRecord
	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		rd, err := p.Register()
		if err != nil {
			t.Error(err)
			return
		}
		defer rd.Unregister()
		rec.val.Store(1)
		for i := 0; !stop.Load(); i++ {
			rd.Enter(1)
			rec.seq.Add(1) // open
			rec.seq.Add(1) // closed
			rd.Exit(1)
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	waits := scale(3000, 500)
	for n := 0; n < waits; n++ {
		s := rec.seq.Load()
		open := s&1 == 1
		p.WaitForReaders(All())
		if open && rec.seq.Load() == s {
			t.Fatal("store-buffering outcome: wait returned around an open section")
		}
	}
	stop.Store(true)
	<-readerDone
}

// TestPackedLitmusMessagePassing is the message-passing shape chained
// through a grace period — the pattern real reclamation depends on. The
// updater publishes a new slot, points cur at it, waits, then poisons
// the retired slot:
//
//	updater: slots[next].Store(g); cur.Store(next); Wait; slots[prev].Store(poison)
//	reader:  Enter; c := cur.Load(); v := slots[c].Load(); Exit
//
// A reader can observe poison only if ordering is broken in one of two
// ways: its Enter store reached the word after the waiter's scan (the
// store-buffering miss above), or its cur.Load moved ahead of Enter and
// read the retired index after the wait that should have covered it.
// With seq-cst atomics both are impossible: a reader the wait skipped
// entered after the flip, therefore loads cur after the updater's
// cur.Store, therefore reads the fresh slot.
func TestPackedLitmusMessagePassing(t *testing.T) {
	p := NewPacked(4)
	const poison = -1
	var slots [2]atomic.Int64
	var cur atomic.Int32
	var stop atomic.Bool
	fail := make(chan string, 4)
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			rd, err := p.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer rd.Unregister()
			for i := 0; !stop.Load(); i++ {
				rd.Enter(0)
				c := cur.Load()
				v := slots[c].Load()
				rd.Exit(0)
				if v == poison {
					select {
					case fail <- "message-passing outcome: read a poisoned slot inside a section":
					default:
					}
					return
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	iters := scale(2000, 300)
	for i := 0; i < iters; i++ {
		next := 1 - cur.Load()
		slots[next].Store(int64(i))
		cur.Store(next)
		p.WaitForReaders(All())
		slots[1-next].Store(poison)
		select {
		case msg := <-fail:
			t.Fatal(msg)
		default:
		}
	}
	stop.Store(true)
	<-done
	<-done
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestPackedWordNeverTorn proves the single-word pack cannot expose
// active-without-epoch: an observer hammering the word must only ever
// see 0 (quiescent) or active with an epoch no newer than the global
// epoch read *afterwards* — any other state would mean the flag and the
// epoch were published separately. (With two separate cells this
// invariant is unenforceable; the single atomic store is the point.)
func TestPackedWordNeverTorn(t *testing.T) {
	p := NewPacked(4)
	rd, err := p.Register()
	if err != nil {
		t.Fatal(err)
	}
	word := rd.(*packedReader).word
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			rd.Enter(0)
			rd.Exit(0)
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
		rd.Unregister()
	}()
	// Interleave observation with waits so the epoch keeps advancing and
	// the invariant is checked across many distinct epoch values.
	checks := scale(200000, 30000)
	for i := 0; i < checks; i++ {
		c := word.Load()
		g := p.gp.Load() // after the word read: c's epoch must be ≤ g
		if c == 0 {
			continue
		}
		if c&packedActive == 0 {
			t.Fatalf("torn state: nonzero word %#x without the active bit", c)
		}
		if int32((c&^packedActive)-g) > 0 {
			t.Fatalf("torn state: active word %#x carries an epoch newer than global %#x", c, g)
		}
		if i%1000 == 0 {
			p.WaitForReaders(All())
		}
	}
	stop.Store(true)
	<-done
}

// FuzzPackedOps drives a fuzzed schedule of register / enter / exit /
// wait / unregister operations against the packed engine and checks the
// reader words and registry stay consistent. Waits only run while this
// goroutine holds no open section (a self-covered wait would deadlock
// by design). The seed corpus replays under ci.sh's fuzz gate.
func FuzzPackedOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 1, 1, 3, 2, 2, 4, 4})
	f.Add([]byte{1, 3, 2, 4, 0, 1, 2, 3, 4, 0, 1, 2})
	f.Add([]byte{0, 1, 4, 3, 0, 2, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		p := NewPacked(4)
		type slot struct {
			rd   Reader
			open bool
			v    Value
		}
		var readers []*slot
		for _, b := range ops {
			switch b % 5 {
			case 0: // register
				if len(readers) < 4 {
					rd, err := p.Register()
					if err != nil {
						t.Fatalf("register under cap: %v", err)
					}
					readers = append(readers, &slot{rd: rd})
				}
			case 1: // enter
				for _, s := range readers {
					if !s.open {
						s.v = Value(b >> 3)
						s.rd.Enter(s.v)
						s.open = true
						break
					}
				}
			case 2: // exit
				for _, s := range readers {
					if s.open {
						s.rd.Exit(s.v)
						s.open = false
						break
					}
				}
			case 3: // wait — only when this goroutine holds no open section
				// (Packed is a plain RCU: every wait covers all readers,
				// so a wait under our own open section would deadlock.)
				open := false
				for _, s := range readers {
					if s.open {
						open = true
						break
					}
				}
				if !open {
					p.WaitForReaders(Singleton(Value(b >> 3)))
				}
			case 4: // unregister a quiescent reader
				for i, s := range readers {
					if !s.open {
						s.rd.Unregister()
						readers = append(readers[:i], readers[i+1:]...)
						break
					}
				}
			}
		}
		// Close every section, then a full grace period must complete and
		// leave nothing stalled.
		for _, s := range readers {
			if s.open {
				s.rd.Exit(s.v)
				s.open = false
			}
			if w := s.rd.(*packedReader).word.Load(); w != 0 {
				t.Fatalf("quiescent reader word = %#x, want 0", w)
			}
		}
		p.WaitForReaders(All())
		if st := p.stalledReaders(All()); len(st) != 0 {
			t.Fatalf("stalledReaders after quiescence = %+v, want none", st)
		}
		for _, s := range readers {
			s.rd.Unregister()
		}
		if p.LiveReaders() != 0 {
			t.Fatalf("LiveReaders = %d after unregistering all, want 0", p.LiveReaders())
		}
	})
}
