package core

import (
	"context"
	"fmt"

	"prcu/internal/obs"
	"prcu/internal/spin"
	"prcu/internal/tsc"
)

// DefaultNodesPerReader is the per-reader node-array size used in the
// paper's evaluation ("we use 16 elements in our DEER-PRCU implementation",
// §4.3).
const DefaultNodesPerReader = 16

// DEER implements DEER-PRCU (Algorithm 3): EER-PRCU's per-reader,
// time-based quiescence detection combined with D-PRCU's exploitation of
// the value domain. Each reader owns a small array of nodes indexed by
// h_rcu(v); a wait-for-readers on an enumerable predicate touches only the
// nodes covered values hash to, so a reader and a waiter that do not
// conflict semantically do not conflict at the memory level either — the
// coherence ping-pong fix of §4.3.
type DEER struct {
	metered
	resilient
	tunable
	reg   *registry
	clock Clock
	// Each segment's state is one flat []timeNode allocation, carved into
	// per-reader windows of nodesPer entries; each timeNode is cache-line
	// padded already.
	nodesPer int
	mask     uint64
}

// NewDEER returns a DEER-PRCU engine capped at maxReaders concurrent
// readers (0 = grow on demand). nodesPerReader must be a power of two;
// 0 selects the paper's default of 16. If clock is nil the monotonic
// clock is used.
func NewDEER(maxReaders, nodesPerReader int, clock Clock) *DEER {
	if nodesPerReader == 0 {
		nodesPerReader = DefaultNodesPerReader
	}
	if nodesPerReader < 1 || nodesPerReader&(nodesPerReader-1) != 0 {
		panic(fmt.Sprintf("prcu: DEER-PRCU nodes per reader must be a power of two, got %d", nodesPerReader))
	}
	if clock == nil {
		clock = tsc.NewMonotonic()
	}
	d := &DEER{
		clock:    clock,
		nodesPer: nodesPerReader,
		mask:     uint64(nodesPerReader - 1),
	}
	d.reg = newRegistry(maxReaders, func(base, size int) any {
		return newTimeNodeSeg(size * nodesPerReader)
	})
	return d
}

// Name implements RCU.
func (d *DEER) Name() string { return "DEER-PRCU" }

// MaxReaders implements RCU.
func (d *DEER) MaxReaders() int { return d.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (d *DEER) LiveReaders() int { return d.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (d *DEER) SlotCapacity() int { return d.reg.capacity() }

// NodesPerReader returns the per-reader node-array size.
func (d *DEER) NodesPerReader() int { return d.nodesPer }

// readerTable returns the node window of the reader at in-segment index i.
func (d *DEER) readerTable(sg *segment, i int) []timeNode {
	return sg.state.([]timeNode)[i*d.nodesPer : (i+1)*d.nodesPer]
}

type deerReader struct {
	readerGuard
	d     *DEER
	table []timeNode
	lane  *obs.ReaderLane
	slot  int
}

// Register implements RCU.
func (d *DEER) Register() (Reader, error) {
	slot, sg, err := d.reg.acquire()
	if err != nil {
		return nil, err
	}
	t := d.readerTable(sg, slot-sg.base)
	for i := range t {
		t[i].time.Store(tsc.Infinity)
	}
	return &deerReader{d: d, table: t, lane: d.lane(slot), slot: slot}, nil
}

// Enter implements Reader (Algorithm 3 lines 3–6). The value is stored to
// support general predicates (§4.3).
func (r *deerReader) Enter(v Value) {
	r.check()
	n := &r.table[hashValue(v)&r.d.mask]
	n.value.Store(v)
	n.time.Store(r.d.clock.Now())
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader (Algorithm 3 lines 7–8).
func (r *deerReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.table[hashValue(v)&r.d.mask].time.Store(tsc.Infinity)
}

// Do implements Reader.
func (r *deerReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *deerReader) Unregister() {
	r.closing()
	for i := range r.table {
		if r.table[i].time.Load() != tsc.Infinity {
			panic("prcu: Unregister inside a read-side critical section")
		}
	}
	r.markClosed()
	r.d.reg.release(r.slot)
	r.table = nil
}

// WaitForReaders implements RCU (Algorithm 3 lines 9–18). For an enumerable
// predicate it scans, per reader, only the nodes covered values hash to;
// for a general predicate it scans all nodes of each reader's (small)
// array, evaluating P on the posted value, as §4.3 describes.
//
// Per-node waiting uses EER's termination rule: stop once time > t0. The
// pseudo code's lines 16–18 as printed (break on t > t0, then break on
// t != Infinity) would never wait; the per-node single-writer argument of
// Proposition 1 applies verbatim here — a pre-existing covered critical
// section stored t <= t0 in its node, and the node's time can only move
// past t0 via that section's exit or a later re-entry, both of which mean
// the pre-existing section has exited.
func (d *DEER) WaitForReaders(p Predicate) {
	if st := d.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		d.waitReaders(p, newControl(nil, st, p, d))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	t0 := d.clock.Now()
	w := d.waiter()
	var scanned, waited, parked uint64
	d.reg.forEachActive(func(sg *segment, i int) {
		scanned++
		readerWaited, readerParked := false, false
		// The blame sample brackets the whole per-reader table scan — the
		// per-node waits dominate it — and is only charged if the scan
		// actually blocked on one of this reader's nodes.
		bs := m.BlameStart(&start)
		table := d.readerTable(sg, i)
		if p.Enumerable() {
			var visited uint64 // nodesPer <= 64 covered by one word
			p.ForEach(func(v Value) bool {
				idx := hashValue(v) & d.mask
				if visited&(1<<idx) != 0 {
					return true
				}
				visited |= 1 << idx
				if looped, _ := d.waitAtNode(&table[idx], t0, p, &w, nil); looped {
					readerWaited = true
					readerParked = readerParked || w.Yielded()
				}
				return true
			})
		} else {
			for i := range table {
				if looped, _ := d.waitAtNode(&table[i], t0, p, &w, nil); looped {
					readerWaited = true
					readerParked = readerParked || w.Yielded()
				}
			}
		}
		if readerWaited {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if readerParked {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
func (d *DEER) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := d.control(ctx, p, d)
	if err := wc.pre(); err != nil {
		return err
	}
	return d.waitReaders(p, wc)
}

func (d *DEER) waitReaders(p Predicate, wc *waitControl) error {
	m := d.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	t0 := d.clock.Now()
	w := d.waiter()
	var scanned, waited, parked uint64
	var werr error
	d.reg.forEachActive(func(sg *segment, i int) {
		if werr != nil {
			return
		}
		scanned++
		readerWaited, readerParked := false, false
		// See the fast path: the sample brackets the reader's table scan.
		bs := m.BlameStart(&start)
		table := d.readerTable(sg, i)
		if p.Enumerable() {
			var visited uint64 // nodesPer <= 64 covered by one word
			p.ForEach(func(v Value) bool {
				idx := hashValue(v) & d.mask
				if visited&(1<<idx) != 0 {
					return true
				}
				visited |= 1 << idx
				looped, err := d.waitAtNode(&table[idx], t0, p, &w, wc)
				if looped {
					readerWaited = true
					readerParked = readerParked || w.Yielded()
				}
				if err != nil {
					werr = err
					return false
				}
				return true
			})
		} else {
			for i := range table {
				looped, err := d.waitAtNode(&table[i], t0, p, &w, wc)
				if looped {
					readerWaited = true
					readerParked = readerParked || w.Yielded()
				}
				if err != nil {
					werr = err
					break
				}
			}
		}
		if readerWaited {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if readerParked {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// waitAtNode blocks until node n's pre-existing covered critical section
// (if any) has exited; it reports whether it had to wait at all, and
// surfaces cancellation from wc.
func (d *DEER) waitAtNode(n *timeNode, t0 int64, p Predicate, w *spin.Waiter, wc *waitControl) (bool, error) {
	w.Reset()
	looped := false
	for {
		t := n.time.Load()
		if t > t0 {
			return looped, nil
		}
		if !p.Holds(n.value.Load()) {
			// The critical section currently using this node is on an
			// uncovered (hash-colliding) value; any covered pre-existing
			// section on this node has already exited.
			return looped, nil
		}
		looped = true
		if err := wc.step(w); err != nil {
			return looped, err
		}
	}
}

// stalledReaders implements stallProber: for each active reader, the
// covered open nodes in its table (one entry per open node, since
// distinct values can occupy distinct nodes of the same reader).
func (d *DEER) stalledReaders(p Predicate) []StalledReader {
	now := d.clock.Now()
	var out []StalledReader
	d.reg.forEachActive(func(sg *segment, i int) {
		table := d.readerTable(sg, i)
		for j := range table {
			t := table[j].time.Load()
			if t == tsc.Infinity {
				continue
			}
			v := table[j].value.Load()
			if !p.Holds(v) {
				continue
			}
			out = append(out, StalledReader{
				Slot: sg.base + i, Value: v, HasValue: true, OpenFor: clampDur(now - t),
			})
		}
	})
	return out
}
