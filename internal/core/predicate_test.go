package core

import (
	"testing"
	"testing/quick"
)

func TestAllPredicate(t *testing.T) {
	p := All()
	if p.Kind() != KindAll {
		t.Fatalf("kind = %v, want KindAll", p.Kind())
	}
	if p.Enumerable() {
		t.Fatal("wildcard must not be enumerable")
	}
	for _, v := range []Value{0, 1, 42, 1 << 63} {
		if !p.Holds(v) {
			t.Fatalf("All must hold for %d", v)
		}
	}
	if p.ForEach(func(Value) bool { return true }) {
		t.Fatal("ForEach on wildcard must report not enumerable")
	}
	if _, ok := p.Count(); ok {
		t.Fatal("Count on wildcard must report not enumerable")
	}
}

func TestZeroValuePredicateIsWildcard(t *testing.T) {
	var p Predicate
	if p.Kind() != KindAll || !p.Holds(12345) {
		t.Fatal("zero-value Predicate must behave as the wildcard")
	}
}

func TestSingletonPredicate(t *testing.T) {
	p := Singleton(9)
	if !p.Holds(9) || p.Holds(8) || p.Holds(10) {
		t.Fatal("singleton membership wrong")
	}
	if !p.Enumerable() {
		t.Fatal("singleton must be enumerable")
	}
	var got []Value
	p.ForEach(func(v Value) bool { got = append(got, v); return true })
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("ForEach = %v, want [9]", got)
	}
	if n, ok := p.Count(); !ok || n != 1 {
		t.Fatalf("Count = %d,%v, want 1,true", n, ok)
	}
}

func TestIntervalPredicate(t *testing.T) {
	p := Interval(5, 8)
	for v := Value(0); v < 12; v++ {
		want := v >= 5 && v <= 8
		if p.Holds(v) != want {
			t.Fatalf("Holds(%d) = %v, want %v", v, p.Holds(v), want)
		}
	}
	var got []Value
	p.ForEach(func(v Value) bool { got = append(got, v); return true })
	want := []Value{5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	if n, ok := p.Count(); !ok || n != 4 {
		t.Fatalf("Count = %d,%v, want 4,true", n, ok)
	}
}

func TestIntervalSingle(t *testing.T) {
	p := Interval(3, 3)
	if p.Kind() != KindSingleton {
		t.Fatalf("Interval(3,3) kind = %v, want KindSingleton", p.Kind())
	}
}

func TestIntervalReversedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Interval(hi, lo) must panic")
		}
	}()
	Interval(8, 5)
}

func TestFuncPredicate(t *testing.T) {
	p := Func(func(v Value) bool { return v%3 == 0 })
	if !p.Holds(9) || p.Holds(10) {
		t.Fatal("func predicate evaluation wrong")
	}
	if p.Enumerable() {
		t.Fatal("func predicate must not be enumerable")
	}
}

func TestFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Func(nil) must panic")
		}
	}()
	Func(nil)
}

func TestIterablePredicate(t *testing.T) {
	// Even values 10, 12, ..., 20.
	p := Iterable(10, 20, func(v Value) Value { return v + 2 })
	var got []Value
	p.ForEach(func(v Value) bool { got = append(got, v); return true })
	if len(got) != 6 || got[0] != 10 || got[5] != 20 {
		t.Fatalf("ForEach = %v", got)
	}
	if !p.Holds(14) || p.Holds(13) || p.Holds(22) {
		t.Fatal("iterable membership wrong")
	}
	if n, ok := p.Count(); !ok || n != 6 {
		t.Fatalf("Count = %d,%v, want 6,true", n, ok)
	}
}

func TestIterableEarlyStop(t *testing.T) {
	p := Interval(0, 100)
	n := 0
	p.ForEach(func(Value) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d values, want 5", n)
	}
}

func TestIterableRunawayIteratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("an iterator that never reaches vk must panic, not hang")
		}
	}()
	p := Iterable(0, 1, func(v Value) Value { return v + 2 }) // skips over vk=1
	p.ForEach(func(Value) bool { return true })
}

func TestIntervalHoldsMatchesEnumeration(t *testing.T) {
	// Property: for intervals, Holds(v) agrees with membership in the
	// enumerated set, for all probes.
	f := func(lo8, width8, probe8 uint8) bool {
		lo, width := Value(lo8), Value(width8%32)
		p := Interval(lo, lo+width)
		probe := Value(probe8)
		inSet := false
		p.ForEach(func(v Value) bool {
			if v == probe {
				inSet = true
				return false
			}
			return true
		})
		return p.Holds(probe) == inSet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashValueSpreads(t *testing.T) {
	// Property: sequential values must not pile into few buckets — the
	// D-PRCU table relies on h_rcu spreading adjacent keys.
	const buckets = 64
	counts := make([]int, buckets)
	const n = 64 * 1024
	for v := Value(0); v < n; v++ {
		counts[hashValue(v)%buckets]++
	}
	mean := n / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d holds %d of %d values (mean %d): bad spread", b, c, n, mean)
		}
	}
}

func TestHashValueDeterministic(t *testing.T) {
	f := func(v uint64) bool { return hashValue(v) == hashValue(v) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
