package core

import "sync"

// Async provides call_rcu-style deferred execution (§2.1 "Asynchronous
// wait-for-readers"): Call records a callback and returns immediately; a
// background worker runs the callback after a grace period covering its
// predicate. As the paper notes, this trades the caller's blocking for
// unbounded deferred work, so Barrier and Close let callers re-establish
// strict bounds when they need them.
//
// Unlike classic call_rcu — which batches all callbacks behind one global
// grace period — the worker waits per predicate, preserving PRCU's cheap
// targeted waits. Callbacks sharing the exact moment of submission still
// amortize channel and scheduling overhead by draining as a batch.
type Async struct {
	rcu RCU

	mu      sync.Mutex
	pending []asyncCB
	closed  bool
	kick    chan struct{}
	idle    *sync.Cond
	inFlite int

	done chan struct{}
}

type asyncCB struct {
	pred Predicate
	fn   func()
}

// NewAsync starts a deferral worker on top of r. Close must be called to
// release the worker.
func NewAsync(r RCU) *Async {
	a := &Async{
		rcu:  r,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	a.idle = sync.NewCond(&a.mu)
	go a.worker()
	return a
}

// Call schedules fn to run after a grace period covering p. It never
// blocks for the grace period. Call panics after Close.
func (a *Async) Call(p Predicate, fn func()) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("prcu: Call on closed Async")
	}
	a.pending = append(a.pending, asyncCB{pred: p, fn: fn})
	a.mu.Unlock()
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

// Barrier blocks until every callback submitted before it has executed.
func (a *Async) Barrier() {
	a.mu.Lock()
	for len(a.pending) > 0 || a.inFlite > 0 {
		a.idle.Wait()
	}
	a.mu.Unlock()
}

// Pending returns the number of callbacks not yet executed.
func (a *Async) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending) + a.inFlite
}

// Close drains all outstanding callbacks (running each after its grace
// period) and stops the worker. Close is idempotent.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed = true
	a.mu.Unlock()
	select {
	case a.kick <- struct{}{}:
	default:
	}
	<-a.done
}

func (a *Async) worker() {
	defer close(a.done)
	for {
		a.mu.Lock()
		for len(a.pending) == 0 && !a.closed {
			a.mu.Unlock()
			<-a.kick
			a.mu.Lock()
		}
		batch := a.pending
		a.pending = nil
		a.inFlite = len(batch)
		closed := a.closed
		a.mu.Unlock()

		for _, cb := range batch {
			a.rcu.WaitForReaders(cb.pred)
			cb.fn()
			a.mu.Lock()
			a.inFlite--
			if a.inFlite == 0 && len(a.pending) == 0 {
				a.idle.Broadcast()
			}
			a.mu.Unlock()
		}
		if closed {
			a.mu.Lock()
			remaining := len(a.pending)
			a.mu.Unlock()
			if remaining == 0 {
				return
			}
		}
	}
}
