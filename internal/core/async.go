package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// Async provides call_rcu-style deferred execution (§2.1 "Asynchronous
// wait-for-readers"): Call records a callback and returns immediately; a
// background worker runs the callback after a grace period covering its
// predicate. As the paper notes, this trades the caller's blocking for
// unbounded deferred work, so Barrier and Close let callers re-establish
// strict bounds when they need them.
//
// Unlike classic call_rcu — which batches all callbacks behind one global
// grace period — the worker waits per predicate, preserving PRCU's cheap
// targeted waits. Callbacks sharing the exact moment of submission still
// amortize channel and scheduling overhead by draining as a batch.
//
// Shutdown contract: Close drains every outstanding callback, running
// each after its grace period, and only then stops the worker — a clean
// Close never drops work. CloseCtx bounds that drain by a context, for
// shutting down on top of a wedged engine: when the context expires, all
// in-progress and remaining waits are cancelled, error-aware callbacks
// (CallCtx) run with the cancellation error, and plain callbacks are
// dropped (counted by Dropped) rather than run after an incomplete grace
// period. Both are idempotent; concurrent and repeated calls all block
// until the worker has stopped.
type Async struct {
	rcu RCU

	// workCtx is cancelled to abort all waits at bounded shutdown; the
	// worker survives cancelled waits and keeps draining (fast-failing)
	// until the queue empties.
	workCtx    context.Context
	cancelWork context.CancelFunc

	mu      sync.Mutex
	pending []asyncCB
	closed  bool
	kick    chan struct{}
	idle    *sync.Cond
	inFlite int

	// dropped counts callbacks whose grace period did not complete and
	// that had no error handler to take delivery of the failure.
	dropped atomic.Uint64

	done chan struct{}
}

type asyncCB struct {
	pred Predicate
	// ctx, when non-nil, bounds this callback's grace-period wait.
	ctx context.Context
	// Exactly one of fn/fnErr is set: fn runs only after a completed
	// grace period; fnErr always runs and receives the wait's error.
	fn    func()
	fnErr func(error)
}

// NewAsync starts a deferral worker on top of r. Close must be called to
// release the worker.
func NewAsync(r RCU) *Async {
	a := &Async{
		rcu:  r,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	a.workCtx, a.cancelWork = context.WithCancel(context.Background())
	a.idle = sync.NewCond(&a.mu)
	go a.worker()
	return a
}

// Call schedules fn to run after a grace period covering p. It never
// blocks for the grace period. fn runs only if its grace period
// completes; if the wait is cancelled by a bounded shutdown the callback
// is dropped (see Dropped) — it must never observe an incomplete grace
// period. Call panics after Close.
func (a *Async) Call(p Predicate, fn func()) {
	a.enqueue(asyncCB{pred: p, fn: fn})
}

// CallCtx schedules fn to run once a grace period covering p completes
// or ctx is cancelled, whichever comes first: fn receives nil after a
// full grace period, or the context's error when the wait was abandoned —
// in which case the grace period did NOT complete and fn must not
// reclaim. CallCtx panics after Close.
func (a *Async) CallCtx(ctx context.Context, p Predicate, fn func(error)) {
	a.enqueue(asyncCB{pred: p, ctx: ctx, fnErr: fn})
}

func (a *Async) enqueue(cb asyncCB) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("prcu: Call on closed Async")
	}
	a.pending = append(a.pending, cb)
	a.mu.Unlock()
	a.kickWorker()
}

func (a *Async) kickWorker() {
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

// Barrier blocks until every callback submitted before it has been
// resolved — executed, or (under a bounded shutdown) dropped.
func (a *Async) Barrier() {
	a.mu.Lock()
	for len(a.pending) > 0 || a.inFlite > 0 {
		a.idle.Wait()
	}
	a.mu.Unlock()
}

// Pending returns the number of callbacks not yet resolved.
func (a *Async) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending) + a.inFlite
}

// Dropped returns the number of plain Call callbacks abandoned because
// their grace-period wait was cancelled (CallCtx callbacks are never
// dropped — they take delivery of the error instead).
func (a *Async) Dropped() uint64 { return a.dropped.Load() }

// Close drains all outstanding callbacks (running each after its grace
// period) and stops the worker. Close is idempotent: a second Close is a
// no-op that blocks until the first drain finishes.
func (a *Async) Close() { _ = a.CloseCtx(context.Background()) }

// CloseCtx is Close bounded by ctx: if the drain has not finished when
// ctx expires — a wedged reader can stall grace periods indefinitely —
// every remaining wait is cancelled, error-aware callbacks run with the
// cancellation error, plain callbacks are dropped, the worker stops, and
// CloseCtx returns ctx.Err(). A nil error means a complete, clean drain.
func (a *Async) CloseCtx(ctx context.Context) error {
	a.mu.Lock()
	already := a.closed
	a.closed = true
	a.mu.Unlock()
	if !already {
		a.kickWorker()
	}
	var cdone <-chan struct{}
	if ctx != nil {
		cdone = ctx.Done()
	}
	select {
	case <-a.done:
		return nil
	case <-cdone:
		a.cancelWork()
		<-a.done
		return ctx.Err()
	}
}

// waitFor runs cb's grace-period wait, bounded by the callback's own
// context (if any) and by the shutdown context.
func (a *Async) waitFor(cb asyncCB) error {
	if cb.ctx == nil {
		return a.rcu.WaitForReadersCtx(a.workCtx, cb.pred)
	}
	// Merge: cancelled when either cb.ctx or workCtx is.
	mctx, cancel := context.WithCancel(cb.ctx)
	defer cancel()
	stop := context.AfterFunc(a.workCtx, cancel)
	defer stop()
	return a.rcu.WaitForReadersCtx(mctx, cb.pred)
}

func (a *Async) worker() {
	defer close(a.done)
	for {
		a.mu.Lock()
		for len(a.pending) == 0 && !a.closed {
			a.mu.Unlock()
			<-a.kick
			a.mu.Lock()
		}
		batch := a.pending
		a.pending = nil
		a.inFlite = len(batch)
		closed := a.closed
		a.mu.Unlock()

		for _, cb := range batch {
			err := a.waitFor(cb)
			switch {
			case cb.fnErr != nil:
				cb.fnErr(err)
			case err == nil:
				cb.fn()
			default:
				// The grace period did not complete; running fn now
				// could free memory readers still hold. Drop it.
				a.dropped.Add(1)
			}
			a.mu.Lock()
			a.inFlite--
			if a.inFlite == 0 && len(a.pending) == 0 {
				a.idle.Broadcast()
			}
			a.mu.Unlock()
		}
		if closed {
			a.mu.Lock()
			remaining := len(a.pending)
			a.mu.Unlock()
			if remaining == 0 {
				return
			}
		}
	}
}
