package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// RCU is the PRCU interface of §3.1, shared by every engine in this
// package. The plain-RCU baselines (URCU, Tree RCU, Time RCU, Dist RCU)
// implement it by ignoring values and predicates, which is exactly the
// conservative behavior the paper compares PRCU against.
type RCU interface {
	// Register allocates a reader slot (the paper's per-thread node).
	// Each concurrent reader goroutine needs its own Reader; a Reader must
	// not be used concurrently. Register fails with ErrTooManyReaders once
	// MaxReaders slots are live.
	Register() (Reader, error)

	// WaitForReaders blocks until every read-side critical section on a
	// value v with p(v) = 1 that was entered before this call has exited
	// (the PRCU safety property, §3.1). Baseline engines wait for all
	// readers regardless of p.
	WaitForReaders(p Predicate)

	// MaxReaders returns the slot capacity the engine was built with.
	MaxReaders() int

	// Name identifies the engine ("EER-PRCU", "URCU", ...), matching the
	// labels used in the paper's figures.
	Name() string

	// Stats returns an aggregated snapshot of the engine's internal
	// observability metrics. With no Metrics attached (the default) it
	// returns a zero Snapshot whose Enabled field is false.
	Stats() obs.Snapshot
}

// MetricsCarrier is implemented by every engine in this package:
// attaching a *obs.Metrics turns on engine-internal grace-period and
// reader metrics. Attach before traffic starts — the pointer is read
// without synchronization on the hot paths.
type MetricsCarrier interface {
	SetMetrics(*obs.Metrics)
	Metrics() *obs.Metrics
}

// metered is the observability hook point embedded by every engine. The
// met pointer is nil while observability is disabled, which every hook
// guards with a single predictable branch.
type metered struct {
	met *obs.Metrics
}

// SetMetrics implements MetricsCarrier.
func (m *metered) SetMetrics(mm *obs.Metrics) { m.met = mm }

// Metrics implements MetricsCarrier.
func (m *metered) Metrics() *obs.Metrics { return m.met }

// Stats implements RCU (obs.Metrics.Snapshot is nil-safe).
func (m *metered) Stats() obs.Snapshot { return m.met.Snapshot() }

// lane returns the reader lane for slot, or nil when disabled.
func (m *metered) lane(slot int) *obs.ReaderLane {
	if m.met == nil {
		return nil
	}
	return m.met.Lane(slot)
}

// Reader is one registered reader's handle. Enter and Exit delimit a
// read-side critical section on a value (§3.1). Critical sections must not
// nest, and Exit must receive the same value as the matching Enter.
type Reader interface {
	// Enter begins a read-side critical section on v.
	Enter(v Value)
	// Exit ends the read-side critical section on v.
	Exit(v Value)
	// Unregister releases the slot. The reader must be quiescent (outside
	// any critical section) and must not be used afterwards.
	Unregister()
}

// ErrTooManyReaders is returned by Register when all reader slots are live.
var ErrTooManyReaders = errors.New("prcu: too many registered readers")

// registry manages reader slot allocation for the engines. Slot state that
// wait-for-readers scans (the "active" flags) is atomic; allocation
// bookkeeping is under a mutex since registration is rare.
//
// A released slot is always left quiescent by the owning engine before the
// active flag clears, so a concurrent wait-for-readers scanning it observes
// either an active quiescent slot or an inactive one — both safe to skip.
type registry struct {
	mu     sync.Mutex
	used   []bool
	active []pad.Bool
	// limit is a monotone high-water mark (highest ever active slot + 1);
	// scans iterate [0, limit) and skip inactive slots. Keeping it monotone
	// avoids shrink/reuse races and costs only a cheap flag test per
	// long-dead slot.
	limit atomic.Int32
	count atomic.Int32
}

func newRegistry(maxReaders int) *registry {
	if maxReaders <= 0 {
		panic(fmt.Sprintf("prcu: maxReaders must be positive, got %d", maxReaders))
	}
	return &registry{
		used:   make([]bool, maxReaders),
		active: make([]pad.Bool, maxReaders),
	}
}

func (r *registry) maxReaders() int { return len(r.used) }

// acquire reserves a free slot and marks it active.
func (r *registry) acquire() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.used {
		if !r.used[i] {
			r.used[i] = true
			r.active[i].Store(true)
			if int32(i+1) > r.limit.Load() {
				r.limit.Store(int32(i + 1))
			}
			r.count.Add(1)
			return i, nil
		}
	}
	return 0, ErrTooManyReaders
}

// release returns slot i to the free pool. The caller must have already
// reset the engine-specific slot state to quiescent.
func (r *registry) release(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.used[i] {
		panic(fmt.Sprintf("prcu: double release of reader slot %d", i))
	}
	r.active[i].Store(false)
	r.used[i] = false
	r.count.Add(-1)
}

// scanLimit returns the exclusive upper bound for slot scans.
func (r *registry) scanLimit() int { return int(r.limit.Load()) }

// isActive reports whether slot i currently belongs to a registered reader.
func (r *registry) isActive(i int) bool { return r.active[i].Load() }

// liveReaders returns the number of registered readers.
func (r *registry) liveReaders() int { return int(r.count.Load()) }
