package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// RCU is the PRCU interface of §3.1, shared by every engine in this
// package. The plain-RCU baselines (URCU, Tree RCU, Time RCU, Dist RCU)
// implement it by ignoring values and predicates, which is exactly the
// conservative behavior the paper compares PRCU against.
type RCU interface {
	// Register allocates a reader slot (the paper's per-thread node).
	// Each concurrent reader goroutine needs its own Reader; a Reader must
	// not be used concurrently. With no cap configured the registry grows
	// on demand and Register never fails; with a cap, Register fails with
	// ErrTooManyReaders once the cap is reached.
	Register() (Reader, error)

	// WaitForReaders blocks until every read-side critical section on a
	// value v with p(v) = 1 that was entered before this call has exited
	// (the PRCU safety property, §3.1). Baseline engines wait for all
	// readers regardless of p.
	WaitForReaders(p Predicate)

	// WaitForReadersCtx is WaitForReaders bounded by ctx: it returns nil
	// after a full grace period on p, or ctx.Err() as soon as ctx is
	// cancelled or its deadline passes. An error return means the grace
	// period did NOT complete — the caller must not reclaim. Cancellation
	// is polled on the wait loops' park/backoff transitions, so a wait
	// blocked on a stalled reader returns within a scheduler yield or two
	// of the deadline. A nil or never-cancelled ctx behaves exactly like
	// WaitForReaders.
	WaitForReadersCtx(ctx context.Context, p Predicate) error

	// MaxReaders returns the configured reader cap, or 0 when the engine
	// grows its reader registry on demand.
	MaxReaders() int

	// Name identifies the engine ("EER-PRCU", "URCU", ...), matching the
	// labels used in the paper's figures.
	Name() string

	// Stats returns an aggregated snapshot of the engine's internal
	// observability metrics. With no Metrics attached (the default) it
	// returns a zero Snapshot whose Enabled field is false.
	Stats() obs.Snapshot
}

// MetricsCarrier is implemented by every engine in this package:
// attaching a *obs.Metrics turns on engine-internal grace-period and
// reader metrics. Attach before traffic starts — the pointer is read
// without synchronization on the hot paths.
type MetricsCarrier interface {
	SetMetrics(*obs.Metrics)
	Metrics() *obs.Metrics
}

// SlotCapacitor is implemented by every engine backed by the segmented
// reader registry: SlotCapacity reports the number of reader slots
// currently allocated (≥ live readers, grows on demand). Observability
// attachment uses it to presize per-reader metric lanes for uncapped
// engines, whose MaxReaders is 0.
type SlotCapacitor interface {
	SlotCapacity() int
}

// ReaderCounter is implemented by every engine backed by the segmented
// reader registry: LiveReaders reports the number of currently
// registered readers. Live migration polls it to detect the source
// engine's registry draining empty once new readers are redirected to
// the target.
type ReaderCounter interface {
	LiveReaders() int
}

// metered is the observability hook point embedded by every engine. The
// met pointer is nil while observability is disabled, which every hook
// guards with a single predictable branch.
type metered struct {
	met *obs.Metrics
}

// SetMetrics implements MetricsCarrier.
func (m *metered) SetMetrics(mm *obs.Metrics) { m.met = mm }

// Metrics implements MetricsCarrier.
func (m *metered) Metrics() *obs.Metrics { return m.met }

// Stats implements RCU (obs.Metrics.Snapshot is nil-safe).
func (m *metered) Stats() obs.Snapshot { return m.met.Snapshot() }

// lane returns the reader lane for slot, or nil when disabled. The lane
// is re-armed for its new owner: slots are recycled, and a recycled
// lane must not smear the previous owner's counts into the next
// reader's per-slot statistics.
func (m *metered) lane(slot int) *obs.ReaderLane {
	if m.met == nil {
		return nil
	}
	l := m.met.Lane(slot)
	l.Recycle()
	return l
}

// Reader is one registered reader's handle. Enter and Exit delimit a
// read-side critical section on a value (§3.1). Critical sections must not
// nest, and Exit must receive the same value as the matching Enter.
type Reader interface {
	// Enter begins a read-side critical section on v.
	Enter(v Value)
	// Exit ends the read-side critical section on v.
	Exit(v Value)
	// Do runs fn inside a read-side critical section on v, guaranteeing
	// Exit even if fn panics (the panic is re-raised). A panicking
	// callback can therefore never leave the section open and wedge
	// every future covering grace period.
	Do(v Value, fn func())
	// Unregister releases the slot. The reader must be quiescent (outside
	// any critical section) and must not be used afterwards; engines panic
	// on a second Unregister or on Enter/Exit after Unregister.
	Unregister()
}

// readerGuard is the misuse defense every engine reader embeds: a second
// Unregister, or any use after Unregister, must panic with a clear
// message rather than corrupt the registry free list or another reader's
// slot. The flag is plain (not atomic): a Reader is owned by a single
// goroutine by contract, so the guard costs one predictable branch.
type readerGuard struct {
	closed bool
}

// check panics if the reader has been unregistered.
func (g *readerGuard) check() {
	if g.closed {
		panic("prcu: use of Reader after Unregister")
	}
}

// closing panics on a repeated Unregister. The caller runs its quiescence
// checks after this (an Unregister rejected mid-critical-section must
// leave the reader usable) and then calls markClosed.
func (g *readerGuard) closing() {
	if g.closed {
		panic("prcu: Reader.Unregister called twice")
	}
}

// markClosed commits the Unregister.
func (g *readerGuard) markClosed() { g.closed = true }

// ErrTooManyReaders is returned by Register when a reader cap is
// configured and all its slots are live. Uncapped engines never return it.
var ErrTooManyReaders = errors.New("prcu: too many registered readers")

// Segment geometry: segSize slots per segment, so one uint64 bitmap per
// segment is the whole free list.
const (
	segShift = 6
	segSize  = 1 << segShift
	segMask  = segSize - 1
)

// segment is one fixed-size block of reader slots. Segments are appended
// to the registry but never moved or freed, so pointers into a segment
// (its active flags and its engine state) stay valid for the lifetime of
// the engine — that is the whole safety argument for growing under
// concurrent WaitForReaders scans.
//
// free is the per-segment lock-free free list: bit i set means slot
// base+i is free. Claiming CASes the lowest set bit away; releasing ORs
// it back. active[i] is scanned by wait-for-readers; a releasing reader
// is always quiescent, so a scan observing a stale flag sees a quiescent
// slot — safe to skip or to wait zero time on.
type segment struct {
	base int // global index of this segment's slot 0 (multiple of segSize)
	size int // valid slots; < segSize only for the last segment of a capped registry
	free atomic.Uint64
	// active flags are padded: they sit on the wait-for-readers scan path
	// and must not false-share with neighboring slots' flags.
	active [segSize]pad.Bool
	// state holds the engine's per-segment slot state (e.g. []timeNode),
	// allocated by the registry's newSeg hook at append time. Immutable
	// after construction; nil for engines with no scanned per-slot state.
	state any
}

// claim grabs a free slot in the segment, marking it active. It returns
// the in-segment index.
func (sg *segment) claim() (int, bool) {
	for {
		f := sg.free.Load()
		if f == 0 {
			return 0, false
		}
		i := bits.TrailingZeros64(f)
		if sg.free.CompareAndSwap(f, f&^(uint64(1)<<uint(i))) {
			sg.active[i].Store(true)
			return i, true
		}
	}
}

// registry manages reader slot allocation for the engines as a growable
// segmented array. The segment list is reached through an atomic pointer
// and only ever grows (copy-on-append under growMu); individual segments
// never move, so concurrent WaitForReaders scans iterate a stable prefix
// without locks or copies. Acquire and release are lock-free segment
// bitmap operations — O(1) amortized, versus the former global mutex
// with an O(MaxReaders) linear scan.
type registry struct {
	// cap, when positive, bounds the total slot count (the engine's
	// MaxReaders); 0 means grow on demand without bound.
	cap int
	// newSeg allocates the engine's per-segment slot state for a new
	// segment covering global slots [base, base+size). May be nil.
	newSeg func(base, size int) any

	segs   atomic.Pointer[[]*segment]
	growMu sync.Mutex
	// hint is the segment index acquire starts probing at — the last
	// segment that had a free slot. Purely a performance hint.
	hint atomic.Int32
	// limit is a monotone high-water mark (highest ever active slot + 1);
	// scans iterate [0, limit) and skip inactive slots. Keeping it monotone
	// avoids shrink/reuse races and costs only a cheap flag test per
	// long-dead slot.
	limit atomic.Int32
	count atomic.Int32
}

// newRegistry returns a registry capped at capReaders slots (0 =
// unbounded), with one segment pre-allocated. newSeg, when non-nil, is
// invoked once per appended segment to allocate engine slot state.
func newRegistry(capReaders int, newSeg func(base, size int) any) *registry {
	if capReaders < 0 {
		panic(fmt.Sprintf("prcu: maxReaders must be non-negative, got %d", capReaders))
	}
	r := &registry{cap: capReaders, newSeg: newSeg}
	empty := make([]*segment, 0)
	r.segs.Store(&empty)
	r.grow(0)
	return r
}

// maxReaders returns the configured cap (0 = unbounded).
func (r *registry) maxReaders() int { return r.cap }

// capacity returns the number of slots currently allocated.
func (r *registry) capacity() int {
	segs := *r.segs.Load()
	if len(segs) == 0 {
		return 0
	}
	last := segs[len(segs)-1]
	return last.base + last.size
}

// segments returns the current segment list. The returned slice is
// immutable; later growth installs a new slice.
func (r *registry) segments() []*segment { return *r.segs.Load() }

// grow appends one segment, unless the cap is exhausted (returns false)
// or another goroutine already grew past the seen segment count (returns
// true so the caller rescans instead of over-growing).
func (r *registry) grow(seen int) bool {
	r.growMu.Lock()
	defer r.growMu.Unlock()
	segs := *r.segs.Load()
	if len(segs) != seen {
		return true
	}
	base := 0
	if n := len(segs); n > 0 {
		last := segs[n-1]
		base = last.base + last.size
	}
	if r.cap > 0 && base >= r.cap {
		return false
	}
	size := segSize
	if r.cap > 0 && r.cap-base < size {
		// Last segment of a capped registry: expose only the capped
		// remainder as free bits so acquire exhausts at exactly cap.
		size = r.cap - base
	}
	sg := &segment{base: base, size: size}
	if size == segSize {
		sg.free.Store(^uint64(0))
	} else {
		sg.free.Store(uint64(1)<<uint(size) - 1)
	}
	if r.newSeg != nil {
		sg.state = r.newSeg(base, size)
	}
	next := make([]*segment, len(segs)+1)
	copy(next, segs)
	next[len(segs)] = sg
	r.segs.Store(&next)
	return true
}

// acquire reserves a free slot and marks it active, growing the segment
// list when every existing segment is full.
func (r *registry) acquire() (int, *segment, error) {
	for {
		segs := *r.segs.Load()
		n := len(segs)
		start := int(r.hint.Load())
		if start < 0 || start >= n {
			start = 0
		}
		for k := 0; k < n; k++ {
			si := start + k
			if si >= n {
				si -= n
			}
			sg := segs[si]
			i, ok := sg.claim()
			if !ok {
				continue
			}
			r.hint.Store(int32(si))
			slot := sg.base + i
			for {
				l := r.limit.Load()
				if int32(slot) < l || r.limit.CompareAndSwap(l, int32(slot)+1) {
					break
				}
			}
			r.count.Add(1)
			return slot, sg, nil
		}
		if !r.grow(n) {
			return 0, nil, ErrTooManyReaders
		}
	}
}

// release returns slot to the free pool. The caller must have already
// reset the engine-specific slot state to quiescent.
func (r *registry) release(slot int) {
	segs := *r.segs.Load()
	si := slot >> segShift
	if slot < 0 || si >= len(segs) || slot-segs[si].base >= segs[si].size {
		panic(fmt.Sprintf("prcu: release of unknown reader slot %d", slot))
	}
	sg := segs[si]
	i := slot - sg.base
	bit := uint64(1) << uint(i)
	if sg.free.Load()&bit != 0 {
		panic(fmt.Sprintf("prcu: double release of reader slot %d", slot))
	}
	// Clear active before freeing the slot: once the free bit is visible a
	// new claimant may set active again, and that store must not be
	// overwritten by this release.
	sg.active[i].Store(false)
	for {
		f := sg.free.Load()
		if f&bit != 0 {
			panic(fmt.Sprintf("prcu: double release of reader slot %d", slot))
		}
		if sg.free.CompareAndSwap(f, f|bit) {
			break
		}
	}
	r.hint.Store(int32(si))
	r.count.Add(-1)
}

// scanLimit returns the exclusive upper bound for slot scans.
func (r *registry) scanLimit() int { return int(r.limit.Load()) }

// forEachActive invokes fn for every active slot below the current scan
// limit, handing it the slot's segment and in-segment index. A released
// slot is always left quiescent by the owning engine before its active
// flag clears, so a concurrent scan observing a stale flag sees either an
// active quiescent slot or an inactive one — both safe.
func (r *registry) forEachActive(fn func(sg *segment, i int)) {
	limit := int(r.limit.Load())
	for _, sg := range *r.segs.Load() {
		if sg.base >= limit {
			return
		}
		n := sg.size
		if limit-sg.base < n {
			n = limit - sg.base
		}
		for i := 0; i < n; i++ {
			if sg.active[i].Load() {
				fn(sg, i)
			}
		}
	}
}

// liveReaders returns the number of registered readers.
func (r *registry) liveReaders() int { return int(r.count.Load()) }
