package core

import (
	"context"
	"sync"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// urcuPhase is the grace-period phase bit in the global counter and in
// reader snapshots; urcuCount marks a reader as online (Desnoyers et al.'s
// nest count, fixed at one since critical sections do not nest here).
const (
	urcuPhase uint64 = 1 << 63
	urcuCount uint64 = 1
)

// URCU implements the userspace RCU of Desnoyers et al. (§2.2): a global
// grace-period counter with a phase bit, per-reader snapshots, and a global
// lock serializing writers. Each wait flips the phase twice and drains the
// readers of the old phase after each flip — the classic two-phase protocol
// that tolerates a reader whose counter snapshot is one grace period stale.
//
// The global writer lock is the scalability bottleneck the paper measures;
// it is reproduced faithfully (Go's sync.Mutex hands off roughly FIFO under
// contention, standing in for URCU's waiter queue).
type URCU struct {
	metered
	resilient
	tunable
	reg *registry
	gp  pad.Uint64
	mu  sync.Mutex
}

// NewURCU returns a URCU engine capped at maxReaders concurrent readers
// (0 = grow on demand).
func NewURCU(maxReaders int) *URCU {
	u := &URCU{}
	u.reg = newRegistry(maxReaders, func(base, size int) any {
		return make([]pad.Uint64, size)
	})
	u.gp.Store(urcuCount)
	return u
}

// Name implements RCU.
func (u *URCU) Name() string { return "URCU" }

// MaxReaders implements RCU.
func (u *URCU) MaxReaders() int { return u.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (u *URCU) LiveReaders() int { return u.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (u *URCU) SlotCapacity() int { return u.reg.capacity() }

type urcuReader struct {
	readerGuard
	u    *URCU
	ctr  *pad.Uint64
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (u *URCU) Register() (Reader, error) {
	slot, sg, err := u.reg.acquire()
	if err != nil {
		return nil, err
	}
	c := &sg.state.([]pad.Uint64)[slot-sg.base]
	c.Store(0)
	return &urcuReader{u: u, ctr: c, lane: u.lane(slot), slot: slot}, nil
}

// Enter implements Reader: snapshot the global grace-period counter. The
// value is ignored — URCU is a plain RCU. The SC atomic store provides the
// memory fence URCU issues in rcu_read_lock.
func (r *urcuReader) Enter(v Value) {
	r.check()
	r.ctr.Store(r.u.gp.Load())
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader: go offline.
func (r *urcuReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.ctr.Store(0)
}

// Do implements Reader.
func (r *urcuReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *urcuReader) Unregister() {
	r.closing()
	if r.ctr.Load() != 0 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.u.reg.release(r.slot)
	r.ctr = nil
}

// ongoing reports whether reader snapshot c belongs to a critical section
// the current grace period must wait for: online, and from the old phase.
func ongoing(c, gp uint64) bool {
	return c&urcuCount != 0 && (c^gp)&urcuPhase != 0
}

// WaitForReaders implements RCU. The predicate is ignored. Readers are
// scanned once per phase flip, so the scanned count reflects slots
// examined across both phases.
func (u *URCU) WaitForReaders(p Predicate) {
	if st := u.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		u.waitReaders(p, newControl(nil, st, p, u))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := u.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	var scanned, waited, parked uint64
	u.mu.Lock()
	for phase := 0; phase < 2; phase++ {
		newGP := u.gp.Load() ^ urcuPhase
		u.gp.Store(newGP)
		w := u.waiter()
		u.reg.forEachActive(func(sg *segment, i int) {
			scanned++
			c := &sg.state.([]pad.Uint64)[i]
			w.Reset()
			looped := false
			var bs int64
			for ongoing(c.Load(), newGP) {
				if !looped {
					looped = true
					bs = m.BlameStart(&start)
				}
				w.Wait()
			}
			if looped {
				waited++
				m.BlameSample(&start, sg.base+i, bs)
				if w.Yielded() {
					parked++
				}
			}
		})
	}
	u.mu.Unlock()
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
// Cancellation mid-protocol is safe: an abandoned phase flip only toggles
// the phase bit an extra time, and the next wait performs its own two
// flips and drains both phases, so it still waits for every pre-existing
// reader.
func (u *URCU) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := u.control(ctx, p, u)
	if err := wc.pre(); err != nil {
		return err
	}
	return u.waitReaders(p, wc)
}

func (u *URCU) waitReaders(_ Predicate, wc *waitControl) error {
	m := u.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	var scanned, waited, parked uint64
	var werr error
	u.mu.Lock()
	for phase := 0; phase < 2 && werr == nil; phase++ {
		newGP := u.gp.Load() ^ urcuPhase
		u.gp.Store(newGP)
		w := u.waiter()
		u.reg.forEachActive(func(sg *segment, i int) {
			if werr != nil {
				return
			}
			scanned++
			c := &sg.state.([]pad.Uint64)[i]
			w.Reset()
			looped := false
			var bs int64
			for ongoing(c.Load(), newGP) {
				if !looped {
					looped = true
					bs = m.BlameStart(&start)
				}
				if err := wc.step(&w); err != nil {
					werr = err
					break
				}
			}
			if looped {
				waited++
				m.BlameSample(&start, sg.base+i, bs)
				if w.Yielded() {
					parked++
				}
			}
		})
	}
	u.mu.Unlock()
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// stalledReaders implements stallProber: readers online in the old phase
// relative to the current grace-period counter — the ones a wait in
// progress is (or would be) blocked on.
func (u *URCU) stalledReaders(Predicate) []StalledReader {
	gp := u.gp.Load()
	var out []StalledReader
	u.reg.forEachActive(func(sg *segment, i int) {
		c := sg.state.([]pad.Uint64)[i].Load()
		if c&urcuCount != 0 && (c^gp)&urcuPhase != 0 {
			out = append(out, StalledReader{Slot: sg.base + i})
		}
	})
	return out
}
