package core

import (
	"testing"
	"time"

	"prcu/internal/obs"
)

// meteredEngines builds every engine with a fresh Metrics attached.
func meteredEngines(maxReaders int) map[string]RCU {
	out := map[string]RCU{}
	for name, mk := range engines(maxReaders) {
		r := mk()
		m := obs.New()
		m.SetSectionSampleShift(0) // sample every section in tests
		m.EnsureReaders(maxReaders)
		r.(MetricsCarrier).SetMetrics(m)
		out[name] = r
	}
	return out
}

// TestMetricsRecordedByEveryEngine drives each engine through critical
// sections and waits and checks the observability hooks fired: wait
// count and latency, readers scanned, section samples, and — where a
// reader was open across the wait — a nonzero waited count.
func TestMetricsRecordedByEveryEngine(t *testing.T) {
	for name, r := range meteredEngines(8) {
		t.Run(name, func(t *testing.T) {
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				rd.Enter(Value(i))
				rd.Exit(Value(i))
			}
			for i := 0; i < 5; i++ {
				r.WaitForReaders(All())
			}
			rd.Unregister()

			s := r.Stats()
			if !s.Enabled {
				t.Fatal("Stats() reports disabled with metrics attached")
			}
			if s.Waits != 5 {
				t.Fatalf("Waits = %d, want 5", s.Waits)
			}
			if s.WaitNs.Count != 5 {
				t.Fatalf("WaitNs.Count = %d, want 5", s.WaitNs.Count)
			}
			if s.Enters != 10 {
				t.Fatalf("Enters = %d, want 10", s.Enters)
			}
			if s.SectionNs.Count != 10 {
				t.Fatalf("SectionNs.Count = %d, want 10 (sampling every section)", s.SectionNs.Count)
			}
			if s.ReadersScanned == 0 {
				t.Fatal("ReadersScanned = 0 after five waits")
			}
		})
	}
}

// TestMetricsCountWaitedReaders holds a critical section open across a
// wait and checks the engine accounted for actually waiting.
func TestMetricsCountWaitedReaders(t *testing.T) {
	for name, r := range meteredEngines(8) {
		t.Run(name, func(t *testing.T) {
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			exited := make(chan struct{})
			go func() {
				rd.Enter(3)
				close(entered)
				<-release
				rd.Exit(3)
				close(exited)
			}()
			<-entered
			returned := make(chan struct{})
			go func() {
				r.WaitForReaders(All())
				close(returned)
			}()
			// Give the wait time to start scanning and block on the open
			// section, then release the reader so it can finish.
			select {
			case <-returned:
				t.Fatal("WaitForReaders returned with a covered section open")
			case <-time.After(30 * time.Millisecond):
			}
			close(release)
			<-returned
			<-exited
			rd.Unregister()

			s := r.Stats()
			if s.Waits != 1 {
				t.Fatalf("Waits = %d, want 1", s.Waits)
			}
			if s.ReadersWaited == 0 && s.DrainsOptimistic+s.DrainsGate+s.DrainsPiggyback == 0 {
				t.Fatal("wait blocked on an open section but recorded neither a waited reader nor a drain")
			}
			if s.Selectivity < 0 || s.Selectivity > 1 {
				t.Fatalf("Selectivity = %v out of [0,1]", s.Selectivity)
			}
		})
	}
}

// TestMetricsSharedAcrossEngines checks that one Metrics can serve
// several engines, merging their numbers, and that trace events from
// reader and waiter sides interleave in time order.
func TestMetricsSharedAcrossEngines(t *testing.T) {
	m := obs.New()
	m.EnsureReaders(4)
	m.EnableTrace(256)
	a := NewEER(4, nil)
	b := NewTimeRCU(4, nil)
	a.SetMetrics(m)
	b.SetMetrics(m)

	ra, _ := a.Register()
	ra.Enter(1)
	ra.Exit(1)
	ra.Unregister()
	a.WaitForReaders(All())
	b.WaitForReaders(All())

	s := m.Snapshot()
	if s.Waits != 2 {
		t.Fatalf("shared metrics saw %d waits, want 2", s.Waits)
	}
	evs := m.TraceSnapshot()
	if len(evs) < 4 {
		t.Fatalf("trace captured %d events, want >= 4 (enter, exit, 2x wait begin/end)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatal("trace events out of time order")
		}
	}
}

// TestNopEngineStats checks the unsafe no-op engine still satisfies the
// Stats surface (returning a disabled snapshot without metrics).
func TestNopEngineStats(t *testing.T) {
	n := NewNop(4)
	if s := n.Stats(); s.Enabled {
		t.Fatal("bare Nop must report disabled stats")
	}
	sim := NewSimulated(NewEER(4, nil), 0)
	if s := sim.Stats(); s.Enabled {
		t.Fatal("Simulated over a bare engine must report disabled stats")
	}
}
