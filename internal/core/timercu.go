package core

import (
	"prcu/internal/obs"
	"prcu/internal/spin"
	"prcu/internal/tsc"
)

// TimeRCU is the paper's Time RCU baseline (§6): time-based quiescence
// detection over all readers — i.e. EER-PRCU without the predicate
// evaluation. It exists to tease apart how much of PRCU's gain comes from
// predicates versus from timestamp-based quiescence detection, and it is
// the strongest plain-RCU baseline on workloads with updates.
type TimeRCU struct {
	metered
	reg   *registry
	clock Clock
	nodes []timeNode // value field unused; layout shared with EER
}

// NewTimeRCU returns a Time RCU engine with capacity for maxReaders
// concurrent readers. If clock is nil the monotonic clock is used.
func NewTimeRCU(maxReaders int, clock Clock) *TimeRCU {
	if clock == nil {
		clock = tsc.NewMonotonic()
	}
	t := &TimeRCU{
		reg:   newRegistry(maxReaders),
		clock: clock,
		nodes: make([]timeNode, maxReaders),
	}
	for i := range t.nodes {
		t.nodes[i].time.Store(tsc.Infinity)
	}
	return t
}

// Name implements RCU.
func (t *TimeRCU) Name() string { return "Time RCU" }

// MaxReaders implements RCU.
func (t *TimeRCU) MaxReaders() int { return t.reg.maxReaders() }

type timeReader struct {
	t    *TimeRCU
	node *timeNode
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (t *TimeRCU) Register() (Reader, error) {
	slot, err := t.reg.acquire()
	if err != nil {
		return nil, err
	}
	n := &t.nodes[slot]
	n.time.Store(tsc.Infinity)
	return &timeReader{t: t, node: n, lane: t.lane(slot), slot: slot}, nil
}

// Enter implements Reader. The value is ignored: Time RCU is a plain RCU.
func (r *timeReader) Enter(v Value) {
	r.node.time.Store(r.t.clock.Now())
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader.
func (r *timeReader) Exit(v Value) {
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.node.time.Store(tsc.Infinity)
}

// Unregister implements Reader.
func (r *timeReader) Unregister() {
	if r.node.time.Load() != tsc.Infinity {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.t.reg.release(r.slot)
	r.node = nil
}

// WaitForReaders implements RCU. The predicate is ignored: every
// pre-existing reader is waited for, as with standard RCU.
func (t *TimeRCU) WaitForReaders(Predicate) {
	m := t.met
	var start int64
	if m != nil {
		start = m.WaitBegin()
	}
	t0 := t.clock.Now()
	limit := t.reg.scanLimit()
	var w spin.Waiter
	var scanned, waited, parked uint64
	for j := 0; j < limit; j++ {
		if !t.reg.isActive(j) {
			continue
		}
		scanned++
		n := &t.nodes[j]
		w.Reset()
		looped := false
		for n.time.Load() <= t0 {
			looped = true
			w.Wait()
		}
		if looped {
			waited++
			if w.Yielded() {
				parked++
			}
		}
	}
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}
