package core

import (
	"context"

	"prcu/internal/obs"
	"prcu/internal/tsc"
)

// TimeRCU is the paper's Time RCU baseline (§6): time-based quiescence
// detection over all readers — i.e. EER-PRCU without the predicate
// evaluation. It exists to tease apart how much of PRCU's gain comes from
// predicates versus from timestamp-based quiescence detection, and it is
// the strongest plain-RCU baseline on workloads with updates.
type TimeRCU struct {
	metered
	resilient
	tunable
	reg   *registry
	clock Clock
}

// NewTimeRCU returns a Time RCU engine capped at maxReaders concurrent
// readers (0 = grow on demand). If clock is nil the monotonic clock is
// used.
func NewTimeRCU(maxReaders int, clock Clock) *TimeRCU {
	if clock == nil {
		clock = tsc.NewMonotonic()
	}
	t := &TimeRCU{clock: clock}
	// value field unused; layout shared with EER.
	t.reg = newRegistry(maxReaders, func(base, size int) any {
		return newTimeNodeSeg(size)
	})
	return t
}

// Name implements RCU.
func (t *TimeRCU) Name() string { return "Time RCU" }

// MaxReaders implements RCU.
func (t *TimeRCU) MaxReaders() int { return t.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (t *TimeRCU) LiveReaders() int { return t.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (t *TimeRCU) SlotCapacity() int { return t.reg.capacity() }

type timeReader struct {
	readerGuard
	t    *TimeRCU
	node *timeNode
	lane *obs.ReaderLane
	slot int
}

// Register implements RCU.
func (t *TimeRCU) Register() (Reader, error) {
	slot, sg, err := t.reg.acquire()
	if err != nil {
		return nil, err
	}
	n := &sg.state.([]timeNode)[slot-sg.base]
	n.time.Store(tsc.Infinity)
	return &timeReader{t: t, node: n, lane: t.lane(slot), slot: slot}, nil
}

// Enter implements Reader. The value is ignored: Time RCU is a plain RCU.
func (r *timeReader) Enter(v Value) {
	r.check()
	r.node.time.Store(r.t.clock.Now())
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader.
func (r *timeReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.node.time.Store(tsc.Infinity)
}

// Do implements Reader.
func (r *timeReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *timeReader) Unregister() {
	r.closing()
	if r.node.time.Load() != tsc.Infinity {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.t.reg.release(r.slot)
	r.node = nil
}

// WaitForReaders implements RCU. The predicate is ignored: every
// pre-existing reader is waited for, as with standard RCU.
func (t *TimeRCU) WaitForReaders(p Predicate) {
	if st := t.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		t.waitReaders(p, newControl(nil, st, p, t))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := t.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	t0 := t.clock.Now()
	w := t.waiter()
	var scanned, waited, parked uint64
	t.reg.forEachActive(func(sg *segment, i int) {
		scanned++
		n := &sg.state.([]timeNode)[i]
		w.Reset()
		looped := false
		var bs int64
		for n.time.Load() <= t0 {
			if !looped {
				looped = true
				bs = m.BlameStart(&start)
			}
			w.Wait()
		}
		if looped {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx. The
// predicate is ignored for waiting (plain RCU) but kept for diagnostics.
func (t *TimeRCU) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := t.control(ctx, p, t)
	if err := wc.pre(); err != nil {
		return err
	}
	return t.waitReaders(p, wc)
}

func (t *TimeRCU) waitReaders(_ Predicate, wc *waitControl) error {
	m := t.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	t0 := t.clock.Now()
	w := t.waiter()
	var scanned, waited, parked uint64
	var werr error
	t.reg.forEachActive(func(sg *segment, i int) {
		if werr != nil {
			return
		}
		scanned++
		n := &sg.state.([]timeNode)[i]
		w.Reset()
		looped := false
		var bs int64
		for n.time.Load() <= t0 {
			if !looped {
				looped = true
				bs = m.BlameStart(&start)
			}
			if err := wc.step(&w); err != nil {
				werr = err
				break
			}
		}
		if looped {
			waited++
			m.BlameSample(&start, sg.base+i, bs)
			if w.Yielded() {
				parked++
			}
		}
	})
	if m != nil {
		m.WaitEnd(start, scanned, waited, parked)
	}
	return werr
}

// stalledReaders implements stallProber: every open critical section
// (Time RCU waits for all readers; no value is tracked).
func (t *TimeRCU) stalledReaders(Predicate) []StalledReader {
	now := t.clock.Now()
	var out []StalledReader
	t.reg.forEachActive(func(sg *segment, i int) {
		n := &sg.state.([]timeNode)[i]
		ts := n.time.Load()
		if ts == tsc.Infinity {
			return
		}
		out = append(out, StalledReader{Slot: sg.base + i, OpenFor: clampDur(now - ts)})
	})
	return out
}
