package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/obs"
	"prcu/internal/tsc"
)

// parkReader registers a reader on r, enters a critical section on v,
// and parks it until the returned release function is called (which
// also exits and unregisters, synchronously).
func parkReader(t *testing.T, r RCU, v Value) (release func()) {
	t.Helper()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	go_ := make(chan struct{})
	done := make(chan struct{})
	go func() {
		rd.Enter(v)
		close(entered)
		<-go_
		rd.Exit(v)
		rd.Unregister()
		close(done)
	}()
	<-entered
	return func() { close(go_); <-done }
}

// TestWaitCtxDeadlineOnParkedReader is the acceptance scenario run
// directly against every engine: a reader parked inside a covered
// critical section makes the grace period unachievable, so a
// deadline-bounded wait must give up with context.DeadlineExceeded —
// and promptly, within twice the deadline, because cancellation is
// polled on every scheduler-yield step of the wait loop.
func TestWaitCtxDeadlineOnParkedReader(t *testing.T) {
	deadline := scaleDur(200*time.Millisecond, 100*time.Millisecond)
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			release := parkReader(t, r, 5)
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			t0 := time.Now()
			err := r.WaitForReadersCtx(ctx, Singleton(5))
			elapsed := time.Since(t0)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("wait returned %v, want DeadlineExceeded", err)
			}
			if elapsed > 2*deadline {
				t.Errorf("cancelled wait took %v, want <= %v", elapsed, 2*deadline)
			}
			release()
			// With the section closed the engine must be fully usable: the
			// abandoned wait left no residue that wedges the next one.
			done := make(chan struct{})
			go func() {
				r.WaitForReaders(Singleton(5))
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("wait after an abandoned ctx wait did not complete")
			}
		})
	}
}

// TestWaitCtxCancelMidWait covers explicit cancellation (rather than a
// deadline) landing while the wait is blocked.
func TestWaitCtxCancelMidWait(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			release := parkReader(t, r, 9)
			defer release()
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() { errc <- r.WaitForReadersCtx(ctx, Singleton(9)) }()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("wait returned %v, want Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled wait did not return")
			}
		})
	}
}

// TestWaitCtxPreExpired checks the fast-fail path: a dead context is
// reported before any scanning or waiting, even with a parked covered
// reader that would block the wait forever.
func TestWaitCtxPreExpired(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			release := parkReader(t, r, 5)
			defer release()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := r.WaitForReadersCtx(ctx, Singleton(5)); !errors.Is(err, context.Canceled) {
				t.Fatalf("wait with a dead context returned %v, want Canceled", err)
			}
		})
	}
}

// TestWaitCtxCleanCompletion checks the nil-error path under churn: an
// unexpiring context must change nothing about wait semantics.
func TestWaitCtxCleanCompletion(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rd, err := r.Register()
					if err != nil {
						t.Error(err)
						return
					}
					defer rd.Unregister()
					for i := 0; !stop.Load(); i++ {
						rd.Enter(42)
						rd.Exit(42)
						if i%32 == 0 {
							runtime.Gosched()
						}
					}
				}()
			}
			iters := scale(60, 20)
			for i := 0; i < iters; i++ {
				if err := r.WaitForReadersCtx(context.Background(), Singleton(42)); err != nil {
					t.Fatalf("wait %d failed under a live context: %v", i, err)
				}
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestWaitCtxExcludedPredicateCompletes pins the predicate-aware half
// of the acceptance scenario: the parked reader's value is outside the
// predicate, so the bounded wait completes with a nil error instead of
// timing out on it.
func TestWaitCtxExcludedPredicateCompletes(t *testing.T) {
	prcuEngines := map[string]func() RCU{
		"EER":  func() RCU { return NewEER(16, nil) },
		"D":    func() RCU { return NewD(16, 1024) },
		"DEER": func() RCU { return NewDEER(16, 16, nil) },
	}
	for name, mk := range prcuEngines {
		t.Run(name, func(t *testing.T) {
			r := mk()
			release := parkReader(t, r, 1000) // no hash collision with 5 at 1024 buckets
			defer release()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := r.WaitForReadersCtx(ctx, Singleton(5)); err != nil {
				t.Fatalf("excluding-predicate wait returned %v, want nil", err)
			}
		})
	}
}

// stallCollector gathers watchdog reports for assertions.
type stallCollector struct {
	mu   sync.Mutex
	reps []StallReport
}

func (c *stallCollector) add(r StallReport) {
	c.mu.Lock()
	c.reps = append(c.reps, r)
	c.mu.Unlock()
}

func (c *stallCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reps)
}

func (c *stallCollector) last() StallReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reps[len(c.reps)-1]
}

// awaitReports polls until the collector holds at least n reports,
// advancing the manual clock by tick between polls (the stalled waiter
// only observes time through the injected clock).
func awaitReports(t *testing.T, c *stallCollector, clk *tsc.Manual, tick int64, n int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if c.count() >= n {
			return
		}
		if tick > 0 {
			clk.Advance(tick)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("watchdog reports = %d, want >= %d", c.count(), n)
}

// TestStallWatchdogManualClock drives the watchdog deterministically
// with a manual clock on every engine: a parked covered reader stalls
// the wait; once the injected clock passes the timeout the watchdog
// must fire, exactly once per rate-limit window however long the stall
// persists, and fire again when the window rolls over.
func TestStallWatchdogManualClock(t *testing.T) {
	const (
		timeoutNs = 1_000
		windowNs  = 1_000_000
	)
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			clk := tsc.NewManual(0)
			var col stallCollector
			r.(StallCarrier).SetStallConfig(StallConfig{
				Timeout:   timeoutNs,
				RateLimit: windowNs,
				Clock:     clk,
				OnStall:   col.add,
			})
			release := parkReader(t, r, 5)
			waited := make(chan struct{})
			go func() {
				r.WaitForReaders(Singleton(5))
				close(waited)
			}()
			// Nudge the clock past the timeout until the waiter (whose
			// wait may start at any observed reading) reports. Total
			// advance stays far below one rate-limit window.
			awaitReports(t, &col, clk, 2*timeoutNs, 1)
			rep := col.last()
			if rep.Engine != r.Name() {
				t.Errorf("report engine %q, want %q", rep.Engine, r.Name())
			}
			if rep.Predicate != "singleton(5)" {
				t.Errorf("report predicate %q, want %q", rep.Predicate, "singleton(5)")
			}
			if rep.Elapsed < timeoutNs {
				t.Errorf("report elapsed %d, want >= %d", rep.Elapsed, timeoutNs)
			}
			if len(rep.Readers) == 0 {
				t.Errorf("report names no stalled readers; want at least one")
			}
			// Within the same rate-limit window the stall persists but no
			// further report may fire, no matter how many checks run.
			base := col.count()
			for i := 0; i < 20; i++ {
				clk.Advance(2 * timeoutNs)
				time.Sleep(time.Millisecond)
			}
			if got := col.count(); got != base {
				t.Errorf("reports within one rate-limit window: %d, want %d", got, base)
			}
			// Rolling past the window re-admits exactly one more report.
			clk.Advance(windowNs)
			awaitReports(t, &col, clk, 0, base+1)
			release()
			select {
			case <-waited:
			case <-time.After(10 * time.Second):
				t.Fatal("stalled wait did not return after the reader exited")
			}
		})
	}
}

// TestStallReportNamesSlotAndValue pins the diagnostic payload on the
// value-tracking engine: the report must carry the offending reader's
// registry slot, its open value, and a positive open duration.
func TestStallReportNamesSlotAndValue(t *testing.T) {
	r := NewEER(16, nil)
	clk := tsc.NewManual(0)
	var col stallCollector
	r.SetStallConfig(StallConfig{
		Timeout:   1_000,
		RateLimit: time.Hour,
		Clock:     clk,
		OnStall:   col.add,
	})
	// Slot 0: a registered but quiescent reader. Slot 1: the offender.
	idle, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Unregister()
	release := parkReader(t, r, 77)
	waited := make(chan struct{})
	go func() {
		r.WaitForReaders(Singleton(77))
		close(waited)
	}()
	awaitReports(t, &col, clk, 2_000, 1)
	rep := col.last()
	if len(rep.Readers) != 1 {
		t.Fatalf("report names %d readers, want exactly the offender: %+v", len(rep.Readers), rep.Readers)
	}
	sr := rep.Readers[0]
	if sr.Slot != 1 {
		t.Errorf("stalled slot = %d, want 1", sr.Slot)
	}
	if !sr.HasValue || sr.Value != 77 {
		t.Errorf("stalled value = (%d, %v), want (77, true)", sr.Value, sr.HasValue)
	}
	if sr.OpenFor < 0 {
		t.Errorf("open duration %v negative", sr.OpenFor)
	}
	release()
	<-waited
}

// TestStallWatchdogSelectivity checks the watchdog never cries wolf on
// the predicate-aware engines: a wait whose predicate excludes the
// parked reader's value completes without blocking, so no report fires
// even with the watchdog armed at an aggressive timeout.
func TestStallWatchdogSelectivity(t *testing.T) {
	prcuEngines := map[string]func() RCU{
		"EER":  func() RCU { return NewEER(16, nil) },
		"D":    func() RCU { return NewD(16, 1024) },
		"DEER": func() RCU { return NewDEER(16, 16, nil) },
	}
	for name, mk := range prcuEngines {
		t.Run(name, func(t *testing.T) {
			r := mk()
			clk := tsc.NewManual(0)
			var col stallCollector
			r.(StallCarrier).SetStallConfig(StallConfig{
				Timeout:   1,
				RateLimit: 1,
				Clock:     clk,
				OnStall:   col.add,
			})
			release := parkReader(t, r, 1000)
			defer release()
			clk.Advance(1_000_000) // any blocked wait would fire instantly
			for i := 0; i < scale(50, 15); i++ {
				r.WaitForReaders(Singleton(5))
				clk.Advance(1_000_000)
			}
			if got := col.count(); got != 0 {
				t.Fatalf("watchdog fired %d times for a non-covering predicate", got)
			}
		})
	}
}

// TestStallMetrics checks the stall counters flow into the engine's
// observability snapshot.
func TestStallMetrics(t *testing.T) {
	r := NewEER(16, nil)
	met := obs.New()
	r.SetMetrics(met)
	clk := tsc.NewManual(0)
	var col stallCollector
	r.SetStallConfig(StallConfig{
		Timeout:   1_000,
		RateLimit: time.Hour,
		Clock:     clk,
		OnStall:   col.add,
	})
	release := parkReader(t, r, 5)
	waited := make(chan struct{})
	go func() {
		r.WaitForReaders(Singleton(5))
		close(waited)
	}()
	awaitReports(t, &col, clk, 2_000, 1)
	release()
	<-waited
	s := r.Stats()
	if s.Stalls != 1 {
		t.Errorf("Snapshot.Stalls = %d, want 1", s.Stalls)
	}
	if s.StalledReaders != 1 {
		t.Errorf("Snapshot.StalledReaders = %d, want 1", s.StalledReaders)
	}
}

// TestStallConfigDisarm checks Timeout <= 0 disarms a previously armed
// watchdog.
func TestStallConfigDisarm(t *testing.T) {
	r := NewEER(16, nil)
	clk := tsc.NewManual(0)
	var col stallCollector
	r.SetStallConfig(StallConfig{Timeout: 1, RateLimit: 1, Clock: clk, OnStall: col.add})
	r.SetStallConfig(StallConfig{Timeout: 0})
	release := parkReader(t, r, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	clk.Advance(1_000_000)
	if err := r.WaitForReadersCtx(ctx, Singleton(5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait returned %v, want DeadlineExceeded", err)
	}
	if col.count() != 0 {
		t.Fatalf("disarmed watchdog fired %d times", col.count())
	}
	release()
}

// TestReaderDoPanicSafety checks every engine's Do closes the critical
// section when the callback panics: the panic re-raises, the reader
// stays usable, and a covering wait afterwards completes instead of
// wedging.
func TestReaderDoPanicSafety(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("panic was swallowed by Do")
					}
				}()
				rd.Do(5, func() { panic("reader bug") })
			}()
			done := make(chan struct{})
			go func() {
				r.WaitForReaders(All())
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("wait blocked after a panicking Do: critical section leaked")
			}
			// The reader survived and still works.
			ran := false
			rd.Do(6, func() { ran = true })
			if !ran {
				t.Fatal("Do did not run the callback after a prior panic")
			}
			rd.Unregister()
		})
	}
}

// TestSimulatedAndNopCtx covers the auxiliary engines' ctx paths.
func TestSimulatedAndNopCtx(t *testing.T) {
	s := NewSimulated(NewNop(4), 1_000)
	if err := s.WaitForReadersCtx(context.Background(), All()); err != nil {
		t.Fatalf("simulated wait failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.WaitForReadersCtx(ctx, All()); !errors.Is(err, context.Canceled) {
		t.Fatalf("simulated wait with dead ctx returned %v, want Canceled", err)
	}
	n := NewNop(4)
	if err := n.WaitForReadersCtx(ctx, All()); err != nil {
		t.Fatalf("nop wait returned %v, want nil", err)
	}
	rd, _ := n.Register()
	ran := false
	rd.Do(1, func() { ran = true })
	if !ran {
		t.Fatal("nop Do did not run")
	}
	rd.Unregister()
}

// TestStallReportCarriesFlavor pins the flavor token in the watchdog's
// diagnostics: an engine tagged via SetFlavor reports it (and the log
// line renders it), an untagged engine reports none — the attribution
// that matters when two engines are live at once mid-migration.
func TestStallReportCarriesFlavor(t *testing.T) {
	const timeoutNs = 1_000
	r := NewEER(16, nil)
	r.SetFlavor("eer")
	if got := r.FlavorToken(); got != "eer" {
		t.Fatalf("FlavorToken = %q after SetFlavor, want %q", got, "eer")
	}
	clk := tsc.NewManual(0)
	var col stallCollector
	r.SetStallConfig(StallConfig{
		Timeout:   timeoutNs,
		RateLimit: 1_000_000,
		Clock:     clk,
		OnStall:   col.add,
	})
	release := parkReader(t, r, 5)
	waited := make(chan struct{})
	go func() {
		r.WaitForReaders(Singleton(5))
		close(waited)
	}()
	awaitReports(t, &col, clk, 2*timeoutNs, 1)
	rep := col.last()
	if rep.Flavor != "eer" {
		t.Errorf("report flavor %q, want %q", rep.Flavor, "eer")
	}
	if line := rep.String(); !strings.Contains(line, "[flavor eer]") {
		t.Errorf("log line %q does not carry the flavor tag", line)
	}
	release()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled wait did not return after the reader exited")
	}

	// An engine built outside the flavor registry has no token and the
	// log line omits the tag.
	bare := StallReport{Engine: "X", Predicate: "all"}
	if s := bare.String(); strings.Contains(s, "flavor") {
		t.Errorf("untagged report renders a flavor tag: %q", s)
	}
}
