package core

import "testing"

// FuzzPredicate cross-checks the three predicate encodings against
// plain arithmetic: interval membership, enumeration order and count,
// iterable stride semantics — and drives a D-PRCU wait with the fuzzed
// predicate over a one-node table, where index dedup must collapse every
// covered value into exactly one drain.
func FuzzPredicate(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), byte(1))
	f.Add(uint64(10), uint64(20), uint64(15), byte(3))
	f.Add(uint64(100), uint64(5), uint64(100), byte(0)) // lo > hi: swapped below
	f.Add(uint64(1)<<63, uint64(1)<<63+100, uint64(1)<<63+7, byte(6))
	f.Add(^uint64(0)-5, ^uint64(0), ^uint64(0), byte(2))
	f.Fuzz(func(t *testing.T, lo, hi, probe uint64, stride byte) {
		if lo > hi {
			lo, hi = hi, lo
		}
		// Bound enumeration width so the fuzzer explores shapes, not time.
		if hi-lo > 2048 {
			hi = lo + (hi-lo)%2048
		}

		p := Interval(lo, hi)
		inRange := lo <= probe && probe <= hi
		if p.Holds(probe) != inRange {
			t.Fatalf("Interval(%d,%d).Holds(%d) = %v, arithmetic says %v",
				lo, hi, probe, p.Holds(probe), inRange)
		}
		if !p.Enumerable() {
			t.Fatalf("Interval(%d,%d) not enumerable", lo, hi)
		}
		want := int(hi-lo) + 1
		if n, ok := p.Count(); !ok || n != want {
			t.Fatalf("Interval(%d,%d).Count() = %d,%v, want %d", lo, hi, n, ok, want)
		}
		var enum int
		prev, first := Value(0), true
		p.ForEach(func(v Value) bool {
			if v < lo || v > hi {
				t.Fatalf("ForEach yielded %d outside [%d,%d]", v, lo, hi)
			}
			if !first && v != prev+1 {
				t.Fatalf("ForEach yielded %d after %d, want ascending unit steps", v, prev)
			}
			prev, first = v, false
			enum++
			return true
		})
		if enum != want {
			t.Fatalf("ForEach yielded %d values, want %d", enum, want)
		}

		s := Singleton(probe)
		if !s.Holds(probe) || s.Holds(probe+1) || s.Holds(probe-1) {
			t.Fatalf("Singleton(%d) membership wrong", probe)
		}
		if n, ok := s.Count(); !ok || n != 1 {
			t.Fatalf("Singleton(%d).Count() = %d,%v", probe, n, ok)
		}

		// Iterable with a fuzzed stride: {lo, lo+step, ..., lo+k*step}.
		step := uint64(stride%7) + 1
		k := (hi - lo) / step
		vk := lo + k*step
		it := Iterable(lo, vk, func(v Value) Value { return v + step })
		if n, ok := it.Count(); !ok || n != int(k)+1 {
			t.Fatalf("Iterable stride %d over [%d,%d]: Count = %d,%v, want %d",
				step, lo, vk, n, ok, k+1)
		}
		if !it.Holds(lo) || !it.Holds(vk) {
			t.Fatalf("Iterable must hold for its endpoints %d, %d", lo, vk)
		}
		if step > 1 && k > 0 && it.Holds(lo+1) {
			t.Fatalf("Iterable stride %d holds for off-stride value %d", step, lo+1)
		}

		// A wait with the fuzzed interval over a one-node D-PRCU table:
		// every covered value collides, so dedup must produce exactly one
		// gate drain, and the wait must terminate.
		d := NewD(2, 1)
		d.SetOptimisticBudget(0)
		n0 := &d.tbl.Load().nodes[0]
		before := n0.drains.Load()
		d.WaitForReaders(p)
		if got := n0.drains.Load() - before; got != 1 {
			t.Fatalf("one-node table drained %d times for %d colliding values, want 1", got, want)
		}
	})
}
