package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"prcu/internal/tsc"
)

func TestRegisterExhaustion(t *testing.T) {
	for name, mk := range engines(3) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			if r.MaxReaders() != 3 {
				t.Fatalf("MaxReaders = %d, want 3", r.MaxReaders())
			}
			var rds []Reader
			for i := 0; i < 3; i++ {
				rd, err := r.Register()
				if err != nil {
					t.Fatalf("register %d: %v", i, err)
				}
				rds = append(rds, rd)
			}
			if _, err := r.Register(); !errors.Is(err, ErrTooManyReaders) {
				t.Fatalf("4th register error = %v, want ErrTooManyReaders", err)
			}
			rds[1].Unregister()
			rd, err := r.Register()
			if err != nil {
				t.Fatalf("register after release: %v", err)
			}
			rd.Enter(1)
			rd.Exit(1)
			rd.Unregister()
			rds[0].Unregister()
			rds[2].Unregister()
		})
	}
}

func TestEnterExitCycle(t *testing.T) {
	for name, mk := range engines(4) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				v := Value(i % 7)
				rd.Enter(v)
				rd.Exit(v)
			}
			r.WaitForReaders(All())
			rd.Unregister()
		})
	}
}

func TestWaitWithNoReaders(t *testing.T) {
	for name, mk := range engines(4) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			// Must return immediately with nobody registered.
			r.WaitForReaders(All())
			r.WaitForReaders(Singleton(5))
		})
	}
}

func TestWaitWithQuiescentReaders(t *testing.T) {
	for name, mk := range engines(4) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, _ := r.Register()
			rd.Enter(1)
			rd.Exit(1)
			// Reader registered but quiescent: wait must not block.
			r.WaitForReaders(All())
			rd.Unregister()
		})
	}
}

func TestNames(t *testing.T) {
	want := map[string]string{
		"EER": "EER-PRCU", "D": "D-PRCU", "DEER": "DEER-PRCU",
		"Time": "Time RCU", "URCU": "URCU", "Tree": "Tree RCU",
		"Dist": "Dist RCU", "SRCU": "SRCU", "Packed": "Packed RCU",
	}
	for name, mk := range engines(2) {
		if got := mk().Name(); got != want[name] {
			t.Errorf("%s Name() = %q, want %q", name, got, want[name])
		}
	}
}

func TestDPRCUTableSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two table size must panic")
		}
	}()
	NewD(4, 100)
}

func TestDPRCUDefaultTableSize(t *testing.T) {
	d := NewD(4, 0)
	if d.TableSize() != DefaultCounterTableSize {
		t.Fatalf("TableSize = %d, want %d", d.TableSize(), DefaultCounterTableSize)
	}
}

func TestDPRCUNestingPanics(t *testing.T) {
	d := NewD(4, 64)
	rd, _ := d.Register()
	rd.Enter(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nested Enter must panic")
		}
		rd.Exit(1)
	}()
	rd.Enter(2)
}

func TestDPRCUExitWithoutEnterPanics(t *testing.T) {
	d := NewD(4, 64)
	rd, _ := d.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("Exit without Enter must panic")
		}
	}()
	rd.Exit(1)
}

func TestDPRCUMismatchedExitPanics(t *testing.T) {
	d := NewD(4, 64)
	rd, _ := d.Register()
	rd.Enter(1)
	// Find a value mapping to a different table node than 1.
	tbl := d.tbl.Load()
	other := Value(2)
	for tbl.index(other) == tbl.index(1) {
		other++
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Exit with a different-node value must panic")
		}
	}()
	rd.Exit(other)
}

func TestDPRCUCountersReturnToZero(t *testing.T) {
	d := NewD(8, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rd, err := d.Register()
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 2000; j++ {
				v := Value(id*37 + j)
				rd.Enter(v)
				rd.Exit(v)
			}
			rd.Unregister()
		}(i)
	}
	wg.Wait()
	tbl := d.tbl.Load()
	for j := range tbl.nodes {
		if c0, c1 := tbl.nodes[j].readers[0].Load(), tbl.nodes[j].readers[1].Load(); c0 != 0 || c1 != 0 {
			t.Fatalf("node %d counters = %d,%d after all readers exited, want 0,0", j, c0, c1)
		}
	}
}

// TestDPRCUResize exercises §4.2's table expansion: contents of critical
// sections spanning the swap stay covered, the new size takes effect, and
// the old generation fully drains.
func TestDPRCUResize(t *testing.T) {
	d := NewD(8, 64)
	rd, _ := d.Register()
	rd.Enter(5)
	resized := make(chan struct{})
	go func() {
		d.Resize(256)
		close(resized)
	}()
	// Resize must block on the old generation while our section is open.
	select {
	case <-resized:
		t.Fatal("Resize completed while a reader held the old table")
	case <-time.After(30 * time.Millisecond):
	}
	rd.Exit(5)
	select {
	case <-resized:
	case <-time.After(10 * time.Second):
		t.Fatal("Resize did not complete after the reader exited")
	}
	if d.TableSize() != 256 {
		t.Fatalf("TableSize = %d after resize, want 256", d.TableSize())
	}
	// The engine keeps satisfying the safety property after the swap.
	rd.Enter(9)
	done := make(chan struct{})
	go func() {
		d.WaitForReaders(Singleton(9))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait returned during open section after resize")
	case <-time.After(30 * time.Millisecond):
	}
	rd.Exit(9)
	<-done
	// Resizing to the current size is a no-op.
	d.Resize(256)
	rd.Unregister()
}

// TestDPRCUResizeUnderChurn resizes repeatedly while readers and waiters
// run; the safety harness invariant must hold throughout.
func TestDPRCUResizeUnderChurn(t *testing.T) {
	d := NewD(16, 16)
	h := newSafetyHarness(d, 8)
	for i := 0; i < 8; i++ {
		id := i
		h.runReader(t, id, func(i int) Value { return Value((id*13 + i) % 64) })
	}
	for i := 0; i < 2; i++ {
		h.runWaiter(t, Interval(8, 24), 200)
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		sizes := []int{32, 64, 16, 128, 16}
		for _, s := range sizes {
			if h.stop.Load() {
				return
			}
			d.Resize(s)
		}
	}()
	h.finish(t, 300*time.Millisecond)
}

func TestDPRCUGateDrainUnderForcedSlowPath(t *testing.T) {
	// Force the full gate protocol by keeping one phase occupied past the
	// optimistic budget, then verify the drain completes once released.
	d := NewD(4, 1)
	rd, _ := d.Register()
	rd.Enter(5)
	done := make(chan struct{})
	go func() {
		d.WaitForReaders(Singleton(5))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("drain returned while a reader held the counter")
	default:
	}
	// Give the waiter time to fall off the optimistic path.
	for i := 0; i < 1000; i++ {
		select {
		case <-done:
			t.Fatal("drain returned while a reader held the counter")
		default:
		}
	}
	rd.Exit(5)
	<-done
	rd.Unregister()
}

func TestDEERNodesPerReaderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two nodes-per-reader must panic")
		}
	}()
	NewDEER(4, 12, nil)
}

func TestDEERDefaultNodes(t *testing.T) {
	d := NewDEER(4, 0, nil)
	if d.NodesPerReader() != DefaultNodesPerReader {
		t.Fatalf("NodesPerReader = %d, want %d", d.NodesPerReader(), DefaultNodesPerReader)
	}
}

func TestTreeRCULevels(t *testing.T) {
	cases := []struct {
		readers, levels int
	}{
		{1, 1}, {8, 1}, {9, 2}, {64, 2}, {65, 3}, {256, 3},
	}
	for _, c := range cases {
		tr := NewTreeRCU(c.readers)
		if got := tr.Levels(); got != c.levels {
			t.Errorf("Levels(%d readers) = %d, want %d", c.readers, got, c.levels)
		}
	}
}

func TestTreeRCUTreeDrainsToZero(t *testing.T) {
	tr := NewTreeRCU(64)
	var rds []Reader
	for i := 0; i < 64; i++ {
		rd, err := tr.Register()
		if err != nil {
			t.Fatal(err)
		}
		rds = append(rds, rd)
	}
	for i := 0; i < 50; i++ {
		for _, rd := range rds {
			rd.Enter(0)
		}
		done := make(chan struct{})
		go func() {
			tr.WaitForReaders(All())
			close(done)
		}()
		for _, rd := range rds {
			rd.Exit(0)
		}
		<-done
		tl := tr.tree.Load()
		for l := range tl.levels {
			for w := range tl.levels[l] {
				if v := tl.levels[l][w].Load(); v != 0 {
					t.Fatalf("iteration %d: tree word [%d][%d] = %#x after grace period", i, l, w, v)
				}
			}
		}
	}
	for _, rd := range rds {
		rd.Unregister()
	}
}

func TestUnregisterInsideCSPanics(t *testing.T) {
	for name, mk := range engines(4) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, _ := r.Register()
			rd.Enter(1)
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Unregister inside a critical section must panic")
					}
				}()
				rd.Unregister()
			}()
			rd.Exit(1)
			rd.Unregister()
		})
	}
}

func TestURCUPhaseFlip(t *testing.T) {
	u := NewURCU(4)
	g0 := u.gp.Load()
	if g0&urcuCount == 0 {
		t.Fatal("global counter must carry the online (count) bit")
	}
	u.WaitForReaders(All())
	g1 := u.gp.Load()
	// A wait flips the phase twice, so the counter returns to its original
	// value; what matters is that the count bit survives and no other bits
	// get disturbed.
	if g1 != g0 {
		t.Fatalf("counter after two flips = %#x, want %#x", g1, g0)
	}
	// A reader entering mid-wait must observe a flipped phase: emulate the
	// first half of the wait by hand.
	u.gp.Store(g0 ^ urcuPhase)
	rd, _ := u.Register()
	rd.Enter(0)
	if c := rd.(*urcuReader).ctr.Load(); (c^g0)&urcuPhase == 0 {
		t.Fatal("reader snapshot did not pick up the flipped phase")
	}
	rd.Exit(0)
	rd.Unregister()
	u.gp.Store(g0)
}

func TestURCUOngoing(t *testing.T) {
	gp := urcuCount | urcuPhase
	cases := []struct {
		c    uint64
		want bool
	}{
		{0, false},                     // offline
		{urcuCount, true},              // online, old phase
		{urcuCount | urcuPhase, false}, // online, current phase
	}
	for _, c := range cases {
		if got := ongoing(c.c, gp); got != c.want {
			t.Errorf("ongoing(%#x, %#x) = %v, want %v", c.c, gp, got, c.want)
		}
	}
}

func TestEERReaderValueVisibleToWaiter(t *testing.T) {
	clock := tsc.NewManual(100)
	e := NewEER(4, clock)
	rd, _ := e.Register()
	rd.Enter(77)
	// The waiter must see the reader's posted value and wait on it.
	node := rd.(*eerReader).node
	if got := node.value.Load(); got != 77 {
		t.Fatalf("posted value = %d, want 77", got)
	}
	if got := node.time.Load(); got != 100 {
		t.Fatalf("posted time = %d, want 100", got)
	}
	rd.Exit(77)
	if got := node.time.Load(); got != tsc.Infinity {
		t.Fatalf("time after exit = %d, want Infinity", got)
	}
	rd.Unregister()
}

func TestSimulatedWaitBurnsTime(t *testing.T) {
	inner := NewTimeRCU(4, nil)
	s := NewSimulated(inner, 2_000_000) // 2ms
	c := tsc.NewMonotonic()
	start := c.Now()
	s.WaitForReaders(All())
	if elapsed := c.Now() - start; elapsed < 1_500_000 {
		t.Fatalf("simulated wait burned only %dns, want ~2ms", elapsed)
	}
	if s.Name() != "Time RCU (simulated wait)" {
		t.Fatalf("Name = %q", s.Name())
	}
	rd, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1)
	rd.Exit(1)
	rd.Unregister()
}

func TestSimulatedZeroWaitReturnsImmediately(t *testing.T) {
	s := NewSimulated(NewTimeRCU(4, nil), 0)
	s.WaitForReaders(All())
}
