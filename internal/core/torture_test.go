package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Torture test in the style of the Linux kernel's rcutorture: readers
// continuously traverse RCU-protected objects while updaters replace
// them and reclaim the old versions after a grace period. Reclamation
// is simulated by a freed flag — an updater sets it only after
// WaitForReaders on a predicate covering the object's value returns, so
// any reader that observes freed==true inside a covering critical
// section has caught the engine violating the grace-period guarantee
// (the moral equivalent of rcutorture's use-after-free poisoning).
//
// The domain is a small array of slots; slot s carries domain value s,
// so Singleton(s) updaters exercise predicate selectivity while a
// wildcard updater exercises the RCU fallback, concurrently.

// tortureSlots is the number of independently updated objects.
const tortureSlots = 8

type tortureObj struct {
	slot  Value
	gen   uint64
	freed atomic.Bool
}

type tortureState struct {
	ptrs [tortureSlots]atomic.Pointer[tortureObj]

	reads    atomic.Uint64
	updates  atomic.Uint64
	failures atomic.Uint64
	failMsg  atomic.Pointer[string]
}

func newTortureState() *tortureState {
	st := &tortureState{}
	for s := range st.ptrs {
		st.ptrs[s].Store(&tortureObj{slot: Value(s)})
	}
	return st
}

func (st *tortureState) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	st.failMsg.CompareAndSwap(nil, &msg)
	st.failures.Add(1)
}

// tortureReader traverses objects inside critical sections, checking
// the freed flag at entry, mid-section and at exit — an object covered
// by our open section must never be reclaimed under us.
func (st *tortureState) tortureReader(r RCU, id int, stop *atomic.Bool) error {
	rd, err := r.Register()
	if err != nil {
		return err
	}
	defer rd.Unregister()
	for i := 0; !stop.Load(); i++ {
		s := (id + i) % tortureSlots
		rd.Enter(Value(s))
		obj := st.ptrs[s].Load()
		if obj.freed.Load() {
			st.fail("reader %d: slot %d object freed at section entry", id, s)
		}
		// Linger briefly so sections overlap concurrent waits.
		for k := 0; k < i%13; k++ {
			if obj.freed.Load() {
				st.fail("reader %d: slot %d object freed mid-section (gen %d)", id, s, obj.gen)
				break
			}
		}
		if obj.freed.Load() {
			st.fail("reader %d: slot %d object freed before section exit", id, s)
		}
		rd.Exit(Value(s))
		st.reads.Add(1)
		if i%32 == 0 {
			runtime.Gosched()
		}
	}
	return nil
}

// tortureUpdater replaces one slot's object and reclaims the old one
// after a grace period on p (which must cover the slot's value).
func (st *tortureState) tortureUpdater(r RCU, s int, p Predicate, stop *atomic.Bool) {
	for gen := uint64(1); !stop.Load(); gen++ {
		old := st.ptrs[s].Load()
		st.ptrs[s].Store(&tortureObj{slot: Value(s), gen: gen})
		r.WaitForReaders(p)
		// Grace period over: no reader entered before the swap can still
		// hold old. Readers entering after the swap load the new object.
		old.freed.Store(true)
		st.updates.Add(1)
	}
}

func runTorture(t *testing.T, r RCU, d time.Duration) {
	st := newTortureState()
	var stop atomic.Bool
	var wg sync.WaitGroup

	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := st.tortureReader(r, id, &stop); err != nil {
				st.fail("reader %d: %v", id, err)
			}
		}(i)
	}
	// Three singleton updaters on distinct slots plus one wildcard
	// updater cycling the rest: predicates and the RCU fallback torture
	// the same engine at once.
	for _, s := range []int{0, 1, 2} {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st.tortureUpdater(r, s, Singleton(Value(s)), &stop)
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := uint64(1); !stop.Load(); gen++ {
			s := 3 + int(gen)%(tortureSlots-3)
			old := st.ptrs[s].Load()
			st.ptrs[s].Store(&tortureObj{slot: Value(s), gen: gen})
			r.WaitForReaders(All())
			old.freed.Store(true)
			st.updates.Add(1)
		}
	}()

	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		stop.Store(true)
		t.Fatal("torture did not wind down (WaitForReaders liveness failure?)")
	}

	if n := st.failures.Load(); n != 0 {
		t.Fatalf("%d grace-period violations; first: %s", n, *st.failMsg.Load())
	}
	if st.reads.Load() == 0 || st.updates.Load() == 0 {
		t.Fatalf("torture made no progress: %d reads, %d updates",
			st.reads.Load(), st.updates.Load())
	}
	t.Logf("%s: %d reads, %d updates, 0 violations", r.Name(), st.reads.Load(), st.updates.Load())
}

// TestTorture runs the rcutorture-style workload on every engine. The
// per-engine budget keeps the whole test well under 5s per engine even
// with the race detector on; -short trims it further.
func TestTorture(t *testing.T) {
	d := scaleDur(250*time.Millisecond, 100*time.Millisecond)
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			runTorture(t, mk(), d)
		})
	}
}

// TestTortureWithMetrics repeats a short torture run with the
// observability layer attached and tracing on, checking that metrics
// survive concurrent recording (this is the hook-path race test).
func TestTortureWithMetrics(t *testing.T) {
	d := scaleDur(150*time.Millisecond, 60*time.Millisecond)
	for name, r := range meteredEngines(16) {
		t.Run(name, func(t *testing.T) {
			c := r.(MetricsCarrier)
			c.Metrics().EnableTrace(1024)
			runTorture(t, r, d)
			s := r.Stats()
			if s.Waits == 0 || s.Enters == 0 {
				t.Fatalf("metrics empty after torture: waits=%d enters=%d", s.Waits, s.Enters)
			}
			if s.TraceLen == 0 {
				t.Fatal("trace buffer empty after torture with tracing enabled")
			}
			// Concurrent snapshots must be safe while traffic is still
			// conceivable; exercise the aggregation path once more.
			_ = c.Metrics().TraceSnapshot()
		})
	}
}
