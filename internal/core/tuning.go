package core

import (
	"sync/atomic"
	"time"

	"prcu/internal/spin"
)

// WaitTuning selects an engine's wait-side back-off discipline — the
// spin→yield→park escalation every wait-for-readers loop runs through
// (see internal/spin.Tuning). The zero value is the default discipline:
// a short spin budget, then scheduler yields with capped bursts, never a
// timed sleep.
//
// Tunings are an actuation surface, not a correctness knob: any tuning
// preserves the PRCU safety property; what changes is where a blocked
// wait spends its time (CPU versus wake-up latency). The adaptive
// controller (internal/adapt, prcu.Autotuner) switches engines between
// the preset ladder below as load changes; operators can also set one
// statically through the WaitTuner interface.
type WaitTuning = spin.Tuning

// The preset escalation ladder, ordered by decreasing CPU appetite.
var (
	// WaitTuningSpin biases toward latency: a long spin budget and short
	// yield bursts keep the waiter hot on its condition. Right when waits
	// are short and cores are plentiful.
	WaitTuningSpin = WaitTuning{SpinBudget: 512, YieldBurst: 4}
	// WaitTuningYield is the default discipline (the zero WaitTuning
	// spelled out): spin briefly, then yield with capped back-off.
	WaitTuningYield = WaitTuning{}
	// WaitTuningPark biases toward CPU relief: a minimal spin budget and,
	// once yielding has not resolved the wait, timed sleeps between
	// checks. Right under stall storms, when burning cores on wedged
	// waits only starves the readers being waited for.
	WaitTuningPark = WaitTuning{SpinBudget: 16, YieldBurst: 32, Park: 100 * time.Microsecond, ParkAfter: 32}
)

// WaitTuner is implemented by every engine in this package: SetWaitTuning
// installs a wait-side back-off discipline at runtime, WaitTuning reads
// the one in force (zero value = default). Waits already in flight keep
// the discipline they started with; the next wait picks up the new one.
type WaitTuner interface {
	SetWaitTuning(WaitTuning)
	WaitTuning() WaitTuning
}

// tunable is the wait-tuning hook point embedded by every engine,
// alongside metered and resilient. The zero value is the default
// discipline at the cost of one atomic pointer load per wait (not per
// back-off step: waiters capture the tuning when constructed).
type tunable struct {
	tun atomic.Pointer[spin.Tuning]
}

// SetWaitTuning implements WaitTuner. The zero tuning clears back to the
// package default (and the nil fast path).
func (t *tunable) SetWaitTuning(wt WaitTuning) {
	if wt == (WaitTuning{}) {
		t.tun.Store(nil)
		return
	}
	t.tun.Store(&wt)
}

// WaitTuning implements WaitTuner.
func (t *tunable) WaitTuning() WaitTuning {
	if p := t.tun.Load(); p != nil {
		return *p
	}
	return WaitTuning{}
}

// Every flavor exposes the tuning hook.
var (
	_ WaitTuner = (*EER)(nil)
	_ WaitTuner = (*D)(nil)
	_ WaitTuner = (*DEER)(nil)
	_ WaitTuner = (*TimeRCU)(nil)
	_ WaitTuner = (*URCU)(nil)
	_ WaitTuner = (*TreeRCU)(nil)
	_ WaitTuner = (*DistRCU)(nil)
	_ WaitTuner = (*SRCU)(nil)
	_ WaitTuner = (*Packed)(nil)
)

// waiter returns a back-off Waiter carrying the tuning in force. Engines
// construct one (or a few) per wait, never per back-off step.
func (t *tunable) waiter() spin.Waiter { return spin.Waiter{T: t.tun.Load()} }

// tuning returns the raw tuning pointer for the spin helpers that take
// one (nil = defaults).
func (t *tunable) tuning() *spin.Tuning { return t.tun.Load() }
