package core

import (
	"strings"
	"sync"
	"testing"

	"prcu/internal/obs"
)

// enginesWithNop extends engines() with the Nop wrapper, which shares the
// registry and misuse-guard machinery and must behave identically there.
func enginesWithNop(maxReaders int) map[string]func() RCU {
	m := engines(maxReaders)
	m["Nop"] = func() RCU { return NewNop(maxReaders) }
	return m
}

func mustPanicContaining(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, want) {
			t.Fatalf("panic = %v, want containing %q", r, want)
		}
	}()
	fn()
}

func TestDoubleUnregisterPanics(t *testing.T) {
	for name, mk := range enginesWithNop(0) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rd.Unregister()
			mustPanicContaining(t, "Unregister called twice", rd.Unregister)
		})
	}
}

func TestUseAfterUnregisterPanics(t *testing.T) {
	// Nop is excluded: its Enter/Exit are deliberately empty (it measures
	// the zero-synchronization ceiling), so only its Unregister is guarded.
	for name, mk := range engines(0) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rd.Enter(1)
			rd.Exit(1)
			rd.Unregister()
			mustPanicContaining(t, "after Unregister", func() { rd.Enter(2) }) //prcuvet:ignore — Enter must panic, no section opens
			mustPanicContaining(t, "after Unregister", func() { rd.Exit(2) })
		})
	}
}

// TestRejectedUnregisterLeavesReaderUsable pins the recovery contract: an
// Unregister rejected for being inside a critical section must leave the
// reader fully usable, so the caller can exit and retry.
func TestRejectedUnregisterLeavesReaderUsable(t *testing.T) {
	for name, mk := range engines(0) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rd.Enter(7)
			mustPanicContaining(t, "critical section", rd.Unregister)
			rd.Exit(7)
			rd.Enter(8)
			rd.Exit(8)
			rd.Unregister()
		})
	}
}

// TestLaneNotSmearedAcrossSlotReuse is the regression test for per-reader
// observability lanes surviving slot reuse: a reader registered into a
// recycled slot must start from a zeroed lane, while the totals already
// accumulated by the slot's previous owners stay in the engine snapshot.
func TestLaneNotSmearedAcrossSlotReuse(t *testing.T) {
	for name, mk := range engines(1) { // cap 1: every reader reuses slot 0
		t.Run(name, func(t *testing.T) {
			r := mk()
			m := obs.New()
			r.(MetricsCarrier).SetMetrics(m)

			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				rd.Enter(Value(i))
				rd.Exit(Value(i))
			}
			if got := m.Lane(0).Enters(); got != 5 {
				t.Fatalf("first owner lane enters = %d, want 5", got)
			}
			rd.Unregister()

			rd2, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Lane(0).Enters(); got != 0 {
				t.Fatalf("recycled lane starts at %d enters, want 0 (smeared from previous owner)", got)
			}
			rd2.Enter(9)
			rd2.Exit(9)
			if got := m.Lane(0).Enters(); got != 1 {
				t.Fatalf("second owner lane enters = %d, want 1", got)
			}
			if got := m.Snapshot().Enters; got != 6 {
				t.Fatalf("snapshot total enters = %d, want 6 (retired + live)", got)
			}
			rd2.Unregister()
		})
	}
}

// TestReaderChurnConcurrentWaits races reader registration/unregistration
// (with a critical section in between) against concurrent wait-for-readers
// on every engine. Run under -race this exercises the registry's
// claim/release protocol, segment growth, and each engine's scan of a
// population that changes under its feet.
func TestReaderChurnConcurrentWaits(t *testing.T) {
	for name, mk := range enginesWithNop(0) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			stop := make(chan struct{})
			var waiters sync.WaitGroup
			for w := 0; w < 2; w++ {
				waiters.Add(1)
				go func() {
					defer waiters.Done()
					for {
						select {
						case <-stop:
							return
						default:
							r.WaitForReaders(All())
						}
					}
				}()
			}

			const churners = 8
			iters := scale(300, 60)
			var wg sync.WaitGroup
			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						rd, err := r.Register()
						if err != nil {
							t.Errorf("Register: %v", err)
							return
						}
						v := Value(seed*64 + i%16)
						rd.Enter(v)
						rd.Exit(v)
						rd.Unregister()
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			waiters.Wait()

			if got := r.(interface{ LiveReaders() int }).LiveReaders(); got != 0 {
				t.Fatalf("LiveReaders = %d after churn, want 0", got)
			}
			// The registry must end fully drained and still usable.
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			rd.Enter(1)
			rd.Exit(1)
			r.WaitForReaders(All())
			rd.Unregister()
		})
	}
}
