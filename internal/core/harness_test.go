package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The safety harness checks the PRCU safety property (§3.1) directly: if a
// read-side critical section on v is entered before a WaitForReaders(P)
// with P(v) = 1, it must exit before the wait returns.
//
// Each reader goroutine publishes its critical sections through a seqlock
// record: it stores the value, completes Enter, then flips the sequence odd
// ("open"); it flips the sequence even ("closed") immediately before
// invoking Exit. A waiter snapshots all open covered records before calling
// WaitForReaders and verifies every snapshotted sequence has advanced when
// the wait returns. The open marker is set only after Enter returns and the
// closed marker before Exit is invoked, so any failure is a true violation.

type csRecord struct {
	val atomic.Uint64
	seq atomic.Uint64 // odd = open critical section
	_   [48]byte
}

type safetyHarness struct {
	rcu     RCU
	records []csRecord
	stop    atomic.Bool
	fail    chan string
	wg      sync.WaitGroup
}

func newSafetyHarness(r RCU, readers int) *safetyHarness {
	return &safetyHarness{
		rcu:     r,
		records: make([]csRecord, readers),
		fail:    make(chan string, 16),
	}
}

// runReader performs critical sections on values drawn from pick.
func (h *safetyHarness) runReader(t *testing.T, id int, pick func(i int) Value) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		rd, err := h.rcu.Register()
		if err != nil {
			h.fail <- "register: " + err.Error()
			return
		}
		defer rd.Unregister()
		rec := &h.records[id]
		for i := 0; !h.stop.Load(); i++ {
			v := pick(i)
			rec.val.Store(v)
			rd.Enter(v)
			rec.seq.Add(1) // open
			// A small variable-length critical section keeps sections
			// overlapping waiter scans.
			for k := 0; k < i%17; k++ {
				_ = rec.val.Load()
			}
			rec.seq.Add(1) // closed
			rd.Exit(v)
			// Yield periodically so compute-bound readers cannot starve
			// the waiters on GOMAXPROCS=1 hosts.
			if i%32 == 0 {
				runtime.Gosched()
			}
		}
	}()
}

type csSnapshot struct {
	idx int
	seq uint64
}

// runWaiter repeatedly issues WaitForReaders(p) and checks the property.
func (h *safetyHarness) runWaiter(t *testing.T, p Predicate, waits int) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		var snap []csSnapshot
		for n := 0; n < waits && !h.stop.Load(); n++ {
			snap = snap[:0]
			for i := range h.records {
				rec := &h.records[i]
				s := rec.seq.Load()
				if s&1 == 0 {
					continue
				}
				// While seq is odd only the owner may write val, and it
				// wrote val before flipping odd — the read is stable.
				if p.Holds(rec.val.Load()) {
					snap = append(snap, csSnapshot{idx: i, seq: s})
				}
			}
			h.rcu.WaitForReaders(p)
			for _, s := range snap {
				if cur := h.records[s.idx].seq.Load(); cur == s.seq {
					h.fail <- "covered critical section survived WaitForReaders"
					h.stop.Store(true)
					return
				}
			}
		}
	}()
}

func (h *safetyHarness) finish(t *testing.T, d time.Duration) {
	timer := time.AfterFunc(d, func() { h.stop.Store(true) })
	defer timer.Stop()
	done := make(chan struct{})
	go func() { h.wg.Wait(); close(done) }()
	select {
	case msg := <-h.fail:
		h.stop.Store(true)
		<-done
		t.Fatal(msg)
	case <-done:
		select {
		case msg := <-h.fail:
			t.Fatal(msg)
		default:
		}
	case <-time.After(30 * time.Second):
		h.stop.Store(true)
		t.Fatal("safety harness deadlocked (possible WaitForReaders livelock)")
	}
}

// scale sizes a stress-test iteration count: full normally, trimmed
// under -short. Full mode is itself sized to terminate reliably on
// single-CPU hosts, where hot reader loops contend with waiters for the
// one processor.
func scale(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// scaleDur is scale for durations.
func scaleDur(full, short time.Duration) time.Duration {
	if testing.Short() {
		return short
	}
	return full
}

// engines lists every engine under test with a fresh-construction function.
func engines(maxReaders int) map[string]func() RCU {
	return map[string]func() RCU{
		"EER":    func() RCU { return NewEER(maxReaders, nil) },
		"D":      func() RCU { return NewD(maxReaders, 64) },
		"DEER":   func() RCU { return NewDEER(maxReaders, 16, nil) },
		"Time":   func() RCU { return NewTimeRCU(maxReaders, nil) },
		"URCU":   func() RCU { return NewURCU(maxReaders) },
		"Tree":   func() RCU { return NewTreeRCU(maxReaders) },
		"Dist":   func() RCU { return NewDistRCU(maxReaders) },
		"SRCU":   func() RCU { return NewSRCU(maxReaders) },
		"Packed": func() RCU { return NewPacked(maxReaders) },
	}
}

func TestSafetyWildcardPredicate(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			h := newSafetyHarness(mk(), 8)
			for i := 0; i < 8; i++ {
				id := i
				h.runReader(t, id, func(i int) Value { return Value(id*1000 + i%50) })
			}
			for i := 0; i < 3; i++ {
				h.runWaiter(t, All(), scale(250, 80))
			}
			h.finish(t, scaleDur(200*time.Millisecond, 60*time.Millisecond))
		})
	}
}

func TestSafetySingletonPredicate(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			h := newSafetyHarness(mk(), 8)
			for i := 0; i < 8; i++ {
				id := i
				// Half the readers hammer the covered value, half read
				// other values (the waits must not be confused by them).
				h.runReader(t, id, func(i int) Value {
					if id%2 == 0 {
						return 7
					}
					return Value(100 + id + i%13)
				})
			}
			for i := 0; i < 3; i++ {
				h.runWaiter(t, Singleton(7), scale(250, 80))
			}
			h.finish(t, scaleDur(200*time.Millisecond, 60*time.Millisecond))
		})
	}
}

func TestSafetyIntervalPredicate(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			h := newSafetyHarness(mk(), 8)
			for i := 0; i < 8; i++ {
				id := i
				h.runReader(t, id, func(i int) Value { return Value((id*31 + i) % 40) })
			}
			for i := 0; i < 3; i++ {
				h.runWaiter(t, Interval(10, 20), scale(200, 60))
			}
			h.finish(t, scaleDur(200*time.Millisecond, 60*time.Millisecond))
		})
	}
}

func TestSafetyFuncPredicate(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			h := newSafetyHarness(mk(), 6)
			for i := 0; i < 6; i++ {
				id := i
				h.runReader(t, id, func(i int) Value { return Value((id + i) % 32) })
			}
			odd := Func(func(v Value) bool { return v%2 == 1 })
			for i := 0; i < 2; i++ {
				h.runWaiter(t, odd, scale(150, 50))
			}
			h.finish(t, scaleDur(200*time.Millisecond, 60*time.Millisecond))
		})
	}
}

// TestHarnessDetectsViolations ensures the safety-checking method has
// teeth: with a reader deterministically parked inside a critical section,
// the deliberately unsafe no-op engine must be caught, while a correct
// engine is exonerated by construction (its wait would block, which we also
// verify via a timeout on a correct engine below).
func TestHarnessDetectsViolations(t *testing.T) {
	r := NewNop(16)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	var rec csRecord
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		rec.val.Store(5)
		rd.Enter(5)
		rec.seq.Add(1) // open
		close(entered)
		<-release
		rec.seq.Add(1) // closed
		rd.Exit(5)
	}()
	<-entered
	s := rec.seq.Load()
	if s&1 != 1 {
		t.Fatal("expected an open critical section")
	}
	r.WaitForReaders(All())
	if rec.seq.Load() != s {
		t.Fatal("critical section closed unexpectedly")
	}
	// seq unchanged after the wait returned: the harness's check condition
	// fires, i.e. the no-op engine violates the safety property.
	close(release)
}

// TestWaitBlocksOnOpenCriticalSection is the positive counterpart: a
// correct engine's WaitForReaders must not return while a covered critical
// section entered before it is still open.
func TestWaitBlocksOnOpenCriticalSection(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			exited := make(chan struct{})
			go func() {
				rd.Enter(5)
				close(entered)
				<-release
				rd.Exit(5)
				close(exited)
				rd.Unregister()
			}()
			<-entered
			returned := make(chan struct{})
			go func() {
				r.WaitForReaders(Singleton(5))
				close(returned)
			}()
			select {
			case <-returned:
				t.Fatal("WaitForReaders returned while a covered critical section was open")
			case <-time.After(50 * time.Millisecond):
			}
			close(release)
			select {
			case <-returned:
			case <-time.After(10 * time.Second):
				t.Fatal("WaitForReaders did not return after the reader exited")
			}
			<-exited
		})
	}
}

// TestWaitSkipsUncoveredCriticalSection checks the PRCU side of the
// property: a wait whose predicate does not cover an open critical
// section's value must not block on it (for the predicate-aware engines).
func TestWaitSkipsUncoveredCriticalSection(t *testing.T) {
	prcuEngines := map[string]func() RCU{
		"EER":  func() RCU { return NewEER(16, nil) },
		"D":    func() RCU { return NewD(16, 1024) },
		"DEER": func() RCU { return NewDEER(16, 16, nil) },
	}
	for name, mk := range prcuEngines {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, err := r.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			go func() {
				rd.Enter(1000) // far from the waited value, no hash collision with 5
				close(entered)
				<-release
				rd.Exit(1000)
				rd.Unregister()
			}()
			<-entered
			returned := make(chan struct{})
			go func() {
				r.WaitForReaders(Singleton(5))
				close(returned)
			}()
			select {
			case <-returned:
			case <-time.After(10 * time.Second):
				t.Fatal("WaitForReaders blocked on an uncovered critical section")
			}
			close(release)
		})
	}
}

// TestWaitLivenessUnderChurn checks that waits terminate while readers
// continuously enter and exit the covered value — the scenario D-PRCU's
// gate protocol exists for.
func TestWaitLivenessUnderChurn(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rd, err := r.Register()
					if err != nil {
						t.Error(err)
						return
					}
					defer rd.Unregister()
					for i := 0; !stop.Load(); i++ {
						rd.Enter(42)
						rd.Exit(42)
						if i%32 == 0 {
							runtime.Gosched()
						}
					}
				}()
			}
			done := make(chan struct{})
			go func() {
				iters := scale(120, 40)
				for i := 0; i < iters; i++ {
					r.WaitForReaders(Singleton(42))
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Error("WaitForReaders did not terminate under reader churn")
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestConcurrentWaiters checks that many goroutines may wait concurrently.
func TestConcurrentWaiters(t *testing.T) {
	for name, mk := range engines(32) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rd, err := r.Register()
					if err != nil {
						t.Error(err)
						return
					}
					defer rd.Unregister()
					for j := 0; !stop.Load(); j++ {
						v := Value((id + j) % 8)
						rd.Enter(v)
						rd.Exit(v)
						if j%32 == 0 {
							runtime.Gosched()
						}
					}
				}(i)
			}
			var waiters sync.WaitGroup
			for i := 0; i < 8; i++ {
				waiters.Add(1)
				go func(id int) {
					defer waiters.Done()
					iters := scale(40, 12)
					for j := 0; j < iters; j++ {
						r.WaitForReaders(Singleton(Value(id % 8)))
					}
				}(i)
			}
			waitDone := make(chan struct{})
			go func() { waiters.Wait(); close(waitDone) }()
			select {
			case <-waitDone:
			case <-time.After(30 * time.Second):
				t.Error("concurrent waiters did not finish")
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}
