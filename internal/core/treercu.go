package core

import (
	"sync"

	"prcu/internal/obs"
	"prcu/internal/pad"
	"prcu/internal/spin"
)

// treeFanout is the number of child bits packed per tree word. The Linux
// implementation packs more, but a small fan-out exercises the hierarchy
// even at modest reader counts, which is the structural property under
// test.
const treeFanout = 8

// TreeRCU implements the Linux-kernel hierarchical RCU algorithm (§2.2)
// under the paper's userspace restriction: the states between data
// structure operations are treated as quiescent, so a reader reports
// quiescence when it exits its critical section rather than at context
// switches. (As the paper notes, this gives far shorter grace periods than
// the in-kernel original; it is the only way to apply Tree RCU to general
// userspace code.)
//
// Conceptually there is a bit per reader; wait-for-readers sets the bits of
// readers currently inside critical sections and a reader's exit clears its
// bit, propagating up the tree whenever it clears the last bit of a word.
// The waiter polls only the root. Waiters are serialized, as in Linux.
//
// Reader cost is the algorithm's selling point: Enter and Exit touch only
// the reader's own padded generation counter (plus the leaf bit on exit
// when a grace period is in flight), so the read-side is contention free.
type TreeRCU struct {
	metered
	reg *registry
	mu  sync.Mutex
	// state[j] is reader j's generation: even = quiescent, odd = inside a
	// critical section. The waiter snapshots generations to resolve the
	// race between seeding a reader's bit and that reader exiting.
	state []pad.Uint64
	// levels[0] are the leaves (bit j%treeFanout of word j/treeFanout is
	// reader j); levels[l+1] has one bit per levels[l] word. The top level
	// is a single word — the root the waiter polls.
	levels [][]pad.Uint64
	// masks/waited are waiter-local scratch, reused under mu.
	masks  [][]uint64
	waited []treeWaited
}

type treeWaited struct {
	slot int
	gen  uint64
}

// NewTreeRCU returns a Tree RCU engine with capacity for maxReaders
// concurrent readers.
func NewTreeRCU(maxReaders int) *TreeRCU {
	t := &TreeRCU{
		reg:   newRegistry(maxReaders),
		state: make([]pad.Uint64, maxReaders),
	}
	for n := maxReaders; ; n = (n + treeFanout - 1) / treeFanout {
		words := (n + treeFanout - 1) / treeFanout
		t.levels = append(t.levels, make([]pad.Uint64, words))
		t.masks = append(t.masks, make([]uint64, words))
		if words == 1 {
			break
		}
	}
	return t
}

// Name implements RCU.
func (t *TreeRCU) Name() string { return "Tree RCU" }

// MaxReaders implements RCU.
func (t *TreeRCU) MaxReaders() int { return t.reg.maxReaders() }

// Levels returns the height of the combining tree (for tests).
func (t *TreeRCU) Levels() int { return len(t.levels) }

type treeReader struct {
	t     *TreeRCU
	state *pad.Uint64
	lane  *obs.ReaderLane
	slot  int
}

// Register implements RCU.
func (t *TreeRCU) Register() (Reader, error) {
	slot, err := t.reg.acquire()
	if err != nil {
		return nil, err
	}
	s := &t.state[slot]
	if s.Load()&1 == 1 {
		// A previous owner must have left the slot quiescent.
		panic("prcu: reader slot reused while marked in-CS")
	}
	return &treeReader{t: t, state: s, lane: t.lane(slot), slot: slot}, nil
}

// Enter implements Reader: flip the generation to odd. No shared-global
// work — this is the (near) zero-overhead read side of Tree RCU.
func (r *treeReader) Enter(v Value) {
	r.state.Add(1)
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader: flip the generation to even and report
// quiescence by clearing our leaf bit if a waiter seeded it.
func (r *treeReader) Exit(v Value) {
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.state.Add(1)
	r.t.clearBit(0, r.slot/treeFanout, uint64(1)<<(r.slot%treeFanout))
}

// Unregister implements Reader.
func (r *treeReader) Unregister() {
	if r.state.Load()&1 == 1 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.t.reg.release(r.slot)
	r.state = nil
}

// clearBit clears bit in word idx of the given level; when the word drops
// to zero it propagates, clearing this word's bit in the parent. Clearing
// an unset bit is a no-op and never propagates — that asymmetry is what
// lets exits race harmlessly with a waiter that has not (or will not) seed
// their bit.
func (t *TreeRCU) clearBit(level, idx int, bit uint64) {
	w := &t.levels[level][idx]
	for {
		old := w.Load()
		if old&bit == 0 {
			return
		}
		nw := old &^ bit
		if w.CompareAndSwap(old, nw) {
			if nw == 0 && level+1 < len(t.levels) {
				t.clearBit(level+1, idx/treeFanout, uint64(1)<<(idx%treeFanout))
			}
			return
		}
	}
}

// WaitForReaders implements RCU. The predicate is ignored.
//
// Protocol: under the waiter lock, snapshot every reader's generation and
// collect those currently inside a critical section; publish their bits
// top-down (ancestors before leaves) so an exit can never propagate a clear
// past an unset ancestor; re-check each collected generation and clear the
// bits of readers that exited while we were seeding; then poll the root.
// The previous grace period left the whole tree at zero, so the seeding
// stores cannot clobber concurrent clears.
func (t *TreeRCU) WaitForReaders(Predicate) {
	m := t.met
	var start int64
	if m != nil {
		start = m.WaitBegin()
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	var scanned uint64
	t.waited = t.waited[:0]
	for l := range t.masks {
		clear(t.masks[l])
	}
	limit := t.reg.scanLimit()
	for j := 0; j < limit; j++ {
		if !t.reg.isActive(j) {
			continue
		}
		scanned++
		if gen := t.state[j].Load(); gen&1 == 1 {
			t.waited = append(t.waited, treeWaited{slot: j, gen: gen})
			t.masks[0][j/treeFanout] |= 1 << (j % treeFanout)
		}
	}
	if len(t.waited) == 0 {
		if m != nil {
			m.WaitEnd(start, scanned, 0, 0)
		}
		return
	}
	for l := 0; l+1 < len(t.masks); l++ {
		for idx, m := range t.masks[l] {
			if m != 0 {
				t.masks[l+1][idx/treeFanout] |= 1 << (idx % treeFanout)
			}
		}
	}
	for l := len(t.levels) - 1; l >= 0; l-- {
		for idx, m := range t.masks[l] {
			if m != 0 {
				t.levels[l][idx].Store(m)
			}
		}
	}
	// Re-check: a reader that exited (or moved to a later section) between
	// our snapshot and our seeding would never clear its bit — clear it on
	// its behalf. If it is still in the snapshotted section, its own exit
	// will clear.
	for _, wd := range t.waited {
		if t.state[wd.slot].Load() != wd.gen {
			t.clearBit(0, wd.slot/treeFanout, uint64(1)<<(wd.slot%treeFanout))
		}
	}
	root := &t.levels[len(t.levels)-1][0]
	var w spin.Waiter
	for root.Load() != 0 {
		w.Wait()
	}
	if m != nil {
		// The tree aggregates per-reader progress, so waited readers are
		// those seeded into the bitmap; the single root poll either stayed
		// in its spin phase or crossed into yields once for the whole set.
		var parked uint64
		if w.Yielded() {
			parked = 1
		}
		m.WaitEnd(start, scanned, uint64(len(t.waited)), parked)
	}
}
