package core

import (
	"context"
	"sync"
	"sync/atomic"

	"prcu/internal/obs"
	"prcu/internal/pad"
)

// treeFanout is the number of child bits packed per tree word. The Linux
// implementation packs more, but a small fan-out exercises the hierarchy
// even at modest reader counts, which is the structural property under
// test.
const treeFanout = 8

// treeLevels is one generation of the combining tree, sized to cover a
// fixed span of reader slots. When the registry grows past the span, the
// next WaitForReaders builds a bigger generation and swaps it in — always
// under the waiter lock. A cancelled wait can abandon seeded bits, but
// that is benign: every Exit clears its own bit against the current
// generation (a no-op when unset), the next wait re-snapshots and
// re-seeds still-open readers with Store overwrites, and a swapped-out
// generation is discarded whole, so stuck bits are never polled.
type treeLevels struct {
	// slots is the number of leaf slots this generation covers.
	slots int
	// levels[0] are the leaves (bit j%treeFanout of word j/treeFanout is
	// reader j); levels[l+1] has one bit per levels[l] word. The top level
	// is a single word — the root the waiter polls.
	levels [][]pad.Uint64
	// masks/waited are waiter-local scratch, reused under mu.
	masks  [][]uint64
	waited []treeWaited
}

type treeWaited struct {
	gen  uint64
	slot int
	// state points at the reader's generation counter, so the re-check
	// does not have to chase the slot back through the segment list.
	state *pad.Uint64
}

// buildTree returns an all-zero tree generation covering slots readers.
func buildTree(slots int) *treeLevels {
	tl := &treeLevels{slots: slots}
	for n := slots; ; n = (n + treeFanout - 1) / treeFanout {
		words := (n + treeFanout - 1) / treeFanout
		tl.levels = append(tl.levels, make([]pad.Uint64, words))
		tl.masks = append(tl.masks, make([]uint64, words))
		if words == 1 {
			break
		}
	}
	return tl
}

// TreeRCU implements the Linux-kernel hierarchical RCU algorithm (§2.2)
// under the paper's userspace restriction: the states between data
// structure operations are treated as quiescent, so a reader reports
// quiescence when it exits its critical section rather than at context
// switches. (As the paper notes, this gives far shorter grace periods than
// the in-kernel original; it is the only way to apply Tree RCU to general
// userspace code.)
//
// Conceptually there is a bit per reader; wait-for-readers sets the bits of
// readers currently inside critical sections and a reader's exit clears its
// bit, propagating up the tree whenever it clears the last bit of a word.
// The waiter polls only the root. Waiters are serialized, as in Linux.
//
// Reader cost is the algorithm's selling point: Enter and Exit touch only
// the reader's own padded generation counter (plus the leaf bit on exit
// when a grace period is in flight), so the read-side is contention free.
type TreeRCU struct {
	metered
	resilient
	tunable
	reg *registry
	mu  sync.Mutex
	// tree is the current combining-tree generation. Swapped only under mu
	// and only while all-zero; readers load it on Exit. SC atomics order a
	// reader's post-Enter tree load after the swap that preceded the
	// waiter's snapshot of that reader, so a seeded reader always clears
	// its bit in the generation it was seeded into (see WaitForReaders).
	tree atomic.Pointer[treeLevels]
}

// NewTreeRCU returns a Tree RCU engine capped at maxReaders concurrent
// readers (0 = grow on demand). Per-reader state is a generation counter:
// even = quiescent, odd = inside a critical section; the waiter snapshots
// generations to resolve the race between seeding a reader's bit and that
// reader exiting.
func NewTreeRCU(maxReaders int) *TreeRCU {
	t := &TreeRCU{}
	t.reg = newRegistry(maxReaders, func(base, size int) any {
		return make([]pad.Uint64, size)
	})
	t.tree.Store(buildTree(t.treeSpan()))
	return t
}

// treeSpan is the number of leaf slots the combining tree must cover:
// with a cap, the whole cap up front (the tree never needs to grow);
// uncapped, the registry's currently allocated capacity.
func (t *TreeRCU) treeSpan() int {
	if c := t.reg.maxReaders(); c > 0 {
		return c
	}
	return t.reg.capacity()
}

// Name implements RCU.
func (t *TreeRCU) Name() string { return "Tree RCU" }

// MaxReaders implements RCU.
func (t *TreeRCU) MaxReaders() int { return t.reg.maxReaders() }

// LiveReaders returns the number of currently registered readers.
func (t *TreeRCU) LiveReaders() int { return t.reg.liveReaders() }

// SlotCapacity implements SlotCapacitor.
func (t *TreeRCU) SlotCapacity() int { return t.reg.capacity() }

// Levels returns the height of the combining tree (for tests).
func (t *TreeRCU) Levels() int { return len(t.tree.Load().levels) }

type treeReader struct {
	readerGuard
	t     *TreeRCU
	state *pad.Uint64
	lane  *obs.ReaderLane
	slot  int
}

// Register implements RCU.
func (t *TreeRCU) Register() (Reader, error) {
	slot, sg, err := t.reg.acquire()
	if err != nil {
		return nil, err
	}
	s := &sg.state.([]pad.Uint64)[slot-sg.base]
	if s.Load()&1 == 1 {
		// A previous owner must have left the slot quiescent.
		panic("prcu: reader slot reused while marked in-CS")
	}
	return &treeReader{t: t, state: s, lane: t.lane(slot), slot: slot}, nil
}

// Enter implements Reader: flip the generation to odd. No shared-global
// work — this is the (near) zero-overhead read side of Tree RCU.
func (r *treeReader) Enter(v Value) {
	r.check()
	r.state.Add(1)
	if r.lane != nil {
		r.lane.OnEnter(v)
	}
}

// Exit implements Reader: flip the generation to even and report
// quiescence by clearing our leaf bit if a waiter seeded it.
func (r *treeReader) Exit(v Value) {
	r.check()
	if r.lane != nil {
		r.lane.OnExit(v)
	}
	r.state.Add(1)
	tl := r.t.tree.Load()
	clearBit(tl, 0, r.slot/treeFanout, uint64(1)<<(r.slot%treeFanout))
}

// Do implements Reader.
func (r *treeReader) Do(v Value, fn func()) { DoCritical(r, v, fn) }

// Unregister implements Reader.
func (r *treeReader) Unregister() {
	r.closing()
	if r.state.Load()&1 == 1 {
		panic("prcu: Unregister inside a read-side critical section")
	}
	r.markClosed()
	r.t.reg.release(r.slot)
	r.state = nil
}

// clearBit clears bit in word idx of the given level; when the word drops
// to zero it propagates, clearing this word's bit in the parent. Clearing
// an unset bit is a no-op and never propagates — that asymmetry is what
// lets exits race harmlessly with a waiter that has not (or will not) seed
// their bit. An index beyond the generation's span belongs to a reader
// registered after the generation was built; such a reader is never
// seeded into it, so there is nothing to clear.
func clearBit(tl *treeLevels, level, idx int, bit uint64) {
	if idx >= len(tl.levels[level]) {
		return
	}
	w := &tl.levels[level][idx]
	for {
		old := w.Load()
		if old&bit == 0 {
			return
		}
		nw := old &^ bit
		if w.CompareAndSwap(old, nw) {
			if nw == 0 && level+1 < len(tl.levels) {
				clearBit(tl, level+1, idx/treeFanout, uint64(1)<<(idx%treeFanout))
			}
			return
		}
	}
}

// WaitForReaders implements RCU. The predicate is ignored.
//
// Protocol: under the waiter lock, grow the tree generation if the
// registry outgrew it (safe: the swap is ordered before every snapshot
// read below, so any reader we seed observes the new generation on exit,
// and a swapped-out generation — even one with bits a cancelled wait
// abandoned — is discarded whole); snapshot every reader's generation and
// collect those currently inside a critical section; publish their bits
// top-down (ancestors before leaves) so an exit can never propagate a
// clear past an unset ancestor; re-check each collected generation and
// clear the bits of readers that exited while we were seeding; then poll
// the root.
//
// Readers in slots beyond the generation's span registered after the span
// was fixed — i.e. after this wait began — so their critical sections are
// not pre-existing and are legitimately skipped.
func (t *TreeRCU) WaitForReaders(p Predicate) {
	if st := t.stallCfg.Load(); st != nil {
		// Watchdog armed: run the controlled twin of the loop below.
		t.waitReaders(p, newControl(nil, st, p, t))
		return
	}
	// Unarmed fast path: the pre-resilience wait, verbatim, so an unarmed
	// wait costs exactly what it did before the watchdog existed. Keep in
	// sync with waitReaders, its wc.step-controlled twin.
	m := t.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBegin()
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	tl := t.tree.Load()
	if span := t.treeSpan(); span > tl.slots {
		tl = buildTree(span)
		t.tree.Store(tl)
	}

	var scanned uint64
	tl.waited = tl.waited[:0]
	for l := range tl.masks {
		clear(tl.masks[l])
	}
	t.reg.forEachActive(func(sg *segment, i int) {
		slot := sg.base + i
		if slot >= tl.slots {
			return
		}
		scanned++
		s := &sg.state.([]pad.Uint64)[i]
		if gen := s.Load(); gen&1 == 1 {
			tl.waited = append(tl.waited, treeWaited{gen: gen, slot: slot, state: s})
			tl.masks[0][slot/treeFanout] |= 1 << (slot % treeFanout)
		}
	})
	if len(tl.waited) == 0 {
		if m != nil {
			m.WaitEnd(start, scanned, 0, 0)
		}
		return
	}
	for l := 0; l+1 < len(tl.masks); l++ {
		for idx, mask := range tl.masks[l] {
			if mask != 0 {
				tl.masks[l+1][idx/treeFanout] |= 1 << (idx % treeFanout)
			}
		}
	}
	for l := len(tl.levels) - 1; l >= 0; l-- {
		for idx, mask := range tl.masks[l] {
			if mask != 0 {
				tl.levels[l][idx].Store(mask)
			}
		}
	}
	// Re-check: a reader that exited (or moved to a later section) between
	// our snapshot and our seeding would never clear its bit — clear it on
	// its behalf. If it is still in the snapshotted section, its own exit
	// will clear.
	for _, wd := range tl.waited {
		if wd.state.Load() != wd.gen {
			clearBit(tl, 0, wd.slot/treeFanout, uint64(1)<<(wd.slot%treeFanout))
		}
	}
	root := &tl.levels[len(tl.levels)-1][0]
	w := t.waiter()
	// The tree aggregates progress, so per-slot delays are invisible at
	// the root; blame conservatively charges the whole root poll to every
	// seeded slot (an exited-early reader is over-blamed, never missed).
	bs := m.BlameStart(&start)
	for root.Load() != 0 {
		w.Wait()
	}
	if bs != 0 {
		for _, wd := range tl.waited {
			m.BlameSample(&start, wd.slot, bs)
		}
	}
	if m != nil {
		// The tree aggregates per-reader progress, so waited readers are
		// those seeded into the bitmap; the single root poll either stayed
		// in its spin phase or crossed into yields once for the whole set.
		var parked uint64
		if w.Yielded() {
			parked = 1
		}
		m.WaitEnd(start, scanned, uint64(len(tl.waited)), parked)
	}
}

// WaitForReadersCtx implements RCU: WaitForReaders bounded by ctx.
// Cancellation mid-poll abandons this wait's seeded bits; that is safe
// because still-open readers clear their own bits on exit and the next
// wait re-snapshots and overwrites the bitmap (see treeLevels).
func (t *TreeRCU) WaitForReadersCtx(ctx context.Context, p Predicate) error {
	wc := t.control(ctx, p, t)
	if err := wc.pre(); err != nil {
		return err
	}
	return t.waitReaders(p, wc)
}

func (t *TreeRCU) waitReaders(_ Predicate, wc *waitControl) error {
	m := t.met
	var start obs.WaitSpan
	if m != nil {
		start = m.WaitBeginCtx(wc.Ctx())
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	tl := t.tree.Load()
	if span := t.treeSpan(); span > tl.slots {
		tl = buildTree(span)
		t.tree.Store(tl)
	}

	var scanned uint64
	tl.waited = tl.waited[:0]
	for l := range tl.masks {
		clear(tl.masks[l])
	}
	t.reg.forEachActive(func(sg *segment, i int) {
		slot := sg.base + i
		if slot >= tl.slots {
			return
		}
		scanned++
		s := &sg.state.([]pad.Uint64)[i]
		if gen := s.Load(); gen&1 == 1 {
			tl.waited = append(tl.waited, treeWaited{gen: gen, slot: slot, state: s})
			tl.masks[0][slot/treeFanout] |= 1 << (slot % treeFanout)
		}
	})
	if len(tl.waited) == 0 {
		if m != nil {
			m.WaitEnd(start, scanned, 0, 0)
		}
		return nil
	}
	for l := 0; l+1 < len(tl.masks); l++ {
		for idx, mask := range tl.masks[l] {
			if mask != 0 {
				tl.masks[l+1][idx/treeFanout] |= 1 << (idx % treeFanout)
			}
		}
	}
	for l := len(tl.levels) - 1; l >= 0; l-- {
		for idx, mask := range tl.masks[l] {
			if mask != 0 {
				tl.levels[l][idx].Store(mask)
			}
		}
	}
	// Re-check: a reader that exited (or moved to a later section) between
	// our snapshot and our seeding would never clear its bit — clear it on
	// its behalf. If it is still in the snapshotted section, its own exit
	// will clear.
	for _, wd := range tl.waited {
		if wd.state.Load() != wd.gen {
			clearBit(tl, 0, wd.slot/treeFanout, uint64(1)<<(wd.slot%treeFanout))
		}
	}
	root := &tl.levels[len(tl.levels)-1][0]
	w := t.waiter()
	// See the fast path: the whole root poll is charged to every seeded
	// slot, since the tree hides which of them actually held it up.
	bs := m.BlameStart(&start)
	var werr error
	for root.Load() != 0 {
		if err := wc.step(&w); err != nil {
			werr = err
			break
		}
	}
	if bs != 0 {
		for _, wd := range tl.waited {
			m.BlameSample(&start, wd.slot, bs)
		}
	}
	if m != nil {
		// The tree aggregates per-reader progress, so waited readers are
		// those seeded into the bitmap; the single root poll either stayed
		// in its spin phase or crossed into yields once for the whole set.
		var parked uint64
		if w.Yielded() {
			parked = 1
		}
		m.WaitEnd(start, scanned, uint64(len(tl.waited)), parked)
	}
	return werr
}

// stalledReaders implements stallProber: readers whose generation counter
// is odd (inside a critical section). Tree RCU waits for all readers, so
// no value filtering applies.
func (t *TreeRCU) stalledReaders(Predicate) []StalledReader {
	var out []StalledReader
	t.reg.forEachActive(func(sg *segment, i int) {
		s := &sg.state.([]pad.Uint64)[i]
		if s.Load()&1 == 1 {
			out = append(out, StalledReader{Slot: sg.base + i})
		}
	})
	return out
}
