package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/tsc"
)

// findCollision returns two distinct values whose hashes collide under
// the given mask, and a third value that collides with neither.
func findCollision(t *testing.T, mask uint64) (a, b, free Value) {
	t.Helper()
	a = 1
	for b = a + 1; ; b++ {
		if hashValue(b)&mask == hashValue(a)&mask {
			break
		}
		if b > 1<<20 {
			t.Fatal("no collision found")
		}
	}
	for free = b + 1; ; free++ {
		if hashValue(free)&mask != hashValue(a)&mask && hashValue(free)&mask != hashValue(b)&mask {
			return a, b, free
		}
	}
}

// waitReturnsWithin asserts WaitForReaders(p) completes promptly.
func waitReturnsWithin(t *testing.T, r RCU, p Predicate, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(p)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("WaitForReaders blocked unexpectedly")
	}
}

// waitBlocks asserts WaitForReaders(p) does not return until release runs.
func waitBlocks(t *testing.T, r RCU, p Predicate, release func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		r.WaitForReaders(p)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitForReaders returned while the covered section was open")
	case <-time.After(30 * time.Millisecond):
	}
	release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitForReaders did not return after release")
	}
}

// TestDPRCUCollisionIsConservative: D-PRCU cannot distinguish values that
// hash to the same counter, so a wait on a colliding value must block —
// conservative, hence safe.
func TestDPRCUCollisionIsConservative(t *testing.T) {
	d := NewD(4, 16)
	a, b, free := findCollision(t, 15)
	rd, _ := d.Register()
	rd.Enter(a)
	// Wait on the colliding value must block until exit.
	waitBlocks(t, d, Singleton(b), func() { rd.Exit(a) })
	// Wait on a non-colliding value must not block even with a reader in
	// a critical section elsewhere.
	rd.Enter(a)
	waitReturnsWithin(t, d, Singleton(free), 10*time.Second)
	rd.Exit(a)
	rd.Unregister()
}

// TestDEERCollisionSkipsUncovered: DEER stores the value in the node, so
// a wait on a colliding-but-uncovered value can (and does) skip the
// reader, unlike D-PRCU.
func TestDEERCollisionSkipsUncovered(t *testing.T) {
	d := NewDEER(4, 16, nil)
	a, b, _ := findCollision(t, 15)
	rd, _ := d.Register()
	rd.Enter(a)
	waitReturnsWithin(t, d, Singleton(b), 10*time.Second)
	// But a covering predicate over the same node must block.
	waitBlocks(t, d, Singleton(a), func() { rd.Exit(a) })
	rd.Unregister()
}

// TestEERRevaluatesPredicatePerReader: the paper's Figure 4 scenario in
// miniature — a reader that moves off a covered value releases the wait
// through re-entry, not only through exit.
func TestEERReaderReentryReleasesWait(t *testing.T) {
	e := NewEER(4, nil)
	rd, _ := e.Register()
	rd.Enter(7)
	done := make(chan struct{})
	go func() {
		e.WaitForReaders(Singleton(7))
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("wait returned while reader was on covered value")
	default:
	}
	// Exit and re-enter on an uncovered value: the wait must now finish
	// even though the reader never goes quiescent again.
	rd.Exit(7)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			rd.Enter(99)
			rd.Exit(99)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wait did not release after reader moved to uncovered value")
	}
	stop.Store(true)
	wg.Wait()
	rd.Unregister()
}

// TestManualClockWaitSemantics pins EER's time-based quiescence detection
// to a deterministic clock: a wait started strictly after an enter blocks
// until the reader posts a strictly later time (here: Infinity at exit).
func TestManualClockWaitSemantics(t *testing.T) {
	clock := tsc.NewManual(100)
	e := NewEER(4, clock)
	rd, _ := e.Register()
	rd.Enter(5) // records t=100
	clock.Advance(10)
	waitBlocks(t, e, Singleton(5), func() { rd.Exit(5) })
	rd.Unregister()
}

// TestRegisterChurnDuringWaits stresses slot reuse racing wait scans.
func TestRegisterChurnDuringWaits(t *testing.T) {
	for name, mk := range engines(8) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for !stop.Load() {
						rd, err := r.Register()
						if err != nil {
							continue // transient exhaustion is fine
						}
						for i := 0; i < 10; i++ {
							v := Value(g*10 + i)
							rd.Enter(v)
							rd.Exit(v)
						}
						rd.Unregister()
					}
				}(g)
			}
			done := make(chan struct{})
			go func() {
				for i := 0; i < 300; i++ {
					r.WaitForReaders(All())
					r.WaitForReaders(Singleton(Value(i % 40)))
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Error("waits did not complete under register churn")
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestWaitersDoNotWaitForThemselves: an updater that was recently a
// reader (the CITRUS pattern: traverse, exit, lock, wait) must not block
// on its own slot.
func TestWaitersDoNotWaitForThemselves(t *testing.T) {
	for name, mk := range engines(4) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			rd, _ := r.Register()
			rd.Enter(5)
			rd.Exit(5)
			done := make(chan struct{})
			go func() {
				// Same goroutine pattern is typical, but the property is
				// about the slot either way.
				r.WaitForReaders(Singleton(5))
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("wait blocked on the waiter's own quiescent slot")
			}
			rd.Unregister()
		})
	}
}

// TestDEERGeneralPredicateScansAllNodes: a non-enumerable predicate must
// still be safe on DEER (it scans the whole per-reader table).
func TestDEERGeneralPredicate(t *testing.T) {
	d := NewDEER(4, 16, nil)
	rd, _ := d.Register()
	rd.Enter(41)
	odd := Func(func(v Value) bool { return v%2 == 1 })
	waitBlocks(t, d, odd, func() { rd.Exit(41) })
	// Even value: predicate does not cover it.
	rd.Enter(40)
	waitReturnsWithin(t, d, odd, 10*time.Second)
	rd.Exit(40)
	rd.Unregister()
}

// TestDGeneralPredicateDrainsWholeTable: D-PRCU's fallback for general
// predicates drains every node — safe for any value.
func TestDGeneralPredicate(t *testing.T) {
	d := NewD(4, 16)
	rd, _ := d.Register()
	rd.Enter(41)
	odd := Func(func(v Value) bool { return v%2 == 1 })
	waitBlocks(t, d, odd, func() { rd.Exit(41) })
	rd.Unregister()
}

// TestPluggableClockEngines: the timestamp engines accept any Clock,
// including the logical fetch-add clock (§4.1's portable alternative).
func TestLogicalClockEngines(t *testing.T) {
	for _, mk := range []func() RCU{
		func() RCU { return NewEER(8, tsc.NewLogical()) },
		func() RCU { return NewDEER(8, 16, tsc.NewLogical()) },
		func() RCU { return NewTimeRCU(8, tsc.NewLogical()) },
	} {
		r := mk()
		h := newSafetyHarness(r, 4)
		for i := 0; i < 4; i++ {
			id := i
			h.runReader(t, id, func(i int) Value { return Value((id + i) % 16) })
		}
		h.runWaiter(t, Interval(4, 8), 200)
		h.finish(t, 150*time.Millisecond)
	}
}
