package spin

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilImmediate(t *testing.T) {
	calls := 0
	Until(func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("cond evaluated %d times, want 1", calls)
	}
}

func TestUntilEventually(t *testing.T) {
	var flag atomic.Bool
	time.AfterFunc(10*time.Millisecond, func() { flag.Store(true) })
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Until did not observe the condition")
	}
}

func TestUntilYieldsOnSingleProc(t *testing.T) {
	// The critical liveness property on a 1-CPU host: a spinning waiter
	// must yield so the goroutine that will satisfy the condition can run.
	// The flag is flipped by another goroutine with no timer involved; if
	// Until never yielded, this would rely solely on async preemption and
	// take far longer than the budgeted window.
	var flag atomic.Bool
	go func() { flag.Store(true) }()
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Until starved its producer")
	}
}

func TestUntilBudgetSuccess(t *testing.T) {
	if !UntilBudget(func() bool { return true }, 1) {
		t.Fatal("immediate condition must report success")
	}
}

func TestUntilBudgetTimeout(t *testing.T) {
	calls := 0
	if UntilBudget(func() bool { calls++; return false }, 10) {
		t.Fatal("never-true condition must report failure")
	}
	if calls < 10 {
		t.Fatalf("cond evaluated %d times, want >= 10", calls)
	}
}

func TestUntilBudgetObservesLateSuccess(t *testing.T) {
	n := 0
	ok := UntilBudget(func() bool { n++; return n > 5 }, 10)
	if !ok {
		t.Fatal("condition became true within budget but was not reported")
	}
}

func TestWaiterReset(t *testing.T) {
	var w Waiter
	for i := 0; i < spinBudget+5; i++ {
		w.Wait()
	}
	if w.burst == 0 {
		t.Fatal("waiter never escalated to yielding")
	}
	w.Reset()
	if w.spins != 0 || w.burst != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWaiterBurstCapped(t *testing.T) {
	var w Waiter
	for i := 0; i < spinBudget+maxYieldBurst*4; i++ {
		w.Wait()
	}
	if w.burst > maxYieldBurst {
		t.Fatalf("burst %d exceeds cap %d", w.burst, maxYieldBurst)
	}
}
