package spin

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilImmediate(t *testing.T) {
	calls := 0
	Until(func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("cond evaluated %d times, want 1", calls)
	}
}

func TestUntilEventually(t *testing.T) {
	var flag atomic.Bool
	time.AfterFunc(10*time.Millisecond, func() { flag.Store(true) })
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Until did not observe the condition")
	}
}

func TestUntilYieldsOnSingleProc(t *testing.T) {
	// The critical liveness property on a 1-CPU host: a spinning waiter
	// must yield so the goroutine that will satisfy the condition can run.
	// The flag is flipped by another goroutine with no timer involved; if
	// Until never yielded, this would rely solely on async preemption and
	// take far longer than the budgeted window.
	var flag atomic.Bool
	go func() { flag.Store(true) }()
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Until starved its producer")
	}
}

func TestUntilBudgetSuccess(t *testing.T) {
	if !UntilBudget(func() bool { return true }, 1) {
		t.Fatal("immediate condition must report success")
	}
}

func TestUntilBudgetTimeout(t *testing.T) {
	calls := 0
	if UntilBudget(func() bool { calls++; return false }, 10) {
		t.Fatal("never-true condition must report failure")
	}
	if calls < 10 {
		t.Fatalf("cond evaluated %d times, want >= 10", calls)
	}
}

func TestUntilBudgetObservesLateSuccess(t *testing.T) {
	n := 0
	ok := UntilBudget(func() bool { n++; return n > 5 }, 10)
	if !ok {
		t.Fatal("condition became true within budget but was not reported")
	}
}

// TestUntilBudgetNonPositive pins the documented budget ≤ 0 contract: no
// back-off steps, exactly one condition evaluation, result returned
// as-is. The Ctx wait paths rely on this when the optimistic phase is
// configured away.
func TestUntilBudgetNonPositive(t *testing.T) {
	for _, budget := range []int{0, -1, -1000} {
		calls := 0
		if UntilBudget(func() bool { calls++; return true }, budget) != true {
			t.Fatalf("budget %d: true condition must report success", budget)
		}
		if calls != 1 {
			t.Fatalf("budget %d: cond evaluated %d times, want exactly 1", budget, calls)
		}
		calls = 0
		if UntilBudget(func() bool { calls++; return false }, budget) {
			t.Fatalf("budget %d: false condition must report failure", budget)
		}
		if calls != 1 {
			t.Fatalf("budget %d: cond evaluated %d times, want exactly 1", budget, calls)
		}
	}
}

// TestWaiterYieldTransitionBoundary pins the exact step at which a waiter
// crosses from pure spinning into scheduler yields — the boundary the Ctx
// waits and the stall watchdog key their checks on (waitControl.step only
// polls cancellation once Yielded reports true).
func TestWaiterYieldTransitionBoundary(t *testing.T) {
	var w Waiter
	for i := 0; i < DefaultSpinBudget; i++ {
		w.Wait()
		if w.Yielded() {
			t.Fatalf("waiter yielded at spin step %d, inside the budget of %d", i+1, DefaultSpinBudget)
		}
	}
	w.Wait() // first step past the budget
	if !w.Yielded() {
		t.Fatalf("waiter did not yield on step %d, first past the spin budget", DefaultSpinBudget+1)
	}
}

func TestWaiterReset(t *testing.T) {
	w := Waiter{T: &Tuning{SpinBudget: 4}}
	for i := 0; i < DefaultSpinBudget+5; i++ {
		w.Wait()
	}
	if w.burst == 0 {
		t.Fatal("waiter never escalated to yielding")
	}
	w.Reset()
	if w.spins != 0 || w.burst != 0 || w.steps != 0 || w.parked {
		t.Fatal("Reset did not clear state")
	}
	if w.T == nil {
		t.Fatal("Reset must keep the waiter's Tuning")
	}
}

func TestWaiterBurstCapped(t *testing.T) {
	var w Waiter
	for i := 0; i < DefaultSpinBudget+DefaultYieldBurst*4; i++ {
		w.Wait()
	}
	if w.burst > DefaultYieldBurst {
		t.Fatalf("burst %d exceeds cap %d", w.burst, DefaultYieldBurst)
	}
}

func TestTuningSpinBudgetOverride(t *testing.T) {
	// Negative budget: yield from the very first step.
	w := Waiter{T: &Tuning{SpinBudget: -1}}
	w.Wait()
	if !w.Yielded() {
		t.Fatal("SpinBudget < 0 must yield on the first step")
	}
	// Enlarged budget: still spinning where the default would have yielded.
	w = Waiter{T: &Tuning{SpinBudget: DefaultSpinBudget * 4}}
	for i := 0; i < DefaultSpinBudget*2; i++ {
		w.Wait()
	}
	if w.Yielded() {
		t.Fatal("enlarged SpinBudget must extend the spin phase")
	}
}

func TestTuningParkEscalation(t *testing.T) {
	tun := &Tuning{SpinBudget: 1, ParkAfter: 2, Park: time.Microsecond}
	w := Waiter{T: tun}
	// 1 spin step + 2 yield steps: not yet parked.
	for i := 0; i < 3; i++ {
		w.Wait()
	}
	if w.Parked() {
		t.Fatal("parked before ParkAfter yield steps elapsed")
	}
	w.Wait() // third yield-phase step: past ParkAfter, must park
	if !w.Parked() {
		t.Fatal("did not park after ParkAfter yield steps")
	}
	if !w.Yielded() {
		t.Fatal("a parked waiter must also report Yielded (it left the spin phase)")
	}
	w.Reset()
	if w.Parked() {
		t.Fatal("Reset did not clear the parked flag")
	}
}

func TestZeroTuningMatchesDefaults(t *testing.T) {
	// A zero Tuning must behave exactly like the nil default: same spin
	// budget boundary, same burst cap, no parking.
	wd, wt := Waiter{}, Waiter{T: &Tuning{}}
	for i := 0; i < DefaultSpinBudget+64; i++ {
		wd.Wait()
		wt.Wait()
		if wd.Yielded() != wt.Yielded() || wd.burst != wt.burst {
			t.Fatalf("step %d: zero Tuning diverged from defaults (burst %d vs %d)",
				i, wt.burst, wd.burst)
		}
	}
	if wt.Parked() {
		t.Fatal("zero Tuning must never park")
	}
}
