// Package spin implements the waiting discipline shared by every
// wait-for-readers loop in this module.
//
// The paper's implementations busy-wait: each waiter owns a hardware thread,
// so spinning costs nothing but the waiter's own cycles. Goroutines do not
// own hardware threads — on a GOMAXPROCS=1 host a waiter that spins without
// yielding starves the very reader whose exit it is waiting for, turning the
// wait into a livelock. Every spin loop therefore runs through a Waiter,
// which escalates through up to three phases:
//
//	spin   burn cycles re-checking the condition (cheap when it is about
//	       to become true, the common PRCU case)
//	yield  call into the scheduler with capped exponential back-off
//	park   sleep a fixed interval between checks (off by default)
//
// The phase boundaries are set by a Tuning. The zero Waiter uses the
// package defaults (spin then yield, never park) — exactly the historical
// behavior — while a Waiter carrying a *Tuning can be biased toward
// spinning (latency) or parking (CPU relief) at runtime. The adaptive
// controller (internal/adapt) switches engines between tunings under
// load; see core.WaitTuner.
package spin

import (
	"runtime"
	"time"
)

// DefaultSpinBudget is the number of pure (non-yielding) iterations before
// the waiter starts calling into the scheduler. The value is deliberately
// small: PRCU wait loops either exit almost immediately (no conflicting
// readers) or wait for a full critical section, which on a loaded machine
// exceeds any sensible spin budget anyway.
const DefaultSpinBudget = 64

// DefaultYieldBurst caps the exponential growth of consecutive Gosched
// calls so a long wait still polls its condition at a reasonable rate.
const DefaultYieldBurst = 16

// DefaultParkAfter is the number of yield-phase steps a parking Tuning
// (Park > 0) takes before it starts sleeping, when the Tuning does not
// say otherwise.
const DefaultParkAfter = 32

// Tuning sets a Waiter's phase boundaries. The zero value (and a nil
// *Tuning) means the package defaults: spin DefaultSpinBudget iterations,
// then yield with bursts capped at DefaultYieldBurst, never park.
type Tuning struct {
	// SpinBudget is the number of pure spin iterations before the yield
	// phase. 0 means DefaultSpinBudget; negative means none (yield from
	// the first step).
	SpinBudget int
	// YieldBurst caps consecutive Gosched calls per step in the yield
	// phase. 0 means DefaultYieldBurst.
	YieldBurst int
	// Park, when positive, enables the third phase: after ParkAfter
	// yield-phase steps, each further step sleeps Park instead of
	// yielding — trading wake-up latency for CPU. Zero disables parking.
	Park time.Duration
	// ParkAfter is the number of yield-phase steps before parking begins
	// (only meaningful when Park > 0). 0 means DefaultParkAfter.
	ParkAfter int
}

// spinBudget resolves the tuned spin budget.
func (t *Tuning) spinBudget() int {
	if t == nil || t.SpinBudget == 0 {
		return DefaultSpinBudget
	}
	if t.SpinBudget < 0 {
		return 0
	}
	return t.SpinBudget
}

// yieldBurst resolves the tuned burst cap.
func (t *Tuning) yieldBurst() int {
	if t == nil || t.YieldBurst <= 0 {
		return DefaultYieldBurst
	}
	return t.YieldBurst
}

// parkAfter resolves the tuned park threshold.
func (t *Tuning) parkAfter() int {
	if t == nil || t.ParkAfter <= 0 {
		return DefaultParkAfter
	}
	return t.ParkAfter
}

// Waiter tracks back-off state across iterations of one wait loop.
// The zero value is ready to use; a Waiter must not be shared. T, when
// non-nil, overrides the package-default phase boundaries; it is read on
// every step, so the pointed-to Tuning must not be mutated while the
// Waiter runs (engines swap a fresh pointer instead — see core.WaitTuner).
type Waiter struct {
	T      *Tuning
	spins  int
	steps  int // yield-phase steps taken
	burst  int
	parked bool
}

// Wait performs one back-off step. Call it once per failed condition check.
func (w *Waiter) Wait() {
	t := w.T
	if w.spins < t.spinBudget() {
		w.spins++
		return
	}
	w.steps++
	if t != nil && t.Park > 0 && w.steps > t.parkAfter() {
		if w.burst == 0 {
			w.burst = 1 // parking counts as having left the spin phase
		}
		w.parked = true
		time.Sleep(t.Park)
		return
	}
	if w.burst < t.yieldBurst() {
		w.burst++
	}
	for i := 0; i < w.burst; i++ {
		runtime.Gosched()
	}
}

// Yielded reports whether this waiter has exhausted its spin budget and
// crossed into the scheduler-yielding (or parking) phase since its last
// Reset — the spin→park transition the observability layer counts.
func (w *Waiter) Yielded() bool { return w.burst > 0 }

// Parked reports whether this waiter has escalated past yielding into
// timed sleeps since its last Reset (only possible under a Tuning with
// Park > 0).
func (w *Waiter) Parked() bool { return w.parked }

// Reset returns the waiter to its initial phase, keeping its Tuning. Use
// when the same Waiter value is reused for a logically new wait (e.g. the
// next reader slot in a wait-for-readers scan), so a slow previous wait
// does not penalize it.
func (w *Waiter) Reset() {
	w.spins = 0
	w.steps = 0
	w.burst = 0
	w.parked = false
}

// Until spins until cond returns true, using a fresh default-tuned Waiter
// for back-off.
func Until(cond func() bool) {
	var w Waiter
	for !cond() {
		w.Wait()
	}
}

// UntilBudget spins until cond returns true or roughly budget back-off steps
// have elapsed. It reports whether cond was observed true. A budget ≤ 0
// performs no back-off at all: cond is evaluated exactly once and its
// result returned — the degenerate "don't be optimistic" configuration,
// which callers may use to disable the optimistic phase entirely. This
// implements the bounded half of D-PRCU's optimistic waiting (§4.2): hope
// readers drain naturally, then fall back to the gate protocol.
func UntilBudget(cond func() bool, budget int) bool {
	return UntilBudgetTuned(cond, budget, nil)
}

// UntilBudgetTuned is UntilBudget with the back-off phases set by t
// (nil = package defaults). The budget counts back-off steps, not time:
// a parking tuning stretches the same budget over a longer wall-clock
// wait at lower CPU cost.
func UntilBudgetTuned(cond func() bool, budget int, t *Tuning) bool {
	w := Waiter{T: t}
	for i := 0; i < budget; i++ {
		if cond() {
			return true
		}
		w.Wait()
	}
	return cond()
}
