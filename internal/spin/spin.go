// Package spin implements the waiting discipline shared by every
// wait-for-readers loop in this module.
//
// The paper's implementations busy-wait: each waiter owns a hardware thread,
// so spinning costs nothing but the waiter's own cycles. Goroutines do not
// own hardware threads — on a GOMAXPROCS=1 host a waiter that spins without
// yielding starves the very reader whose exit it is waiting for, turning the
// wait into a livelock. Every spin loop therefore runs through a Waiter,
// which spins briefly (cheap when the condition is about to become true, the
// common PRCU case) and then starts yielding to the scheduler with capped
// exponential back-off.
package spin

import "runtime"

// spinBudget is the number of pure (non-yielding) iterations before the
// waiter starts calling into the scheduler. The value is deliberately small:
// PRCU wait loops either exit almost immediately (no conflicting readers) or
// wait for a full critical section, which on a loaded machine exceeds any
// sensible spin budget anyway.
const spinBudget = 64

// maxYieldBurst caps the exponential growth of consecutive Gosched calls so
// a long wait still polls its condition at a reasonable rate.
const maxYieldBurst = 16

// Waiter tracks back-off state across iterations of one wait loop.
// The zero value is ready to use; a Waiter must not be shared.
type Waiter struct {
	spins int
	burst int
}

// Wait performs one back-off step. Call it once per failed condition check.
func (w *Waiter) Wait() {
	if w.spins < spinBudget {
		w.spins++
		return
	}
	if w.burst < maxYieldBurst {
		w.burst++
	}
	for i := 0; i < w.burst; i++ {
		runtime.Gosched()
	}
}

// Yielded reports whether this waiter has exhausted its spin budget and
// crossed into the scheduler-yielding phase since its last Reset — the
// spin→park transition the observability layer counts.
func (w *Waiter) Yielded() bool { return w.burst > 0 }

// Reset returns the waiter to its initial state. Use when the same Waiter
// value is reused for a logically new wait (e.g. the next reader slot in a
// wait-for-readers scan), so a slow previous wait does not penalize it.
func (w *Waiter) Reset() {
	w.spins = 0
	w.burst = 0
}

// Until spins until cond returns true, using a fresh Waiter for back-off.
func Until(cond func() bool) {
	var w Waiter
	for !cond() {
		w.Wait()
	}
}

// UntilBudget spins until cond returns true or roughly budget back-off steps
// have elapsed. It reports whether cond was observed true. This implements
// the bounded half of D-PRCU's optimistic waiting (§4.2): hope readers drain
// naturally, then fall back to the gate protocol.
func UntilBudget(cond func() bool, budget int) bool {
	var w Waiter
	for i := 0; i < budget; i++ {
		if cond() {
			return true
		}
		w.Wait()
	}
	return cond()
}
