package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.EnsureReaders(8)
	if m.Lane(3) != nil {
		t.Fatal("nil Metrics must hand out nil lanes")
	}
	m.Reset()
	m.EnableTrace(128)
	if m.TraceEnabled() {
		t.Fatal("nil Metrics cannot enable tracing")
	}
	if evs := m.TraceSnapshot(); evs != nil {
		t.Fatalf("nil Metrics returned %d trace events", len(evs))
	}
	s := m.Snapshot()
	if s.Enabled {
		t.Fatal("nil Metrics snapshot must report Enabled=false")
	}
}

func TestLanesAreStable(t *testing.T) {
	m := New()
	m.EnsureReaders(4)
	l2 := m.Lane(2)
	// Growing must not move existing lanes.
	m.EnsureReaders(64)
	if m.Lane(2) != l2 {
		t.Fatal("lane moved when the table grew")
	}
	// Lane grows the table on demand past EnsureReaders.
	if m.Lane(100) == nil {
		t.Fatal("Lane must grow the table on demand")
	}
}

func TestWaitAccounting(t *testing.T) {
	m := New()
	start := m.WaitBegin()
	m.WaitEnd(start, 10, 3, 1)
	start = m.WaitBegin()
	m.WaitEnd(start, 10, 1, 0)

	s := m.Snapshot()
	if !s.Enabled {
		t.Fatal("snapshot of a live Metrics must be enabled")
	}
	if s.Waits != 2 || s.ReadersScanned != 20 || s.ReadersWaited != 4 || s.Parks != 1 {
		t.Fatalf("got waits=%d scanned=%d waited=%d parks=%d",
			s.Waits, s.ReadersScanned, s.ReadersWaited, s.Parks)
	}
	if s.SpinResolved != 3 {
		t.Fatalf("spin-resolved = %d, want 3", s.SpinResolved)
	}
	if want := 4.0 / 20.0; s.Selectivity != want {
		t.Fatalf("selectivity = %v, want %v", s.Selectivity, want)
	}
	if s.WaitNs.Count != 2 || s.WaitNs.SumNs < 0 {
		t.Fatalf("wait histogram count = %d, want 2", s.WaitNs.Count)
	}
}

func TestSectionSampling(t *testing.T) {
	m := New()
	m.SetSectionSampleShift(2) // sample 1 in 4
	l := m.Lane(0)
	const n = 64
	for i := 0; i < n; i++ {
		l.OnEnter(7)
		l.OnExit(7)
	}
	s := m.Snapshot()
	if s.Enters != n {
		t.Fatalf("enters = %d, want %d", s.Enters, n)
	}
	if s.SectionNs.Count != n/4 {
		t.Fatalf("sampled %d sections, want %d", s.SectionNs.Count, n/4)
	}
}

func TestDrainCounts(t *testing.T) {
	m := New()
	m.DrainCounts(5, 2, 1)
	m.DrainCounts(1, 0, 0)
	s := m.Snapshot()
	if s.DrainsOptimistic != 6 || s.DrainsGate != 2 || s.DrainsPiggyback != 1 {
		t.Fatalf("drains = %d/%d/%d", s.DrainsOptimistic, s.DrainsGate, s.DrainsPiggyback)
	}
}

func TestTraceRing(t *testing.T) {
	m := New()
	m.EnableTrace(64)
	if !m.TraceEnabled() {
		t.Fatal("trace not enabled")
	}
	l := m.Lane(1)
	for i := 0; i < 10; i++ {
		l.OnEnter(uint64(i))
		l.OnExit(uint64(i))
	}
	start := m.WaitBegin()
	m.WaitEnd(start, 1, 1, 0)

	evs := m.TraceSnapshot()
	if len(evs) != 22 {
		t.Fatalf("got %d events, want 22", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatal("events out of order")
		}
	}
	if evs[0].Kind != EvEnter || evs[0].Reader != 1 || evs[0].Value != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != EvWaitEnd || last.Value != 1 {
		t.Fatalf("last event = %+v", last)
	}
	if s := m.Snapshot(); s.TraceLen != 22 {
		t.Fatalf("snapshot TraceLen = %d, want 22", s.TraceLen)
	}
}

func TestTraceWraps(t *testing.T) {
	m := New()
	m.EnableTrace(1) // rounds up to the 64 minimum
	l := m.Lane(0)
	for i := 0; i < 100; i++ {
		l.OnEnter(uint64(i))
	}
	evs := m.TraceSnapshot()
	if len(evs) != 64 {
		t.Fatalf("ring kept %d events, want 64", len(evs))
	}
	// The ring keeps the newest events: values 36..99.
	if evs[0].Value != 36 || evs[len(evs)-1].Value != 99 {
		t.Fatalf("ring window [%d, %d], want [36, 99]", evs[0].Value, evs[len(evs)-1].Value)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.EnableTrace(64)
	l := m.Lane(0)
	l.OnEnter(1)
	l.OnExit(1)
	m.WaitEnd(m.WaitBegin(), 4, 2, 1)
	m.DrainCounts(1, 1, 1)
	m.Reset()
	s := m.Snapshot()
	if s.Waits != 0 || s.Enters != 0 || s.ReadersScanned != 0 || s.DrainsGate != 0 ||
		s.WaitNs.Count != 0 || s.SectionNs.Count != 0 || s.TraceLen != 0 {
		t.Fatalf("Reset left state behind: %+v", s)
	}
	if !m.TraceEnabled() {
		t.Fatal("Reset must keep the trace enabled")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvEnter: "enter", EvExit: "exit",
		EvWaitBegin: "wait-begin", EvWaitEnd: "wait-end",
		EventKind(0): "?",
	} {
		if got := k.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSnapshotJSONAndDump(t *testing.T) {
	m := New()
	m.SetSectionSampleShift(0)
	l := m.Lane(0)
	l.OnEnter(1)
	l.OnExit(1)
	m.WaitEnd(m.WaitBegin(), 2, 1, 0)
	m.DrainCounts(1, 0, 0)

	s := m.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"Waits\":1") {
		t.Fatalf("JSON missing wait count: %s", b)
	}

	var sb strings.Builder
	s.Dump(&sb, "test-engine")
	out := sb.String()
	for _, want := range []string{"test-engine", "selectivity", "1 waits", "counter drains"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	Snapshot{}.Dump(&sb2, "off")
	if !strings.Contains(sb2.String(), "disabled") {
		t.Fatal("disabled snapshot dump must say so")
	}
}

func TestPublishRebinds(t *testing.T) {
	m1, m2 := New(), New()
	Publish("obs-test", m1)
	Publish("obs-test", m2) // must not panic (expvar.Publish would)
}
