package obs

import (
	"fmt"
	"io"
	"strings"

	"prcu/internal/stats"
)

// HistSummary is a point-in-time digest of one latency histogram.
type HistSummary struct {
	Count   int64
	SumNs   int64
	MeanNs  float64
	P50Ns   float64
	P90Ns   float64
	P99Ns   float64
	Buckets []stats.Bucket
}

func summarize(h *stats.Histogram) HistSummary {
	return HistSummary{
		Count:   h.Count(),
		SumNs:   h.Sum(),
		MeanNs:  h.Mean(),
		P50Ns:   h.ApproxPercentile(50),
		P90Ns:   h.ApproxPercentile(90),
		P99Ns:   h.ApproxPercentile(99),
		Buckets: h.Buckets(),
	}
}

// Snapshot is an aggregated, JSON-marshalable copy of a Metrics — the
// only way metrics leave the recording structures. Per-reader lanes are
// summed here, never on the hot path.
type Snapshot struct {
	// Enabled is false for the nil Metrics (observability off).
	Enabled bool

	// Waits counts WaitForReaders calls; WaitNs is their engine-internal
	// latency distribution.
	Waits  uint64
	WaitNs HistSummary

	// ReadersScanned / ReadersWaited are the raw selectivity inputs:
	// slots or counter nodes examined by wait scans, and those with an
	// open covered critical section the wait actually blocked on.
	ReadersScanned uint64
	ReadersWaited  uint64
	// Selectivity = ReadersWaited / ReadersScanned (0 when nothing was
	// scanned). Low values are PRCU working as designed: most of what a
	// wait looks at, it does not have to wait for.
	Selectivity float64

	// Parks counts waited-on readers whose wait loop exhausted its spin
	// budget and fell back to scheduler yields; SpinResolved is the rest.
	Parks        uint64
	SpinResolved uint64

	// Counter-node drain outcomes (D-PRCU, SRCU only).
	DrainsOptimistic uint64
	DrainsGate       uint64
	DrainsPiggyback  uint64

	// Stalls counts watchdog stall reports (rate-limited at the engine);
	// StalledReaders totals the open critical sections those reports named.
	Stalls         uint64
	StalledReaders uint64

	// Deferred-reclamation (internal/reclaim) state. The two gauges are
	// the live backlog at snapshot time — callbacks accepted but not yet
	// resolved, and their caller-declared bytes; with watermarks
	// configured they never exceed MaxPending/MaxBytes. Retired counts
	// accepted callbacks, Freed those run after a completed grace period,
	// Dropped those abandoned by a bounded shutdown. Graces is the number
	// of grace periods the batch coalescer actually issued (Retired/Graces
	// is the batching win). Expedited counts soft-watermark/Flush-forced
	// flushes; Backpressure and Inline count hard-watermark overloads by
	// how the caller degraded.
	ReclaimPending      int64
	ReclaimBytes        int64
	ReclaimRetired      uint64
	ReclaimFreed        uint64
	ReclaimDropped      uint64
	ReclaimGraces       uint64
	ReclaimExpedited    uint64
	ReclaimBackpressure uint64
	ReclaimInline       uint64
	// ReclaimBatch is the flush batch-size distribution (unitless — the
	// histogram's Ns fields read as callback counts); ReclaimFlushNs is
	// the flush latency distribution.
	ReclaimBatch   HistSummary
	ReclaimFlushNs HistSummary
	// ReclaimOldestNs is the age of the oldest unresolved callback at
	// snapshot time (0 = empty backlog or no age probe installed) — the
	// data-age gauge: how stale the most overdue deferred free is.
	ReclaimOldestNs int64

	// AdaptDecisions counts adaptive-controller actuation decisions
	// recorded against this Metrics.
	AdaptDecisions uint64

	// MigrateEvents counts live engine-migration protocol transitions
	// recorded against this Metrics.
	MigrateEvents uint64

	// Enters is the total number of read-side critical sections across
	// all reader lanes, including readers that have since unregistered
	// (their counts retire when a slot is recycled); SectionNs is the
	// sampled duration distribution.
	Enters    uint64
	SectionNs HistSummary

	// TraceLen is the number of events currently buffered (0 when
	// tracing is disabled).
	TraceLen int

	// FlightLen is the number of grace-period flight-recorder spans
	// currently buffered (0 when the recorder is off).
	FlightLen int
	// BlameSamples / BlameNs total the flight recorder's per-slot blame
	// attribution across all slots; BlameTop is the worst offender slots
	// by cumulative delay (at most 5 here — ask TopBlame for more).
	BlameSamples uint64
	BlameNs      int64
	BlameTop     []BlameEntry
}

// Snapshot aggregates the current metrics. Safe on a nil receiver and
// safe concurrently with recording (counters are read atomically;
// histograms may be mid-update by a sample or two).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Enabled:          true,
		Waits:            m.waits.Load(),
		WaitNs:           summarize(&m.waitNs),
		ReadersScanned:   m.readersScanned.Load(),
		ReadersWaited:    m.readersWaited.Load(),
		Parks:            m.parks.Load(),
		DrainsOptimistic: m.drainsOptimistic.Load(),
		DrainsGate:       m.drainsGate.Load(),
		DrainsPiggyback:  m.drainsPiggyback.Load(),
		Stalls:           m.stalls.Load(),
		StalledReaders:   m.stalledReaders.Load(),
		SectionNs:        summarize(&m.sectionNs),

		ReclaimPending:      m.reclaimPending.Load(),
		ReclaimBytes:        m.reclaimBytes.Load(),
		ReclaimRetired:      m.reclaimRetired.Load(),
		ReclaimFreed:        m.reclaimFreed.Load(),
		ReclaimDropped:      m.reclaimDropped.Load(),
		ReclaimGraces:       m.reclaimGraces.Load(),
		ReclaimExpedited:    m.reclaimExpedited.Load(),
		ReclaimBackpressure: m.reclaimBackpressure.Load(),
		ReclaimInline:       m.reclaimInline.Load(),
		ReclaimBatch:        summarize(&m.reclaimBatch),
		ReclaimFlushNs:      summarize(&m.reclaimFlushNs),
		ReclaimOldestNs:     m.ReclaimOldestNs(),
		AdaptDecisions:      m.adaptDecisions.Load(),
		MigrateEvents:       m.migrateEvents.Load(),
	}
	if s.ReadersScanned > 0 {
		s.Selectivity = float64(s.ReadersWaited) / float64(s.ReadersScanned)
	}
	if s.ReadersWaited > s.Parks {
		s.SpinResolved = s.ReadersWaited - s.Parks
	}
	s.Enters = m.retiredEnters.Load()
	m.laneMu.Lock()
	for _, l := range m.lanes {
		s.Enters += l.enters.Load()
	}
	m.laneMu.Unlock()
	if tr := m.trace.load(); tr != nil {
		s.TraceLen = tr.len()
	}
	if m.FlightEnabled() {
		s.FlightLen = m.FlightLen()
		if all := m.TopBlame(0); len(all) > 0 {
			for _, b := range all {
				s.BlameSamples += b.Samples
				s.BlameNs += b.TotalNs
			}
			if len(all) > 5 {
				all = all[:5]
			}
			s.BlameTop = all
		}
	}
	return s
}

// Dump writes a human-readable report titled name to w: the counters,
// the selectivity, and ASCII bucket bars for the two latency histograms.
func (s Snapshot) Dump(w io.Writer, name string) {
	fmt.Fprintf(w, "\n--- %s ---\n", name)
	if !s.Enabled {
		fmt.Fprintln(w, "observability disabled")
		return
	}
	fmt.Fprintf(w, "grace periods:    %d waits", s.Waits)
	if s.Waits > 0 {
		fmt.Fprintf(w, "  mean %s  p50 %s  p99 %s",
			fmtNs(s.WaitNs.MeanNs), fmtNs(s.WaitNs.P50Ns), fmtNs(s.WaitNs.P99Ns))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "selectivity:      %d waited-for / %d scanned = %.4f\n",
		s.ReadersWaited, s.ReadersScanned, s.Selectivity)
	fmt.Fprintf(w, "wait resolution:  %d spin-resolved, %d parked (yielded to scheduler)\n",
		s.SpinResolved, s.Parks)
	if s.DrainsOptimistic+s.DrainsGate+s.DrainsPiggyback > 0 {
		fmt.Fprintf(w, "counter drains:   %d optimistic, %d gate-protocol, %d piggybacked\n",
			s.DrainsOptimistic, s.DrainsGate, s.DrainsPiggyback)
	}
	if s.Stalls > 0 {
		fmt.Fprintf(w, "stalls detected:  %d reports naming %d open sections\n",
			s.Stalls, s.StalledReaders)
	}
	if s.ReclaimRetired > 0 || s.ReclaimInline > 0 {
		fmt.Fprintf(w, "reclamation:      %d retired, %d freed, %d dropped; backlog %d cbs / %d bytes\n",
			s.ReclaimRetired, s.ReclaimFreed, s.ReclaimDropped, s.ReclaimPending, s.ReclaimBytes)
		fmt.Fprintf(w, "reclaim batching: %d grace periods for %d callbacks", s.ReclaimGraces, s.ReclaimRetired)
		if s.ReclaimBatch.Count > 0 {
			fmt.Fprintf(w, "  mean batch %.1f  flush p99 %s",
				s.ReclaimBatch.MeanNs, fmtNs(s.ReclaimFlushNs.P99Ns))
		}
		fmt.Fprintln(w)
		if s.ReclaimExpedited+s.ReclaimBackpressure+s.ReclaimInline > 0 {
			fmt.Fprintf(w, "reclaim overload: %d expedited flushes, %d backpressure waits, %d inline waits\n",
				s.ReclaimExpedited, s.ReclaimBackpressure, s.ReclaimInline)
		}
	}
	fmt.Fprintf(w, "reader sections:  %d entered, %d sampled", s.Enters, s.SectionNs.Count)
	if s.SectionNs.Count > 0 {
		fmt.Fprintf(w, "  mean %s  p50 %s  p99 %s",
			fmtNs(s.SectionNs.MeanNs), fmtNs(s.SectionNs.P50Ns), fmtNs(s.SectionNs.P99Ns))
	}
	fmt.Fprintln(w)
	if len(s.WaitNs.Buckets) > 0 {
		fmt.Fprintln(w, "wait latency histogram:")
		dumpBuckets(w, s.WaitNs.Buckets)
	}
	if len(s.SectionNs.Buckets) > 0 {
		fmt.Fprintln(w, "reader section duration histogram (sampled):")
		dumpBuckets(w, s.SectionNs.Buckets)
	}
	if s.TraceLen > 0 {
		fmt.Fprintf(w, "trace buffer:     %d events\n", s.TraceLen)
	}
	if s.FlightLen > 0 {
		fmt.Fprintf(w, "flight recorder:  %d spans buffered\n", s.FlightLen)
	}
	if s.BlameSamples > 0 {
		fmt.Fprintf(w, "reader blame:     %d samples, %s cumulative delay\n",
			s.BlameSamples, fmtNs(float64(s.BlameNs)))
		for _, b := range s.BlameTop {
			fmt.Fprintf(w, "  slot %4d: %6d samples  total %-10s max %s\n",
				b.Slot, b.Samples, fmtNs(float64(b.TotalNs)), fmtNs(float64(b.MaxNs)))
		}
	}
}

func dumpBuckets(w io.Writer, bs []stats.Bucket) {
	var max int64
	for _, b := range bs {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range bs {
		bar := int(40 * b.Count / max)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %10s - %-10s %8d %s\n",
			fmtNs(float64(b.LoNs)), fmtNs(float64(b.HiNs)), b.Count, strings.Repeat("#", bar))
	}
}

// fmtNs renders nanoseconds at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
