package obs

import (
	"reflect"
	"testing"
)

func TestRegistryRebindAndRemove(t *testing.T) {
	defer func() {
		Register("reg-a", nil)
		Register("reg-b", nil)
	}()

	a, b := New(), New()
	Register("reg-a", a)
	Register("reg-b", b)
	if Registered("reg-a") != a || Registered("reg-b") != b {
		t.Fatal("lookup did not return the bound Metrics")
	}

	// Rebinding swaps the backing collector under the same name.
	a2 := New()
	Register("reg-a", a2)
	if Registered("reg-a") != a2 {
		t.Fatal("rebind did not swap the backing Metrics")
	}

	names := RegisteredNames()
	got := []string{}
	for _, n := range names {
		if n == "reg-a" || n == "reg-b" {
			got = append(got, n)
		}
	}
	if !reflect.DeepEqual(got, []string{"reg-a", "reg-b"}) {
		t.Fatalf("RegisteredNames order = %v", got)
	}

	// nil removes; empty name is ignored.
	Register("reg-b", nil)
	if Registered("reg-b") != nil {
		t.Fatal("nil Register did not remove the binding")
	}
	Register("", New())
	if Registered("") != nil {
		t.Fatal("empty name was registered")
	}
}

func TestEachRegisteredSortedOutsideLock(t *testing.T) {
	defer func() {
		Register("each-1", nil)
		Register("each-2", nil)
	}()
	Register("each-2", New())
	Register("each-1", New())
	var seen []string
	EachRegistered(func(name string, m *Metrics) {
		if name == "each-1" || name == "each-2" {
			seen = append(seen, name)
			// Re-entrant registry use must not deadlock: f runs outside
			// the lock.
			Register(name, Registered(name))
		}
	})
	if !reflect.DeepEqual(seen, []string{"each-1", "each-2"}) {
		t.Fatalf("EachRegistered order = %v", seen)
	}
}
