package obs

import "sync/atomic"

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvEnter is a read-side critical-section entry.
	EvEnter EventKind = iota + 1
	// EvExit is a read-side critical-section exit.
	EvExit
	// EvWaitBegin marks a WaitForReaders starting.
	EvWaitBegin
	// EvWaitEnd marks a WaitForReaders returning; Value carries the
	// number of readers it waited on.
	EvWaitEnd
	// EvStall marks a grace-period stall report firing; Value carries the
	// number of stalled open critical sections named by the report.
	EvStall
	// EvReclaimFlush marks a deferred-reclamation batch flush completing;
	// Value carries the batch size (callbacks resolved by the flush).
	EvReclaimFlush
	// EvReclaimOverload marks a retirement hitting a reclaimer watermark:
	// a caller blocked for backpressure or degraded to an inline grace
	// period. Value carries the backlog (pending callbacks) at that moment.
	EvReclaimOverload
	// EvAdapt marks an adaptive-controller decision (mode change or
	// actuation); Value carries the controller's packed decision word
	// (see internal/adapt).
	EvAdapt
	// EvMigrate marks a live engine-migration protocol transition; Value
	// carries the migrator's packed phase word (see internal/migrate).
	EvMigrate
)

// String returns the event kind's mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvEnter:
		return "enter"
	case EvExit:
		return "exit"
	case EvWaitBegin:
		return "wait-begin"
	case EvWaitEnd:
		return "wait-end"
	case EvStall:
		return "stall"
	case EvReclaimFlush:
		return "reclaim-flush"
	case EvReclaimOverload:
		return "reclaim-overload"
	case EvAdapt:
		return "adapt"
	case EvMigrate:
		return "migrate"
	default:
		return "?"
	}
}

// Event is one trace record: what happened, when (metrics-clock
// nanoseconds, the module's TSC stand-in), by which reader slot (-1 for
// wait events) and on which value.
type Event struct {
	TimeNs int64
	Kind   EventKind
	Reader int32
	Value  uint64
}

// traceSlot holds one ring entry. seq is odd while a writer is mid-store,
// so TraceSnapshot can skip torn records instead of returning garbage.
// The event's fields are stored atomically (Kind and Reader packed into
// meta) so a reader racing a lapping writer sees a torn *record* — which
// the seq re-check discards — never a torn word, and the scheme stays
// clean under the race detector.
type traceSlot struct {
	seq  atomic.Uint64
	time atomic.Int64
	meta atomic.Uint64 // Kind<<32 | uint32(Reader)
	val  atomic.Uint64
}

func (s *traceSlot) store(ev Event) {
	s.time.Store(ev.TimeNs)
	s.meta.Store(uint64(ev.Kind)<<32 | uint64(uint32(ev.Reader)))
	s.val.Store(ev.Value)
}

func (s *traceSlot) load() Event {
	meta := s.meta.Load()
	return Event{
		TimeNs: s.time.Load(),
		Kind:   EventKind(meta >> 32),
		Reader: int32(uint32(meta)),
		Value:  s.val.Load(),
	}
}

// trace is a fixed-capacity lock-free ring buffer. Writers reserve a
// position with one fetch-add, then take ownership of the slot by CAS on
// its sequence; a writer that laps a slot another writer still holds
// drops its event instead of corrupting the record. The ring keeps the
// most recent capacity events (minus any dropped under lap contention).
type trace struct {
	slots []traceSlot
	mask  uint64
	head  atomic.Uint64
}

// traceHolder is the engine-visible atomic handle; nil means disabled, so
// the hook cost with tracing off is one pointer load and branch.
type traceHolder struct {
	p atomic.Pointer[trace]
}

func (h *traceHolder) load() *trace { return h.p.Load() }

// MaxTraceCapacity is the largest event ring EnableTrace will allocate:
// 2^20 events (~32 MiB of slots) is already far past post-mortem use,
// and an unchecked capacity would otherwise size (or overflow) the
// power-of-two rounding loop below.
const MaxTraceCapacity = 1 << 20

// EnableTrace attaches an event ring of at least capacity entries
// (rounded up to a power of two, minimum 64, clamped to
// MaxTraceCapacity). Call it once, before the traffic of interest;
// events wrap, keeping the most recent. Non-positive capacities are a
// caller bug and panic.
func (m *Metrics) EnableTrace(capacity int) {
	if capacity <= 0 {
		panic("prcu/obs: EnableTrace capacity must be positive")
	}
	if m == nil {
		return
	}
	if capacity > MaxTraceCapacity {
		capacity = MaxTraceCapacity
	}
	size := 64
	for size < capacity {
		size <<= 1
	}
	m.trace.p.Store(&trace{slots: make([]traceSlot, size), mask: uint64(size - 1)})
}

// TraceEnabled reports whether an event ring is attached.
func (m *Metrics) TraceEnabled() bool { return m != nil && m.trace.load() != nil }

// DisableTrace detaches the event ring, returning its capacity (0 when
// none was attached). Hooks racing the detach may finish writing into
// the old ring, which is then unreachable and collected; re-enable with
// EnableTrace. The adaptive controller uses this to shed tracing
// overhead in degraded mode and restore it afterwards.
func (m *Metrics) DisableTrace() int {
	if m == nil {
		return 0
	}
	if tr := m.trace.p.Swap(nil); tr != nil {
		return len(tr.slots)
	}
	return 0
}

// TraceCapacity returns the attached ring's slot count (0 = disabled).
func (m *Metrics) TraceCapacity() int {
	if m == nil {
		return 0
	}
	if tr := m.trace.load(); tr != nil {
		return len(tr.slots)
	}
	return 0
}

func (t *trace) add(ev Event) {
	idx := t.head.Add(1) - 1
	s := &t.slots[idx&t.mask]
	seq := s.seq.Load()
	if seq&1 == 1 || !s.seq.CompareAndSwap(seq, seq+1) {
		// A writer that lapped the ring holds this slot; dropping the
		// event is better than racing it (two blind writers could both
		// leave seq even over a torn record).
		return
	}
	s.store(ev)
	s.seq.Store(seq + 2)
}

// len returns the number of events currently buffered: the write cursor
// until the ring first fills, its capacity afterwards. Shared by
// Snapshot (TraceLen) and TraceSnapshot so the two can never disagree
// about how much of the ring is live.
func (t *trace) len() int {
	n := t.head.Load()
	if n > uint64(len(t.slots)) {
		n = uint64(len(t.slots))
	}
	return int(n)
}

func (t *trace) reset() {
	t.head.Store(0)
	for i := range t.slots {
		t.slots[i].seq.Store(0)
		t.slots[i].store(Event{})
	}
}

// TraceSnapshot returns the buffered events oldest-first. It is intended
// for post-mortem inspection at quiescence (tests, end-of-run dumps);
// taken concurrently with traffic it skips records mid-write and may
// reflect a slightly stale tail.
func (m *Metrics) TraceSnapshot() []Event {
	if m == nil {
		return nil
	}
	t := m.trace.load()
	if t == nil {
		return nil
	}
	// len() first, then the cursor: writers only advance head, so the
	// second load is ≥ the one len() saw and n ≤ head always holds.
	n := uint64(t.len())
	head := t.head.Load()
	out := make([]Event, 0, n)
	for i := head - n; i < head; i++ {
		s := &t.slots[i&t.mask]
		seq := s.seq.Load()
		ev := s.load()
		if seq&1 == 1 || s.seq.Load() != seq {
			continue // torn: a writer lapped us mid-read
		}
		out = append(out, ev)
	}
	return out
}
