package obs

import "sync/atomic"

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvEnter is a read-side critical-section entry.
	EvEnter EventKind = iota + 1
	// EvExit is a read-side critical-section exit.
	EvExit
	// EvWaitBegin marks a WaitForReaders starting.
	EvWaitBegin
	// EvWaitEnd marks a WaitForReaders returning; Value carries the
	// number of readers it waited on.
	EvWaitEnd
	// EvStall marks a grace-period stall report firing; Value carries the
	// number of stalled open critical sections named by the report.
	EvStall
	// EvReclaimFlush marks a deferred-reclamation batch flush completing;
	// Value carries the batch size (callbacks resolved by the flush).
	EvReclaimFlush
	// EvReclaimOverload marks a retirement hitting a reclaimer watermark:
	// a caller blocked for backpressure or degraded to an inline grace
	// period. Value carries the backlog (pending callbacks) at that moment.
	EvReclaimOverload
)

// String returns the event kind's mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvEnter:
		return "enter"
	case EvExit:
		return "exit"
	case EvWaitBegin:
		return "wait-begin"
	case EvWaitEnd:
		return "wait-end"
	case EvStall:
		return "stall"
	case EvReclaimFlush:
		return "reclaim-flush"
	case EvReclaimOverload:
		return "reclaim-overload"
	default:
		return "?"
	}
}

// Event is one trace record: what happened, when (metrics-clock
// nanoseconds, the module's TSC stand-in), by which reader slot (-1 for
// wait events) and on which value.
type Event struct {
	TimeNs int64
	Kind   EventKind
	Reader int32
	Value  uint64
}

// traceSlot holds one ring entry. seq is odd while a writer is mid-store,
// so TraceSnapshot can skip torn records instead of returning garbage.
type traceSlot struct {
	seq atomic.Uint64
	ev  Event
}

// trace is a fixed-capacity lock-free ring buffer. Writers reserve a
// position with one fetch-add, then take ownership of the slot by CAS on
// its sequence; a writer that laps a slot another writer still holds
// drops its event instead of corrupting the record. The ring keeps the
// most recent capacity events (minus any dropped under lap contention).
type trace struct {
	slots []traceSlot
	mask  uint64
	head  atomic.Uint64
}

// traceHolder is the engine-visible atomic handle; nil means disabled, so
// the hook cost with tracing off is one pointer load and branch.
type traceHolder struct {
	p atomic.Pointer[trace]
}

func (h *traceHolder) load() *trace { return h.p.Load() }

// EnableTrace attaches an event ring of at least capacity entries
// (rounded up to a power of two, minimum 64). Call it once, before the
// traffic of interest; events wrap, keeping the most recent.
func (m *Metrics) EnableTrace(capacity int) {
	if m == nil {
		return
	}
	size := 64
	for size < capacity {
		size <<= 1
	}
	m.trace.p.Store(&trace{slots: make([]traceSlot, size), mask: uint64(size - 1)})
}

// TraceEnabled reports whether an event ring is attached.
func (m *Metrics) TraceEnabled() bool { return m != nil && m.trace.load() != nil }

func (t *trace) add(ev Event) {
	idx := t.head.Add(1) - 1
	s := &t.slots[idx&t.mask]
	seq := s.seq.Load()
	if seq&1 == 1 || !s.seq.CompareAndSwap(seq, seq+1) {
		// A writer that lapped the ring holds this slot; dropping the
		// event is better than racing it (two blind writers could both
		// leave seq even over a torn record).
		return
	}
	s.ev = ev
	s.seq.Store(seq + 2)
}

func (t *trace) reset() {
	t.head.Store(0)
	for i := range t.slots {
		t.slots[i].seq.Store(0)
		t.slots[i].ev = Event{}
	}
}

// TraceSnapshot returns the buffered events oldest-first. It is intended
// for post-mortem inspection at quiescence (tests, end-of-run dumps);
// taken concurrently with traffic it skips records mid-write and may
// reflect a slightly stale tail.
func (m *Metrics) TraceSnapshot() []Event {
	if m == nil {
		return nil
	}
	t := m.trace.load()
	if t == nil {
		return nil
	}
	head := t.head.Load()
	n := head
	if n > uint64(len(t.slots)) {
		n = uint64(len(t.slots))
	}
	out := make([]Event, 0, n)
	for i := head - n; i < head; i++ {
		s := &t.slots[i&t.mask]
		seq := s.seq.Load()
		ev := s.ev
		if seq&1 == 1 || s.seq.Load() != seq {
			continue // torn: a writer lapped us mid-read
		}
		out = append(out, ev)
	}
	return out
}
