package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTraceLenSharedHelper pins the satellite contract: Snapshot's
// TraceLen and TraceSnapshot's length come from the same trace.len()
// accounting, before and after the ring wraps.
func TestTraceLenSharedHelper(t *testing.T) {
	m := New()
	m.EnableTrace(64)
	m.EnsureReaders(1)
	l := m.Lane(0)

	for i := 0; i < 10; i++ {
		l.OnEnter(1)
		l.OnExit(1)
	}
	s := m.Snapshot()
	if s.TraceLen != 20 {
		t.Fatalf("TraceLen before wrap = %d, want 20", s.TraceLen)
	}
	if got := len(m.TraceSnapshot()); got != s.TraceLen {
		t.Fatalf("TraceSnapshot len %d != Snapshot.TraceLen %d", got, s.TraceLen)
	}

	for i := 0; i < 100; i++ {
		l.OnEnter(1)
		l.OnExit(1)
	}
	s = m.Snapshot()
	if s.TraceLen != 64 {
		t.Fatalf("TraceLen after wrap = %d, want ring capacity 64", s.TraceLen)
	}
	if got := len(m.TraceSnapshot()); got != s.TraceLen {
		t.Fatalf("wrapped TraceSnapshot len %d != Snapshot.TraceLen %d", got, s.TraceLen)
	}
}

// TestTraceSnapshotOldestFirst checks ordering across a wrap: with a
// quiesced ring the snapshot must be the most recent capacity events in
// non-decreasing time order.
func TestTraceSnapshotOldestFirst(t *testing.T) {
	m := New()
	m.EnableTrace(64)
	m.EnsureReaders(4)
	for i := 0; i < 200; i++ {
		l := m.Lane(i % 4)
		l.OnEnter(uint64(i))
		l.OnExit(uint64(i))
	}
	evs := m.TraceSnapshot()
	if len(evs) != 64 {
		t.Fatalf("len = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatalf("event %d out of order: %d after %d", i, evs[i].TimeNs, evs[i-1].TimeNs)
		}
	}
}

// TestTraceSnapshotConcurrent hammers the ring from several writers
// while snapshotting. Run under -race this checks the seq-lock
// discipline; functionally each snapshot must stay within the ring
// capacity, hold no torn (zero-Kind) records, and be time-ordered
// enough that only records overwritten mid-read were skipped.
func TestTraceSnapshotConcurrent(t *testing.T) {
	m := New()
	m.EnableTrace(128)
	m.EnsureReaders(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			l := m.Lane(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.OnEnter(uint64(id))
				l.OnExit(uint64(id))
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		evs := m.TraceSnapshot()
		if len(evs) > 128 {
			t.Errorf("snapshot longer than ring: %d", len(evs))
			break
		}
		for i, ev := range evs {
			if ev.Kind == 0 {
				t.Errorf("event %d torn/zero: %+v", i, ev)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestEnableTraceClampAndPanic covers the capacity guard rails: huge
// requests clamp to MaxTraceCapacity, non-positive ones panic.
func TestEnableTraceClampAndPanic(t *testing.T) {
	m := New()
	m.EnableTrace(MaxTraceCapacity * 4)
	if got := len(m.trace.load().slots); got != MaxTraceCapacity {
		t.Fatalf("clamped ring size = %d, want %d", got, MaxTraceCapacity)
	}

	for _, cap := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EnableTrace(%d) did not panic", cap)
				}
			}()
			m.EnableTrace(cap)
		}()
	}
	// The guard must fire even on the nil (disabled) receiver, so a bug
	// does not hide behind observability being off.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil-receiver EnableTrace(0) did not panic")
			}
		}()
		var nilM *Metrics
		nilM.EnableTrace(0)
	}()
}
