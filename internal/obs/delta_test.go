package obs

import (
	"testing"
	"time"
)

func TestDeltaRates(t *testing.T) {
	m := New()
	prev := m.Snapshot()

	// 10 waits, each scanning 8 readers and waiting on 2.
	for i := 0; i < 10; i++ {
		sp := m.WaitBegin()
		m.WaitEnd(sp, 8, 2, 1)
	}
	m.EnsureReaders(1)
	l := m.Lane(0)
	for i := 0; i < 50; i++ {
		l.OnEnter(1)
		l.OnExit(1)
	}
	cur := m.Snapshot()

	r := Delta(prev, cur, 2*time.Second)
	if r.Waits != 10 {
		t.Fatalf("Waits = %d, want 10", r.Waits)
	}
	if r.WaitsPerSec != 5 {
		t.Fatalf("WaitsPerSec = %v, want 5", r.WaitsPerSec)
	}
	if r.EntersPerSec != 25 {
		t.Fatalf("EntersPerSec = %v, want 25", r.EntersPerSec)
	}
	if r.Selectivity != 0.25 {
		t.Fatalf("Selectivity = %v, want 0.25", r.Selectivity)
	}
	if r.ParksPerSec != 5 {
		t.Fatalf("ParksPerSec = %v, want 5", r.ParksPerSec)
	}
	if r.WaitP50Ns <= 0 {
		t.Fatalf("WaitP50Ns = %v, want > 0", r.WaitP50Ns)
	}
}

// TestDeltaIsWindowed checks the defining property: activity before
// prev does not leak into the window's percentiles or rates.
func TestDeltaIsWindowed(t *testing.T) {
	m := New()
	// Pre-window: plenty of waits.
	for i := 0; i < 100; i++ {
		m.WaitEnd(m.WaitBegin(), 4, 4, 0)
	}
	prev := m.Snapshot()
	cur := m.Snapshot() // empty window
	r := Delta(prev, cur, time.Second)
	if r.Waits != 0 || r.WaitsPerSec != 0 {
		t.Fatalf("empty window reported waits: %+v", r)
	}
	if r.WaitP50Ns != 0 {
		t.Fatalf("empty window WaitP50Ns = %v, want 0", r.WaitP50Ns)
	}
	if r.Selectivity != 0 {
		t.Fatalf("empty window Selectivity = %v, want 0", r.Selectivity)
	}
}

// TestDeltaClampsOnReset: a counter that moved backwards (Metrics reset
// or name rebound between samples) must clamp to zero, not wrap to a
// huge unsigned delta.
func TestDeltaClampsOnReset(t *testing.T) {
	m := New()
	for i := 0; i < 5; i++ {
		m.WaitEnd(m.WaitBegin(), 1, 1, 0)
	}
	prev := m.Snapshot()
	cur := New().Snapshot() // fresh collector under the same name
	r := Delta(prev, cur, time.Second)
	if r.Waits != 0 || r.WaitsPerSec != 0 || r.EntersPerSec != 0 {
		t.Fatalf("reset window not clamped: %+v", r)
	}
}

func TestDeltaBacklogSlope(t *testing.T) {
	prev := Snapshot{ReclaimPending: 100}
	cur := Snapshot{ReclaimPending: 400, ReclaimBytes: 1 << 20}
	r := Delta(prev, cur, 2*time.Second)
	if r.BacklogSlope != 150 {
		t.Fatalf("BacklogSlope = %v, want 150", r.BacklogSlope)
	}
	if r.ReclaimBacklog != 400 || r.ReclaimBacklogBytes != 1<<20 {
		t.Fatalf("backlog gauges = %d/%d, want 400/%d", r.ReclaimBacklog, r.ReclaimBacklogBytes, 1<<20)
	}
	// Draining backlog slopes negative.
	r = Delta(cur, prev, 2*time.Second)
	if r.BacklogSlope != -150 {
		t.Fatalf("draining BacklogSlope = %v, want -150", r.BacklogSlope)
	}
}
