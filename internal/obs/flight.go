package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"prcu/internal/stats"
)

// The grace-period flight recorder assigns every grace period a
// monotonically increasing GP ID and records a causal span chain for it:
// retire (queue residency of each deferred callback) → coalesce (the
// batch group the callback landed in, with its merged predicate) → wait
// (the engine-internal WaitForReaders, with per-slot blame samples) →
// callback execution, plus linked spans for migrate handover drains and
// autotuner-triggered expedited flushes. /debug/prcu/tracez renders the
// chain as Chrome trace-event JSON; the blame table it aggregates names
// the reader slots that actually delay grace periods.
//
// Gating follows the trace ring and RuntimeAttribution exactly: a single
// atomic pointer that is nil when the recorder is off, so every hook on
// the wait and reclaim paths costs one pointer load and one never-taken
// branch when disabled. Span recording itself takes a mutex — spans
// occur at wait/flush frequency, never on the reader fast path, so a
// lock there costs nothing that matters.

// gpSeq is the process-wide grace-period ID allocator. One sequence
// across all engines and reclaimers keeps IDs unique, so linked spans
// (expedited flushes, migration drains) can reference each other across
// recorders.
var gpSeq atomic.Uint64

// NextGP allocates a fresh grace-period ID (never 0).
func NextGP() uint64 { return gpSeq.Add(1) }

// gpKey carries a grace-period ID through a Context from the layer that
// opened the span chain (the reclaimer's coalescer, the migrator's
// drain) to the engine wait that continues it.
type gpKey struct{}

// WithGP returns ctx carrying the grace-period ID gp.
func WithGP(ctx context.Context, gp uint64) context.Context {
	return context.WithValue(ctx, gpKey{}, gp)
}

// GPFromContext extracts the grace-period ID from ctx (0 when absent or
// ctx is nil).
func GPFromContext(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if gp, ok := ctx.Value(gpKey{}).(uint64); ok {
		return gp
	}
	return 0
}

// SpanKind discriminates flight-recorder spans along the grace-period
// lifecycle.
type SpanKind uint8

const (
	// SpanRetire is one deferred callback's queue residency: submission
	// (Reclaimer.Defer/Retire stamp) to the moment its batch was taken.
	SpanRetire SpanKind = iota + 1
	// SpanCoalesce is the batch-coalescing stage: the accumulation window
	// plus the partition that produced this span's wait group.
	SpanCoalesce
	// SpanWait is the engine-internal WaitForReaders, with per-slot
	// blame samples for the readers that delayed it.
	SpanWait
	// SpanCallback is the post-wait callback execution of a wait group.
	SpanCallback
	// SpanMigrateDrain is a live-migration drain: the full grace period a
	// handover runs on the engine being drained.
	SpanMigrateDrain
	// SpanExpedite marks an autotuner-triggered expedited flush; the
	// flush's coalesce span links back to it via Link.
	SpanExpedite
)

// String returns the span kind's mnemonic.
func (k SpanKind) String() string {
	switch k {
	case SpanRetire:
		return "retire"
	case SpanCoalesce:
		return "coalesce"
	case SpanWait:
		return "wait"
	case SpanCallback:
		return "callback"
	case SpanMigrateDrain:
		return "migrate-drain"
	case SpanExpedite:
		return "expedite"
	default:
		return "?"
	}
}

// BlameSample names one reader slot that was still inside a critical
// section when a wait's scan first saw it, and how long it individually
// delayed the wait's completion.
type BlameSample struct {
	Slot    int   `json:"slot"`
	DelayNs int64 `json:"delay_ns"`
}

// FlightSpan is one recorded stage of a grace period's lifecycle. Times
// are on the owning Metrics' clock; GP ties the chain together.
type FlightSpan struct {
	// GP is the grace-period ID the span belongs to.
	GP uint64 `json:"gp"`
	// Link, when non-zero, references another chain's GP: an expedited
	// flush's coalesce span links the SpanExpedite that triggered it.
	Link    uint64   `json:"link,omitempty"`
	Kind    SpanKind `json:"kind"`
	// Track is the rendering lane: "wait" for engine waits,
	// "reclaim/<shard>" for the reclaimer stages, "migrate" and
	// "autotune" for the linked spans.
	Track   string `json:"track"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	// Count is the span's cardinality: callbacks in the batch stage,
	// readers actually waited on for SpanWait.
	Count int `json:"count"`
	// Label carries the human-readable detail (the predicate, the
	// trigger).
	Label string `json:"label,omitempty"`
	// Blame is SpanWait's per-slot delay attribution.
	Blame []BlameSample `json:"blame,omitempty"`
}

// blameCell is one reader slot's cumulative blame account.
type blameCell struct {
	samples uint64
	totalNs int64
	maxNs   int64
	hist    stats.Histogram
}

// flightRecorder is the armed recorder: a bounded span ring plus the
// per-slot blame aggregation table, both under one mutex (spans arrive
// at wait/flush frequency).
type flightRecorder struct {
	mu    sync.Mutex
	spans []FlightSpan
	head  uint64 // total spans ever recorded; ring index = head % cap
	blame map[int]*blameCell

	// expedite holds the GP of the most recent SpanExpedite, consumed
	// (once) by the next expedited flush to link the two chains.
	expedite atomic.Uint64
}

// flightHolder is the hook-visible atomic gate, mirroring traceHolder:
// nil means the recorder is off and every hook costs one pointer load
// and a never-taken branch.
type flightHolder struct {
	p atomic.Pointer[flightRecorder]
}

func (h *flightHolder) load() *flightRecorder { return h.p.Load() }

// MaxFlightCapacity bounds the span ring: 2^16 spans is far past
// post-mortem use and keeps the rounding below trivially safe.
const MaxFlightCapacity = 1 << 16

// DefaultFlightCapacity is the span-ring size Options.FlightRecorder
// arms.
const DefaultFlightCapacity = 4096

// EnableFlightRecorder arms the grace-period flight recorder with a
// span ring of at least capacity entries (minimum 16, clamped to
// MaxFlightCapacity). Non-positive capacities are a caller bug and
// panic, like EnableTrace.
func (m *Metrics) EnableFlightRecorder(capacity int) {
	if capacity <= 0 {
		panic("prcu/obs: EnableFlightRecorder capacity must be positive")
	}
	if m == nil {
		return
	}
	if capacity > MaxFlightCapacity {
		capacity = MaxFlightCapacity
	}
	if capacity < 16 {
		capacity = 16
	}
	m.flight.p.Store(&flightRecorder{
		spans: make([]FlightSpan, 0, capacity),
		blame: map[int]*blameCell{},
	})
}

// DisableFlightRecorder disarms the recorder, returning its span-ring
// capacity (0 when it was off) so the adaptive controller can shed and
// later restore it like the trace ring. Hooks racing the disarm finish
// into the old recorder, which is then unreachable.
func (m *Metrics) DisableFlightRecorder() int {
	if m == nil {
		return 0
	}
	if fr := m.flight.p.Swap(nil); fr != nil {
		return cap(fr.spans)
	}
	return 0
}

// FlightEnabled reports whether the flight recorder is armed.
func (m *Metrics) FlightEnabled() bool { return m != nil && m.flight.load() != nil }

// FlightNow reads the Metrics clock — the timebase every FlightSpan is
// stamped on. Layers with their own clocks (the reclaimer) convert
// durations onto it rather than mixing bases.
func (m *Metrics) FlightNow() int64 {
	if m == nil {
		return 0
	}
	return m.now()
}

// FlightRecord records sp. It is the recording entry point for the
// reclaim/migrate/adapt layers and for tests synthesizing deterministic
// chains; a disarmed recorder drops the span.
func (m *Metrics) FlightRecord(sp FlightSpan) {
	if m == nil {
		return
	}
	if fr := m.flight.load(); fr != nil {
		fr.record(sp)
	}
}

func (f *flightRecorder) record(sp FlightSpan) {
	f.mu.Lock()
	if cap(f.spans) == 0 {
		f.mu.Unlock()
		return
	}
	if len(f.spans) < cap(f.spans) {
		f.spans = append(f.spans, sp)
	} else {
		f.spans[f.head%uint64(cap(f.spans))] = sp
	}
	f.head++
	for _, b := range sp.Blame {
		c := f.blame[b.Slot]
		if c == nil {
			c = &blameCell{}
			f.blame[b.Slot] = c
		}
		c.samples++
		c.totalNs += b.DelayNs
		if b.DelayNs > c.maxNs {
			c.maxNs = b.DelayNs
		}
		c.hist.Record(b.DelayNs)
	}
	f.mu.Unlock()
}

// reset drops the buffered spans and the blame table (Metrics.Reset).
func (f *flightRecorder) reset() {
	f.mu.Lock()
	f.spans = f.spans[:0]
	f.head = 0
	f.blame = map[int]*blameCell{}
	f.mu.Unlock()
	f.expedite.Store(0)
}

// FlightExpedite records an autotuner-triggered expedited flush as a
// SpanExpedite with its own fresh GP and remembers that GP so the next
// expedited reclaim flush can link its coalesce span back to the
// trigger. label names the trigger (the controller mode).
func (m *Metrics) FlightExpedite(label string) {
	if m == nil {
		return
	}
	fr := m.flight.load()
	if fr == nil {
		return
	}
	gp := NextGP()
	now := m.now()
	fr.record(FlightSpan{GP: gp, Kind: SpanExpedite, Track: "autotune",
		StartNs: now, EndNs: now, Label: label})
	fr.expedite.Store(gp)
}

// FlightExpediteLink consumes the pending expedited-flush link (0 when
// none is pending). The reclaimer calls it on each expedited flush.
func (m *Metrics) FlightExpediteLink() uint64 {
	if m == nil {
		return 0
	}
	if fr := m.flight.load(); fr != nil {
		return fr.expedite.Swap(0)
	}
	return 0
}

// FlightLen returns the number of spans currently buffered.
func (m *Metrics) FlightLen() int {
	if m == nil {
		return 0
	}
	fr := m.flight.load()
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.spans)
}

// FlightSnapshot returns the buffered spans oldest-first (nil when the
// recorder is off). Blame slices are shared with the ring, not copied;
// treat them as read-only.
func (m *Metrics) FlightSnapshot() []FlightSpan {
	if m == nil {
		return nil
	}
	fr := m.flight.load()
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightSpan, 0, len(fr.spans))
	if len(fr.spans) < cap(fr.spans) {
		out = append(out, fr.spans...)
		return out
	}
	c := uint64(cap(fr.spans))
	for i := uint64(0); i < c; i++ {
		out = append(out, fr.spans[(fr.head+i)%c])
	}
	return out
}

// BlameEntry is one reader slot's aggregate blame account: how many
// waits it delayed, the cumulative and worst-case delay, and the log₂
// delay distribution.
type BlameEntry struct {
	Slot    int         `json:"slot"`
	Samples uint64      `json:"samples"`
	TotalNs int64       `json:"total_ns"`
	MaxNs   int64       `json:"max_ns"`
	DelayNs HistSummary `json:"delay_ns"`
}

// TopBlame returns the k worst offender slots by cumulative delay,
// descending (all slots when k <= 0 or exceeds the table). Nil when the
// recorder is off or nothing has been blamed.
func (m *Metrics) TopBlame(k int) []BlameEntry {
	if m == nil {
		return nil
	}
	fr := m.flight.load()
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	out := make([]BlameEntry, 0, len(fr.blame))
	for slot, c := range fr.blame {
		out = append(out, BlameEntry{
			Slot:    slot,
			Samples: c.samples,
			TotalNs: c.totalNs,
			MaxNs:   c.maxNs,
			DelayNs: summarize(&c.hist),
		})
	}
	fr.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].TotalNs != out[b].TotalNs {
			return out[a].TotalNs > out[b].TotalNs
		}
		return out[a].Slot < out[b].Slot
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// BlameStart opens a blame sample for one reader slot's wait loop: it
// returns the clock reading to hand back to BlameSample, or 0 when the
// recorder is off (BlameSample then no-ops). Engines call it the first
// time a per-slot scan observes an open covered critical section.
func (m *Metrics) BlameStart(sp *WaitSpan) int64 {
	if m == nil || sp.fr == nil {
		return 0
	}
	return m.now()
}

// BlameSample closes a blame sample opened by BlameStart, charging
// now-startNs of wait delay to slot. A zero startNs (recorder off at
// BlameStart) records nothing.
func (m *Metrics) BlameSample(sp *WaitSpan, slot int, startNs int64) {
	if startNs == 0 {
		return
	}
	sp.blame = append(sp.blame, BlameSample{Slot: slot, DelayNs: m.now() - startNs})
}
