package obs

import (
	"sort"
	"sync"
)

// The named metrics registry is what the export plane (internal/obshttp)
// serves: every name→Metrics binding becomes an `engine="name"` label
// set on /metrics and an entry on the debug endpoints. It is distinct
// from Publish (expvar) — Publish hands a snapshot to whatever already
// serves /debug/vars, the registry feeds the handlers this module mounts
// itself — but it shares Publish's rebind semantics: registering an
// already-registered name atomically swaps the backing Metrics, so a
// benchmark sweep that rebuilds its engine per data point keeps one
// stable series name.
var (
	regMu      sync.Mutex
	registered = map[string]*Metrics{}
)

// Register binds name to m in the process-wide export registry.
// Registering a bound name rebinds it; registering a nil Metrics removes
// the binding. Empty names are ignored.
func Register(name string, m *Metrics) {
	if name == "" {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	if m == nil {
		delete(registered, name)
		return
	}
	registered[name] = m
}

// Registered returns the Metrics bound to name, nil when unbound.
func Registered(name string) *Metrics {
	regMu.Lock()
	defer regMu.Unlock()
	return registered[name]
}

// RegisteredNames returns the bound names in sorted order.
func RegisteredNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registered))
	for n := range registered {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EachRegistered calls f for every binding in sorted name order. f runs
// outside the registry lock, so it may snapshot, register or rebind.
func EachRegistered(f func(name string, m *Metrics)) {
	for _, n := range RegisteredNames() {
		if m := Registered(n); m != nil {
			f(n, m)
		}
	}
}
