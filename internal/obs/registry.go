package obs

import (
	"sort"
	"sync"
)

// The named metrics registry is what the export plane (internal/obshttp)
// serves: every name→Metrics binding becomes an `engine="name"` label
// set on /metrics and an entry on the debug endpoints. It is distinct
// from Publish (expvar) — Publish hands a snapshot to whatever already
// serves /debug/vars, the registry feeds the handlers this module mounts
// itself — but it shares Publish's rebind semantics: registering an
// already-registered name atomically swaps the backing Metrics, so a
// benchmark sweep that rebuilds its engine per data point keeps one
// stable series name.
var (
	regMu      sync.Mutex
	registered = map[string]*Metrics{}
)

// Register binds name to m in the process-wide export registry.
// Registering a bound name rebinds it; registering a nil Metrics removes
// the binding. Empty names are ignored.
func Register(name string, m *Metrics) {
	if name == "" {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	if m == nil {
		delete(registered, name)
		return
	}
	registered[name] = m
}

// Registered returns the Metrics bound to name, nil when unbound.
func Registered(name string) *Metrics {
	regMu.Lock()
	defer regMu.Unlock()
	return registered[name]
}

// RegisteredNames returns the bound names in sorted order.
func RegisteredNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registered))
	for n := range registered {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EachRegistered calls f for every binding in sorted name order. f runs
// outside the registry lock, so it may snapshot, register or rebind.
func EachRegistered(f func(name string, m *Metrics)) {
	for _, n := range RegisteredNames() {
		if m := Registered(n); m != nil {
			f(n, m)
		}
	}
}

// ControllerState is an adaptive controller's self-report for the export
// plane: its mode ladder position, decision counters, and the last tick's
// measurements against the operator's target envelope (limit 0 =
// unbounded on that axis). internal/adapt publishes one per controller
// via RegisterController; /debug/prcu/health and /metrics render them.
type ControllerState struct {
	Name      string `json:"name"`
	Mode      string `json:"mode"`      // "normal", "elevated", "degraded"
	ModeCode  int    `json:"mode_code"` // 0, 1, 2 — the /metrics encoding
	Ticks     uint64 `json:"ticks"`
	Decisions uint64 `json:"decisions"`         // actuations (mode transitions)
	Breaches  uint64 `json:"breaches"`          // ticks with ≥1 envelope violation
	Escapes   uint64 `json:"escapes,omitempty"` // degraded-state escape-hatch firings (live migrations requested)

	// Last-tick measurements against the envelope.
	AgeNs           int64   `json:"age_ns"`
	MaxAgeNs        int64   `json:"max_age_ns"`
	Backlog         int64   `json:"backlog"`
	MaxBacklog      int64   `json:"max_backlog"`
	BacklogBytes    int64   `json:"backlog_bytes"`
	MaxBacklogBytes int64   `json:"max_backlog_bytes"`
	WaitP99Ns       float64 `json:"wait_p99_ns"`
	MaxWaitP99Ns    int64   `json:"max_wait_p99_ns"`
}

// Breached reports whether the last tick's measurements violate the
// envelope on any bounded axis.
func (c ControllerState) Breached() bool {
	return (c.MaxAgeNs > 0 && c.AgeNs > c.MaxAgeNs) ||
		(c.MaxBacklog > 0 && c.Backlog > c.MaxBacklog) ||
		(c.MaxBacklogBytes > 0 && c.BacklogBytes > c.MaxBacklogBytes) ||
		(c.MaxWaitP99Ns > 0 && c.WaitP99Ns > float64(c.MaxWaitP99Ns))
}

var (
	ctrlMu      sync.Mutex
	controllers = map[string]func() ControllerState{}
)

// RegisterController binds a controller's state probe under name in the
// process-wide export registry (rebinding like Register; nil probe
// removes the binding). The probe is called on every scrape and must be
// safe for concurrent use.
func RegisterController(name string, probe func() ControllerState) {
	if name == "" {
		return
	}
	ctrlMu.Lock()
	defer ctrlMu.Unlock()
	if probe == nil {
		delete(controllers, name)
		return
	}
	controllers[name] = probe
}

// Controllers returns every registered controller's current state in
// sorted name order. Probes run outside the registry lock.
func Controllers() []ControllerState {
	ctrlMu.Lock()
	names := make([]string, 0, len(controllers))
	for n := range controllers {
		names = append(names, n)
	}
	probes := make([]func() ControllerState, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		probes = append(probes, controllers[n])
	}
	ctrlMu.Unlock()
	out := make([]ControllerState, 0, len(names))
	for i, p := range probes {
		st := p()
		st.Name = names[i]
		out = append(out, st)
	}
	return out
}

// MigrationState is a live engine-migrator's self-report for the export
// plane: which handover (if any) is in flight, lifetime outcome
// counters, and the last run's duration and error. internal/migrate
// publishes one per migrator via RegisterMigration; /debug/prcu/health
// and /metrics render them.
type MigrationState struct {
	Name string `json:"name"`
	// From/To name the engines of the migration in flight, or of the
	// most recent one when idle.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Phase is "idle", "drain", "handover", "rollback" or
	// "stuck-rollback" (a rollback whose mandatory target drain keeps
	// failing); PhaseCode is the /metrics encoding (0-4 in that order).
	Phase     string `json:"phase"`
	PhaseCode int    `json:"phase_code"`
	Active    bool   `json:"active"`

	// Failed counts every migration that did not land the workload on
	// the target, including rollbacks: Started == Completed + Failed,
	// and RolledBack ⊆ Failed distinguishes failures that ran (and
	// reversed) the handover from those refused before anything flipped.
	Started    uint64 `json:"started"`
	Completed  uint64 `json:"completed"`
	RolledBack uint64 `json:"rolled_back"`
	Failed     uint64 `json:"failed"`

	// RollbackRetries counts failed target-drain attempts across all
	// rollbacks. The drain is mandatory (dual coverage must outlive the
	// last target reader) and retries until it succeeds; each failed
	// attempt increments this counter and records the attempt's error in
	// LastError, and a rollback several attempts deep parks in the
	// "stuck-rollback" phase until the drain lands.
	RollbackRetries uint64 `json:"rollback_retries,omitempty"`

	// LastDurationNs is the wall time of the most recently finished
	// migration (successful or not); LastError is empty after a success.
	LastDurationNs int64  `json:"last_duration_ns"`
	LastError      string `json:"last_error,omitempty"`
}

var (
	migMu      sync.Mutex
	migrations = map[string]func() MigrationState{}
)

// RegisterMigration binds a migrator's state probe under name in the
// process-wide export registry (rebinding like Register; nil probe
// removes the binding). The probe is called on every scrape and must be
// safe for concurrent use.
func RegisterMigration(name string, probe func() MigrationState) {
	if name == "" {
		return
	}
	migMu.Lock()
	defer migMu.Unlock()
	if probe == nil {
		delete(migrations, name)
		return
	}
	migrations[name] = probe
}

// Migrations returns every registered migrator's current state in sorted
// name order. Probes run outside the registry lock.
func Migrations() []MigrationState {
	migMu.Lock()
	names := make([]string, 0, len(migrations))
	for n := range migrations {
		names = append(names, n)
	}
	probes := make([]func() MigrationState, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		probes = append(probes, migrations[n])
	}
	migMu.Unlock()
	out := make([]MigrationState, 0, len(names))
	for i, p := range probes {
		st := p()
		st.Name = names[i]
		out = append(out, st)
	}
	return out
}
