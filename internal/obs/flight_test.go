package obs

import (
	"context"
	"testing"
)

func TestFlightGating(t *testing.T) {
	m := New()
	if m.FlightEnabled() {
		t.Fatal("recorder armed before EnableFlightRecorder")
	}
	m.FlightRecord(FlightSpan{GP: 1, Kind: SpanWait}) // must be a no-op
	if n := m.FlightLen(); n != 0 {
		t.Fatalf("disabled recorder buffered %d spans", n)
	}
	m.EnableFlightRecorder(32)
	if !m.FlightEnabled() {
		t.Fatal("recorder not armed after EnableFlightRecorder")
	}
	m.FlightRecord(FlightSpan{GP: 1, Kind: SpanWait})
	if n := m.FlightLen(); n != 1 {
		t.Fatalf("FlightLen = %d, want 1", n)
	}
	if got := m.DisableFlightRecorder(); got != 32 {
		t.Fatalf("DisableFlightRecorder = %d, want the armed capacity 32", got)
	}
	if m.FlightEnabled() || m.FlightLen() != 0 {
		t.Fatal("recorder still live after DisableFlightRecorder")
	}
	if got := m.DisableFlightRecorder(); got != 0 {
		t.Fatalf("second DisableFlightRecorder = %d, want 0", got)
	}
}

func TestFlightRingWrap(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(16) // the enforced minimum capacity
	for gp := uint64(1); gp <= 40; gp++ {
		m.FlightRecord(FlightSpan{GP: gp, Kind: SpanWait, StartNs: int64(gp)})
	}
	spans := m.FlightSnapshot()
	if len(spans) != 16 {
		t.Fatalf("snapshot has %d spans, want the ring capacity 16", len(spans))
	}
	// Oldest-first: the ring must hold exactly GPs 25..40 in order.
	for i, sp := range spans {
		if want := uint64(25 + i); sp.GP != want {
			t.Fatalf("spans[%d].GP = %d, want %d", i, sp.GP, want)
		}
	}
}

func TestFlightSnapshotBeforeWrap(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(16)
	for gp := uint64(1); gp <= 3; gp++ {
		m.FlightRecord(FlightSpan{GP: gp})
	}
	spans := m.FlightSnapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.GP != uint64(i+1) {
			t.Fatalf("spans[%d].GP = %d, want %d", i, sp.GP, i+1)
		}
	}
}

func TestTopBlameOrdering(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(32)
	// Blame flows in via wait spans' samples.
	m.FlightRecord(FlightSpan{GP: 1, Kind: SpanWait, Blame: []BlameSample{
		{Slot: 3, DelayNs: 100},
		{Slot: 1, DelayNs: 500},
	}})
	m.FlightRecord(FlightSpan{GP: 2, Kind: SpanWait, Blame: []BlameSample{
		{Slot: 3, DelayNs: 150},
		{Slot: 7, DelayNs: 250}, // ties slot 3's total; lower slot must sort first
	}})
	top := m.TopBlame(0)
	if len(top) != 3 {
		t.Fatalf("TopBlame(0) returned %d entries, want 3", len(top))
	}
	wantOrder := []int{1, 3, 7} // 500 > 250==250 (slot asc)
	for i, e := range top {
		if e.Slot != wantOrder[i] {
			t.Fatalf("TopBlame order: got slot %d at %d, want %d (full: %+v)", e.Slot, i, wantOrder[i], top)
		}
	}
	if top[0].TotalNs != 500 || top[0].Samples != 1 || top[0].MaxNs != 500 {
		t.Errorf("slot 1 aggregate wrong: %+v", top[0])
	}
	if top[1].TotalNs != 250 || top[1].Samples != 2 || top[1].MaxNs != 150 {
		t.Errorf("slot 3 aggregate wrong: %+v", top[1])
	}
	if k1 := m.TopBlame(1); len(k1) != 1 || k1[0].Slot != 1 {
		t.Errorf("TopBlame(1) = %+v, want just slot 1", k1)
	}
}

func TestWithGPRoundTrip(t *testing.T) {
	if gp := GPFromContext(nil); gp != 0 {
		t.Fatalf("GPFromContext(nil) = %d, want 0", gp)
	}
	if gp := GPFromContext(context.Background()); gp != 0 {
		t.Fatalf("GPFromContext(Background) = %d, want 0", gp)
	}
	ctx := WithGP(context.Background(), 99)
	if gp := GPFromContext(ctx); gp != 99 {
		t.Fatalf("GPFromContext after WithGP(99) = %d", gp)
	}
}

func TestNextGPNeverZero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		gp := NextGP()
		if gp == 0 {
			t.Fatal("NextGP minted 0")
		}
		if seen[gp] {
			t.Fatalf("NextGP repeated %d", gp)
		}
		seen[gp] = true
	}
}

// TestWaitSpanEmitsFlight checks the engine-facing path end to end: an
// armed recorder turns a WaitBeginCtx/WaitEnd pair into a wait span
// carrying the context's GP and the blame sampled between them.
func TestWaitSpanEmitsFlight(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(32)
	ctx := WithGP(context.Background(), 1234)
	sp := m.WaitBeginCtx(ctx)
	bs := m.BlameStart(&sp)
	if bs == 0 {
		t.Fatal("BlameStart = 0 with the recorder armed")
	}
	m.BlameSample(&sp, 5, bs)
	m.WaitEnd(sp, 4, 1, 0)

	spans := m.FlightSnapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 wait span", len(spans))
	}
	got := spans[0]
	if got.Kind != SpanWait || got.GP != 1234 || got.Track != "wait" {
		t.Fatalf("wait span = %+v", got)
	}
	if len(got.Blame) != 1 || got.Blame[0].Slot != 5 {
		t.Fatalf("wait span blame = %+v", got.Blame)
	}
	if got.Count != 1 {
		t.Fatalf("wait span count = %d, want waited=1", got.Count)
	}
	// And the aggregation saw the same sample.
	top := m.TopBlame(0)
	if len(top) != 1 || top[0].Slot != 5 {
		t.Fatalf("TopBlame = %+v", top)
	}
}

// TestWaitSpanMintsGP: a wait without a reclaim-provided context still
// gets a fresh non-zero GP so its span is traceable.
func TestWaitSpanMintsGP(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(32)
	sp := m.WaitBegin()
	m.WaitEnd(sp, 1, 0, 0)
	spans := m.FlightSnapshot()
	if len(spans) != 1 || spans[0].GP == 0 {
		t.Fatalf("fast-path wait span missing a minted GP: %+v", spans)
	}
}

func TestFlightExpediteLink(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(32)
	m.FlightExpedite("adapt: elevated")
	link := m.FlightExpediteLink()
	if link == 0 {
		t.Fatal("FlightExpediteLink = 0 after FlightExpedite")
	}
	if again := m.FlightExpediteLink(); again != 0 {
		t.Fatalf("expedite link consumed twice: %d", again)
	}
	spans := m.FlightSnapshot()
	if len(spans) != 1 || spans[0].Kind != SpanExpedite || spans[0].GP != link {
		t.Fatalf("expedite span = %+v, want kind expedite with GP %d", spans, link)
	}
	if spans[0].Track != "autotune" {
		t.Fatalf("expedite span track = %q", spans[0].Track)
	}
}

func TestFlightResetClears(t *testing.T) {
	m := New()
	m.EnableFlightRecorder(32)
	m.FlightRecord(FlightSpan{GP: 1, Kind: SpanWait, Blame: []BlameSample{{Slot: 2, DelayNs: 10}}})
	m.FlightExpedite("x")
	m.Reset()
	if m.FlightLen() != 0 {
		t.Fatal("Reset did not clear the span ring")
	}
	if top := m.TopBlame(0); len(top) != 0 {
		t.Fatalf("Reset did not clear blame: %+v", top)
	}
	if link := m.FlightExpediteLink(); link != 0 {
		t.Fatalf("Reset did not clear the expedite link: %d", link)
	}
	if !m.FlightEnabled() {
		t.Fatal("Reset disarmed the recorder (it must only clear contents)")
	}
}

func TestBlameStartDisabled(t *testing.T) {
	m := New()
	sp := m.WaitBegin()
	if bs := m.BlameStart(&sp); bs != 0 {
		t.Fatalf("BlameStart = %d with recorder off, want 0", bs)
	}
	m.BlameSample(&sp, 1, 0) // must be a no-op, not a panic
	m.WaitEnd(sp, 1, 1, 0)
	if m.FlightLen() != 0 {
		t.Fatal("disabled recorder recorded a span")
	}
	// And the fully-nil path engines take when built without metrics.
	var nm *Metrics
	var nsp WaitSpan
	if bs := nm.BlameStart(&nsp); bs != 0 {
		t.Fatalf("nil-Metrics BlameStart = %d", bs)
	}
	nm.BlameSample(&nsp, 0, 0)
}
