package obs

import (
	"context"
	"runtime/pprof"
	rttrace "runtime/trace"
	"sync/atomic"
)

// Runtime attribution ties the engine's internal phases to Go's own
// diagnostics: execution traces (go tool trace) gain user regions around
// every WaitForReaders and reclaimer flush under a per-engine task, and
// CPU profiles gain pprof labels (prcu_engine, prcu_op) on the
// goroutines executing those phases, so a profile of a loaded process
// attributes grace-period and reclamation time to the engine that spent
// it.
//
// The gate follows the trace ring's discipline exactly: a single atomic
// pointer that is nil when attribution is off, so every hook costs one
// pointer load and one never-taken branch on the disabled path — the
// wait path allocates nothing and calls nothing extra. Even enabled, the
// label contexts are built once at EnableRuntimeAttribution, so a wait
// performs no per-call allocation (runtime/trace regions are no-ops
// unless an execution trace is actually being collected).
type attrib struct {
	engine string
	task   *rttrace.Task
	// taskCtx carries the per-engine trace task; regions started from it
	// nest under the task in the trace viewer.
	taskCtx context.Context
	// waitCtx / flushCtx are taskCtx plus the pprof label sets for the
	// two attributed phases, precomputed so hooks never build label maps.
	waitCtx  context.Context
	flushCtx context.Context
}

// unlabeled restores an empty goroutine label set at region end.
var unlabeled = context.Background()

// EnableRuntimeAttribution turns on runtime/trace regions and pprof
// labels for this Metrics' engine phases, attributing them to engine
// (usually the RCU.Name()). While a wait or flush is attributed, the
// executing goroutine's pprof labels are replaced with
// {prcu_engine, prcu_op} and cleared afterwards — goroutines that carry
// their own pprof labels across WaitForReaders calls will lose them, so
// the toggle is opt-in (Options.RuntimeAttribution).
func (m *Metrics) EnableRuntimeAttribution(engine string) {
	if m == nil {
		return
	}
	ctx, task := rttrace.NewTask(context.Background(), "prcu:"+engine)
	m.attr.Store(&attrib{
		engine:  engine,
		task:    task,
		taskCtx: ctx,
		waitCtx: pprof.WithLabels(ctx, pprof.Labels(
			"prcu_engine", engine, "prcu_op", "wait")),
		flushCtx: pprof.WithLabels(ctx, pprof.Labels(
			"prcu_engine", engine, "prcu_op", "reclaim-flush")),
	})
}

// DisableRuntimeAttribution turns attribution back off and ends the
// engine's trace task. Waits already in flight finish their regions.
func (m *Metrics) DisableRuntimeAttribution() {
	if m == nil {
		return
	}
	if a := m.attr.Swap(nil); a != nil {
		a.task.End()
	}
}

// AttributionEnabled reports whether runtime attribution is on.
func (m *Metrics) AttributionEnabled() bool { return m != nil && m.attr.Load() != nil }

// attrHolder is the hook-visible atomic handle, mirroring traceHolder.
type attrHolder struct {
	p atomic.Pointer[attrib]
}

func (h *attrHolder) Load() *attrib          { return h.p.Load() }
func (h *attrHolder) Store(a *attrib)        { h.p.Store(a) }
func (h *attrHolder) Swap(a *attrib) *attrib { return h.p.Swap(a) }

// WaitSpan is the per-wait handle WaitBegin returns and WaitEnd
// consumes. It travels by value on the waiter's stack — the hook adds no
// allocation to the wait path whether or not attribution is enabled.
type WaitSpan struct {
	// StartNs is the wait's start on the metrics clock.
	StartNs int64
	// region is the open runtime/trace region, nil when attribution is
	// off (or for the zero WaitSpan of a metrics-less wait).
	region *rttrace.Region
	// labeled records that the waiter's goroutine labels were replaced
	// and must be cleared at WaitEnd.
	labeled bool
	// gp / fr are the flight recorder's state: the wait's grace-period ID
	// and the recorder it will report to, both zero when the recorder is
	// off. blame accumulates per-slot BlameSamples as the wait's scan
	// closes them; it only ever allocates with the recorder armed.
	gp    uint64
	fr    *flightRecorder
	blame []BlameSample
}

// ReclaimFlushBegin opens a runtime-attribution region for one reclaimer
// batch flush and labels the flush worker's goroutine; it returns nil
// when attribution (or the Metrics itself) is disabled. The worker
// goroutine belongs to the reclaimer, so its labels may stay sticky
// between flushes without clobbering anyone.
func (m *Metrics) ReclaimFlushBegin() *rttrace.Region {
	if m == nil {
		return nil
	}
	a := m.attr.Load()
	if a == nil {
		return nil
	}
	pprof.SetGoroutineLabels(a.flushCtx)
	return rttrace.StartRegion(a.taskCtx, "prcu:reclaim-flush")
}
