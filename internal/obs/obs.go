// Package obs is the engine-level observability layer: low-overhead
// metrics and event tracing for the RCU engines in internal/core.
//
// The paper's entire evaluation turns on quantities only visible inside
// the grace-period machinery — how long a wait-for-readers really takes,
// how many readers it scans versus how many it actually waits for (the
// predicate's selectivity), and how long read-side critical sections
// last. A Metrics value collects exactly those, with the layout rules the
// engines themselves follow:
//
//   - Counters touched by the wait side are cache-line padded atomics
//     (internal/pad), so concurrent waiters do not false-share.
//   - Reader-side counts live in per-reader lanes, one padded cell per
//     reader slot, written only by the owning reader and aggregated only
//     at Snapshot time — recording on the read fast path must never
//     create reader/reader or reader/waiter coherence traffic, which is
//     the very effect (DEER-PRCU's raison d'être) the module measures.
//   - Latency distributions go into fixed-bucket log₂ histograms
//     (internal/stats); reader-section durations are sampled (1 in 64 by
//     default) so the shared histogram line is touched rarely.
//
// Engines hold a *Metrics pointer that is nil when observability is
// disabled; every hook sits behind a single predictable nil-check branch,
// so the disabled fast path costs one never-taken branch and nothing
// else.
package obs

import (
	"context"
	"expvar"
	"runtime/pprof"
	rttrace "runtime/trace"
	"sync"
	"sync/atomic"

	"prcu/internal/pad"
	"prcu/internal/stats"
	"prcu/internal/tsc"
)

// DefaultSectionSampleShift makes one in 2^6 = 64 critical sections pay
// for a timestamped duration measurement.
const DefaultSectionSampleShift = 6

// Metrics is one engine's observability state. Construct with New; the
// nil *Metrics is valid everywhere (all methods no-op or return zeros),
// which is what lets engines guard hooks with a single nil check.
type Metrics struct {
	clock *tsc.Monotonic

	// Wait side. waits counts WaitForReaders calls; waitNs is the
	// engine-internal grace-period latency distribution.
	waits  pad.Uint64
	waitNs stats.Histogram

	// Predicate selectivity: slots (or counter nodes) examined by wait
	// scans versus those actually waited on because a covered critical
	// section was open.
	readersScanned pad.Uint64
	readersWaited  pad.Uint64

	// parks counts per-reader wait loops that exhausted the spin budget
	// and crossed into scheduler-yielding back-off (spin.Waiter's two
	// phases); waits resolved purely by spinning are readersWaited-parks.
	parks pad.Uint64

	// D-PRCU/SRCU counter-node drain outcomes (§4.2): resolved by
	// optimistic waiting, by the full gate-toggle protocol, or by
	// piggybacking on a concurrent lock holder's drains.
	drainsOptimistic pad.Uint64
	drainsGate       pad.Uint64
	drainsPiggyback  pad.Uint64

	// stalls counts grace-period stall reports the watchdog fired (already
	// rate-limited by the engine); stalledReaders accumulates the offending
	// open critical sections those reports named.
	stalls         pad.Uint64
	stalledReaders pad.Uint64

	// Reader side: per-slot lanes plus the shared sampled-duration
	// histogram. Lanes are pointers so the slice can grow without moving
	// cells out from under registered readers.
	laneMu      sync.Mutex
	lanes       []*ReaderLane
	sectionNs   stats.Histogram
	sampleShift uint

	// Deferred reclamation (internal/reclaim). The two gauges track the
	// live backlog — callbacks accepted but not yet resolved, and their
	// caller-declared bytes — and are updated under the reclaimer's
	// capacity lock, so a concurrent Snapshot never observes a value above
	// the configured hard watermark. The histograms are unitless
	// (batch sizes) and nanoseconds (flush latency) respectively.
	reclaimPending      pad.Int64
	reclaimBytes        pad.Int64
	reclaimRetired      pad.Uint64
	reclaimFreed        pad.Uint64
	reclaimDropped      pad.Uint64
	reclaimGraces       pad.Uint64
	reclaimExpedited    pad.Uint64
	reclaimBackpressure pad.Uint64
	reclaimInline       pad.Uint64
	reclaimBatch        stats.Histogram
	reclaimFlushNs      stats.Histogram

	// ageProbe, when set, reports the reclaimer's oldest-unresolved-
	// callback age in nanoseconds at snapshot time — the data-age gauge
	// the adaptive controller regulates. It is a pull probe rather than a
	// pushed gauge because age advances with wall time even when no
	// reclaim transition fires to update it.
	ageProbe atomic.Pointer[func() int64]

	// adaptDecisions counts adaptive-controller actuation decisions
	// recorded against this Metrics (mode changes, watermark retunes).
	adaptDecisions pad.Uint64

	// migrateEvents counts live engine-migration protocol transitions
	// recorded against this Metrics (begin, drained, handover, complete,
	// rollback).
	migrateEvents pad.Uint64

	// retiredEnters accumulates the enter counts of dead readers: when a
	// slot is recycled its lane restarts from zero for the new owner
	// (per-slot stats must not smear across owners), and the old owner's
	// count moves here so Snapshot.Enters stays a monotone total.
	retiredEnters pad.Uint64

	trace  traceHolder
	attr   attrHolder
	flight flightHolder
}

// New returns an enabled Metrics with the default section sampling rate
// and no trace buffer.
func New() *Metrics {
	return &Metrics{clock: tsc.NewMonotonic(), sampleShift: DefaultSectionSampleShift}
}

// SetSectionSampleShift makes one in 2^shift critical sections measure a
// duration (0 = every section). Call before readers register.
func (m *Metrics) SetSectionSampleShift(shift uint) { m.sampleShift = shift }

// now returns nanoseconds on the metrics clock.
func (m *Metrics) now() int64 { return m.clock.Now() }

// EnsureReaders grows the lane table to cover slots [0, n). It is
// idempotent and safe to call for engines sharing one Metrics; existing
// lanes never move.
func (m *Metrics) EnsureReaders(n int) {
	if m == nil {
		return
	}
	m.laneMu.Lock()
	defer m.laneMu.Unlock()
	for len(m.lanes) < n {
		m.lanes = append(m.lanes, &ReaderLane{m: m, slot: int32(len(m.lanes))})
	}
}

// Lane returns the per-reader lane for slot, growing the table if the
// engine registered more readers than EnsureReaders anticipated.
func (m *Metrics) Lane(slot int) *ReaderLane {
	if m == nil {
		return nil
	}
	m.EnsureReaders(slot + 1)
	m.laneMu.Lock()
	defer m.laneMu.Unlock()
	return m.lanes[slot]
}

// WaitBegin marks the start of a WaitForReaders and returns its span
// (start timestamp plus any open attribution state), to be handed back
// to WaitEnd on the same goroutine.
func (m *Metrics) WaitBegin() WaitSpan { return m.WaitBeginCtx(nil) }

// WaitBeginCtx is WaitBegin for waits opened under a Context that may
// carry a grace-period ID from the layer that initiated the wait (the
// reclaimer's coalescer, the migrator's drain). With the flight recorder
// armed, the span joins that chain — or mints a fresh GP ID when the
// context carries none (plain WaitForReaders calls). ctx may be nil.
func (m *Metrics) WaitBeginCtx(ctx context.Context) WaitSpan {
	sp := WaitSpan{StartNs: m.now()}
	if a := m.attr.Load(); a != nil {
		sp.region = rttrace.StartRegion(a.taskCtx, "prcu:wait")
		pprof.SetGoroutineLabels(a.waitCtx)
		sp.labeled = true
	}
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: sp.StartNs, Kind: EvWaitBegin})
	}
	if fr := m.flight.load(); fr != nil {
		sp.fr = fr
		if sp.gp = GPFromContext(ctx); sp.gp == 0 {
			sp.gp = NextGP()
		}
	}
	return sp
}

// WaitEnd completes the wait sp: scanned slots (or counter nodes) were
// examined, waited of them had an open covered critical section, and
// parked of those waits fell out of the spin phase into scheduler
// yields.
func (m *Metrics) WaitEnd(sp WaitSpan, scanned, waited, parked uint64) {
	end := m.now()
	m.waits.Add(1)
	m.waitNs.Record(end - sp.StartNs)
	if scanned != 0 {
		m.readersScanned.Add(scanned)
	}
	if waited != 0 {
		m.readersWaited.Add(waited)
	}
	if parked != 0 {
		m.parks.Add(parked)
	}
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: end, Kind: EvWaitEnd, Value: waited})
	}
	if sp.fr != nil {
		sp.fr.record(FlightSpan{
			GP: sp.gp, Kind: SpanWait, Track: "wait",
			StartNs: sp.StartNs, EndNs: end,
			Count: int(waited), Blame: sp.blame,
		})
	}
	if sp.region != nil {
		sp.region.End()
	}
	if sp.labeled {
		pprof.SetGoroutineLabels(unlabeled)
	}
}

// DrainOutcome classifies how one D-PRCU/SRCU counter-node drain
// resolved.
type DrainOutcome uint8

const (
	// DrainOptimistic: both counters were observed at zero within the
	// optimistic spin budget — no lock, no gate toggle.
	DrainOptimistic DrainOutcome = iota
	// DrainGate: the node lock was taken and the two-phase gate-toggle
	// protocol ran.
	DrainGate
	// DrainPiggyback: the lock was contended and the drain completed by
	// observing two full drains by the lock holder.
	DrainPiggyback
)

// StallDetected records one watchdog stall report naming stalled open
// critical sections, and traces it (Value carries the stalled count).
func (m *Metrics) StallDetected(stalled uint64) {
	if m == nil {
		return
	}
	m.stalls.Add(1)
	m.stalledReaders.Add(stalled)
	if a := m.attr.Load(); a != nil {
		// Mark the stall in the execution trace too, so a trace of a
		// wedged process shows the report inside the blocked wait region.
		rttrace.Log(a.taskCtx, "prcu:stall", a.engine)
	}
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: m.now(), Kind: EvStall, Reader: -1, Value: stalled})
	}
}

// DrainCounts records a batch of counter-node drain outcomes.
func (m *Metrics) DrainCounts(optimistic, gate, piggyback uint64) {
	if optimistic != 0 {
		m.drainsOptimistic.Add(optimistic)
	}
	if gate != 0 {
		m.drainsGate.Add(gate)
	}
	if piggyback != 0 {
		m.drainsPiggyback.Add(piggyback)
	}
}

// OverloadKind classifies how a retirement crossed the reclaimer's hard
// watermark.
type OverloadKind uint8

const (
	// OverloadBackpressure: the caller blocked until the backlog drained
	// below the watermark (PolicyBlock).
	OverloadBackpressure OverloadKind = iota
	// OverloadInline: the caller degraded to a synchronous grace period
	// and freed its own retirement inline (PolicyInline, or an oversized
	// single retirement under any policy).
	OverloadInline
)

// ReclaimEnqueue records one callback entering the deferred-reclamation
// backlog with its caller-declared bytes. The reclaimer calls it under
// its capacity lock so the backlog gauges never transiently exceed the
// configured watermarks.
func (m *Metrics) ReclaimEnqueue(bytes int64) {
	if m == nil {
		return
	}
	m.reclaimPending.Add(1)
	m.reclaimBytes.Add(bytes)
	m.reclaimRetired.Add(1)
}

// / ReclaimResolve records one backlog callback leaving the backlog: freed
// after a completed grace period (freed = true) or dropped because its
// wait was abandoned at a bounded shutdown.
func (m *Metrics) ReclaimResolve(bytes int64, freed bool) {
	if m == nil {
		return
	}
	m.reclaimPending.Add(-1)
	m.reclaimBytes.Add(-bytes)
	if freed {
		m.reclaimFreed.Add(1)
	} else {
		m.reclaimDropped.Add(1)
	}
}

// / ReclaimFlush records one shard batch flush: how many callbacks it
// resolved, how many grace periods the coalescer actually issued for
// them, how long the whole flush took, and whether it was expedited
// (soft-watermark or explicit Flush) rather than delay-batched.
func (m *Metrics) ReclaimFlush(batch int, graces uint64, durNs int64, expedited bool) {
	if m == nil {
		return
	}
	m.reclaimBatch.Record(int64(batch))
	m.reclaimFlushNs.Record(durNs)
	m.reclaimGraces.Add(graces)
	if expedited {
		m.reclaimExpedited.Add(1)
	}
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: m.now(), Kind: EvReclaimFlush, Reader: -1, Value: uint64(batch)})
	}
}

// ReclaimOverload records a retirement hitting the hard watermark, with
// the backlog observed at that moment.
func (m *Metrics) ReclaimOverload(kind OverloadKind, backlog uint64) {
	if m == nil {
		return
	}
	if kind == OverloadBackpressure {
		m.reclaimBackpressure.Add(1)
	} else {
		m.reclaimInline.Add(1)
	}
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: m.now(), Kind: EvReclaimOverload, Reader: -1, Value: backlog})
	}
}

// SetReclaimAgeProbe installs (or, with nil, removes) the pull probe
// behind Snapshot.ReclaimOldestNs. The reclaimer installs its
// OldestAgeNs at construction; a Metrics shared by several reclaimers
// keeps the last probe installed.
func (m *Metrics) SetReclaimAgeProbe(probe func() int64) {
	if m == nil {
		return
	}
	if probe == nil {
		m.ageProbe.Store(nil)
		return
	}
	m.ageProbe.Store(&probe)
}

// ReclaimOldestNs reports the age probe's current reading (0 when no
// probe is installed or the backlog is empty).
func (m *Metrics) ReclaimOldestNs() int64 {
	if m == nil {
		return 0
	}
	if p := m.ageProbe.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// AdaptDecision records one adaptive-controller decision: code is the
// controller's packed decision word (mode in the low bits; see
// internal/adapt). The decision lands in the trace ring as an EvAdapt
// event, giving post-mortems the controller's actuation history in line
// with the waits and overloads that drove it. The controller rate-limits
// its own logging; this hook records whatever it is handed.
func (m *Metrics) AdaptDecision(code uint64) {
	if m == nil {
		return
	}
	m.adaptDecisions.Add(1)
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: m.now(), Kind: EvAdapt, Reader: -1, Value: code})
	}
}

// MigrateEvent records one live engine-migration protocol transition:
// code is the migrator's packed phase word (see internal/migrate). The
// transition lands in the trace ring as an EvMigrate event, putting the
// handover's begin/drain/complete/rollback history in line with the
// waits and stalls that surrounded it.
func (m *Metrics) MigrateEvent(code uint64) {
	if m == nil {
		return
	}
	m.migrateEvents.Add(1)
	if tr := m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: m.now(), Kind: EvMigrate, Reader: -1, Value: code})
	}
}

// ReaderLane is one reader slot's private metrics cell. Its counter is a
// padded atomic written only by the owning reader (Snapshot reads it),
// and the sampling scratch fields are owner-only.
type ReaderLane struct {
	m      *Metrics
	slot   int32
	enters pad.Uint64
	// startNs/sampling are accessed only by the owning reader goroutine.
	startNs  int64
	sampling bool
}

// Recycle re-arms the lane for a new owner of its slot: the previous
// owner's enter count retires into the metrics-wide accumulator (so
// aggregate totals never go backwards) and any half-open duration sample
// is abandoned. Engines call it when handing the lane to a freshly
// registered reader; the previous owner has unregistered by then, so no
// one else is writing the lane.
func (l *ReaderLane) Recycle() {
	l.m.retiredEnters.Add(l.enters.Swap(0))
	l.sampling = false
}

// Enters returns the number of critical sections recorded for the lane's
// current owner (since the last Recycle).
func (l *ReaderLane) Enters() uint64 { return l.enters.Load() }

// OnEnter records a critical-section entry on v. Called by the engine's
// Enter after its own bookkeeping.
func (l *ReaderLane) OnEnter(v uint64) {
	n := l.enters.Add(1)
	if (n-1)&(1<<l.m.sampleShift-1) == 0 {
		l.startNs = l.m.now()
		l.sampling = true
	}
	if tr := l.m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: l.m.now(), Kind: EvEnter, Reader: l.slot, Value: v})
	}
}

// OnExit records the critical-section exit on v, completing a sampled
// duration measurement if OnEnter started one.
func (l *ReaderLane) OnExit(v uint64) {
	if l.sampling {
		l.m.sectionNs.Record(l.m.now() - l.startNs)
		l.sampling = false
	}
	if tr := l.m.trace.load(); tr != nil {
		tr.add(Event{TimeNs: l.m.now(), Kind: EvExit, Reader: l.slot, Value: v})
	}
}

// Reset clears every counter, histogram and the trace buffer (the buffer
// stays enabled). Reader lanes are preserved.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.waits.Store(0)
	m.waitNs.Reset()
	m.readersScanned.Store(0)
	m.readersWaited.Store(0)
	m.parks.Store(0)
	m.drainsOptimistic.Store(0)
	m.drainsGate.Store(0)
	m.drainsPiggyback.Store(0)
	m.stalls.Store(0)
	m.stalledReaders.Store(0)
	m.reclaimPending.Store(0)
	m.reclaimBytes.Store(0)
	m.reclaimRetired.Store(0)
	m.reclaimFreed.Store(0)
	m.reclaimDropped.Store(0)
	m.reclaimGraces.Store(0)
	m.reclaimExpedited.Store(0)
	m.reclaimBackpressure.Store(0)
	m.reclaimInline.Store(0)
	m.reclaimBatch.Reset()
	m.reclaimFlushNs.Reset()
	m.adaptDecisions.Store(0)
	m.migrateEvents.Store(0)
	m.sectionNs.Reset()
	m.retiredEnters.Store(0)
	m.laneMu.Lock()
	for _, l := range m.lanes {
		l.enters.Store(0)
	}
	m.laneMu.Unlock()
	if tr := m.trace.load(); tr != nil {
		tr.reset()
	}
	if fr := m.flight.load(); fr != nil {
		fr.reset()
	}
}

// expvar bookkeeping: expvar.Publish panics on duplicate names, so
// Publish keeps its own registry and republishing a name just swaps the
// backing Metrics.
var (
	expvarMu  sync.Mutex
	published = map[string]*publishedMetrics{}
)

type publishedMetrics struct {
	mu sync.Mutex
	m  *Metrics
}

// Publish exports m's Snapshot under the given expvar name (e.g.
// "prcu.EER-PRCU"), making it visible on /debug/vars wherever the
// process serves expvar. Publishing an already-published name rebinds it.
func Publish(name string, m *Metrics) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if p, ok := published[name]; ok {
		p.mu.Lock()
		p.m = m
		p.mu.Unlock()
		return
	}
	p := &publishedMetrics{m: m}
	published[name] = p
	expvar.Publish(name, expvar.Func(func() any {
		p.mu.Lock()
		mm := p.m
		p.mu.Unlock()
		return mm.Snapshot()
	}))
}
