package obs

import (
	"math"
	"time"

	"prcu/internal/stats"
)

// Rates is the windowed view of two Snapshots: what happened between
// prev and cur, normalized per second where that is meaningful. It is
// the arithmetic shared by the health endpoint and the prcubench
// monitor — both watch a live process, where the cumulative totals a
// Snapshot carries say little and the slope over the last window says
// everything (a paper-§2 stall or a §5 backlog blow-up is a rate
// anomaly long before it is a large total).
type Rates struct {
	// Interval is the window the rates are computed over.
	Interval time.Duration

	// Waits is the number of WaitForReaders completed in the window;
	// WaitsPerSec is its rate.
	Waits       uint64
	WaitsPerSec float64
	// EntersPerSec is the read-side critical-section entry rate.
	EntersPerSec float64
	// Selectivity is the windowed readers-waited / readers-scanned — the
	// paper's central quantity, over just this window.
	Selectivity float64
	// ParksPerSec is the rate of waited-on readers that fell out of the
	// spin phase into scheduler yields.
	ParksPerSec float64

	// WaitP50Ns / WaitP99Ns are percentile estimates over only the waits
	// completed in the window (histogram bucket deltas, geometric
	// midpoint — same estimator as HistSummary's percentiles).
	WaitP50Ns float64
	WaitP99Ns float64
	// SectionP50Ns / SectionP99Ns likewise, over the sampled reader
	// sections recorded in the window.
	SectionP50Ns float64
	SectionP99Ns float64

	// Stalls is the number of watchdog stall reports fired in the window.
	Stalls uint64

	// ReclaimBacklog / ReclaimBacklogBytes are the live backlog gauges at
	// cur (not a delta); BacklogSlope is the backlog's growth rate in
	// callbacks per second — positive means retirement is outrunning
	// grace periods.
	ReclaimBacklog      int64
	ReclaimBacklogBytes int64
	// OldestAgeNs is the oldest unresolved callback's age at cur (a
	// gauge, not a delta) — the data-age input to the target envelope.
	OldestAgeNs  int64
	BacklogSlope float64
	// RetiresPerSec / FreesPerSec / GracesPerSec are the reclaimer's
	// windowed rates.
	RetiresPerSec float64
	FreesPerSec   float64
	GracesPerSec  float64
	// Overloads counts hard-watermark events (backpressure blocks plus
	// inline degradations) in the window.
	Overloads uint64
}

// Delta computes the windowed rates between two snapshots of the same
// Metrics taken dt apart (prev first). A zero prev Snapshot yields
// since-start rates. Counters that moved backwards — the Metrics was
// Reset or the name rebound to a fresh collector between the samples —
// clamp to zero rather than go negative.
func Delta(prev, cur Snapshot, dt time.Duration) Rates {
	r := Rates{
		Interval:            dt,
		Waits:               sub(cur.Waits, prev.Waits),
		Stalls:              sub(cur.Stalls, prev.Stalls),
		ReclaimBacklog:      cur.ReclaimPending,
		ReclaimBacklogBytes: cur.ReclaimBytes,
		OldestAgeNs:         cur.ReclaimOldestNs,
		Overloads: sub(cur.ReclaimBackpressure, prev.ReclaimBackpressure) +
			sub(cur.ReclaimInline, prev.ReclaimInline),
	}
	scanned := sub(cur.ReadersScanned, prev.ReadersScanned)
	waited := sub(cur.ReadersWaited, prev.ReadersWaited)
	if scanned > 0 {
		r.Selectivity = float64(waited) / float64(scanned)
	}

	wait := bucketDelta(prev.WaitNs.Buckets, cur.WaitNs.Buckets)
	r.WaitP50Ns = bucketPercentile(wait, 50)
	r.WaitP99Ns = bucketPercentile(wait, 99)
	sect := bucketDelta(prev.SectionNs.Buckets, cur.SectionNs.Buckets)
	r.SectionP50Ns = bucketPercentile(sect, 50)
	r.SectionP99Ns = bucketPercentile(sect, 99)

	if dt > 0 {
		sec := dt.Seconds()
		r.WaitsPerSec = float64(r.Waits) / sec
		r.EntersPerSec = float64(sub(cur.Enters, prev.Enters)) / sec
		r.ParksPerSec = float64(sub(cur.Parks, prev.Parks)) / sec
		r.BacklogSlope = float64(cur.ReclaimPending-prev.ReclaimPending) / sec
		r.RetiresPerSec = float64(sub(cur.ReclaimRetired, prev.ReclaimRetired)) / sec
		r.FreesPerSec = float64(sub(cur.ReclaimFreed, prev.ReclaimFreed)) / sec
		r.GracesPerSec = float64(sub(cur.ReclaimGraces, prev.ReclaimGraces)) / sec
	}
	return r
}

// sub is a monotone-counter delta clamped at zero.
func sub(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// bucketDelta subtracts prev's bucket counts from cur's, keyed by bucket
// bound, keeping only buckets that gained samples. Both inputs are
// ascending (stats.Histogram.Buckets), so the result is too.
func bucketDelta(prev, cur []stats.Bucket) []stats.Bucket {
	pm := make(map[int64]int64, len(prev))
	for _, b := range prev {
		pm[b.LoNs] = b.Count
	}
	var out []stats.Bucket
	for _, b := range cur {
		if c := b.Count - pm[b.LoNs]; c > 0 {
			out = append(out, stats.Bucket{LoNs: b.LoNs, HiNs: b.HiNs, Count: c})
		}
	}
	return out
}

// bucketPercentile estimates the p-th percentile of an ascending bucket
// list by the geometric midpoint of the bucket holding that rank — the
// same estimator stats.Histogram.ApproxPercentile uses.
func bucketPercentile(bs []stats.Bucket, p float64) float64 {
	var total int64
	for _, b := range bs {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for _, b := range bs {
		seen += b.Count
		if seen >= rank {
			lo := float64(b.LoNs)
			if lo == 0 {
				lo = 1
			}
			return lo * math.Sqrt2
		}
	}
	return float64(bs[len(bs)-1].HiNs)
}
