// Package tsc provides the global clocks that back time-based quiescence
// detection (paper §4.1).
//
// The paper reads the x86 timestamp counter, which is architecturally
// guaranteed monotonic and consistent across sockets. Go cannot issue RDTSC
// from the standard library, so this package substitutes Linux
// CLOCK_MONOTONIC (via the monotonic component of time.Time), which provides
// the same two properties the correctness proofs need:
//
//  1. monotonicity: successive reads never decrease, and
//  2. cross-thread consistency: if one goroutine's read completes before
//     another's begins, the later read observes a value >= the earlier one.
//
// The quiescence loops only break on a *strictly* greater timestamp, so the
// coarser resolution of CLOCK_MONOTONIC versus the TSC can delay — never
// corrupt — grace-period detection: a reader whose re-entry lands on the same
// nanosecond as the waiter's start merely keeps the waiter waiting until the
// reader's exit posts infinity.
//
// A logical fetch-add clock (an alternative the paper suggests for machines
// without a usable hardware counter) and a manually advanced clock for
// deterministic tests are also provided.
package tsc

import (
	"math"
	"sync/atomic"
	"time"
)

// Infinity is the timestamp posted by prcu_exit: it compares greater than
// every value any clock returns, encoding "not inside a critical section".
const Infinity int64 = math.MaxInt64

// Clock is a monotonically increasing, cross-thread-consistent time source.
type Clock interface {
	// Now returns the current timestamp. Values are opaque except for
	// ordering; Infinity is reserved and never returned.
	Now() int64
}

// Monotonic reads CLOCK_MONOTONIC. This is the production clock and the
// closest available analogue of the paper's TSC.
type Monotonic struct {
	base time.Time
}

// NewMonotonic returns a Monotonic clock anchored at the current instant.
func NewMonotonic() *Monotonic { return &Monotonic{base: time.Now()} }

// Now returns nanoseconds since the clock was created.
func (c *Monotonic) Now() int64 { return int64(time.Since(c.base)) }

// Logical is a fetch-add software clock: every Now call returns a strictly
// greater value than every call that completed before it. Readers contend on
// one cache line, which is exactly the cost the TSC avoids; it exists for
// the clock-source ablation and as the portable fallback the paper mentions.
type Logical struct {
	c atomic.Int64
}

// NewLogical returns a Logical clock starting at 1.
func NewLogical() *Logical { return new(Logical) }

// Now returns the next tick.
func (c *Logical) Now() int64 { return c.c.Add(1) }

// Manual is a test clock advanced explicitly by the test harness.
type Manual struct {
	c atomic.Int64
}

// NewManual returns a Manual clock reading t.
func NewManual(t int64) *Manual {
	m := new(Manual)
	m.c.Store(t)
	return m
}

// Now returns the manually set time.
func (c *Manual) Now() int64 { return c.c.Load() }

// Advance moves the clock forward by d and returns the new reading.
// Advancing by a negative duration panics: the quiescence proofs require
// monotonicity.
func (c *Manual) Advance(d int64) int64 {
	if d < 0 {
		panic("tsc: Manual clock moved backwards")
	}
	return c.c.Add(d)
}
