package tsc

import (
	"sync"
	"testing"
	"time"
)

func TestMonotonicAdvances(t *testing.T) {
	c := NewMonotonic()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("clock did not advance: %d then %d", a, b)
	}
}

func TestMonotonicNeverDecreases(t *testing.T) {
	c := NewMonotonic()
	prev := c.Now()
	for i := 0; i < 100000; i++ {
		now := c.Now()
		if now < prev {
			t.Fatalf("clock went backwards: %d then %d", prev, now)
		}
		prev = now
	}
}

func TestMonotonicNeverReturnsInfinity(t *testing.T) {
	c := NewMonotonic()
	for i := 0; i < 1000; i++ {
		if c.Now() == Infinity {
			t.Fatal("Now returned the reserved Infinity value")
		}
	}
}

func TestLogicalStrictlyIncreases(t *testing.T) {
	c := NewLogical()
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("logical clock not strictly increasing: %d then %d", prev, now)
		}
		prev = now
	}
}

func TestLogicalCrossThreadUnique(t *testing.T) {
	c := NewLogical()
	const perG, gs = 10000, 8
	results := make([][]int64, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]int64, perG)
			for i := range results[g] {
				results[g][i] = c.Now()
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, perG*gs)
	for _, r := range results {
		for _, v := range r {
			if seen[v] {
				t.Fatalf("duplicate tick %d across threads", v)
			}
			seen[v] = true
		}
	}
}

func TestManualClock(t *testing.T) {
	c := NewManual(10)
	if c.Now() != 10 {
		t.Fatalf("Now = %d, want 10", c.Now())
	}
	if got := c.Advance(5); got != 15 {
		t.Fatalf("Advance returned %d, want 15", got)
	}
	if c.Now() != 15 {
		t.Fatalf("Now = %d, want 15", c.Now())
	}
}

func TestManualBackwardsPanics(t *testing.T) {
	c := NewManual(10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance must panic")
		}
	}()
	c.Advance(-1)
}

func TestInfinityOrdering(t *testing.T) {
	c := NewMonotonic()
	if !(c.Now() < Infinity) {
		t.Fatal("Infinity must exceed any clock reading")
	}
}
