package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n16 uint16) bool {
		n := uint64(n16) + 1
		v := r.Intn(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets, n = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	mean := n / buckets
	for b, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Fatalf("bucket %d has %d draws (mean %d): skewed", b, c, mean)
		}
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{ReadDominated, Mixed, WriteDominated, ReadOnly} {
		m.Validate() // must not panic
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix must panic")
		}
	}()
	Mix{50, 10, 10, "bad"}.Validate()
}

func TestMixPickDistribution(t *testing.T) {
	r := NewRNG(5)
	m := Mixed
	const n = 100000
	var counts [3]int
	for i := 0; i < n; i++ {
		counts[m.Pick(r)]++
	}
	check := func(got, pct int, label string) {
		want := n * pct / 100
		if got < want*85/100 || got > want*115/100 {
			t.Errorf("%s drawn %d times, want ~%d", label, got, want)
		}
	}
	check(counts[OpContains], m.ContainsPct, "contains")
	check(counts[OpInsert], m.InsertPct, "insert")
	check(counts[OpDelete], m.DeletePct, "delete")
}

func TestMixPickReadOnly(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if ReadOnly.Pick(r) != OpContains {
			t.Fatal("read-only mix drew a non-contains op")
		}
	}
}

func TestRunCountsOps(t *testing.T) {
	res := Run(4, 30*time.Millisecond, func(w int, rng *RNG) int {
		_ = rng.Next()
		return 1
	})
	if res.Ops <= 0 {
		t.Fatal("no operations recorded")
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Fatalf("elapsed %v shorter than requested window", res.Elapsed)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestRunWorkerIDs(t *testing.T) {
	seen := make([]bool, 4)
	Run(4, 10*time.Millisecond, func(w int, rng *RNG) int {
		seen[w] = true
		return 1
	})
	for w, s := range seen {
		if !s {
			t.Fatalf("worker %d never ran", w)
		}
	}
}

func TestThroughputZeroElapsed(t *testing.T) {
	if (Result{Ops: 10}).Throughput() != 0 {
		t.Fatal("zero elapsed must yield zero throughput, not a division error")
	}
}
