// Package workload generates the synthetic workloads of the paper's
// evaluation (§6.1): threads repeatedly invoke operations following a
// specified distribution, with integer keys selected uniformly from a
// given range.
package workload

// RNG is a splitmix64 pseudo-random generator: deterministic, allocation
// free, and cheap enough that random-number generation never becomes the
// benchmark bottleneck. Each worker owns one, seeded distinctly.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n uint64) uint64 {
	if n == 0 {
		panic("workload: Intn(0)")
	}
	return r.Next() % n
}

// OpKind is one of the three data structure operations.
type OpKind uint8

// Operation kinds.
const (
	OpContains OpKind = iota
	OpInsert
	OpDelete
)

// Mix is an operation distribution in percent. The three fields must sum
// to 100.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
	Name        string
}

// The paper's §6.1 operation distributions.
var (
	// ReadDominated is 98% contains, 1% insert, 1% delete.
	ReadDominated = Mix{98, 1, 1, "read-dominated"}
	// Mixed is 70% contains, 15% insert, 15% delete.
	Mixed = Mix{70, 15, 15, "mixed"}
	// WriteDominated is 50% insert, 50% delete.
	WriteDominated = Mix{0, 50, 50, "write-dominated"}
	// ReadOnly is 100% contains (Figure 7's read-overhead probe).
	ReadOnly = Mix{100, 0, 0, "read-only"}
)

// Validate panics if the mix does not sum to 100.
func (m Mix) Validate() {
	if m.ContainsPct+m.InsertPct+m.DeletePct != 100 {
		panic("workload: operation mix must sum to 100%")
	}
}

// Pick draws an operation kind according to the mix.
func (m Mix) Pick(r *RNG) OpKind {
	p := int(r.Intn(100))
	if p < m.ContainsPct {
		return OpContains
	}
	if p < m.ContainsPct+m.InsertPct {
		return OpInsert
	}
	return OpDelete
}
