package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// yieldEvery is how many loop iterations a worker runs between voluntary
// runtime.Gosched calls. Workers in tight loops otherwise hold a core for
// the full 10ms forced-preemption slice, which on hosts with fewer cores
// than workers turns every cross-thread wait into a multi-slice lottery
// and swamps the measurement with scheduler noise. The amortized cost is
// a few ns/op on unloaded hosts.
const yieldEvery = 256

// Result aggregates one timed run.
type Result struct {
	Ops     int64         // operations completed across all workers
	Elapsed time.Duration // wall time of the measurement window
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run starts workers goroutines, each executing body(worker, rng) in a
// loop for roughly d, and returns the combined operation count. body
// returns the number of operations it performed in that call (usually 1).
//
// Workers spin up, wait on a common start line so the window measures
// steady state, and observe a shared stop flag.
func Run(workers int, d time.Duration, body func(worker int, rng *RNG) int) Result {
	var (
		start = make(chan struct{})
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := NewRNG(uint64(w) + 1)
			<-start
			ops := int64(0)
			for i := 0; !stop.Load(); i++ {
				ops += int64(body(w, rng))
				if i%yieldEvery == 0 {
					runtime.Gosched()
				}
			}
			total.Add(ops)
		}(w)
	}
	t0 := time.Now()
	close(start)
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)
	return Result{Ops: total.Load(), Elapsed: elapsed}
}
