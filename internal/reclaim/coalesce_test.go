package reclaim

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
)

// covers asserts that g's predicate holds everywhere each member
// callback's predicate holds — the coalescer's one correctness
// obligation (never under-cover).
func covers(t *testing.T, batch []callback, g waitGroup) {
	t.Helper()
	for _, ci := range g.cbs {
		member := batch[ci].pred
		if member.Kind() == core.KindAll {
			if g.pred.Kind() != core.KindAll {
				t.Fatalf("group %s cannot cover member %s", g.pred, member)
			}
			continue
		}
		if ok := member.ForEach(func(v core.Value) bool {
			if !g.pred.Holds(v) {
				t.Fatalf("group %s does not cover value %d of member %s", g.pred, v, member)
			}
			return true
		}); !ok {
			// Non-enumerable member (Func): probe the union by sampling is
			// not possible generically; the construction (disjunction over
			// members) covers by definition, so just require a Func group.
			if g.pred.Kind() != core.KindFunc && g.pred.Kind() != core.KindAll {
				t.Fatalf("opaque member in non-union group %s", g.pred)
			}
		}
	}
}

func checkPartition(t *testing.T, batch []callback, groups []waitGroup) {
	t.Helper()
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, ci := range g.cbs {
			if seen[ci] {
				t.Fatalf("callback %d in two groups", ci)
			}
			seen[ci] = true
		}
		covers(t, batch, g)
	}
	if len(seen) != len(batch) {
		t.Fatalf("partition covers %d of %d callbacks", len(seen), len(batch))
	}
}

func TestCoalesceMergesAdjacentAndOverlappingSpans(t *testing.T) {
	batch := []callback{
		{pred: core.Singleton(1)},
		{pred: core.Singleton(2)},     // adjacent to 1
		{pred: core.Interval(10, 20)}, // separate run
		{pred: core.Interval(15, 30)}, // overlaps [10,20]
		{pred: core.Interval(31, 40)}, // adjacent to [15,30]
		{pred: core.Singleton(100)},   // isolated
	}
	groups := coalesce(batch)
	checkPartition(t, batch, groups)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 ([1,2], [10,40], [100]); groups: %v", len(groups), preds(groups))
	}
}

func TestCoalesceAllSwallowsEverything(t *testing.T) {
	batch := []callback{
		{pred: core.Singleton(1)},
		{pred: core.All()},
		{pred: core.Interval(5, 9)},
		{pred: core.Func(func(v core.Value) bool { return v%2 == 0 })},
	}
	groups := coalesce(batch)
	checkPartition(t, batch, groups)
	if len(groups) != 1 || groups[0].pred.Kind() != core.KindAll {
		t.Fatalf("wildcard member must fold the whole batch into one All wait; got %v", preds(groups))
	}
}

func TestCoalesceOpaquePredicatesFormOneUnion(t *testing.T) {
	even := core.Func(func(v core.Value) bool { return v%2 == 0 })
	big := core.Func(func(v core.Value) bool { return v > 1000 })
	batch := []callback{{pred: even}, {pred: big}}
	groups := coalesce(batch)
	checkPartition(t, batch, groups)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1 union", len(groups))
	}
	u := groups[0].pred
	for _, tc := range []struct {
		v    core.Value
		want bool
	}{{4, true}, {2002, true}, {1001, true}, {7, false}} {
		if got := u.Holds(tc.v); got != tc.want {
			t.Fatalf("union(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestCoalesceCtxCallbacksStayIndividual(t *testing.T) {
	ctx := context.Background()
	batch := []callback{
		{pred: core.Singleton(1)},
		{pred: core.Singleton(2), ctx: ctx},
		{pred: core.Singleton(3), ctx: ctx},
	}
	groups := coalesce(batch)
	checkPartition(t, batch, groups)
	individual := 0
	for _, g := range groups {
		if g.ctx != nil {
			if len(g.cbs) != 1 {
				t.Fatalf("ctx-bound callbacks must not coalesce; group has %d", len(g.cbs))
			}
			individual++
		}
	}
	if individual != 2 {
		t.Fatalf("got %d individual ctx groups, want 2", individual)
	}
}

func TestCoalesceSpanOverflowBoundary(t *testing.T) {
	maxV := ^core.Value(0)
	batch := []callback{
		{pred: core.Interval(maxV-5, maxV)}, // hi+1 would overflow
		{pred: core.Singleton(maxV)},
		{pred: core.Singleton(0)},
	}
	groups := coalesce(batch)
	checkPartition(t, batch, groups)
}

func preds(groups []waitGroup) []string {
	out := make([]string, len(groups))
	for i, g := range groups {
		out[i] = g.pred.String()
	}
	return out
}

// FuzzReclaim drives a single-shard reclaimer with a fuzzer-chosen
// mix of predicates, byte declarations and control operations, checking
// the invariants that must hold on every schedule: each accepted
// callback resolves exactly once, the ledger balances, and shutdown
// terminates.
func FuzzReclaim(f *testing.F) {
	f.Add(uint64(1), uint8(16), uint8(4), false)
	f.Add(uint64(42), uint8(64), uint8(0), true)
	f.Add(uint64(0xdead), uint8(3), uint8(255), false)
	f.Add(uint64(7), uint8(100), uint8(31), true)
	f.Fuzz(func(t *testing.T, seed uint64, n, mask uint8, inline bool) {
		pol := PolicyBlock
		if inline {
			pol = PolicyInline
		}
		r := New(core.NewTimeRCU(8, nil), Config{
			Shards:     1,
			MaxPending: int(mask%32) + 1,
			Policy:     pol,
			FlushDelay: -1,
		})
		var freed atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			s := seed
			for i := 0; i < int(n); i++ {
				s = s*6364136223846793005 + 1442695040888963407
				var p core.Predicate
				switch s % 4 {
				case 0:
					p = core.All()
				case 1:
					p = core.Singleton(core.Value(s >> 32))
				case 2:
					lo := core.Value(s>>32) % 1024
					p = core.Interval(lo, lo+core.Value(s%64))
				default:
					lo := core.Value(s % 7)
					p = core.Func(func(v core.Value) bool { return v%7 == lo })
				}
				r.Retire(nil, p, int(s%1024), func(any) { freed.Add(1) })
				if s%13 == 0 {
					r.Flush()
				}
				if s%29 == 0 {
					r.Barrier()
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("fuzz driver wedged")
		}
		r.Barrier()
		r.Close()
		if got := freed.Load(); got != int64(n) {
			t.Fatalf("freed %d of %d retirements", got, n)
		}
		if p := r.Pending(); p != 0 {
			t.Fatalf("Pending = %d after Close", p)
		}
	})
}
