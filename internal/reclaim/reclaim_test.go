package reclaim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/chaos"
	"prcu/internal/core"
	"prcu/internal/obs"
)

// countingRCU counts the grace periods an engine actually executes —
// the denominator of every batching assertion.
type countingRCU struct {
	core.RCU
	waits atomic.Uint64
}

func (c *countingRCU) WaitForReaders(p core.Predicate) {
	c.waits.Add(1)
	c.RCU.WaitForReaders(p)
}

func (c *countingRCU) WaitForReadersCtx(ctx context.Context, p core.Predicate) error {
	c.waits.Add(1)
	return c.RCU.WaitForReadersCtx(ctx, p)
}

// TestReclaimerBatchingSavesGracePeriods is the headline acceptance: a
// retirement storm over a narrow key range must cost at least 2x fewer
// grace periods than one-wait-per-callback (it lands orders of
// magnitude fewer: each accumulated batch coalesces to a handful of
// merged intervals).
func TestReclaimerBatchingSavesGracePeriods(t *testing.T) {
	eng := &countingRCU{RCU: core.NewTimeRCU(8, nil)}
	r := New(eng, Config{Shards: 1, FlushDelay: 20 * time.Millisecond})
	const n = 1000
	var freed atomic.Int64
	for i := 0; i < n; i++ {
		r.Retire(nil, core.Singleton(core.Value(i%32)), 64, func(any) { freed.Add(1) })
	}
	r.Barrier()
	if got := freed.Load(); got != n {
		t.Fatalf("freed %d, want %d", got, n)
	}
	waits := eng.waits.Load()
	if waits == 0 {
		t.Fatal("no grace periods at all")
	}
	if waits*2 > n {
		t.Fatalf("batching too weak: %d grace periods for %d retirements (want <= %d)",
			waits, n, n/2)
	}
	if g := r.Graces(); g != waits {
		t.Fatalf("Graces() = %d, engine saw %d waits", g, waits)
	}
	r.Close()
	t.Logf("%d retirements -> %d grace periods", n, waits)
}

// TestReclaimerBacklogNeverExceedsWatermark is the overload acceptance:
// with grace periods wedged slow by chaos injection and PolicyBlock,
// the backlog — sampled continuously through the obs gauges — must
// never exceed MaxPending, and callers must observe backpressure.
func TestReclaimerBacklogNeverExceedsWatermark(t *testing.T) {
	const maxPending = 64
	met := obs.New()
	eng := chaos.Wrap(core.NewTimeRCU(16, nil), chaos.Config{
		Seed:        42,
		WaitHold:    1.0,
		WaitHoldDur: 10 * time.Millisecond,
	})
	r := New(eng, Config{
		Shards:     2,
		MaxPending: maxPending,
		Policy:     PolicyBlock,
		FlushDelay: -1,
		Metrics:    met,
	})

	stop := make(chan struct{})
	var overshoot atomic.Int64
	var sampled atomic.Int64
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := met.Snapshot()
			sampled.Add(1)
			if s.ReclaimPending > maxPending {
				overshoot.Store(s.ReclaimPending)
				return
			}
			if p := r.Pending(); p > maxPending {
				overshoot.Store(int64(p))
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const retirers, each = 8, 100
	var freed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < retirers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Retire(nil, core.Singleton(core.Value(g*each+i)), 128,
					func(any) { freed.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	r.Barrier()
	close(stop)
	<-sampler
	if ov := overshoot.Load(); ov != 0 {
		t.Fatalf("backlog reached %d, hard watermark is %d", ov, maxPending)
	}
	if got := freed.Load(); got != retirers*each {
		t.Fatalf("freed %d, want %d", got, retirers*each)
	}
	if sampled.Load() == 0 {
		t.Fatal("sampler never ran")
	}
	if bp := r.BackpressureWaits(); bp == 0 {
		t.Fatal("no caller ever observed backpressure although the engine was wedged slow")
	}
	s := met.Snapshot()
	if s.ReclaimBackpressure == 0 {
		t.Fatal("obs never recorded the backpressure overloads")
	}
	if s.ReclaimPending != 0 || s.ReclaimBytes != 0 {
		t.Fatalf("gauges not drained: pending %d bytes %d", s.ReclaimPending, s.ReclaimBytes)
	}
	if s.ReclaimFreed != retirers*each {
		t.Fatalf("obs freed = %d, want %d", s.ReclaimFreed, retirers*each)
	}
	holds := eng.Counts().WaitHolds
	if holds == 0 {
		t.Fatal("chaos injected no wait holds; the test exercised nothing")
	}
	r.Close()
	t.Logf("backpressure waits %d, expedited flushes %d, chaos holds %d",
		r.BackpressureWaits(), s.ReclaimExpedited, holds)
}

// TestReclaimerPolicyInline: at the hard watermark, PolicyInline callers
// degrade to a synchronous grace period instead of blocking on the
// backlog — the backlog stays bounded and every callback still frees.
func TestReclaimerPolicyInline(t *testing.T) {
	met := obs.New()
	eng := chaos.Wrap(core.NewTimeRCU(16, nil), chaos.Config{
		Seed:        7,
		WaitHold:    1.0,
		WaitHoldDur: 5 * time.Millisecond,
	})
	const maxPending = 8
	r := New(eng, Config{
		Shards:     1,
		MaxPending: maxPending,
		Policy:     PolicyInline,
		FlushDelay: -1,
		Metrics:    met,
	})
	const n = 64
	var freed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				r.Retire(nil, core.Singleton(core.Value(i)), 0, func(any) { freed.Add(1) })
				if p := r.Pending(); p > maxPending {
					t.Errorf("backlog %d over watermark %d", p, maxPending)
				}
			}
		}(g)
	}
	wg.Wait()
	r.Barrier()
	if got := freed.Load(); got != n {
		t.Fatalf("freed %d, want %d", got, n)
	}
	if r.InlineWaits() == 0 {
		t.Fatal("no retirement ever degraded to an inline wait")
	}
	if s := met.Snapshot(); s.ReclaimInline != r.InlineWaits() {
		t.Fatalf("obs inline = %d, reclaimer counted %d", s.ReclaimInline, r.InlineWaits())
	}
	r.Close()
}

// TestReclaimerOversizeRetirementInline: a single retirement declaring
// more than MaxBytes can never fit the backlog; it must resolve inline
// under any policy rather than deadlock against the watermark.
func TestReclaimerOversizeRetirementInline(t *testing.T) {
	r := New(core.NewTimeRCU(8, nil), Config{
		Shards:   1,
		MaxBytes: 1 << 10,
		Policy:   PolicyBlock,
	})
	defer r.Close()
	done := make(chan struct{})
	r.Retire(nil, core.All(), 1<<20, func(any) { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("oversize retirement deadlocked instead of resolving inline")
	}
	if r.InlineWaits() != 1 {
		t.Fatalf("InlineWaits = %d, want 1", r.InlineWaits())
	}
	if p := r.Pending(); p != 0 {
		t.Fatalf("Pending = %d after inline resolution, want 0", p)
	}
}

// TestReclaimerByteAccounting: PendingBytes tracks declared bytes while
// queued and returns to zero once resolved.
func TestReclaimerByteAccounting(t *testing.T) {
	met := obs.New()
	r := New(core.NewTimeRCU(8, nil), Config{
		Shards:     1,
		FlushDelay: time.Hour, // park the batch so the gauge is observable
		Metrics:    met,
	})
	defer r.Close()
	for i := 0; i < 10; i++ {
		r.Retire(nil, core.Singleton(core.Value(i)), 100, nil)
	}
	if got := r.PendingBytes(); got != 1000 {
		t.Fatalf("PendingBytes = %d, want 1000", got)
	}
	if s := met.Snapshot(); s.ReclaimBytes != 1000 {
		t.Fatalf("obs bytes gauge = %d, want 1000", s.ReclaimBytes)
	}
	r.Barrier()
	if got := r.PendingBytes(); got != 0 {
		t.Fatalf("PendingBytes = %d after Barrier, want 0", got)
	}
}

// TestReclaimerFlushCutsDelay: with an hour-long accumulation window,
// nothing resolves on its own; Flush must cut the window and start the
// batch immediately.
func TestReclaimerFlushCutsDelay(t *testing.T) {
	r := New(core.NewTimeRCU(8, nil), Config{Shards: 1, FlushDelay: time.Hour})
	defer r.Close()
	done := make(chan struct{})
	r.Retire(nil, core.Singleton(3), 0, func(any) { close(done) })
	select {
	case <-done:
		t.Fatal("callback resolved before Flush despite hour-long accumulation window")
	case <-time.After(50 * time.Millisecond):
	}
	r.Flush()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Flush did not cut the accumulation window")
	}
}

// TestReclaimerSoftWatermarkExpedites: crossing half the hard watermark
// must expedite the flush on its own — no Flush call, no waiting out an
// hour-long window.
func TestReclaimerSoftWatermarkExpedites(t *testing.T) {
	met := obs.New()
	r := New(core.NewTimeRCU(8, nil), Config{
		Shards:     1,
		MaxPending: 10,
		FlushDelay: time.Hour,
		Metrics:    met,
	})
	defer r.Close()
	var freed atomic.Int64
	for i := 0; i < 5; i++ { // 5th submission reaches soft watermark (2*5 >= 10)
		r.Retire(nil, core.Singleton(core.Value(i)), 0, func(any) { freed.Add(1) })
	}
	deadline := time.Now().Add(10 * time.Second)
	for freed.Load() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("soft watermark never expedited the flush (freed %d/5)", freed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if s := met.Snapshot(); s.ReclaimExpedited == 0 {
		t.Fatal("obs recorded no expedited flush")
	}
}

// TestReclaimerDeferDeliversShutdownError: error-aware Defer callbacks
// take delivery of the abandonment error at a bounded shutdown instead
// of being dropped — the citrus deferred-unlink contract.
func TestReclaimerDeferDeliversShutdownError(t *testing.T) {
	eng := core.NewEER(8, nil)
	r := New(eng, Config{Shards: 1, FlushDelay: -1})
	rd, err := eng.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(5) // wedge
	errs := make(chan error, 1)
	r.Defer(core.Singleton(5), 64, func(e error) { errs <- e })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := r.CloseCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx = %v, want DeadlineExceeded", err)
	}
	select {
	case e := <-errs:
		if e == nil {
			t.Fatal("Defer callback got nil although its grace period never completed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Defer callback never delivered")
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("Dropped = %d; error-aware callbacks are never dropped", d)
	}
	rd.Exit(5)
	rd.Unregister()
}

// TestReclaimerMultiShardConcurrent exercises the sharded path end to
// end: many goroutines, all shards, metrics ledger must balance.
func TestReclaimerMultiShardConcurrent(t *testing.T) {
	met := obs.New()
	r := New(core.NewTimeRCU(32, nil), Config{Shards: 4, Metrics: met})
	const goroutines, each = 16, 200
	var freed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Retire(nil, core.Interval(core.Value(i), core.Value(i+10)), 32,
					func(any) { freed.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	r.Barrier()
	const n = goroutines * each
	if got := freed.Load(); got != n {
		t.Fatalf("freed %d, want %d", got, n)
	}
	s := met.Snapshot()
	if s.ReclaimRetired != n || s.ReclaimFreed != n || s.ReclaimDropped != 0 {
		t.Fatalf("ledger: retired %d freed %d dropped %d, want %d/%d/0",
			s.ReclaimRetired, s.ReclaimFreed, s.ReclaimDropped, n, n)
	}
	if s.ReclaimPending != 0 || s.ReclaimBytes != 0 {
		t.Fatalf("gauges not drained: %d cbs / %d bytes", s.ReclaimPending, s.ReclaimBytes)
	}
	if s.ReclaimGraces == 0 || s.ReclaimGraces >= n {
		t.Fatalf("graces = %d for %d retirements; batching should land well below", s.ReclaimGraces, n)
	}
	r.Close()
}

// TestReclaimerRetireAfterClosePanics mirrors the Async contract.
func TestReclaimerRetireAfterClosePanics(t *testing.T) {
	r := New(core.NewDistRCU(4), Config{})
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Retire after Close must panic")
		}
	}()
	r.Retire(nil, core.All(), 0, nil)
}

// TestReclaimerBlockedRetireSurvivesClose: a caller parked at the hard
// watermark when Close lands must not enqueue into stopped workers; its
// retirement resolves inline and Close still drains cleanly.
func TestReclaimerBlockedRetireSurvivesClose(t *testing.T) {
	eng := chaos.Wrap(core.NewTimeRCU(8, nil), chaos.Config{
		Seed:        3,
		WaitHold:    1.0,
		WaitHoldDur: 20 * time.Millisecond,
	})
	r := New(eng, Config{Shards: 1, MaxPending: 2, Policy: PolicyBlock, FlushDelay: -1})
	var freed, submitted atomic.Int64
	// retire returns false once the reclaimer is closed (Retire then
	// panics by contract; a racing caller treats that as its stop signal).
	retire := func(v core.Value) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r.Retire(nil, core.Singleton(v), 0, func(any) { freed.Add(1) })
		return true
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if !retire(core.Value(i)) {
					return
				}
				submitted.Add(1)
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond) // let some callers reach the watermark
	r.Close()
	wg.Wait()
	// Every accepted retirement resolves exactly once: pre-close ones by a
	// clean drain, parked-at-watermark ones by the inline fallback. The
	// only permitted shortfall is a caller whose Retire never started.
	if got, want := freed.Load(), submitted.Load(); got < want {
		t.Fatalf("freed %d of %d accepted retirements", got, want)
	}
	if p := r.Pending(); p != 0 {
		t.Fatalf("Pending = %d after Close, want 0", p)
	}
}
