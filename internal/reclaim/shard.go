package reclaim

import (
	"strconv"
	"sync"
	"time"

	"prcu/internal/obs"
)

// shard is one callback queue plus its flush worker. Submission is
// spread across shards by processor affinity; everything below the
// queue — batching, coalescing, the grace-period waits — runs on the
// shard's own goroutine, so retiring callers never execute a wait.
//
// Lock discipline: mu guards queue/inFlight/expedite only; it is never
// held while capMu is held and never held across a grace-period wait.
type shard struct {
	r *Reclaimer
	// idx is the shard's position in Reclaimer.shards; it names the
	// shard's flight-recorder track ("reclaim/<idx>").
	idx int

	mu       sync.Mutex
	idle     *sync.Cond // on mu; signalled when queue+inFlight may be empty
	queue    []callback
	inFlight int  // callbacks handed to the worker, not yet resolved
	expedite bool // skip the accumulation delay for the current queue

	// Age tracking for the oldest-callback gauge, under mu. queueOldestNs
	// is the minimum submission stamp over queue (0 when empty; exact:
	// enqueues min-update it and the worker always takes the whole
	// queue); inFlightOldestNs covers the batch the worker holds.
	queueOldestNs    int64
	inFlightOldestNs int64

	kick chan struct{} // cap 1: submission/flush/close doorbell
	done chan struct{} // closed when the worker exits
}

func newShard(r *Reclaimer, idx int) *shard {
	s := &shard{
		r:    r,
		idx:  idx,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	go s.worker()
	return s
}

// enqueue appends cb and rings the worker. soft marks the submission as
// having crossed the soft watermark, which expedites the flush. The
// submitting counter (taken at admission) is released only after the
// append, keeping the close protocol's "queues are final" step honest.
func (s *shard) enqueue(cb callback, soft bool) {
	s.mu.Lock()
	s.queue = append(s.queue, cb)
	if s.queueOldestNs == 0 || cb.atNs < s.queueOldestNs {
		s.queueOldestNs = cb.atNs
	}
	if soft {
		s.expedite = true
	}
	s.mu.Unlock()
	s.r.submitting.Add(-1)
	s.kickWorker()
}

// kickWorker rings the doorbell without blocking; a token already in
// the channel means the worker is already due to look.
func (s *shard) kickWorker() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// expediteFlush makes the worker cut its accumulation window short and
// flush whatever is queued now.
func (s *shard) expediteFlush() {
	s.mu.Lock()
	if len(s.queue) > 0 {
		s.expedite = true
	}
	s.mu.Unlock()
	s.kickWorker()
}

// drainWait blocks until every callback currently queued or in flight
// on this shard has been resolved, expediting the flush first.
func (s *shard) drainWait() {
	s.expediteFlush()
	s.mu.Lock()
	for len(s.queue) > 0 || s.inFlight > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// worker is the shard's flush loop: park until kicked, optionally let a
// burst accumulate, then take the whole queue as one batch and resolve
// it through the coalescer. Exactly one worker runs per shard, so
// inFlight is written only here.
func (s *shard) worker() {
	defer close(s.done)
	r := s.r
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !r.isClosed() {
			s.mu.Unlock()
			<-s.kick
			s.mu.Lock()
		}
		if len(s.queue) == 0 {
			// Closed and drained: the close protocol guarantees no
			// further enqueues, so the backlog here is final.
			s.mu.Unlock()
			return
		}
		delay := r.Pacing()
		wait := delay > 0 && !s.expedite && !r.isClosed()
		s.mu.Unlock()
		if wait {
			s.accumulate(delay)
		}
		s.mu.Lock()
		batch := s.queue
		s.queue = nil
		s.inFlight = len(batch)
		s.inFlightOldestNs = s.queueOldestNs
		s.queueOldestNs = 0
		expedited := s.expedite
		s.expedite = false
		s.mu.Unlock()

		s.process(batch, expedited)

		s.mu.Lock()
		s.inFlight = 0
		s.inFlightOldestNs = 0
		s.mu.Unlock()
		s.idle.Broadcast()
	}
}

// oldestNs returns the submission stamp of the shard's oldest
// unresolved callback, queued or in flight (0 = none).
func (s *shard) oldestNs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldest := int64(0)
	if s.inFlight > 0 {
		oldest = s.inFlightOldestNs
	}
	if len(s.queue) > 0 && s.queueOldestNs > 0 &&
		(oldest == 0 || s.queueOldestNs < oldest) {
		oldest = s.queueOldestNs
	}
	return oldest
}

// accumulate sleeps out the batching window so a retirement burst can
// coalesce, returning early if the window is cut by an expedited flush
// (soft watermark, Flush, Barrier) or by shutdown.
func (s *shard) accumulate(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			return
		case <-s.kick:
			s.mu.Lock()
			cut := s.expedite
			s.mu.Unlock()
			if cut || s.r.isClosed() {
				return
			}
		}
	}
}

// process resolves one batch: coalesce into wait groups, run one grace
// period per group, then complete and release every member.
//
// With the flight recorder armed, each wait group becomes one causal
// span chain under a fresh GP ID: per-member retire spans (queue
// residency, converted from the reclaimer's clock onto the metrics
// clock), a coalesce span (linked to a pending autotuner expedite, if
// any), the engine's own wait span (the GP ID travels down via the wait
// Context), and a callback-execution span.
func (s *shard) process(batch []callback, expedited bool) {
	r := s.r
	reg := r.met.ReclaimFlushBegin()
	start := time.Now()
	flight := r.met.FlightEnabled()
	var track string
	var takenNs, clockOff, coalescedNs int64
	var link uint64
	if flight {
		track = "reclaim/" + strconv.Itoa(s.idx)
		takenNs = r.met.FlightNow()
		// Submission stamps are on the reclaimer's clock; spans are on the
		// metrics clock. Converting durations (not instants) keeps the two
		// bases from mixing.
		clockOff = takenNs - r.clock.Now()
		if expedited {
			link = r.met.FlightExpediteLink()
		}
	}
	groups := coalesce(batch)
	if flight {
		coalescedNs = r.met.FlightNow()
	}
	for gi := range groups {
		g := &groups[gi]
		wctx := g.ctx
		var gp uint64
		if flight {
			gp = obs.NextGP()
			for _, ci := range g.cbs {
				r.met.FlightRecord(obs.FlightSpan{
					GP: gp, Kind: obs.SpanRetire, Track: track,
					StartNs: batch[ci].atNs + clockOff, EndNs: takenNs, Count: 1,
				})
			}
			r.met.FlightRecord(obs.FlightSpan{
				GP: gp, Link: link, Kind: obs.SpanCoalesce, Track: track,
				StartNs: takenNs, EndNs: coalescedNs,
				Count: len(g.cbs), Label: g.pred.String(),
			})
			link = 0 // only the first group carries the expedite link
			base := g.ctx
			if base == nil {
				base = r.workCtx
			}
			wctx = obs.WithGP(base, gp)
		}
		err := r.waitPred(wctx, g.pred)
		var cbStart int64
		if flight {
			cbStart = r.met.FlightNow()
		}
		for _, ci := range g.cbs {
			cb := &batch[ci]
			freed := cb.run(err)
			if !freed {
				r.dropped.Add(1)
			}
			r.release(cb, freed)
		}
		if flight {
			r.met.FlightRecord(obs.FlightSpan{
				GP: gp, Kind: obs.SpanCallback, Track: track,
				StartNs: cbStart, EndNs: r.met.FlightNow(), Count: len(g.cbs),
			})
		}
	}
	r.graces.Add(uint64(len(groups)))
	r.met.ReclaimFlush(len(batch), uint64(len(groups)),
		time.Since(start).Nanoseconds(), expedited)
	if reg != nil {
		reg.End()
	}
}
