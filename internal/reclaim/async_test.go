package reclaim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
)

func TestAsyncRunsCallbacks(t *testing.T) {
	a := NewAsync(core.NewTimeRCU(8, nil))
	defer a.Close()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		a.Call(core.All(), func() { ran.Add(1) })
	}
	a.Barrier()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d callbacks after Barrier, want 100", got)
	}
	if a.Pending() != 0 {
		t.Fatalf("Pending = %d after Barrier, want 0", a.Pending())
	}
}

func TestAsyncCallbackWaitsForGracePeriod(t *testing.T) {
	r := core.NewEER(8, nil)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	var ran atomic.Bool
	a.Call(core.Singleton(7), func() { ran.Store(true) })
	// The callback must not run while the covered critical section is open.
	time.Sleep(30 * time.Millisecond)
	if ran.Load() {
		rd.Exit(7)
		t.Fatal("callback ran before the covered reader exited")
	}
	rd.Exit(7)
	a.Barrier()
	if !ran.Load() {
		t.Fatal("callback did not run after the grace period")
	}
	rd.Unregister()
}

func TestAsyncUncoveredReaderDoesNotBlockCallback(t *testing.T) {
	r := core.NewD(8, 1024)
	a := NewAsync(r)
	defer a.Close()
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1000)
	defer func() {
		rd.Exit(1000)
		rd.Unregister()
	}()
	done := make(chan struct{})
	a.Call(core.Singleton(5), func() { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callback blocked behind an uncovered critical section")
	}
}

func TestAsyncCloseDrains(t *testing.T) {
	a := NewAsync(core.NewDistRCU(4))
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		a.Call(core.All(), func() { ran.Add(1) })
	}
	a.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("Close ran %d callbacks, want 50", got)
	}
	// Idempotent.
	a.Close()
}

func TestAsyncCallAfterClosePanics(t *testing.T) {
	a := NewAsync(core.NewDistRCU(4))
	a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Call after Close must panic")
		}
	}()
	a.Call(core.All(), func() {})
}

func TestAsyncConcurrentCallers(t *testing.T) {
	a := NewAsync(core.NewTimeRCU(16, nil))
	defer a.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Call(core.All(), func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	a.Barrier()
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d callbacks, want 400", got)
	}
}

func TestAsyncCallCtxDeliversCompletion(t *testing.T) {
	a := NewAsync(core.NewTimeRCU(8, nil))
	defer a.Close()
	errs := make(chan error, 1)
	a.CallCtx(context.Background(), core.All(), func(err error) { errs <- err })
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("CallCtx callback got %v, want nil after a clean grace period", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CallCtx callback never ran")
	}
}

func TestAsyncCallCtxDeliversDeadline(t *testing.T) {
	r := core.NewEER(8, nil)
	a := NewAsync(r)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7) // wedge every covering grace period
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	errs := make(chan error, 1)
	a.CallCtx(ctx, core.Singleton(7), func(err error) { errs <- err })
	select {
	case err := <-errs:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("CallCtx callback got %v, want DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CallCtx callback never ran on a wedged engine")
	}
	if got := a.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d; CallCtx callbacks take delivery, they are never dropped", got)
	}
	rd.Exit(7)
	rd.Unregister()
	a.Close()
}

// TestAsyncCloseCtxBoundedOnWedgedEngine is the shutdown-hardening
// acceptance: a reader parked in a covered critical section would make a
// plain Close hang forever; CloseCtx must give up at its deadline,
// cancel the in-flight wait, drop the plain callback (it must not run
// after an incomplete grace period), and stop the worker.
func TestAsyncCloseCtxBoundedOnWedgedEngine(t *testing.T) {
	r := core.NewEER(8, nil)
	a := NewAsync(r)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	var ran atomic.Bool
	a.Call(core.Singleton(7), func() { ran.Store(true) })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := a.CloseCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx on a wedged engine returned %v, want DeadlineExceeded", err)
	}
	if ran.Load() {
		t.Fatal("plain callback ran although its grace period never completed")
	}
	if got := a.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	// Idempotent after a bounded shutdown too: the worker is gone, the
	// call returns immediately.
	if err := a.CloseCtx(context.Background()); err != nil {
		t.Fatalf("second CloseCtx returned %v, want nil", err)
	}
	a.Close()
	rd.Exit(7)
	rd.Unregister()
}

func TestAsyncConcurrentClose(t *testing.T) {
	a := NewAsync(core.NewDistRCU(4))
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		a.Call(core.All(), func() { ran.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); a.Close() }()
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Fatalf("concurrent Close ran %d callbacks, want 20", got)
	}
}

// TestAsyncBarrierRacingCalls races Barrier against a stream of
// concurrent Calls: every Barrier must return (no lost idle wakeups) and
// every callback submitted before its Barrier must be resolved by it.
// This is the regression test for the Pending/inFlight ("inFlite")
// bookkeeping the reclaimer rewrite replaced.
func TestAsyncBarrierRacingCalls(t *testing.T) {
	a := NewAsync(core.NewTimeRCU(16, nil))
	defer a.Close()
	var ran atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Call(core.All(), func() { ran.Add(1) })
			}
		}()
	}
	for i := 0; i < 20; i++ {
		before := ran.Load() // submitted-and-run so far; a lower bound
		a.Barrier()
		if got := ran.Load(); got < before {
			t.Fatalf("ran went backwards: %d -> %d", before, got)
		}
	}
	close(stop)
	wg.Wait()
	a.Barrier()
	if p := a.Pending(); p != 0 {
		t.Fatalf("Pending = %d after final Barrier with callers stopped, want 0", p)
	}
}

// TestAsyncCloseCtxExpiredContext: a CloseCtx whose context is already
// expired must still cancel the outstanding waits, account every plain
// callback as dropped exactly once, and leave Pending at zero.
func TestAsyncCloseCtxExpiredContext(t *testing.T) {
	r := core.NewEER(8, nil)
	a := NewAsync(r)
	rd, err := r.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(3) // wedge predicates covering 3
	const n = 10
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		a.Call(core.Singleton(3), func() { ran.Add(1) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before CloseCtx even starts
	if err := a.CloseCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CloseCtx with expired context returned %v, want Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d callbacks ran although no grace period completed", got)
	}
	if got := a.Dropped(); got != n {
		t.Fatalf("Dropped = %d, want %d (each plain callback dropped exactly once)", got, n)
	}
	if p := a.Pending(); p != 0 {
		t.Fatalf("Pending = %d after CloseCtx, want 0", p)
	}
	rd.Exit(3)
	rd.Unregister()
}
