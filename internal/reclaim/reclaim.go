// Package reclaim is the bounded deferred-reclamation subsystem: a
// sharded call_rcu backlog with batching, watermark backpressure and an
// expedited overload path.
//
// The paper's asynchronous wait-for-readers (§2.1) trades caller
// blocking for deferred work, and notes nothing bounds that deferral: a
// retirement storm grows the callback backlog without limit until the
// process dies. Kernel RCU answers this shape with per-CPU callback
// lists, the qhimark/blimit watermarks and expedited grace periods when
// backlogged; this package gives PRCU the same production posture while
// keeping the paper's per-predicate targeted waits:
//
//   - Retirements enqueue onto one of several shards. Shard affinity is
//     processor-local (a sync.Pool-cached ticket, so goroutines sharing
//     a P share a shard — the userspace analogue of per-CPU lists) and
//     each shard has its own flush worker, so submission never contends
//     on a global queue.
//   - Each shard flushes its queue as a batch. The coalescer merges the
//     batch's predicates — equal and adjacent singletons/intervals fuse
//     into covering intervals, general predicates fuse into one
//     disjunction — so one grace period retires many callbacks while
//     every wait still covers exactly (a superset of) the readers each
//     callback must outlive. Over-covering is always safe (§3.1); the
//     batch never waits for less than any member's predicate demands.
//   - The reclaimer tracks callback count and caller-declared bytes
//     globally. Crossing the soft watermark (half the hard limit)
//     expedites flushing; crossing the hard limit applies backpressure:
//     under PolicyBlock the caller blocks until the backlog drains,
//     under PolicyInline it synchronously waits its own grace period and
//     frees inline — graceful degradation instead of OOM.
//   - Shutdown follows the Async contract: Close drains everything;
//     CloseCtx bounds the drain and drops (counting) callbacks whose
//     grace period could not complete.
package reclaim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
)

// Policy selects how Retire behaves once the backlog crosses the hard
// watermark (MaxPending callbacks or MaxBytes declared bytes).
type Policy uint8

const (
	// PolicyBlock (the default) blocks the retiring caller until the
	// backlog drains below the watermark. Flushing is expedited first, so
	// the block lasts roughly one grace period.
	PolicyBlock Policy = iota
	// PolicyInline makes the overloaded caller synchronously wait its own
	// grace period and run its free callback inline — the §2.1 synchronous
	// variant as a degraded mode. The backlog never grows past the
	// watermark and no caller blocks on another's grace period.
	PolicyInline
)

// DefaultFlushDelay is the batch-accumulation window a shard waits after
// the first retirement before flushing, letting a burst coalesce into
// one grace period. Expedited flushes (soft watermark, Flush, Barrier,
// shutdown) skip it.
const DefaultFlushDelay = 200 * time.Microsecond

// Config parameterizes a Reclaimer. The zero value is an unbounded,
// delay-batched reclaimer with processor-count shards.
type Config struct {
	// Shards is the number of callback queues/flush workers. 0 picks
	// min(GOMAXPROCS, 8). 1 gives strict submission-order processing.
	Shards int
	// MaxPending is the hard watermark on unresolved callbacks across all
	// shards; 0 means unbounded. Half of it is the soft watermark that
	// expedites flushing.
	MaxPending int
	// MaxBytes is the hard watermark on the sum of caller-declared bytes
	// across unresolved callbacks; 0 means unbounded. Half of it is the
	// soft watermark. A single retirement declaring more than MaxBytes is
	// resolved inline under any policy (it could never fit).
	MaxBytes int64
	// Policy selects the hard-watermark behavior; see PolicyBlock.
	Policy Policy
	// FlushDelay overrides the batch-accumulation window: 0 means
	// DefaultFlushDelay, negative means flush immediately (no batching
	// beyond what accumulates during in-flight grace periods).
	FlushDelay time.Duration
	// Metrics, when non-nil, receives backlog gauges, batch-size and
	// flush-latency histograms, and overload counters/trace events. It
	// may be the same Metrics attached to the engine.
	Metrics *obs.Metrics
}

// callback is one deferred retirement. Exactly one completion style is
// set: free(v) runs only after a completed grace period; fn likewise
// (closure form); fnErr always runs and receives the wait's error, nil
// meaning the grace period completed. ctx, when non-nil, bounds this
// callback's wait individually — such callbacks are never coalesced, so
// their error semantics stay exact.
type callback struct {
	pred  core.Predicate
	ctx   context.Context
	v     any
	free  func(any)
	fn    func()
	fnErr func(error)
	bytes int64
}

// run resolves the callback with its wait's outcome and reports whether
// it counts as freed (false = dropped).
func (cb *callback) run(err error) bool {
	switch {
	case cb.fnErr != nil:
		cb.fnErr(err)
		return true
	case err == nil:
		if cb.fn != nil {
			cb.fn()
		} else if cb.free != nil {
			cb.free(cb.v)
		}
		return true
	default:
		// The grace period did not complete; freeing now could release
		// memory a reader still holds. Drop, and count the drop.
		return false
	}
}

// Reclaimer is the sharded, bounded deferred-reclamation engine.
// Construct with New; Close (or CloseCtx) must be called to release the
// flush workers.
type Reclaimer struct {
	rcu        core.RCU
	met        *obs.Metrics
	policy     Policy
	maxPending int
	maxBytes   int64
	flushDelay time.Duration

	// workCtx is cancelled at bounded shutdown to abort in-flight waits;
	// workers survive cancelled waits and keep draining (fast-failing).
	workCtx    context.Context
	cancelWork context.CancelFunc

	// Global capacity accounting. pending/pendingBytes are the
	// authoritative backlog; the obs gauges mirror them inside the same
	// critical sections so a concurrent Snapshot can never observe a
	// value above the hard watermark.
	capMu        sync.Mutex
	space        *sync.Cond // signalled when capacity frees or on close
	pending      int
	pendingBytes int64
	closed       bool

	closedFlag atomic.Bool // workers' lock-free view of closed

	shards []*shard
	aff    sync.Pool     // *affinity tickets for P-local shard choice
	rr     atomic.Uint32 // round-robin seed for fresh tickets

	// submitting counts callers in the non-blocking window between a
	// successful capacity reservation and the shard enqueue. CloseCtx
	// spins it to zero before kicking the workers, so no callback can be
	// appended to a queue after its worker concluded the drain is final.
	submitting atomic.Int64

	dropped atomic.Uint64
	graces  atomic.Uint64
	inline  atomic.Uint64
	bp      atomic.Uint64

	// closedPanic is the message for submissions after Close; the Async
	// facade overrides it to keep its historical wording.
	closedPanic string
}

// affinity is a shard ticket cached per-P by the sync.Pool, giving
// goroutines that share a processor a shared shard without any runtime
// introspection.
type affinity struct{ idx uint32 }

// New returns a running Reclaimer flushing through r's grace periods.
func New(r core.RCU, cfg Config) *Reclaimer {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	delay := cfg.FlushDelay
	if delay == 0 {
		delay = DefaultFlushDelay
	}
	if delay < 0 {
		delay = 0
	}
	met := cfg.Metrics
	if met == nil {
		// Unlike engine-side observability (off by default: it rides the
		// read hot path), reclaim accounting lives on already-locked
		// queue transitions, so Stats always works out of the box.
		met = obs.New()
	}
	rc := &Reclaimer{
		rcu:         r,
		met:         met,
		policy:      cfg.Policy,
		maxPending:  cfg.MaxPending,
		maxBytes:    cfg.MaxBytes,
		flushDelay:  delay,
		closedPanic: "prcu: Retire on closed Reclaimer",
	}
	rc.workCtx, rc.cancelWork = context.WithCancel(context.Background())
	rc.space = sync.NewCond(&rc.capMu)
	rc.aff.New = func() any { return &affinity{idx: rc.rr.Add(1)} }
	rc.shards = make([]*shard, n)
	for i := range rc.shards {
		rc.shards[i] = newShard(rc)
	}
	return rc
}

// shard returns the submitting goroutine's shard.
func (r *Reclaimer) shard() *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	t := r.aff.Get().(*affinity)
	s := r.shards[int(t.idx)%len(r.shards)]
	r.aff.Put(t)
	return s
}

// Retire schedules free(v) to run after a grace period covering p,
// declaring bytes of backlog accounting for v. It never blocks for the
// grace period itself; it may block (PolicyBlock) or degrade to an
// inline grace period (PolicyInline) when the backlog is at the hard
// watermark. free may be nil when only the wait matters (Go's GC frees
// v; the reclaimer still bounds and accounts the deferral). Retire
// panics after Close.
func (r *Reclaimer) Retire(v any, p core.Predicate, bytes int, free func(any)) {
	r.submit(callback{pred: p, v: v, free: free, bytes: int64(bytes)})
}

// Defer schedules fn to run once a grace period covering p completes or
// the reclaimer shuts down without completing it: fn receives nil after
// a full grace period, or the abandonment error — in which case nothing
// covered by p may be reclaimed. Error-aware callbacks are never
// dropped. Defer panics after Close.
func (r *Reclaimer) Defer(p core.Predicate, bytes int, fn func(error)) {
	r.submit(callback{pred: p, fnErr: fn, bytes: int64(bytes)})
}

// submit routes cb through capacity admission to its shard. Callbacks
// refused by admission (inline degradation or closed-while-blocked) are
// resolved synchronously by admit and never enqueued.
func (r *Reclaimer) submit(cb callback) {
	soft, ok := r.admit(&cb)
	if !ok {
		return
	}
	r.shard().enqueue(cb, soft)
}

// over reports whether accepting bytes more would cross a hard
// watermark. Caller holds capMu.
func (r *Reclaimer) over(bytes int64) bool {
	return (r.maxPending > 0 && r.pending+1 > r.maxPending) ||
		(r.maxBytes > 0 && r.pendingBytes+bytes > r.maxBytes)
}

// soft reports whether the backlog has reached a soft watermark (half
// the hard limit). Caller holds capMu.
func (r *Reclaimer) soft() bool {
	return (r.maxPending > 0 && 2*r.pending >= r.maxPending) ||
		(r.maxBytes > 0 && 2*r.pendingBytes >= r.maxBytes)
}

// admit reserves backlog capacity for cb, applying the configured
// overload behavior. It returns ok = false when cb was already resolved
// (inline wait, or the reclaimer closed while the caller was blocked);
// soft = true tells the enqueuer to expedite its shard's flush.
func (r *Reclaimer) admit(cb *callback) (soft, ok bool) {
	oversize := r.maxBytes > 0 && cb.bytes > r.maxBytes
	overloaded := false
	for {
		r.capMu.Lock()
		if r.closed {
			r.capMu.Unlock()
			if overloaded {
				// The caller submitted before Close and was parked at the
				// watermark; the shard workers may already be gone, so
				// resolve here rather than enqueue into the void.
				r.inlineResolve(cb)
				return false, false
			}
			panic(r.closedPanic)
		}
		if !oversize && !r.over(cb.bytes) {
			r.pending++
			r.pendingBytes += cb.bytes
			soft = r.soft()
			r.submitting.Add(1)
			r.met.ReclaimEnqueue(cb.bytes)
			r.capMu.Unlock()
			return soft, true
		}
		backlog := uint64(r.pending)
		if r.policy == PolicyInline || oversize {
			r.capMu.Unlock()
			r.met.ReclaimOverload(obs.OverloadInline, backlog)
			r.inlineResolve(cb)
			return false, false
		}
		if !overloaded {
			overloaded = true
			r.bp.Add(1)
			r.met.ReclaimOverload(obs.OverloadBackpressure, backlog)
		}
		r.capMu.Unlock()
		// Expedite every shard before parking: the fastest way out of
		// backpressure is finishing the batches that hold the capacity.
		// (Done outside capMu — shard locks are never taken under it.)
		r.expediteAll()
		r.capMu.Lock()
		if r.over(cb.bytes) && !r.closed {
			r.space.Wait()
		}
		r.capMu.Unlock()
	}
}

// inlineResolve is the degraded path: wait cb's own grace period
// synchronously on the caller's goroutine and resolve it, without ever
// touching the backlog.
func (r *Reclaimer) inlineResolve(cb *callback) {
	r.inline.Add(1)
	err := r.waitFor(cb)
	if !cb.run(err) {
		r.dropped.Add(1)
	}
}

// release returns cb's capacity to the pool after resolution.
func (r *Reclaimer) release(cb *callback, freed bool) {
	r.capMu.Lock()
	r.pending--
	r.pendingBytes -= cb.bytes
	r.met.ReclaimResolve(cb.bytes, freed)
	r.capMu.Unlock()
	if r.maxPending > 0 || r.maxBytes > 0 {
		r.space.Broadcast()
	}
}

// waitFor runs cb's grace-period wait, bounded by the callback's own
// context (if any) and by the shutdown context.
func (r *Reclaimer) waitFor(cb *callback) error { return r.waitPred(cb.ctx, cb.pred) }

// waitPred waits a grace period covering p, bounded by the shutdown
// context and, when cctx is non-nil, by the callback's own context.
func (r *Reclaimer) waitPred(cctx context.Context, p core.Predicate) error {
	if cctx == nil {
		return r.rcu.WaitForReadersCtx(r.workCtx, p)
	}
	mctx, cancel := context.WithCancel(cctx)
	defer cancel()
	stop := context.AfterFunc(r.workCtx, cancel)
	defer stop()
	return r.rcu.WaitForReadersCtx(mctx, p)
}

// Flush expedites every shard: queued callbacks are batched and their
// grace periods started immediately, skipping any remaining
// accumulation delay. Flush does not wait for them to resolve; use
// Barrier for that.
func (r *Reclaimer) Flush() { r.expediteAll() }

func (r *Reclaimer) expediteAll() {
	for _, s := range r.shards {
		s.expediteFlush()
	}
}

// Barrier blocks until every callback submitted before it has been
// resolved — freed, delivered its error, or (under a bounded shutdown)
// dropped. Flushing is expedited, so with a healthy engine Barrier
// returns after roughly one coalesced grace period per shard.
func (r *Reclaimer) Barrier() {
	for _, s := range r.shards {
		s.drainWait()
	}
}

// Pending returns the backlog: callbacks accepted and not yet resolved.
func (r *Reclaimer) Pending() int {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.pending
}

// PendingBytes returns the caller-declared bytes held by the backlog.
func (r *Reclaimer) PendingBytes() int64 {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.pendingBytes
}

// Dropped returns the number of callbacks abandoned because their grace
// period did not complete before a bounded shutdown gave up (error-aware
// Defer callbacks take delivery of the error instead and are never
// dropped).
func (r *Reclaimer) Dropped() uint64 { return r.dropped.Load() }

// Graces returns the number of grace periods issued on behalf of the
// backlog — the denominator of the batching win (Pending+resolved
// callbacks per grace period).
func (r *Reclaimer) Graces() uint64 { return r.graces.Load() }

// InlineWaits returns the number of retirements resolved by a
// synchronous caller-side grace period under overload.
func (r *Reclaimer) InlineWaits() uint64 { return r.inline.Load() }

// BackpressureWaits returns the number of retirements that blocked at
// the hard watermark before being accepted.
func (r *Reclaimer) BackpressureWaits() uint64 { return r.bp.Load() }

// Stats returns the attached Metrics' snapshot (zero Snapshot when no
// Metrics was configured).
func (r *Reclaimer) Stats() obs.Snapshot { return r.met.Snapshot() }

// Close drains all outstanding callbacks (running each after its grace
// period) and stops the flush workers. Close is idempotent; concurrent
// and repeated calls all block until the drain finishes.
func (r *Reclaimer) Close() { _ = r.CloseCtx(context.Background()) }

// CloseCtx is Close bounded by ctx: if the drain has not finished when
// ctx expires — a wedged reader can stall grace periods indefinitely —
// every remaining wait is cancelled, error-aware callbacks run with the
// cancellation error, plain callbacks are dropped (see Dropped), the
// workers stop, and CloseCtx returns ctx.Err(). A nil error means a
// complete, clean drain.
func (r *Reclaimer) CloseCtx(ctx context.Context) error {
	r.capMu.Lock()
	already := r.closed
	r.closed = true
	r.closedFlag.Store(true)
	r.capMu.Unlock()
	if !already {
		r.space.Broadcast()
		// Let in-flight submits land in their queues before the workers
		// are told the backlog is final; the window between reservation
		// and enqueue holds no locks and performs no blocking calls, so
		// this spin is bounded by a few instructions per submitter.
		for r.submitting.Load() != 0 {
			runtime.Gosched()
		}
		for _, s := range r.shards {
			s.kickWorker()
		}
	}
	var cdone <-chan struct{}
	if ctx != nil {
		cdone = ctx.Done()
	}
	err := error(nil)
	for _, s := range r.shards {
		select {
		case <-s.done:
		case <-cdone:
			r.cancelWork()
			err = ctx.Err()
			cdone = nil // already cancelled; just collect the rest
		}
		if err != nil {
			<-s.done
		}
	}
	return err
}

func (r *Reclaimer) isClosed() bool { return r.closedFlag.Load() }
