// Package reclaim is the bounded deferred-reclamation subsystem: a
// sharded call_rcu backlog with batching, watermark backpressure and an
// expedited overload path.
//
// The paper's asynchronous wait-for-readers (§2.1) trades caller
// blocking for deferred work, and notes nothing bounds that deferral: a
// retirement storm grows the callback backlog without limit until the
// process dies. Kernel RCU answers this shape with per-CPU callback
// lists, the qhimark/blimit watermarks and expedited grace periods when
// backlogged; this package gives PRCU the same production posture while
// keeping the paper's per-predicate targeted waits:
//
//   - Retirements enqueue onto one of several shards. Shard affinity is
//     processor-local (a sync.Pool-cached ticket, so goroutines sharing
//     a P share a shard — the userspace analogue of per-CPU lists) and
//     each shard has its own flush worker, so submission never contends
//     on a global queue.
//   - Each shard flushes its queue as a batch. The coalescer merges the
//     batch's predicates — equal and adjacent singletons/intervals fuse
//     into covering intervals, general predicates fuse into one
//     disjunction — so one grace period retires many callbacks while
//     every wait still covers exactly (a superset of) the readers each
//     callback must outlive. Over-covering is always safe (§3.1); the
//     batch never waits for less than any member's predicate demands.
//   - The reclaimer tracks callback count and caller-declared bytes
//     globally. Crossing the soft watermark (half the hard limit)
//     expedites flushing; crossing the hard limit applies backpressure:
//     under PolicyBlock the caller blocks until the backlog drains,
//     under PolicyInline it synchronously waits its own grace period and
//     frees inline — graceful degradation instead of OOM.
//   - Shutdown follows the Async contract: Close drains everything;
//     CloseCtx bounds the drain and drops (counting) callbacks whose
//     grace period could not complete.
package reclaim

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/tsc"
)

// Policy selects how Retire behaves once the backlog crosses the hard
// watermark (MaxPending callbacks or MaxBytes declared bytes).
type Policy uint8

const (
	// PolicyBlock (the default) blocks the retiring caller until the
	// backlog drains below the watermark. Flushing is expedited first, so
	// the block lasts roughly one grace period.
	PolicyBlock Policy = iota
	// PolicyInline makes the overloaded caller synchronously wait its own
	// grace period and run its free callback inline — the §2.1 synchronous
	// variant as a degraded mode. The backlog never grows past the
	// watermark and no caller blocks on another's grace period.
	PolicyInline
)

// DefaultFlushDelay is the batch-accumulation window a shard waits after
// the first retirement before flushing, letting a burst coalesce into
// one grace period. Expedited flushes (soft watermark, Flush, Barrier,
// shutdown) skip it.
const DefaultFlushDelay = 200 * time.Microsecond

// Config parameterizes a Reclaimer. The zero value is an unbounded,
// delay-batched reclaimer with processor-count shards.
type Config struct {
	// Shards is the number of callback queues/flush workers. 0 picks
	// min(GOMAXPROCS, 8). 1 gives strict submission-order processing.
	Shards int
	// MaxPending is the hard watermark on unresolved callbacks across all
	// shards; 0 means unbounded. Half of it is the soft watermark that
	// expedites flushing.
	MaxPending int
	// MaxBytes is the hard watermark on the sum of caller-declared bytes
	// across unresolved callbacks; 0 means unbounded. Half of it is the
	// soft watermark. A single retirement declaring more than MaxBytes is
	// resolved inline under any policy (it could never fit).
	MaxBytes int64
	// SoftPending overrides the derived soft watermark on callback count
	// (0 = half of MaxPending). It must not exceed MaxPending when both
	// are set — New panics on inverted watermarks.
	SoftPending int
	// SoftBytes overrides the derived soft watermark on declared bytes
	// (0 = half of MaxBytes). It must not exceed MaxBytes when both are
	// set.
	SoftBytes int64
	// Policy selects the hard-watermark behavior; see PolicyBlock.
	Policy Policy
	// FlushDelay overrides the batch-accumulation window: 0 means
	// DefaultFlushDelay, negative means flush immediately (no batching
	// beyond what accumulates during in-flight grace periods).
	FlushDelay time.Duration
	// Metrics, when non-nil, receives backlog gauges, batch-size and
	// flush-latency histograms, and overload counters/trace events. It
	// may be the same Metrics attached to the engine.
	Metrics *obs.Metrics
}

// callback is one deferred retirement. Exactly one completion style is
// set: free(v) runs only after a completed grace period; fn likewise
// (closure form); fnErr always runs and receives the wait's error, nil
// meaning the grace period completed. ctx, when non-nil, bounds this
// callback's wait individually — such callbacks are never coalesced, so
// their error semantics stay exact.
type callback struct {
	pred  core.Predicate
	ctx   context.Context
	v     any
	free  func(any)
	fn    func()
	fnErr func(error)
	bytes int64
	// atNs is the submission timestamp on the reclaimer's monotonic
	// clock — the basis of the data-age gauge (OldestAge).
	atNs int64
}

// run resolves the callback with its wait's outcome and reports whether
// it counts as freed (false = dropped).
func (cb *callback) run(err error) bool {
	switch {
	case cb.fnErr != nil:
		cb.fnErr(err)
		return true
	case err == nil:
		if cb.fn != nil {
			cb.fn()
		} else if cb.free != nil {
			cb.free(cb.v)
		}
		return true
	default:
		// The grace period did not complete; freeing now could release
		// memory a reader still holds. Drop, and count the drop.
		return false
	}
}

// engineSet is the reclaimer's engine wiring, swapped wholesale behind
// an atomic pointer. Outside a migration old is nil and every grace
// period runs on cur. During a live handover window (BeginHandover →
// CompleteHandover/AbortHandover) old holds the engine being drained:
// read-side critical sections exist on BOTH engines in that window, so
// every wait covers both — a wait on only one engine could miss a
// reader still inside the other and free memory out from under it.
// Over-covering the window's waits is always safe (PRCU §3.1).
type engineSet struct {
	cur core.RCU
	old core.RCU
}

// Reclaimer is the sharded, bounded deferred-reclamation engine.
// Construct with New; Close (or CloseCtx) must be called to release the
// flush workers.
type Reclaimer struct {
	eng   atomic.Pointer[engineSet]
	met   *obs.Metrics
	clock *tsc.Monotonic // age-gauge timebase

	// Tunable knobs. policy and the watermarks are guarded by capMu (the
	// lock already held on every read path that consults them), so
	// SetWatermarks/SetPolicy can never be observed torn. flushDelay is
	// read locklessly by the shard workers and is therefore atomic.
	policy      Policy
	maxPending  int
	maxBytes    int64
	softPending int          // 0 = derived (half of maxPending)
	softBytes   int64        // 0 = derived (half of maxBytes)
	flushDelay  atomic.Int64 // nanoseconds; 0 = flush immediately

	// workCtx is cancelled at bounded shutdown to abort in-flight waits;
	// workers survive cancelled waits and keep draining (fast-failing).
	workCtx    context.Context
	cancelWork context.CancelFunc

	// Global capacity accounting. pending/pendingBytes are the
	// authoritative backlog; the obs gauges mirror them inside the same
	// critical sections so a concurrent Snapshot can never observe a
	// value above the hard watermark.
	capMu        sync.Mutex
	space        *sync.Cond // signalled when capacity frees or on close
	pending      int
	pendingBytes int64
	closed       bool

	closedFlag atomic.Bool // workers' lock-free view of closed

	shards []*shard
	aff    sync.Pool     // *affinity tickets for P-local shard choice
	rr     atomic.Uint32 // round-robin seed for fresh tickets

	// submitting counts callers in the non-blocking window between a
	// successful capacity reservation and the shard enqueue. CloseCtx
	// spins it to zero before kicking the workers, so no callback can be
	// appended to a queue after its worker concluded the drain is final.
	submitting atomic.Int64

	dropped atomic.Uint64
	graces  atomic.Uint64
	inline  atomic.Uint64
	bp      atomic.Uint64

	// closedPanic is the message for submissions after Close; the Async
	// facade overrides it to keep its historical wording.
	closedPanic string
}

// affinity is a shard ticket cached per-P by the sync.Pool, giving
// goroutines that share a processor a shared shard without any runtime
// introspection.
type affinity struct{ idx uint32 }

// New returns a running Reclaimer flushing through r's grace periods.
// It panics on an invalid Config: negative watermarks, or a soft
// watermark above its hard counterpart (an inversion that would
// otherwise silently disable expedited flushing until overload).
func New(r core.RCU, cfg Config) *Reclaimer {
	validate(cfg)
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	met := cfg.Metrics
	if met == nil {
		// Unlike engine-side observability (off by default: it rides the
		// read hot path), reclaim accounting lives on already-locked
		// queue transitions, so Stats always works out of the box.
		met = obs.New()
	}
	rc := &Reclaimer{
		met:         met,
		clock:       tsc.NewMonotonic(),
		policy:      cfg.Policy,
		maxPending:  cfg.MaxPending,
		maxBytes:    cfg.MaxBytes,
		softPending: cfg.SoftPending,
		softBytes:   cfg.SoftBytes,
		closedPanic: "prcu: Retire on closed Reclaimer",
	}
	rc.eng.Store(&engineSet{cur: r})
	rc.flushDelay.Store(int64(normalizeDelay(cfg.FlushDelay)))
	met.SetReclaimAgeProbe(rc.OldestAgeNs)
	rc.workCtx, rc.cancelWork = context.WithCancel(context.Background())
	rc.space = sync.NewCond(&rc.capMu)
	rc.aff.New = func() any { return &affinity{idx: rc.rr.Add(1)} }
	rc.shards = make([]*shard, n)
	for i := range rc.shards {
		rc.shards[i] = newShard(rc, i)
	}
	return rc
}

// validate panics on a Config New must refuse. The messages name the
// field so a misconfigured service fails loudly at construction instead
// of silently never expediting (inverted soft marks) or never bounding
// (negative marks, which over()/soft() would treat as unbounded).
func validate(cfg Config) {
	if cfg.MaxPending < 0 {
		panic("prcu/reclaim: negative MaxPending watermark")
	}
	if cfg.MaxBytes < 0 {
		panic("prcu/reclaim: negative MaxBytes watermark")
	}
	if cfg.SoftPending < 0 {
		panic("prcu/reclaim: negative SoftPending watermark")
	}
	if cfg.SoftBytes < 0 {
		panic("prcu/reclaim: negative SoftBytes watermark")
	}
	if cfg.MaxPending > 0 && cfg.SoftPending > cfg.MaxPending {
		panic("prcu/reclaim: inverted watermarks: SoftPending exceeds MaxPending")
	}
	if cfg.MaxBytes > 0 && cfg.SoftBytes > cfg.MaxBytes {
		panic("prcu/reclaim: inverted watermarks: SoftBytes exceeds MaxBytes")
	}
}

// normalizeDelay maps the FlushDelay convention (0 = default, negative =
// immediate) onto the stored pacing value.
func normalizeDelay(d time.Duration) time.Duration {
	if d == 0 {
		return DefaultFlushDelay
	}
	if d < 0 {
		return 0
	}
	return d
}

// shard returns the submitting goroutine's shard.
func (r *Reclaimer) shard() *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	t := r.aff.Get().(*affinity)
	s := r.shards[int(t.idx)%len(r.shards)]
	r.aff.Put(t)
	return s
}

// Retire schedules free(v) to run after a grace period covering p,
// declaring bytes of backlog accounting for v. It never blocks for the
// grace period itself; it may block (PolicyBlock) or degrade to an
// inline grace period (PolicyInline) when the backlog is at the hard
// watermark. free may be nil when only the wait matters (Go's GC frees
// v; the reclaimer still bounds and accounts the deferral). Retire
// panics after Close.
func (r *Reclaimer) Retire(v any, p core.Predicate, bytes int, free func(any)) {
	r.submit(callback{pred: p, v: v, free: free, bytes: int64(bytes)})
}

// Defer schedules fn to run once a grace period covering p completes or
// the reclaimer shuts down without completing it: fn receives nil after
// a full grace period, or the abandonment error — in which case nothing
// covered by p may be reclaimed. Error-aware callbacks are never
// dropped. Defer panics after Close.
func (r *Reclaimer) Defer(p core.Predicate, bytes int, fn func(error)) {
	r.submit(callback{pred: p, fnErr: fn, bytes: int64(bytes)})
}

// submit routes cb through capacity admission to its shard. Callbacks
// refused by admission (inline degradation or closed-while-blocked) are
// resolved synchronously by admit and never enqueued.
func (r *Reclaimer) submit(cb callback) {
	cb.atNs = r.clock.Now()
	soft, ok := r.admit(&cb)
	if !ok {
		return
	}
	r.shard().enqueue(cb, soft)
}

// over reports whether accepting bytes more would cross a hard
// watermark. Caller holds capMu.
func (r *Reclaimer) over(bytes int64) bool {
	return (r.maxPending > 0 && r.pending+1 > r.maxPending) ||
		(r.maxBytes > 0 && r.pendingBytes+bytes > r.maxBytes)
}

// soft reports whether the backlog has reached a soft watermark
// (explicitly configured, or half the hard limit). Caller holds capMu.
func (r *Reclaimer) soft() bool {
	sp, sb := r.softMarks()
	return (sp > 0 && r.pending >= sp) || (sb > 0 && r.pendingBytes >= sb)
}

// softMarks resolves the effective soft watermarks (0 = none). Caller
// holds capMu.
func (r *Reclaimer) softMarks() (int, int64) {
	sp := r.softPending
	if sp == 0 && r.maxPending > 0 {
		sp = (r.maxPending + 1) / 2
	}
	sb := r.softBytes
	if sb == 0 && r.maxBytes > 0 {
		sb = (r.maxBytes + 1) / 2
	}
	return sp, sb
}

// admit reserves backlog capacity for cb, applying the configured
// overload behavior. It returns ok = false when cb was already resolved
// (inline wait, or the reclaimer closed while the caller was blocked);
// soft = true tells the enqueuer to expedite its shard's flush.
func (r *Reclaimer) admit(cb *callback) (soft, ok bool) {
	overloaded := false
	for {
		r.capMu.Lock()
		// Evaluated under capMu (and per iteration): the watermarks are
		// retunable, so a callback that could never fit under the old
		// limit may fit after a SetWatermarks loosened it, and vice versa.
		oversize := r.maxBytes > 0 && cb.bytes > r.maxBytes
		if r.closed {
			r.capMu.Unlock()
			if overloaded {
				// The caller submitted before Close and was parked at the
				// watermark; the shard workers may already be gone, so
				// resolve here rather than enqueue into the void.
				r.inlineResolve(cb)
				return false, false
			}
			panic(r.closedPanic)
		}
		if !oversize && !r.over(cb.bytes) {
			r.pending++
			r.pendingBytes += cb.bytes
			soft = r.soft()
			r.submitting.Add(1)
			r.met.ReclaimEnqueue(cb.bytes)
			r.capMu.Unlock()
			return soft, true
		}
		backlog := uint64(r.pending)
		if r.policy == PolicyInline || oversize {
			r.capMu.Unlock()
			r.met.ReclaimOverload(obs.OverloadInline, backlog)
			r.inlineResolve(cb)
			return false, false
		}
		if !overloaded {
			overloaded = true
			r.bp.Add(1)
			r.met.ReclaimOverload(obs.OverloadBackpressure, backlog)
		}
		r.capMu.Unlock()
		// Expedite every shard before parking: the fastest way out of
		// backpressure is finishing the batches that hold the capacity.
		// (Done outside capMu — shard locks are never taken under it.)
		r.expediteAll()
		r.capMu.Lock()
		if r.over(cb.bytes) && !r.closed {
			r.space.Wait()
		}
		r.capMu.Unlock()
	}
}

// inlineResolve is the degraded path: wait cb's own grace period
// synchronously on the caller's goroutine and resolve it, without ever
// touching the backlog.
func (r *Reclaimer) inlineResolve(cb *callback) {
	r.inline.Add(1)
	err := r.waitFor(cb)
	if !cb.run(err) {
		r.dropped.Add(1)
	}
}

// release returns cb's capacity to the pool after resolution.
func (r *Reclaimer) release(cb *callback, freed bool) {
	r.capMu.Lock()
	r.pending--
	r.pendingBytes -= cb.bytes
	r.met.ReclaimResolve(cb.bytes, freed)
	bounded := r.maxPending > 0 || r.maxBytes > 0
	r.capMu.Unlock()
	if bounded {
		r.space.Broadcast()
	}
}

// waitFor runs cb's grace-period wait, bounded by the callback's own
// context (if any) and by the shutdown context.
func (r *Reclaimer) waitFor(cb *callback) error { return r.waitPred(cb.ctx, cb.pred) }

// waitPred waits a grace period covering p, bounded by the shutdown
// context and, when cctx is non-nil, by the callback's own context. The
// engine set is loaded once per wait: a handover beginning mid-wait
// does not retroactively widen it, which is safe because BeginHandover
// runs before any reader front flips to the target — a wait wired to
// the source alone can only have started while all readers were still
// on the source.
func (r *Reclaimer) waitPred(cctx context.Context, p core.Predicate) error {
	es := r.eng.Load()
	if cctx == nil {
		return es.wait(r.workCtx, p)
	}
	mctx, cancel := context.WithCancel(cctx)
	defer cancel()
	stop := context.AfterFunc(r.workCtx, cancel)
	defer stop()
	return es.wait(mctx, p)
}

// wait runs one grace period covering p on every engine in the set. An
// error from either engine means the grace period is incomplete and the
// batch's callbacks must not free.
func (es *engineSet) wait(ctx context.Context, p core.Predicate) error {
	if err := es.cur.WaitForReadersCtx(ctx, p); err != nil {
		return err
	}
	if es.old != nil {
		return es.old.WaitForReadersCtx(ctx, p)
	}
	return nil
}

// Engine returns the engine grace periods currently run on (during a
// handover window, the target).
func (r *Reclaimer) Engine() core.RCU { return r.eng.Load().cur }

// HandoverTarget reports the engine being drained during a handover
// window (nil outside one). Note the naming from the migrator's view:
// cur is the migration target, the returned engine is the source.
func (r *Reclaimer) HandoverTarget() core.RCU { return r.eng.Load().old }

// BeginHandover enters the dual-coverage migration window: from this
// call until CompleteHandover or AbortHandover, every grace period the
// reclaimer runs covers both target and the previous engine. The
// migrator calls it BEFORE flipping any reader front to the target, so
// no wait can miss a reader — waits issued in the begin→flip window
// merely over-cover. Callbacks never move between queues, so each still
// resolves exactly once, on whichever engine set its flush loads.
func (r *Reclaimer) BeginHandover(target core.RCU) error {
	if target == nil {
		return errors.New("prcu/reclaim: BeginHandover with nil target")
	}
	for {
		es := r.eng.Load()
		if es.old != nil {
			return errors.New("prcu/reclaim: handover already in progress")
		}
		if es.cur == target {
			return errors.New("prcu/reclaim: handover target is already the current engine")
		}
		if r.eng.CompareAndSwap(es, &engineSet{cur: target, old: es.cur}) {
			return nil
		}
	}
}

// CompleteHandover ends the window, decommissioning the drained source:
// future grace periods run on the target alone. Returns the source
// engine, or nil if no handover was in progress. The caller must have
// already drained the source's readers and flushed the backlog that was
// submitted before the flip (the migrator's phase 1 and 2).
func (r *Reclaimer) CompleteHandover() core.RCU {
	for {
		es := r.eng.Load()
		if es.old == nil {
			return nil
		}
		if r.eng.CompareAndSwap(es, &engineSet{cur: es.cur}) {
			return es.old
		}
	}
}

// AbortHandover rolls the wiring back to the pre-handover engine
// exactly, discarding the target. Returns the abandoned target, or nil
// if no handover was in progress. The caller must have already flipped
// every reader front back to the source and drained the target's
// readers (the migrator's rollback path), because waits stop covering
// the target the moment this returns.
func (r *Reclaimer) AbortHandover() core.RCU {
	for {
		es := r.eng.Load()
		if es.old == nil {
			return nil
		}
		if r.eng.CompareAndSwap(es, &engineSet{cur: es.old}) {
			return es.cur
		}
	}
}

// Flush expedites every shard: queued callbacks are batched and their
// grace periods started immediately, skipping any remaining
// accumulation delay. Flush does not wait for them to resolve; use
// Barrier for that.
func (r *Reclaimer) Flush() { r.expediteAll() }

func (r *Reclaimer) expediteAll() {
	for _, s := range r.shards {
		s.expediteFlush()
	}
}

// Barrier blocks until every callback submitted before it has been
// resolved — freed, delivered its error, or (under a bounded shutdown)
// dropped. Flushing is expedited, so with a healthy engine Barrier
// returns after roughly one coalesced grace period per shard.
func (r *Reclaimer) Barrier() {
	for _, s := range r.shards {
		s.drainWait()
	}
}

// Pending returns the backlog: callbacks accepted and not yet resolved.
func (r *Reclaimer) Pending() int {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.pending
}

// PendingBytes returns the caller-declared bytes held by the backlog.
func (r *Reclaimer) PendingBytes() int64 {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.pendingBytes
}

// Dropped returns the number of callbacks abandoned because their grace
// period did not complete before a bounded shutdown gave up (error-aware
// Defer callbacks take delivery of the error instead and are never
// dropped).
func (r *Reclaimer) Dropped() uint64 { return r.dropped.Load() }

// Graces returns the number of grace periods issued on behalf of the
// backlog — the denominator of the batching win (Pending+resolved
// callbacks per grace period).
func (r *Reclaimer) Graces() uint64 { return r.graces.Load() }

// InlineWaits returns the number of retirements resolved by a
// synchronous caller-side grace period under overload.
func (r *Reclaimer) InlineWaits() uint64 { return r.inline.Load() }

// BackpressureWaits returns the number of retirements that blocked at
// the hard watermark before being accepted.
func (r *Reclaimer) BackpressureWaits() uint64 { return r.bp.Load() }

// SetWatermarks retunes the hard watermarks at runtime (0 = unbounded)
// and re-derives the soft watermarks as their halves, discarding any
// explicit Config.SoftPending/SoftBytes. It is safe against concurrent
// Retire/Flush/Close. Tightening below the current backlog does not
// drop anything: the backlog drains normally while new retirements see
// the new limits (blocking or degrading inline per the policy);
// expedited flushing is kicked so the drain starts immediately.
// Loosening wakes callers parked at the old watermark. SetWatermarks
// panics on negative values.
func (r *Reclaimer) SetWatermarks(maxPending int, maxBytes int64) {
	if maxPending < 0 {
		panic("prcu/reclaim: negative MaxPending watermark")
	}
	if maxBytes < 0 {
		panic("prcu/reclaim: negative MaxBytes watermark")
	}
	r.capMu.Lock()
	r.maxPending = maxPending
	r.maxBytes = maxBytes
	r.softPending = 0
	r.softBytes = 0
	expedite := r.soft()
	r.capMu.Unlock()
	// Parked PolicyBlock callers re-check over() against the new limits.
	r.space.Broadcast()
	if expedite {
		r.expediteAll()
	}
}

// Watermarks returns the hard watermarks in force (0 = unbounded).
func (r *Reclaimer) Watermarks() (maxPending int, maxBytes int64) {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.maxPending, r.maxBytes
}

// SetPacing retunes the batch-accumulation window at runtime, with the
// Config.FlushDelay convention: 0 restores DefaultFlushDelay, negative
// means flush immediately. The next batch a shard opens uses the new
// window; a window already being slept out is not cut short (use Flush
// for that).
func (r *Reclaimer) SetPacing(d time.Duration) {
	r.flushDelay.Store(int64(normalizeDelay(d)))
}

// Pacing returns the batch-accumulation window in force (0 = flush
// immediately).
func (r *Reclaimer) Pacing() time.Duration {
	return time.Duration(r.flushDelay.Load())
}

// SetPolicy retunes the hard-watermark overload behavior at runtime.
// Callers parked at the watermark under PolicyBlock are woken and, under
// a new PolicyInline, degrade to their own inline grace period.
func (r *Reclaimer) SetPolicy(p Policy) {
	r.capMu.Lock()
	r.policy = p
	r.capMu.Unlock()
	r.space.Broadcast()
}

// Policy returns the overload policy in force.
func (r *Reclaimer) Policy() Policy {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.policy
}

// OldestAge returns the age of the oldest unresolved callback — the
// reclaimer's data-age gauge: how stale the most overdue deferred
// free is. 0 means an empty backlog. The estimate is conservative
// within one batch (a batch's age is its oldest member's) and is taken
// on the same monotonic clock that stamps submissions.
func (r *Reclaimer) OldestAge() time.Duration {
	ns := r.OldestAgeNs()
	return time.Duration(ns)
}

// OldestAgeNs is OldestAge in integer nanoseconds, the form the obs
// age probe exports.
func (r *Reclaimer) OldestAgeNs() int64 {
	oldest := r.OldestSubmittedNs()
	if oldest == 0 {
		return 0
	}
	age := r.clock.Now() - oldest
	if age < 0 {
		age = 0
	}
	return age
}

// NowNs reads the reclaimer's monotonic clock — the timebase submission
// stamps (OldestSubmittedNs) are on. The migrator samples it before the
// flip so "backlog submitted before the flip has drained" is a simple
// stamp comparison.
func (r *Reclaimer) NowNs() int64 { return r.clock.Now() }

// OldestSubmittedNs returns the submission stamp (on the NowNs clock) of
// the oldest unresolved callback across all shards, or 0 for an empty
// backlog. Conservative within one batch, like OldestAge.
func (r *Reclaimer) OldestSubmittedNs() int64 {
	oldest := int64(0)
	for _, s := range r.shards {
		if at := s.oldestNs(); at > 0 && (oldest == 0 || at < oldest) {
			oldest = at
		}
	}
	return oldest
}

// Stats returns the attached Metrics' snapshot (zero Snapshot when no
// Metrics was configured).
func (r *Reclaimer) Stats() obs.Snapshot { return r.met.Snapshot() }

// Close drains all outstanding callbacks (running each after its grace
// period) and stops the flush workers. Close is idempotent; concurrent
// and repeated calls all block until the drain finishes.
func (r *Reclaimer) Close() { _ = r.CloseCtx(context.Background()) }

// CloseCtx is Close bounded by ctx: if the drain has not finished when
// ctx expires — a wedged reader can stall grace periods indefinitely —
// every remaining wait is cancelled, error-aware callbacks run with the
// cancellation error, plain callbacks are dropped (see Dropped), the
// workers stop, and CloseCtx returns ctx.Err(). A nil error means a
// complete, clean drain.
func (r *Reclaimer) CloseCtx(ctx context.Context) error {
	r.capMu.Lock()
	already := r.closed
	r.closed = true
	r.closedFlag.Store(true)
	r.capMu.Unlock()
	if !already {
		r.space.Broadcast()
		// Let in-flight submits land in their queues before the workers
		// are told the backlog is final; the window between reservation
		// and enqueue holds no locks and performs no blocking calls, so
		// this spin is bounded by a few instructions per submitter.
		for r.submitting.Load() != 0 {
			runtime.Gosched()
		}
		for _, s := range r.shards {
			s.kickWorker()
		}
	}
	var cdone <-chan struct{}
	if ctx != nil {
		cdone = ctx.Done()
	}
	err := error(nil)
	for _, s := range r.shards {
		select {
		case <-s.done:
		case <-cdone:
			r.cancelWork()
			err = ctx.Err()
			cdone = nil // already cancelled; just collect the rest
		}
		if err != nil {
			<-s.done
		}
	}
	return err
}

func (r *Reclaimer) isClosed() bool { return r.closedFlag.Load() }
