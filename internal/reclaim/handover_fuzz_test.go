package reclaim

import (
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
)

// FuzzMigrateReclaim drives a reclaimer through fuzzer-chosen
// interleavings of retirement, flushing, open reader sections on two
// engines, and the live-migration handover operations
// (BeginHandover/CompleteHandover/AbortHandover), checking the
// invariant the migration protocol rests on: no schedule of handovers
// and aborts can double-resolve or drop a callback — every accepted
// retirement resolves exactly once and shutdown terminates.
func FuzzMigrateReclaim(f *testing.F) {
	f.Add(uint64(1), []byte{0, 3, 0, 2, 4, 0, 2})
	f.Add(uint64(42), []byte{6, 0, 3, 0, 7, 2, 6, 5, 0, 2, 7})
	f.Add(uint64(0xbeef), []byte{3, 5, 3, 4, 3, 5, 0, 0, 2})
	f.Add(uint64(7), []byte{0, 1, 6, 3, 1, 7, 2, 4, 1, 6, 2, 3, 0, 5, 1})
	f.Add(uint64(0xfeed), []byte{3, 0, 6, 2, 7, 0, 4, 3, 1, 5, 2, 0})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		engines := [2]core.RCU{core.NewTimeRCU(8, nil), core.NewPacked(8)}
		cur := 0
		r := New(engines[cur], Config{Shards: 1, FlushDelay: -1})

		// One reader per engine; ops toggle their sections open/closed so
		// grace periods genuinely block across handover transitions.
		var rds [2]core.Reader
		var open [2]bool
		var openVal [2]core.Value
		for i, eng := range engines {
			rd, err := eng.Register()
			if err != nil {
				t.Fatal(err)
			}
			rds[i] = rd
		}
		toggle := func(i int, v core.Value) {
			if open[i] {
				rds[i].Exit(openVal[i])
				open[i] = false
				return
			}
			rds[i].Enter(v)
			open[i], openVal[i] = true, v
		}

		var retired, freed atomic.Int64
		inHandover := false
		done := make(chan struct{})
		go func() {
			defer close(done)
			s := seed
			for _, op := range script {
				s = s*6364136223846793005 + 1442695040888963407
				switch op % 8 {
				case 0, 1: // retire with a varied predicate
					var p core.Predicate
					switch s % 3 {
					case 0:
						p = core.All()
					case 1:
						p = core.Singleton(core.Value(s % 64))
					default:
						lo := core.Value(s>>32) % 64
						p = core.Interval(lo, lo+core.Value(s%16))
					}
					retired.Add(1)
					r.Retire(nil, p, int(s%256), func(any) { freed.Add(1) })
				case 2:
					r.Flush()
				case 3:
					if !inHandover {
						if err := r.BeginHandover(engines[1-cur]); err != nil {
							t.Errorf("BeginHandover: %v", err)
							return
						}
						inHandover = true
					}
				case 4:
					if inHandover {
						if got := r.CompleteHandover(); got != engines[cur] {
							t.Errorf("CompleteHandover returned the wrong source")
							return
						}
						cur = 1 - cur
						inHandover = false
					}
				case 5:
					if inHandover {
						if got := r.AbortHandover(); got != engines[1-cur] {
							t.Errorf("AbortHandover returned the wrong target")
							return
						}
						inHandover = false
					}
				case 6:
					toggle(cur, core.Value(s%64))
				case 7:
					toggle(1-cur, core.Value(s%64))
				}
			}
			// Close any section still open so shutdown's grace periods can
			// complete, then drain everything.
			for i := range open {
				if open[i] {
					rds[i].Exit(openVal[i])
					open[i] = false
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("fuzz driver wedged")
		}
		r.Close()
		for i := range rds {
			rds[i].Unregister()
		}
		if got, want := freed.Load(), retired.Load(); got != want {
			t.Fatalf("freed %d of %d retirements across handovers", got, want)
		}
		if p := r.Pending(); p != 0 {
			t.Fatalf("Pending = %d after Close", p)
		}
	})
}
