package reclaim

import (
	"context"
	"sort"

	"prcu/internal/core"
)

// waitGroup is one grace period covering a set of batch members: wait on
// pred (bounded by ctx when non-nil), then resolve every callback in
// cbs (indices into the batch).
type waitGroup struct {
	pred core.Predicate
	ctx  context.Context
	cbs  []int
}

// coalesce partitions a flush batch into the fewest grace periods that
// still cover every member's predicate.
//
// Correctness rests on the paper's over-covering direction (§3.1): a
// wait on predicate P completes callback cb iff P holds everywhere
// cb.pred does — the wait then blocks on a superset of the readers cb
// must outlive — and the merged wait starts strictly after every member
// was submitted, so it observes at least the critical sections each
// member's own wait would have. Under-covering is never produced: groups
// are built only by union.
//
// The partition:
//
//   - Context-bound callbacks wait individually (first, so a long merged
//     wait cannot eat their deadline). Coalescing them would make one
//     member's cancellation ambiguous for the rest.
//   - If any member carries the wildcard predicate, one All wait covers
//     every context-free member — the classic RCU batching limit case.
//   - Singleton/Interval predicates (dense ranges, via Span) sort and
//     merge: overlapping or adjacent ranges fuse into one covering
//     Interval. Retirement storms against a key range — the CITRUS
//     delete pattern — collapse into a handful of waits.
//   - Everything else (Func, custom-step iterables) fuses into a single
//     disjunction: one Func wait holding wherever any member holds.
//     These cannot be compared or merged structurally, but one wait over
//     their union is still exactly as selective as the members combined.
func coalesce(batch []callback) []waitGroup {
	if len(batch) == 1 && batch[0].ctx == nil {
		return []waitGroup{{pred: batch[0].pred, cbs: []int{0}}}
	}
	var groups []waitGroup
	var spans []spanEntry
	var opaque []int // Func / custom-step iterables
	allGroup := -1   // index in groups of the wildcard group, if any

	for i := range batch {
		cb := &batch[i]
		if cb.ctx != nil {
			groups = append(groups, waitGroup{pred: cb.pred, ctx: cb.ctx, cbs: []int{i}})
			continue
		}
		if cb.pred.Kind() == core.KindAll {
			if allGroup < 0 {
				allGroup = len(groups)
				groups = append(groups, waitGroup{pred: core.All()})
			}
			groups[allGroup].cbs = append(groups[allGroup].cbs, i)
			continue
		}
		if lo, hi, ok := cb.pred.Span(); ok {
			spans = append(spans, spanEntry{lo: lo, hi: hi, idx: i})
			continue
		}
		opaque = append(opaque, i)
	}

	if allGroup >= 0 {
		// The wildcard wait covers every context-free predicate; fold the
		// rest of the batch into it rather than waiting again.
		g := &groups[allGroup]
		for _, e := range spans {
			g.cbs = append(g.cbs, e.idx)
		}
		g.cbs = append(g.cbs, opaque...)
		return groups
	}

	groups = append(groups, mergeSpans(spans)...)

	if len(opaque) == 1 {
		i := opaque[0]
		groups = append(groups, waitGroup{pred: batch[i].pred, cbs: []int{i}})
	} else if len(opaque) > 1 {
		preds := make([]core.Predicate, len(opaque))
		for j, i := range opaque {
			preds[j] = batch[i].pred
		}
		union := core.Func(func(v core.Value) bool {
			for _, p := range preds {
				if p.Holds(v) {
					return true
				}
			}
			return false
		})
		groups = append(groups, waitGroup{pred: union, cbs: opaque})
	}
	return groups
}

// spanEntry is one dense-range predicate awaiting merging.
type spanEntry struct {
	lo, hi core.Value
	idx    int
}

// mergeSpans sorts dense ranges by lower bound and fuses every
// overlapping-or-adjacent run into one covering Interval group.
func mergeSpans(spans []spanEntry) []waitGroup {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
	var out []waitGroup
	lo, hi := spans[0].lo, spans[0].hi
	cbs := []int{spans[0].idx}
	flush := func() {
		out = append(out, waitGroup{pred: core.Interval(lo, hi), cbs: cbs})
	}
	const maxVal = ^core.Value(0)
	for _, e := range spans[1:] {
		// Adjacent counts as mergeable: [2,4] and [5,9] cover the dense
		// range [2,9] with no value in between. Guard hi+1 overflow.
		if hi == maxVal || e.lo <= hi+1 {
			if e.hi > hi {
				hi = e.hi
			}
			cbs = append(cbs, e.idx)
			continue
		}
		flush()
		lo, hi = e.lo, e.hi
		cbs = []int{e.idx}
	}
	flush()
	return out
}
