package reclaim

import (
	"context"

	"prcu/internal/core"
)

// Async provides call_rcu-style deferred execution (§2.1 "Asynchronous
// wait-for-readers"): Call records a callback and returns immediately; a
// background worker runs the callback after a grace period covering its
// predicate. It is a thin facade over a single-shard, unbounded,
// immediate-flush Reclaimer — callers needing watermarks, backpressure
// or byte accounting should construct a Reclaimer directly.
//
// Unlike classic call_rcu — which batches all callbacks behind one
// global grace period — callbacks are grouped by predicate: the batch
// coalescer merges only equal, overlapping and adjacent predicates, so
// waits stay as targeted as the predicates callers submitted (one wait
// never covers readers no batched callback needed to outlive... beyond
// the union of the batch, which is exactly the over-covering §3.1
// blesses). Callbacks accumulated while a grace period was in flight
// drain as one coalesced batch.
//
// Shutdown contract: Close drains every outstanding callback, running
// each after its grace period, and only then stops the worker — a clean
// Close never drops work. CloseCtx bounds that drain by a context, for
// shutting down on top of a wedged engine: when the context expires, all
// in-progress and remaining waits are cancelled, error-aware callbacks
// (CallCtx) run with the cancellation error, and plain callbacks are
// dropped (counted by Dropped) rather than run after an incomplete grace
// period. Both are idempotent; concurrent and repeated calls all block
// until the worker has stopped.
type Async struct {
	r *Reclaimer
}

// NewAsync starts a deferral worker on top of r. Close must be called to
// release the worker.
func NewAsync(r core.RCU) *Async {
	rc := New(r, Config{Shards: 1, FlushDelay: -1})
	rc.closedPanic = "prcu: Call on closed Async"
	return &Async{r: rc}
}

// Reclaimer returns the backing reclaimer, for callers that start with
// Async semantics and later need Flush, byte accounting or stats.
func (a *Async) Reclaimer() *Reclaimer { return a.r }

// Call schedules fn to run after a grace period covering p. It never
// blocks for the grace period. fn runs only if its grace period
// completes; if the wait is cancelled by a bounded shutdown the callback
// is dropped (see Dropped) — it must never observe an incomplete grace
// period. Call panics after Close.
func (a *Async) Call(p core.Predicate, fn func()) {
	a.r.submit(callback{pred: p, fn: fn})
}

// CallCtx schedules fn to run once a grace period covering p completes
// or ctx is cancelled, whichever comes first: fn receives nil after a
// full grace period, or the context's error when the wait was abandoned —
// in which case the grace period did NOT complete and fn must not
// reclaim. CallCtx panics after Close.
func (a *Async) CallCtx(ctx context.Context, p core.Predicate, fn func(error)) {
	a.r.submit(callback{pred: p, ctx: ctx, fnErr: fn})
}

// Barrier blocks until every callback submitted before it has been
// resolved — executed, or (under a bounded shutdown) dropped.
func (a *Async) Barrier() { a.r.Barrier() }

// Pending returns the number of callbacks not yet resolved.
func (a *Async) Pending() int { return a.r.Pending() }

// Dropped returns the number of plain Call callbacks abandoned because
// their grace-period wait was cancelled (CallCtx callbacks are never
// dropped — they take delivery of the error instead).
func (a *Async) Dropped() uint64 { return a.r.Dropped() }

// Close drains all outstanding callbacks (running each after its grace
// period) and stops the worker. Close is idempotent: a second Close is a
// no-op that blocks until the first drain finishes.
func (a *Async) Close() { a.r.Close() }

// CloseCtx is Close bounded by ctx: if the drain has not finished when
// ctx expires — a wedged reader can stall grace periods indefinitely —
// every remaining wait is cancelled, error-aware callbacks run with the
// cancellation error, plain callbacks are dropped, the worker stops, and
// CloseCtx returns ctx.Err(). A nil error means a complete, clean drain.
func (a *Async) CloseCtx(ctx context.Context) error { return a.r.CloseCtx(ctx) }
