package reclaim

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestConfigValidation(t *testing.T) {
	eng := core.NewTimeRCU(4, nil)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative MaxPending", Config{MaxPending: -1}, "negative MaxPending"},
		{"negative MaxBytes", Config{MaxBytes: -1}, "negative MaxBytes"},
		{"negative SoftPending", Config{SoftPending: -5}, "negative SoftPending"},
		{"negative SoftBytes", Config{SoftBytes: -5}, "negative SoftBytes"},
		{"inverted pending", Config{MaxPending: 10, SoftPending: 11}, "SoftPending exceeds MaxPending"},
		{"inverted bytes", Config{MaxBytes: 10, SoftBytes: 11}, "SoftBytes exceeds MaxBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustPanic(t, tc.want, func() { New(eng, tc.cfg) })
		})
	}
	// Soft marks without a hard bound are legal (expedite-only config),
	// as is soft == hard (expedite exactly at the limit).
	for _, cfg := range []Config{
		{SoftPending: 8},
		{SoftBytes: 1 << 20},
		{MaxPending: 8, SoftPending: 8},
		{MaxBytes: 100, SoftBytes: 100},
	} {
		r := New(eng, cfg)
		r.Close()
	}
}

func TestSetWatermarksValidation(t *testing.T) {
	r := New(core.NewTimeRCU(4, nil), Config{})
	defer r.Close()
	mustPanic(t, "negative MaxPending", func() { r.SetWatermarks(-1, 0) })
	mustPanic(t, "negative MaxBytes", func() { r.SetWatermarks(0, -1) })
}

func TestWatermarksAndPacingRoundTrip(t *testing.T) {
	r := New(core.NewTimeRCU(4, nil), Config{MaxPending: 100, MaxBytes: 1 << 20})
	defer r.Close()
	if mp, mb := r.Watermarks(); mp != 100 || mb != 1<<20 {
		t.Fatalf("Watermarks() = %d, %d; want 100, %d", mp, mb, 1<<20)
	}
	r.SetWatermarks(42, 4096)
	if mp, mb := r.Watermarks(); mp != 42 || mb != 4096 {
		t.Fatalf("after SetWatermarks: %d, %d; want 42, 4096", mp, mb)
	}
	if got := r.Pacing(); got != DefaultFlushDelay {
		t.Fatalf("default Pacing() = %v, want %v", got, DefaultFlushDelay)
	}
	r.SetPacing(-1)
	if got := r.Pacing(); got != 0 {
		t.Fatalf("immediate Pacing() = %v, want 0", got)
	}
	r.SetPacing(3 * time.Millisecond)
	if got := r.Pacing(); got != 3*time.Millisecond {
		t.Fatalf("Pacing() = %v, want 3ms", got)
	}
	r.SetPacing(0)
	if got := r.Pacing(); got != DefaultFlushDelay {
		t.Fatalf("restored Pacing() = %v, want %v", got, DefaultFlushDelay)
	}
	if r.Policy() != PolicyBlock {
		t.Fatal("default policy must be PolicyBlock")
	}
	r.SetPolicy(PolicyInline)
	if r.Policy() != PolicyInline {
		t.Fatal("SetPolicy(PolicyInline) did not take")
	}
}

// TestSetWatermarksRaces hammers retire/flush/re-tune concurrently under
// the race detector: watermark reads must never tear, and the backlog
// bound must hold mid-retune against the loosest watermark any caller
// could legitimately have observed.
func TestSetWatermarksRaces(t *testing.T) {
	const (
		loose = 256
		tight = 32
	)
	r := New(core.NewTimeRCU(8, nil), Config{
		Shards:     2,
		MaxPending: loose,
		FlushDelay: 100 * time.Microsecond,
	})
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Retirement storm across several goroutines.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				r.Retire(nil, core.Singleton(core.Value((g*31+i)%16)), 16, nil)
			}
		}(g)
	}
	// Re-tuner flips between tight and loose watermarks and pacing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 {
				r.SetWatermarks(tight, 0)
				r.SetPacing(-1)
			} else {
				r.SetWatermarks(loose, 0)
				r.SetPacing(50 * time.Microsecond)
			}
			r.SetPolicy(Policy(i % 2)) // alternate Block/Inline
		}
	}()
	// Flusher and bound checker. Pending() may transiently reflect either
	// watermark depending on interleaving with the re-tuner, but it must
	// never exceed the loosest limit in play.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			r.Flush()
			if p := r.Pending(); p > loose {
				t.Errorf("backlog %d exceeded the loosest watermark %d mid-retune", p, loose)
				stop.Store(true)
			}
			mp, _ := r.Watermarks()
			if mp != tight && mp != loose {
				t.Errorf("torn watermark read: %d", mp)
				stop.Store(true)
			}
		}
	}()

	time.AfterFunc(200*time.Millisecond, func() { stop.Store(true) })
	wg.Wait()
	r.SetPolicy(PolicyBlock)
	r.Barrier()
	if p := r.Pending(); p != 0 {
		t.Fatalf("backlog %d after Barrier, want 0", p)
	}
	r.Close()
}

// TestOldestAgeGauge checks the data-age estimate: zero on an empty
// backlog, growing while a callback is stuck behind a wedged grace
// period, and zero again once resolved.
func TestOldestAgeGauge(t *testing.T) {
	eng := core.NewTimeRCU(4, nil)
	r := New(eng, Config{Shards: 1, FlushDelay: -1})
	defer r.Close()
	if age := r.OldestAge(); age != 0 {
		t.Fatalf("empty backlog age = %v, want 0", age)
	}

	// Hold a covered critical section open so the flush wedges.
	rd, err := eng.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(7)
	freed := make(chan struct{})
	r.Retire(nil, core.Singleton(core.Value(7)), 1, func(any) { close(freed) })
	r.Flush()

	// The callback is now queued or in flight behind the open reader;
	// its age must become visible and grow.
	deadline := time.After(5 * time.Second)
	for r.OldestAge() == 0 {
		select {
		case <-deadline:
			t.Fatal("age gauge never saw the pending callback")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	a1 := r.OldestAge()
	time.Sleep(5 * time.Millisecond)
	a2 := r.OldestAge()
	if a2 <= a1 {
		t.Fatalf("age did not grow while wedged: %v then %v", a1, a2)
	}

	rd.Exit(7)
	rd.Unregister()
	<-freed
	r.Barrier()
	if age := r.OldestAge(); age != 0 {
		t.Fatalf("drained backlog age = %v, want 0", age)
	}
}
