package chaos

import (
	"context"
	"testing"
	"time"

	"prcu/internal/core"
)

// TestSetConfigLive re-scripts a running engine's fault mix and checks
// each phase injects only its own fault classes: enter jitter under the
// jitter mix, exit delays under the delay mix, nothing once cleared.
func TestSetConfigLive(t *testing.T) {
	e := Wrap(core.NewEER(4, nil), Config{Seed: 99, EnterJitter: 1.0})
	rd, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Unregister()
	spin := func(n int) {
		for i := 0; i < n; i++ {
			rd.Enter(core.Value(i % 8))
			rd.Exit(core.Value(i % 8))
		}
	}

	spin(50)
	afterJitter := e.Counts()
	if afterJitter.EnterJitters != 50 {
		t.Fatalf("jitter mix injected %d enter jitters over 50 ops, want 50", afterJitter.EnterJitters)
	}
	if afterJitter.ExitDelays != 0 {
		t.Fatalf("jitter mix injected %d exit delays, want 0", afterJitter.ExitDelays)
	}

	e.SetConfig(Config{ExitDelay: 1.0, ExitDelayDur: 1})
	spin(50)
	afterDelay := e.Counts()
	if afterDelay.EnterJitters != afterJitter.EnterJitters {
		t.Fatalf("delay mix still injecting enter jitters: %d -> %d",
			afterJitter.EnterJitters, afterDelay.EnterJitters)
	}
	if afterDelay.ExitDelays != 50 {
		t.Fatalf("delay mix injected %d exit delays over 50 ops, want 50", afterDelay.ExitDelays)
	}

	e.SetConfig(Config{})
	spin(50)
	if got := e.Counts(); got != afterDelay {
		t.Fatalf("cleared mix still injecting faults: %+v -> %+v", afterDelay, got)
	}
}

// TestSetConfigKeepsSeed pins the contract that re-configs cannot
// re-seed: the Wrap seed survives any SetConfig and Config() reports it.
func TestSetConfigKeepsSeed(t *testing.T) {
	e := Wrap(core.NewEER(4, nil), Config{Seed: 0xabcdef})
	e.SetConfig(Config{Seed: 123, WaitJitter: 0.5})
	if got := e.Config().Seed; got != 0xabcdef {
		t.Fatalf("SetConfig replaced the seed: got %#x, want %#x", got, 0xabcdef)
	}
	if got := e.Config().WaitJitter; got != 0.5 {
		t.Fatalf("SetConfig dropped the new mix: WaitJitter = %v, want 0.5", got)
	}
}

// TestScheduleShapes checks the storm presets script what their names
// promise: stall bursts hold waits, the flood phase flags UpdateFlood,
// churn spikes flag ReaderChurn, and every preset ends on a calm phase
// so a controller gets a recovery window.
func TestScheduleShapes(t *testing.T) {
	u := 10 * time.Millisecond
	cases := map[string]Schedule{
		"StallBursts":       StallBursts(2*u, u, 4*u, 2),
		"UpdateFlood":       UpdateFlood(2*u, u),
		"ReaderChurnSpikes": ReaderChurnSpikes(2*u, u, 2),
		"Campaign":          Campaign(u),
	}
	for name, s := range cases {
		if len(s) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		if s[len(s)-1].Name != "calm" {
			t.Errorf("%s: ends on %q, want a calm phase", name, s[len(s)-1].Name)
		}
		if s.Total() <= 0 {
			t.Errorf("%s: non-positive total duration", name)
		}
	}
	var holds, floods, churns int
	for _, p := range Campaign(u) {
		if p.Cfg.WaitHold > 0 {
			holds++
		}
		if p.UpdateFlood {
			floods++
		}
		if p.ReaderChurn {
			churns++
		}
	}
	if holds == 0 || floods == 0 || churns == 0 {
		t.Fatalf("Campaign missing a storm family: holds=%d floods=%d churns=%d",
			holds, floods, churns)
	}
}

// TestScheduleRun plays a short schedule against a live engine and
// checks the mix tracks the phases and clears at the end; a cancelled
// context also clears the mix.
func TestScheduleRun(t *testing.T) {
	e := Wrap(core.NewEER(4, nil), Config{Seed: 7})
	s := Schedule{
		Phase{Name: "a", Dur: 20 * time.Millisecond, Cfg: Config{EnterJitter: 0.5}},
		Phase{Name: "b", Dur: 20 * time.Millisecond, Cfg: Config{WaitJitter: 0.5}},
	}
	done := make(chan struct{})
	go func() { s.Run(context.Background(), e); close(done) }()
	time.Sleep(10 * time.Millisecond)
	if got := e.Config().EnterJitter; got != 0.5 {
		t.Errorf("mid-phase-a mix: EnterJitter = %v, want 0.5", got)
	}
	<-done
	if got := e.Config(); got != (Config{Seed: 7}) {
		t.Errorf("schedule end left mix %+v, want cleared", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Schedule{Phase{Name: "x", Dur: time.Hour, Cfg: Config{Stall: 1}}}.Run(ctx, e)
	if got := e.Config().Stall; got != 0 {
		t.Errorf("cancelled run left Stall = %v, want cleared", got)
	}
}
