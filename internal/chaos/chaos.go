// Package chaos wraps an engine with seeded, deterministic fault
// injection for resilience testing: scheduler jitter around Enter,
// delayed and stalled Exits that hold critical sections open past a
// configured stall timeout, and jitter ahead of grace-period waits.
//
// The wrapper perturbs only *timing* — every fault is a delay or a
// yield inserted around the inner engine's own operations, never a
// dropped or reordered operation — so the PRCU safety property must
// hold under any chaos schedule. The torture tests exploit that: they
// run the standard safety harness over chaos-wrapped engines and
// assert no grace period ever returns early, while separately
// asserting the injected stalls actually trip the stall watchdog and
// deadline-bounded waits time out cleanly.
//
// Fault decisions come from a splitmix64 stream per reader (seeded
// from Config.Seed and the reader's registration index) and a shared
// sequence for wait-side jitter, so a fixed seed yields a fixed fault
// pattern per reader regardless of scheduling.
package chaos

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
)

// yield hands the processor to another goroutine — the minimal
// perturbation, essential on GOMAXPROCS=1 hosts where a sleep would
// stall the whole test.
func yield() { runtime.Gosched() }

// sleep holds for d, degrading to a yield when no duration is set.
func sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	time.Sleep(d)
}

// Config selects the faults to inject. Probabilities are in [0, 1];
// zero disables that fault class. The zero Config injects nothing.
type Config struct {
	// Seed fixes the fault pattern; the same seed and reader
	// registration order reproduce the same per-reader decisions.
	Seed uint64

	// EnterJitter is the probability that an Enter yields the
	// scheduler before entering, widening the race window between
	// readers and concurrent waiter snapshots.
	EnterJitter float64

	// ExitDelay is the probability that an Exit holds the critical
	// section open for ExitDelayDur before the inner Exit runs —
	// the "slow reader" a grace period must still wait out.
	ExitDelay    float64
	ExitDelayDur time.Duration

	// Stall is the probability that an Exit holds the critical
	// section open for StallDur — sized by the caller to exceed the
	// engine's StallConfig.Timeout, so the watchdog must fire.
	Stall    float64
	StallDur time.Duration

	// WaitJitter is the probability that a WaitForReaders(Ctx) call
	// yields before starting, perturbing waiter/reader interleavings.
	WaitJitter float64

	// WaitHold is the probability that a WaitForReaders(Ctx) call is
	// held for WaitHoldDur before the inner wait starts — the "slow
	// grace period" fault. Deferred-reclamation layers sit on top of
	// exactly this failure mode: retirements keep arriving while grace
	// periods crawl, so the backlog grows and the watermark machinery
	// must engage. A held WaitForReadersCtx honors ctx during the hold,
	// returning its error without starting the inner wait (the grace
	// period then never completed, which is the truthful outcome).
	WaitHold    float64
	WaitHoldDur time.Duration

	// OnlyReader, when non-zero, restricts the reader-side fault
	// classes (EnterJitter, ExitDelay, Stall) to the single reader with
	// that 1-based registration index; every other reader runs clean.
	// Combined with probability 1.0 this injects a *deterministic*
	// misbehaving reader — the blame demo uses it to plant one known
	// slow reader and check the flight recorder convicts exactly that
	// slot. Zero (the default) faults all readers.
	OnlyReader uint64
}

// Counts reports how many faults of each class an Engine injected.
type Counts struct {
	EnterJitters uint64
	ExitDelays   uint64
	Stalls       uint64
	WaitJitters  uint64
	WaitHolds    uint64
}

// params is a compiled fault mix: Config's probabilities turned into
// comparison thresholds. The whole struct swaps atomically on SetConfig
// so every fault decision sees one coherent mix (never a new
// probability paired with an old duration).
type params struct {
	enterThr uint64
	delayThr uint64
	stallThr uint64
	waitThr  uint64
	holdThr  uint64
	delayDur time.Duration
	stallDur time.Duration
	holdDur  time.Duration
	onlyIdx  uint64 // 0 = fault all readers
	cfg      Config // as given, for readback
}

func compile(cfg Config) *params {
	return &params{
		enterThr: threshold(cfg.EnterJitter),
		delayThr: threshold(cfg.ExitDelay),
		stallThr: threshold(cfg.Stall),
		waitThr:  threshold(cfg.WaitJitter),
		holdThr:  threshold(cfg.WaitHold),
		delayDur: cfg.ExitDelayDur,
		stallDur: cfg.StallDur,
		holdDur:  cfg.WaitHoldDur,
		onlyIdx:  cfg.OnlyReader,
		cfg:      cfg,
	}
}

// Engine is a fault-injecting core.RCU wrapper; construct with Wrap.
type Engine struct {
	inner core.RCU

	seed       uint64
	par        atomic.Pointer[params]
	readers    atomic.Uint64 // registration index stream
	waitSeq    atomic.Uint64 // wait-side decision stream
	holdSeq    atomic.Uint64 // wait-hold decision stream
	nJitter    atomic.Uint64
	nDelay     atomic.Uint64
	nStall     atomic.Uint64
	nWaitShake atomic.Uint64
	nWaitHold  atomic.Uint64
}

// Wrap returns inner behind the fault injector configured by cfg.
func Wrap(inner core.RCU, cfg Config) *Engine {
	e := &Engine{
		inner: inner,
		seed:  splitmix64(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
	e.par.Store(compile(cfg))
	return e
}

// SetConfig atomically replaces the live fault mix — the mechanism a
// storm Schedule scripts phases through. Operations in flight finish
// under the mix they observed. The decision streams and the seed are
// fixed at Wrap time (cfg.Seed is ignored here): the wait-side streams
// stay deterministic in the count of waits issued across re-configs,
// and per-reader streams advance only for fault classes enabled when
// the operation ran.
func (e *Engine) SetConfig(cfg Config) {
	cfg.Seed = e.par.Load().cfg.Seed
	e.par.Store(compile(cfg))
}

// Config returns the live fault mix (Seed as given to Wrap).
func (e *Engine) Config() Config { return e.par.Load().cfg }

// threshold converts a probability to a uint64 comparison bound.
func threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(math.MaxUint64))
}

// splitmix64 is the SplitMix64 output function (Steele et al.) — the
// standard seeding/stream generator, chosen for statelessness and
// determinism rather than quality at scale.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a per-reader SplitMix64 stream. Readers are single-goroutine
// by the Reader contract, so the state needs no synchronization.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return splitmix64(r.state)
}

// Name implements core.RCU.
func (e *Engine) Name() string { return "chaos(" + e.inner.Name() + ")" }

// MaxReaders implements core.RCU.
func (e *Engine) MaxReaders() int { return e.inner.MaxReaders() }

// Stats implements core.RCU.
func (e *Engine) Stats() obs.Snapshot { return e.inner.Stats() }

// Counts returns the faults injected so far.
func (e *Engine) Counts() Counts {
	return Counts{
		EnterJitters: e.nJitter.Load(),
		ExitDelays:   e.nDelay.Load(),
		Stalls:       e.nStall.Load(),
		WaitJitters:  e.nWaitShake.Load(),
		WaitHolds:    e.nWaitHold.Load(),
	}
}

// SetStallConfig arms the inner engine's stall watchdog, when it has
// one (every internal/core engine does).
func (e *Engine) SetStallConfig(cfg core.StallConfig) {
	if sc, ok := e.inner.(core.StallCarrier); ok {
		sc.SetStallConfig(cfg)
	}
}

// SetWaitTuning forwards a wait-side back-off discipline to the inner
// engine, when it has the hook (every internal/core engine does), so the
// adaptive controller can actuate engines through their chaos wrappers.
func (e *Engine) SetWaitTuning(t core.WaitTuning) {
	if wt, ok := e.inner.(core.WaitTuner); ok {
		wt.SetWaitTuning(t)
	}
}

// WaitTuning reports the inner engine's tuning (zero when the inner
// engine has no hook).
func (e *Engine) WaitTuning() core.WaitTuning {
	if wt, ok := e.inner.(core.WaitTuner); ok {
		return wt.WaitTuning()
	}
	return core.WaitTuning{}
}

// LiveReaders forwards the inner engine's registry gauge (0 when the
// inner engine has no hook), so live migration can drain a
// chaos-wrapped source like any other.
func (e *Engine) LiveReaders() int {
	if rc, ok := e.inner.(core.ReaderCounter); ok {
		return rc.LiveReaders()
	}
	return 0
}

// SetFlavor forwards the flavor token to the inner engine, when it
// carries one.
func (e *Engine) SetFlavor(f string) {
	if fc, ok := e.inner.(core.FlavorCarrier); ok {
		fc.SetFlavor(f)
	}
}

// FlavorToken reports the inner engine's flavor token (empty when the
// inner engine has no hook).
func (e *Engine) FlavorToken() string {
	if fc, ok := e.inner.(core.FlavorCarrier); ok {
		return fc.FlavorToken()
	}
	return ""
}

// StallConfigInForce forwards the inner engine's armed watchdog
// configuration, so the migrator's escalate/restore discipline works
// through the chaos wrapper.
func (e *Engine) StallConfigInForce() (core.StallConfig, bool) {
	if si, ok := e.inner.(core.StallInspector); ok {
		return si.StallConfigInForce()
	}
	return core.StallConfig{}, false
}

// Register implements core.RCU, wrapping the inner reader with the
// fault injector. Each reader gets its own decision stream keyed by
// its registration index.
func (e *Engine) Register() (core.Reader, error) {
	rd, err := e.inner.Register()
	if err != nil {
		return nil, err
	}
	idx := e.readers.Add(1)
	return &reader{
		e:   e,
		rd:  rd,
		idx: idx,
		r:   rng{state: splitmix64(e.seed ^ idx*0xbf58476d1ce4e5b9)},
	}, nil
}

// waitShake maybe-yields ahead of a grace-period wait. The decision
// stream is keyed by a shared atomic sequence: deterministic in the
// count of waits issued, independent of which goroutine issues them.
func (e *Engine) waitShake(p *params) {
	if p.waitThr == 0 {
		return
	}
	if splitmix64(e.seed^e.waitSeq.Add(1)*0x94d049bb133111eb) < p.waitThr {
		e.nWaitShake.Add(1)
		yield()
	}
}

// holdSpan decides whether this wait is held, from its own shared
// decision stream (deterministic in the count of waits issued), and
// returns the hold duration (which may be zero — degrades to a yield).
func (e *Engine) holdSpan(p *params) (time.Duration, bool) {
	if p.holdThr == 0 {
		return 0, false
	}
	if splitmix64(e.seed^e.holdSeq.Add(1)*0xbf58476d1ce4e5b9) >= p.holdThr {
		return 0, false
	}
	e.nWaitHold.Add(1)
	return p.holdDur, true
}

// WaitForReaders implements core.RCU.
func (e *Engine) WaitForReaders(p core.Predicate) {
	par := e.par.Load()
	e.waitShake(par)
	if d, held := e.holdSpan(par); held {
		sleep(d)
	}
	e.inner.WaitForReaders(p)
}

// WaitForReadersCtx implements core.RCU.
func (e *Engine) WaitForReadersCtx(ctx context.Context, p core.Predicate) error {
	par := e.par.Load()
	e.waitShake(par)
	if d, held := e.holdSpan(par); held {
		// Honor ctx during the hold: a deadline that lands mid-hold means
		// the grace period never completed, which is the truthful result.
		if d <= 0 {
			yield()
		} else {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	return e.inner.WaitForReadersCtx(ctx, p)
}

var _ core.RCU = (*Engine)(nil)

// reader injects faults around one inner reader. idx is the 1-based
// registration index Config.OnlyReader selects by.
type reader struct {
	e   *Engine
	rd  core.Reader
	idx uint64
	r   rng
}

// faultable reports whether this reader is in the fault mix's scope
// (all readers, or the one OnlyReader names).
func (c *reader) faultable(p *params) bool {
	return p.onlyIdx == 0 || p.onlyIdx == c.idx
}

// Enter implements core.Reader: maybe jitter, then enter.
func (c *reader) Enter(v core.Value) {
	p := c.e.par.Load()
	if p.enterThr != 0 && c.faultable(p) && c.r.next() < p.enterThr {
		c.e.nJitter.Add(1)
		yield()
	}
	c.rd.Enter(v)
}

// Exit implements core.Reader: maybe hold the section open (a plain
// delay, or a stall sized to outlast the watchdog timeout), then exit.
// The hold happens *before* the inner Exit, so from the engine's view
// the critical section genuinely stays open — waiters must wait it out
// and the stall watchdog must see it.
func (c *reader) Exit(v core.Value) {
	p := c.e.par.Load()
	if !c.faultable(p) {
		c.rd.Exit(v)
		return
	}
	if p.stallThr != 0 && c.r.next() < p.stallThr {
		c.e.nStall.Add(1)
		sleep(p.stallDur)
	} else if p.delayThr != 0 && c.r.next() < p.delayThr {
		c.e.nDelay.Add(1)
		sleep(p.delayDur)
	}
	c.rd.Exit(v)
}

// Do implements core.Reader via the chaos Enter/Exit, preserving the
// panic-safety guarantee.
func (c *reader) Do(v core.Value, fn func()) { core.DoCritical(c, v, fn) }

// Unregister implements core.Reader.
func (c *reader) Unregister() { c.rd.Unregister() }

var _ core.Reader = (*reader)(nil)
