package chaos

import (
	"context"
	"time"
)

// A Phase is one segment of a storm schedule: a fault mix the Engine
// applies for Dur, plus workload hints the campaign driver (a test or
// benchmark loop) interprets. The chaos Engine actuates only Cfg; the
// hints exist so one Schedule value can script both sides of a storm —
// the faults injected under the workload and the shape of the workload
// itself — without the driver hard-coding phase names.
type Phase struct {
	Name string
	Dur  time.Duration
	// Cfg is the fault mix for the span. Its Seed field is ignored:
	// the Engine keeps the seed it was wrapped with.
	Cfg Config

	// UpdateFlood asks the driver to run update/retire traffic at full
	// rate for the span (off: its steady background rate).
	UpdateFlood bool
	// ReaderChurn asks the driver to register and unregister readers
	// during the span instead of keeping a fixed set.
	ReaderChurn bool
}

// Schedule is an ordered storm script. Run plays it against an Engine;
// the campaign driver walks the same slice to pace its workload.
type Schedule []Phase

// Total returns the schedule's wall-clock length.
func (s Schedule) Total() time.Duration {
	var d time.Duration
	for _, p := range s {
		d += p.Dur
	}
	return d
}

// Run applies each phase's fault mix to e in order, holding it for the
// phase's duration, then clears the mix (zero Config — no faults).
// It returns early, clearing the mix, if ctx ends mid-schedule.
func (s Schedule) Run(ctx context.Context, e *Engine) {
	defer e.SetConfig(Config{})
	for _, p := range s {
		e.SetConfig(p.Cfg)
		if p.Dur <= 0 {
			continue
		}
		t := time.NewTimer(p.Dur)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
	}
}

// StallBursts scripts the "slow grace period" storm: bursts where a
// large fraction of waits are held for hold (the WaitHold fault —
// retirements keep arriving while grace periods crawl, so reclamation
// backlog and data age climb), separated by calm spans that let a
// controller's hysteresis ease back off. cycles repeats the
// burst/calm pair.
func StallBursts(burst, calm, hold time.Duration, cycles int) Schedule {
	var s Schedule
	for i := 0; i < cycles; i++ {
		s = append(s,
			Phase{
				Name: "stall-burst",
				Dur:  burst,
				Cfg:  Config{WaitHold: 0.9, WaitHoldDur: hold},
			},
			Phase{Name: "calm", Dur: calm},
		)
	}
	return s
}

// UpdateFlood scripts the backlog storm: the driver floods updates at
// full rate while exits are lightly delayed, so retirement outruns
// grace periods and the watermark/pacing machinery must engage.
func UpdateFlood(dur, calm time.Duration) Schedule {
	return Schedule{
		Phase{
			Name:        "update-flood",
			Dur:         dur,
			Cfg:         Config{ExitDelay: 0.2, ExitDelayDur: 200 * time.Microsecond},
			UpdateFlood: true,
		},
		Phase{Name: "calm", Dur: calm},
	}
}

// ReaderChurnSpikes scripts the registration storm: readers register
// and unregister throughout while Enter jitter widens the race windows
// a churning reader population opens against concurrent wait scans.
func ReaderChurnSpikes(spike, calm time.Duration, cycles int) Schedule {
	var s Schedule
	for i := 0; i < cycles; i++ {
		s = append(s,
			Phase{
				Name:        "reader-churn",
				Dur:         spike,
				Cfg:         Config{EnterJitter: 0.3, WaitJitter: 0.3},
				ReaderChurn: true,
			},
			Phase{Name: "calm", Dur: calm},
		)
	}
	return s
}

// Campaign concatenates the three storm families — stall bursts, an
// update flood, reader churn spikes — into the standard chaos campaign
// used by the self-tuning acceptance tests, scaled by unit (each
// active phase lasts 2·unit, each calm phase 1·unit, wait holds 4·unit).
func Campaign(unit time.Duration) Schedule {
	var s Schedule
	s = append(s, StallBursts(2*unit, unit, 4*unit, 2)...)
	s = append(s, UpdateFlood(2*unit, unit)...)
	s = append(s, ReaderChurnSpikes(2*unit, unit, 2)...)
	return s
}
