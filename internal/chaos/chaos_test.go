package chaos

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
)

// engines mirrors the core test harness's engine list: every flavor,
// freshly constructed, so the chaos schedules run against each wait
// protocol (timestamp scan, counter gates, phase flips, combining
// tree, per-reader generations).
func engines(maxReaders int) map[string]func() core.RCU {
	return map[string]func() core.RCU{
		"EER":    func() core.RCU { return core.NewEER(maxReaders, nil) },
		"D":      func() core.RCU { return core.NewD(maxReaders, 64) },
		"DEER":   func() core.RCU { return core.NewDEER(maxReaders, 16, nil) },
		"Time":   func() core.RCU { return core.NewTimeRCU(maxReaders, nil) },
		"URCU":   func() core.RCU { return core.NewURCU(maxReaders) },
		"Tree":   func() core.RCU { return core.NewTreeRCU(maxReaders) },
		"Dist":   func() core.RCU { return core.NewDistRCU(maxReaders) },
		"SRCU":   func() core.RCU { return core.NewSRCU(maxReaders) },
		"Packed": func() core.RCU { return core.NewPacked(maxReaders) },
	}
}

func scale(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func scaleDur(full, short time.Duration) time.Duration {
	if testing.Short() {
		return short
	}
	return full
}

// csRecord is the torture test's seqlock publication of one reader's
// critical sections (same discipline as the core safety harness): val
// is stable while seq is odd, the open marker is set only after Enter
// returns, the closed marker before Exit is invoked. Any wait that
// returns while a snapshotted covered seq is unchanged returned early.
type csRecord struct {
	val atomic.Uint64
	seq atomic.Uint64
	_   [48]byte
}

// TestChaosTortureSafety runs the safety property over every flavor
// behind a fixed-seed chaos schedule: Enter jitter widens the
// reader/waiter race windows, delayed Exits stretch critical sections
// across waiter scans, wait jitter perturbs waiter phase. The
// assertion is the hard one — zero early wait returns — plus a check
// that the schedule actually injected faults (a chaos test that
// injected nothing proves nothing).
func TestChaosTortureSafety(t *testing.T) {
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			e := Wrap(mk(), Config{
				Seed:         0x5eed_0001,
				EnterJitter:  0.10,
				ExitDelay:    0.05,
				ExitDelayDur: 100 * time.Microsecond,
				WaitJitter:   0.25,
			})
			const readers = 6
			records := make([]csRecord, readers)
			var stop atomic.Bool
			var wg sync.WaitGroup
			fail := make(chan string, 8)
			for id := 0; id < readers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rd, err := e.Register()
					if err != nil {
						fail <- "register: " + err.Error()
						return
					}
					defer rd.Unregister()
					rec := &records[id]
					for i := 0; !stop.Load(); i++ {
						v := core.Value((id*31 + i) % 24)
						rec.val.Store(uint64(v))
						rd.Enter(v)
						rec.seq.Add(1) // open
						rec.seq.Add(1) // closed
						rd.Exit(v)
						if i%32 == 0 {
							runtime.Gosched()
						}
					}
				}(id)
			}
			preds := []core.Predicate{
				core.All(),
				core.Singleton(7),
				core.Interval(4, 12),
			}
			for _, p := range preds {
				wg.Add(1)
				go func(p core.Predicate, waits int) {
					defer wg.Done()
					type snap struct {
						idx int
						seq uint64
					}
					var snaps []snap
					for n := 0; n < waits && !stop.Load(); n++ {
						snaps = snaps[:0]
						for i := range records {
							rec := &records[i]
							s := rec.seq.Load()
							if s&1 == 1 && p.Holds(core.Value(rec.val.Load())) {
								snaps = append(snaps, snap{i, s})
							}
						}
						if n%2 == 0 {
							e.WaitForReaders(p)
						} else if err := e.WaitForReadersCtx(context.Background(), p); err != nil {
							fail <- "uncancelled ctx wait failed: " + err.Error()
							return
						}
						for _, s := range snaps {
							if records[s.idx].seq.Load() == s.seq {
								fail <- "covered critical section survived a chaos-schedule wait"
								stop.Store(true)
								return
							}
						}
					}
				}(p, scale(150, 50))
			}
			timer := time.AfterFunc(scaleDur(250*time.Millisecond, 80*time.Millisecond),
				func() { stop.Store(true) })
			defer timer.Stop()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case msg := <-fail:
				stop.Store(true)
				<-done
				t.Fatal(msg)
			case <-done:
				select {
				case msg := <-fail:
					t.Fatal(msg)
				default:
				}
			case <-time.After(30 * time.Second):
				stop.Store(true)
				t.Fatal("chaos torture deadlocked (possible wait livelock)")
			}
			c := e.Counts()
			if c.EnterJitters+c.ExitDelays+c.WaitJitters == 0 {
				t.Fatalf("chaos schedule injected no faults: %+v", c)
			}
		})
	}
}

// TestChaosStallWatchdog injects a guaranteed stall (every Exit holds
// the section open well past the stall timeout) and asserts the
// watchdog fires on every flavor — with the inner engine's name and a
// positive elapsed — while the wait itself still completes once the
// stalled reader finally exits.
func TestChaosStallWatchdog(t *testing.T) {
	timeout := scaleDur(10*time.Millisecond, 5*time.Millisecond)
	stallFor := 6 * timeout
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			inner := mk()
			e := Wrap(inner, Config{Seed: 0x5eed_0002, Stall: 1.0, StallDur: stallFor})
			reports := make(chan core.StallReport, 4)
			e.SetStallConfig(core.StallConfig{
				Timeout:   timeout,
				RateLimit: time.Hour, // at most one report in this test
				OnStall:   func(r core.StallReport) { reports <- r },
			})
			rd, err := e.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			exited := make(chan struct{})
			go func() {
				rd.Enter(5)
				close(entered)
				rd.Exit(5) // chaos holds the section open for stallFor first
				close(exited)
				rd.Unregister()
			}()
			<-entered
			e.WaitForReaders(core.All()) // must block on the stalled section
			select {
			case rep := <-reports:
				if rep.Engine != inner.Name() {
					t.Errorf("report names engine %q, want %q", rep.Engine, inner.Name())
				}
				if rep.Predicate != "all" {
					t.Errorf("report names predicate %q, want %q", rep.Predicate, "all")
				}
				if rep.Elapsed < timeout {
					t.Errorf("report elapsed %v below the %v timeout", rep.Elapsed, timeout)
				}
			default:
				t.Fatal("stall watchdog did not fire for a section held past the timeout")
			}
			<-exited
			if got := e.Counts().Stalls; got != 1 {
				t.Errorf("injected stalls = %d, want 1", got)
			}
		})
	}
}

// TestChaosCtxDeadline is the acceptance scenario: with a reader
// parked inside a covered critical section, a deadline-bounded wait
// must return context.DeadlineExceeded within twice its deadline; the
// grace period did not complete, and once the reader exits a plain
// wait does. Run over every flavor behind wait jitter.
func TestChaosCtxDeadline(t *testing.T) {
	deadline := scaleDur(200*time.Millisecond, 100*time.Millisecond)
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			e := Wrap(mk(), Config{Seed: 0x5eed_0003, WaitJitter: 0.5})
			rd, err := e.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rd.Enter(5)
				close(entered)
				<-release
				rd.Exit(5)
				rd.Unregister()
			}()
			<-entered
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			t0 := time.Now()
			err = e.WaitForReadersCtx(ctx, core.Singleton(5))
			elapsed := time.Since(t0)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("wait on a parked covered reader returned %v, want DeadlineExceeded", err)
			}
			if elapsed > 2*deadline {
				t.Errorf("deadline-bounded wait took %v, want <= %v", elapsed, 2*deadline)
			}
			close(release)
			wg.Wait()
			// The reader is gone; an unbounded wait now completes.
			e.WaitForReaders(core.Singleton(5))
		})
	}
}

// TestChaosCtxExcludedCompletes is the other half of the acceptance
// scenario, for the predicate-aware engines: the same parked reader
// must NOT block a deadline-bounded wait whose predicate excludes its
// value — that wait completes with a nil error well inside the
// deadline.
func TestChaosCtxExcludedCompletes(t *testing.T) {
	prcuEngines := map[string]func() core.RCU{
		"EER":  func() core.RCU { return core.NewEER(16, nil) },
		"D":    func() core.RCU { return core.NewD(16, 1024) },
		"DEER": func() core.RCU { return core.NewDEER(16, 16, nil) },
	}
	for name, mk := range prcuEngines {
		t.Run(name, func(t *testing.T) {
			e := Wrap(mk(), Config{Seed: 0x5eed_0004, WaitJitter: 0.5})
			rd, err := e.Register()
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			go func() {
				rd.Enter(1000) // far from 5; no hash collision at 1024 buckets
				close(entered)
				<-release
				rd.Exit(1000)
				rd.Unregister()
			}()
			<-entered
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := e.WaitForReadersCtx(ctx, core.Singleton(5)); err != nil {
				t.Fatalf("excluding-predicate wait failed: %v (parked reader should not cover it)", err)
			}
			close(release)
		})
	}
}

// TestChaosDeterministicStreams pins the seeding contract: two engines
// wrapped with the same seed give reader k the same fault decisions.
func TestChaosDeterministicStreams(t *testing.T) {
	mk := func() *Engine {
		return Wrap(core.NewEER(4, nil), Config{
			Seed:         42,
			EnterJitter:  0.3,
			ExitDelay:    0.2,
			ExitDelayDur: 1, // negligible hold, still counted
		})
	}
	run := func(e *Engine) Counts {
		rd, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			rd.Enter(core.Value(i))
			rd.Exit(core.Value(i))
		}
		rd.Unregister()
		return e.Counts()
	}
	a, b := run(mk()), run(mk())
	if a != b {
		t.Fatalf("same seed, same operations, different fault counts: %+v vs %+v", a, b)
	}
	if a.EnterJitters == 0 || a.ExitDelays == 0 {
		t.Fatalf("fault stream suspiciously empty: %+v", a)
	}
}

// TestChaosReaderPanicSafety checks the wrapper preserves Do's
// guarantee: a panicking callback under chaos still exits the
// critical section, so a covering wait afterwards completes.
func TestChaosReaderPanicSafety(t *testing.T) {
	e := Wrap(core.NewEER(4, nil), Config{Seed: 7, EnterJitter: 1.0})
	rd, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic was swallowed")
			}
		}()
		rd.Do(5, func() { panic("reader bug") })
	}()
	done := make(chan struct{})
	go func() {
		e.WaitForReaders(core.Singleton(5))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wait blocked after a panicking Do: critical section leaked")
	}
	rd.Unregister()
}
