package pad

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s != CacheLineSize {
		t.Errorf("Uint64 size = %d, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Int64{}); s != CacheLineSize {
		t.Errorf("Int64 size = %d, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Bool{}); s != CacheLineSize {
		t.Errorf("Bool size = %d, want %d", s, CacheLineSize)
	}
}

func TestSliceElementsDoNotShareLines(t *testing.T) {
	s := make([]Uint64, 4)
	for i := 0; i+1 < len(s); i++ {
		a := uintptr(unsafe.Pointer(&s[i]))
		b := uintptr(unsafe.Pointer(&s[i+1]))
		if b-a < CacheLineSize {
			t.Fatalf("elements %d and %d are %d bytes apart", i, i+1, b-a)
		}
	}
}

func TestUint64Ops(t *testing.T) {
	var p Uint64
	if p.Load() != 0 {
		t.Fatal("zero value must read 0")
	}
	p.Store(7)
	if p.Load() != 7 {
		t.Fatal("store/load mismatch")
	}
	if p.Add(3) != 10 {
		t.Fatal("add result wrong")
	}
	if !p.CompareAndSwap(10, 20) || p.Load() != 20 {
		t.Fatal("CAS success path wrong")
	}
	if p.CompareAndSwap(10, 30) {
		t.Fatal("CAS must fail on stale expected value")
	}
}

func TestInt64Ops(t *testing.T) {
	var p Int64
	p.Store(-5)
	if p.Load() != -5 {
		t.Fatal("store/load mismatch")
	}
	if p.Add(-5) != -10 {
		t.Fatal("add result wrong")
	}
}

func TestBoolOps(t *testing.T) {
	var p Bool
	if p.Load() {
		t.Fatal("zero value must read false")
	}
	p.Store(true)
	if !p.Load() {
		t.Fatal("store/load mismatch")
	}
	if !p.CompareAndSwap(true, false) || p.Load() {
		t.Fatal("CAS wrong")
	}
}

func TestUint64StoreLoadRoundTrip(t *testing.T) {
	var p Uint64
	f := func(v uint64) bool {
		p.Store(v)
		return p.Load() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64ConcurrentAdd(t *testing.T) {
	var p Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := p.Load(); got != 80000 {
		t.Fatalf("concurrent adds lost updates: %d, want 80000", got)
	}
}
