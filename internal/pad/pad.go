// Package pad provides cache-line padded atomic cells.
//
// PRCU's per-reader bookkeeping (Algorithm 1's Nodes array, Algorithm 3's
// per-reader counter tables) is written on the reader fast path and read by
// concurrent wait-for-readers scans. Packing adjacent readers' state into a
// single cache line would introduce false sharing between readers that never
// conflict semantically, which is exactly the coherence ping-pong the paper's
// DEER-PRCU variant is designed to avoid. Every shared cell in this module is
// therefore padded out to a full cache line.
package pad

import "sync/atomic"

// CacheLineSize is the assumed coherence granule. 64 bytes is correct for
// every x86 part the paper evaluates on; modern ARM server parts use 64 or
// 128, and 128 would only waste memory, never correctness.
const CacheLineSize = 64

// Uint64 is a cache-line padded atomic uint64. The value sits at the start
// of the struct so the padding insulates it from the *following* neighbor;
// slices of Uint64 therefore place each value on its own line.
type Uint64 struct {
	v atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically stores v.
func (p *Uint64) Store(v uint64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap executes an atomic compare-and-swap.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Swap atomically stores v and returns the previous value.
func (p *Uint64) Swap(v uint64) uint64 { return p.v.Swap(v) }

// Uint32 is a cache-line padded atomic uint32. The packed-state engine
// stores a reader's entire per-slot state (active bit + epoch) in one of
// these, so the padding keeps adjacent readers' words off each other's
// coherence granule exactly as for Uint64.
type Uint32 struct {
	v atomic.Uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically loads the value.
func (p *Uint32) Load() uint32 { return p.v.Load() }

// Store atomically stores v.
func (p *Uint32) Store(v uint32) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Uint32) Add(delta uint32) uint32 { return p.v.Add(delta) }

// CompareAndSwap executes an atomic compare-and-swap.
func (p *Uint32) CompareAndSwap(old, new uint32) bool { return p.v.CompareAndSwap(old, new) }

// Int64 is a cache-line padded atomic int64.
type Int64 struct {
	v atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically stores v.
func (p *Int64) Store(v int64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// Bool is a cache-line padded atomic bool. (atomic.Bool wraps a uint32,
// hence the 4-byte accounting.)
type Bool struct {
	v atomic.Bool
	_ [CacheLineSize - 4]byte
}

// Load atomically loads the value.
func (p *Bool) Load() bool { return p.v.Load() }

// Store atomically stores v.
func (p *Bool) Store(v bool) { p.v.Store(v) }

// CompareAndSwap executes an atomic compare-and-swap.
func (p *Bool) CompareAndSwap(old, new bool) bool { return p.v.CompareAndSwap(old, new) }
