package stats

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median = %v, want 2", m)
	}
	if m := Median([]float64{5}); m != 5 {
		t.Fatalf("Median single = %v, want 5", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2 {
		t.Fatalf("Median even (nearest-rank) = %v, want 2", m)
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty median must panic")
		}
	}()
	Median(nil)
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("P0 = %v, want 10", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("P100 = %v, want 50", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileWithinData(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		p := float64(p8) / 255 * 100
		v := Percentile(raw, p)
		s := make([]float64, len(raw))
		copy(s, raw)
		sort.Float64s(s)
		return v >= s[0] && v <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v, want 2", m)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean([]float64{7}); math.Abs(g-7) > 1e-9 {
		t.Fatalf("GeoMean single = %v, want 7", g)
	}
}

func TestGeoMeanNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("geomean of zero must panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 4, 8, 100, 1000} {
		h.Record(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 1115 {
		t.Fatalf("Sum = %d, want 1115", h.Sum())
	}
	if m := h.Mean(); math.Abs(m-1115.0/6) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.ApproxPercentile(50) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramPercentileBuckets(t *testing.T) {
	var h Histogram
	// 90 samples around 100ns, 10 around 100000ns.
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(100000)
	}
	p50 := h.ApproxPercentile(50)
	if p50 < 64 || p50 > 256 {
		t.Fatalf("P50 = %v, want within the 100ns bucket", p50)
	}
	p99 := h.ApproxPercentile(99)
	if p99 < 64*1024 || p99 > 256*1024 {
		t.Fatalf("P99 = %v, want within the 100000ns bucket", p99)
	}
}

func TestHistogramNonPositiveSamples(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5)
	if h.Count() != 2 {
		t.Fatal("non-positive samples must still count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Record(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8*1000*1001/2 {
		t.Fatalf("Sum = %d", h.Sum())
	}
}
