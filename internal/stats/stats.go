// Package stats provides the small statistics toolkit the benchmark
// harness reports with: medians (the paper reports "the median of 5
// experiments"), percentiles, geometric means (Figure 9's summary column)
// and log-scale latency histograms.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Median returns the median of xs (the paper's headline statistic).
// It panics on an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0-100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty data")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p == 0 {
		return s[0]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty data")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty data")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Histogram is a concurrent-update log₂-bucketed histogram for latency
// samples in nanoseconds. Bucket i counts samples in [2^i, 2^(i+1)).
type Histogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Record adds one sample (non-positive samples count into bucket 0).
func (h *Histogram) Record(ns int64) {
	b := 0
	if ns > 0 {
		b = 63 - bits.LeadingZeros64(uint64(ns))
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean sample in nanoseconds (0 with no samples).
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// ApproxPercentile returns an estimate of the p-th percentile: the
// geometric midpoint of the bucket containing that rank.
func (h *Histogram) ApproxPercentile(p float64) float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(c)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			lo := math.Exp2(float64(i))
			return lo * math.Sqrt2
		}
	}
	return math.Exp2(63)
}

// Bucket is one non-empty histogram bucket: samples in [LoNs, HiNs).
type Bucket struct {
	LoNs  int64
	HiNs  int64
	Count int64
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = 1 << i
		}
		hi := int64(1) << (i + 1)
		if i == 63 {
			hi = math.MaxInt64
		}
		out = append(out, Bucket{LoNs: lo, HiNs: hi, Count: c})
	}
	return out
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
