// Corpus for the guardescape analyzer.
package guardescape

import (
	"prcu"
	"prcu/guard"
)

type node struct {
	val  uint64
	next guard.Cell[node]
}

var ch = make(chan *node, 1)

func useAfterExit(g *guard.R, v guard.Value, head *guard.Guarded[node]) uint64 {
	s := g.Enter(v)
	n := head.Load(s)
	g.Exit(s)
	return n.val // want "used after its scope's Exit"
}

func copyBeforeExit(g *guard.R, v guard.Value, head *guard.Guarded[node]) uint64 {
	s := g.Enter(v)
	n := head.Load(s)
	val := n.val
	g.Exit(s)
	return val
}

func escapeCapture(g *guard.R, v guard.Value, head *guard.Guarded[node]) {
	var leaked *node
	g.Read(v, func(s *guard.Scope) {
		leaked = head.Load(s) // want "assigned to leaked"
	})
	_ = leaked
}

// escapeCaptureAlias spells the scope parameter through the public
// alias (*prcu.Scope = *guard.Scope, a types.Alias): the analyzer must
// see through it, since migrated code writes the alias form.
func escapeCaptureAlias(g *prcu.GuardedReader, v prcu.Value, head *prcu.Guarded[node]) {
	var leaked *node
	g.Read(v, func(s *prcu.Scope) {
		leaked = head.Load(s) // want "assigned to leaked"
	})
	_ = leaked
}

func copyCapture(g *guard.R, v guard.Value, head *guard.Guarded[node]) uint64 {
	var val uint64
	g.Read(v, func(s *guard.Scope) {
		if n := head.Load(s); n != nil {
			val = n.val
		}
	})
	return val
}

func escapeSend(g *guard.R, v guard.Value, head *guard.Guarded[node]) {
	g.Read(v, func(s *guard.Scope) {
		ch <- head.Load(s) // want "sent on a channel"
	})
}

func returnOwned(g *guard.R, v guard.Value, head *guard.Guarded[node]) *node {
	s := g.Enter(v)
	defer g.Exit(s)
	return head.Load(s) // want "returned from the function"
}

func returnOwnedVar(g *guard.R, v guard.Value, head *guard.Guarded[node]) *node {
	s := g.Enter(v)
	n := head.Load(s)
	g.Exit(s)
	return n // want "returned from the function"
}

// helper receives its scope: the caller's section still covers the
// result, so returning a guarded pointer is the caller's business.
func helper(s *guard.Scope, head *guard.Guarded[node]) *node {
	return head.Load(s)
}

// laundered goes through the audited hatch; prcuvet trusts the auditor.
func laundered(g *guard.R, v guard.Value, head *guard.Guarded[node]) *node {
	s := g.Enter(v)
	n := guard.Escape(s, head.Load(s))
	g.Exit(s)
	return n
}

func chainWalk(g *guard.R, v guard.Value, head *guard.Guarded[node], k uint64) (val uint64, ok bool) {
	s := g.Enter(v)
	defer g.Exit(s)
	for n := head.Load(s); n != nil; n = n.next.Load(s) {
		if n.val == k {
			return n.val, true
		}
	}
	return 0, false
}
