// Corpus for the retireunlink analyzer.
package retireunlink

import (
	"prcu"
)

type node struct {
	val  uint64
	next prcu.Cell[node]
}

func freeNode(*node) {}

func stillReachable(ret *prcu.Retirer[node], p prcu.Predicate, head *prcu.Guarded[node]) {
	n := head.LoadLocked()
	ret.Retire(p, n) // want "no unlink/store"
}

func unlinkedFirst(ret *prcu.Retirer[node], p prcu.Predicate, head *prcu.Guarded[node]) {
	n := head.LoadLocked()
	head.Publish(n.next.LoadLocked())
	ret.Retire(p, n)
}

func pkgFuncStillReachable(rec *prcu.Reclaimer, p prcu.Predicate, head *prcu.Guarded[node]) {
	n := head.LoadLocked()
	prcu.Retire(rec, p, n, freeNode) // want "no unlink/store"
}

func pkgFuncUnlinked(rec *prcu.Reclaimer, p prcu.Predicate, head *prcu.Guarded[node]) {
	n := head.LoadLocked()
	head.Publish(nil)
	prcu.RetireBytes(rec, p, n, 0, freeNode)
}

func listUnlink(ret *prcu.Retirer[node], p prcu.Predicate, l *prcu.List[node], prev *node) {
	n := l.NextLocked(prev)
	l.Unlink(prev, n)
	ret.Retire(p, n)
}

// retireParam's argument was unlinked by the caller; with no visible
// binding the checker stays quiet.
func retireParam(ret *prcu.Retirer[node], p prcu.Predicate, n *node) {
	ret.Retire(p, n)
}

// retireFresh retires a never-published temporary; not an identifier, so
// nothing to correlate.
func retireFresh(rec *prcu.Reclaimer, p prcu.Predicate) {
	prcu.Retire(rec, p, &node{}, freeNode)
}

// swapBinding: the binding itself atomically unpublished the value.
func swapBinding(rec *prcu.Reclaimer, p prcu.Predicate, head *prcu.Guarded[node]) {
	old := head.Swap(&node{})
	prcu.Retire(rec, p, old, freeNode)
}

// rawAssignCounts: an assignment through a pointer target severs a path
// readers could be on; that is unlink evidence too.
func rawAssignCounts(ret *prcu.Retirer[node], p prcu.Predicate, slot **node) {
	n := *slot
	*slot = nil
	ret.Retire(p, n)
}
