// Corpus for the enterexit analyzer: every `want` comment marks a line
// prcuvet must flag; everything else must stay silent.
package enterexit

import (
	"prcu"
	"prcu/guard"
)

func leak(g *guard.R, v guard.Value) {
	s := g.Enter(v) // want "no matching Exit"
	_ = s
}

func balanced(g *guard.R, v guard.Value) {
	s := g.Enter(v)
	g.Exit(s)
}

func deferred(g *guard.R, v guard.Value) {
	s := g.Enter(v)
	defer g.Exit(s)
}

func deferredClosure(g *guard.R, v guard.Value) {
	s := g.Enter(v)
	defer func() { g.Exit(s) }()
}

func viaRead(g *guard.R, v guard.Value) {
	g.Read(v, func(s *guard.Scope) {})
}

func rawLeak(rd prcu.Reader) {
	rd.Enter(1) // want "no matching Exit"
}

func rawBalanced(rd prcu.Reader) {
	rd.Enter(1)
	defer rd.Exit(1)
}

func rawDo(rd prcu.Reader) {
	rd.Do(1, func() {})
}

func twoReaders(a, b *guard.R, v guard.Value) {
	sa := a.Enter(v)
	sb := b.Enter(v) // want "no matching Exit"
	a.Exit(sa)
	_ = sb
}

// scopeFactory returns the open scope: the caller owns the Exit, so the
// function itself is exempt.
func scopeFactory(g *guard.R, v guard.Value) *guard.Scope {
	return g.Enter(v)
}

func branchyButClosed(g *guard.R, v guard.Value, cond bool) {
	s := g.Enter(v)
	if cond {
		g.Exit(s)
		return
	}
	g.Exit(s)
}
