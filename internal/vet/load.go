package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Loading: prcuvet depends only on the standard library, so instead of
// golang.org/x/tools/go/packages it drives `go list -export -json -deps`
// to discover packages and their compiled export data, then type-checks
// each target package's sources with go/types and the gc importer. Export
// data for every dependency (stdlib included) comes from the build cache;
// `go list -export` compiles whatever is missing.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -json -deps patterns...` in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc importer's lookup function over the listed
// packages' export files.
func exportLookup(pkgs []*listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("prcuvet: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Load discovers the packages matching patterns (relative to dir) and
// type-checks each non-dependency match from source. Test files are not
// loaded in standalone mode; use `go vet -vettool` for test coverage.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("prcuvet: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("prcuvet: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info})
	}
	return out, nil
}

// LoadFiles type-checks one synthetic package from explicit source files,
// resolving imports through the export data of the packages matching
// depPatterns (run from dir, normally the repo root). This is the corpus
// harness's entry point: testdata sources are invisible to `go list`, but
// they import the real prcu and guard packages.
func LoadFiles(dir string, depPatterns []string, importPath string, filenames []string) (*Package, error) {
	listed, err := goList(dir, depPatterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("prcuvet: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// Analyze runs every analyzer over each package and returns the combined
// findings.
func Analyze(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info)...)
	}
	return diags
}
