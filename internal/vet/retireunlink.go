package vet

import (
	"go/ast"
	"go/token"
)

// RetireUnlinkAnalyzer flags retirements of values that were never
// unlinked. Retire hands a node to the reclaimer: after a covering grace
// period its memory is freed or recycled. That is only sound if the node
// became unreachable *before* the retirement — some store severed the last
// published path to it. A Retire with no store/unlink between the retired
// variable's definition and the call usually means the node is still
// reachable, and a reader entering after the grace period will walk into
// freed memory.
//
// The check is deliberately shallow: it looks, inside the same function,
// for any unlink evidence between the retired variable's binding and the
// Retire call — a call to a publishing method (Store, CompareAndSwap,
// Swap, Publish, Update, Unlink, Delete, Remove) or an assignment through
// memory (deref, field, or index target). If the variable's binding is not
// visible in the function (a parameter, or loaded elsewhere) the call is
// trusted.
var RetireUnlinkAnalyzer = &Analyzer{
	Name: "retireunlink",
	Doc:  "report Retire calls with no unlink/store between the value's definition and the retirement",
	Run:  runRetireUnlink,
}

// unlinkMethods are method names that count as publishing a structural
// change readers can observe.
var unlinkMethods = map[string]bool{
	"Store":          true,
	"CompareAndSwap": true,
	"Swap":           true,
	"Publish":        true,
	"Update":         true,
	"Unlink":         true,
	"Delete":         true,
	"Remove":         true,
	"Pop":            true,
}

func runRetireUnlink(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRetires(pass, fd.Body)
		}
	}
}

func checkRetires(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		retired := retiredArg(pass, call)
		if retired == nil {
			return true
		}
		id, ok := ast.Unparen(retired).(*ast.Ident)
		if !ok {
			return true // retiring a fresh expression: nothing to correlate
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		binding := bindingStmt(pass, body, obj, call.Pos())
		if binding == nil {
			return true // parameter or cross-function flow: trusted
		}
		if bindingUnlinks(binding) {
			// `old := head.Swap(new)` / `replaced := cell.Update(f)`: the
			// binding itself atomically unpublished the value.
			return true
		}
		if !unlinkBetween(pass, body, binding.End(), call.Pos()) {
			pass.Reportf(call.Pos(), "%s is retired with no unlink/store between its definition and Retire; a still-reachable node will be freed under readers", id.Name)
		}
		return true
	})
}

// retiredArg returns the expression being retired, or nil if call is not a
// retirement. Matches guard.Retire/RetireBytes (and the prcu re-exports,
// which resolve to the same objects) and guard.Retirer.Retire.
func retiredArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	obj := funcObj(pass.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	switch obj.Pkg().Path() {
	case guardPath, "prcu":
	default:
		return nil
	}
	switch obj.Name() {
	case "Retire", "RetireBytes":
		if sig := obj.Signature(); sig.Recv() != nil {
			// Retirer.Retire(p, v)
			if len(call.Args) >= 2 {
				return call.Args[1]
			}
			return nil
		}
		// Retire(rec, p, v, free) / RetireBytes(rec, p, v, extra, free)
		if len(call.Args) >= 3 {
			return call.Args[2]
		}
	}
	return nil
}

// bindingStmt finds the latest assignment before limit that binds obj.
func bindingStmt(pass *Pass, body *ast.BlockStmt, obj interface{ Pos() token.Pos }, limit token.Pos) *ast.AssignStmt {
	var latest *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if a.Pos() >= limit {
			return false
		}
		for _, lhs := range a.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.Info.ObjectOf(id) == obj && (latest == nil || a.End() > latest.End()) {
					latest = a
				}
			}
		}
		return true
	})
	return latest
}

// bindingUnlinks reports whether the binding's right-hand side is itself a
// publishing call (Swap, Update, ...) that atomically severed the value.
func bindingUnlinks(a *ast.AssignStmt) bool {
	for _, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if unlinkMethods[sel.Sel.Name] {
					return true
				}
			}
		}
	}
	return false
}

// unlinkBetween reports whether any statement strictly between from and to
// publishes a structural change.
func unlinkBetween(pass *Pass, body *ast.BlockStmt, from, to token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if x.Pos() <= from || x.Pos() >= to {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if unlinkMethods[sel.Sel.Name] {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			if x.Pos() <= from || x.Pos() >= to {
				return true
			}
			for _, lhs := range x.Lhs {
				switch ast.Unparen(lhs).(type) {
				case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
