// Package vet implements prcuvet, a static checker for misuse of the PRCU
// typed guard API that the type system alone cannot rule out. It is a
// self-contained miniature of the go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) built only on the standard library's go/ast, go/types and
// go/importer, so the repository stays dependency-free.
//
// Three analyzers ship today:
//
//   - enterexit: a guard.R.Enter (or raw Reader.Enter) with no matching
//     Exit anywhere in the same function wedges every future covering
//     grace period.
//   - guardescape: a pointer loaded through a *guard.Scope that outlives
//     the scope — used after Exit, assigned to a variable captured from
//     outside a Read closure, or sent on a channel — defeats the guard.
//     guard.Escape is the audited hatch that silences the check.
//   - retireunlink: a value passed to Retire/Retirer.Retire with no
//     unlink/store between its definition and the retirement is likely
//     still reachable; readers entering after the grace period would
//     touch freed memory.
//
// The guard package itself is exempt from enterexit and guardescape: it
// is the implementation being guarded, not a client.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns every prcuvet check, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{EnterExitAnalyzer, GuardEscapeAnalyzer, RetireUnlinkAnalyzer}
}

// RunAnalyzers applies every analyzer to one type-checked package and
// returns the findings sorted by position. A finding on a line carrying
// (or directly following) a `//prcuvet:ignore` comment is suppressed —
// the escape hatch for deliberate-misuse tests and audited exceptions.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Analyzers() {
		pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, analyzer: a, diags: &diags}
		a.Run(pass)
	}
	diags = suppressIgnored(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// suppressIgnored drops findings covered by a //prcuvet:ignore comment on
// the same line or the line immediately above.
func suppressIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ignored := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "prcuvet:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ignored[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					ignored[pos.Filename] = lines
				}
				lines[pos.Line] = true   // same-line trailing comment
				lines[pos.Line+1] = true // comment above the statement
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// --- shared type predicates -------------------------------------------------

const guardPath = "prcu/guard"

// isGuardScopePtr reports whether t is *guard.Scope. Aliases are
// resolved first: the public surface spells the type *prcu.Scope
// (`type Scope = guard.Scope`), which materializes as *types.Alias,
// and an explicitly annotated closure parameter carries that alias.
func isGuardScopePtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Scope" && obj.Pkg() != nil && obj.Pkg().Path() == guardPath
}

// funcObj resolves the called function/method object of a call, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	case *ast.IndexExpr: // instantiated generic: guard.Escape[T](...)
		return funcObj(info, &ast.CallExpr{Fun: f.X})
	case *ast.IndexListExpr:
		return funcObj(info, &ast.CallExpr{Fun: f.X})
	}
	return nil
}

// isGuardFunc reports whether obj is the named function or method from the
// guard package (methods match on their receiver's package).
func isGuardFunc(obj *types.Func, name string) bool {
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == guardPath
}

// isEscapeFunc matches the audited escape hatch under either of its names:
// guard.Escape or the prcu.GuardEscape re-export wrapper.
func isEscapeFunc(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case guardPath, "prcu":
	default:
		return false
	}
	return obj.Name() == "Escape" || obj.Name() == "GuardEscape"
}

// isReaderEnterExit reports whether obj is Enter or Exit from the guard
// layer or the raw core Reader interface (the prcu re-exports resolve to
// these same objects).
func isReaderEnterExit(obj *types.Func, name string) bool {
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case guardPath, "prcu/internal/core", "prcu":
		return true
	}
	return false
}

// baseIdent returns the root identifier of a chain like g, h.g, t.pool.x —
// used to correlate Enter and Exit receivers textually.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel // correlate on the innermost field name
		default:
			return nil
		}
	}
}

// recvString renders a receiver chain (g, h.g) for diagnostics.
func recvString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return recvString(x.X) + "." + x.Sel.Name
	default:
		return "receiver"
	}
}
