package vet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// go vet -vettool support. The go command drives a vet tool through a
// small protocol (the same one golang.org/x/tools' unitchecker speaks):
//
//   - `tool -V=full` must print "name version ..." for the build cache key;
//   - `tool -flags` must print a JSON array of tool flags (none here);
//   - `tool <unit>.cfg` analyzes one package unit described by a JSON
//     config: source files, the import map, and compiled export data for
//     every dependency, all prepared by the go command.
//
// Diagnostics go to stderr as file:line:col: message; the tool exits 2
// when it found anything, which go vet reports as a failure of the unit.

// unitConfig mirrors the fields of the go command's vet config that the
// checker consumes.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one vet unit from cfgPath, writing diagnostics to w.
// It returns the number of findings.
func RunUnit(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("prcuvet: parsing %s: %v", cfgPath, err)
	}
	// The go command expects the facts file regardless of outcome; prcuvet
	// computes no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("prcuvet: no package file for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("prcuvet: type-checking %s: %v", cfg.ImportPath, err)
	}

	diags := RunAnalyzers(fset, files, tpkg, info)
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}
