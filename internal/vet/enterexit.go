package vet

import (
	"go/ast"
	"go/types"
)

// EnterExitAnalyzer flags read-side sections that are opened and never
// closed. An Enter with no Exit on the same receiver anywhere in the same
// function (including defers and nested function literals) leaves the
// section open forever: every future grace period covering its value
// blocks, which wedges updaters and the reclaimer alike.
//
// The check is per function and per receiver object, so a function that
// opens sections on two different readers must close both. Functions that
// return a *guard.Scope are treated as deliberate scope factories and
// skipped — their caller owns the Exit.
var EnterExitAnalyzer = &Analyzer{
	Name: "enterexit",
	Doc:  "report guard.R.Enter / Reader.Enter calls with no matching Exit in the same function",
	Run:  runEnterExit,
}

func runEnterExit(pass *Pass) {
	if pass.Pkg.Path() == guardPath {
		return // the implementation package, not a client
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && (fd.Name.Name == "Enter" || fd.Name.Name == "Exit") {
				// Delegation wrappers implementing the Reader interface
				// (pooled readers, chaos injectors) forward Enter and Exit
				// in separate methods by design.
				continue
			}
			checkEnterExitFunc(pass, fd.Type, fd.Body)
		}
	}
}

// checkEnterExitFunc analyzes one function body as a unit. Nested function
// literals are searched for Exits (a defer closure counts) but their own
// Enters are their own problem: a literal that Enters must also Exit, so
// literals recurse as independent units.
func checkEnterExitFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	if scopeFactory(pass.Info, ftype) {
		return
	}

	type site struct {
		call *ast.CallExpr
		recv types.Object
		name string
	}
	var enters []site
	exits := map[types.Object]bool{}
	// exitNames is the fallback correlation: distinct objects sharing a
	// spelling (two range variables both named rd) close each other — the
	// per-object map alone would misread sibling loops as leaks.
	exitNames := map[string]bool{}

	var walk func(n ast.Node, topLevel bool)
	walk = func(n ast.Node, topLevel bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.DeferStmt:
				// A deferred call that receives the reader as an argument
				// is a closer by convention (`defer criticalExit(p, rd, v)`
				// — the allocation-free defer idiom); trust it.
				for _, arg := range x.Call.Args {
					if id := baseIdent(arg); id != nil {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							exits[obj] = true
						}
					}
				}
				return true
			case *ast.FuncLit:
				if topLevel {
					// Exits inside the literal still close the outer
					// section when the literal is deferred or invoked;
					// count them, and analyze the literal separately for
					// its own Enters.
					checkEnterExitFunc(pass, x.Type, x.Body)
					walkExitsOnly(pass, x.Body, exits, exitNames)
					return false
				}
				return false
			case *ast.CallExpr:
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := funcObj(pass.Info, x)
				recv := baseIdent(sel.X)
				if recv == nil {
					return true
				}
				recvObj := pass.Info.ObjectOf(recv)
				if recvObj == nil {
					return true
				}
				if isReaderEnterExit(obj, "Enter") {
					enters = append(enters, site{call: x, recv: recvObj, name: recvString(sel.X)})
				}
				if isReaderEnterExit(obj, "Exit") || isGuardFunc(obj, "Read") || isReaderDo(obj) {
					// Read and Do manage their own Exit; treat them as
					// closing nothing but never as leaks.
					exits[recvObj] = true
					exitNames[recvString(sel.X)] = true
				}
			}
			return true
		})
	}
	walk(body, true)

	for _, e := range enters {
		if !exits[e.recv] && !exitNames[e.name] {
			pass.Reportf(e.call.Pos(), "%s.Enter with no matching Exit in this function; the section never closes and covering grace periods block forever", e.name)
		}
	}
}

// walkExitsOnly records Exit receivers inside a nested literal without
// re-reporting its Enters.
func walkExitsOnly(pass *Pass, body *ast.BlockStmt, exits map[types.Object]bool, exitNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isReaderEnterExit(funcObj(pass.Info, call), "Exit") {
			return true
		}
		if recv := baseIdent(sel.X); recv != nil {
			if obj := pass.Info.ObjectOf(recv); obj != nil {
				exits[obj] = true
			}
			exitNames[recvString(sel.X)] = true
		}
		return true
	})
}

// isReaderDo matches the scoped-execution helpers that pair Enter and Exit
// internally: Reader.Do, ReaderPool.Critical.
func isReaderDo(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "prcu/internal/core", "prcu":
	default:
		return false
	}
	return obj.Name() == "Do" || obj.Name() == "Critical"
}

// scopeFactory reports whether ftype returns a *guard.Scope.
func scopeFactory(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Results == nil {
		return false
	}
	for _, r := range ftype.Results.List {
		if t := info.TypeOf(r.Type); t != nil && isGuardScopePtr(t) {
			return true
		}
	}
	return false
}
