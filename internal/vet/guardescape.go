package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardEscapeAnalyzer flags guarded pointers that outlive their scope.
// A pointer obtained through a *guard.Scope (Guarded.Load, Cell.Load,
// List.Find/Head/Next, or any call that takes the scope) is only valid
// while the scope is open. Three escapes defeat that:
//
//   - using the pointer after the scope's Exit in the same function;
//   - assigning it to a variable declared outside the function literal
//     that received the scope (a Read-closure capture);
//   - sending it on a channel.
//
// guard.Escape is the audited hatch: a pointer laundered through it is
// deliberately unguarded (validated-optimistic algorithms revalidate under
// locks) and is not tracked further.
//
// Helper functions that *receive* a scope as a parameter may return
// guarded pointers — the caller's scope still covers them — so returns are
// only flagged in the function that opened the scope itself.
var GuardEscapeAnalyzer = &Analyzer{
	Name: "guardescape",
	Doc:  "report guarded pointers escaping their read scope",
	Run:  runGuardEscape,
}

func runGuardEscape(pass *Pass) {
	if pass.Pkg.Path() == guardPath {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := &escapeWalker{pass: pass, reported: map[token.Pos]bool{}}
			e.unit(fd.Type, fd.Body)
		}
	}
}

type escapeWalker struct {
	pass     *Pass
	reported map[token.Pos]bool
}

// unitState is the per-function-unit dataflow state.
type unitState struct {
	fnPos, fnEnd token.Pos
	// scopes maps each *guard.Scope variable to the End position of its
	// Exit call; token.NoPos while still open. Scope parameters are
	// foreign (the caller owns Exit) and marked param.
	scopes map[types.Object]*scopeState
	// taint maps a variable to the scope it was loaded under.
	taint map[types.Object]types.Object
}

type scopeState struct {
	exitEnd token.Pos
	param   bool // received as parameter: returns of its pointers are the caller's business
}

// unit analyzes one function declaration or literal in source order.
func (e *escapeWalker) unit(ftype *ast.FuncType, body *ast.BlockStmt) {
	st := &unitState{
		fnPos:  ftype.Pos(),
		fnEnd:  body.End(),
		scopes: map[types.Object]*scopeState{},
		taint:  map[types.Object]types.Object{},
	}
	if ftype.Params != nil {
		for _, p := range ftype.Params.List {
			for _, name := range p.Names {
				if obj := e.pass.Info.Defs[name]; obj != nil && isGuardScopePtr(obj.Type()) {
					st.scopes[obj] = &scopeState{param: true}
				}
			}
		}
	}
	e.walk(body, st)
}

func (e *escapeWalker) walk(n ast.Node, st *unitState) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal is its own unit: its scope parameters (Read
			// closures) start fresh, and assignments to variables declared
			// outside it are the capture-escape case, detected because the
			// literal's unitState carries the literal's extent.
			e.unit(x.Type, x.Body)
			return false

		case *ast.AssignStmt:
			e.assign(x, st)
			return false

		case *ast.SendStmt:
			if scope := e.taintOf(x.Value, st); scope != nil {
				e.reportf(x.Value.Pos(), "guarded pointer sent on a channel escapes its read scope; copy the value out or use guard.Escape")
			}
			e.checkUses(x, st)
			return false

		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if scope := e.taintOf(res, st); scope != nil {
					if ss := st.scopes[scope]; ss != nil && !ss.param {
						e.reportf(res.Pos(), "guarded pointer returned from the function that opened its scope; it outlives the section — copy the value or use guard.Escape")
					}
				}
			}
			e.checkUses(x, st)
			return false

		case *ast.DeferStmt:
			// defer recv.Exit(s) closes the scope at function end.
			if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
				if isReaderEnterExit(funcObj(e.pass.Info, x.Call), "Exit") {
					_ = sel
					for _, arg := range x.Call.Args {
						if obj := identObj(e.pass.Info, arg); obj != nil {
							if ss := st.scopes[obj]; ss != nil {
								ss.exitEnd = st.fnEnd
							}
						}
					}
					return false
				}
			}
			return true

		case *ast.CallExpr:
			e.call(x, st)
			e.checkUses(x, st)
			return false

		case *ast.Ident:
			e.checkUse(x, st)
			return true
		}
		return true
	})
}

// assign handles := and = statements: scope creation from Enter, taint
// propagation, and the capture-escape case.
func (e *escapeWalker) assign(a *ast.AssignStmt, st *unitState) {
	// Evaluate RHS first (use-after-exit checks apply to it too).
	for _, rhs := range a.Rhs {
		e.checkUses(rhs, st)
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			e.call(call, st)
		}
	}

	// x := recv.Enter(v): a new scope owned by this unit.
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if isReaderEnterExit(funcObj(e.pass.Info, call), "Enter") {
				if len(a.Lhs) == 1 {
					if obj := identObj(e.pass.Info, a.Lhs[0]); obj != nil && isGuardScopePtr(obj.Type()) {
						st.scopes[obj] = &scopeState{}
						return
					}
				}
			}
		}
	}

	// Parallel assignment taint transfer. Multi-value calls (v, ok := ...)
	// taint every pointer-typed LHS from the call's scope.
	var rhsScopes []types.Object
	if len(a.Rhs) == len(a.Lhs) {
		for _, rhs := range a.Rhs {
			rhsScopes = append(rhsScopes, e.taintOf(rhs, st))
		}
	} else if len(a.Rhs) == 1 {
		s := e.taintOf(a.Rhs[0], st)
		for range a.Lhs {
			rhsScopes = append(rhsScopes, s)
		}
	}
	for i, lhs := range a.Lhs {
		var scope types.Object
		if i < len(rhsScopes) {
			scope = rhsScopes[i]
		}
		obj := identObj(e.pass.Info, lhs)
		if obj == nil {
			continue // *p = x, s.f = x: stores through memory, not tracked
		}
		if scope != nil && !pointerish(obj.Type()) {
			scope = nil
		}
		if scope != nil && (obj.Pos() < st.fnPos || obj.Pos() > st.fnEnd) {
			e.reportf(lhs.Pos(), "guarded pointer assigned to %s, declared outside this scope's function; it outlives the section — copy the value or use guard.Escape", obj.Name())
			continue
		}
		if scope != nil {
			st.taint[obj] = scope
		} else {
			delete(st.taint, obj)
		}
	}
}

// call records Exit positions and checks arguments of ordinary calls.
func (e *escapeWalker) call(call *ast.CallExpr, st *unitState) {
	if isReaderEnterExit(funcObj(e.pass.Info, call), "Exit") {
		for _, arg := range call.Args {
			if obj := identObj(e.pass.Info, arg); obj != nil {
				if ss := st.scopes[obj]; ss != nil {
					ss.exitEnd = call.End()
				}
			}
		}
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			e.unit(lit.Type, lit.Body)
		}
	}
}

// taintOf returns the scope a value derives from, or nil if unguarded.
func (e *escapeWalker) taintOf(expr ast.Expr, st *unitState) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := e.pass.Info.ObjectOf(x)
		if obj == nil {
			return nil
		}
		return st.taint[obj]
	case *ast.CallExpr:
		obj := funcObj(e.pass.Info, x)
		if isEscapeFunc(obj) {
			return nil // the audited hatch: result is deliberately unguarded
		}
		// A call that receives an open scope returns guarded data; only
		// pointer-shaped results carry the taint.
		var scope types.Object
		for _, arg := range x.Args {
			if aobj := identObj(e.pass.Info, arg); aobj != nil {
				if _, ok := st.scopes[aobj]; ok {
					scope = aobj
					break
				}
			}
		}
		if scope == nil {
			return nil
		}
		if t := e.pass.Info.TypeOf(x); t != nil && !anyPointerish(t) {
			return nil
		}
		return scope
	case *ast.SelectorExpr:
		// Field selection keeps the taint only while the result is still a
		// pointer into the structure; copying a scalar out is the blessed
		// pattern.
		base := e.taintOf(x.X, st)
		if base == nil {
			return nil
		}
		if t := e.pass.Info.TypeOf(x); t != nil && !pointerish(t) {
			return nil
		}
		return base
	case *ast.IndexExpr:
		base := e.taintOf(x.X, st)
		if base == nil {
			return nil
		}
		if t := e.pass.Info.TypeOf(x); t != nil && !pointerish(t) {
			return nil
		}
		return base
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return e.taintOf(x.X, st)
		}
		return nil
	case *ast.StarExpr:
		// Dereferencing copies the pointee; a non-pointer copy is clean.
		base := e.taintOf(x.X, st)
		if base == nil {
			return nil
		}
		if t := e.pass.Info.TypeOf(x); t != nil && !pointerish(t) {
			return nil
		}
		return base
	}
	return nil
}

// checkUses runs the use-after-exit check over every identifier in n.
func (e *escapeWalker) checkUses(n ast.Node, st *unitState) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			e.unit(lit.Type, lit.Body)
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			e.checkUse(id, st)
		}
		return true
	})
}

// checkUse reports a tainted identifier used after its scope's Exit.
func (e *escapeWalker) checkUse(id *ast.Ident, st *unitState) {
	obj := e.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	scope, ok := st.taint[obj]
	if !ok {
		return
	}
	ss := st.scopes[scope]
	if ss == nil || ss.exitEnd == token.NoPos || ss.exitEnd >= st.fnEnd {
		return
	}
	if id.Pos() > ss.exitEnd {
		e.reportf(id.Pos(), "%s is a guarded pointer used after its scope's Exit; revalidate under a lock via guard.Escape or copy the value before Exit", id.Name)
	}
}

func (e *escapeWalker) reportf(pos token.Pos, format string, args ...any) {
	if e.reported[pos] {
		return
	}
	e.reported[pos] = true
	e.pass.Reportf(pos, format, args...)
}

// identObj resolves an expression to the object of its identifier, seeing
// through parens; selector chains resolve to the terminal field.
func identObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// pointerish reports whether values of t are pointers into shared
// structure (pointer, or anything containing one at top level we track:
// plain pointers only — maps/slices/chans of guarded nodes are exotic
// enough to leave to guardescape's channel rule).
func pointerish(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		// A type parameter's underlying is its constraint interface; do
		// not let that read as "pointer". Instantiations with pointer
		// arguments are the instantiating package's concern.
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Slice:
		return pointerish(u.Elem())
	case *types.Interface:
		return true
	default:
		return false
	}
}

// anyPointerish reports whether a (possibly tuple) result type carries a
// pointer.
func anyPointerish(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if pointerish(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return pointerish(t)
}
