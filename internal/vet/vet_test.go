package vet

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the corpus expectation syntax: `// want "pattern"` at the
// end of the line prcuvet must flag. The pattern is a regexp matched
// against the diagnostic message, analysistest-style.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// repoRoot returns the module root (two levels up from internal/vet).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// parseWants scans a corpus file for expectations, keyed by line number.
func parseWants(t *testing.T, filename string) map[int]string {
	t.Helper()
	f, err := os.Open(filename)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := map[int]string{}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
			wants[line] = m[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestCorpus type-checks every testdata package against the real prcu and
// guard export data and demands an exact match between the analyzers'
// findings and the `want` annotations: nothing missed, nothing extra.
func TestCorpus(t *testing.T) {
	root := repoRoot(t)
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no corpus packages under testdata/src")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no corpus files in %s (%v)", dir, err)
			}
			var abs []string
			wants := map[string]map[int]string{} // file base -> line -> pattern
			for _, f := range files {
				a, err := filepath.Abs(f)
				if err != nil {
					t.Fatal(err)
				}
				abs = append(abs, a)
				wants[filepath.Base(f)] = parseWants(t, f)
			}
			importPath := "prcu/internal/vet/testdata/src/" + filepath.Base(dir)
			pkg, err := LoadFiles(root, []string{"prcu", "prcu/guard"}, importPath, abs)
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			diags := RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)

			matched := map[string]map[int]bool{}
			for _, d := range diags {
				base := filepath.Base(d.Pos.Filename)
				pattern, ok := wants[base][d.Pos.Line]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				if !re.MatchString(d.Message) {
					t.Errorf("diagnostic at %s:%d does not match want %q: %s",
						base, d.Pos.Line, pattern, d.Message)
					continue
				}
				if matched[base] == nil {
					matched[base] = map[int]bool{}
				}
				matched[base][d.Pos.Line] = true
			}
			for base, lines := range wants {
				var missing []int
				for line := range lines {
					if !matched[base][line] {
						missing = append(missing, line)
					}
				}
				sort.Ints(missing)
				for _, line := range missing {
					t.Errorf("missing expected diagnostic at %s:%d (want %q)", base, line, lines[line])
				}
			}
		})
	}
}

// TestRepoClean is the zero-false-positive gate: prcuvet over every
// package of the repository itself must report nothing.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	root := repoRoot(t)
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := Analyze(pkgs)
	if len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "  %s\n", d)
		}
		t.Fatalf("prcuvet found %d issue(s) in the repository:\n%s", len(diags), b.String())
	}
}
