package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prcu/hashtable"
	"prcu/internal/stats"
	"prcu/internal/workload"
)

// Fig9 reproduces Figure 9: a hash table at load factor 4 is expanded
// while N readers perform uniform lookups. Reported per engine and reader
// count, normalized to Time RCU as in the paper: (a) lookup throughput and
// (b) expansion latency, plus the geometric-mean summary column.
func Fig9(cfg Config) error {
	engines := cfg.engines()
	names := engineNamesOf(engines)

	type point struct{ throughput, latency float64 }
	// results[engine][threadIdx]
	results := make([][]point, len(engines))
	for ei, e := range engines {
		results[ei] = make([]point, len(cfg.Threads))
		for ti, readers := range cfg.Threads {
			tp, lat, err := cfg.medianOfPair(func() (float64, float64, error) {
				return fig9Point(cfg, e, readers)
			})
			if err != nil {
				return err
			}
			results[ei][ti] = point{throughput: tp, latency: lat}
		}
		_ = e
	}

	// Normalize to Time RCU (column index found by name).
	baseIdx := -1
	for i, n := range names {
		if n == "Time RCU" {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		return fmt.Errorf("bench: Time RCU missing from engine list")
	}

	tpTbl := &table{
		title:   "Figure 9(a): lookup throughput during expansion",
		unit:    "percent of Time RCU (higher is better); last row is the geometric mean",
		columns: names,
	}
	latTbl := &table{
		title:   "Figure 9(b): table expansion latency",
		unit:    "percent of Time RCU (lower is better); last row is the geometric mean",
		columns: names,
	}
	geoTP := make([][]float64, len(engines))
	geoLat := make([][]float64, len(engines))
	for ti, readers := range cfg.Threads {
		tpRow := make([]float64, len(engines))
		latRow := make([]float64, len(engines))
		base := results[baseIdx][ti]
		for ei := range engines {
			tpRow[ei] = 100 * results[ei][ti].throughput / base.throughput
			latRow[ei] = 100 * results[ei][ti].latency / base.latency
			geoTP[ei] = append(geoTP[ei], tpRow[ei])
			geoLat[ei] = append(geoLat[ei], latRow[ei])
		}
		tpTbl.addRow(fmt.Sprint(readers), tpRow)
		latTbl.addRow(fmt.Sprint(readers), latRow)
	}
	tpGeo := make([]float64, len(engines))
	latGeo := make([]float64, len(engines))
	for ei := range engines {
		tpGeo[ei] = stats.GeoMean(geoTP[ei])
		latGeo[ei] = stats.GeoMean(geoLat[ei])
	}
	tpTbl.addRow("geomean", tpGeo)
	latTbl.addRow("geomean", latGeo)
	tpTbl.emit(cfg)
	latTbl.emit(cfg)
	return nil
}

// fig9Point builds a table of cfg.HashElements keys at load factor 4 and
// measures reader throughput while one expansion runs, along with the
// expansion's latency.
func fig9Point(cfg Config, e Engine, readers int) (throughput, latencyNs float64, err error) {
	elements := cfg.HashElements
	buckets := int(elements / 4) // load factor 4
	if buckets < 1 || buckets&(buckets-1) != 0 {
		return 0, 0, fmt.Errorf("bench: HashElements/4 must be a power of two, got %d", buckets)
	}
	keyRange := elements * 2

	r := e.New()
	m := hashtable.NewModulo(r, buckets)
	seed := workload.NewRNG(3)
	for n := uint64(0); n < elements; {
		if m.Insert(seed.Intn(keyRange), 0) {
			n++
		}
	}

	var (
		stop    atomic.Bool
		readOps atomic.Int64
		wg      sync.WaitGroup
		hErr    error
	)
	started := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, herr := m.NewHandle()
			if herr != nil {
				hErr = herr
				return
			}
			defer h.Close()
			if w == 0 {
				close(started)
			}
			rng := workload.NewRNG(uint64(w) + 11)
			ops := int64(0)
			for !stop.Load() {
				h.Contains(rng.Intn(keyRange))
				if ops++; ops%256 == 0 {
					runtime.Gosched()
				}
			}
			readOps.Add(ops)
		}(w)
	}
	<-started

	t0 := time.Now()
	m.Expand()
	expandLatency := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	if hErr != nil {
		return 0, 0, hErr
	}
	if verr := m.Validate(); verr != nil {
		return 0, 0, fmt.Errorf("bench: table invalid after expansion with %s: %w", r.Name(), verr)
	}
	tp := float64(readOps.Load()) / expandLatency.Seconds()
	return tp, float64(expandLatency.Nanoseconds()), nil
}
