package bench

import (
	"prcu"
	"prcu/citrus"
	"prcu/internal/lftree"
	"prcu/internal/opttree"
)

// citrusSet adapts a CITRUS tree to the Set interface.
type citrusSet struct {
	tree *citrus.Tree
}

// NewCitrusSet builds a CITRUS tree over the given engine and domain.
func NewCitrusSet(r prcu.RCU, d citrus.Domain) Set {
	return &citrusSet{tree: citrus.New(r, d)}
}

func (s *citrusSet) NewThread() (SetThread, error) {
	h, err := s.tree.NewHandle()
	if err != nil {
		return nil, err
	}
	return citrusThread{h: h}, nil
}

type citrusThread struct{ h *citrus.Handle }

func (t citrusThread) Contains(k uint64) bool  { return t.h.Contains(k) }
func (t citrusThread) Insert(k, v uint64) bool { return t.h.Insert(k, v) }
func (t citrusThread) Delete(k uint64) bool    { return t.h.Delete(k) }
func (t citrusThread) Close()                  { t.h.Close() }

// optSet adapts Opt-Tree (no per-thread state needed).
type optSet struct {
	tree *opttree.Tree
}

// NewOptTreeSet builds an Opt-Tree set.
func NewOptTreeSet() Set { return &optSet{tree: opttree.New()} }

func (s *optSet) NewThread() (SetThread, error) { return optThread{t: s.tree}, nil }

type optThread struct{ t *opttree.Tree }

func (t optThread) Contains(k uint64) bool  { return t.t.Contains(k) }
func (t optThread) Insert(k, v uint64) bool { return t.t.Insert(k, v) }
func (t optThread) Delete(k uint64) bool    { return t.t.Delete(k) }
func (t optThread) Close()                  {}

// lfSet adapts LF-Tree.
type lfSet struct {
	tree *lftree.Tree
}

// NewLFTreeSet builds an LF-Tree set.
func NewLFTreeSet() Set { return &lfSet{tree: lftree.New()} }

func (s *lfSet) NewThread() (SetThread, error) { return lfThread{t: s.tree}, nil }

type lfThread struct{ t *lftree.Tree }

func (t lfThread) Contains(k uint64) bool  { return t.t.Contains(k) }
func (t lfThread) Insert(k, v uint64) bool { return t.t.Insert(k, v) }
func (t lfThread) Delete(k uint64) bool    { return t.t.Delete(k) }
func (t lfThread) Close()                  {}
