package bench

import (
	"fmt"
	"time"

	"prcu/internal/workload"
)

// Fig6 reproduces Figure 6: on the small tree, (a)/(c) the percentage of
// total thread time spent inside wait-for-readers and (b)/(d) the latency
// of an individual wait-for-readers, for the read-dominated and
// write-dominated workloads. Every engine runs wrapped in the
// instrumenting proxy, which times each wait.
func Fig6(cfg Config) error {
	for _, mix := range []workload.Mix{workload.ReadDominated, workload.WriteDominated} {
		pctTbl := &table{
			title:   fmt.Sprintf("Figure 6: time spent in wait-for-readers, small tree, %s", mix.Name),
			unit:    "percent of total thread time",
			columns: engineNames(),
		}
		latTbl := &table{
			title:   fmt.Sprintf("Figure 6: wait-for-readers latency, small tree, %s", mix.Name),
			unit:    "nanoseconds per wait (mean)",
			columns: engineNames(),
		}
		for _, threads := range cfg.Threads {
			pctRow := make([]float64, 0, len(pctTbl.columns))
			latRow := make([]float64, 0, len(latTbl.columns))
			for _, e := range cfg.engines() {
				pct, lat, err := waitShare(cfg, e, mix, cfg.SmallKeys, threads)
				if err != nil {
					return err
				}
				pctRow = append(pctRow, pct)
				latRow = append(latRow, lat)
			}
			pctTbl.addRow(fmt.Sprint(threads), pctRow)
			latTbl.addRow(fmt.Sprint(threads), latRow)
		}
		pctTbl.emit(cfg)
		latTbl.emit(cfg)
	}
	return nil
}

func engineNames() []string {
	es := Engines()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.Name
	}
	return names
}

// waitShare runs one instrumented point and returns (percent of thread
// time inside waits, mean wait latency in ns).
func waitShare(cfg Config, e Engine, mix workload.Mix, keys uint64, threads int) (float64, float64, error) {
	inst := NewInstrumented(e.New())
	s := NewCitrusSet(inst, e.Domain())
	if err := prefill(s, keys); err != nil {
		return 0, 0, err
	}
	// Discard the waits issued during prefill.
	inst.ResetWaits()
	ths := make([]SetThread, threads)
	for i := range ths {
		th, err := s.NewThread()
		if err != nil {
			return 0, 0, err
		}
		ths[i] = th
	}
	res := workload.Run(threads, cfg.Duration, func(w int, rng *workload.RNG) int {
		th := ths[w]
		k := rng.Intn(keys)
		switch mix.Pick(rng) {
		case workload.OpContains:
			th.Contains(k)
		case workload.OpInsert:
			th.Insert(k, k)
		default:
			th.Delete(k)
		}
		return 1
	})
	for _, th := range ths {
		th.Close()
	}
	totalThreadNs := float64(threads) * float64(res.Elapsed/time.Nanosecond)
	pct := 100 * float64(inst.TotalWaitNs()) / totalThreadNs
	return pct, inst.MeanWaitNs(), nil
}
