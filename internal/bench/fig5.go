package bench

import (
	"fmt"

	"prcu/internal/workload"
)

// Fig5 reproduces Figure 5: CITRUS tree throughput under each RCU engine,
// plus Opt-Tree, across the read-dominated / mixed / write-dominated
// workloads and the two tree sizes. (The paper implements LF-Tree too but
// omits it from the plots for legibility; pass includeLF to add it.)
func Fig5(cfg Config, includeLF bool) error {
	panels := []struct {
		label string
		mix   workload.Mix
		keys  uint64
	}{
		{"5(a) read-dominated, large tree", workload.ReadDominated, cfg.LargeKeys},
		{"5(b) read-dominated, small tree", workload.ReadDominated, cfg.SmallKeys},
		{"5(c) mixed, large tree", workload.Mixed, cfg.LargeKeys},
		{"5(d) mixed, small tree", workload.Mixed, cfg.SmallKeys},
		{"5(e) write-dominated, large tree", workload.WriteDominated, cfg.LargeKeys},
		{"5(f) write-dominated, small tree", workload.WriteDominated, cfg.SmallKeys},
	}
	for _, p := range panels {
		if err := treeThroughputPanel(cfg, "Figure "+p.label, p.mix, p.keys, includeLF); err != nil {
			return err
		}
	}
	return nil
}

// Fig7 reproduces Figure 7: the read-only workload that exposes each
// engine's pure read-side overhead (rcu_enter/rcu_exit cost, §6.1
// "Read-only cost").
func Fig7(cfg Config, includeLF bool) error {
	if err := treeThroughputPanel(cfg, "Figure 7(a) read-only, large tree", workload.ReadOnly, cfg.LargeKeys, includeLF); err != nil {
		return err
	}
	return treeThroughputPanel(cfg, "Figure 7(b) read-only, small tree", workload.ReadOnly, cfg.SmallKeys, includeLF)
}

// treeThroughputPanel sweeps thread counts for every curve of one panel.
func treeThroughputPanel(cfg Config, title string, mix workload.Mix, keys uint64, includeLF bool) error {
	engines := cfg.engines()
	cols := make([]string, 0, len(engines)+2)
	for _, e := range engines {
		cols = append(cols, e.Name)
	}
	cols = append(cols, "Opt-Tree")
	if includeLF {
		cols = append(cols, "LF-Tree")
	}
	tbl := &table{
		title:   fmt.Sprintf("%s (key space %d, initial size %d)", title, keys, keys/2),
		unit:    "ops/second, median of " + fmt.Sprint(cfg.Runs),
		columns: cols,
	}
	for _, threads := range cfg.Threads {
		row := make([]float64, 0, len(cols))
		for _, e := range engines {
			v, err := cfg.medianOf(func() (float64, error) {
				s := NewCitrusSet(e.New(), e.Domain())
				if err := prefill(s, keys); err != nil {
					return 0, err
				}
				return runMix(s, mix, keys, threads, cfg.Duration)
			})
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		v, err := cfg.medianOf(func() (float64, error) {
			s := NewOptTreeSet()
			if err := prefill(s, keys); err != nil {
				return 0, err
			}
			return runMix(s, mix, keys, threads, cfg.Duration)
		})
		if err != nil {
			return err
		}
		row = append(row, v)
		if includeLF {
			v, err := cfg.medianOf(func() (float64, error) {
				s := NewLFTreeSet()
				if err := prefill(s, keys); err != nil {
					return 0, err
				}
				return runMix(s, mix, keys, threads, cfg.Duration)
			})
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		tbl.addRow(fmt.Sprint(threads), row)
	}
	tbl.emit(cfg)
	return nil
}
