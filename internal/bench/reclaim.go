package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/internal/workload"
)

// Reclaim measures what the bounded deferred-reclamation subsystem buys
// over the naive discipline of one WaitForReaders per retirement: N
// updater threads retire predicate-covered objects as fast as they can.
// Grace periods use the simulated-wait instrument from Figure 8 — each
// wait burns a fixed graceNs regardless of host scheduling — so the
// comparison is deterministic and isolates the quantity under test: how
// many grace periods each discipline pays for the same retirement
// stream. Reported per thread count: retirement throughput and grace
// periods per 1000 retirements, synchronous wait-per-retire versus a
// Reclaimer with batching and predicate coalescing. The second table is
// the subsystem's headline number — batching must cut grace periods
// well below the baseline's fixed 1000 per 1k.
func Reclaim(cfg Config) error {
	modes := []string{"sync wait/retire", "reclaimer"}

	tpTbl := &table{
		title:   "Deferred reclamation: retirement throughput",
		unit:    "retires/sec (higher is better); simulated grace periods",
		columns: modes,
	}
	gpTbl := &table{
		title:   "Deferred reclamation: grace periods per 1000 retires",
		unit:    "waits issued per 1k retirements (lower is better)",
		columns: modes,
	}

	for _, threads := range cfg.Threads {
		row := make([]float64, len(modes))
		gpRow := make([]float64, len(modes))
		for mi := range modes {
			batched := mi == 1
			tp, gp, err := cfg.medianOfPair(func() (float64, float64, error) {
				return reclaimPoint(cfg, threads, batched)
			})
			if err != nil {
				return err
			}
			row[mi] = tp
			gpRow[mi] = gp
		}
		tpTbl.addRow(fmt.Sprint(threads), row)
		gpTbl.addRow(fmt.Sprint(threads), gpRow)
	}

	tpTbl.emit(cfg)
	gpTbl.emit(cfg)
	return nil
}

// waitCounter wraps an engine to count grace periods started through it.
// The reclaimer's Graces() counter reports the same quantity for the
// batched mode; the wrapper makes the two modes comparable through one
// instrument.
type waitCounter struct {
	prcu.RCU
	waits atomic.Uint64
}

func (w *waitCounter) WaitForReaders(p prcu.Predicate) {
	w.waits.Add(1)
	w.RCU.WaitForReaders(p)
}

func (w *waitCounter) WaitForReadersCtx(ctx context.Context, p prcu.Predicate) error {
	w.waits.Add(1)
	return w.RCU.WaitForReadersCtx(ctx, p)
}

const (
	// reclaimKeys is the retirement key range: wide enough that
	// coalescing has real merging to do, narrow enough that predicates
	// in one batch overlap.
	reclaimKeys = 64

	// reclaimGraceNs is the simulated cost of one grace period —
	// microsecond scale, the floor for a wait that must examine live
	// readers (the real distributions are in the stats subcommand).
	reclaimGraceNs = 2000
)

// reclaimPoint measures one (threads, mode) point. Returns retirement
// throughput and grace periods per 1000 retirements.
func reclaimPoint(cfg Config, threads int, batched bool) (float64, float64, error) {
	eng := &waitCounter{RCU: prcu.NewSimulated(prcu.NewD(cfg.options()), reclaimGraceNs)}

	var rec *prcu.Reclaimer
	if batched {
		rec = prcu.NewReclaimer(eng, prcu.ReclaimConfig{
			MaxPending: 4096,
			Policy:     prcu.PolicyBlock,
			FlushDelay: 50 * time.Microsecond,
		})
	}

	res := workload.Run(threads, cfg.Duration, func(w int, rng *workload.RNG) int {
		k := rng.Intn(reclaimKeys)
		p := prcu.Singleton(k)
		if batched {
			rec.Retire(struct{}{}, p, 64, nil)
		} else {
			eng.WaitForReaders(p)
		}
		return 1
	})

	var waits uint64
	if batched {
		rec.Barrier()
		waits = rec.Graces()
		rec.Close()
	} else {
		waits = eng.waits.Load()
	}

	retired := float64(res.Ops)
	if retired == 0 {
		return 0, 0, nil
	}
	return res.Throughput(), float64(waits) * 1000 / retired, nil
}
