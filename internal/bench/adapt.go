package bench

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/internal/chaos"
)

// Adapt demonstrates the self-tuning controller under the standard
// chaos campaign (stall bursts, an update flood, reader churn spikes):
// the same storm runs twice against a D-PRCU engine whose reclaimer was
// deliberately misconfigured with a batching window far above the age
// envelope — once uncontrolled, once with an Autotuner sampling and
// actuating. A live line per refresh shows the mode ladder and the age
// and backlog gauges moving; the summary table is the envelope verdict:
// the uncontrolled run's max data age blows through the envelope, the
// controlled run's stays inside it.
func Adapt(cfg Config, total, refresh time.Duration) error {
	if total <= 0 {
		total = 10 * time.Second
	}
	if refresh <= 0 {
		refresh = time.Second
	}
	// The storm schedule fills the first ~3/8 of the run (15 campaign
	// units); the tail is calm so recovery is visible. The "wrong"
	// batching window outlasts the whole run; the envelope sits at a
	// third of it, and the unit is sized so the storm's longest wait
	// hold (4 units) plus the controller's reaction lag stays inside
	// the envelope once the controller has re-tuned pacing.
	unit := total / 40
	badPacing := total
	maxAge := total / 3

	cfg.printf("=== self-tuning: chaos campaign on d-prcu, %v/run, age envelope %v, misconfigured pacing %v ===\n",
		total, maxAge.Round(time.Millisecond), badPacing.Round(time.Millisecond))

	tbl := &table{
		title:   "Self-tuning controller: envelope verdict under the chaos campaign",
		unit:    "max observed vs envelope (ms); decisions = mode transitions",
		columns: []string{"max age ms", "age envelope ms", "backlog peak", "decisions"},
	}
	for _, controlled := range []bool{false, true} {
		label := "controller off"
		if controlled {
			label = "controller on"
		}
		res, err := adaptRun(cfg, controlled, total, refresh, unit, badPacing, maxAge)
		if err != nil {
			return err
		}
		tbl.addRow(label, []float64{
			float64(res.maxAge.Milliseconds()),
			float64(maxAge.Milliseconds()),
			float64(res.maxBacklog),
			float64(res.decisions),
		})
	}
	tbl.emit(cfg)
	return nil
}

type adaptResult struct {
	maxAge     time.Duration
	maxBacklog int
	decisions  uint64
}

// adaptRun plays the campaign once. The storm walker owns both the
// fault mix and the workload hints so they cannot drift; the sampler
// doubles as the live display.
func adaptRun(cfg Config, controlled bool, total, refresh, unit, badPacing, maxAge time.Duration) (adaptResult, error) {
	met := prcu.NewMetrics()
	inner, err := prcu.New(prcu.FlavorD, cfg.options())
	if err != nil {
		return adaptResult{}, err
	}
	eng := chaos.Wrap(inner, chaos.Config{Seed: 0x5eed_ad47})
	rec := prcu.NewReclaimer(eng, prcu.ReclaimConfig{
		Shards:     2,
		FlushDelay: badPacing,
		Metrics:    met,
	})

	var c *prcu.Autotuner
	if controlled {
		c = prcu.NewAutotuner(prcu.AutotuneConfig{
			Name:      "prcubench-adapt",
			Interval:  refresh / 4,
			Envelope:  prcu.AutotuneEnvelope{MaxAge: maxAge, MaxPending: 4096, Headroom: 0.35},
			Metrics:   met,
			Reclaimer: rec,
			Engines:   []prcu.RCU{eng},
			EaseAfter: 8,
		})
		c.Start()
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var flood, churn atomic.Bool

	sched := chaos.Campaign(unit)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer eng.SetConfig(chaos.Config{})
		for _, ph := range sched {
			eng.SetConfig(ph.Cfg)
			flood.Store(ph.UpdateFlood)
			churn.Store(ph.ReaderChurn)
			select {
			case <-time.After(ph.Dur):
			case <-ctx.Done():
				return
			}
		}
		flood.Store(false)
		churn.Store(false)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rec.Retire(struct{}{}, prcu.All(), 64, nil)
			d := 500 * time.Microsecond
			if flood.Load() {
				d = 50 * time.Microsecond
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var rd prcu.Reader
			for i := 0; ctx.Err() == nil; i++ {
				if rd == nil {
					var err error
					if rd, err = eng.Register(); err != nil {
						return
					}
				}
				v := prcu.Value((seed*31 + i) % 64)
				rd.Enter(v)
				rd.Exit(v)
				if churn.Load() {
					rd.Unregister()
					rd = nil
				}
				if i%64 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
			if rd != nil {
				rd.Unregister()
			}
		}(r)
	}

	var res adaptResult
	start := time.Now()
	next := start.Add(refresh)
	for time.Since(start) < total {
		if age := rec.OldestAge(); age > res.maxAge {
			res.maxAge = age
		}
		if b := rec.Pending(); b > res.maxBacklog {
			res.maxBacklog = b
		}
		if now := time.Now(); now.After(next) {
			next = now.Add(refresh)
			mode := "off"
			if c != nil {
				mode = c.Mode().String()
			}
			cfg.printf("t=%-6s mode=%-8s age=%-10s backlog=%-6d\n",
				time.Since(start).Round(time.Second), mode,
				rec.OldestAge().Round(time.Millisecond), rec.Pending())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if c != nil {
		res.decisions = c.State().Decisions
		c.Close()
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	if err := rec.CloseCtx(cctx); err != nil {
		return res, err
	}
	return res, nil
}
