package bench

import (
	"fmt"

	"prcu"
	"prcu/citrus"
	"prcu/internal/core"
	"prcu/internal/tsc"
	"prcu/internal/workload"
)

// Ablation sweeps the design parameters the paper fixes in §6 ("PRCU
// parameters") and the optimizations §4 calls out, on the workload where
// they matter most — the write-dominated small tree:
//
//   - D-PRCU counter-table size |C| (paper uses 1024): small tables
//     contend and collide, huge tables only pay cache footprint;
//   - DEER-PRCU per-reader node-array size (paper uses 16);
//   - D-PRCU optimistic waiting on/off (§4.2);
//   - the clock source behind the timestamp engines (TSC-analogue
//     monotonic clock vs the fetch-add logical clock, §4.1).
func Ablation(cfg Config) error {
	threads := cfg.maxThreads()
	mix := workload.WriteDominated
	keys := cfg.SmallKeys

	run := func(mk func() prcu.RCU, dom citrus.Domain) (float64, error) {
		return cfg.medianOf(func() (float64, error) {
			s := NewCitrusSet(mk(), dom)
			if err := prefill(s, keys); err != nil {
				return 0, err
			}
			return runMix(s, mix, keys, threads, cfg.Duration)
		})
	}

	// D-PRCU table size.
	{
		sizes := []int{16, 64, 256, 1024, 4096}
		tbl := &table{
			title:   "Ablation: D-PRCU counter-table size |C| (write-dominated, small tree)",
			unit:    fmt.Sprintf("ops/second at %d threads; paper default |C| = 1024", threads),
			columns: []string{"ops/sec"},
		}
		for _, size := range sizes {
			sz := size
			v, err := run(
				func() prcu.RCU { return core.NewD(0, sz) },
				citrus.CompressedDomain(uint64(sz)),
			)
			if err != nil {
				return err
			}
			tbl.addRow(fmt.Sprintf("|C|=%d", sz), []float64{v})
		}
		tbl.emit(cfg)
	}

	// DEER-PRCU nodes per reader.
	{
		sizes := []int{4, 16, 64}
		tbl := &table{
			title:   "Ablation: DEER-PRCU nodes per reader (write-dominated, small tree)",
			unit:    fmt.Sprintf("ops/second at %d threads; paper default 16", threads),
			columns: []string{"ops/sec"},
		}
		for _, size := range sizes {
			sz := size
			v, err := run(
				func() prcu.RCU { return core.NewDEER(0, sz, nil) },
				citrus.CompressedDomain(1024),
			)
			if err != nil {
				return err
			}
			tbl.addRow(fmt.Sprintf("nodes=%d", sz), []float64{v})
		}
		tbl.emit(cfg)
	}

	// D-PRCU optimistic waiting.
	{
		tbl := &table{
			title:   "Ablation: D-PRCU optimistic waiting (write-dominated, small tree)",
			unit:    fmt.Sprintf("ops/second at %d threads", threads),
			columns: []string{"ops/sec"},
		}
		for _, opt := range []struct {
			label  string
			budget int
		}{{"on", 128}, {"off", 0}} {
			budget := opt.budget
			v, err := run(
				func() prcu.RCU {
					d := core.NewD(0, 1024)
					d.SetOptimisticBudget(budget)
					return d
				},
				citrus.CompressedDomain(1024),
			)
			if err != nil {
				return err
			}
			tbl.addRow("optimistic="+opt.label, []float64{v})
		}
		tbl.emit(cfg)
	}

	// Clock source for the timestamp engines (EER here).
	{
		tbl := &table{
			title:   "Ablation: EER-PRCU clock source (write-dominated, small tree)",
			unit:    fmt.Sprintf("ops/second at %d threads; monotonic is the TSC analogue", threads),
			columns: []string{"ops/sec"},
		}
		clocks := []struct {
			label string
			mk    func() core.Clock
		}{
			{"monotonic", func() core.Clock { return tsc.NewMonotonic() }},
			{"logical (fetch-add)", func() core.Clock { return tsc.NewLogical() }},
		}
		for _, c := range clocks {
			mkClock := c.mk
			v, err := run(
				func() prcu.RCU { return core.NewEER(0, mkClock()) },
				citrus.FuncDomain(),
			)
			if err != nil {
				return err
			}
			tbl.addRow(c.label, []float64{v})
		}
		tbl.emit(cfg)
	}
	return nil
}
