package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"prcu/internal/obs"
	"prcu/internal/workload"
)

// monitorRow is one engine's line of the live table: its collector and
// the previous tick's snapshot the next window is computed against.
type monitorRow struct {
	name string
	m    *obs.Metrics
	prev obs.Snapshot
}

// Monitor runs the mixed small-tree workload on every engine
// concurrently for total, rendering a live table of windowed rates
// (obs.Delta between refresh ticks) to cfg.Out: waits/s, section
// entries/s, windowed selectivity, wait p50/p99, section p50 and the
// reclamation backlog. Engines registered in the export plane after the
// monitor started (a migration target wired up mid-run, say) are
// adopted as new rows on the next tick. On a terminal the table redraws
// in place — re-homing by the previous block's height and clearing to
// the end of the screen, so a changing row count cannot leave stale
// lines — with the name column clamped so narrow terminals don't wrap.
// On a pipe each tick appends a block. Engines with an armed flight
// recorder additionally get a blame line naming their top offender
// slots. The engines' collectors are also registered in the export
// plane, so a -serve listener exposes the same run on /metrics while
// the monitor renders it.
func Monitor(cfg Config, total, refresh time.Duration) error {
	cfg.Observe = true
	if refresh <= 0 {
		refresh = time.Second
	}
	engines := cfg.engines()
	threads := cfg.maxThreads()
	cfg.printf("=== live monitor: mixed workload, small tree, %d threads/engine, %v total, %v refresh ===\n",
		threads, total, refresh)

	rows := make([]*monitorRow, 0, len(engines))
	var wg sync.WaitGroup
	errs := make(chan error, len(engines))
	for _, e := range engines {
		r := e.New()
		m := obs.Registered(r.Name())
		if m == nil {
			return fmt.Errorf("bench: engine %s did not register metrics", e.Name)
		}
		m.SetSectionSampleShift(4)
		s := NewCitrusSet(r, e.Domain())
		if err := prefill(s, cfg.SmallKeys); err != nil {
			return err
		}
		m.Reset() // drop prefill-phase traffic
		rows = append(rows, &monitorRow{name: e.Name, m: m})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := runMix(s, workload.Mixed, cfg.SmallKeys, threads, total); err != nil {
				errs <- err
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(refresh)
	defer ticker.Stop()
	start, printed := time.Now(), 0
	last := start
	live := isTerminal(cfg.Out)
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-ticker.C:
		}
		rows = adoptNewEngines(rows)
		if printed > 0 && live {
			// Re-home by the *previous* block's height and clear to the end
			// of the screen: adopted engines and blame lines change the row
			// count between ticks, and a bare cursor-up would misalign or
			// leave stale tail lines.
			cfg.printf("\033[%dA\033[J", printed)
		}
		now := time.Now()
		printed = renderMonitor(cfg, rows, now.Sub(start), now.Sub(last))
		last = now
	}
	select {
	case err := <-errs:
		return err
	default:
	}
	cfg.printf("\nmonitored %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// adoptNewEngines appends a row for every engine registered in the
// export plane since the last tick, so a monitor started before (say) a
// live migration still shows the target engine once it is wired up.
func adoptNewEngines(rows []*monitorRow) []*monitorRow {
	known := make(map[string]bool, len(rows))
	for _, r := range rows {
		known[r.name] = true
	}
	for _, name := range obs.RegisteredNames() {
		if known[name] {
			continue
		}
		if m := obs.Registered(name); m != nil {
			rows = append(rows, &monitorRow{name: name, m: m})
		}
	}
	return rows
}

// renderMonitor prints one refresh of the rate table — each row is the
// window since the previous tick — and returns the number of lines
// written (for in-place redraw). The name column is clamped to its
// header width so long engine names cannot wrap a narrow terminal and
// break the in-place redraw arithmetic.
func renderMonitor(cfg Config, rows []*monitorRow, elapsed, window time.Duration) int {
	cfg.printf("%-11.11s %10s %12s %6s %10s %10s %10s %8s\n",
		fmt.Sprintf("t=%s", elapsed.Round(time.Second)),
		"waits/s", "enters/s", "sel", "wait p50", "wait p99", "sect p50", "backlog")
	printed := 1
	for _, r := range rows {
		cur := r.m.Snapshot()
		rt := obs.Delta(r.prev, cur, window)
		r.prev = cur
		cfg.printf("%-11.11s %10s %12s %6.3f %10s %10s %10s %8d\n",
			r.name,
			formatValue(rt.WaitsPerSec), formatValue(rt.EntersPerSec), rt.Selectivity,
			fmtMonNs(rt.WaitP50Ns), fmtMonNs(rt.WaitP99Ns), fmtMonNs(rt.SectionP50Ns),
			rt.ReclaimBacklog)
		printed++
		if len(cur.BlameTop) > 0 {
			line := "  blame:"
			for i, e := range cur.BlameTop {
				if i >= 3 {
					break
				}
				line += fmt.Sprintf(" slot %d %s/%d", e.Slot,
					fmtMonNs(float64(e.TotalNs)), e.Samples)
			}
			cfg.printf("%.76s\n", line)
			printed++
		}
	}
	return printed
}

// fmtMonNs renders a nanosecond quantity at a human scale ("-" when the
// window recorded no samples).
func fmtMonNs(ns float64) string {
	switch {
	case ns == 0:
		return "-"
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func isTerminal(w any) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
