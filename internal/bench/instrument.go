package bench

import (
	"time"

	"prcu"
	"prcu/internal/stats"
)

// InstrumentedRCU wraps an engine and records the latency of every
// WaitForReaders call — the raw material of Figure 6 (per-wait latency and
// total time spent waiting) and the calibration input for Figure 8's
// simulated-wait variants.
type InstrumentedRCU struct {
	inner prcu.RCU
	// Waits holds per-wait latencies in nanoseconds.
	Waits stats.Histogram
}

// NewInstrumented wraps inner.
func NewInstrumented(inner prcu.RCU) *InstrumentedRCU {
	return &InstrumentedRCU{inner: inner}
}

// Name implements prcu.RCU.
func (i *InstrumentedRCU) Name() string { return i.inner.Name() }

// MaxReaders implements prcu.RCU.
func (i *InstrumentedRCU) MaxReaders() int { return i.inner.MaxReaders() }

// Register implements prcu.RCU.
func (i *InstrumentedRCU) Register() (prcu.Reader, error) { return i.inner.Register() }

// WaitForReaders implements prcu.RCU, timing the inner wait.
func (i *InstrumentedRCU) WaitForReaders(p prcu.Predicate) {
	t0 := time.Now()
	i.inner.WaitForReaders(p)
	i.Waits.Record(time.Since(t0).Nanoseconds())
}

// MeanWaitNs returns the mean observed wait latency.
func (i *InstrumentedRCU) MeanWaitNs() float64 { return i.Waits.Mean() }

// TotalWaitNs returns the total nanoseconds spent inside WaitForReaders.
func (i *InstrumentedRCU) TotalWaitNs() int64 { return i.Waits.Sum() }
