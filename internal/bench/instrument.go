package bench

import (
	"context"
	"time"

	"prcu"
	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/stats"
)

// InstrumentedRCU wraps an engine and exposes the latency of its
// WaitForReaders calls — the raw material of Figure 6 (per-wait latency
// and total time spent waiting) and the calibration input for Figure 8's
// simulated-wait variants.
//
// When the engine carries the observability hooks (every internal/core
// engine does), the wait latencies come from the engine's own metrics —
// timestamps taken inside WaitForReaders, around exactly the
// grace-period machinery. Engines without hooks fall back to external
// timing of the whole call, the pre-observability behaviour.
type InstrumentedRCU struct {
	inner prcu.RCU
	// met is the metrics attached to inner, nil if inner is not a
	// core.MetricsCarrier.
	met *obs.Metrics
	// ext is the external-timing fallback histogram.
	ext stats.Histogram
}

// NewInstrumented wraps inner, attaching engine-internal metrics when
// the engine supports them.
func NewInstrumented(inner prcu.RCU) *InstrumentedRCU {
	i := &InstrumentedRCU{inner: inner}
	if c, ok := inner.(core.MetricsCarrier); ok {
		i.met = obs.New()
		c.SetMetrics(i.met)
	}
	return i
}

// Name implements prcu.RCU.
func (i *InstrumentedRCU) Name() string { return i.inner.Name() }

// MaxReaders implements prcu.RCU.
func (i *InstrumentedRCU) MaxReaders() int { return i.inner.MaxReaders() }

// Register implements prcu.RCU.
func (i *InstrumentedRCU) Register() (prcu.Reader, error) { return i.inner.Register() }

// Stats implements prcu.RCU, exposing the attached metrics.
func (i *InstrumentedRCU) Stats() obs.Snapshot {
	if i.met != nil {
		return i.met.Snapshot()
	}
	return i.inner.Stats()
}

// WaitForReaders implements prcu.RCU. With attached metrics the engine
// times itself; otherwise the call is timed here.
func (i *InstrumentedRCU) WaitForReaders(p prcu.Predicate) {
	if i.met != nil {
		i.inner.WaitForReaders(p)
		return
	}
	t0 := time.Now()
	i.inner.WaitForReaders(p)
	i.ext.Record(time.Since(t0).Nanoseconds())
}

// WaitForReadersCtx implements prcu.RCU. With attached metrics the
// engine times itself; otherwise the call is timed here (including
// cancelled waits — an aborted wait still spent that time blocking).
func (i *InstrumentedRCU) WaitForReadersCtx(ctx context.Context, p prcu.Predicate) error {
	if i.met != nil {
		return i.inner.WaitForReadersCtx(ctx, p)
	}
	t0 := time.Now()
	err := i.inner.WaitForReadersCtx(ctx, p)
	i.ext.Record(time.Since(t0).Nanoseconds())
	return err
}

// ResetWaits discards the wait latencies recorded so far (used to drop
// prefill-phase waits from a measurement).
func (i *InstrumentedRCU) ResetWaits() {
	if i.met != nil {
		i.met.Reset()
		return
	}
	i.ext.Reset()
}

// MeanWaitNs returns the mean observed wait latency.
func (i *InstrumentedRCU) MeanWaitNs() float64 {
	if i.met != nil {
		return i.met.Snapshot().WaitNs.MeanNs
	}
	return i.ext.Mean()
}

// TotalWaitNs returns the total nanoseconds spent inside WaitForReaders.
func (i *InstrumentedRCU) TotalWaitNs() int64 {
	if i.met != nil {
		return i.met.Snapshot().WaitNs.SumNs
	}
	return i.ext.Sum()
}
