package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/hashtable"
	"prcu/internal/stats"
	"prcu/internal/workload"
)

// Fig1 reproduces Figure 1, the paper's motivating measurement: the
// latency of a typical data structure operation (a hash table lookup at
// load factor 2, read-only workload) against the latency of a standard RCU
// wait-for-readers executing concurrently, as the reader count grows. The
// paper shows the wait costing up to 300x the lookup; the gap is the
// bottleneck PRCU removes.
func Fig1(cfg Config) error {
	tbl := &table{
		title:   "Figure 1: RCU wait-for-readers time vs hash op time",
		unit:    "nanoseconds (the paper plots cycles; at its 2.3 GHz, 1 ns ~ 2.3 cycles)",
		columns: []string{"Hash op", "RCU wait", "wait/op"},
	}
	for _, threads := range cfg.Threads {
		op, wait, err := cfg.medianOfPair(func() (float64, float64, error) {
			return fig1Point(cfg, threads)
		})
		if err != nil {
			return err
		}
		ratio := 0.0
		if op > 0 {
			ratio = wait / op
		}
		tbl.addRow(fmt.Sprint(threads), []float64{op, wait, ratio})
	}
	tbl.emit(cfg)
	return nil
}

// medianOfPair is medianOf for experiments that yield two numbers.
func (c Config) medianOfPair(f func() (float64, float64, error)) (float64, float64, error) {
	as := make([]float64, 0, c.Runs)
	bs := make([]float64, 0, c.Runs)
	for i := 0; i < c.Runs; i++ {
		a, b, err := f()
		if err != nil {
			return 0, 0, err
		}
		as = append(as, a)
		bs = append(bs, b)
	}
	return stats.Median(as), stats.Median(bs), nil
}

// fig1Point runs one thread count: N readers hammer lookups while a
// dedicated thread measures Time RCU wait-for-readers latency.
func fig1Point(cfg Config, threads int) (opNs, waitNs float64, err error) {
	const buckets = 1 << 12
	elements := uint64(buckets * 2) // load factor 2
	keyRange := elements * 2

	r := prcu.NewTimeRCU(cfg.options())
	m := hashtable.NewModulo(r, buckets)
	seed := workload.NewRNG(1)
	for n := uint64(0); n < elements; {
		if m.Insert(seed.Intn(keyRange), 0) {
			n++
		}
	}

	var (
		stop    atomic.Bool
		readOps atomic.Int64
		wg      sync.WaitGroup
		ready   sync.WaitGroup
	)
	ready.Add(threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, herr := m.NewHandle()
			if herr != nil {
				err = herr
				ready.Done()
				return
			}
			defer h.Close()
			ready.Done()
			rng := workload.NewRNG(uint64(w) + 7)
			ops := int64(0)
			for !stop.Load() {
				h.Contains(rng.Intn(keyRange))
				if ops++; ops%256 == 0 {
					runtime.Gosched()
				}
			}
			readOps.Add(ops)
		}(w)
	}

	ready.Wait()
	var waits stats.Histogram
	t0 := time.Now()
	for time.Since(t0) < cfg.Duration {
		w0 := time.Now()
		r.WaitForReaders(prcu.All())
		waits.Record(time.Since(w0).Nanoseconds())
		// Yield between waits so the measured readers actually run on
		// hosts with fewer cores than goroutines.
		runtime.Gosched()
	}
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return 0, 0, err
	}
	if readOps.Load() == 0 {
		return 0, 0, fmt.Errorf("bench: fig1 readers performed no lookups")
	}
	opNs = float64(threads) * float64(elapsed.Nanoseconds()) / float64(readOps.Load())
	return opNs, waits.Mean(), nil
}
