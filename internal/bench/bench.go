// Package bench regenerates the PRCU paper's evaluation (§6): one driver
// per figure, each printing the same rows and series the paper plots.
// Absolute numbers differ from the paper's 64-hardware-thread Opteron —
// especially on small hosts where goroutines interleave rather than run in
// parallel — but the comparisons the paper draws (which engine wins per
// workload, how wait-for-readers time collapses under PRCU, where the
// crossovers sit) are reproduced by the same experiment structure.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"prcu"
	"prcu/citrus"
	"prcu/internal/stats"
	"prcu/internal/workload"
)

// Config carries the global experiment parameters, a scaled-down-by-default
// version of §6.1's methodology (3-second runs, 5 repetitions, 64 threads,
// key spaces 2e4 and 2e6) that the prcubench CLI can dial back up.
type Config struct {
	Threads   []int         // thread counts to sweep (paper: 1..64)
	Duration  time.Duration // measurement window per point (paper: 3s)
	Runs      int           // repetitions; the median is reported (paper: 5)
	SmallKeys uint64        // small key space (paper: 2e4 -> 10K-node tree)
	LargeKeys uint64        // large key space (paper: 2e6 -> 1M-node tree)
	// HashElements is Figure 9's table population (paper: 1e6 at load
	// factor 4, key range twice the population). Must be a power of two.
	HashElements uint64
	Out          io.Writer
	// CSV, when non-nil, additionally receives every table in CSV form
	// for plotting.
	CSV io.Writer
	// JSON, when non-nil, additionally receives every table as one JSON
	// object per line (JSON Lines) for machine consumption.
	JSON io.Writer
	// Observe, when set, attaches a fresh metrics collector to every
	// engine the drivers construct and registers it in the export plane
	// under the engine's name, so a live listener (prcubench -serve, or
	// the monitor subcommand) can watch the run. Rebuilt engines rebind
	// their name, keeping one stable series per engine across sweep
	// points.
	Observe bool
}

// DefaultConfig returns parameters sized so the full suite completes in
// minutes on a laptop-class host.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Threads:      []int{1, 2, 4, 8, 16},
		Duration:     150 * time.Millisecond,
		Runs:         3,
		SmallKeys:    2e4,
		LargeKeys:    2e5,
		HashElements: 1 << 14,
		Out:          out,
	}
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// maxThreads returns the largest configured thread count.
func (c Config) maxThreads() int {
	m := 1
	for _, t := range c.Threads {
		if t > m {
			m = t
		}
	}
	return m
}

// Engine couples an RCU constructor with the citrus Domain that presents
// searches to it, mirroring the per-engine configuration of §6. The
// constructors take no sizing argument: the reader registry grows on
// demand, so a sweep never has to predict its thread count.
type Engine struct {
	Name   string
	New    func() prcu.RCU
	Domain func() citrus.Domain
}

// Engines returns the RCU lineup of the paper's figures, in their order,
// followed by the post-paper baselines — one entry per Flavors() flavor.
func Engines() []Engine { return Config{}.engines() }

// options returns the engine-construction options the drivers share.
// With Observe set, each call carries a fresh metrics collector, which
// construction auto-registers in the export plane under the engine's
// name.
func (c Config) options() prcu.Options {
	if !c.Observe {
		return prcu.Options{}
	}
	return prcu.Options{Metrics: prcu.NewMetrics()}
}

// engineSpec is the per-flavor benchmark configuration: the display name
// the figure drivers key on (fig8 excludes "Tree RCU", fig9 requires
// "Time RCU") and the citrus Domain presenting searches to the engine.
// Predicate-aware flavors get real domains; plain-RCU baselines get the
// wildcard domain, mirroring §6's per-engine setup.
type engineSpec struct {
	name   string
	domain func() citrus.Domain
}

func compressed1024() citrus.Domain { return citrus.CompressedDomain(1024) }

var engineSpecs = map[prcu.Flavor]engineSpec{
	prcu.FlavorEER:    {name: "EER-PRCU", domain: citrus.FuncDomain},
	prcu.FlavorD:      {name: "D-PRCU", domain: compressed1024},
	prcu.FlavorDEER:   {name: "DEER-PRCU", domain: compressed1024},
	prcu.FlavorTime:   {name: "Time RCU", domain: citrus.WildcardDomain},
	prcu.FlavorTree:   {name: "Tree RCU", domain: citrus.WildcardDomain},
	prcu.FlavorURCU:   {name: "URCU", domain: citrus.WildcardDomain},
	prcu.FlavorDist:   {name: "Dist RCU", domain: citrus.WildcardDomain},
	prcu.FlavorSRCU:   {name: "SRCU", domain: citrus.WildcardDomain},
	prcu.FlavorPacked: {name: "Packed RCU", domain: citrus.WildcardDomain},
}

// engines returns the benchmark lineup built with this config's options.
// It is derived from Flavors() so a new engine cannot silently miss the
// figures: a flavor without a benchmark spec is a hard failure, not a
// skipped row.
func (c Config) engines() []Engine {
	flavors := prcu.Flavors()
	out := make([]Engine, 0, len(flavors))
	for _, f := range flavors {
		spec, ok := engineSpecs[f]
		if !ok {
			panic(fmt.Sprintf("bench: flavor %q has no benchmark spec; add it to engineSpecs", f))
		}
		f := f
		out = append(out, Engine{
			Name:   spec.name,
			New:    func() prcu.RCU { return prcu.MustNew(f, c.options()) },
			Domain: spec.domain,
		})
	}
	return out
}

// Set abstracts the search trees under comparison (CITRUS under each RCU
// engine, Opt-Tree, LF-Tree) behind the benchmark's operation interface.
type Set interface {
	// NewThread returns a per-goroutine operation context.
	NewThread() (SetThread, error)
}

// SetThread is one worker's view of a Set.
type SetThread interface {
	Contains(k uint64) bool
	Insert(k, v uint64) bool
	Delete(k uint64) bool
	Close()
}

// prefill inserts distinct uniform keys until the set holds keyRange/2
// keys, the paper's initial condition.
func prefill(s Set, keyRange uint64) error {
	th, err := s.NewThread()
	if err != nil {
		return err
	}
	defer th.Close()
	rng := workload.NewRNG(0xfeedface)
	target := keyRange / 2
	for n := uint64(0); n < target; {
		if th.Insert(rng.Intn(keyRange), 0) {
			n++
		}
	}
	return nil
}

// runMix measures the throughput of one (set, mix, threads) point.
func runMix(s Set, mix workload.Mix, keyRange uint64, threads int, d time.Duration) (float64, error) {
	mix.Validate()
	ths := make([]SetThread, threads)
	for i := range ths {
		th, err := s.NewThread()
		if err != nil {
			for j := 0; j < i; j++ {
				ths[j].Close()
			}
			return 0, err
		}
		ths[i] = th
	}
	res := workload.Run(threads, d, func(w int, rng *workload.RNG) int {
		th := ths[w]
		k := rng.Intn(keyRange)
		switch mix.Pick(rng) {
		case workload.OpContains:
			th.Contains(k)
		case workload.OpInsert:
			th.Insert(k, k)
		default:
			th.Delete(k)
		}
		return 1
	})
	for _, th := range ths {
		th.Close()
	}
	return res.Throughput(), nil
}

// medianOf runs f cfg.Runs times and returns the median result.
func (c Config) medianOf(f func() (float64, error)) (float64, error) {
	vals := make([]float64, 0, c.Runs)
	for i := 0; i < c.Runs; i++ {
		v, err := f()
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.Median(vals), nil
}

// table formats an aligned series table: one row per thread count, one
// column per curve, matching the paper's plot structure.
type table struct {
	title   string
	unit    string
	columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []float64
}

func (t *table) addRow(label string, cells []float64) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// emit writes the table to the config's text output and, when configured,
// its CSV and JSON streams.
func (t *table) emit(c Config) {
	t.write(c.Out)
	if c.CSV != nil {
		t.csv(c.CSV)
	}
	if c.JSON != nil {
		t.json(c.JSON)
	}
}

func (t *table) write(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.title)
	if t.unit != "" {
		fmt.Fprintf(w, "(%s)\n", t.unit)
	}
	width := 12
	fmt.Fprintf(w, "%-10s", "threads")
	for _, c := range t.columns {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 10+width*len(t.columns)))
	for _, r := range t.rows {
		fmt.Fprintf(w, "%-10s", r.label)
		for _, v := range r.cells {
			fmt.Fprintf(w, "%*s", width, formatValue(v))
		}
		fmt.Fprintln(w)
	}
}

// json emits the table as one JSON object on a single line. Encoding a
// table can only fail on a broken writer, in which case later emits fail
// the same way; errors are deliberately not propagated mid-benchmark.
func (t *table) json(w io.Writer) {
	type jsonRow struct {
		Label string    `json:"label"`
		Cells []float64 `json:"cells"`
	}
	obj := struct {
		Title   string    `json:"title"`
		Unit    string    `json:"unit,omitempty"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
	}{Title: t.title, Unit: t.unit, Columns: t.columns}
	for _, r := range t.rows {
		obj.Rows = append(obj.Rows, jsonRow{Label: r.label, Cells: r.cells})
	}
	if b, err := json.Marshal(obj); err == nil {
		b = append(b, '\n')
		w.Write(b)
	}
}

// csv emits the table as CSV for plotting.
func (t *table) csv(w io.Writer) {
	fmt.Fprintf(w, "# %s (%s)\n", t.title, t.unit)
	fmt.Fprintf(w, "threads,%s\n", strings.Join(t.columns, ","))
	for _, r := range t.rows {
		fmt.Fprint(w, r.label)
		for _, v := range r.cells {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
