package bench

import (
	"fmt"

	"prcu"
	"prcu/internal/workload"
)

// Fig8 reproduces Figure 8: each engine's throughput normalized to a twin
// whose wait-for-readers performs no memory accesses and only burns the
// same mean time (§6.1 "Cache coherency related costs"). The gap between
// 100% and an engine's bar is the cost of the cache-line traffic between
// readers' bookkeeping and wait-for-readers scans. Tree RCU is omitted, as
// in the paper's plot (its wait performs no per-reader scans of hot
// reader-written lines in the same way).
func Fig8(cfg Config) error {
	panels := []struct {
		label string
		mix   workload.Mix
		keys  uint64
	}{
		{"rd/large", workload.ReadDominated, cfg.LargeKeys},
		{"mx/large", workload.Mixed, cfg.LargeKeys},
		{"wr/large", workload.WriteDominated, cfg.LargeKeys},
		{"rd/small", workload.ReadDominated, cfg.SmallKeys},
		{"mx/small", workload.Mixed, cfg.SmallKeys},
		{"wr/small", workload.WriteDominated, cfg.SmallKeys},
	}
	engines := fig8Engines(cfg)
	tbl := &table{
		title:   "Figure 8: throughput normalized to simulated-wait variant",
		unit:    fmt.Sprintf("percent (100 = no reader/waiter coherence cost), %d threads", cfg.maxThreads()),
		columns: engineNamesOf(engines),
	}
	threads := cfg.maxThreads()
	for _, p := range panels {
		row := make([]float64, 0, len(engines))
		for _, e := range engines {
			norm, err := cfg.medianOf(func() (float64, error) {
				return normalizedToSimulated(cfg, e, p.mix, p.keys, threads)
			})
			if err != nil {
				return err
			}
			row = append(row, norm)
		}
		tbl.addRow(p.label, row)
	}
	tbl.emit(cfg)
	return nil
}

func fig8Engines(cfg Config) []Engine {
	var out []Engine
	for _, e := range cfg.engines() {
		if e.Name == "Tree RCU" {
			continue
		}
		out = append(out, e)
	}
	return out
}

func engineNamesOf(es []Engine) []string {
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.Name
	}
	return names
}

// normalizedToSimulated measures the real engine's throughput and mean
// wait latency, re-runs the same point with waits replaced by a
// memory-silent spin of that mean latency, and returns real/simulated as a
// percentage.
func normalizedToSimulated(cfg Config, e Engine, mix workload.Mix, keys uint64, threads int) (float64, error) {
	// Pass 1: real engine, instrumented.
	inst := NewInstrumented(e.New())
	s := NewCitrusSet(inst, e.Domain())
	if err := prefill(s, keys); err != nil {
		return 0, err
	}
	inst.ResetWaits()
	real, err := runMix(s, mix, keys, threads, cfg.Duration)
	if err != nil {
		return 0, err
	}
	meanWait := int64(inst.MeanWaitNs())

	// Pass 2: fresh tree whose engine burns the measured mean wait time
	// without touching shared state.
	sim := prcu.NewSimulated(e.New(), meanWait)
	s2 := NewCitrusSet(sim, e.Domain())
	if err := prefill(s2, keys); err != nil {
		return 0, err
	}
	simT, err := runMix(s2, mix, keys, threads, cfg.Duration)
	if err != nil {
		return 0, err
	}
	if simT == 0 {
		return 0, fmt.Errorf("bench: simulated run produced no operations")
	}
	return 100 * real / simT, nil
}
