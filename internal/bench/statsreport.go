package bench

import (
	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/workload"
)

// Stats runs the mixed small-tree workload once per engine with the
// observability layer attached and dumps each engine's internal metrics:
// the grace-period latency histogram measured inside WaitForReaders,
// predicate selectivity (readers scanned versus waited for), wait
// resolution (spin versus scheduler-yield), D-PRCU drain outcomes, and
// sampled reader critical-section durations. Each engine's metrics are
// also published through expvar (as "prcu.<engine>") for processes that
// embed this report.
//
// This surfaces the quantities the paper's argument rests on: PRCU's
// selectivity is why its waits are short, and the section-duration
// distribution bounds how long a covered wait can possibly block.
func Stats(cfg Config) error {
	threads := cfg.maxThreads()
	cfg.printf("=== Engine-internal metrics: mixed workload, small tree, %d threads, %v window ===\n",
		threads, cfg.Duration)
	for _, e := range Engines() {
		m := obs.New()
		// The window is short; sample 1 in 16 sections instead of the
		// default 1 in 64 so the duration histogram has some mass.
		m.SetSectionSampleShift(4)
		r := e.New()
		if c, ok := r.(core.MetricsCarrier); ok {
			c.SetMetrics(m)
		}
		s := NewCitrusSet(r, e.Domain())
		if err := prefill(s, cfg.SmallKeys); err != nil {
			return err
		}
		// Drop prefill-phase traffic; report only the measured window.
		m.Reset()
		if _, err := runMix(s, workload.Mixed, cfg.SmallKeys, threads, cfg.Duration); err != nil {
			return err
		}
		obs.Publish("prcu."+e.Name, m)
		obs.Register(e.Name, m)
		m.Snapshot().Dump(cfg.Out, e.Name)
	}
	return nil
}
