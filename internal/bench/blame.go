package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"prcu"
	"prcu/internal/chaos"
)

// guiltyReader is the chaos registration index (1-based) the blame demo
// plants its deterministically slow reader at. Readers register
// sequentially before the workload starts, so chaos index k is engine
// slot k-1: the recorder must convict slot guiltyReader-1.
const guiltyReader = 2

// Blame demonstrates the flight recorder's reader-blame attribution:
// an EER engine runs a steady read workload with one deterministically
// slow reader planted via chaos fault injection (every one of its Exits
// holds the critical section open; every other reader runs clean), a
// waiter loop issues grace periods against it, and the per-slot blame
// the blocked waits charge is read back through Metrics.TopBlame. The
// verdict table names the convicted slot; the demo fails loudly if the
// recorder convicts anyone but the planted reader.
func Blame(cfg Config, total time.Duration) error {
	if total <= 0 {
		total = 3 * time.Second
	}
	const readers = 4
	const holdDur = 2 * time.Millisecond

	met := prcu.NewMetrics()
	inner, err := prcu.New(prcu.FlavorEER, prcu.Options{
		Metrics:        met,
		FlightRecorder: true,
	})
	if err != nil {
		return err
	}
	eng := chaos.Wrap(inner, chaos.Config{
		Seed:         0xb1a3e,
		ExitDelay:    1.0, // every Exit of the guilty reader holds...
		ExitDelayDur: holdDur,
		OnlyReader:   guiltyReader, // ...and only the guilty reader faults
	})

	cfg.printf("=== reader blame: eer + flight recorder, %d readers, reader #%d holds every section %v, %v run ===\n",
		readers, guiltyReader, holdDur, total)

	// Register sequentially so chaos registration index k is engine slot
	// k-1 — the determinism the verdict depends on.
	rds := make([]prcu.Reader, readers)
	for i := range rds {
		if rds[i], err = eng.Register(); err != nil {
			return err
		}
	}

	// Clean readers keep their sections sub-microsecond and sleep between
	// them: the sleep yields the processor, so even on GOMAXPROCS=1 a
	// clean reader is almost never preempted *inside* a section — which is
	// what would earn it scheduler-quantum-sized spurious blame. The
	// guilty reader's chaos hold sleeps inside the section, so it spends
	// ~90% of its time in-section and soaks up the real blame.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i, rd := range rds {
		wg.Add(1)
		go func(i int, rd prcu.Reader) {
			defer wg.Done()
			for j := 0; ctx.Err() == nil; j++ {
				v := prcu.Value((i*31 + j) % 64)
				rd.Enter(v)
				rd.Exit(v)
				time.Sleep(200 * time.Microsecond)
			}
		}(i, rd)
	}

	waits := 0
	for start := time.Now(); time.Since(start) < total; waits++ {
		eng.WaitForReaders(prcu.All())
	}
	cancel()
	wg.Wait()
	for _, rd := range rds {
		rd.Unregister()
	}

	top := met.TopBlame(0)
	tbl := &table{
		title:   "Reader blame: cumulative delay charged per slot",
		unit:    fmt.Sprintf("%d grace periods issued; planted offender: slot %d", waits, guiltyReader-1),
		columns: []string{"samples", "total ms", "max ms"},
	}
	for _, e := range top {
		tbl.addRow(fmt.Sprintf("slot %d", e.Slot), []float64{
			float64(e.Samples),
			float64(e.TotalNs) / 1e6,
			float64(e.MaxNs) / 1e6,
		})
	}
	tbl.emit(cfg)

	if len(top) == 0 {
		return fmt.Errorf("blame: no blame samples recorded (expected waits to block on reader #%d)", guiltyReader)
	}
	if got := top[0].Slot; got != guiltyReader-1 {
		return fmt.Errorf("blame: verdict convicted slot %d, planted offender is slot %d", got, guiltyReader-1)
	}
	cfg.printf("\nverdict: slot %d convicted — %.1fms cumulative delay over %d blocked waits (planted: reader #%d)\n",
		top[0].Slot, float64(top[0].TotalNs)/1e6, top[0].Samples, guiltyReader)
	cfg.printf("flight recorder: %d spans buffered; scrape /debug/prcu/tracez?engine=%s with -serve to see the chains\n",
		met.FlightLen(), inner.Name())
	return nil
}
