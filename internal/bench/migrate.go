package bench

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/internal/chaos"
)

// Migrate demonstrates the live engine-migration escape hatch: a
// workload (pooled readers + an update flood) runs on a D-PRCU engine
// whose grace periods have gone pathological — chaos holds most waits
// for several envelope-widths, a failure mode no amount of reclaimer
// re-tuning can fix, because the slowness is in the engine itself. The
// same storm runs twice with an identical Autotuner watching the age
// envelope: once with in-engine actuation only, once with the
// degraded-state escape hatch armed (AutotuneConfig.MigrateTo +
// Migrator.AutotuneHook). The verdict table shows the hooked run
// handing the workload over to a clean packed engine mid-storm and the
// time-in-breach collapsing, while the unhooked run stays in breach
// for the duration.
func Migrate(cfg Config, total, refresh time.Duration) error {
	if total <= 0 {
		total = 10 * time.Second
	}
	if refresh <= 0 {
		refresh = time.Second
	}
	// Each held wait stalls by 4 units against a 2-unit age envelope:
	// every hold is a breach the controller can see but not fix. The
	// migration's phase deadline must outlive a hold (the handover
	// itself needs source grace periods), so it gets the whole run.
	unit := total / 40
	holdDur := 4 * unit
	maxAge := 2 * unit

	cfg.printf("=== live migration: held grace periods on d-prcu, %v/run, age envelope %v, wait holds %v ===\n",
		total, maxAge.Round(time.Millisecond), holdDur.Round(time.Millisecond))

	tbl := &table{
		title:   "Live migration: escape-hatch verdict under held grace periods",
		unit:    "breach secs = time the data age exceeded the envelope; migrated 1 = workload handed over to packed",
		columns: []string{"max age ms", "age envelope ms", "breach secs", "migrated"},
	}
	for _, hooked := range []bool{false, true} {
		label := "escape hatch off"
		if hooked {
			label = "escape hatch on"
		}
		res, err := migrateRun(cfg, hooked, total, refresh, holdDur, maxAge)
		if err != nil {
			return err
		}
		migrated := 0.0
		if res.migrated {
			migrated = 1
		}
		tbl.addRow(label, []float64{
			float64(res.maxAge.Milliseconds()),
			float64(maxAge.Milliseconds()),
			res.breach.Seconds(),
			migrated,
		})
	}
	tbl.emit(cfg)
	return nil
}

type migrateResult struct {
	maxAge   time.Duration
	breach   time.Duration
	migrated bool
}

// migrateRun plays the storm once. The workload's readers all come
// from a ReaderPool — the migration front — so a handover can drain
// them; the reclaimer is carried across the handover by the Migrator.
func migrateRun(cfg Config, hooked bool, total, refresh, holdDur, maxAge time.Duration) (migrateResult, error) {
	met := prcu.NewMetrics()
	inner, err := prcu.New(prcu.FlavorD, cfg.options())
	if err != nil {
		return migrateResult{}, err
	}
	eng := chaos.Wrap(inner, chaos.Config{
		Seed:        0x5eed_419a,
		WaitHold:    0.85,
		WaitHoldDur: holdDur,
	})
	pool := prcu.NewReaderPool(eng)
	rec := prcu.NewReclaimer(eng, prcu.ReclaimConfig{
		Shards:     2,
		FlushDelay: time.Millisecond,
		Metrics:    met,
	})

	mig := prcu.NewMigrator(prcu.MigratorConfig{
		Name:         "prcubench-migrate",
		Engine:       eng,
		Flavor:       prcu.FlavorD,
		Fronts:       []prcu.EngineFront{pool},
		Reclaimer:    rec,
		Options:      cfg.options(),
		PhaseTimeout: total,
		Metrics:      met,
	})
	defer mig.Close()

	acfg := prcu.AutotuneConfig{
		Name:      "prcubench-migrate",
		Interval:  refresh / 4,
		Envelope:  prcu.AutotuneEnvelope{MaxAge: maxAge, Headroom: 0.35},
		Metrics:   met,
		Reclaimer: rec,
		Engines:   []prcu.RCU{eng},
		EaseAfter: 1 << 20, // the storm never lets up; don't oscillate
	}
	if hooked {
		acfg.MigrateTo = string(prcu.FlavorPacked)
		acfg.Migrate = mig.AutotuneHook()
		acfg.MigrateAfter = 2
	}
	c := prcu.NewAutotuner(acfg)
	c.Start()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup

	var reclaimed atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rec.Retire(struct{}{}, prcu.All(), 64, func(any) { reclaimed.Add(1) })
			select {
			case <-time.After(200 * time.Microsecond):
			case <-ctx.Done():
				return
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				v := prcu.Value((seed*31 + i) % 64)
				pool.Critical(v, func() {})
				if i%64 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(r)
	}

	var res migrateResult
	const tick = 2 * time.Millisecond
	start := time.Now()
	next := start.Add(refresh)
	for time.Since(start) < total {
		age := rec.OldestAge()
		if age > res.maxAge {
			res.maxAge = age
		}
		if age > maxAge {
			res.breach += tick
		}
		if now := time.Now(); now.After(next) {
			next = now.Add(refresh)
			cfg.printf("t=%-6s mode=%-8s flavor=%-7s age=%-10s backlog=%-6d\n",
				time.Since(start).Round(time.Second), c.Mode().String(), mig.Flavor(),
				age.Round(time.Millisecond), rec.Pending())
		}
		time.Sleep(tick)
	}
	cancel()
	wg.Wait()
	res.migrated = mig.Flavor() != prcu.FlavorD
	c.Close()
	pool.Close()
	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	if err := rec.CloseCtx(cctx); err != nil {
		return res, err
	}
	return res, nil
}
