package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"prcu"
	"prcu/citrus"
	"prcu/internal/workload"
)

// tinyConfig keeps harness tests fast while exercising every code path.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Threads:      []int{1, 2},
		Duration:     10 * time.Millisecond,
		Runs:         1,
		SmallKeys:    512,
		LargeKeys:    1024,
		HashElements: 1 << 10,
		Out:          buf,
	}
}

func TestEnginesLineup(t *testing.T) {
	es := Engines()
	want := []string{
		"EER-PRCU", "D-PRCU", "DEER-PRCU",
		"Time RCU", "Tree RCU", "URCU", "Dist RCU", "SRCU",
		"Packed RCU",
	}
	if len(es) != len(want) {
		t.Fatalf("engine count = %d, want %d", len(es), len(want))
	}
	// The lineup is derived from the flavor registry: every flavor must
	// appear, in registry order, and no bench row may exist without one.
	if flavors := prcu.Flavors(); len(es) != len(flavors) {
		t.Fatalf("lineup has %d engines but Flavors() lists %d", len(es), len(flavors))
	}
	for i, e := range es {
		if e.Name != want[i] {
			t.Fatalf("engine %d = %q, want %q", i, e.Name, want[i])
		}
		r := e.New()
		if r.Name() != e.Name {
			t.Fatalf("constructed engine name %q != spec name %q", r.Name(), e.Name)
		}
	}
}

func TestPrefillReachesTarget(t *testing.T) {
	e := Engines()[0]
	tree := citrus.New(e.New(), e.Domain())
	s := &citrusSet{tree: tree}
	if err := prefill(s, 1000); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 500 {
		t.Fatalf("prefill size = %d, want 500", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMixProducesThroughput(t *testing.T) {
	e := Engines()[1]
	s := NewCitrusSet(e.New(), e.Domain())
	if err := prefill(s, 512); err != nil {
		t.Fatal(err)
	}
	tp, err := runMix(s, workload.Mixed, 512, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestInstrumentedRecordsWaits(t *testing.T) {
	inst := NewInstrumented(prcu.NewTimeRCU(prcu.Options{MaxReaders: 4}))
	for i := 0; i < 10; i++ {
		inst.WaitForReaders(prcu.All())
	}
	if got := inst.Stats().Waits; got != 10 {
		t.Fatalf("recorded %d waits, want 10", got)
	}
	if inst.MeanWaitNs() <= 0 {
		t.Fatal("mean wait must be positive")
	}
	inst.ResetWaits()
	if got := inst.Stats().Waits; got != 0 {
		t.Fatalf("ResetWaits left %d waits", got)
	}
	inst.WaitForReaders(prcu.All())
	if inst.TotalWaitNs() <= 0 {
		t.Fatal("total wait must be positive")
	}
	rd, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	rd.Enter(1)
	rd.Exit(1)
	rd.Unregister()
	if inst.Name() != "Time RCU" || inst.MaxReaders() != 4 {
		t.Fatal("instrumented wrapper must delegate metadata")
	}
}

func TestSetAdapters(t *testing.T) {
	sets := map[string]Set{
		"citrus": NewCitrusSet(prcu.NewEER(prcu.Options{MaxReaders: 4}), citrus.FuncDomain()),
		"opt":    NewOptTreeSet(),
		"lf":     NewLFTreeSet(),
	}
	for name, s := range sets {
		th, err := s.NewThread()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !th.Insert(5, 50) || th.Insert(5, 51) {
			t.Fatalf("%s: insert semantics", name)
		}
		if !th.Contains(5) || th.Contains(6) {
			t.Fatalf("%s: contains semantics", name)
		}
		if !th.Delete(5) || th.Delete(5) {
			t.Fatalf("%s: delete semantics", name)
		}
		th.Close()
	}
}

func TestFig1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "RCU wait") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFig5And7Run(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Fig5(cfg, true); err != nil {
		t.Fatal(err)
	}
	if err := Fig7(cfg, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"5(a)", "5(f)", "7(a)", "7(b)", "EER-PRCU", "Opt-Tree", "LF-Tree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "time spent in wait-for-readers") ||
		!strings.Contains(out, "wait-for-readers latency") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFig8Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "normalized to simulated-wait") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestFig9Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "9(a)") || !strings.Contains(out, "9(b)") || !strings.Contains(out, "geomean") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestAblationRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablation(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter-table size", "nodes per reader", "optimistic waiting", "clock source"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &table{title: "T", unit: "u", columns: []string{"a", "b"}}
	tbl.addRow("1", []float64{1500, 0.5})
	var buf bytes.Buffer
	tbl.write(&buf)
	if !strings.Contains(buf.String(), "1.5k") || !strings.Contains(buf.String(), "0.500") {
		t.Fatalf("table formatting wrong:\n%s", buf.String())
	}
	var csvBuf bytes.Buffer
	tbl.csv(&csvBuf)
	if !strings.Contains(csvBuf.String(), "threads,a,b") || !strings.Contains(csvBuf.String(), "1,1500,0.5") {
		t.Fatalf("csv formatting wrong:\n%s", csvBuf.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{2.5e9, "2.50G"},
		{3.1e6, "3.10M"},
		{1500, "1.5k"},
		{42, "42.0"},
		{0.25, "0.250"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
