// Package adapt closes the loop from observability to actuation: a
// sampling controller that watches the runtime's own gauges — windowed
// wait rates from obs, reclaimer backlog and data age, stall-watchdog
// reports — and steers the knobs every other layer already exposes so
// the process stays inside an operator-declared target envelope.
//
// The controller is deliberately a simple hysteresis ladder, not a
// model: three modes (normal, elevated, degraded), escalating one rung
// when the measurements near the envelope for BreachAfter consecutive
// ticks and easing one rung after EaseAfter consecutive calm ticks.
// "Near" is Headroom × the bound (default 0.7), so the controller acts
// before the envelope is crossed rather than after — the envelope is
// the promise, the headroom band is the working margin.
//
// Actuation per rung:
//
//   - elevated: reclaim pacing drops to immediate, the hard watermarks
//     tighten to the envelope's backlog bounds, a flush is kicked, and
//     waiters switch to a yield-biased discipline (burn less CPU, let
//     the readers a grace period is waiting on actually run).
//   - degraded: additionally the overload policy flips PolicyBlock →
//     PolicyInline (the paper's §2.1 synchronous variant as a safety
//     valve: the backlog provably cannot grow past the watermark),
//     waiters park between polls, and — unless KeepObservability is
//     set — the trace ring, flight recorder, and runtime attribution
//     are shed to drop their overhead from the hot path. Everything
//     shed is remembered and restored on the way back down.
//
// Expedited flushes kicked on escalation are announced to the flight
// recorder first (obs.FlightExpedite), so the recorder can link the
// autotuner's decision to the coalesce span of the flush it caused.
//
// Every transition is recorded through obs.AdaptDecision, which counts
// it and emits an EvAdapt trace event; the hysteresis is itself the
// rate limit — a flapping signal cannot log faster than one decision
// per BreachAfter/EaseAfter window. Controller state is published via
// obs.RegisterController, so /metrics and /debug/prcu/health show the
// mode, the counters, and the last tick's measurements against the
// envelope.
package adapt

import (
	"context"
	"sync"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

// Mode is the controller's rung on its degradation ladder.
type Mode int

const (
	// ModeNormal runs the configuration the operator chose.
	ModeNormal Mode = iota
	// ModeElevated expedites reclamation and relaxes waiter spinning.
	ModeElevated
	// ModeDegraded additionally bounds the backlog inline and sheds
	// observability overhead.
	ModeDegraded
)

// String returns the mode name the export plane uses.
func (m Mode) String() string {
	switch m {
	case ModeElevated:
		return "elevated"
	case ModeDegraded:
		return "degraded"
	default:
		return "normal"
	}
}

// DefaultHeadroom is the fraction of each envelope bound at which the
// controller starts escalating.
const DefaultHeadroom = 0.7

// Envelope is the operator's target: the bounds the controller must
// keep the runtime inside. Zero on any axis means unbounded there.
type Envelope struct {
	// MaxAge bounds the data age: the oldest retired-but-unreclaimed
	// callback's age.
	MaxAge time.Duration
	// MaxPending / MaxBytes bound the reclamation backlog.
	MaxPending int
	MaxBytes   int64
	// MaxWaitP99 bounds the windowed WaitForReaders p99 latency.
	MaxWaitP99 time.Duration
	// Headroom is the fraction of each bound at which escalation
	// starts (0 = DefaultHeadroom; clamped to at most 1).
	Headroom float64
}

func (e Envelope) headroom() float64 {
	h := e.Headroom
	if h <= 0 {
		h = DefaultHeadroom
	}
	if h > 1 {
		h = 1
	}
	return h
}

// measurements is one tick's sensor readout.
type measurements struct {
	ageNs     int64
	backlog   int64
	bytes     int64
	waitP99Ns float64
	stalls    uint64
}

// exceeded reports a hard envelope violation on any bounded axis.
func (e Envelope) exceeded(m measurements) bool {
	return (e.MaxAge > 0 && m.ageNs > int64(e.MaxAge)) ||
		(e.MaxPending > 0 && m.backlog > int64(e.MaxPending)) ||
		(e.MaxBytes > 0 && m.bytes > e.MaxBytes) ||
		(e.MaxWaitP99 > 0 && m.waitP99Ns > float64(e.MaxWaitP99))
}

// nearing reports whether any bounded axis is inside the headroom band
// — the escalation trigger. Stall-watchdog reports in the window also
// count when a latency axis (age or wait p99) is bounded: a stalled
// grace period predicts exactly those violations, and reacting on the
// report beats waiting for the gauge to catch up.
func (e Envelope) nearing(m measurements) bool {
	h := e.headroom()
	if (e.MaxAge > 0 && float64(m.ageNs) > h*float64(e.MaxAge)) ||
		(e.MaxPending > 0 && float64(m.backlog) > h*float64(e.MaxPending)) ||
		(e.MaxBytes > 0 && float64(m.bytes) > h*float64(e.MaxBytes)) ||
		(e.MaxWaitP99 > 0 && m.waitP99Ns > h*float64(e.MaxWaitP99)) {
		return true
	}
	return m.stalls > 0 && (e.MaxAge > 0 || e.MaxWaitP99 > 0)
}

// Config parameterizes a Controller. Reclaimer, Metrics and Engines
// may each be nil/empty — the controller senses and actuates whatever
// it is given.
type Config struct {
	// Name keys the controller in the obs export registry ("" skips
	// registration).
	Name string
	// Interval is Start's tick period (0 = 50ms).
	Interval time.Duration
	// Envelope is the target to hold.
	Envelope Envelope
	// Metrics supplies windowed wait rates and stall counts, receives
	// decision events, and is where degraded mode sheds trace and
	// attribution overhead.
	Metrics *obs.Metrics
	// Reclaimer is the backlog being bounded: its age and backlog
	// gauges are sensors, its watermarks/pacing/policy are actuators.
	Reclaimer *reclaim.Reclaimer
	// Engines are the RCU flavors whose wait discipline the controller
	// tunes; entries that do not implement core.WaitTuner are ignored
	// (chaos-wrapped engines forward the hook).
	Engines []core.RCU
	// BreachAfter is how many consecutive nearing ticks escalate one
	// rung (0 = 1: react on the first).
	BreachAfter int
	// EaseAfter is how many consecutive calm ticks ease one rung
	// (0 = 4: recovery is deliberately slower than reaction).
	EaseAfter int
	// KeepObservability stops degraded mode from shedding the trace
	// ring and runtime attribution.
	KeepObservability bool

	// MigrateTo and Migrate together arm the degraded-state escape
	// hatch: when the controller has sat at the degraded rung for
	// MigrateAfter consecutive ticks — in-engine actuation has run out
	// of room — it calls Migrate(ctx, MigrateTo) once, asynchronously.
	// Migrate is typically a prcu.Migrator's AutotuneHook; a failed
	// migration rolls itself back, and the hatch re-arms only after the
	// ladder eases out of degraded. Both must be set for the hatch to
	// exist.
	MigrateTo string
	Migrate   func(ctx context.Context, flavor string) error
	// MigrateAfter is the consecutive-degraded-tick threshold (0 = 8).
	MigrateAfter int
}

// Controller is the sampling feedback loop; construct with New, drive
// it with Start/Stop (its own ticker) or Step (one synchronous tick,
// for deterministic tests and external schedulers), and Close it to
// restore the baseline configuration and leave the export registry.
type Controller struct {
	cfg    Config
	tuners []core.WaitTuner

	mu        sync.Mutex
	mode      Mode
	ticks     uint64
	decisions uint64
	breaches  uint64
	hotRun    int
	calmRun   int
	last      measurements

	// Escape-hatch state: consecutive degraded ticks, whether the hatch
	// fired for the current degraded stay, and lifetime firings.
	degrRun   int
	migrFired bool
	escapes   uint64

	prev     obs.Snapshot
	prevAt   time.Time
	havePrev bool

	// Baseline captured at New; every ease back to normal restores it.
	basePending int
	baseBytes   int64
	basePacing  time.Duration
	basePolicy  reclaim.Policy
	baseTunings []core.WaitTuning

	// Observability shed in degraded mode, remembered for restore.
	shedTraceCap  int
	shedFlightCap int
	shedAttr      bool

	stop chan struct{}
	done chan struct{}
}

// New builds a Controller, captures the baseline it will restore on
// ease/Close, and registers its state probe under cfg.Name.
func New(cfg Config) *Controller {
	if cfg.BreachAfter <= 0 {
		cfg.BreachAfter = 1
	}
	if cfg.EaseAfter <= 0 {
		cfg.EaseAfter = 4
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.MigrateAfter <= 0 {
		cfg.MigrateAfter = 8
	}
	c := &Controller{cfg: cfg}
	for _, e := range cfg.Engines {
		if wt, ok := e.(core.WaitTuner); ok {
			c.tuners = append(c.tuners, wt)
			c.baseTunings = append(c.baseTunings, wt.WaitTuning())
		}
	}
	if r := cfg.Reclaimer; r != nil {
		c.basePending, c.baseBytes = r.Watermarks()
		c.basePacing = r.Pacing()
		c.basePolicy = r.Policy()
	}
	if cfg.Name != "" {
		obs.RegisterController(cfg.Name, c.State)
	}
	return c
}

// Start launches the controller's own ticker at cfg.Interval. It is a
// no-op if already started.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stop, c.done = stop, done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Step()
			}
		}
	}()
}

// Stop halts the ticker (if running) and waits for the tick in flight.
// The controller's actuation stays as-is; use Close to also restore
// the baseline.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Close stops the controller, restores the baseline configuration
// (watermarks, pacing, policy, wait tuning, shed observability), and
// removes it from the export registry.
func (c *Controller) Close() {
	c.Stop()
	c.mu.Lock()
	c.apply(ModeNormal)
	c.mode = ModeNormal
	c.mu.Unlock()
	if c.cfg.Name != "" {
		obs.RegisterController(c.cfg.Name, nil)
	}
}

// Mode returns the current ladder rung.
func (c *Controller) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// State is the export-registry probe: the controller's mode, counters,
// and last-tick measurements against the envelope.
func (c *Controller) State() obs.ControllerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.ControllerState{
		Name:            c.cfg.Name,
		Mode:            c.mode.String(),
		ModeCode:        int(c.mode),
		Ticks:           c.ticks,
		Decisions:       c.decisions,
		Breaches:        c.breaches,
		Escapes:         c.escapes,
		AgeNs:           c.last.ageNs,
		MaxAgeNs:        int64(c.cfg.Envelope.MaxAge),
		Backlog:         c.last.backlog,
		MaxBacklog:      int64(c.cfg.Envelope.MaxPending),
		BacklogBytes:    c.last.bytes,
		MaxBacklogBytes: c.cfg.Envelope.MaxBytes,
		WaitP99Ns:       c.last.waitP99Ns,
		MaxWaitP99Ns:    int64(c.cfg.Envelope.MaxWaitP99),
	}
}

// Step runs one controller tick synchronously: sample, judge against
// the envelope, and actuate a mode transition when the hysteresis says
// so. Safe for concurrent use (ticks serialize on the controller lock).
func (c *Controller) Step() {
	m := c.sense()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	c.last = m
	env := c.cfg.Envelope
	if env.exceeded(m) {
		c.breaches++
	}
	if env.nearing(m) {
		c.hotRun++
		c.calmRun = 0
	} else {
		c.calmRun++
		c.hotRun = 0
	}
	switch {
	case c.hotRun >= c.cfg.BreachAfter && c.mode < ModeDegraded:
		c.transition(c.mode + 1)
		c.hotRun = 0
	case c.calmRun >= c.cfg.EaseAfter && c.mode > ModeNormal:
		c.transition(c.mode - 1)
		c.calmRun = 0
	}
	// Escape hatch: a sustained degraded stay means in-engine actuation
	// is out of room — hand the workload to a different flavor.
	if c.mode == ModeDegraded {
		c.degrRun++
	} else {
		c.degrRun = 0
		c.migrFired = false
	}
	if c.cfg.Migrate != nil && c.cfg.MigrateTo != "" && !c.migrFired && c.degrRun >= c.cfg.MigrateAfter {
		c.migrFired = true
		c.escapes++
		// Fire outside the controller lock and off the tick path: the
		// migration drains readers and flushes backlog, which can take
		// many tick intervals. Failure needs no handling here — the
		// migrator restores the source wiring itself.
		go func() { _ = c.cfg.Migrate(context.Background(), c.cfg.MigrateTo) }()
	}
}

// sense reads every sensor the controller was given. The windowed wait
// p99 and stall count come from consecutive Metrics snapshots (the
// same arithmetic the health endpoint uses); age and backlog read the
// reclaimer's gauges directly.
func (c *Controller) sense() measurements {
	var m measurements
	if r := c.cfg.Reclaimer; r != nil {
		m.ageNs = r.OldestAgeNs()
		m.backlog = int64(r.Pending())
		m.bytes = r.PendingBytes()
	}
	if met := c.cfg.Metrics; met != nil {
		now := time.Now()
		cur := met.Snapshot()
		c.mu.Lock()
		if c.havePrev {
			rt := obs.Delta(c.prev, cur, now.Sub(c.prevAt))
			m.waitP99Ns = rt.WaitP99Ns
			m.stalls = rt.Stalls
		}
		c.prev, c.prevAt, c.havePrev = cur, now, true
		c.mu.Unlock()
		if c.cfg.Reclaimer == nil {
			m.ageNs = cur.ReclaimOldestNs
			m.backlog = cur.ReclaimPending
			m.bytes = cur.ReclaimBytes
		}
	}
	return m
}

// transition moves to mode, actuates it, and records the decision.
// Caller holds c.mu.
func (c *Controller) transition(mode Mode) {
	from := c.mode
	c.mode = mode
	c.decisions++
	c.apply(mode)
	if c.cfg.Metrics != nil {
		// The trace Value reads as from→to in decimal: 1 = normal→
		// elevated, 12 = elevated→degraded, 21, 10, …
		c.cfg.Metrics.AdaptDecision(uint64(from)*10 + uint64(mode))
	}
}

// apply actuates one rung's settings. Caller holds c.mu; the actuators
// take only their own locks (reclaim capMu, engine atomics), so there
// is no ordering hazard.
func (c *Controller) apply(mode Mode) {
	r := c.cfg.Reclaimer
	switch mode {
	case ModeNormal:
		if r != nil {
			r.SetPolicy(c.basePolicy)
			r.SetWatermarks(c.basePending, c.baseBytes)
			if c.basePacing == 0 {
				r.SetPacing(-1) // 0 means "immediate" on readback
			} else {
				r.SetPacing(c.basePacing)
			}
		}
		for i, t := range c.tuners {
			t.SetWaitTuning(c.baseTunings[i])
		}
		c.restoreObservability()
	case ModeElevated:
		if r != nil {
			r.SetPolicy(c.basePolicy)
			r.SetPacing(-1)
			tp, tb := c.tightMarks()
			r.SetWatermarks(tp, tb)
			c.cfg.Metrics.FlightExpedite("adapt: elevated")
			r.Flush()
		}
		for _, t := range c.tuners {
			t.SetWaitTuning(core.WaitTuningYield)
		}
		c.restoreObservability()
	case ModeDegraded:
		if r != nil {
			r.SetPolicy(reclaim.PolicyInline)
			r.SetPacing(-1)
			tp, tb := c.tightMarks()
			r.SetWatermarks(tp, tb)
			c.cfg.Metrics.FlightExpedite("adapt: degraded")
			r.Flush()
		}
		for _, t := range c.tuners {
			t.SetWaitTuning(core.WaitTuningPark)
		}
		if !c.cfg.KeepObservability {
			c.shedObservability()
		}
	}
}

// tightMarks are the escalated hard watermarks: the envelope's backlog
// bounds where set, else the baseline (the controller never loosens
// past what the operator configured).
func (c *Controller) tightMarks() (int, int64) {
	tp, tb := c.basePending, c.baseBytes
	if p := c.cfg.Envelope.MaxPending; p > 0 && (tp == 0 || p < tp) {
		tp = p
	}
	if b := c.cfg.Envelope.MaxBytes; b > 0 && (tb == 0 || b < tb) {
		tb = b
	}
	return tp, tb
}

// shedObservability drops the trace ring and runtime attribution,
// remembering what was on so restoreObservability can undo it.
func (c *Controller) shedObservability() {
	met := c.cfg.Metrics
	if met == nil {
		return
	}
	if n := met.DisableTrace(); n > 0 {
		c.shedTraceCap = n
	}
	if n := met.DisableFlightRecorder(); n > 0 {
		c.shedFlightCap = n
	}
	if met.AttributionEnabled() {
		c.shedAttr = true
		met.DisableRuntimeAttribution()
	}
}

// restoreObservability re-enables whatever shedObservability dropped.
func (c *Controller) restoreObservability() {
	met := c.cfg.Metrics
	if met == nil {
		return
	}
	if c.shedTraceCap > 0 {
		met.EnableTrace(c.shedTraceCap)
		c.shedTraceCap = 0
	}
	if c.shedFlightCap > 0 {
		met.EnableFlightRecorder(c.shedFlightCap)
		c.shedFlightCap = 0
	}
	if c.shedAttr {
		met.EnableRuntimeAttribution(c.attrName())
		c.shedAttr = false
	}
}

// attrName picks the engine name re-enabled attribution reports under.
func (c *Controller) attrName() string {
	if len(c.cfg.Engines) > 0 {
		return c.cfg.Engines[0].Name()
	}
	return c.cfg.Name
}
