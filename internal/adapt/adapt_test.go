package adapt

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

// wedge opens a covered critical section on e and returns a release
// func; while held, every grace period covering value 7 is wedged, so
// retired callbacks pend and the backlog/age gauges climb.
func wedge(t *testing.T, e core.RCU) func() {
	t.Helper()
	rd, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rd.Enter(7)
		close(entered)
		<-release
		rd.Exit(7)
		rd.Unregister()
	}()
	<-entered
	var once sync.Once
	return func() {
		once.Do(func() { close(release) })
		<-done
	}
}

// TestLadderDeterministic walks the full mode ladder with synchronous
// Steps: a wedged reader makes the backlog exceed the envelope, the
// controller escalates normal→elevated→degraded actuating each rung
// (pacing, watermarks, policy, wait tuning, observability shedding);
// releasing the reader drains the backlog and EaseAfter calm ticks per
// rung walk it back down, restoring the exact baseline.
func TestLadderDeterministic(t *testing.T) {
	eng := core.NewTimeRCU(8, nil)
	met := obs.New()
	met.EnableTrace(128)
	rec := reclaim.New(eng, reclaim.Config{Shards: 1, FlushDelay: time.Millisecond, Metrics: met})
	defer rec.Close()

	c := New(Config{
		Name:      "ladder-test",
		Envelope:  Envelope{MaxPending: 4},
		Metrics:   met,
		Reclaimer: rec,
		Engines:   []core.RCU{eng},
		EaseAfter: 2,
	})
	defer c.Close()
	if c.Mode() != ModeNormal {
		t.Fatalf("fresh controller mode = %v, want normal", c.Mode())
	}

	release := wedge(t, eng)
	defer release()
	var freed atomic.Int64
	for i := 0; i < 10; i++ {
		rec.Retire(nil, core.Singleton(7), 8, func(any) { freed.Add(1) })
	}

	c.Step() // backlog 10 > 4: normal → elevated
	if c.Mode() != ModeElevated {
		t.Fatalf("after breach tick mode = %v, want elevated", c.Mode())
	}
	if got := rec.Pacing(); got != 0 {
		t.Errorf("elevated pacing = %v, want immediate", got)
	}
	if mp, _ := rec.Watermarks(); mp != 4 {
		t.Errorf("elevated hard watermark = %d, want envelope's 4", mp)
	}
	if rec.Policy() != reclaim.PolicyBlock {
		t.Error("elevated flipped the policy; that is degraded's job")
	}

	c.Step() // still breached: elevated → degraded
	if c.Mode() != ModeDegraded {
		t.Fatalf("after second breach tick mode = %v, want degraded", c.Mode())
	}
	if rec.Policy() != reclaim.PolicyInline {
		t.Error("degraded mode did not flip PolicyBlock → PolicyInline")
	}
	if met.TraceEnabled() {
		t.Error("degraded mode did not shed the trace ring")
	}
	tun := eng.WaitTuning()
	if tun.Park == 0 {
		t.Errorf("degraded wait tuning = %+v, want the park preset", tun)
	}

	st := c.State()
	if st.Mode != "degraded" || st.ModeCode != 2 {
		t.Errorf("state mode = %q/%d, want degraded/2", st.Mode, st.ModeCode)
	}
	if st.Breaches == 0 || st.Decisions != 2 || st.Ticks != 2 {
		t.Errorf("state counters = %+v, want breaches>0 decisions=2 ticks=2", st)
	}
	if !st.Breached() {
		t.Error("state.Breached() = false with backlog over the envelope")
	}
	found := false
	for _, cs := range obs.Controllers() {
		if cs.Name == "ladder-test" {
			found = true
		}
	}
	if !found {
		t.Error("controller missing from obs.Controllers() registry")
	}

	release()
	rec.Barrier()
	if got := freed.Load(); got != 10 {
		t.Fatalf("freed %d callbacks after drain, want 10", got)
	}

	c.Step()
	c.Step() // two calm ticks: degraded → elevated
	if c.Mode() != ModeElevated {
		t.Fatalf("after %d calm ticks mode = %v, want elevated", 2, c.Mode())
	}
	if rec.Policy() != reclaim.PolicyBlock {
		t.Error("easing out of degraded did not restore the policy")
	}
	if !met.TraceEnabled() {
		t.Error("easing out of degraded did not restore the trace ring")
	}

	c.Step()
	c.Step() // two more: elevated → normal, baseline restored
	if c.Mode() != ModeNormal {
		t.Fatalf("after ease-out mode = %v, want normal", c.Mode())
	}
	if mp, mb := rec.Watermarks(); mp != 0 || mb != 0 {
		t.Errorf("baseline watermarks = %d/%d, want unbounded 0/0", mp, mb)
	}
	if got := rec.Pacing(); got != time.Millisecond {
		t.Errorf("baseline pacing = %v, want the configured 1ms", got)
	}
	if got := eng.WaitTuning(); got != (core.WaitTuning{}) {
		t.Errorf("baseline wait tuning = %+v, want zero", got)
	}

	wantEvents := uint64(4) // two escalations, two eases
	if st := c.State(); st.Decisions != wantEvents {
		t.Errorf("decisions = %d, want %d", st.Decisions, wantEvents)
	}
	var adaptEvents int
	for _, ev := range met.TraceSnapshot() {
		if ev.Kind == obs.EvAdapt {
			adaptEvents++
		}
	}
	// The ring was shed while degraded; at minimum the post-restore
	// decisions (degraded→elevated, elevated→normal) must be in it.
	if adaptEvents < 2 {
		t.Errorf("trace ring holds %d adapt events, want >= 2", adaptEvents)
	}
}

// TestHysteresis checks BreachAfter delays escalation and a single calm
// tick does not ease: the controller must not flap.
func TestHysteresis(t *testing.T) {
	eng := core.NewTimeRCU(8, nil)
	rec := reclaim.New(eng, reclaim.Config{Shards: 1, Metrics: obs.New()})
	defer rec.Close()
	c := New(Config{
		Envelope:    Envelope{MaxPending: 2},
		Reclaimer:   rec,
		Engines:     []core.RCU{eng},
		BreachAfter: 3,
		EaseAfter:   3,
	})
	defer c.Close()

	release := wedge(t, eng)
	defer release()
	for i := 0; i < 8; i++ {
		rec.Retire(nil, core.Singleton(7), 1, func(any) {})
	}
	c.Step()
	c.Step()
	if c.Mode() != ModeNormal {
		t.Fatalf("mode = %v after 2 of 3 breach ticks, want normal still", c.Mode())
	}
	c.Step()
	if c.Mode() != ModeElevated {
		t.Fatalf("mode = %v after BreachAfter ticks, want elevated", c.Mode())
	}

	release()
	rec.Barrier()
	c.Step()
	c.Step()
	if c.Mode() != ModeElevated {
		t.Fatalf("mode = %v after 2 of 3 calm ticks, want elevated still", c.Mode())
	}
	c.Step()
	if c.Mode() != ModeNormal {
		t.Fatalf("mode = %v after EaseAfter calm ticks, want normal", c.Mode())
	}
}

// TestKeepObservability pins the escape hatch: degraded mode must not
// shed the trace ring when the operator asked to keep it.
func TestKeepObservability(t *testing.T) {
	eng := core.NewTimeRCU(8, nil)
	met := obs.New()
	met.EnableTrace(64)
	rec := reclaim.New(eng, reclaim.Config{Shards: 1, Metrics: met})
	defer rec.Close()
	c := New(Config{
		Envelope:          Envelope{MaxPending: 1},
		Metrics:           met,
		Reclaimer:         rec,
		Engines:           []core.RCU{eng},
		KeepObservability: true,
	})
	defer c.Close()

	release := wedge(t, eng)
	defer release()
	for i := 0; i < 4; i++ {
		rec.Retire(nil, core.Singleton(7), 1, func(any) {})
	}
	c.Step()
	c.Step()
	if c.Mode() != ModeDegraded {
		t.Fatalf("mode = %v, want degraded", c.Mode())
	}
	if !met.TraceEnabled() {
		t.Fatal("KeepObservability was ignored: trace ring shed in degraded mode")
	}
}

// TestStartStop exercises the self-ticking path: a controller started
// on a fast interval escalates on its own when the envelope is
// breached, and Stop halts the ticker cleanly.
func TestStartStop(t *testing.T) {
	eng := core.NewTimeRCU(8, nil)
	rec := reclaim.New(eng, reclaim.Config{Shards: 1, Metrics: obs.New()})
	defer rec.Close()
	c := New(Config{
		Interval:  2 * time.Millisecond,
		Envelope:  Envelope{MaxPending: 2},
		Reclaimer: rec,
		Engines:   []core.RCU{eng},
		EaseAfter: 1000, // stay escalated once triggered
	})
	defer c.Close()

	release := wedge(t, eng)
	defer release()
	for i := 0; i < 8; i++ {
		rec.Retire(nil, core.Singleton(7), 1, func(any) {})
	}
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for c.Mode() == ModeNormal && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Mode() == ModeNormal {
		t.Fatal("self-ticking controller never reacted to a breached envelope")
	}
	c.Stop()
	c.Stop() // idempotent
	release()
	rec.Barrier()
	ticksAtStop := c.State().Ticks
	time.Sleep(10 * time.Millisecond)
	if got := c.State().Ticks; got != ticksAtStop {
		t.Errorf("ticks advanced %d → %d after Stop", ticksAtStop, got)
	}
}

// TestMigrateEscapeHatch pins the degraded-state escape: the Migrate
// hook fires exactly once per degraded stay after MigrateAfter
// consecutive degraded ticks, re-arms only after the controller eases
// out of degraded, and counts into State().Escapes. The envelope is
// age-only so the elevated rung leaves the watermarks unbounded and
// the test's own retirements never block.
func TestMigrateEscapeHatch(t *testing.T) {
	eng := core.NewTimeRCU(8, nil)
	met := obs.New()
	rec := reclaim.New(eng, reclaim.Config{Shards: 1, FlushDelay: time.Millisecond, Metrics: met})
	defer rec.Close()

	const maxAge = time.Millisecond
	fired := make(chan string, 4)
	c := New(Config{
		Envelope:  Envelope{MaxAge: maxAge},
		Metrics:   met,
		Reclaimer: rec,
		Engines:   []core.RCU{eng},
		EaseAfter: 1,
		MigrateTo: "packed",
		Migrate: func(ctx context.Context, flavor string) error {
			fired <- flavor
			return nil
		},
		MigrateAfter: 2,
	})
	defer c.Close()

	breach := func() func() {
		release := wedge(t, eng)
		for i := 0; i < 4; i++ {
			rec.Retire(nil, core.Singleton(7), 8, func(any) {})
		}
		time.Sleep(4 * maxAge) // let the wedged retirements age past the envelope
		return release
	}

	release := breach()
	c.Step() // normal → elevated
	c.Step() // elevated → degraded (degraded run = 1)
	select {
	case <-fired:
		t.Fatal("escape fired before MigrateAfter degraded ticks")
	default:
	}
	c.Step() // degraded run = 2: escape fires
	select {
	case got := <-fired:
		if got != "packed" {
			t.Fatalf("escape fired with flavor %q, want packed", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("escape never fired")
	}
	// Still degraded: must NOT fire again this stay.
	c.Step()
	c.Step()
	select {
	case <-fired:
		t.Fatal("escape fired twice in one degraded stay")
	default:
	}
	if st := c.State(); st.Escapes != 1 {
		t.Fatalf("State().Escapes = %d, want 1", st.Escapes)
	}

	// Ease out of degraded, breach again: the hatch is re-armed.
	release()
	rec.Barrier()
	c.Step() // calm tick: degraded → elevated; the degraded run resets
	release2 := breach()
	defer release2()
	c.Step() // elevated → degraded (run = 1)
	c.Step() // run = 2: fires again
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("escape did not re-arm after easing out of degraded")
	}
	if st := c.State(); st.Escapes != 2 {
		t.Fatalf("State().Escapes = %d after second stay, want 2", st.Escapes)
	}
}
