package adapt

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu/internal/chaos"
	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

// engines mirrors the core test harness's flavor list.
func engines(maxReaders int) map[string]func() core.RCU {
	return map[string]func() core.RCU{
		"EER":    func() core.RCU { return core.NewEER(maxReaders, nil) },
		"D":      func() core.RCU { return core.NewD(maxReaders, 64) },
		"DEER":   func() core.RCU { return core.NewDEER(maxReaders, 16, nil) },
		"Time":   func() core.RCU { return core.NewTimeRCU(maxReaders, nil) },
		"URCU":   func() core.RCU { return core.NewURCU(maxReaders) },
		"Tree":   func() core.RCU { return core.NewTreeRCU(maxReaders) },
		"Dist":   func() core.RCU { return core.NewDistRCU(maxReaders) },
		"SRCU":   func() core.RCU { return core.NewSRCU(maxReaders) },
		"Packed": func() core.RCU { return core.NewPacked(maxReaders) },
	}
}

// campaignParams sizes one storm run. The proportions are fixed; short
// mode halves the clock.
type campaignParams struct {
	run        time.Duration // total sampled span
	unit       time.Duration // chaos.Campaign unit
	maxAge     time.Duration // envelope bound on data age
	maxPending int           // envelope bound on backlog
	badPacing  time.Duration // the misconfigured FlushDelay both runs start with
	floodEvery time.Duration // retire period during UpdateFlood phases
	bgEvery    time.Duration // retire period otherwise
}

func params() campaignParams {
	p := campaignParams{
		run:        300 * time.Millisecond,
		unit:       8 * time.Millisecond,
		maxAge:     200 * time.Millisecond,
		maxPending: 1024,
		badPacing:  500 * time.Millisecond,
		floodEvery: 50 * time.Microsecond,
		bgEvery:    500 * time.Microsecond,
	}
	if testing.Short() {
		p.run = 150 * time.Millisecond
		p.unit = 4 * time.Millisecond
		p.maxAge = 100 * time.Millisecond
		p.badPacing = 250 * time.Millisecond
	}
	return p
}

// campaignResult is what one storm run observed.
type campaignResult struct {
	maxAge     time.Duration
	maxBacklog int
	decisions  uint64
	finalMode  Mode
}

// runCampaign drives the standard chaos.Campaign storm schedule — stall
// bursts (WaitHold), an update flood, reader churn spikes — against one
// flavor behind a fixed-seed chaos wrapper and a reclaimer whose
// operator "guessed wrong": a batching window far above the age
// envelope. With controlled set, an adapt.Controller samples every
// couple of milliseconds and may actuate; without it the
// misconfiguration stands. The run samples the age and backlog gauges
// throughout and returns their maxima.
func runCampaign(t *testing.T, mk func() core.RCU, controlled bool, p campaignParams) campaignResult {
	t.Helper()
	eng := chaos.Wrap(mk(), chaos.Config{Seed: 0x5eed_ca12})
	met := obs.New()
	rec := reclaim.New(eng, reclaim.Config{
		Shards:     2,
		FlushDelay: p.badPacing,
		Metrics:    met,
	})

	var c *Controller
	if controlled {
		c = New(Config{
			Name: "campaign",
			Envelope: Envelope{
				MaxAge:     p.maxAge,
				MaxPending: p.maxPending,
				Headroom:   0.3,
			},
			Metrics:   met,
			Reclaimer: rec,
			Engines:   []core.RCU{eng},
			EaseAfter: 1 << 30, // hold the reaction for the whole storm
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var flood, churn atomic.Bool

	// Storm walker: one goroutine owns both sides of the script — the
	// fault mix (SetConfig) and the workload hints — so they cannot
	// drift apart.
	sched := chaos.Campaign(p.unit)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer eng.SetConfig(chaos.Config{})
		for _, ph := range sched {
			eng.SetConfig(ph.Cfg)
			flood.Store(ph.UpdateFlood)
			churn.Store(ph.ReaderChurn)
			select {
			case <-time.After(ph.Dur):
			case <-ctx.Done():
				return
			}
		}
		flood.Store(false)
		churn.Store(false)
	}()

	// Updater: steady retirement traffic, throttled so the pre-reaction
	// backlog stays well under the envelope (the age axis, not raw
	// volume, is what the storm attacks), stepping up during floods.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rec.Retire(nil, core.All(), 64, func(any) {})
			d := p.bgEvery
			if flood.Load() {
				d = p.floodEvery
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
	}()

	// Readers: two loops cycling values; churn phases re-register each
	// pass instead of keeping the registration.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var rd core.Reader
			var err error
			for i := 0; ctx.Err() == nil; i++ {
				if rd == nil {
					if rd, err = eng.Register(); err != nil {
						return
					}
				}
				v := core.Value((seed*31 + i) % 16)
				rd.Enter(v)
				rd.Exit(v)
				if churn.Load() {
					rd.Unregister()
					rd = nil
				}
				if i%64 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
			if rd != nil {
				rd.Unregister()
			}
		}(r)
	}

	// Sampler (and, when controlled, the controller's clock): the
	// envelope verdict is the maximum these samples ever saw.
	var res campaignResult
	start := time.Now()
	for time.Since(start) < p.run {
		if c != nil {
			c.Step()
		}
		if age := rec.OldestAge(); age > res.maxAge {
			res.maxAge = age
		}
		if b := rec.Pending(); b > res.maxBacklog {
			res.maxBacklog = b
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if c != nil {
		st := c.State()
		res.decisions = st.Decisions
		res.finalMode = c.Mode()
		c.Close()
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	if err := rec.CloseCtx(cctx); err != nil {
		t.Fatalf("reclaimer close: %v", err)
	}
	return res
}

// TestCampaignEnvelope is the self-tuning acceptance proof, per flavor:
// under the standard chaos campaign with a misconfigured batching
// window, the uncontrolled runtime provably violates the age envelope
// (the oldest callback outlives MaxAge), while the controller — same
// seed, same storm, same misconfiguration — detects the climb inside
// its headroom band, re-tunes pacing/watermarks, and keeps every
// sampled age and backlog inside the envelope.
func TestCampaignEnvelope(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("short mode: halved storm clock")
	}
	p := params()
	for name, mk := range engines(16) {
		t.Run(name, func(t *testing.T) {
			off := runCampaign(t, mk, false, p)
			if off.maxAge <= p.maxAge {
				t.Fatalf("uncontrolled baseline stayed in envelope (max age %v <= %v): the storm is not a valid stressor",
					off.maxAge, p.maxAge)
			}

			on := runCampaign(t, mk, true, p)
			if on.decisions == 0 {
				t.Fatalf("controller never actuated under the storm (final mode %v)", on.finalMode)
			}
			if on.maxAge > p.maxAge {
				t.Errorf("controlled max age %v exceeds the %v envelope (uncontrolled saw %v)",
					on.maxAge, p.maxAge, off.maxAge)
			}
			if on.maxBacklog > p.maxPending {
				t.Errorf("controlled max backlog %d exceeds the %d envelope",
					on.maxBacklog, p.maxPending)
			}
			t.Logf("max age: uncontrolled %v, controlled %v (envelope %v); controlled backlog peak %d; %d decisions, final mode %v",
				off.maxAge, on.maxAge, p.maxAge, on.maxBacklog, on.decisions, on.finalMode)
		})
	}
}
