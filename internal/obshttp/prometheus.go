package obshttp

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"prcu/internal/obs"
)

// metricsHandler renders every registered engine in the Prometheus text
// exposition format, version 0.0.4: one metric family per PRCU quantity,
// one series per engine under an engine="name" label. Durations are
// converted to seconds (base units, per convention); the batch-size
// histogram is unitless.
func metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	writePrometheus(bw)
	bw.Flush()
}

func writePrometheus(w *bufio.Writer) {
	names, snaps := snapshots()
	f := famWriter{w: w, names: names, snaps: snaps}

	f.counter("prcu_waits_total", "Completed WaitForReaders calls.",
		func(s obs.Snapshot) float64 { return float64(s.Waits) })
	f.histogram("prcu_wait_duration_seconds", "WaitForReaders latency.",
		1e-9, func(s obs.Snapshot) obs.HistSummary { return s.WaitNs })
	f.counter("prcu_readers_scanned_total", "Reader slots or counter nodes examined by wait scans.",
		func(s obs.Snapshot) float64 { return float64(s.ReadersScanned) })
	f.counter("prcu_readers_waited_total", "Scanned readers the wait actually blocked on (selectivity numerator).",
		func(s obs.Snapshot) float64 { return float64(s.ReadersWaited) })
	f.counter("prcu_wait_parks_total", "Waited-on readers resolved by scheduler yields after the spin budget.",
		func(s obs.Snapshot) float64 { return float64(s.Parks) })
	f.counter("prcu_wait_spin_resolved_total", "Waited-on readers resolved within the spin budget.",
		func(s obs.Snapshot) float64 { return float64(s.SpinResolved) })

	f.drains()

	f.counter("prcu_stalls_total", "Grace-period stall watchdog reports.",
		func(s obs.Snapshot) float64 { return float64(s.Stalls) })
	f.counter("prcu_stalled_readers_total", "Open critical sections named by stall reports.",
		func(s obs.Snapshot) float64 { return float64(s.StalledReaders) })

	f.counter("prcu_reader_sections_total", "Read-side critical sections entered.",
		func(s obs.Snapshot) float64 { return float64(s.Enters) })
	f.histogram("prcu_section_duration_seconds", "Sampled read-side critical-section duration.",
		1e-9, func(s obs.Snapshot) obs.HistSummary { return s.SectionNs })

	f.gauge("prcu_reclaim_pending", "Deferred-reclamation backlog: callbacks retired but not yet resolved.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimPending) })
	f.gauge("prcu_reclaim_pending_bytes", "Caller-declared bytes behind the reclamation backlog.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimBytes) })
	f.counter("prcu_reclaim_retired_total", "Callbacks accepted by the reclaimer.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimRetired) })
	f.counter("prcu_reclaim_freed_total", "Callbacks run after a completed grace period.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimFreed) })
	f.counter("prcu_reclaim_dropped_total", "Callbacks abandoned by a bounded shutdown.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimDropped) })
	f.counter("prcu_reclaim_graces_total", "Grace periods issued by the batch coalescer.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimGraces) })
	f.counter("prcu_reclaim_expedited_total", "Soft-watermark or Flush-forced expedited flushes.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimExpedited) })
	f.counter("prcu_reclaim_backpressure_total", "Retirements blocked at the hard watermark.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimBackpressure) })
	f.counter("prcu_reclaim_inline_total", "Retirements degraded to an inline grace period at the hard watermark.",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimInline) })
	f.histogram("prcu_reclaim_batch_size", "Callbacks resolved per reclaimer flush.",
		1, func(s obs.Snapshot) obs.HistSummary { return s.ReclaimBatch })
	f.histogram("prcu_reclaim_flush_duration_seconds", "Reclaimer flush latency (grace period plus callback runs).",
		1e-9, func(s obs.Snapshot) obs.HistSummary { return s.ReclaimFlushNs })
	f.gauge("prcu_reclaim_oldest_age_seconds", "Age of the oldest unresolved reclamation callback (0 = empty backlog).",
		func(s obs.Snapshot) float64 { return float64(s.ReclaimOldestNs) * 1e-9 })

	f.counter("prcu_adapt_decisions_total", "Adaptive-controller actuation decisions recorded against the engine's metrics.",
		func(s obs.Snapshot) float64 { return float64(s.AdaptDecisions) })
	f.counter("prcu_migrate_events_total", "Live engine-migration protocol transitions recorded against the engine's metrics.",
		func(s obs.Snapshot) float64 { return float64(s.MigrateEvents) })

	f.gauge("prcu_trace_buffered_events", "Events currently held in the engine's trace ring (0 when tracing is off).",
		func(s obs.Snapshot) float64 { return float64(s.TraceLen) })

	f.gauge("prcu_flight_buffered_spans", "Spans currently held in the engine's flight recorder (0 when the recorder is off).",
		func(s obs.Snapshot) float64 { return float64(s.FlightLen) })
	f.counter("prcu_blame_samples_total", "Per-slot reader-blame samples recorded by blocked waits.",
		func(s obs.Snapshot) float64 { return float64(s.BlameSamples) })
	f.counter("prcu_blame_seconds_total", "Cumulative reader delay charged to slots by blocked waits.",
		func(s obs.Snapshot) float64 { return float64(s.BlameNs) * 1e-9 })
	f.blame()

	writeControllers(w)
	writeMigrations(w)
}

// writeMigrations renders every registered live migrator's state as
// prcu_migrate_* families labelled migrator="name": the phase in
// flight, lifetime outcome counters, and the last run's duration.
func writeMigrations(w *bufio.Writer) {
	states := obs.Migrations()
	if len(states) == 0 {
		return
	}
	m := migFamWriter{w: w, states: states}
	m.family("prcu_migrate_active", "1 while a migration is in flight.", "gauge",
		func(s obs.MigrationState) float64 {
			if s.Active {
				return 1
			}
			return 0
		})
	m.family("prcu_migrate_phase", "Protocol phase: 0 idle, 1 drain, 2 handover, 3 rollback, 4 stuck-rollback.", "gauge",
		func(s obs.MigrationState) float64 { return float64(s.PhaseCode) })
	m.family("prcu_migrate_started_total", "Migrations started.", "counter",
		func(s obs.MigrationState) float64 { return float64(s.Started) })
	m.family("prcu_migrate_completed_total", "Migrations completed (workload now on the target engine).", "counter",
		func(s obs.MigrationState) float64 { return float64(s.Completed) })
	m.family("prcu_migrate_rolled_back_total", "Migrations rolled back to the source wiring after a phase failure (a subset of failed).", "counter",
		func(s obs.MigrationState) float64 { return float64(s.RolledBack) })
	m.family("prcu_migrate_failed_total", "Migrations that did not land on the target (rolled back or refused before anything flipped); started = completed + failed.", "counter",
		func(s obs.MigrationState) float64 { return float64(s.Failed) })
	m.family("prcu_migrate_rollback_retries_total", "Failed rollback target-drain attempts; the drain retries until it succeeds, parking in stuck-rollback past a threshold.", "counter",
		func(s obs.MigrationState) float64 { return float64(s.RollbackRetries) })
	m.family("prcu_migrate_last_duration_seconds", "Wall time of the most recently finished migration.", "gauge",
		func(s obs.MigrationState) float64 { return float64(s.LastDurationNs) * 1e-9 })
}

type migFamWriter struct {
	w      *bufio.Writer
	states []obs.MigrationState
}

func (m *migFamWriter) family(name, help, typ string, v func(obs.MigrationState) float64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	for _, s := range m.states {
		fmt.Fprintf(m.w, "%s{migrator=\"%s\"} %s\n", name, escapeLabel(s.Name), fmtFloat(v(s)))
	}
}

// writeControllers renders every registered adaptive controller's state
// as prcu_autotune_* families labelled controller="name": the mode
// ladder position, the decision counters, and the last tick's
// measurements against the operator's envelope so a dashboard can plot
// measured-vs-limit on each axis.
func writeControllers(w *bufio.Writer) {
	states := obs.Controllers()
	if len(states) == 0 {
		return
	}
	c := ctrlFamWriter{w: w, states: states}
	c.family("prcu_autotune_mode", "Controller mode: 0 normal, 1 elevated, 2 degraded.", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.ModeCode) })
	c.family("prcu_autotune_ticks_total", "Controller sampling ticks executed.", "counter",
		func(s obs.ControllerState) float64 { return float64(s.Ticks) })
	c.family("prcu_autotune_decisions_total", "Controller actuation decisions (mode transitions).", "counter",
		func(s obs.ControllerState) float64 { return float64(s.Decisions) })
	c.family("prcu_autotune_breaches_total", "Ticks on which the target envelope was violated.", "counter",
		func(s obs.ControllerState) float64 { return float64(s.Breaches) })
	c.family("prcu_autotune_escapes_total", "Degraded-state escape-hatch firings (live migrations requested).", "counter",
		func(s obs.ControllerState) float64 { return float64(s.Escapes) })
	c.family("prcu_autotune_age_seconds", "Oldest-callback age measured at the last tick.", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.AgeNs) * 1e-9 })
	c.family("prcu_autotune_age_limit_seconds", "Envelope limit on data age (0 = unbounded).", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.MaxAgeNs) * 1e-9 })
	c.family("prcu_autotune_backlog", "Reclaimer backlog measured at the last tick.", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.Backlog) })
	c.family("prcu_autotune_backlog_limit", "Envelope limit on reclaimer backlog (0 = unbounded).", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.MaxBacklog) })
	c.family("prcu_autotune_backlog_bytes", "Reclaimer backlog bytes measured at the last tick.", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.BacklogBytes) })
	c.family("prcu_autotune_backlog_bytes_limit", "Envelope limit on backlog bytes (0 = unbounded).", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.MaxBacklogBytes) })
	c.family("prcu_autotune_wait_p99_seconds", "Windowed wait p99 measured at the last tick.", "gauge",
		func(s obs.ControllerState) float64 { return s.WaitP99Ns * 1e-9 })
	c.family("prcu_autotune_wait_p99_limit_seconds", "Envelope limit on wait p99 (0 = unbounded).", "gauge",
		func(s obs.ControllerState) float64 { return float64(s.MaxWaitP99Ns) * 1e-9 })
}

type ctrlFamWriter struct {
	w      *bufio.Writer
	states []obs.ControllerState
}

func (c *ctrlFamWriter) family(name, help, typ string, v func(obs.ControllerState) float64) {
	fmt.Fprintf(c.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	for _, s := range c.states {
		fmt.Fprintf(c.w, "%s{controller=\"%s\"} %s\n", name, escapeLabel(s.Name), fmtFloat(v(s)))
	}
}

// famWriter emits one metric family at a time across every engine, so
// HELP/TYPE headers appear exactly once per family as the format
// requires.
type famWriter struct {
	w     *bufio.Writer
	names []string
	snaps []obs.Snapshot
}

func (f *famWriter) header(name, help, typ string) {
	fmt.Fprintf(f.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func (f *famWriter) simple(name, help, typ string, v func(obs.Snapshot) float64) {
	f.header(name, help, typ)
	for i, n := range f.names {
		fmt.Fprintf(f.w, "%s{engine=\"%s\"} %s\n", name, escapeLabel(n), fmtFloat(v(f.snaps[i])))
	}
}

func (f *famWriter) counter(name, help string, v func(obs.Snapshot) float64) {
	f.simple(name, help, "counter", v)
}

func (f *famWriter) gauge(name, help string, v func(obs.Snapshot) float64) {
	f.simple(name, help, "gauge", v)
}

// drains is the one multi-label family: counter-node drain outcomes by
// kind (D-PRCU and SRCU populate it; other engines stay at zero).
func (f *famWriter) drains() {
	const name = "prcu_drains_total"
	f.header(name, "Counter-node drains by resolution kind.", "counter")
	for i, n := range f.names {
		s := f.snaps[i]
		e := escapeLabel(n)
		fmt.Fprintf(f.w, "%s{engine=\"%s\",kind=\"optimistic\"} %d\n", name, e, s.DrainsOptimistic)
		fmt.Fprintf(f.w, "%s{engine=\"%s\",kind=\"gate\"} %d\n", name, e, s.DrainsGate)
		fmt.Fprintf(f.w, "%s{engine=\"%s\",kind=\"piggyback\"} %d\n", name, e, s.DrainsPiggyback)
	}
}

// blame renders the per-slot blame families for engines whose flight
// recorder is (or was) armed: cumulative delay, sample count, worst
// single delay, and the per-slot delay histogram, all under a slot
// label. Only the Snapshot's top offenders are exported — the full
// per-slot map lives behind /debug/prcu/tracez and obs.TopBlame.
func (f *famWriter) blame() {
	type slotRow struct {
		engine string
		e      obs.BlameEntry
	}
	var rows []slotRow
	for i, n := range f.names {
		for _, be := range f.snaps[i].BlameTop {
			rows = append(rows, slotRow{n, be})
		}
	}
	if len(rows) == 0 {
		return
	}
	family := func(name, help, typ string, v func(obs.BlameEntry) float64) {
		f.header(name, help, typ)
		for _, r := range rows {
			fmt.Fprintf(f.w, "%s{engine=\"%s\",slot=\"%d\"} %s\n",
				name, escapeLabel(r.engine), r.e.Slot, fmtFloat(v(r.e)))
		}
	}
	family("prcu_blame_slot_seconds_total", "Cumulative delay charged to the reader slot by blocked waits (top offenders only).", "counter",
		func(e obs.BlameEntry) float64 { return float64(e.TotalNs) * 1e-9 })
	family("prcu_blame_slot_samples_total", "Blame samples charged to the reader slot (top offenders only).", "counter",
		func(e obs.BlameEntry) float64 { return float64(e.Samples) })
	family("prcu_blame_slot_max_seconds", "Worst single delay charged to the reader slot (top offenders only).", "gauge",
		func(e obs.BlameEntry) float64 { return float64(e.MaxNs) * 1e-9 })

	const hist = "prcu_blame_slot_delay_seconds"
	f.header(hist, "Per-slot distribution of delays charged by blocked waits (top offenders only).", "histogram")
	for _, r := range rows {
		h := r.e.DelayNs
		e, slot := escapeLabel(r.engine), r.e.Slot
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.HiNs == math.MaxInt64 {
				continue
			}
			fmt.Fprintf(f.w, "%s_bucket{engine=\"%s\",slot=\"%d\",le=\"%s\"} %d\n",
				hist, e, slot, fmtFloat(float64(b.HiNs)*1e-9), cum)
		}
		if h.Count > cum {
			cum = h.Count
		}
		fmt.Fprintf(f.w, "%s_bucket{engine=\"%s\",slot=\"%d\",le=\"+Inf\"} %d\n", hist, e, slot, cum)
		fmt.Fprintf(f.w, "%s_sum{engine=\"%s\",slot=\"%d\"} %s\n", hist, e, slot, fmtFloat(float64(h.SumNs)*1e-9))
		fmt.Fprintf(f.w, "%s_count{engine=\"%s\",slot=\"%d\"} %d\n", hist, e, slot, cum)
	}
}

// histogram renders one HistSummary per engine as a cumulative-bucket
// Prometheus histogram. The recorder's buckets are disjoint power-of-two
// ranges [LoNs, HiNs); each range's upper bound becomes an `le` bound
// (scaled — 1e-9 turns nanoseconds into seconds), counts accumulate, and
// the top catch-all bucket (HiNs == MaxInt64) folds into `+Inf`. Under
// concurrent recording the per-bucket sum can trail the histogram's own
// Count; the `+Inf` bucket and `_count` take the max so the invariants
// scrapers check (cumulative monotone, count == +Inf) hold regardless.
func (f *famWriter) histogram(name, help string, scale float64, v func(obs.Snapshot) obs.HistSummary) {
	f.header(name, help, "histogram")
	for i, n := range f.names {
		h := v(f.snaps[i])
		e := escapeLabel(n)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.HiNs == math.MaxInt64 {
				continue // catch-all range: represented by +Inf below
			}
			fmt.Fprintf(f.w, "%s_bucket{engine=\"%s\",le=\"%s\"} %d\n",
				name, e, fmtFloat(float64(b.HiNs)*scale), cum)
		}
		if h.Count > cum {
			cum = h.Count
		}
		fmt.Fprintf(f.w, "%s_bucket{engine=\"%s\",le=\"+Inf\"} %d\n", name, e, cum)
		fmt.Fprintf(f.w, "%s_sum{engine=\"%s\"} %s\n", name, e, fmtFloat(float64(h.SumNs)*scale))
		fmt.Fprintf(f.w, "%s_count{engine=\"%s\"} %d\n", name, e, cum)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format; the call
// sites supply the surrounding quotes, so only the three escape-worthy
// characters are rewritten here.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
