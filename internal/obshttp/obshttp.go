// Package obshttp is the live export plane over the obs registry: every
// engine registered with obs.Register (prcu.RegisterMetrics, or
// automatically by Options.Metrics) is served on five endpoints —
//
//	GET /metrics            Prometheus text exposition (v0.0.4)
//	GET /debug/prcu/stats   full JSON Snapshot per engine
//	GET /debug/prcu/trace   event-ring dump for one engine (?engine=X)
//	GET /debug/prcu/tracez  flight-recorder spans as Chrome trace JSON (?engine=X)
//	GET /debug/prcu/health  stall/backlog-aware status (200 ok, 503 degraded)
//
// It is pull-only and stdlib-only: scraping takes Snapshots, which read
// the recording structures atomically, so serving traffic costs the
// engines nothing between scrapes.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"prcu/internal/obs"
)

// Handler returns the export-plane handler with all five endpoints
// mounted at their canonical paths. Each call returns an independent
// handler (the health endpoint keeps per-handler rate-window state);
// mount one per server.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", get(metricsHandler))
	mux.HandleFunc("/debug/prcu/stats", get(statsHandler))
	mux.HandleFunc("/debug/prcu/trace", get(traceHandler))
	mux.HandleFunc("/debug/prcu/tracez", get(tracezHandler))
	mux.HandleFunc("/debug/prcu/health", get(newHealthState().serve))
	return mux
}

func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// snapshots collects (name, Snapshot) for every registered engine in
// sorted name order — one consistent pass shared by the endpoints.
func snapshots() (names []string, snaps []obs.Snapshot) {
	obs.EachRegistered(func(name string, m *obs.Metrics) {
		names = append(names, name)
		snaps = append(snaps, m.Snapshot())
	})
	return names, snaps
}

func statsHandler(w http.ResponseWriter, _ *http.Request) {
	names, snaps := snapshots()
	out := make(map[string]obs.Snapshot, len(names))
	for i, n := range names {
		out[n] = snaps[i]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func traceHandler(w http.ResponseWriter, r *http.Request) {
	engine := r.URL.Query().Get("engine")
	if engine == "" {
		http.Error(w, "missing ?engine= (registered: "+
			strings.Join(obs.RegisteredNames(), ", ")+")", http.StatusBadRequest)
		return
	}
	m := obs.Registered(engine)
	if m == nil {
		http.Error(w, fmt.Sprintf("no engine registered as %q (registered: %s)",
			engine, strings.Join(obs.RegisteredNames(), ", ")), http.StatusNotFound)
		return
	}
	evs := m.TraceSnapshot()
	if r.URL.Query().Get("format") == "json" {
		type jsonEvent struct {
			TimeNs int64  `json:"time_ns"`
			Kind   string `json:"kind"`
			Reader int32  `json:"reader"`
			Value  uint64 `json:"value"`
		}
		out := struct {
			Engine string      `json:"engine"`
			Events []jsonEvent `json:"events"`
		}{Engine: engine, Events: make([]jsonEvent, 0, len(evs))}
		for _, ev := range evs {
			out.Events = append(out.Events, jsonEvent{ev.TimeNs, ev.Kind.String(), ev.Reader, ev.Value})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# engine %s: %d events, oldest first; +offset from first event\n", engine, len(evs))
	if len(evs) == 0 {
		return
	}
	base := evs[0].TimeNs
	for _, ev := range evs {
		fmt.Fprintf(w, "+%-12d %-16s reader=%-4d value=%d\n",
			ev.TimeNs-base, ev.Kind, ev.Reader, ev.Value)
	}
}
