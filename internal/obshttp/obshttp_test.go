package obshttp

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"prcu/internal/core"
	"prcu/internal/obs"
)

// engineNames are the 8 flavors the export plane must serve, as the
// registry sorts them.
var engineNames = []string{"D", "DEER", "Dist", "EER", "SRCU", "Time", "Tree", "URCU"}

// registerAllEngines builds every engine with metrics attached, drives
// enough traffic that waits, sections, and one reclaim flush have data,
// and registers each under its flavor name. Cleanup unbinds them so
// tests do not leak registrations into each other.
func registerAllEngines(t *testing.T) {
	t.Helper()
	mk := map[string]func() core.RCU{
		"EER":  func() core.RCU { return core.NewEER(8, nil) },
		"D":    func() core.RCU { return core.NewD(8, 64) },
		"DEER": func() core.RCU { return core.NewDEER(8, 4, nil) },
		"Time": func() core.RCU { return core.NewTimeRCU(8, nil) },
		"URCU": func() core.RCU { return core.NewURCU(8) },
		"Tree": func() core.RCU { return core.NewTreeRCU(8) },
		"Dist": func() core.RCU { return core.NewDistRCU(8) },
		"SRCU": func() core.RCU { return core.NewSRCU(8) },
	}
	for name, f := range mk {
		r := f()
		m := obs.New()
		m.SetSectionSampleShift(0)
		m.EnsureReaders(8)
		m.EnableTrace(256)
		r.(core.MetricsCarrier).SetMetrics(m)

		rd, err := r.Register()
		if err != nil {
			t.Fatalf("%s: Register: %v", name, err)
		}
		for i := 0; i < 10; i++ {
			rd.Enter(core.Value(i))
			rd.Exit(core.Value(i))
		}
		for i := 0; i < 3; i++ {
			r.WaitForReaders(core.All())
		}
		rd.Unregister()
		// Synthesize one reclaim flush so the reclaimer histograms carry
		// samples without standing up a full Reclaimer per engine.
		m.ReclaimEnqueue(64)
		m.ReclaimResolve(64, true)
		m.ReclaimFlush(1, 1, 1500, false)

		obs.Register(name, m)
		t.Cleanup(func() { obs.Register(name, nil) })
	}
}

// series is one parsed sample line of the exposition text.
type series struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is the in-test scrape-format checker's parser: it
// splits the body into HELP/TYPE headers and sample lines, failing the
// test on anything malformed.
func parseExposition(t *testing.T, body string) (help, typ map[string]string, samples []series) {
	t.Helper()
	help, typ = map[string]string{}, map[string]string{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(rest) != 2 || rest[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			help[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(rest) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, rest[1])
			}
			typ[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		samples = append(samples, parseSample(t, ln+1, line))
	}
	return help, typ, samples
}

func parseSample(t *testing.T, ln int, line string) series {
	t.Helper()
	s := series{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value: %q", ln, line)
	} else {
		s.name = rest[:i]
		if rest[i] == '{' {
			end := strings.Index(rest, "} ")
			if end < 0 {
				t.Fatalf("line %d: unterminated label set: %q", ln, line)
			}
			for _, pair := range splitLabels(rest[i+1 : end]) {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					t.Fatalf("line %d: malformed label %q", ln, pair)
				}
				val := pair[eq+1:]
				if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					t.Fatalf("line %d: unquoted label value %q", ln, pair)
				}
				s.labels[pair[:eq]] = unescapeLabel(val[1 : len(val)-1])
			}
			rest = rest[end+2:]
		} else {
			rest = rest[i+1:]
		}
	}
	v, err := parseValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// splitLabels splits a{...} label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth, start := false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func scrape(t *testing.T, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsExposition(t *testing.T) {
	registerAllEngines(t)
	code, body := scrape(t, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	help, typ, samples := parseExposition(t, body)

	// Every sample's family (stripping histogram suffixes) must carry
	// HELP and TYPE.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typ[b] == "histogram" {
				return b
			}
		}
		return name
	}
	for _, s := range samples {
		b := base(s.name)
		if help[b] == "" {
			t.Fatalf("series %s: family %s has no HELP", s.name, b)
		}
		if typ[b] == "" {
			t.Fatalf("series %s: family %s has no TYPE", s.name, b)
		}
		if s.labels["engine"] == "" {
			t.Fatalf("series %s: missing engine label", s.name)
		}
	}

	// All 8 engines appear, with the acceptance-critical families:
	// backlog gauges and wait/section/flush histograms.
	have := map[string]map[string]bool{} // family -> engine set
	for _, s := range samples {
		b := base(s.name)
		if have[b] == nil {
			have[b] = map[string]bool{}
		}
		have[b][s.labels["engine"]] = true
	}
	for _, fam := range []string{
		"prcu_waits_total", "prcu_reclaim_pending", "prcu_reclaim_pending_bytes",
		"prcu_wait_duration_seconds", "prcu_section_duration_seconds",
		"prcu_reclaim_flush_duration_seconds", "prcu_reclaim_batch_size",
	} {
		for _, eng := range engineNames {
			if !have[fam][eng] {
				t.Errorf("family %s: no series for engine %s", fam, eng)
			}
		}
	}

	checkHistograms(t, typ, samples)

	// Traffic actually landed: every engine's wait histogram counted the
	// 3 waits, and the flush histogram the 1 synthetic flush.
	for _, s := range samples {
		if s.name == "prcu_wait_duration_seconds_count" && s.value != 3 {
			t.Errorf("engine %s: wait count = %v, want 3", s.labels["engine"], s.value)
		}
		if s.name == "prcu_reclaim_flush_duration_seconds_count" && s.value != 1 {
			t.Errorf("engine %s: flush count = %v, want 1", s.labels["engine"], s.value)
		}
	}
}

// checkHistograms enforces the histogram invariants of the format: per
// series the `le` bounds strictly increase and end at +Inf, the
// cumulative counts are monotone, and _count equals the +Inf bucket.
func checkHistograms(t *testing.T, typ map[string]string, samples []series) {
	t.Helper()
	type hist struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
		count  float64
		hasCnt bool
		hasSum bool
	}
	hs := map[string]*hist{} // "family|engine"
	get := func(fam, eng string) *hist {
		k := fam + "|" + eng
		if hs[k] == nil {
			hs[k] = &hist{}
		}
		return hs[k]
	}
	for _, s := range samples {
		if b, ok := strings.CutSuffix(s.name, "_bucket"); ok && typ[b] == "histogram" {
			h := get(b, s.labels["engine"])
			le := s.labels["le"]
			if le == "+Inf" {
				h.inf, h.hasInf = s.value, true
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: unparsable le %q", s.name, le)
			}
			h.les = append(h.les, v)
			h.counts = append(h.counts, s.value)
		} else if b, ok := strings.CutSuffix(s.name, "_count"); ok && typ[b] == "histogram" {
			h := get(b, s.labels["engine"])
			h.count, h.hasCnt = s.value, true
		} else if b, ok := strings.CutSuffix(s.name, "_sum"); ok && typ[b] == "histogram" {
			get(b, s.labels["engine"]).hasSum = true
		}
	}
	keys := make([]string, 0, len(hs))
	for k := range hs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hs[k]
		if !h.hasInf {
			t.Errorf("%s: no +Inf bucket", k)
			continue
		}
		if !h.hasCnt || !h.hasSum {
			t.Errorf("%s: missing _count or _sum", k)
			continue
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Errorf("%s: le bounds not increasing: %v", k, h.les)
			}
			if h.counts[i] < h.counts[i-1] {
				t.Errorf("%s: cumulative counts decrease: %v", k, h.counts)
			}
		}
		if n := len(h.counts); n > 0 && h.inf < h.counts[n-1] {
			t.Errorf("%s: +Inf bucket %v below last finite bucket %v", k, h.inf, h.counts[n-1])
		}
		if h.count != h.inf {
			t.Errorf("%s: _count %v != +Inf bucket %v", k, h.count, h.inf)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	m := obs.New()
	name := "we\"ird\\eng\nine"
	obs.Register(name, m)
	t.Cleanup(func() { obs.Register(name, nil) })
	code, body := scrape(t, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	want := `engine="we\"ird\\eng\nine"`
	if !strings.Contains(body, want) {
		t.Fatalf("escaped label %s not found in body", want)
	}
}

func TestStatsEndpoint(t *testing.T) {
	registerAllEngines(t)
	code, body := scrape(t, "/debug/prcu/stats")
	if code != 200 {
		t.Fatalf("GET stats = %d", code)
	}
	var out map[string]obs.Snapshot
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	for _, eng := range engineNames {
		s, ok := out[eng]
		if !ok {
			t.Fatalf("stats missing engine %s (have %v)", eng, len(out))
		}
		if !s.Enabled || s.Waits != 3 {
			t.Fatalf("engine %s snapshot: enabled=%v waits=%d", eng, s.Enabled, s.Waits)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	registerAllEngines(t)
	if code, _ := scrape(t, "/debug/prcu/trace"); code != 400 {
		t.Fatalf("missing engine param: code %d, want 400", code)
	}
	if code, _ := scrape(t, "/debug/prcu/trace?engine=nope"); code != 404 {
		t.Fatalf("unknown engine: code %d, want 404", code)
	}
	code, body := scrape(t, "/debug/prcu/trace?engine=EER")
	if code != 200 {
		t.Fatalf("text trace = %d", code)
	}
	if !strings.Contains(body, "wait-begin") || !strings.Contains(body, "enter") {
		t.Fatalf("text trace missing events:\n%s", body)
	}
	code, body = scrape(t, "/debug/prcu/trace?engine=EER&format=json")
	if code != 200 {
		t.Fatalf("json trace = %d", code)
	}
	var out struct {
		Engine string `json:"engine"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if out.Engine != "EER" || len(out.Events) == 0 {
		t.Fatalf("json trace: engine=%q events=%d", out.Engine, len(out.Events))
	}
}

func TestHealthEndpoint(t *testing.T) {
	registerAllEngines(t)
	h := Handler()
	req := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prcu/health", nil))
		return rec.Code, rec.Body.String()
	}
	code, body := req()
	if code != 200 {
		t.Fatalf("healthy scrape = %d: %s", code, body)
	}
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthy body: %s", body)
	}

	// A stall report in the window degrades the next scrape; the one
	// after (clean window) recovers.
	obs.Registered("EER").StallDetected(2)
	code, body = req()
	if code != 503 || !strings.Contains(body, "grace-period stalls in window") {
		t.Fatalf("stalled scrape = %d: %s", code, body)
	}
	code, _ = req()
	if code != 200 {
		t.Fatalf("recovered scrape = %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	for _, path := range []string{"/metrics", "/debug/prcu/stats", "/debug/prcu/health"} {
		rec := httptest.NewRecorder()
		Handler().ServeHTTP(rec, httptest.NewRequest("POST", path, nil))
		if rec.Code != 405 {
			t.Fatalf("POST %s = %d, want 405", path, rec.Code)
		}
	}
}

func TestHandlerIndependentHealthWindows(t *testing.T) {
	registerAllEngines(t)
	a, b := Handler(), Handler()
	// Prime handler a's window, then stall: a sees the stall relative to
	// its primed sample; b's first scrape (zero baseline) sees it too —
	// both must degrade independently without sharing prev state.
	hA := func() int {
		rec := httptest.NewRecorder()
		a.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prcu/health", nil))
		return rec.Code
	}
	hB := func() int {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/prcu/health", nil))
		return rec.Code
	}
	if hA() != 200 {
		t.Fatal("a: priming scrape not ok")
	}
	obs.Registered("EER").StallDetected(1)
	if hA() != 503 {
		t.Fatal("a: did not see the stall")
	}
	if hB() != 503 {
		t.Fatal("b: fresh handler did not see the stall from its zero baseline")
	}
	if hA() != 200 {
		t.Fatal("a: did not recover on clean window")
	}
}
