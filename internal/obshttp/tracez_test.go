package obshttp

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/reclaim"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSpans is the synthetic flight-recorder content of the golden
// test: one complete grace period's causal chain (GP 42: retire →
// coalesce → wait → callback) plus an autotuner expedite (GP 77) linked
// into the chain through the coalesce span. All timestamps are fixed,
// so the rendered trace is byte-for-byte deterministic.
func goldenSpans() []obs.FlightSpan {
	return []obs.FlightSpan{
		{GP: 77, Kind: obs.SpanExpedite, Track: "autotune",
			StartNs: 500, EndNs: 600, Count: 1, Label: "adapt: elevated"},
		{GP: 42, Kind: obs.SpanRetire, Track: "reclaim/0",
			StartNs: 1000, EndNs: 2000, Count: 1},
		{GP: 42, Link: 77, Kind: obs.SpanCoalesce, Track: "reclaim/0",
			StartNs: 2000, EndNs: 2500, Count: 1, Label: "all"},
		{GP: 42, Kind: obs.SpanWait, Track: "wait",
			StartNs: 2500, EndNs: 4500, Count: 3,
			Blame: []obs.BlameSample{{Slot: 2, DelayNs: 1800}}},
		{GP: 42, Kind: obs.SpanCallback, Track: "reclaim/0",
			StartNs: 4500, EndNs: 5000, Count: 1},
	}
}

// TestTracezGolden pins the Chrome-trace rendering: a synthesized
// grace-period chain must render to exactly the checked-in golden file,
// every event must carry the trace-event format's required fields, and
// the flow chains must pair up (one "s", one terminal "f" with bp:"e",
// "t" between, timestamps non-decreasing). Regenerate with -update.
func TestTracezGolden(t *testing.T) {
	m := obs.New()
	m.EnableFlightRecorder(64)
	for _, sp := range goldenSpans() {
		m.FlightRecord(sp)
	}
	obs.Register("golden", m)
	t.Cleanup(func() { obs.Register("golden", nil) })

	code, body := scrape(t, "/debug/prcu/tracez?engine=golden")
	if code != 200 {
		t.Fatalf("GET tracez = %d: %s", code, body)
	}

	goldenPath := filepath.Join("testdata", "tracez_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if body != string(want) {
		t.Errorf("tracez output drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", body, want)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("tracez is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("tracez rendered no events")
	}

	type flowState struct {
		s, t, f int
		lastTs  float64
		fLast   bool
	}
	flows := map[float64]*flowState{}
	completes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing required field %q: %v", field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			name, _ := ev["name"].(string)
			completes[name] = true
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
		case "s", "t", "f":
			id, ok := ev["id"].(float64)
			if !ok {
				t.Fatalf("flow event missing id: %v", ev)
			}
			fs := flows[id]
			if fs == nil {
				fs = &flowState{}
				flows[id] = fs
			}
			ts := ev["ts"].(float64)
			if ts < fs.lastTs {
				t.Errorf("flow %v: timestamps regress (%v after %v)", id, ts, fs.lastTs)
			}
			fs.lastTs = ts
			fs.fLast = ph == "f"
			switch ph {
			case "s":
				fs.s++
			case "t":
				fs.t++
			case "f":
				fs.f++
				if bp, _ := ev["bp"].(string); bp != "e" {
					t.Errorf("flow finish without bp:e: %v", ev)
				}
			}
		case "M":
		default:
			t.Errorf("unexpected phase %q: %v", ph, ev)
		}
	}
	// The full GP 42 chain must be present as complete events.
	for _, kind := range []string{"retire", "coalesce", "wait", "callback", "expedite"} {
		if !completes[kind] {
			t.Errorf("missing %q complete event", kind)
		}
	}
	// Both the GP 42 chain and the 77-link chain must pair: exactly one
	// start and one terminal finish each.
	if len(flows) != 2 {
		t.Fatalf("want flow chains for GP 42 and link 77, got ids %v", flows)
	}
	for id, fs := range flows {
		if fs.s != 1 || fs.f != 1 || !fs.fLast {
			t.Errorf("flow %v: want one s and one terminal f, got s=%d t=%d f=%d (f last: %v)",
				id, fs.s, fs.t, fs.f, fs.fLast)
		}
	}
}

// TestTracezEngineErrors pins the per-engine endpoints' misuse replies:
// a missing engine parameter is a 400 and an unknown engine a 404, both
// naming the engines that are registered.
func TestTracezEngineErrors(t *testing.T) {
	m := obs.New()
	obs.Register("present", m)
	t.Cleanup(func() { obs.Register("present", nil) })

	for _, path := range []string{"/debug/prcu/trace", "/debug/prcu/tracez"} {
		code, body := scrape(t, path+"?engine=absent")
		if code != 404 {
			t.Errorf("GET %s?engine=absent = %d, want 404", path, code)
		}
		if !strings.Contains(body, "registered:") || !strings.Contains(body, "present") {
			t.Errorf("%s 404 body does not list registered engines: %q", path, body)
		}
		code, body = scrape(t, path)
		if code != 400 {
			t.Errorf("GET %s (no engine) = %d, want 400", path, code)
		}
		if !strings.Contains(body, "present") {
			t.Errorf("%s 400 body does not list registered engines: %q", path, body)
		}
	}
}

// TestTracezConcurrentScrape races the tracez endpoint against live
// waits, reads, and reclaimer retires on every engine flavor with the
// flight recorder armed — the scrape must always return valid JSON and
// the recorder's locking must hold up under -race.
func TestTracezConcurrentScrape(t *testing.T) {
	mk := map[string]func() core.RCU{
		"EER":    func() core.RCU { return core.NewEER(8, nil) },
		"D":      func() core.RCU { return core.NewD(8, 64) },
		"DEER":   func() core.RCU { return core.NewDEER(8, 4, nil) },
		"Time":   func() core.RCU { return core.NewTimeRCU(8, nil) },
		"URCU":   func() core.RCU { return core.NewURCU(8) },
		"Tree":   func() core.RCU { return core.NewTreeRCU(8) },
		"Dist":   func() core.RCU { return core.NewDistRCU(8) },
		"SRCU":   func() core.RCU { return core.NewSRCU(8) },
		"Packed": func() core.RCU { return core.NewPacked(8) },
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	names := make([]string, 0, len(mk))
	for name, f := range mk {
		name := "tracez-" + name
		names = append(names, name)
		r := f()
		m := obs.New()
		m.EnableFlightRecorder(256)
		r.(core.MetricsCarrier).SetMetrics(m)
		obs.Register(name, m)
		t.Cleanup(func() { obs.Register(name, nil) })

		rec := reclaim.New(r, reclaim.Config{Shards: 1, Metrics: m})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := rec.CloseCtx(ctx); err != nil {
				t.Errorf("%s: reclaimer close: %v", name, err)
			}
		})

		wg.Add(1)
		go func(r core.RCU) {
			defer wg.Done()
			rd, err := r.Register()
			if err != nil {
				return
			}
			defer rd.Unregister()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rd.Enter(core.Value(i % 8))
				rd.Exit(core.Value(i % 8))
			}
		}(r)
		wg.Add(1)
		go func(r core.RCU) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.WaitForReaders(core.All())
				rec.Retire(struct{}{}, core.All(), 64, nil)
			}
		}(r)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, name := range names {
			code, body := scrape(t, "/debug/prcu/tracez?engine="+name)
			if code != 200 {
				t.Fatalf("GET tracez engine=%s = %d: %s", name, code, body)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal([]byte(body), &doc); err != nil {
				t.Fatalf("engine %s: tracez not valid JSON under concurrency: %v", name, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
