package obshttp

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"prcu/internal/obs"
)

// healthState is the per-handler rate window: the previous sample taken
// for each engine, so each scrape reports what happened since the last
// one rather than since process start. The first scrape of an engine
// uses a zero baseline (rates since the handler was built).
type healthState struct {
	mu    sync.Mutex
	start time.Time
	prev  map[string]healthSample
}

type healthSample struct {
	at   time.Time
	snap obs.Snapshot
}

func newHealthState() *healthState {
	return &healthState{start: time.Now(), prev: map[string]healthSample{}}
}

// engineHealth is one engine's row in the health report: its status,
// why it is degraded (empty when ok), and the windowed rates the verdict
// was computed from.
type engineHealth struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`

	WindowSeconds float64 `json:"window_seconds"`
	WaitsPerSec   float64 `json:"waits_per_sec"`
	EntersPerSec  float64 `json:"enters_per_sec"`
	Selectivity   float64 `json:"selectivity"`
	WaitP99Ns     float64 `json:"wait_p99_ns"`
	Stalls        uint64  `json:"stalls"`
	Backlog       int64   `json:"backlog"`
	BacklogSlope  float64 `json:"backlog_slope_per_sec"`
	OldestAgeNs   int64   `json:"oldest_age_ns"`
	Overloads     uint64  `json:"overloads"`

	// Flight-recorder blame: populated only while the recorder is armed.
	// Blame lists the top offender slots by cumulative delay charged.
	FlightSpans  int              `json:"flight_spans,omitempty"`
	BlameSamples uint64           `json:"blame_samples,omitempty"`
	BlameNs      int64            `json:"blame_ns,omitempty"`
	Blame        []obs.BlameEntry `json:"blame,omitempty"`
}

// serve reports 200 with status "ok" when every engine's window is
// clean, 503 with status "degraded" when any engine saw a stall report,
// a reclaimer hard-watermark overload, or a growing reclamation backlog
// in the window since the previous health scrape.
func (h *healthState) serve(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	engines := map[string]engineHealth{}
	degraded := false

	obs.EachRegistered(func(name string, m *obs.Metrics) {
		cur := m.Snapshot()
		h.mu.Lock()
		ps, ok := h.prev[name]
		if !ok {
			ps = healthSample{at: h.start}
		}
		h.prev[name] = healthSample{at: now, snap: cur}
		h.mu.Unlock()

		dt := now.Sub(ps.at)
		rt := obs.Delta(ps.snap, cur, dt)
		eh := engineHealth{
			Status:        "ok",
			WindowSeconds: dt.Seconds(),
			WaitsPerSec:   rt.WaitsPerSec,
			EntersPerSec:  rt.EntersPerSec,
			Selectivity:   rt.Selectivity,
			WaitP99Ns:     rt.WaitP99Ns,
			Stalls:        rt.Stalls,
			Backlog:       rt.ReclaimBacklog,
			BacklogSlope:  rt.BacklogSlope,
			OldestAgeNs:   rt.OldestAgeNs,
			Overloads:     rt.Overloads,
			FlightSpans:   cur.FlightLen,
			BlameSamples:  cur.BlameSamples,
			BlameNs:       cur.BlameNs,
			Blame:         cur.BlameTop,
		}
		if rt.Stalls > 0 {
			eh.Reasons = append(eh.Reasons, "grace-period stalls in window")
		}
		if rt.Overloads > 0 {
			eh.Reasons = append(eh.Reasons, "reclaimer hard-watermark overloads in window")
		}
		if rt.ReclaimBacklog > 0 && rt.BacklogSlope > 0 {
			eh.Reasons = append(eh.Reasons, "reclamation backlog growing")
		}
		if len(eh.Reasons) > 0 {
			eh.Status = "degraded"
			degraded = true
		}
		engines[name] = eh
	})

	// Adaptive controllers report alongside the engines: a controller in
	// degraded mode, or one whose last tick breached its envelope, marks
	// the process degraded even when no raw-rate heuristic fired — the
	// controller has strictly more context (hysteresis, the operator's
	// declared envelope) than the per-window checks above.
	controllers := map[string]controllerHealth{}
	for _, cs := range obs.Controllers() {
		ch := controllerHealth{ControllerState: cs}
		if cs.Breached() {
			ch.Reasons = append(ch.Reasons, "target envelope breached at last tick")
		}
		if cs.Mode == "degraded" {
			ch.Reasons = append(ch.Reasons, "controller in degraded mode")
		}
		if len(ch.Reasons) > 0 {
			degraded = true
		}
		controllers[cs.Name] = ch
	}

	// Live migrations report alongside: an in-flight migration is
	// informational (the process keeps serving through the window), but
	// a migration whose last run failed or rolled back marks the process
	// degraded until a later run succeeds — the operator asked for an
	// engine the workload is not on.
	migrations := map[string]migrationHealth{}
	for _, ms := range obs.Migrations() {
		mh := migrationHealth{MigrationState: ms}
		if ms.Active {
			mh.Reasons = append(mh.Reasons, "migration in flight: "+ms.From+" -> "+ms.To)
		}
		if ms.Phase == "stuck-rollback" {
			// A rollback whose mandatory target drain keeps failing is
			// an incident even while technically "in flight": dual
			// coverage is pinned open until a reader outside the
			// migration's fronts drains or is hunted down.
			mh.Reasons = append(mh.Reasons, "rollback target drain stuck: "+ms.LastError)
			degraded = true
		}
		if ms.LastError != "" && !ms.Active {
			mh.Reasons = append(mh.Reasons, "last migration did not complete: "+ms.LastError)
			degraded = true
		}
		migrations[ms.Name] = mh
	}

	status, code := "ok", http.StatusOK
	if degraded {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Status      string                      `json:"status"`
		Engines     map[string]engineHealth     `json:"engines"`
		Controllers map[string]controllerHealth `json:"controllers,omitempty"`
		Migrations  map[string]migrationHealth  `json:"migrations,omitempty"`
	}{status, engines, controllers, migrations})
}

// controllerHealth is one adaptive controller's row in the health
// report: its full self-reported state plus the health verdict's reasons.
type controllerHealth struct {
	obs.ControllerState
	Reasons []string `json:"reasons,omitempty"`
}

// migrationHealth is one live migrator's row in the health report: its
// full self-reported state plus the health verdict's reasons.
type migrationHealth struct {
	obs.MigrationState
	Reasons []string `json:"reasons,omitempty"`
}
