package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"prcu/internal/obs"
)

// tracezHandler renders one engine's flight-recorder contents as Chrome
// trace-event JSON (the chrome://tracing / Perfetto "JSON Array Format"
// wrapped in an object): one process per engine, one thread per recorder
// track ("wait", "reclaim/<shard>", "migrate", "autotune"), every
// FlightSpan as a ph:"X" complete event, and flow arrows (ph:"s"/"t"/"f")
// threaded along the grace-period ID so the retire → coalesce → wait →
// callback chain of each GP renders as connected arrows across tracks.
// Spans carrying a Link (an autotuner expedite's GP) join that GP's flow
// too, connecting the controller's decision to the flush it caused.
func tracezHandler(w http.ResponseWriter, r *http.Request) {
	engine := r.URL.Query().Get("engine")
	if engine == "" {
		http.Error(w, "missing ?engine= (registered: "+
			strings.Join(obs.RegisteredNames(), ", ")+")", http.StatusBadRequest)
		return
	}
	m := obs.Registered(engine)
	if m == nil {
		http.Error(w, fmt.Sprintf("no engine registered as %q (registered: %s)",
			engine, strings.Join(obs.RegisteredNames(), ", ")), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeChromeTrace(w, engine, m.FlightSnapshot())
}

// writeChromeTrace emits spans as {"traceEvents": [...]} for engine. The
// output is deterministic for a given span set: timestamps are normalized
// to the earliest span, thread IDs follow sorted track names, events are
// sorted by (ts, tid, name), and flow chains by GP then start time — so
// golden tests can compare bytes.
func writeChromeTrace(w http.ResponseWriter, engine string, spans []obs.FlightSpan) {
	// Timestamp base and thread-ID assignment. Chrome trace timestamps are
	// microseconds; emitting fractional µs keeps nanosecond precision.
	var base int64
	tracks := map[string]int{}
	for i, sp := range spans {
		if i == 0 || sp.StartNs < base {
			base = sp.StartNs
		}
		tracks[sp.Track] = 0
	}
	names := make([]string, 0, len(tracks))
	for t := range tracks {
		names = append(names, t)
	}
	sort.Strings(names)
	for i, t := range names {
		tracks[t] = i + 1 // tid 0 is reserved for metadata convention
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	events := make([]map[string]any, 0, 2*len(spans)+len(names)+1)
	events = append(events, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
		"args": map[string]any{"name": "prcu: " + engine},
	})
	for _, t := range names {
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tracks[t], "ts": 0,
			"args": map[string]any{"name": t},
		})
	}

	// Complete events, one per span, sorted for determinism.
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if sa.StartNs != sb.StartNs {
			return sa.StartNs < sb.StartNs
		}
		if ta, tb := tracks[sa.Track], tracks[sb.Track]; ta != tb {
			return ta < tb
		}
		return sa.Kind < sb.Kind
	})
	for _, i := range order {
		sp := spans[i]
		args := map[string]any{"gp": sp.GP, "count": sp.Count}
		if sp.Label != "" {
			args["label"] = sp.Label
		}
		if sp.Link != 0 {
			args["link"] = sp.Link
		}
		if len(sp.Blame) > 0 {
			args["blame"] = sp.Blame
		}
		dur := us(sp.EndNs) - us(sp.StartNs)
		if dur < 0 {
			dur = 0
		}
		events = append(events, map[string]any{
			"name": sp.Kind.String(), "cat": "prcu", "ph": "X",
			"ts": us(sp.StartNs), "dur": dur,
			"pid": 1, "tid": tracks[sp.Track], "args": args,
		})
	}

	// Flow arrows along each GP's causal chain. A span belongs to its own
	// GP's chain, and — when it carries a Link — to the linked GP's chain
	// as well (the expedite span that minted Link starts that chain).
	byGP := map[uint64][]int{}
	for i, sp := range spans {
		byGP[sp.GP] = append(byGP[sp.GP], i)
		if sp.Link != 0 {
			byGP[sp.Link] = append(byGP[sp.Link], i)
		}
	}
	gps := make([]uint64, 0, len(byGP))
	for gp, members := range byGP {
		if len(members) >= 2 {
			gps = append(gps, gp)
		}
	}
	sort.Slice(gps, func(a, b int) bool { return gps[a] < gps[b] })
	for _, gp := range gps {
		members := byGP[gp]
		sort.SliceStable(members, func(a, b int) bool {
			return spans[members[a]].StartNs < spans[members[b]].StartNs
		})
		for step, i := range members {
			sp := spans[i]
			ev := map[string]any{
				"name": "gp", "cat": "prcu-gp", "id": gp,
				"ts": us(sp.StartNs), "pid": 1, "tid": tracks[sp.Track],
			}
			switch step {
			case 0:
				ev["ph"] = "s"
			case len(members) - 1:
				ev["ph"] = "f"
				ev["bp"] = "e" // bind to the enclosing slice, not the next one
			default:
				ev["ph"] = "t"
			}
			events = append(events, ev)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}
