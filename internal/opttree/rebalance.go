package opttree

// Relaxed AVL maintenance. After a structural change, the updater walks
// toward the root under parent-before-child locks, refreshing heights and
// rotating where the local balance factor exceeds one. Heights of
// unlocked grandchildren are read optimistically — the relaxation of
// "relaxed balance": a momentarily stale height only delays a rotation;
// a later update through the same region repairs it.

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fixHeightAndRebalance walks from n upward, fixing heights and rotating.
func (t *Tree) fixHeightAndRebalance(n *node) {
	for n != nil && n != t.rootHolder {
		p := n.parent.Load()
		if p == nil {
			return
		}
		p.mu.Lock()
		if n.parent.Load() != p || p.version.Load()&unlinkedBit != 0 {
			p.mu.Unlock()
			if n.version.Load()&unlinkedBit != 0 {
				return
			}
			continue // parent moved under us; retry this level
		}
		n.mu.Lock()
		if n.version.Load()&unlinkedBit != 0 {
			n.mu.Unlock()
			p.mu.Unlock()
			return
		}
		lh, rh := height(n.left.Load()), height(n.right.Load())
		bal := lh - rh
		switch {
		case bal > 1:
			t.rotateRightLocked(p, n)
		case bal < -1:
			t.rotateLeftLocked(p, n)
		default:
			newH := 1 + maxInt64(lh, rh)
			if n.height.Load() == newH {
				n.mu.Unlock()
				p.mu.Unlock()
				return // no propagation needed
			}
			n.height.Store(newH)
		}
		n.mu.Unlock()
		p.mu.Unlock()
		n = p
	}
}

// refreshHeight recomputes n's height from its children; caller holds n.
func refreshHeight(n *node) {
	n.height.Store(1 + maxInt64(height(n.left.Load()), height(n.right.Load())))
}

// rotateRightLocked rotates n right beneath p. Caller holds p and n; the
// rotation additionally locks n.left (and, for the double-rotation case,
// its right child), all in descending tree order.
func (t *Tree) rotateRightLocked(p, n *node) {
	l := n.left.Load()
	if l == nil {
		refreshHeight(n) // stale balance: left child vanished
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if height(l.right.Load()) > height(l.left.Load()) {
		// Left-right shape: rotate l left (locks descend n -> l -> lr) and
		// stop. Locking the promoted node for the outer rotation would
		// acquire a parent after its child — a deadlock hazard — so the
		// outer rotation is left to a later pass, which is exactly the
		// latitude relaxed balance grants.
		lr := l.right.Load()
		if lr != nil {
			lr.mu.Lock()
			rotateEdgeLeft(n, l, lr)
			lr.mu.Unlock()
		}
		return
	}
	rotateEdgeRight(p, n, l)
}

// rotateLeftLocked mirrors rotateRightLocked.
func (t *Tree) rotateLeftLocked(p, n *node) {
	r := n.right.Load()
	if r == nil {
		refreshHeight(n)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if height(r.left.Load()) > height(r.right.Load()) {
		// Right-left shape: inner rotation only; see rotateRightLocked.
		rl := r.left.Load()
		if rl != nil {
			rl.mu.Lock()
			rotateEdgeRight(n, r, rl)
			rl.mu.Unlock()
		}
		return
	}
	rotateEdgeLeft(p, n, r)
}

// rotateEdgeRight performs the pointer surgery of a right rotation: l (the
// locked left child of the locked n, whose locked parent is p) replaces n,
// and n becomes l's right child. Versions of n and l are marked shrinking
// for the duration so optimistic descents through either retry.
func rotateEdgeRight(p, n, l *node) {
	nOVL := n.version.Load()
	lOVL := l.version.Load()
	n.version.Store(nOVL | shrinkingBit)
	l.version.Store(lOVL | shrinkingBit)

	lr := l.right.Load()
	dir := 0
	if p.right.Load() == n {
		dir = 1
	}
	n.left.Store(lr)
	if lr != nil {
		lr.parent.Store(n)
	}
	l.right.Store(n)
	n.parent.Store(l)
	p.child(dir).Store(l)
	l.parent.Store(p)
	refreshHeight(n)
	refreshHeight(l)

	n.version.Store(nOVL + versionIncr)
	l.version.Store(lOVL + versionIncr)
}

// rotateEdgeLeft mirrors rotateEdgeRight.
func rotateEdgeLeft(p, n, r *node) {
	nOVL := n.version.Load()
	rOVL := r.version.Load()
	n.version.Store(nOVL | shrinkingBit)
	r.version.Store(rOVL | shrinkingBit)

	rl := r.left.Load()
	dir := 0
	if p.right.Load() == n {
		dir = 1
	}
	n.right.Store(rl)
	if rl != nil {
		rl.parent.Store(n)
	}
	r.left.Store(n)
	n.parent.Store(r)
	p.child(dir).Store(r)
	r.parent.Store(p)
	refreshHeight(n)
	refreshHeight(r)

	n.version.Store(nOVL + versionIncr)
	r.version.Store(rOVL + versionIncr)
}
