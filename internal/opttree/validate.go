package opttree

import "fmt"

// Validate checks the invariants of a quiescent tree: BST order over all
// nodes (routing nodes included), parent back-pointers, no reachable
// unlinked or shrinking nodes, and agreement between Size and the count of
// live (value-bearing) nodes. Quiescent-only: it takes no locks.
func (t *Tree) Validate() error {
	live := 0
	root := t.rootHolder.right.Load()
	if root != nil && root.parent.Load() != t.rootHolder {
		return fmt.Errorf("opttree: root parent pointer broken")
	}
	if err := validateNode(root, 0, ^uint64(0), &live); err != nil {
		return err
	}
	if got := t.Size(); got != live {
		return fmt.Errorf("opttree: Size() = %d but %d live keys reachable", got, live)
	}
	return nil
}

func validateNode(n *node, low, high uint64, live *int) error {
	if n == nil {
		return nil
	}
	if n.key < low || n.key > high {
		return fmt.Errorf("opttree: key %d outside [%d, %d]", n.key, low, high)
	}
	v := n.version.Load()
	if v&unlinkedBit != 0 {
		return fmt.Errorf("opttree: unlinked node %d reachable", n.key)
	}
	if v&shrinkingBit != 0 {
		return fmt.Errorf("opttree: node %d still marked shrinking at rest", n.key)
	}
	if n.hasValue.Load() {
		*live++
	}
	l, r := n.left.Load(), n.right.Load()
	if l != nil && l.parent.Load() != n {
		return fmt.Errorf("opttree: left child of %d has wrong parent", n.key)
	}
	if r != nil && r.parent.Load() != n {
		return fmt.Errorf("opttree: right child of %d has wrong parent", n.key)
	}
	if n.key > 0 {
		if err := validateNode(l, low, n.key-1, live); err != nil {
			return err
		}
	} else if l != nil {
		return fmt.Errorf("opttree: key 0 has a left child")
	}
	return validateNode(r, n.key+1, high, live)
}

// MaxDepth returns the deepest reachable node's depth (quiescent-only), a
// coarse balance indicator for tests.
func (t *Tree) MaxDepth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := walk(n.left.Load()), walk(n.right.Load())
		return 1 + int(maxInt64(int64(l), int64(r)))
	}
	return walk(t.rootHolder.right.Load())
}
