package opttree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Contains(5) || tr.Delete(5) || tr.Size() != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBasic(t *testing.T) {
	tr := New()
	if !tr.Insert(10, 100) || tr.Insert(10, 200) {
		t.Fatal("insert semantics wrong")
	}
	if v, ok := tr.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if !tr.Delete(10) || tr.Delete(10) || tr.Contains(10) {
		t.Fatal("delete semantics wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingNodeRevival(t *testing.T) {
	tr := New()
	// Create 20 with two children, delete it (becomes routing), re-insert.
	tr.Insert(20, 1)
	tr.Insert(10, 2)
	tr.Insert(30, 3)
	if !tr.Delete(20) {
		t.Fatal("delete 20")
	}
	if tr.Contains(20) {
		t.Fatal("routing node reported live")
	}
	if !tr.Contains(10) || !tr.Contains(30) {
		t.Fatal("children lost")
	}
	if !tr.Insert(20, 9) {
		t.Fatal("revival insert failed")
	}
	if v, ok := tr.Get(20); !ok || v != 9 {
		t.Fatalf("Get(20) = %d,%v after revival", v, ok)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	tr := New()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			_, in := model[k]
			if got := tr.Insert(k, k*2); got == in {
				t.Fatalf("op %d: Insert(%d) = %v, model: %v", i, k, got, in)
			}
			if !in {
				model[k] = k * 2
			}
		case 1:
			_, in := model[k]
			if got := tr.Delete(k); got != in {
				t.Fatalf("op %d: Delete(%d) = %v, model: %v", i, k, got, in)
			}
			delete(model, k)
		default:
			v, in := model[k]
			gv, got := tr.Get(k)
			if got != in || (got && gv != v) {
				t.Fatalf("op %d: Get(%d) = %d,%v, model %d,%v", i, k, gv, got, v, in)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, model %d", tr.Size(), len(model))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceUnderSequentialInsert(t *testing.T) {
	tr := New()
	const n = 1 << 12
	for k := uint64(0); k < n; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// A plain BST would be 4096 deep; relaxed AVL should be within a small
	// multiple of log2(n) = 12.
	if d := tr.MaxDepth(); d > 40 {
		t.Fatalf("depth %d after sorted inserts: rebalancing ineffective", d)
	}
	for k := uint64(0); k < n; k++ {
		if !tr.Contains(k) {
			t.Fatalf("key %d lost during rebalancing", k)
		}
	}
}

func TestQuickSetSemantics(t *testing.T) {
	tr := New()
	f := func(ops []uint16) bool {
		model := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 89)
			if op&0x8000 != 0 {
				tr.Delete(k)
				delete(model, k)
			} else {
				tr.Insert(k, k)
				model[k] = true
			}
		}
		for k := uint64(0); k < 89; k++ {
			if tr.Contains(k) != model[k] {
				return false
			}
		}
		if tr.Validate() != nil {
			return false
		}
		for k := uint64(0); k < 89; k++ {
			tr.Delete(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New()
	const gs, perG = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 100000)
			for i := uint64(0); i < perG; i++ {
				if !tr.Insert(base+i, i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
			for i := uint64(0); i < perG; i++ {
				if !tr.Contains(base + i) {
					t.Errorf("key %d missing", base+i)
					return
				}
			}
			for i := uint64(0); i < perG; i += 2 {
				if !tr.Delete(base + i) {
					t.Errorf("delete %d failed", base+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if want := gs * perG / 2; tr.Size() != want {
		t.Fatalf("Size = %d, want %d", tr.Size(), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	tr := New()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					tr.Insert(k, k)
				case 1:
					tr.Delete(k)
				default:
					if v, ok := tr.Get(k); ok && v != k {
						t.Errorf("Get(%d) returned foreign value %d", k, v)
						stop.Store(true)
						return
					}
				}
			}
		}(g)
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentKeysAlwaysVisible(t *testing.T) {
	tr := New()
	permanent := []uint64{11, 23, 47, 71, 89}
	for _, k := range permanent {
		tr.Insert(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := uint64(rng.Intn(100))
				skip := false
				for _, p := range permanent {
					if k == p {
						skip = true
						break
					}
				}
				if skip {
					continue
				}
				if rng.Intn(2) == 0 {
					tr.Insert(k, k)
				} else {
					tr.Delete(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, p := range permanent {
					if !tr.Contains(p) {
						t.Errorf("permanent key %d invisible", p)
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
