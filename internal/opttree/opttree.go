// Package opttree implements the optimistic concurrent search tree of
// Bronson, Casper, Chafi and Olukotun ("A Practical Concurrent Binary
// Search Tree", PPoPP 2010) — the paper's non-RCU performance yardstick
// ("Opt-Tree", §6.1).
//
// The tree is partially external: removing a key from a node with two
// children merely clears its value, leaving a routing node; nodes with at
// most one child are physically unlinked. Reads are optimistic: they
// descend without locks, validating per-node version numbers hand over
// hand, and retry from the parent when a version moved. Updates use
// fine-grained per-node locks. Structural changes that can invalidate a
// concurrent descent (unlinks and rotations) set a "shrinking" bit in the
// affected node's version for their duration and leave the version
// permanently changed afterwards.
//
// Relaxed AVL balancing is maintained: after every structural change the
// updater walks toward the root fixing heights and rotating where the
// local balance exceeds one, taking locks parent-before-child.
package opttree

import (
	"sync"
	"sync/atomic"

	"prcu/internal/spin"
)

// Version-word layout: bit 0 marks an unlinked node (permanent), bit 1
// marks a shrink in progress (transient), and the remaining bits count
// completed shrinks so a reader that validated before a shrink observes a
// different version after it.
const (
	unlinkedBit  = 1
	shrinkingBit = 2
	versionIncr  = 4
)

type node struct {
	key     uint64
	version atomic.Uint64
	// hasValue distinguishes a live key from a routing node; value is the
	// payload. Both change only under mu but are read optimistically.
	hasValue atomic.Bool
	value    atomic.Uint64
	parent   atomic.Pointer[node]
	left     atomic.Pointer[node]
	right    atomic.Pointer[node]
	height   atomic.Int64
	mu       sync.Mutex
}

func (n *node) child(dir int) *atomic.Pointer[node] {
	if dir == 0 {
		return &n.left
	}
	return &n.right
}

func height(n *node) int64 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

// waitUntilShrinkDone spins while n's version has the shrinking bit set.
func waitUntilShrinkDone(n *node, ovl uint64) {
	if ovl&shrinkingBit == 0 {
		return
	}
	var w spin.Waiter
	for n.version.Load() == ovl {
		w.Wait()
	}
}

// Tree is a concurrent partially-external AVL tree. The zero value is not
// usable; construct with New.
type Tree struct {
	// rootHolder is a sentinel whose right child is the tree root, so the
	// root can be rotated and unlinked like any other node.
	rootHolder *node
	size       atomic.Int64
}

// New returns an empty tree.
func New() *Tree {
	rh := &node{}
	rh.height.Store(1)
	return &Tree{rootHolder: rh}
}

// Size returns the number of live keys (exact at rest).
func (t *Tree) Size() int { return int(t.size.Load()) }

const (
	retry     = -1 // descend failed validation; caller retries from its frame
	notInTree = 0
	found     = 1
)

// Get returns the value stored under k.
func (t *Tree) Get(k uint64) (uint64, bool) {
	for {
		right := t.rootHolder.right.Load()
		if right == nil {
			return 0, false
		}
		ovl := right.version.Load()
		if ovl&(shrinkingBit|unlinkedBit) != 0 {
			waitUntilShrinkDone(right, ovl)
			continue
		}
		if t.rootHolder.right.Load() != right {
			continue
		}
		if v, res := attemptGet(k, right, ovl); res != retry {
			return v, res == found
		}
	}
}

// Contains reports whether k is present.
func (t *Tree) Contains(k uint64) bool {
	_, ok := t.Get(k)
	return ok
}

func attemptGet(k uint64, n *node, nOVL uint64) (uint64, int) {
	for {
		if k == n.key {
			// Re-validate before trusting the read: if the version moved,
			// this node may have been unlinked or rotated away.
			v := n.value.Load()
			has := n.hasValue.Load()
			if n.version.Load() != nOVL {
				return 0, retry
			}
			if !has {
				return 0, notInTree
			}
			return v, found
		}
		dir := 0
		if k > n.key {
			dir = 1
		}
		child := n.child(dir).Load()
		if n.version.Load() != nOVL {
			return 0, retry
		}
		if child == nil {
			return 0, notInTree
		}
		childOVL := child.version.Load()
		if childOVL&shrinkingBit != 0 {
			waitUntilShrinkDone(child, childOVL)
			if n.version.Load() != nOVL {
				return 0, retry
			}
			continue
		}
		if childOVL&unlinkedBit != 0 || n.child(dir).Load() != child {
			if n.version.Load() != nOVL {
				return 0, retry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return 0, retry
		}
		if v, res := attemptGet(k, child, childOVL); res != retry {
			return v, res
		}
		// Child-level retry: re-validate our frame and redo the step.
		if n.version.Load() != nOVL {
			return 0, retry
		}
	}
}

// Insert adds k with value val, returning false if k is already live.
func (t *Tree) Insert(k, val uint64) bool {
	for {
		right := t.rootHolder.right.Load()
		if right == nil {
			// Empty tree: install the first node under the holder's lock.
			t.rootHolder.mu.Lock()
			if t.rootHolder.right.Load() == nil {
				n := &node{key: k}
				n.hasValue.Store(true)
				n.value.Store(val)
				n.height.Store(1)
				n.parent.Store(t.rootHolder)
				t.rootHolder.right.Store(n)
				t.rootHolder.mu.Unlock()
				t.size.Add(1)
				return true
			}
			t.rootHolder.mu.Unlock()
			continue
		}
		ovl := right.version.Load()
		if ovl&(shrinkingBit|unlinkedBit) != 0 {
			waitUntilShrinkDone(right, ovl)
			continue
		}
		if t.rootHolder.right.Load() != right {
			continue
		}
		if res := t.attemptInsert(k, val, right, ovl); res != retry {
			return res == found
		}
	}
}

// attemptInsert returns found if it inserted, notInTree if the key was
// already live, retry to restart from the caller's frame.
func (t *Tree) attemptInsert(k, val uint64, n *node, nOVL uint64) int {
	for {
		if k == n.key {
			// Revive a routing node or report a duplicate.
			n.mu.Lock()
			if n.version.Load() != nOVL {
				n.mu.Unlock()
				return retry
			}
			if n.hasValue.Load() {
				n.mu.Unlock()
				return notInTree
			}
			n.value.Store(val)
			n.hasValue.Store(true)
			n.mu.Unlock()
			t.size.Add(1)
			return found
		}
		dir := 0
		if k > n.key {
			dir = 1
		}
		child := n.child(dir).Load()
		if n.version.Load() != nOVL {
			return retry
		}
		if child == nil {
			// Try to link a fresh leaf here.
			n.mu.Lock()
			if n.version.Load() != nOVL || n.child(dir).Load() != nil {
				n.mu.Unlock()
				if n.version.Load() != nOVL {
					return retry
				}
				continue
			}
			leaf := &node{key: k}
			leaf.hasValue.Store(true)
			leaf.value.Store(val)
			leaf.height.Store(1)
			leaf.parent.Store(n)
			n.child(dir).Store(leaf)
			n.mu.Unlock()
			t.size.Add(1)
			t.fixHeightAndRebalance(n)
			return found
		}
		childOVL := child.version.Load()
		if childOVL&shrinkingBit != 0 {
			waitUntilShrinkDone(child, childOVL)
			if n.version.Load() != nOVL {
				return retry
			}
			continue
		}
		if childOVL&unlinkedBit != 0 || n.child(dir).Load() != child {
			if n.version.Load() != nOVL {
				return retry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return retry
		}
		if res := t.attemptInsert(k, val, child, childOVL); res != retry {
			return res
		}
		if n.version.Load() != nOVL {
			return retry
		}
	}
}

// Delete removes k, returning whether it was live. A node with two
// children becomes a routing node; otherwise the node is unlinked.
func (t *Tree) Delete(k uint64) bool {
	for {
		right := t.rootHolder.right.Load()
		if right == nil {
			return false
		}
		ovl := right.version.Load()
		if ovl&(shrinkingBit|unlinkedBit) != 0 {
			waitUntilShrinkDone(right, ovl)
			continue
		}
		if t.rootHolder.right.Load() != right {
			continue
		}
		if res := t.attemptDelete(k, t.rootHolder, right, ovl); res != retry {
			return res == found
		}
	}
}

func (t *Tree) attemptDelete(k uint64, parent, n *node, nOVL uint64) int {
	for {
		if k == n.key {
			return t.attemptRemoveNode(parent, n, nOVL)
		}
		dir := 0
		if k > n.key {
			dir = 1
		}
		child := n.child(dir).Load()
		if n.version.Load() != nOVL {
			return retry
		}
		if child == nil {
			return notInTree
		}
		childOVL := child.version.Load()
		if childOVL&shrinkingBit != 0 {
			waitUntilShrinkDone(child, childOVL)
			if n.version.Load() != nOVL {
				return retry
			}
			continue
		}
		if childOVL&unlinkedBit != 0 || n.child(dir).Load() != child {
			if n.version.Load() != nOVL {
				return retry
			}
			continue
		}
		if n.version.Load() != nOVL {
			return retry
		}
		if res := t.attemptDelete(k, n, child, childOVL); res != retry {
			return res
		}
		if n.version.Load() != nOVL {
			return retry
		}
	}
}

// attemptRemoveNode deletes n's value, unlinking n when it has at most one
// child. parent is n's parent in the caller's descent.
func (t *Tree) attemptRemoveNode(parent, n *node, nOVL uint64) int {
	if n.left.Load() != nil && n.right.Load() != nil {
		// Two children: just clear the value (n becomes a routing node).
		n.mu.Lock()
		if n.version.Load() != nOVL {
			n.mu.Unlock()
			return retry
		}
		if !n.hasValue.Load() {
			n.mu.Unlock()
			return notInTree
		}
		// Still two children? If one vanished meanwhile we can unlink
		// after all — fall through to the splice path below.
		if n.left.Load() != nil && n.right.Load() != nil {
			n.hasValue.Store(false)
			n.mu.Unlock()
			t.size.Add(-1)
			return found
		}
		n.mu.Unlock()
	}

	// At most one child: splice n out under parent + n locks.
	parent.mu.Lock()
	n.mu.Lock()
	if n.version.Load() != nOVL || parent.version.Load()&unlinkedBit != 0 {
		n.mu.Unlock()
		parent.mu.Unlock()
		return retry
	}
	dir := 0
	if parent.right.Load() == n {
		dir = 1
	}
	if parent.child(dir).Load() != n {
		n.mu.Unlock()
		parent.mu.Unlock()
		return retry
	}
	if !n.hasValue.Load() {
		n.mu.Unlock()
		parent.mu.Unlock()
		return notInTree
	}
	left, rightC := n.left.Load(), n.right.Load()
	if left != nil && rightC != nil {
		// Grew a second child since the check: clear the value instead.
		n.hasValue.Store(false)
		n.mu.Unlock()
		parent.mu.Unlock()
		t.size.Add(-1)
		return found
	}
	splice := left
	if splice == nil {
		splice = rightC
	}
	// Publish the shrink so optimistic descents through n retry.
	n.version.Store(nOVL | shrinkingBit)
	parent.child(dir).Store(splice)
	if splice != nil {
		splice.parent.Store(parent)
	}
	n.version.Store((nOVL + versionIncr) | unlinkedBit)
	n.hasValue.Store(false)
	n.mu.Unlock()
	parent.mu.Unlock()
	t.size.Add(-1)
	t.fixHeightAndRebalance(parent)
	return found
}
